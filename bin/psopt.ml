(* psopt — the command-line front end of the promising-semantics
   optimization-verification library.

   Subcommands mirror the library's layers: parse/print, run, explore
   (behaviour sets under either machine), optimize, refine (trace-set
   inclusion), races (ww-RF / rw report), sim (the thread-local
   simulation game), litmus (the paper's corpus), stress (the
   crash-safe batch runner), and the verification service — serve
   (the daemon), ping, submit and batch (its clients;
   docs/SERVICE.md).

   Exit codes are script-friendly and uniform across subcommands:
   0 verified / claim holds, 1 refuted / violation / race found,
   2 inconclusive (truncated exploration or unknown simulation),
   3 usage, parse or well-formedness error. *)

open Cmdliner

let exit_ok = Service.Render.exit_ok
let exit_fail = Service.Render.exit_fail
let exit_inconclusive = Service.Render.exit_inconclusive
let exit_error = Service.Render.exit_error

let read_program path =
  try Ok (Lang.Wf.check_exn (Lang.Parse.program_of_file path)) with
  | Lang.Parse.Error e ->
      Error (path ^ ":" ^ Lang.Parse.error_message e)
  | Lang.Wf.Ill_formed errs ->
      Error (path ^ ": ill-formed: " ^ Lang.Wf.errors_message errs)
  | Sys_error e -> Error e

(* Run [f] on the parsed program; parse/well-formedness problems go to
   stderr (never an OCaml backtrace) with the usage/parse exit code. *)
let with_program path f =
  match read_program path with
  | Ok p -> f p
  | Error msg ->
      Printf.eprintf "psopt: %s\n" msg;
      exit_error

let program_arg idx name =
  let doc = "CSimpRTL program file." in
  Arg.(required & pos idx (some file) None & info [] ~docv:name ~doc)

let discipline_term =
  let doc = "Explore with the non-preemptive machine (Fig. 10)." in
  Term.(
    const (fun np ->
        if np then Explore.Enum.Non_preemptive else Explore.Enum.Interleaving)
    $ Arg.(value & flag & info [ "np"; "non-preemptive" ] ~doc))

(* Default domain-pool width: an explicit PSOPT_J wins (the CI matrix
   pins it), otherwise whatever this machine recommends. *)
let default_j =
  match Sys.getenv_opt "PSOPT_J" with
  | Some _ -> Explore.Config.default.Explore.Config.domains
  | None -> Explore.Pool.recommended ()

let jobs_term =
  let doc =
    "Domain pool width for parallel exploration (default: the machine's \
     recommended domain count, or \\$PSOPT_J when set).  Results are \
     identical for every width."
  in
  Arg.(value & opt int default_j & info [ "j"; "jobs" ] ~doc ~docv:"N")

let config_term =
  let promises =
    let doc = "Promise steps allowed per thread (0 disables promising)." in
    Arg.(value & opt int 1 & info [ "promises" ] ~doc)
  in
  let steps =
    let doc = "Exploration depth budget." in
    Arg.(value & opt int 400 & info [ "max-steps" ] ~doc)
  in
  let no_cap =
    let doc = "Certify promises against the plain (uncapped) memory." in
    Arg.(value & flag & info [ "no-cap" ] ~doc)
  in
  let deadline =
    let doc = "Wall-clock budget in milliseconds (0 = none)." in
    Arg.(value & opt int 0 & info [ "deadline-ms" ] ~doc)
  in
  let nodes =
    let doc = "Budget on distinct explored states (0 = none)." in
    Arg.(value & opt int 0 & info [ "max-nodes" ] ~doc)
  in
  let por =
    let doc =
      "Certification-aware partial-order reduction: prune redundant \
       interleavings of thread-local steps and symmetric switch siblings \
       (behaviour-preserving; see docs/REDUCTION.md)."
    in
    Arg.(value & flag & info [ "por" ] ~doc)
  in
  let symmetry =
    let doc =
      "Symmetry reduction: canonicalize states under permutation of \
       identical-program threads, so N replicated threads cost one orbit \
       (traceset-preserving; see docs/REDUCTION.md)."
    in
    Arg.(value & flag & info [ "symmetry" ] ~doc)
  in
  let reduce =
    let doc = "Enable every sound reduction (same as --por --symmetry)." in
    Arg.(value & flag & info [ "reduce" ] ~doc)
  in
  let max_promises =
    let doc =
      "Bounded-promise mode: explore exhaustively within a budget of \
       $(docv) promise steps per thread and report honest truncation \
       above it (overrides --promises; implies strict accounting)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "max-promises" ] ~doc ~docv:"K")
  in
  Term.(
    const (fun promises max_steps no_cap deadline nodes por symmetry reduce
               bound j ->
        let reduction =
          {
            Explore.Config.por = por || reduce;
            symmetry = symmetry || reduce;
            bound_promises = bound;
          }
        in
        Explore.Config.with_promises promises
          {
            Explore.Config.default with
            max_steps;
            cap_certification = not no_cap;
            deadline_ms = (if deadline > 0 then Some deadline else None);
            max_nodes = (if nodes > 0 then Some nodes else None);
            domains = max 1 j;
            reduction;
          })
    $ promises $ steps $ no_cap $ deadline $ nodes $ por $ symmetry $ reduce
    $ max_promises $ jobs_term)

(* ------------------------------------------------------------------ *)
(* Observability switches shared by the instrumented subcommands
   (docs/OBSERVABILITY.md): --log-level feeds the structured stderr
   logger, --trace records a span trace of the whole run and writes it
   as Chrome trace_event JSON. *)

let log_level_term =
  let doc =
    "Minimum stderr log level: $(b,debug), $(b,info), $(b,warn), \
     $(b,error) or $(b,quiet) (overrides \\$PSOPT_LOG)."
  in
  let levels =
    [
      ("debug", Obs.Log.Debug);
      ("info", Obs.Log.Info);
      ("warn", Obs.Log.Warn);
      ("error", Obs.Log.Error);
      ("quiet", Obs.Log.Quiet);
    ]
  in
  Arg.(
    value
    & opt (some (enum levels)) None
    & info [ "log-level" ] ~doc ~docv:"LEVEL")

let trace_term =
  let doc =
    "Record a span trace of this run and write it to $(docv) as Chrome \
     trace_event JSON (open in Perfetto or chrome://tracing; check with \
     `psopt trace-check`)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

(* Evaluated before the command body runs: set the logger threshold,
   pass the trace destination through. *)
let obs_term =
  Term.(
    const (fun level trace ->
        Option.iter Obs.Log.set_level level;
        trace)
    $ log_level_term $ trace_term)

(* Run a command body inside a recording session when --trace was
   given.  The trace is written even when the body raises (a truncated
   run is exactly when the trace is interesting). *)
let with_obs trace f =
  match trace with
  | None -> f ()
  | Some path ->
      Obs.Trace.start ();
      let dump () =
        Obs.Trace.stop ();
        match Obs.Trace.write_file path with
        | Ok n ->
            Obs.Log.info ~src:"trace" "trace written"
              ~fields:
                [
                  ("file", path);
                  ("events", string_of_int n);
                  ("dropped", string_of_int (Obs.Trace.dropped ()));
                ];
            None
        | Error msg ->
            Printf.eprintf "psopt: cannot write trace %s: %s\n" path msg;
            Some exit_error
      in
      (match f () with
      | code -> ( match dump () with None -> code | Some err -> max code err)
      | exception e ->
          ignore (dump ());
          raise e)

(* One fresh trace context per submitted request, but only when this
   process is recording: a context-free Work encodes in the pre-trace
   wire shape, so untraced clients stay compatible with old daemons. *)
let work_req w cfg =
  let tctx = if Obs.Trace.on () then Some (Obs.Trace.new_ctx ()) else None in
  Service.Proto.Work (w, cfg, tctx)

(* ------------------------------------------------------------------ *)

let parse_cmd =
  let sexp_flag =
    Arg.(
      value & flag
      & info [ "sexp" ]
          ~doc:"Emit the machine-readable s-expression form instead.")
  in
  let run file sexp =
    with_program file (fun p ->
        if sexp then print_endline (Lang.Sexp.program_to_string p)
        else print_string (Lang.Pp.program_to_string p);
        exit_ok)
  in
  let term = Term.(const run $ program_arg 0 "FILE" $ sexp_flag) in
  Cmd.v
    (Cmd.info "parse"
       ~doc:
         "Parse, check well-formedness and print (human syntax, or \
          s-expressions with --sexp).")
    term

let run_cmd =
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Scheduler seed.")
  in
  let run file seed =
    with_program file (fun p ->
        let r = Explore.Random_run.run_exn ~seed p in
        Format.printf "trace: %a (%d steps)@." Ps.Event.pp_trace
          r.Explore.Random_run.trace r.Explore.Random_run.steps;
        exit_ok)
  in
  let term = Term.(const run $ program_arg 0 "FILE" $ seed) in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute once with a pseudo-random scheduler (promise-free).")
    term

let sample_cmd =
  let runs =
    Arg.(value & opt int 1000 & info [ "runs" ] ~doc:"Number of executions.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base seed.") in
  let run file runs seed =
    with_program file (fun p ->
        let freqs = Explore.Random_run.sample ~seed ~runs p in
        let total = List.fold_left (fun a (_, n) -> a + n) 0 freqs in
        Format.printf "%d completed runs, %d distinct outcomes@." total
          (List.length freqs);
        List.iter
          (fun (outs, n) ->
            Format.printf "%8d  [%s]@." n
              (String.concat ";" (List.map string_of_int outs)))
          freqs;
        Format.printf
          "(sampling under-approximates: promise-dependent outcomes never \
           appear; compare with `explore`)@.";
        exit_ok)
  in
  let term = Term.(const run $ program_arg 0 "FILE" $ runs $ seed) in
  Cmd.v
    (Cmd.info "sample"
       ~doc:
         "litmus7-style outcome histogram from random-scheduler runs \
          (promise-free; contrast with the exhaustive `explore`).")
    term

let explore_cmd =
  let run file disc cfg trace =
    with_obs trace @@ fun () ->
    with_program file (fun p ->
        let o = Explore.Enum.behaviors_exn ~config:cfg disc p in
        Format.printf "discipline: %a@.config: %a@." Explore.Enum.pp_discipline
          disc Explore.Config.pp cfg;
        Format.printf "behaviours (%a):@.%a@." Explore.Enum.pp_completeness
          o.Explore.Enum.completeness Explore.Traceset.pp
          o.Explore.Enum.traces;
        Format.printf "stats: %a@." Explore.Stats.pp o.Explore.Enum.stats;
        match o.Explore.Enum.completeness with
        | Explore.Enum.Exhaustive -> exit_ok
        | Explore.Enum.Truncated _ -> exit_inconclusive)
  in
  let term =
    Term.(
      const run $ program_arg 0 "FILE" $ discipline_term $ config_term
      $ obs_term)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Enumerate the full behaviour set (bounded-exhaustive, promises \
          included).  Exits 2 when the exploration was truncated.")
    term

let passes_assoc =
  [
    ("constprop", Opt.Constprop.pass);
    ("dce", Opt.Dce.pass);
    ("cse", Opt.Cse.pass);
    ("copyprop", Opt.Copyprop.pass);
    ("linv", Opt.Linv.pass);
    ("licm", Opt.Licm.pass);
    ("cleanup", Opt.Cleanup.pass);
  ]

let opt_cmd =
  let passes =
    let doc =
      "Comma-separated passes: constprop, dce, cse, copyprop, linv, licm, cleanup."
    in
    Arg.(value & opt string "constprop,cse,dce,cleanup" & info [ "passes" ] ~doc)
  in
  let run file passes =
    with_program file (fun p ->
        let names = String.split_on_char ',' passes in
        let rec build = function
          | [] -> Ok []
          | n :: rest -> (
              match List.assoc_opt (String.trim n) passes_assoc with
              | Some pass -> Result.map (fun l -> pass :: l) (build rest)
              | None -> Error ("unknown pass: " ^ n))
        in
        match build names with
        | Error msg ->
            Printf.eprintf "psopt: %s\n" msg;
            exit_error
        | Ok ps ->
            let out =
              List.fold_left (fun p pass -> Opt.Pass.apply pass p) p ps
            in
            print_string (Lang.Pp.program_to_string out);
            exit_ok)
  in
  let term = Term.(const run $ program_arg 0 "FILE" $ passes) in
  Cmd.v (Cmd.info "opt" ~doc:"Apply optimization passes and print the result.")
    term

let refine_cmd =
  let target =
    Arg.(
      required
      & opt (some file) None
      & info [ "target" ] ~doc:"Optimized program.")
  in
  let source =
    Arg.(
      required
      & opt (some file) None
      & info [ "source" ] ~doc:"Original program.")
  in
  let run tfile sfile disc cfg trace =
    with_obs trace @@ fun () ->
    with_program tfile (fun t ->
        with_program sfile (fun s ->
            let rep =
              Explore.Refine.check ~config:cfg ~discipline:disc ~target:t
                ~source:s ()
            in
            Format.printf "%a@." Explore.Refine.pp_verdict
              rep.Explore.Refine.verdict;
            match rep.Explore.Refine.verdict with
            | Explore.Refine.Refines -> exit_ok
            | Explore.Refine.Violates _ -> exit_fail
            | Explore.Refine.Inconclusive _ -> exit_inconclusive))
  in
  let term =
    Term.(
      const run $ target $ source $ discipline_term $ config_term $ obs_term)
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Check event-trace refinement: target ⊆ source (Sec. 2.2).")
    term

let races_cmd =
  let run file cfg trace =
    with_obs trace @@ fun () ->
    with_program file (fun p ->
        (* rendering shared with the service daemon, so `psopt submit`
           replies are byte-identical to this output *)
        let out, code = Service.Render.races (Race.check_all ~config:cfg p) in
        print_string out;
        code)
  in
  let term =
    Term.(const run $ program_arg 0 "FILE" $ config_term $ obs_term)
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:
         "Check write-write race freedom (Fig. 11) under both machines and \
          report read-write races.  Exits 1 on a race, 2 when truncation \
          prevents a freedom claim.")
    term

let sim_cmd =
  let target =
    Arg.(
      required & opt (some file) None & info [ "target" ] ~doc:"Optimized program.")
  in
  let source =
    Arg.(
      required & opt (some file) None & info [ "source" ] ~doc:"Original program.")
  in
  let inv =
    let doc = "Invariant instance: iid or idce." in
    Arg.(value & opt (enum [ ("iid", `Iid); ("idce", `Idce) ]) `Iid & info [ "inv" ] ~doc)
  in
  let run tfile sfile inv =
    with_program tfile (fun t ->
        with_program sfile (fun s ->
            let inv =
              match inv with
              | `Iid -> Sim.Invariant.iid
              | `Idce -> Sim.Invariant.idce
            in
            let rs = Sim.Simcheck.check_program ~inv ~target:t ~source:s () in
            let worst = ref exit_ok in
            List.iter
              (fun (f, v) ->
                (match v with
                | Sim.Simcheck.Holds -> ()
                | Sim.Simcheck.Fails _ -> worst := max !worst exit_fail
                | Sim.Simcheck.Unknown _ ->
                    worst := max !worst exit_inconclusive);
                Format.printf "%s: %a@." f Sim.Simcheck.pp_verdict v)
              rs;
            !worst))
  in
  let term = Term.(const run $ target $ source $ inv) in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Check the thread-local simulation (Sec. 6) between target and \
          source, per thread function.")
    term

let verify_cmd =
  let pass_arg =
    let doc = "Optimizer to verify (constprop, dce, cse, copyprop, linv, licm, cleanup)." in
    Arg.(value & opt string "dce" & info [ "pass" ] ~doc)
  in
  let record_arg =
    let doc =
      "On a refinement failure, record a replayable trace of one \
       refuting execution of the optimized program to $(docv) (step \
       through it with `psopt replay`, reduce it with `psopt shrink`; \
       docs/REPLAY.md)."
    in
    Arg.(value & opt (some string) None & info [ "record" ] ~doc ~docv:"FILE")
  in
  (* A refutation is a target trace the source cannot produce; find it
     again and persist a replayable witness of the optimized program
     running it. *)
  let record_refutation ~cfg ~pass r p path =
    let target = r.Sim.Verif.transform p in
    let rep = Explore.Refine.check ~config:cfg ~target ~source:p () in
    match rep.Explore.Refine.verdict with
    | Explore.Refine.Violates (tr :: _) -> (
        let outs = tr.Ps.Event.outs in
        let note =
          Printf.sprintf "refutation of %s: target-only outs [%s]" pass
            (String.concat ";" (List.map string_of_int outs))
        in
        match
          Replay.Record.record_witness ~config:cfg ~note ~outs ~path target
        with
        | Ok n ->
            Printf.printf "recorded refuting execution: %d steps to %s\n" n
              path
        | Error msg ->
            Printf.eprintf "psopt verify: cannot record refutation: %s\n" msg)
    | _ ->
        Printf.eprintf
          "psopt verify: no refinement counterexample to record (the \
           failure was in another stage)\n"
  in
  let run file pass record cfg trace =
    with_obs trace @@ fun () ->
    with_program file (fun p ->
        match Sim.Verif.find pass with
        | None ->
            Printf.eprintf "psopt: unknown optimizer: %s\n" pass;
            exit_error
        | Some r -> (
            let v = Sim.Verif.check ~explore_config:cfg r p in
            Format.printf "%s on %s: %a@." pass file Sim.Verif.pp_verdict v;
            match v with
            | Sim.Verif.Verified -> exit_ok
            | Sim.Verif.Fail _ ->
                Option.iter (record_refutation ~cfg ~pass r p) record;
                exit_fail
            | Sim.Verif.Inconclusive _ -> exit_inconclusive))
  in
  let term =
    Term.(
      const run $ program_arg 0 "FILE" $ pass_arg $ record_arg $ config_term
      $ obs_term)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the full Fig. 6 pipeline for one optimizer on one program: \
          ww-RF of the source, the thread-local simulation with the pass's \
          invariant, whole-program refinement, ww-RF preservation.  Exits 0 \
          verified, 1 failed, 2 inconclusive.")
    term

let parse_outs s =
  if String.trim s = "" then Ok []
  else
    try
      Ok
        (List.map
           (fun x -> int_of_string (String.trim x))
           (String.split_on_char ',' s))
    with Failure _ -> Error ("invalid --outs: " ^ s)

let outs_term =
  let doc = "Comma-separated expected outputs, e.g. --outs 1,1." in
  Arg.(value & opt string "" & info [ "outs" ] ~doc)

(* A witness schedule as a synthetic Chrome trace_event timeline: one
   900ns span per step at 1us intervals, one track per thread — the
   schedule shape at a glance in Perfetto. *)
let write_witness_trace path (w : Explore.Witness.t) =
  let events =
    List.mapi
      (fun i (s : Explore.Witness.step) ->
        {
          Obs.Trace.name = Format.asprintf "%a" Ps.Event.pp_te s.event;
          cat = "witness";
          ts_ns = i * 1000;
          dur_ns = 900;
          tid = s.tid;
          args = [];
        })
      w
  in
  match open_out path with
  | exception Sys_error m -> Error m
  | oc ->
      let n = Obs.Trace.write_events oc events in
      close_out oc;
      Ok n

let witness_cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Show silent steps too.")
  in
  let trace_out =
    let doc =
      "Also export the witness schedule to $(docv) as a Chrome \
       trace_event timeline (one track per thread; open in Perfetto, \
       check with `psopt trace-check`)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")
  in
  let run file outs full trace_out disc cfg level =
    Option.iter Obs.Log.set_level level;
    with_program file (fun p ->
        match parse_outs outs with
        | Error msg ->
            Printf.eprintf "psopt: %s\n" msg;
            exit_error
        | Ok outs -> (
            match
              Explore.Witness.find ~config:cfg ~discipline:disc ~outs p
            with
            | Some w -> (
                (match Explore.Witness.annotate ~config:cfg ~discipline:disc p w with
                | Some ann when not full ->
                    Format.printf "witness:@.%a@." Explore.Witness.pp_annotated
                      ann
                | _ ->
                    Format.printf "witness:@.%a@."
                      (if full then Explore.Witness.pp_full
                       else Explore.Witness.pp)
                      w);
                match trace_out with
                | None -> exit_ok
                | Some path -> (
                    match write_witness_trace path w with
                    | Ok n ->
                        Printf.printf "witness trace: %d events to %s\n" n path;
                        exit_ok
                    | Error msg ->
                        Printf.eprintf "psopt witness: cannot write %s: %s\n"
                          path msg;
                        exit_error))
            | None ->
                let o = Explore.Enum.behaviors_exn ~config:cfg disc p in
                if o.Explore.Enum.exact then (
                  Format.printf
                    "no witness: the outcome is unobservable \
                     (bounded-exhaustive)@.";
                  exit_fail)
                else (
                  Format.printf
                    "no witness within bounds, and the exploration was \
                     truncated (%a): inconclusive@."
                    Explore.Enum.pp_completeness o.Explore.Enum.completeness;
                  exit_inconclusive)))
  in
  let term =
    Term.(
      const run $ program_arg 0 "FILE" $ outs_term $ full $ trace_out
      $ discipline_term $ config_term $ log_level_term)
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:
         "Find an annotated execution (schedule) producing the given \
          outputs, in the style of the paper's Sec. 2.1 executions — \
          steps numbered, promises cross-referenced with the writes that \
          fulfill them.  Exits 1 when the outcome is provably \
          unobservable, 2 when the search was truncated.")
    term

let litmus_cmd =
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Litmus name.")
  in
  let run name j trace =
    with_obs trace @@ fun () ->
    let report (t : Litmus.t) (r : Litmus.result) =
      (* rendering shared with the service daemon: `psopt batch
         --litmus` output is byte-identical to this *)
      let out, code = Service.Render.litmus t r in
      print_string out;
      code
    in
    match name with
    | None ->
        List.fold_left
          (fun acc (t, r) -> max acc (report t r))
          exit_ok
          (Litmus.check_all ~j ())
    | Some n -> (
        match List.find_opt (fun t -> t.Litmus.name = n) Litmus.all with
        | Some t -> report t (Litmus.check t)
        | None ->
            Printf.eprintf "psopt: unknown litmus test: %s\n" n;
            exit_error)
  in
  let term = Term.(const run $ name_arg $ jobs_term $ obs_term) in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:"Run the paper's litmus corpus against the explorer.")
    term

let stress_cmd =
  let cases =
    Arg.(value & opt int 50 & info [ "cases" ] ~doc:"Number of random cases.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base seed.") in
  let deadline =
    Arg.(
      value & opt int 2000
      & info [ "deadline-ms" ] ~doc:"Per-attempt wall-clock budget.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ]
          ~doc:"Extra attempts with doubled budgets while inconclusive.")
  in
  let qdir =
    Arg.(
      value
      & opt string "_stress_quarantine"
      & info [ "quarantine-dir" ] ~doc:"Where crashed cases are persisted.")
  in
  let pass_arg =
    let doc =
      "Optimizer to stress (constprop, dce, cse, copyprop, linv, licm, \
       cleanup); by default each case picks one deterministically from its \
       program."
    in
    Arg.(value & opt (some string) None & info [ "pass" ] ~doc)
  in
  let registry_of = function
    | Some name -> (
        match Sim.Verif.find name with
        | Some r -> Ok (fun _ -> r)
        | None -> Error ("unknown optimizer: " ^ name))
    | None ->
        let all =
          List.filter_map (fun (n, _) -> Sim.Verif.find n)
            [ ("constprop", ()); ("dce", ()); ("cse", ()); ("copyprop", ());
              ("linv", ()); ("licm", ()); ("cleanup", ()) ]
        in
        (* Deterministic per program (stable across retries), varied
           across cases. *)
        Ok (fun p -> List.nth all (Hashtbl.hash p mod List.length all))
  in
  let run cases seed deadline_ms retries qdir pass j trace =
    with_obs trace @@ fun () ->
    match registry_of pass with
    | Error msg ->
        Printf.eprintf "psopt: %s\n" msg;
        exit_error
    | Ok pick ->
        let check ~config p =
          match Sim.Verif.check ~explore_config:config (pick p) p with
          | Sim.Verif.Verified -> `Verified
          | Sim.Verif.Fail (st, why) ->
              `Refuted (Format.asprintf "%a: %s" Sim.Verif.pp_stage st why)
          | Sim.Verif.Inconclusive why -> `Inconclusive why
        in
        (* Quarantined cases also get a replayable [.trace] next to
           their [.sexp]: one recorded execution of the program under
           the exact config (reduction override included) the case ran
           with, so `psopt replay` can step straight into the crash's
           state space (docs/REPLAY.md). *)
        let on_quarantine ~dir ~base ~config p =
          let config =
            { config with Explore.Config.deadline_ms = Some 2_000 }
          in
          let o =
            Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving p
          in
          match Explore.Traceset.done_outs o.Explore.Enum.traces with
          | [] -> ()
          | outs :: _ ->
              ignore
                (Replay.Record.record_witness ~config
                   ~note:("stress quarantine " ^ base)
                   ~outs
                   ~path:(Filename.concat dir (base ^ ".trace"))
                   p)
        in
        let s =
          Explore.Stress.run ~j ~retries ~quarantine_dir:qdir ~on_quarantine
            ~cases ~seed ~deadline_ms ~check ()
        in
        Format.printf "%a@." Explore.Stress.pp_summary s;
        if s.Explore.Stress.quarantined > 0 then begin
          Obs.Log.err ~src:"stress"
            "cases quarantined — each .sexp is a reproducible bug report"
            ~fields:
              [
                ("quarantined", string_of_int s.Explore.Stress.quarantined);
                ("dir", qdir);
              ];
          exit_fail
        end
        else exit_ok
  in
  let term =
    Term.(
      const run $ cases $ seed $ deadline $ retries $ qdir $ pass_arg
      $ jobs_term $ obs_term)
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Crash-safe batch stress: seeded random programs through the full \
          optimize-then-verify pipeline under per-case deadlines, with \
          budget-escalating retries and an internal-error quarantine.  \
          Exits 1 if any case was quarantined.")
    term

(* ------------------------------------------------------------------ *)
(* Time-travel replay: record / replay / shrink (docs/REPLAY.md). *)

let store_output_term =
  let doc = "Replay store to write." in
  Arg.(
    required & opt (some string) None & info [ "o"; "output" ] ~doc ~docv:"TRACE")

let count_instrs (p : Lang.Ast.program) =
  Lang.Ast.FnameMap.fold
    (fun _ (ch : Lang.Ast.codeheap) acc ->
      Lang.Ast.LabelMap.fold
        (fun _ (b : Lang.Ast.block) acc -> acc + List.length b.Lang.Ast.instrs)
        ch.Lang.Ast.blocks acc)
    p.Lang.Ast.code 0

let record_cmd =
  let eager =
    let doc =
      "Search with context switches first, recording a deliberately \
       switch-heavy schedule (good shrinker input; the default search \
       runs each thread as long as possible)."
    in
    Arg.(value & flag & info [ "eager-switch" ] ~doc)
  in
  let note =
    Arg.(
      value
      & opt string "recorded witness"
      & info [ "note" ] ~doc:"Free-form provenance note stored in the header.")
  in
  let run file outs out eager note disc cfg =
    with_program file (fun p ->
        match parse_outs outs with
        | Error msg ->
            Printf.eprintf "psopt: %s\n" msg;
            exit_error
        | Ok outs -> (
            match
              Replay.Record.record_witness ~config:cfg ~discipline:disc
                ~eager_switch:eager ~note ~outs ~path:out p
            with
            | Ok n ->
                Printf.printf "recorded %d steps to %s\n" n out;
                exit_ok
            | Error msg ->
                Printf.eprintf "psopt record: %s\n" msg;
                exit_fail))
  in
  let term =
    Term.(
      const run $ program_arg 0 "FILE" $ outs_term $ store_output_term $ eager
      $ note $ discipline_term $ config_term)
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Find an execution producing the given outputs and record its \
          full machine-step trace — events, memory and view deltas, \
          certification effort, promise bookkeeping — into an indexed \
          replay store for `psopt replay` and `psopt shrink` \
          (docs/REPLAY.md).  Exits 1 when no witness exists within \
          bounds.")
    term

let replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Replay store written by `psopt record`.")
  in
  let keyframe =
    let doc =
      "Snapshot the machine state every $(docv) steps; any jump replays \
       at most $(docv) steps from a snapshot."
    in
    Arg.(value & opt int 16 & info [ "keyframe-every" ] ~doc ~docv:"K")
  in
  let command =
    let doc =
      "Run one command non-interactively and exit (repeatable, in \
       order); without it, read commands from stdin."
    in
    Arg.(value & opt_all string [] & info [ "c"; "command" ] ~doc ~docv:"CMD")
  in
  let run file keyframe commands =
    match Replay.Store.open_ file with
    | Error e ->
        Printf.eprintf "psopt replay: %s: %s\n" file
          (Replay.Store.error_to_string e);
        exit_error
    | Ok r -> (
        if Replay.Store.index_rebuilt r then
          Obs.Log.warn ~src:"replay" "sidecar index was stale or damaged; rebuilt by scan"
            ~fields:[ ("file", file) ];
        let session = Replay.Session.load ~keyframe_every:keyframe r in
        Replay.Store.close_reader r;
        match session with
        | Error e ->
            Printf.eprintf "psopt replay: %s: %s\n" file
              (Replay.Store.error_to_string e);
            exit_error
        | Ok s ->
            let interactive = commands = [] in
            let eval line =
              match Replay.Proto.parse_command line with
              | Error msg ->
                  print_endline msg;
                  `Continue
              | Ok req -> (
                  match Replay.Proto.handle s req with
                  | Replay.Proto.Bye -> `Quit
                  | Replay.Proto.Err m ->
                      Printf.printf "error: %s\n" m;
                      `Continue
                  | Replay.Proto.Ok { text; _ } ->
                      print_endline text;
                      `Continue)
            in
            if interactive then begin
              (match Replay.Proto.handle s Replay.Proto.Info with
              | Replay.Proto.Ok { text; _ } -> print_endline text
              | _ -> ());
              print_endline "(h for help)";
              let rec loop () =
                print_string "(psopt) ";
                flush stdout;
                match In_channel.input_line stdin with
                | None -> exit_ok
                | Some line ->
                    if String.trim line = "" then loop ()
                    else
                      match eval line with
                      | `Quit -> exit_ok
                      | `Continue -> loop ()
              in
              loop ()
            end
            else begin
              let rec go = function
                | [] -> exit_ok
                | c :: rest -> (
                    match eval c with `Quit -> exit_ok | `Continue -> go rest)
              in
              go commands
            end)
  in
  let term = Term.(const run $ file $ keyframe $ command) in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Step through a recorded trace in either direction: s/b/j move, \
          mem and views render the machine state at any step, why/next \
          follow a location, prm jumps to the next promise \
          (docs/REPLAY.md).  Jumps replay O(K) steps from the nearest \
          keyframe, never the whole trace.")
    term

let shrink_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Replay store written by `psopt record`.")
  in
  let do_program =
    let doc =
      "Also shrink the program itself (drop threads and instructions, \
       collapse branches, shrink constants) while the recorded output \
       sequence stays observable, then record a fresh witness of the \
       reduced program."
    in
    Arg.(value & flag & info [ "program" ] ~doc)
  in
  let run file out do_program =
    match Replay.Store.open_ file with
    | Error e ->
        Printf.eprintf "psopt shrink: %s: %s\n" file
          (Replay.Store.error_to_string e);
        exit_error
    | Ok r -> (
        let records = Replay.Store.read_all r in
        let h = Replay.Store.header r in
        Replay.Store.close_reader r;
        match records with
        | Error e ->
            Printf.eprintf "psopt shrink: %s: %s\n" file
              (Replay.Store.error_to_string e);
            exit_error
        | Ok records -> (
            let config = h.Replay.Trace.config in
            let discipline = h.Replay.Trace.discipline in
            let outs = h.Replay.Trace.outs in
            let program = h.Replay.Trace.program in
            let w =
              List.filter_map
                (fun (r : Replay.Trace.record) ->
                  match r.Replay.Trace.event with
                  | Some e ->
                      Some { Explore.Witness.tid = r.Replay.Trace.tid; event = e }
                  | None -> None)
                records
            in
            match Replay.Shrink.schedule ~config ~discipline program w with
            | Error msg ->
                Printf.eprintf "psopt shrink: %s\n" msg;
                exit_error
            | Ok res -> (
                Printf.printf "switch points: %d -> %d (%d candidates tried)\n"
                  res.Replay.Shrink.switches_before
                  res.Replay.Shrink.switches_after
                  res.Replay.Shrink.candidates_tried;
                let note =
                  Printf.sprintf "shrunk from %s: %s" (Filename.basename file)
                    h.Replay.Trace.note
                in
                let finish result =
                  match result with
                  | Ok n ->
                      Printf.printf "recorded %d steps to %s\n" n out;
                      exit_ok
                  | Error msg ->
                      Printf.eprintf "psopt shrink: %s\n" msg;
                      exit_error
                in
                if not do_program then
                  finish
                    (Replay.Record.record_schedule ~config ~discipline ~note
                       ~outs ~path:out program res.Replay.Shrink.witness)
                else begin
                  let keep p =
                    Option.is_some
                      (Explore.Witness.find ~config ~discipline ~outs p)
                  in
                  let p', tried = Replay.Shrink.program ~keep program in
                  Printf.printf
                    "program: %d -> %d instructions, %d -> %d threads (%d \
                     candidates tried)\n"
                    (count_instrs program) (count_instrs p')
                    (List.length program.Lang.Ast.threads)
                    (List.length p'.Lang.Ast.threads)
                    tried;
                  print_string (Lang.Pp.program_to_string p');
                  (* the shrunk schedule belongs to the original
                     program; record a fresh minimal witness of the
                     reduced one *)
                  finish
                    (Replay.Record.record_witness ~config ~discipline ~note
                       ~outs ~path:out p')
                end)))
  in
  let term = Term.(const run $ file $ store_output_term $ do_program) in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:
         "Minimize a recorded counterexample: ddmin over the schedule's \
          context-switch points (every candidate re-validated by \
          replaying it; the output sequence is preserved exactly), \
          optionally also shrinking the program, and write the reduced \
          trace as a new replay store (docs/REPLAY.md).")
    term

(* ------------------------------------------------------------------ *)
(* The verification service: serve / ping / submit / batch
   (docs/SERVICE.md).  The daemon and all clients default to the same
   per-user socket so `psopt serve` in one shell and `psopt submit`
   in another just work. *)

let default_socket =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "psopt-%d.sock" (Unix.getuid ()))

let socket_term =
  let doc = "Unix-domain socket the daemon serves on." in
  Arg.(value & opt string default_socket & info [ "socket" ] ~doc ~docv:"PATH")

(* Client-side mid-frame stall bound.  Only bounds bytes *within* a
   frame — waiting for a slow reply's first byte stays unbounded, so
   long explorations are unaffected; a torn or corrupted frame cannot
   park the client for the daemon's whole idle timeout. *)
let client_io_timeout_term =
  let doc =
    "Client I/O timeout in seconds: give up on a frame whose next byte \
     takes longer than this to arrive (<= 0 disables)."
  in
  Arg.(value & opt float 30.0 & info [ "io-timeout" ] ~doc ~docv:"SECONDS")

let io_timeout_opt s = if s <= 0.0 then None else Some s

let version_cmd =
  let run () =
    print_endline Service.Version.version;
    exit_ok
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the version (substituted at build time from the \
          dune-project version), so deployed daemons and clients can be \
          matched.")
    Term.(const run $ const ())

let serve_cmd =
  let store =
    let doc = "Result-store directory (content-addressed cache)." in
    Arg.(value & opt string "_psopt_store" & info [ "store" ] ~doc ~docv:"DIR")
  in
  let no_store =
    Arg.(value & flag & info [ "no-store" ] ~doc:"Disable the result store.")
  in
  let queue =
    let doc =
      "Admission-queue bound: work requests beyond the one executing and \
       this many waiting are answered Busy."
    in
    Arg.(
      value
      & opt int Service.Server.default_capacity
      & info [ "queue" ] ~doc ~docv:"N")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No log lines on stderr.")
  in
  let io_timeout =
    let doc =
      "Mid-frame I/O deadline per connection in seconds: a peer that \
       stalls inside a frame (slowloris) or stops draining its reply is \
       evicted."
    in
    Arg.(value & opt float 10.0 & info [ "io-timeout" ] ~doc ~docv:"SECONDS")
  in
  let idle_timeout =
    let doc =
      "Between-frames deadline in seconds: how long a keep-alive \
       connection may sit idle before eviction."
    in
    Arg.(
      value & opt float 600.0 & info [ "idle-timeout" ] ~doc ~docv:"SECONDS")
  in
  let request_deadline =
    let doc =
      "Server-side cap on each work request's wall clock in milliseconds; \
       the effective deadline is the minimum of this and the client's \
       --deadline-ms.  Overruns surface as the honest inconclusive \
       verdict."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "request-deadline-ms" ] ~doc ~docv:"MS")
  in
  let queue_ttl =
    let doc =
      "How long a work request may wait in the admission queue in \
       milliseconds before it is answered Shed (0 disables the TTL)."
    in
    Arg.(value & opt int 60_000 & info [ "queue-ttl-ms" ] ~doc ~docv:"MS")
  in
  let run socket store no_store queue quiet io_timeout idle_timeout
      request_deadline queue_ttl trace =
    with_obs trace @@ fun () ->
    match
      Service.Server.run
        {
          Service.Server.socket;
          store_dir = (if no_store then None else Some store);
          capacity = queue;
          quiet;
          io_timeout_s = io_timeout;
          idle_timeout_s = idle_timeout;
          request_deadline_ms = request_deadline;
          queue_ttl_ms = (if queue_ttl <= 0 then None else Some queue_ttl);
        }
    with
    | Ok () -> exit_ok
    | Error msg ->
        Printf.eprintf "psopt serve: %s\n" msg;
        exit_error
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification daemon: accept clients on a Unix-domain \
          socket, serve explore/verify/races/litmus requests out of a \
          content-addressed result store, answer Busy beyond the admission \
          queue, shed expired or preempted queue entries, evict wedged \
          connections, and shut down gracefully on SIGINT/SIGTERM.")
    Term.(
      const run $ socket_term $ store $ no_store $ queue $ quiet $ io_timeout
      $ idle_timeout $ request_deadline $ queue_ttl $ obs_term)

let ping_cmd =
  let run socket =
    match Service.Client.ping ~socket with
    | Ok server_version ->
        Printf.printf "pong: psopt %s at %s\n" server_version socket;
        if server_version <> Service.Version.version then begin
          Obs.Log.warn ~src:"ping"
            "client and server versions differ (rebuild or redeploy)"
            ~fields:
              [
                ("client", Service.Version.version);
                ("server", server_version);
              ];
          exit_fail
        end
        else exit_ok
    | Error msg ->
        Printf.eprintf "psopt ping: %s\n" msg;
        exit_error
  in
  Cmd.v
    (Cmd.info "ping"
       ~doc:
         "Check the daemon is alive and that client and server versions \
          match.")
    Term.(const run $ socket_term)

(* What to ask the service for one program. *)
let service_cmd_term =
  let doc = "Query per program: explore, verify or races." in
  Arg.(
    value
    & opt (enum [ ("explore", `Explore); ("verify", `Verify); ("races", `Races) ])
        `Explore
    & info [ "cmd" ] ~doc)

let service_pass_term =
  let doc = "Optimizer for --cmd verify." in
  Arg.(value & opt string "dce" & info [ "pass" ] ~doc)

let work_of ~cmd ~pass ~disc p =
  match cmd with
  | `Explore -> Service.Proto.Explore (disc, p)
  | `Verify -> Service.Proto.Verify (pass, p)
  | `Races -> Service.Proto.Races p

(* Print a service reply the way the direct subcommand would: report
   on stdout, errors on stderr. *)
let print_reply (r : Service.Proto.reply) =
  if r.Service.Proto.exit_code = exit_error then
    prerr_string r.Service.Proto.output
  else print_string r.Service.Proto.output;
  r.Service.Proto.exit_code

(* Family filtering over exposition text: a line survives when its
   metric name starts with the prefix, and HELP/TYPE headers follow
   their family so greppable context is kept. *)
let filter_exposition prefix text =
  if prefix = "" then text
  else
    String.split_on_char '\n' text
    |> List.filter (fun line ->
           if line = "" then false
           else if String.starts_with ~prefix:"# " line then
             match String.split_on_char ' ' line with
             | "#" :: ("HELP" | "TYPE") :: name :: _ ->
                 String.starts_with ~prefix name
             | _ -> false
           else String.starts_with ~prefix line)
    |> List.map (fun l -> l ^ "\n")
    |> String.concat ""

let ansi_clear = "\027[2J\027[H"

let metrics_cmd =
  let filter =
    Arg.(
      value & opt string ""
      & info [ "filter" ] ~docv:"PREFIX"
          ~doc:"Only print metric families whose name starts with $(docv).")
  in
  let watch =
    Arg.(
      value & opt (some float) None
      & info [ "watch" ] ~docv:"SECS"
          ~doc:
            "Re-scrape every $(docv) seconds with a clear-screen between \
             scrapes (stop with Ctrl-C).")
  in
  let run socket filter watch =
    let scrape () =
      match Service.Client.metrics ~socket with
      | Ok text ->
          print_string (filter_exposition filter text);
          true
      | Error msg ->
          Printf.eprintf "psopt metrics: %s\n" msg;
          false
    in
    match watch with
    | None -> if scrape () then exit_ok else exit_error
    | Some period ->
        let period = Float.max 0.1 period in
        let ok = ref true in
        while !ok do
          print_string ansi_clear;
          ok := scrape ();
          flush stdout;
          if !ok then Unix.sleepf period
        done;
        exit_error
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Scrape a running daemon's metrics registry — counters, gauges \
          and latency histograms — in the Prometheus text exposition \
          format (docs/OBSERVABILITY.md).")
    Term.(const run $ socket_term $ filter $ watch)

let trace_check_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Trace JSON file written by --trace.")
  in
  let min_events =
    Arg.(
      value & opt int 1
      & info [ "min-events" ] ~doc:"Require at least this many span events.")
  in
  let min_names =
    Arg.(
      value & opt int 1
      & info [ "min-names" ]
          ~doc:"Require at least this many distinct span names.")
  in
  let run file min_events min_names =
    match Obs.Trace.validate_file file with
    | Error msg ->
        Printf.eprintf "psopt trace-check: %s: %s\n" file msg;
        exit_fail
    | Ok shape ->
        let names = shape.Obs.Trace.names in
        Printf.printf "trace ok: %d events, %d distinct spans: %s\n"
          shape.Obs.Trace.n_events (List.length names)
          (String.concat " " names);
        if shape.Obs.Trace.n_events < min_events
           || List.length names < min_names
        then begin
          Printf.eprintf
            "psopt trace-check: expected at least %d events and %d distinct \
             span names\n"
            min_events min_names;
          exit_fail
        end
        else exit_ok
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a --trace output file against the Chrome trace_event \
          shape (the CI smoke check; no external tooling needed).")
    Term.(const run $ file $ min_events $ min_names)

let trace_merge_cmd =
  let inputs =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:"Trace JSON files written by --trace (client, daemon, ...).")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Merged trace destination.")
  in
  let run inputs output =
    match Obs.Trace.merge_files ~inputs ~output with
    | Ok n ->
        Printf.printf "merged %d events from %d traces into %s\n" n
          (List.length inputs) output;
        exit_ok
    | Error msg ->
        Printf.eprintf "psopt trace-merge: %s\n" msg;
        exit_error
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:
         "Stitch several --trace files (e.g. a client's and the daemon's) \
          into one timeline: every input becomes its own pid track, \
          re-anchored onto a shared clock via the traces' baseNs stamps; \
          spans of one request line up by their trace_id args \
          (docs/OBSERVABILITY.md).")
    Term.(const run $ inputs $ output)

let submit_cmd =
  let files =
    let doc = "CSimpRTL program files." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let run socket io_timeout trace files cmd pass disc cfg =
    with_obs trace @@ fun () ->
    match
      Service.Client.connect ?io_timeout_s:(io_timeout_opt io_timeout) ~socket
        ()
    with
    | Error msg ->
        Printf.eprintf "psopt submit: %s\n" msg;
        exit_error
    | Ok client ->
        Fun.protect
          ~finally:(fun () -> Service.Client.close client)
          (fun () ->
            List.fold_left
              (fun worst file ->
                let code =
                  match read_program file with
                  | Error msg ->
                      Printf.eprintf "psopt: %s\n" msg;
                      exit_error
                  | Ok p -> (
                      let work = work_of ~cmd ~pass ~disc p in
                      match
                        Service.Client.rpc_wait client (work_req work cfg)
                      with
                      | Ok (Service.Proto.Reply r) ->
                          Printf.printf "== %s ==\n" file;
                          print_reply r
                      | Ok (Service.Proto.Busy _) ->
                          Printf.eprintf "psopt submit: %s: server busy\n" file;
                          exit_error
                      | Ok (Service.Proto.Shed { reason; _ }) ->
                          Printf.eprintf "psopt submit: %s: shed (%s)\n" file
                            (Service.Proto.shed_reason_to_string reason);
                          exit_error
                      | Ok (Service.Proto.Refused msg) ->
                          Printf.eprintf "psopt submit: %s: %s\n" file msg;
                          exit_error
                      | Ok _ ->
                          Printf.eprintf "psopt submit: %s: protocol error\n"
                            file;
                          exit_error
                      | Error msg ->
                          Printf.eprintf "psopt submit: %s: %s\n" file msg;
                          exit_error)
                in
                max worst code)
              exit_ok files)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Send programs to a running daemon (one --cmd query each) and \
          print the replies; results come from the store when cached.")
    Term.(
      const run $ socket_term $ client_io_timeout_term $ obs_term $ files
      $ service_cmd_term $ service_pass_term
      $ discipline_term $ config_term)

let batch_cmd =
  let litmus_flag =
    Arg.(
      value & flag
      & info [ "litmus" ]
          ~doc:"Stream the compiled-in litmus corpus instead of a directory.")
  in
  let dir =
    let doc = "Directory of programs (*.lit concrete syntax, *.sexp)." in
    Arg.(value & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc)
  in
  let min_hit_rate =
    let doc =
      "Fail (exit 1) when the store hit rate falls below this percentage — \
       the CI warm-pass assertion."
    in
    Arg.(value & opt float 0.0 & info [ "min-hit-rate" ] ~doc ~docv:"PCT")
  in
  let run socket io_timeout trace litmus dir min_hit_rate cmd pass disc cfg =
    with_obs trace @@ fun () ->
    let targets =
      if litmus then
        Ok
          (List.map
             (fun (t : Litmus.t) ->
               (t.Litmus.name, `Work (Service.Proto.Litmus t.Litmus.name)))
             Litmus.all)
      else
        match dir with
        | None ->
            Error "psopt batch: need --litmus or a directory of programs"
        | Some d ->
            let files =
              Sys.readdir d |> Array.to_list
              |> List.filter (fun f ->
                     Filename.check_suffix f ".lit"
                     || Filename.check_suffix f ".sexp")
              |> List.sort compare
              |> List.map (fun f -> Filename.concat d f)
            in
            if files = [] then
              Error ("psopt batch: no *.lit or *.sexp programs in " ^ d)
            else
              Ok
                (List.map
                   (fun f ->
                     match
                       if Filename.check_suffix f ".sexp" then
                         match
                           Lang.Sexp.program_of_string (In_channel.with_open_bin f In_channel.input_all)
                         with
                         | Ok p -> Ok (Lang.Wf.check_exn p)
                         | Error e -> Error (f ^ ": " ^ e)
                       else read_program f
                     with
                     | Ok p -> (f, `Work (work_of ~cmd ~pass ~disc p))
                     | Error msg -> (f, `Parse_error msg))
                   files)
    in
    match targets with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit_error
    | Ok targets -> (
        match
          Service.Client.connect
            ?io_timeout_s:(io_timeout_opt io_timeout)
            ~socket ()
        with
        | Error msg ->
            Printf.eprintf "psopt batch: %s\n" msg;
            exit_error
        | Ok client ->
            Fun.protect
              ~finally:(fun () -> Service.Client.close client)
              (fun () ->
                let hits = ref 0 and misses = ref 0 in
                let ok = ref 0 and refuted = ref 0 in
                let inconclusive = ref 0 and errors = ref 0 in
                let count code =
                  if code = exit_ok then incr ok
                  else if code = exit_fail then incr refuted
                  else if code = exit_inconclusive then incr inconclusive
                  else incr errors
                in
                let worst =
                  List.fold_left
                    (fun worst (name, target) ->
                      let code =
                        match target with
                        | `Parse_error msg ->
                            Printf.eprintf "psopt: %s\n" msg;
                            exit_error
                        | `Work w -> (
                            match
                              Service.Client.rpc_wait client (work_req w cfg)
                            with
                            | Ok (Service.Proto.Reply r) ->
                                if r.Service.Proto.cached then incr hits
                                else incr misses;
                                print_reply r
                            | Ok (Service.Proto.Busy _) ->
                                Printf.eprintf
                                  "psopt batch: %s: server busy\n" name;
                                exit_error
                            | Ok (Service.Proto.Shed { reason; _ }) ->
                                Printf.eprintf "psopt batch: %s: shed (%s)\n"
                                  name
                                  (Service.Proto.shed_reason_to_string reason);
                                exit_error
                            | Ok (Service.Proto.Refused msg) ->
                                Printf.eprintf "psopt batch: %s: %s\n" name
                                  msg;
                                exit_error
                            | Ok _ ->
                                Printf.eprintf
                                  "psopt batch: %s: protocol error\n" name;
                                exit_error
                            | Error msg ->
                                Printf.eprintf "psopt batch: %s: %s\n" name
                                  msg;
                                exit_error)
                      in
                      count code;
                      max worst code)
                    exit_ok targets
                in
                let total = !hits + !misses in
                let rate =
                  if total = 0 then 0.0
                  else 100.0 *. float_of_int !hits /. float_of_int total
                in
                (* The daemon-side counters close the report: Busy
                   rejections are retried transparently by [rpc_wait]
                   and corruption misses are silently clean, so
                   neither is visible in the per-request loop above —
                   only the server's own accounting has them. *)
                let server_side =
                  match Service.Client.rpc client Service.Proto.Stats with
                  | Ok (Service.Proto.Stats_reply s) ->
                      Printf.sprintf
                        "; server: busy=%d shed=%d expired=%d evictions=%d \
                         corrupt-miss=%d errors=%d"
                        s.Service.Proto.busy_rejections s.Service.Proto.sheds
                        s.Service.Proto.expired s.Service.Proto.evictions
                        s.Service.Proto.store_corrupt s.Service.Proto.errors
                  | Ok _ | Error _ -> ""
                in
                (* client-side fault handling: how hard rpc_wait had
                   to work to get the answers above *)
                let client_side =
                  let cs = Service.Client.stats client in
                  if cs.Service.Client.retries = 0 then ""
                  else
                    Printf.sprintf
                      "; client: retries=%d reconnects=%d backoff=%.2fs \
                       breaker-trips=%d"
                      cs.Service.Client.retries cs.Service.Client.reconnects
                      cs.Service.Client.backoff_total_s
                      cs.Service.Client.breaker_trips
                in
                (* the summary goes to stderr so stdout stays
                   byte-identical to the direct subcommands *)
                Printf.eprintf
                  "psopt batch: %d requests — %d hits, %d misses (%.0f%% \
                   hit rate); verdicts: %d ok, %d refuted, %d inconclusive, \
                   %d errors%s%s\n"
                  total !hits !misses rate !ok !refuted !inconclusive !errors
                  server_side client_side;
                if rate < min_hit_rate then begin
                  Printf.eprintf
                    "psopt batch: hit rate %.0f%% below required %.0f%%\n"
                    rate min_hit_rate;
                  max worst exit_fail
                end
                else worst))
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Stream a directory of programs (or the litmus corpus) through a \
          running daemon and its result store; report hit/miss and verdict \
          counts on stderr, with stdout byte-identical to the direct \
          subcommands.")
    Term.(
      const run $ socket_term $ client_io_timeout_term $ obs_term $ litmus_flag
      $ dir $ min_hit_rate
      $ service_cmd_term $ service_pass_term $ discipline_term $ config_term)

let chaos_proxy_cmd =
  let listen =
    let doc = "Socket the proxy listens on (clients connect here)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "listen" ] ~doc ~docv:"PATH")
  in
  let upstream =
    let doc = "The real daemon's socket the proxy forwards to." in
    Arg.(value & opt string default_socket & info [ "upstream" ] ~doc ~docv:"PATH")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ]
          ~doc:
            "Fault-schedule seed: the same seed replays the same faults \
             per connection and direction.")
  in
  let prob name what default =
    Arg.(
      value & opt float default
      & info [ name ] ~docv:"P" ~doc:("Per-chunk probability of " ^ what ^ "."))
  in
  let delay_p = prob "delay-p" "an injected delay" 0.25 in
  let tear_p = prob "tear-p" "a torn write (chunk split with a pause)" 0.3 in
  let corrupt_p = prob "corrupt-p" "flipping one byte" 0.05 in
  let disconnect_p = prob "disconnect-p" "dropping the connection" 0.04 in
  let max_delay =
    Arg.(
      value & opt float 0.02
      & info [ "max-delay" ] ~docv:"SECONDS"
          ~doc:"Injected delays are uniform in [0, max-delay].")
  in
  let duration =
    Arg.(
      value & opt float 0.0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Stop after this many seconds (0 = run until SIGINT/SIGTERM).")
  in
  let run listen upstream seed delay_p max_delay_s tear_p corrupt_p
      disconnect_p duration =
    let plan =
      {
        Service.Chaos.seed;
        delay_p;
        max_delay_s;
        tear_p;
        corrupt_p;
        disconnect_p;
      }
    in
    match Service.Chaos.start ~plan ~listen ~upstream with
    | Error msg ->
        Printf.eprintf "psopt chaos-proxy: %s\n" msg;
        exit_error
    | Ok proxy ->
        let stop = ref false in
        List.iter
          (fun s ->
            try Sys.set_signal s (Sys.Signal_handle (fun _ -> stop := true))
            with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigint; Sys.sigterm ];
        let t0 = Unix.gettimeofday () in
        while
          (not !stop)
          && (duration <= 0.0 || Unix.gettimeofday () -. t0 < duration)
        do
          Thread.delay 0.1
        done;
        Service.Chaos.stop proxy;
        let c = Service.Chaos.counts proxy in
        Printf.eprintf
          "psopt chaos-proxy: %d connections; injected %d delays, %d tears, \
           %d corruptions, %d disconnects\n"
          c.Service.Chaos.connections c.Service.Chaos.delays
          c.Service.Chaos.tears c.Service.Chaos.corruptions
          c.Service.Chaos.disconnects;
        exit_ok
  in
  Cmd.v
    (Cmd.info "chaos-proxy"
       ~doc:
         "Run the deterministic fault proxy in front of a daemon: forward \
          a listen socket to the daemon's socket while injecting seeded \
          delays, torn writes, byte corruption and disconnects — the \
          chaos-smoke harness (docs/ROBUSTNESS.md).")
    Term.(
      const run $ listen $ upstream $ seed $ delay_p $ max_delay $ tear_p
      $ corrupt_p $ disconnect_p $ duration)

(* ------------------------------------------------------------------ *)
(* Fleet load generation and the live dashboard (docs/SERVICE.md) *)

let ms_of_ns_f ns = float_of_int ns /. 1e6

let loadgen_json_of_report (r : Service.Loadgen.report) =
  let b = Buffer.create 1024 in
  let class_json (c : Service.Loadgen.class_stats) =
    let q = c.Service.Loadgen.latency in
    Printf.sprintf
      "{\"sent\": %d, \"ok\": %d, \"cached\": %d, \"shed\": %d, \"busy\": %d, \
       \"errors\": %d, \"p50_ms\": %.3f, \"p90_ms\": %.3f, \"p99_ms\": %.3f, \
       \"p999_ms\": %.3f, \"max_ms\": %.3f, \"mean_ms\": %.3f}"
      c.Service.Loadgen.sent c.Service.Loadgen.ok c.Service.Loadgen.cached
      c.Service.Loadgen.shed c.Service.Loadgen.busy c.Service.Loadgen.errors
      (ms_of_ns_f q.Service.Loadgen.Quantiles.p50_ns)
      (ms_of_ns_f q.Service.Loadgen.Quantiles.p90_ns)
      (ms_of_ns_f q.Service.Loadgen.Quantiles.p99_ns)
      (ms_of_ns_f q.Service.Loadgen.Quantiles.p999_ns)
      (ms_of_ns_f q.Service.Loadgen.Quantiles.max_ns)
      (q.Service.Loadgen.Quantiles.mean_ns /. 1e6)
  in
  let mode_json =
    match r.Service.Loadgen.mode with
    | Service.Loadgen.Closed -> "{\"kind\": \"closed\"}"
    | Service.Loadgen.Open { rate_hz; arrivals } ->
        Printf.sprintf "{\"kind\": \"open\", \"rate_hz\": %g, \"arrivals\": \"%s\"}"
          rate_hz
          (match arrivals with
          | Service.Loadgen.Poisson -> "poisson"
          | Service.Loadgen.Uniform -> "uniform")
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"mode\": %s, \"clients\": %d, \"wall_s\": %.3f, \
        \"throughput_rps\": %.1f, \"retries\": %d, \"reconnects\": %d, \
        \"transport_errors\": %d, \"late_sends\": %d, \"high\": %s, \
        \"normal\": %s, \"all\": %s}"
       mode_json r.Service.Loadgen.clients r.Service.Loadgen.wall_s
       r.Service.Loadgen.throughput_rps r.Service.Loadgen.retries
       r.Service.Loadgen.reconnects r.Service.Loadgen.transport_errors
       r.Service.Loadgen.late_sends
       (class_json r.Service.Loadgen.high)
       (class_json r.Service.Loadgen.normal)
       (class_json r.Service.Loadgen.all));
  Buffer.contents b

let print_report (r : Service.Loadgen.report) =
  let mode =
    match r.Service.Loadgen.mode with
    | Service.Loadgen.Closed -> "closed loop"
    | Service.Loadgen.Open { rate_hz; arrivals } ->
        Printf.sprintf "open loop @ %g req/s (%s)" rate_hz
          (match arrivals with
          | Service.Loadgen.Poisson -> "poisson"
          | Service.Loadgen.Uniform -> "uniform")
  in
  Printf.printf "loadgen: %s, %d clients, %.1fs measured\n" mode
    r.Service.Loadgen.clients r.Service.Loadgen.wall_s;
  Printf.printf "  %-7s %8s %8s %7s %6s %6s %5s %9s %9s %9s %9s %9s\n" "class"
    "sent" "ok" "cached" "shed" "busy" "err" "p50ms" "p90ms" "p99ms" "p99.9ms"
    "maxms";
  let row name (c : Service.Loadgen.class_stats) =
    let q = c.Service.Loadgen.latency in
    Printf.printf
      "  %-7s %8d %8d %7d %6d %6d %5d %9.2f %9.2f %9.2f %9.2f %9.2f\n" name
      c.Service.Loadgen.sent c.Service.Loadgen.ok c.Service.Loadgen.cached
      c.Service.Loadgen.shed c.Service.Loadgen.busy c.Service.Loadgen.errors
      (ms_of_ns_f q.Service.Loadgen.Quantiles.p50_ns)
      (ms_of_ns_f q.Service.Loadgen.Quantiles.p90_ns)
      (ms_of_ns_f q.Service.Loadgen.Quantiles.p99_ns)
      (ms_of_ns_f q.Service.Loadgen.Quantiles.p999_ns)
      (ms_of_ns_f q.Service.Loadgen.Quantiles.max_ns)
  in
  row "high" r.Service.Loadgen.high;
  row "normal" r.Service.Loadgen.normal;
  row "all" r.Service.Loadgen.all;
  Printf.printf
    "  throughput %.1f req/s; retries %d, reconnects %d, transport errors \
     %d, late sends %d\n"
    r.Service.Loadgen.throughput_rps r.Service.Loadgen.retries
    r.Service.Loadgen.reconnects r.Service.Loadgen.transport_errors
    r.Service.Loadgen.late_sends

let loadgen_cmd =
  let clients =
    Arg.(
      value & opt int 32
      & info [ "clients" ] ~docv:"N"
          ~doc:"Concurrent client connections (worker threads).")
  in
  let rate =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"HZ"
          ~doc:
            "Open-loop offered arrival rate in requests/second; 0 (default) \
             runs closed-loop.")
  in
  let arrivals =
    let arrivals_conv =
      Arg.enum
        [
          ("poisson", Service.Loadgen.Poisson);
          ("uniform", Service.Loadgen.Uniform);
        ]
    in
    Arg.(
      value & opt arrivals_conv Service.Loadgen.Poisson
      & info [ "arrivals" ] ~docv:"DIST"
          ~doc:"Open-loop interarrival process: $(b,poisson) or $(b,uniform).")
  in
  let duration =
    Arg.(
      value & opt float 10.0
      & info [ "duration" ] ~docv:"SECS" ~doc:"Measured phase length.")
  in
  let warmup =
    Arg.(
      value & opt float 2.0
      & info [ "warmup" ] ~docv:"SECS"
          ~doc:"Warmup phase: traffic is sent but not counted.")
  in
  let high_pct =
    Arg.(
      value & opt int 90
      & info [ "high-pct" ] ~docv:"PCT"
          ~doc:
            "Percentage of requests drawn from the litmus corpus \
             (High-priority, cache-friendly); the rest are distinct \
             stress-generated explorations.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ]
          ~doc:"PRNG seed: mix and arrival schedule are pure functions of it.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ]
          ~doc:
            "rpc_wait retry budget per request (0 = single shot, so Busy and \
             Shed answers are visible in the accounting, not hidden by the \
             client library).")
  in
  let prewarm =
    Arg.(
      value & flag
      & info [ "prewarm" ]
          ~doc:
            "Push the whole litmus corpus through one connection before the \
             clock starts, so a store-backed daemon measures warm.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the report as JSON.")
  in
  let saturation =
    Arg.(
      value & opt string ""
      & info [ "saturation" ] ~docv:"R1,R2,..."
          ~doc:
            "Stepped saturation search: rerun open-loop at each offered rate \
             until the SLO (--slo-p99-ms / --slo-shed-pct) breaks, and \
             report the knee — the last rate that passed.")
  in
  let slo_p99 =
    Arg.(
      value & opt (some float) None
      & info [ "slo-p99-ms" ] ~docv:"MS"
          ~doc:"Saturation SLO: all-class p99 ceiling.")
  in
  let slo_shed =
    Arg.(
      value & opt (some float) None
      & info [ "slo-shed-pct" ] ~docv:"PCT"
          ~doc:"Saturation SLO: ceiling on (shed+busy)/sent percentage.")
  in
  let max_p99 =
    Arg.(
      value & opt (some float) None
      & info [ "max-p99-ms" ] ~docv:"MS"
          ~doc:"Gate: fail (exit 1) when the all-class p99 exceeds this.")
  in
  let max_transport =
    Arg.(
      value & opt (some int) None
      & info [ "max-transport-errors" ] ~docv:"N"
          ~doc:"Gate: fail (exit 1) on more than N transport errors.")
  in
  let run socket io_timeout clients rate arrivals duration warmup high_pct
      seed retries prewarm json saturation slo_p99 slo_shed max_p99
      max_transport =
    let mode =
      if rate <= 0.0 then Service.Loadgen.Closed
      else Service.Loadgen.Open { rate_hz = rate; arrivals }
    in
    let cfg =
      {
        Service.Loadgen.socket;
        clients;
        mode;
        warmup_s = warmup;
        duration_s = duration;
        high_pct;
        seed;
        io_timeout_s = io_timeout_opt io_timeout;
        retries;
        prewarm;
        work_config = Service.Loadgen.default_work_config;
      }
    in
    let write_json payload =
      match json with
      | None -> exit_ok
      | Some file -> (
          match open_out file with
          | exception Sys_error m ->
              Printf.eprintf "psopt loadgen: cannot write %s: %s\n" file m;
              exit_error
          | oc ->
              output_string oc payload;
              output_char oc '\n';
              close_out oc;
              exit_ok)
    in
    let gates (r : Service.Loadgen.report) =
      let p99_ms = ms_of_ns_f r.Service.Loadgen.all.Service.Loadgen.latency.Service.Loadgen.Quantiles.p99_ns in
      let bad = ref false in
      (match max_p99 with
      | Some ceiling when p99_ms > ceiling ->
          Printf.eprintf "psopt loadgen: p99 %.2fms exceeds gate %.2fms\n"
            p99_ms ceiling;
          bad := true
      | _ -> ());
      (match max_transport with
      | Some n when r.Service.Loadgen.transport_errors > n ->
          Printf.eprintf "psopt loadgen: %d transport errors exceed gate %d\n"
            r.Service.Loadgen.transport_errors n;
          bad := true
      | _ -> ());
      !bad
    in
    let rates =
      if saturation = "" then []
      else
        try
          List.map
            (fun s -> float_of_string (String.trim s))
            (String.split_on_char ',' saturation)
        with Failure _ -> []
    in
    if saturation <> "" && rates = [] then begin
      Printf.eprintf "psopt loadgen: cannot parse --saturation %S\n" saturation;
      exit_error
    end
    else if rates = [] then begin
      match Service.Loadgen.run cfg with
      | Error msg ->
          Printf.eprintf "psopt loadgen: %s\n" msg;
          exit_error
      | Ok r ->
          print_report r;
          let code = write_json (loadgen_json_of_report r) in
          if gates r then exit_fail else code
    end
    else begin
      let slo =
        { Service.Loadgen.slo_p99_ms = slo_p99; slo_shed_pct = slo_shed }
      in
      match Service.Loadgen.saturation cfg ~slo ~rates with
      | Error msg ->
          Printf.eprintf "psopt loadgen: %s\n" msg;
          exit_error
      | Ok sat ->
          List.iter
            (fun (s : Service.Loadgen.sat_step) ->
              Printf.printf "== offered %g req/s: %s (shed %.1f%%) ==\n"
                s.Service.Loadgen.rate_hz
                (if s.Service.Loadgen.passed then "SLO ok" else "SLO broken")
                (Service.Loadgen.shed_pct s.Service.Loadgen.step_report);
              print_report s.Service.Loadgen.step_report)
            sat.Service.Loadgen.steps;
          (match sat.Service.Loadgen.knee_hz with
          | Some k -> Printf.printf "saturation knee: %g req/s\n" k
          | None -> Printf.printf "saturation knee: below the first step\n");
          let steps_json =
            String.concat ", "
              (List.map
                 (fun (s : Service.Loadgen.sat_step) ->
                   Printf.sprintf
                     "{\"rate_hz\": %g, \"passed\": %b, \"report\": %s}"
                     s.Service.Loadgen.rate_hz s.Service.Loadgen.passed
                     (loadgen_json_of_report s.Service.Loadgen.step_report))
                 sat.Service.Loadgen.steps)
          in
          write_json
            (Printf.sprintf "{\"steps\": [%s], \"knee_hz\": %s}" steps_json
               (match sat.Service.Loadgen.knee_hz with
               | Some k -> Printf.sprintf "%g" k
               | None -> "null"))
    end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running daemon with concurrent synthetic clients — \
          closed-loop (N persistent clients) or open-loop (seeded \
          Poisson/uniform arrivals at a fixed rate, latency recorded \
          against the intended start so coordinated omission cannot \
          flatter the tail) — and report per-class exact \
          p50/p90/p99/p99.9, throughput and shed/retry/Busy accounting \
          (docs/SERVICE.md).")
    Term.(
      const run $ socket_term $ client_io_timeout_term $ clients $ rate
      $ arrivals $ duration $ warmup $ high_pct $ seed $ retries $ prewarm
      $ json $ saturation $ slo_p99 $ slo_shed $ max_p99 $ max_transport)

(* ---- psopt top: the live terminal dashboard ---- *)

let spark values =
  let blocks = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
  match values with
  | [] -> ""
  | _ ->
      let mx = List.fold_left Float.max 0.0 values in
      String.concat ""
        (List.map
           (fun v ->
             if mx <= 0.0 then blocks.(0)
             else blocks.(min 7 (int_of_float (v /. mx *. 7.99))))
           values)

(* One parsed scrape, reduced to what the dashboard needs: plain
   name-summed values (labels folded away) and the cumulative bucket
   vectors of the two service histograms. *)
let scrape_view text =
  let exposed = Obs.Metrics.parse_exposition text in
  let value name =
    List.fold_left
      (fun acc (e : Obs.Metrics.exposed) ->
        if e.Obs.Metrics.ex_name = name then acc +. e.Obs.Metrics.ex_value
        else acc)
      0.0 exposed
  in
  let buckets family =
    List.filter_map
      (fun (e : Obs.Metrics.exposed) ->
        if e.Obs.Metrics.ex_name = family ^ "_bucket" then
          match List.assoc_opt "le" e.Obs.Metrics.ex_labels with
          | Some "+Inf" -> Some (infinity, e.Obs.Metrics.ex_value)
          | Some le -> (
              match float_of_string_opt le with
              | Some b -> Some (b, e.Obs.Metrics.ex_value)
              | None -> None)
          | None -> None
        else None)
      exposed
    |> List.sort compare
  in
  (value, buckets)

let top_cmd =
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh period.")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop after N refreshes (0 = run until Ctrl-C) — the CI hook.")
  in
  let run socket interval count =
    let interval = Float.max 0.1 interval in
    (* derived per-window figures ride an Obs.Series ring so the
       sparklines show the last minute of history *)
    let history = Obs.Series.create ~capacity:60 ~interval_s:interval () in
    let prev = ref None in
    let iterations = ref 0 in
    let errors = ref 0 in
    let delta_buckets ~now ~before =
      List.map
        (fun (le, cum) ->
          let cum0 =
            match List.assoc_opt le before with Some c -> c | None -> 0.0
          in
          (le, cum -. cum0))
        now
    in
    let render () =
      match Service.Client.metrics ~socket with
      | Error msg ->
          incr errors;
          Printf.eprintf "psopt top: %s\n" msg;
          !errors < 5
      | Ok text ->
          errors := 0;
          let value, buckets = scrape_view text in
          let served = value "psopt_service_served_total" in
          let req_b = buckets "psopt_service_request_duration_ns" in
          let queue_b = buckets "psopt_service_queue_wait_ns" in
          let now = Unix.gettimeofday () in
          (match !prev with
          | None -> ()
          | Some (t_prev, served_prev, req_prev, queue_prev) ->
              let dt = Float.max (now -. t_prev) 1e-3 in
              let qps = Float.max 0.0 ((served -. served_prev) /. dt) in
              let dreq = delta_buckets ~now:req_b ~before:req_prev in
              let p50 =
                Obs.Metrics.quantile_from_cumulative dreq ~q:0.5 /. 1e6
              in
              let p99 =
                Obs.Metrics.quantile_from_cumulative dreq ~q:0.99 /. 1e6
              in
              let dqueue = delta_buckets ~now:queue_b ~before:queue_prev in
              let qwait_p99 =
                Obs.Metrics.quantile_from_cumulative dqueue ~q:0.99 /. 1e6
              in
              let hits = value "psopt_service_store_hits_total" in
              let misses = value "psopt_service_store_misses_total" in
              let hit_rate =
                if hits +. misses <= 0.0 then 0.0
                else 100.0 *. hits /. (hits +. misses)
              in
              Obs.Series.push history
                [ ("qps", qps); ("p50_ms", p50); ("p99_ms", p99) ];
              print_string ansi_clear;
              Printf.printf "psopt top — %s — every %.1fs\n\n" socket interval;
              Printf.printf "  %-16s %10.1f  %s\n" "qps" qps
                (spark (Obs.Series.values history "qps"));
              Printf.printf "  %-16s %10.2f  %s\n" "p50 ms" p50
                (spark (Obs.Series.values history "p50_ms"));
              Printf.printf "  %-16s %10.2f  %s\n" "p99 ms" p99
                (spark (Obs.Series.values history "p99_ms"));
              Printf.printf "  %-16s %10.2f\n" "queue p99 ms" qwait_p99;
              Printf.printf "  %-16s %10.0f\n" "handler threads"
                (value "psopt_service_handler_threads");
              Printf.printf "  %-16s %10.0f\n" "inflight"
                (value "psopt_service_inflight");
              Printf.printf "  %-16s %10.0f\n" "sheds"
                (value "psopt_service_shed_total");
              Printf.printf "  %-16s %10.0f\n" "busy"
                (value "psopt_service_busy_total");
              Printf.printf "  %-16s %9.1f%%\n" "store hit rate" hit_rate;
              Printf.printf "  %-16s %10.0f\n" "served total" served;
              Printf.printf "  %-16s %10.0f\n" "spans dropped"
                (value "psopt_obs_spans_dropped_total");
              flush stdout);
          prev := Some (now, served, req_b, queue_b);
          true
    in
    let continue = ref true in
    while
      !continue && (count = 0 || !iterations < count + 1)
      (* the first scrape only seeds the window *)
    do
      continue := render ();
      incr iterations;
      if !continue && (count = 0 || !iterations < count + 1) then
        Unix.sleepf interval
    done;
    if !errors > 0 then exit_error else exit_ok
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a running daemon's Metrics RPC: \
          qps, windowed p50/p99, queue wait, handler threads, sheds and \
          store hit-rate, with sparkline history (docs/OBSERVABILITY.md).")
    Term.(const run $ socket_term $ interval $ count)

let () =
  let info =
    Cmd.info "psopt" ~version:Service.Version.version
      ~doc:
        "Verifying optimizations of concurrent programs in the promising \
         semantics (PLDI 2022) — executable reproduction."
  in
  let code =
    Cmd.eval'
      (Cmd.group info
         [
           parse_cmd;
           run_cmd;
           sample_cmd;
           explore_cmd;
           opt_cmd;
           refine_cmd;
           races_cmd;
           sim_cmd;
           verify_cmd;
           witness_cmd;
           litmus_cmd;
           stress_cmd;
           record_cmd;
           replay_cmd;
           shrink_cmd;
           version_cmd;
           serve_cmd;
           ping_cmd;
           metrics_cmd;
           trace_check_cmd;
           trace_merge_cmd;
           submit_cmd;
           batch_cmd;
           chaos_proxy_cmd;
           loadgen_cmd;
           top_cmd;
         ])
  in
  (* cmdliner reports CLI/usage problems as 124/125; fold them into
     the documented usage-error code. *)
  exit (if code >= 123 then exit_error else code)
