type stage =
  | Source_ww_rf
  | Simulation of Lang.Ast.fname
  | Refinement
  | Target_ww_rf

type verdict = Verified | Fail of stage * string | Inconclusive of string

type registered = {
  name : string;
  transform : Lang.Ast.program -> Lang.Ast.program;
  invariant : Invariant.t;
}

let reg name (pass : Opt.Pass.t) invariant =
  { name; transform = pass.Opt.Pass.run; invariant }

let registry =
  [
    reg "constprop" Opt.Constprop.pass Invariant.iid;
    reg "dce" Opt.Dce.pass Invariant.idce;
    reg "cse" Opt.Cse.pass Invariant.iid;
    reg "copyprop" Opt.Copyprop.pass Invariant.iid;
    reg "linv" Opt.Linv.pass Invariant.iid;
    reg "licm" Opt.Licm.pass Invariant.iid;
    reg "cleanup" Opt.Cleanup.pass Invariant.iid;
  ]

let find name = List.find_opt (fun r -> String.equal r.name name) registry

let pp_stage ppf = function
  | Source_ww_rf -> Format.pp_print_string ppf "ww-RF(source)"
  | Simulation f -> Format.fprintf ppf "simulation(%s)" f
  | Refinement -> Format.pp_print_string ppf "refinement"
  | Target_ww_rf -> Format.pp_print_string ppf "ww-RF(target)"

let pp_verdict ppf = function
  | Verified -> Format.pp_print_string ppf "verified"
  | Fail (st, why) -> Format.fprintf ppf "failed at %a: %s" pp_stage st why
  | Inconclusive why -> Format.fprintf ppf "inconclusive: %s" why

let check ?sim_config ?explore_config r (src : Lang.Ast.program) =
  let tgt = r.transform src in
  let ecfg =
    match explore_config with Some c -> c | None -> Explore.Config.default
  in
  let par = ecfg.Explore.Config.domains > 1 in
  (* With a domain budget > 1 the four pipeline stages are evaluated
     eagerly as pool tasks (each stage keeping half the budget for its
     own inner parallelism); sequentially they stay lazy so the
     original early exit is preserved.  Either way the verdict is
     decided by inspecting the stages in pipeline order, and each
     stage's result is deterministic, so the verdict is identical. *)
  let scfg =
    if par then
      Some
        { ecfg with Explore.Config.domains = max 1 (ecfg.Explore.Config.domains / 2) }
    else explore_config
  in
  let src_rf = lazy (Race.ww_rf ?config:scfg src) in
  let sims =
    lazy
      (Simcheck.check_program ?config:sim_config ~inv:r.invariant ~target:tgt
         ~source:src ())
  in
  let refn = lazy (Explore.Refine.check ?config:scfg ~target:tgt ~source:src ()) in
  let tgt_rf = lazy (Race.ww_rf ?config:scfg tgt) in
  if par then
    ignore
      (Explore.Pool.map ~j:(min 4 ecfg.Explore.Config.domains)
         (fun f -> f ())
         [
           (fun () -> ignore (Lazy.force src_rf));
           (fun () -> ignore (Lazy.force sims));
           (fun () -> ignore (Lazy.force refn));
           (fun () -> ignore (Lazy.force tgt_rf));
         ]);
  (* 1. The theorem's premise: the source is ww-race-free. *)
  match Lazy.force src_rf with
  | Error e -> Inconclusive e
  | Ok (Race.Inconclusive why) ->
      Inconclusive (Format.asprintf "ww-RF(source): %s" why)
  | Ok (Race.Racy race) ->
      Fail (Source_ww_rf, Format.asprintf "%a" Race.pp_race race)
  | Ok Race.Free -> (
      (* 2. Thread-local simulations (Def. 6.1, one per function). *)
      let bad_sim =
        List.find_opt (fun (_, v) -> v <> Simcheck.Holds) (Lazy.force sims)
      in
      match bad_sim with
      | Some (f, Simcheck.Fails why) -> Fail (Simulation f, why)
      | Some (f, Simcheck.Unknown why) ->
          Inconclusive (Format.asprintf "simulation(%s): %s" f why)
      | Some (_, Simcheck.Holds) -> assert false
      | None -> (
          (* 3. Whole-program refinement of the bounded behaviour sets. *)
          match (Lazy.force refn).Explore.Refine.verdict with
          | Explore.Refine.Violates bad ->
              Fail
                ( Refinement,
                  Format.asprintf "%a" Ps.Event.pp_trace (List.hd bad) )
          | Explore.Refine.Inconclusive why -> Inconclusive why
          | Explore.Refine.Refines -> (
              (* 4. ww-RF preservation (Lemma 6.2). *)
              match Lazy.force tgt_rf with
              | Error e -> Inconclusive e
              | Ok (Race.Inconclusive why) ->
                  Inconclusive (Format.asprintf "ww-RF(target): %s" why)
              | Ok (Race.Racy race) ->
                  Fail (Target_ww_rf, Format.asprintf "%a" Race.pp_race race)
              | Ok Race.Free -> Verified)))
