type config = {
  max_depth : int;
  src_burst : int;
  wind_down : int;
  max_promises : int;
}

let default_config =
  { max_depth = 400; src_burst = 6; wind_down = 24; max_promises = 1 }

type verdict = Holds | Fails of string | Unknown of string

let pp_verdict ppf = function
  | Holds -> Format.pp_print_string ppf "holds"
  | Fails why -> Format.fprintf ppf "fails: %s" why
  | Unknown why -> Format.fprintf ppf "unknown: %s" why

(* ------------------------------------------------------------------ *)
(* Game states *)

type gstate = {
  tst : Ps.Thread.ts;
  mem_t : Ps.Memory.t;
  sst : Ps.Thread.ts;
  mem_s : Ps.Memory.t;
  phi : Tmap.t;
  d : Delayed.t;
  bit : bool;
  promised : int;
}

module GKey = struct
  type t = gstate

  let compare a b =
    let ( <?> ) c next = if c <> 0 then c else next () in
    Ps.Thread.compare a.tst b.tst <?> fun () ->
    Ps.Memory.compare a.mem_t b.mem_t <?> fun () ->
    Ps.Thread.compare a.sst b.sst <?> fun () ->
    Ps.Memory.compare a.mem_s b.mem_s <?> fun () ->
    Tmap.compare a.phi b.phi <?> fun () ->
    Delayed.compare a.d b.d <?> fun () ->
    Bool.compare a.bit b.bit <?> fun () -> Int.compare a.promised b.promised
end

module GMap = Map.Make (GKey)

(* ------------------------------------------------------------------ *)
(* Step bookkeeping helpers *)

(* The "to"-timestamp of the write a step just performed: either the
   message freshly added to memory, or the fulfilled promise. *)
let written_ts before_mem after_mem before_ts after_ts x =
  let fresh =
    List.find_opt
      (fun m -> not (Ps.Memory.contains m before_mem))
      (Ps.Memory.per_loc x after_mem)
  in
  match fresh with
  | Some m -> Some (Ps.Message.to_ m)
  | None ->
      (* a fulfilled promise: present before in the promise set, gone
         after *)
      List.find_opt
        (fun m ->
          not
            (List.exists (Ps.Message.equal m) after_ts.Ps.Thread.prm))
        before_ts.Ps.Thread.prm
      |> Option.map Ps.Message.to_

(* The promised message a Prm step added. *)
let promised_msg before_ts after_ts =
  List.find_opt
    (fun m -> not (List.exists (Ps.Message.equal m) before_ts.Ps.Thread.prm))
    after_ts.Ps.Thread.prm

let is_na_event te = Ps.Event.classify te = Ps.Event.NA

(* ------------------------------------------------------------------ *)
(* The game *)



let check ?(config = default_config) ?(scenarios = ([] : Scenario.t list))
    ~inv ~atomics ~target ~source fname =
  let vars =
    Lang.Ast.VarSet.union
      (Lang.Ast.FnameMap.fold
         (fun _ ch acc -> Lang.Ast.VarSet.union acc (Lang.Cfg.vars_of_codeheap ch))
         target Lang.Ast.VarSet.empty)
      (Lang.Ast.FnameMap.fold
         (fun _ ch acc -> Lang.Ast.VarSet.union acc (Lang.Cfg.vars_of_codeheap ch))
         source Lang.Ast.VarSet.empty)
    |> Lang.Ast.VarSet.elements
  in
  match (Ps.Thread.init target fname, Ps.Thread.init source fname) with
  | None, _ | _, None -> Fails (fname ^ " has no body")
  | Some tst, Some sst ->
      let m0 = Ps.Memory.init vars in
      if not (inv.Invariant.holds (Tmap.init vars) (m0, m0) atomics) then
        Fails "wf(I): invariant does not hold initially"
      else
        let memo = ref GMap.empty in
        let first_failure = ref None in
        let fail fmt =
          Format.kasprintf
            (fun s ->
              if !first_failure = None then first_failure := Some s;
              false)
            fmt
        in
        (* Source responses: all states reachable by 0..burst source
           NA steps, tracking D discharges and φ extensions. *)
        let rec src_bursts burst (sst, mem_s, phi, d) acc =
          let acc = (sst, mem_s, phi, d) :: acc in
          if burst = 0 then acc
          else
            List.fold_left
              (fun acc (s : Ps.Thread.step) ->
                if not (is_na_event s.Ps.Thread.event) then acc
                else
                  let phi, d =
                    match s.Ps.Thread.event with
                    | Ps.Event.Wr (_, x, _) -> (
                        match Delayed.oldest_on x d with
                        | Some pending_ts -> (
                            match
                              written_ts mem_s s.Ps.Thread.mem sst
                                s.Ps.Thread.ts x
                            with
                            | Some src_ts ->
                                ( Tmap.add x pending_ts src_ts phi,
                                  Delayed.discharge x d )
                            | None -> (phi, d))
                        | None -> (phi, d))
                    | _ -> (phi, d)
                  in
                  src_bursts (burst - 1)
                    (s.Ps.Thread.ts, s.Ps.Thread.mem, phi, d)
                    acc)
              acc
              (Ps.Thread.steps ~code:source sst mem_s)
        in
        (* Can the source wind down to a finished, promise-free state
           within the budget? *)
        let rec wind_down fuel (sst, mem_s, phi, d) k =
          (Ps.Thread.is_terminal sst && k (sst, mem_s, phi, d))
          || fuel > 0
             && List.exists
                  (fun (s : Ps.Thread.step) ->
                    is_na_event s.Ps.Thread.event
                    &&
                    let phi, d =
                      match s.Ps.Thread.event with
                      | Ps.Event.Wr (_, x, _) -> (
                          match Delayed.oldest_on x d with
                          | Some pending_ts -> (
                              match
                                written_ts mem_s s.Ps.Thread.mem sst
                                  s.Ps.Thread.ts x
                              with
                              | Some src_ts ->
                                  ( Tmap.add x pending_ts src_ts phi,
                                    Delayed.discharge x d )
                              | None -> (phi, d))
                          | None -> (phi, d))
                      | _ -> (phi, d)
                    in
                    wind_down (fuel - 1)
                      (s.Ps.Thread.ts, s.Ps.Thread.mem, phi, d)
                      k)
                  (Ps.Thread.steps ~code:source sst mem_s)
        in
        let rec sim (g : gstate) depth on_path =
          match GMap.find_opt g !memo with
          | Some r -> r
          | None ->
              if GMap.mem g on_path then true (* coinduction *)
              else if depth >= config.max_depth then
                raise
                  (Explore.Errors.Error
                     (Explore.Errors.Budget_exhausted
                        "simulation depth budget"))
              else
                let on_path = GMap.add g true on_path in
                let r = sim_body g depth on_path in
                memo := GMap.add g r !memo;
                r
        and sim_body g depth on_path =
          (* Termination clause. *)
          if Ps.Thread.is_terminal g.tst then
            wind_down config.wind_down (g.sst, g.mem_s, g.phi, g.d)
              (fun (_, mem_s, phi, d) ->
                Delayed.is_empty d
                && Invariant.holds_wf inv phi (g.mem_t, mem_s) atomics)
            || fail "termination: source cannot wind down with D empty and I"
          else
            let tsteps = Ps.Thread.steps ~code:target g.tst g.mem_t in
            let psteps =
              if g.promised >= config.max_promises || not g.bit then []
              else
                let cands =
                  Ps.Cert.certifiable_writes ~code:target g.tst g.mem_t
                in
                Ps.Thread.promise_steps ~candidates:cands ~atomics g.tst
                  g.mem_t
                |> List.filter (fun (s : Ps.Thread.step) ->
                       Ps.Cert.consistent ~code:target s.Ps.Thread.ts
                         s.Ps.Thread.mem)
            in
            if tsteps = [] && psteps = [] then
              (* stuck target (e.g. unfulfillable promise): vacuously
                 simulated — such executions never commit *)
              true
            else
              List.for_all
                (fun (s : Ps.Thread.step) -> match_step g s depth on_path)
                tsteps
              && List.for_all
                   (fun (s : Ps.Thread.step) ->
                     match_promise g s depth on_path)
                   psteps
        and match_step g (s : Ps.Thread.step) depth on_path =
          let te = s.Ps.Thread.event in
          match Ps.Event.classify te with
          | Ps.Event.NA -> (
              (* (tgt-D): a target na write becomes a pending item. *)
              let d1 =
                match te with
                | Ps.Event.Wr (_, x, _) -> (
                    match written_ts g.mem_t s.Ps.Thread.mem g.tst s.Ps.Thread.ts x with
                    | Some t -> Delayed.record_target_write x t g.d
                    | None -> g.d)
                | _ -> g.d
              in
              let responses =
                src_bursts config.src_burst (g.sst, g.mem_s, g.phi, d1) []
              in
              let ok =
                List.exists
                  (fun (sst, mem_s, phi, d2) ->
                    match Delayed.decrease d2 with
                    | None -> false (* an index ran out: source too late *)
                    | Some d3 ->
                        sim
                          {
                            tst = s.Ps.Thread.ts;
                            mem_t = s.Ps.Thread.mem;
                            sst;
                            mem_s;
                            phi;
                            d = d3;
                            bit = false;
                            promised = g.promised;
                          }
                          (depth + 1) on_path)
                  responses
              in
              match ok with
              | true -> true
              | false ->
                  fail "NA diagram: no source response for %s"
                    (Format.asprintf "%a" Ps.Event.pp_te te))
          | Ps.Event.AT -> (
              (* catch-up bursts, then the same atomic event *)
              let responses =
                src_bursts config.src_burst (g.sst, g.mem_s, g.phi, g.d) []
              in
              let ok =
                List.exists
                  (fun (sst, mem_s, phi, d) ->
                    Delayed.is_empty d
                    && List.exists
                         (fun (ss : Ps.Thread.step) ->
                           Ps.Event.equal_te ss.Ps.Thread.event te
                           &&
                           (* extend φ over an atomic write *)
                           let phi =
                             match te with
                             | Ps.Event.Wr (_, x, _)
                             | Ps.Event.Upd (_, _, x, _, _) -> (
                                 match
                                   ( written_ts g.mem_t s.Ps.Thread.mem g.tst
                                       s.Ps.Thread.ts x,
                                     written_ts mem_s ss.Ps.Thread.mem sst
                                       ss.Ps.Thread.ts x )
                                 with
                                 | Some tt, Some ts' -> Tmap.add x tt ts' phi
                                 | _ -> phi)
                             | _ -> phi
                           in
                           Invariant.holds_wf inv phi
                             (s.Ps.Thread.mem, ss.Ps.Thread.mem)
                             atomics
                           && sim
                                {
                                  tst = s.Ps.Thread.ts;
                                  mem_t = s.Ps.Thread.mem;
                                  sst = ss.Ps.Thread.ts;
                                  mem_s = ss.Ps.Thread.mem;
                                  phi;
                                  d;
                                  bit = true;
                                  promised = g.promised;
                                }
                                (depth + 1) on_path)
                         (Ps.Thread.steps ~code:source sst mem_s))
                  responses
              in
              match ok with
              | true -> true
              | false ->
                  fail
                    "AT diagram: source cannot match %s with D empty and I \
                     re-established"
                    (Format.asprintf "%a" Ps.Event.pp_te te))
          | Ps.Event.PRC ->
              (* reserve/cancel steps are not enumerated for the
                 target here (promises are handled separately) *)
              true
        and match_promise g (s : Ps.Thread.step) depth on_path =
          match promised_msg g.tst s.Ps.Thread.ts with
          | None -> true
          | Some pm -> (
              let x = Ps.Message.var pm in
              let v = Option.value ~default:0 (Ps.Message.value pm) in
              let cands = [ (x, v) ] in
              let ok =
                Ps.Thread.promise_steps ~candidates:cands ~atomics g.sst
                  g.mem_s
                |> List.exists (fun (ss : Ps.Thread.step) ->
                       match promised_msg g.sst ss.Ps.Thread.ts with
                       | None -> false
                       | Some sm ->
                           let phi =
                             Tmap.add x (Ps.Message.to_ pm)
                               (Ps.Message.to_ sm) g.phi
                           in
                           Invariant.holds_wf inv phi
                             (s.Ps.Thread.mem, ss.Ps.Thread.mem)
                             atomics
                           && sim
                                {
                                  tst = s.Ps.Thread.ts;
                                  mem_t = s.Ps.Thread.mem;
                                  sst = ss.Ps.Thread.ts;
                                  mem_s = ss.Ps.Thread.mem;
                                  phi;
                                  d = g.d;
                                  bit = true;
                                  promised = g.promised + 1;
                                }
                                (depth + 1) on_path)
              in
              match ok with
              | true -> true
              | false ->
                  fail "promise diagram: source cannot promise (%s,%d)" x v)
        in
        (* One game per environment scenario: the simulation must
           survive every modelled interference (the empty scenario
           included). *)
        let game scenario =
          let mem0, phi0 =
            List.fold_left
              (fun (mem, phi) msg ->
                match Ps.Memory.add msg mem with
                | Ok mem ->
                    ( mem,
                      Tmap.add (Ps.Message.var msg) (Ps.Message.to_ msg)
                        (Ps.Message.to_ msg) phi )
                | Error _ -> (mem, phi))
              (m0, Tmap.init vars) scenario
          in
          let g0 =
            {
              tst;
              mem_t = mem0;
              sst;
              mem_s = mem0;
              phi = phi0;
              d = Delayed.empty;
              bit = true;
              promised = 0;
            }
          in
          sim g0 0 GMap.empty
        in
        let outcome =
          try
            if List.for_all game ([] :: scenarios) then Holds
            else
              Fails
                (Option.value ~default:"no matching strategy" !first_failure)
          with Explore.Errors.Error (Explore.Errors.Budget_exhausted why) ->
            Unknown (why ^ " exhausted")
        in
        outcome

let check_program ?config ~inv ~target ~source () =
  let fnames = List.sort_uniq String.compare target.Lang.Ast.threads in
  List.map
    (fun f ->
      let scenarios = Scenario.of_program source ~except:f in
      ( f,
        check ?config ~scenarios ~inv ~atomics:target.Lang.Ast.atomics
          ~target:target.Lang.Ast.code ~source:source.Lang.Ast.code f ))
    fnames
