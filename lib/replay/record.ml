module Stepper = Explore.Stepper
module TidMap = Ps.Machine.TidMap

let msg_to_string m = Format.asprintf "%a" Ps.Message.pp m

let view_of (st : Stepper.state) tid =
  match TidMap.find_opt tid st.Stepper.world.Ps.Machine.tp with
  | Some ts -> Some ts.Ps.Thread.view
  | None -> None

(* The location a step touched: read/write/CAS carry it in the event;
   promise/reserve/cancel steps are identified through the memory
   delta (Prm carries no payload). *)
let loc_of (s : Stepper.succ) ~added ~removed =
  match s.Stepper.event with
  | Some
      ( Ps.Event.Rd (_, x, _)
      | Ps.Event.Wr (_, x, _)
      | Ps.Event.Upd (_, _, x, _, _) ) ->
      Some x
  | Some (Ps.Event.Prm | Ps.Event.Rsv) -> (
      match added with m :: _ -> Some (Ps.Message.var m) | [] -> None)
  | Some Ps.Event.Ccl -> (
      match removed with m :: _ -> Some (Ps.Message.var m) | [] -> None)
  | _ -> None

let records_of_trail ~config ~program st0 trail =
  let rec go num (prev : Stepper.state) acc = function
    | [] -> List.rev acc
    | (s : Stepper.succ) :: rest ->
        let next = s.Stepper.state in
        let added =
          Ps.Memory.added ~prev:prev.Stepper.world.Ps.Machine.mem
            next.Stepper.world.Ps.Machine.mem
        in
        let removed =
          Ps.Memory.removed ~prev:prev.Stepper.world.Ps.Machine.mem
            next.Stepper.world.Ps.Machine.mem
        in
        let committed, cert_states =
          Stepper.committed_stats ~config ~program prev
        in
        let view_delta =
          match (view_of prev s.Stepper.tid, view_of next s.Stepper.tid) with
          | Some v0, Some v1 when not (Ps.View.equal v0 v1) ->
              Some (Format.asprintf "%a" (Ps.View.pp_delta ~prev:v0) v1)
          | _ -> None
        in
        let r =
          {
            Trace.num;
            tid = s.Stepper.tid;
            kind = s.Stepper.kind;
            choice = s.Stepper.choice;
            event = s.Stepper.event;
            loc = loc_of s ~added ~removed;
            committed;
            cert_states;
            msgs_added = List.map msg_to_string added;
            view_delta;
          }
        in
        go (num + 1) next (r :: acc) rest
  in
  go 0 st0 [] trail

let header ?(note = "witness") ~config ~discipline ~outs program =
  {
    Trace.version = Trace.current_version;
    program;
    discipline;
    outs;
    config;
    note;
  }

let write_trail ~config ~discipline ~note ~outs ~path program st0 trail =
  let records = records_of_trail ~config ~program st0 trail in
  let h = header ?note ~config ~discipline ~outs program in
  match Store.write_all path h records with
  | Ok () -> Ok (List.length records)
  | Error m -> Error m

let record_witness ?(config = Explore.Config.default)
    ?(discipline = Explore.Enum.Interleaving) ?(eager_switch = false) ?note
    ~outs ~path program =
  match
    Explore.Witness.find_trail ~config ~discipline ~eager_switch ~outs program
  with
  | None -> Error "no witness found within the configured bounds"
  | Some (st0, trail) ->
      write_trail ~config ~discipline ~note ~outs ~path program st0 trail

let record_schedule ?(config = Explore.Config.default)
    ?(discipline = Explore.Enum.Interleaving) ?note ~outs ~path program w =
  let schedule =
    List.map (fun (s : Explore.Witness.step) -> (s.tid, s.event)) w
  in
  match Stepper.drive ~config ~discipline ~program schedule with
  | None -> Error "schedule does not drive to a terminal state"
  | Some (st0, trail) ->
      write_trail ~config ~discipline ~note ~outs ~path program st0 trail
