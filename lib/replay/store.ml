let magic = "psopt-replay/1"
let index_magic = "psopt-replay-idx/1"

type error =
  | Missing of string
  | Bad_magic of string
  | Bad_header of string
  | Truncated of int
  | Corrupt_record of int * string

let error_to_string = function
  | Missing p -> Printf.sprintf "no such trace: %s" p
  | Bad_magic p -> Printf.sprintf "%s: not a psopt replay trace" p
  | Bad_header m -> Printf.sprintf "damaged trace header: %s" m
  | Truncated off -> Printf.sprintf "trace truncated mid-record at byte %d" off
  | Corrupt_record (n, m) -> Printf.sprintf "corrupt record %d: %s" n m

(* ------------------------------------------------------------------ *)
(* Framing: "<len> <md5-hex>\n<payload>\n". *)

let write_frame oc payload =
  Printf.fprintf oc "%d %s\n%s\n" (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

(* Reads the frame starting at the current position.  [Error None] is
   a clean end-of-file exactly at a frame boundary; any other failure
   is [Error (Some (offset, what))]. *)
let read_frame ic =
  let start = pos_in ic in
  match input_line ic with
  | exception End_of_file -> Error None
  | hd -> (
      match String.split_on_char ' ' hd with
      | [ len; digest ] -> (
          match int_of_string_opt len with
          | None -> Error (Some (start, "bad length word"))
          | Some len when len < 0 || len > 1 lsl 26 ->
              Error (Some (start, "implausible length word"))
          | Some len -> (
              let buf = Bytes.create len in
              match really_input ic buf 0 len with
              | exception End_of_file -> Error (Some (start, "eof"))
              | () -> (
                  match input_char ic with
                  | exception End_of_file -> Error (Some (start, "eof"))
                  | '\n' ->
                      let payload = Bytes.to_string buf in
                      if Digest.to_hex (Digest.string payload) = digest then
                        Ok payload
                      else Error (Some (start, "checksum mismatch"))
                  | _ -> Error (Some (start, "missing frame terminator")))))
      | _ -> Error (Some (start, "bad frame header")))

(* ------------------------------------------------------------------ *)
(* Atomic publication (the Service.Store idiom): write to a temp file
   in the destination directory, rename into place on close. *)

let tmp_counter = ref 0

let tmp_path path =
  incr tmp_counter;
  Filename.concat
    (Filename.dirname path)
    (Printf.sprintf ".tmp.%d.%d.%s" (Unix.getpid ()) !tmp_counter
       (Filename.basename path))

type ix = {
  off : int;
  ix_tid : int;
  ix_kind : Trace.kind;
  ix_loc : string option;
}

(* Index locations travel %-encoded so arbitrary location names cannot
   break the line-oriented sidecar format. *)
let enc_loc = function
  | None -> "-"
  | Some s ->
      let b = Buffer.create (String.length s + 2) in
      Buffer.add_char b '=';
      String.iter
        (fun c ->
          match c with
          | ' ' | '\n' | '\r' | '%' ->
              Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
          | c -> Buffer.add_char b c)
        s;
      Buffer.contents b

let dec_loc = function
  | "-" -> Ok None
  | s when String.length s > 0 && s.[0] = '=' -> (
      let s = String.sub s 1 (String.length s - 1) in
      let b = Buffer.create (String.length s) in
      let n = String.length s in
      let rec go i =
        if i >= n then Ok (Some (Buffer.contents b))
        else if s.[i] = '%' then
          if i + 2 >= n then Error "bad %-escape"
          else
            match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
            | Some c ->
                Buffer.add_char b (Char.chr c);
                go (i + 3)
            | None -> Error "bad %-escape"
        else (
          Buffer.add_char b s.[i];
          go (i + 1))
      in
      go 0)
  | _ -> Error "bad location field"

let kind_char = function
  | Trace.Thread_step -> "T"
  | Trace.Promise_step -> "P"
  | Trace.Switch_step -> "S"

let kind_of_char = function
  | "T" -> Ok Trace.Thread_step
  | "P" -> Ok Trace.Promise_step
  | "S" -> Ok Trace.Switch_step
  | _ -> Error "bad kind"

let index_path path = path ^ ".idx"

let write_index path (entries : ix list) ~data_size =
  let tmp = tmp_path (index_path path) in
  let oc = open_out_bin tmp in
  (try
     Printf.fprintf oc "%s\ndata %d %d\n" index_magic data_size
       (List.length entries);
     List.iteri
       (fun num e ->
         Printf.fprintf oc "%d %d %d %s %s\n" num e.off e.ix_tid
           (kind_char e.ix_kind) (enc_loc e.ix_loc))
       entries;
     close_out oc;
     Unix.rename tmp (index_path path)
   with exn ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn)

(* [None]: the index is unusable (missing, damaged, or stale w.r.t.
   the data file's size) — callers rebuild by scanning instead. *)
let load_index path ~data_size =
  let ( let* ) = Option.bind in
  match open_in_bin (index_path path) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let line () = try Some (input_line ic) with End_of_file -> None in
          let* m = line () in
          if m <> index_magic then None
          else
            let* data = line () in
            match String.split_on_char ' ' data with
            | [ "data"; size; count ] -> (
                match (int_of_string_opt size, int_of_string_opt count) with
                | Some size, Some count when size = data_size ->
                    let rec entries num acc =
                      if num = count then
                        match line () with
                        | None -> Some (Array.of_list (List.rev acc))
                        | Some _ -> None
                      else
                        let* l = line () in
                        match String.split_on_char ' ' l with
                        | [ n; off; tid; k; loc ] -> (
                            match
                              ( int_of_string_opt n,
                                int_of_string_opt off,
                                int_of_string_opt tid,
                                kind_of_char k,
                                dec_loc loc )
                            with
                            | Some n, Some off, Some tid, Ok k, Ok loc
                              when n = num ->
                                entries (num + 1)
                                  ({ off; ix_tid = tid; ix_kind = k; ix_loc = loc }
                                  :: acc)
                            | _ -> None)
                        | _ -> None
                    in
                    entries 0 []
                | _ -> None)
            | _ -> None)

(* ------------------------------------------------------------------ *)
(* Writer. *)

type writer = {
  w_path : string;
  w_tmp : string;
  w_oc : out_channel;
  mutable w_entries : ix list;  (* reversed *)
  mutable w_done : bool;
}

let ix_of_record (r : Trace.record) ~off =
  { off; ix_tid = r.Trace.tid; ix_kind = r.Trace.kind; ix_loc = r.Trace.loc }

let create path header =
  let tmp = tmp_path path in
  match open_out_bin tmp with
  | exception Sys_error m -> Error m
  | oc -> (
      try
        Printf.fprintf oc "%s\n" magic;
        write_frame oc (Lang.Sexp.to_string (Trace.sexp_of_header header));
        Ok { w_path = path; w_tmp = tmp; w_oc = oc; w_entries = []; w_done = false }
      with Sys_error m ->
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ());
        Error m)

let append w (r : Trace.record) =
  if w.w_done then Error "writer already closed"
  else
    try
      let off = pos_out w.w_oc in
      write_frame w.w_oc (Lang.Sexp.to_string (Trace.sexp_of_record r));
      w.w_entries <- ix_of_record r ~off :: w.w_entries;
      Ok ()
    with Sys_error m -> Error m

let abort w =
  if not w.w_done then begin
    w.w_done <- true;
    close_out_noerr w.w_oc;
    try Sys.remove w.w_tmp with Sys_error _ -> ()
  end

let close w =
  if w.w_done then Error "writer already closed"
  else begin
    w.w_done <- true;
    try
      close_out w.w_oc;
      let data_size = (Unix.stat w.w_tmp).Unix.st_size in
      Unix.rename w.w_tmp w.w_path;
      write_index w.w_path (List.rev w.w_entries) ~data_size;
      Ok ()
    with
    | Sys_error m ->
        (try Sys.remove w.w_tmp with Sys_error _ -> ());
        Error m
    | Unix.Unix_error (e, _, _) ->
        (try Sys.remove w.w_tmp with Sys_error _ -> ());
        Error (Unix.error_message e)
  end

let write_all path header records =
  let ( let* ) = Result.bind in
  let* w = create path header in
  let rec go = function
    | [] -> close w
    | r :: rest -> (
        match append w r with
        | Ok () -> go rest
        | Error _ as e ->
            abort w;
            e)
  in
  go records

(* ------------------------------------------------------------------ *)
(* Reader. *)

type reader = {
  r_path : string;
  r_ic : in_channel;
  r_header : Trace.header;
  r_ix : ix array;
  r_rebuilt : bool;
}

let header r = r.r_header
let length r = Array.length r.r_ix
let index_rebuilt r = r.r_rebuilt
let close_reader r = close_in_noerr r.r_ic

(* Scan every record frame from the current position, collecting index
   entries; decodes each record (a scan is also a full validation). *)
let scan_entries ic =
  let rec go n acc =
    let off = pos_in ic in
    match read_frame ic with
    | Error None -> Ok (Array.of_list (List.rev acc))
    | Error (Some (off, "eof")) -> Error (Truncated off)
    | Error (Some (_, msg)) -> Error (Corrupt_record (n, msg))
    | Ok payload -> (
        match Lang.Sexp.parse payload with
        | Error m -> Error (Corrupt_record (n, m))
        | Ok sx -> (
            match Trace.record_of_sexp sx with
            | Error m -> Error (Corrupt_record (n, m))
            | Ok r ->
                if r.Trace.num <> n then
                  Error
                    (Corrupt_record
                       (n, Printf.sprintf "record numbered %d" r.Trace.num))
                else go (n + 1) (ix_of_record r ~off :: acc)))
  in
  go 0 []

let open_ path =
  if not (Sys.file_exists path) then Error (Missing path)
  else
    match open_in_bin path with
    | exception Sys_error m -> Error (Bad_header m)
    | ic -> (
        let fail e =
          close_in_noerr ic;
          Error e
        in
        match input_line ic with
        | exception End_of_file -> fail (Bad_magic path)
        | m when m <> magic -> fail (Bad_magic path)
        | _ -> (
            match read_frame ic with
            | Error None -> fail (Bad_header "empty trace")
            | Error (Some (_, msg)) -> fail (Bad_header msg)
            | Ok payload -> (
                match Lang.Sexp.parse payload with
                | Error m -> fail (Bad_header m)
                | Ok sx -> (
                    match Trace.header_of_sexp sx with
                    | Error m -> fail (Bad_header m)
                    | Ok header -> (
                        let body_start = pos_in ic in
                        let data_size = in_channel_length ic in
                        match load_index path ~data_size with
                        | Some ix ->
                            Ok
                              {
                                r_path = path;
                                r_ic = ic;
                                r_header = header;
                                r_ix = ix;
                                r_rebuilt = false;
                              }
                        | None -> (
                            seek_in ic body_start;
                            match scan_entries ic with
                            | Error e -> fail e
                            | Ok ix ->
                                Ok
                                  {
                                    r_path = path;
                                    r_ic = ic;
                                    r_header = header;
                                    r_ix = ix;
                                    r_rebuilt = true;
                                  }))))))

let read r n =
  if n < 0 || n >= Array.length r.r_ix then
    Error (Corrupt_record (n, "record number out of range"))
  else begin
    seek_in r.r_ic r.r_ix.(n).off;
    match read_frame r.r_ic with
    | Error None -> Error (Truncated r.r_ix.(n).off)
    | Error (Some (off, "eof")) -> Error (Truncated off)
    | Error (Some (_, msg)) -> Error (Corrupt_record (n, msg))
    | Ok payload -> (
        match Lang.Sexp.parse payload with
        | Error m -> Error (Corrupt_record (n, m))
        | Ok sx -> (
            match Trace.record_of_sexp sx with
            | Error m -> Error (Corrupt_record (n, m))
            | Ok rec_ ->
                if rec_.Trace.num <> n then
                  Error
                    (Corrupt_record
                       (n, Printf.sprintf "record numbered %d" rec_.Trace.num))
                else Ok rec_))
  end

let read_all r =
  let rec go n acc =
    if n = Array.length r.r_ix then Ok (List.rev acc)
    else
      match read r n with
      | Error e -> Error e
      | Ok rec_ -> go (n + 1) (rec_ :: acc)
  in
  go 0 []

let find_ix r ~from ~f =
  let n = Array.length r.r_ix in
  let rec go i =
    if i >= n then None else if f r.r_ix.(i) then Some i else go (i + 1)
  in
  go (max 0 from)

let find_scan r ~from ~f =
  let n = Array.length r.r_ix in
  let rec go i =
    if i >= n then Ok None
    else
      match read r i with
      | Error e -> Error e
      | Ok rec_ -> if f rec_ then Ok (Some i) else go (i + 1)
  in
  go (max 0 from)
