(** The on-disk trace store: a magic line, then the header and each
    step record as a length-plus-MD5-framed s-expression, with a
    sidecar index mapping step number, thread id, step kind and
    location to file offsets (docs/REPLAY.md).

    {v
    psopt-replay/1
    <len> <md5-hex>
    <header sexp>
    <len> <md5-hex>
    <step-0 sexp>
    …
    v}

    Writers stream into a temp file in the destination directory and
    publish with an atomic rename on {!close} (the {!Service.Store}
    idiom) — a crash mid-record never leaves a half-written trace
    under the final name.  The index ([<path>.idx]) is advisory: it
    records the data file's byte size, so a stale or damaged index is
    detected and silently rebuilt by scanning (flagged via
    {!index_rebuilt}); damage to the {e data} file itself surfaces as
    a typed {!error}, never as a silently different execution (every
    record read re-checks its digest). *)

type error =
  | Missing of string  (** no such file *)
  | Bad_magic of string  (** not a replay trace (or future version) *)
  | Bad_header of string  (** header frame damaged or undecodable *)
  | Truncated of int
      (** data ran out mid-frame at this byte offset — a partially
          written or cut-off trace *)
  | Corrupt_record of int * string
      (** record [n] failed its digest or did not decode *)

val error_to_string : error -> string

(** {1 Writing} *)

type writer

val create : string -> Trace.header -> (writer, string) result
(** Start a trace at [path] (written via a temp file; nothing appears
    at [path] until {!close}). *)

val append : writer -> Trace.record -> (unit, string) result
val close : writer -> (unit, string) result
(** Finalize: flush, atomically rename the data file into place, then
    write the sidecar index. *)

val abort : writer -> unit
(** Drop the temp files; [path] is untouched. *)

val write_all :
  string -> Trace.header -> Trace.record list -> (unit, string) result

(** {1 Reading} *)

type ix = {
  off : int;  (** byte offset of the record's frame *)
  ix_tid : int;
  ix_kind : Trace.kind;
  ix_loc : string option;
}
(** One index entry — enough to answer "next promise" / "next event
    at location" queries without touching the data file. *)

type reader

val open_ : string -> (reader, error) result
val close_reader : reader -> unit
val header : reader -> Trace.header
val length : reader -> int

val index_rebuilt : reader -> bool
(** The sidecar index was missing, stale or damaged and the reader
    fell back to a full scan of the data file. *)

val read : reader -> int -> (Trace.record, error) result
(** Record [n], seek-read via the index, digest re-checked. *)

val read_all : reader -> (Trace.record list, error) result

val find_ix : reader -> from:int -> f:(ix -> bool) -> int option
(** First record number [>= from] whose index entry satisfies [f] —
    the O(1)-per-entry query path. *)

val find_scan :
  reader -> from:int -> f:(Trace.record -> bool) -> (int option, error) result
(** Same search reading full records — the reference the index is
    tested against (index-vs-scan agreement). *)
