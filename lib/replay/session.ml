module Stepper = Explore.Stepper

type t = {
  s_header : Trace.header;
  records : Trace.record array;
  keyframes : Stepper.state array;
      (* keyframes.(i) = state at position i * kf; slot 0 is the
         initial state, the array always covers the whole trace *)
  kf : int;
  mutable pos : int;
  mutable cur : Stepper.state;
  mutable replayed : int;
}

let header t = t.s_header
let length t = Array.length t.records
let pos t = t.pos
let state t = t.cur
let world t = t.cur.Stepper.world
let keyframe_every t = t.kf
let replayed_steps t = t.replayed

let record_at t n =
  if n < 0 || n >= Array.length t.records then None else Some t.records.(n)

(* Apply record [r] from [st]; check the trace still describes this
   program's deterministic enumeration. *)
let apply_record ~config ~discipline ~program st (r : Trace.record) =
  match
    Stepper.apply ~config ~discipline ~program st r.Trace.kind
      ~choice:r.Trace.choice
  with
  | None -> Error "recorded choice not available — trace/config mismatch"
  | Some succ ->
      if
        succ.Stepper.tid <> r.Trace.tid
        || not (Option.equal Ps.Event.equal_te succ.Stepper.event r.Trace.event)
      then Error "recorded event differs from the replayed step"
      else Ok succ.Stepper.state

let of_records ?(keyframe_every = 16) (h : Trace.header) records =
  if keyframe_every <= 0 then Error "keyframe_every must be positive"
  else
    match Stepper.init h.Trace.program with
    | Error m -> Error m
    | Ok st0 -> (
        let config = h.Trace.config and discipline = h.Trace.discipline in
        let program = h.Trace.program in
        let records = Array.of_list records in
        let n = Array.length records in
        let kf = keyframe_every in
        let keyframes = Array.make ((n / kf) + 1) st0 in
        (* Validation pass: replay everything once, snapshotting every
           [kf] steps. *)
        let rec validate i st =
          if i mod kf = 0 then keyframes.(i / kf) <- st;
          if i = n then Ok ()
          else
            let r = records.(i) in
            if r.Trace.num <> i then
              Error (Printf.sprintf "record %d numbered %d" i r.Trace.num)
            else
              match apply_record ~config ~discipline ~program st r with
              | Error m -> Error (Printf.sprintf "step %d: %s" i m)
              | Ok st' -> validate (i + 1) st'
        in
        match validate 0 st0 with
        | Error m -> Error m
        | Ok () ->
            Ok
              {
                s_header = h;
                records;
                keyframes;
                kf;
                pos = 0;
                cur = st0;
                replayed = 0;
              })

let load ?keyframe_every reader =
  match Store.read_all reader with
  | Error e -> Error e
  | Ok records -> (
      match of_records ?keyframe_every (Store.header reader) records with
      | Ok t -> Ok t
      | Error m -> Error (Store.Corrupt_record (0, m)))

let jump t n =
  let len = Array.length t.records in
  if n < 0 || n > len then
    Error (Printf.sprintf "step %d out of range 0..%d" n len)
  else begin
    let config = t.s_header.Trace.config in
    let discipline = t.s_header.Trace.discipline in
    let program = t.s_header.Trace.program in
    (* Start from whichever is closest at or below [n]: the current
       position (cheap forward stepping) or the nearest keyframe. *)
    let base_kf = n / t.kf * t.kf in
    let start_pos, start_state =
      if t.pos <= n && t.pos >= base_kf then (t.pos, t.cur)
      else (base_kf, t.keyframes.(n / t.kf))
    in
    let rec forward i st =
      if i = n then begin
        t.pos <- n;
        t.cur <- st;
        Ok ()
      end
      else
        match
          apply_record ~config ~discipline ~program st t.records.(i)
        with
        | Error m -> Error (Printf.sprintf "step %d: %s" i m)
        | Ok st' ->
            t.replayed <- t.replayed + 1;
            forward (i + 1) st'
    in
    forward start_pos start_state
  end

let step t =
  if t.pos >= Array.length t.records then Ok None
  else
    let r = t.records.(t.pos) in
    match jump t (t.pos + 1) with Error m -> Error m | Ok () -> Ok (Some r)

let back t =
  if t.pos = 0 then Ok None
  else
    let r = t.records.(t.pos - 1) in
    match jump t (t.pos - 1) with Error m -> Error m | Ok () -> Ok (Some r)

let find_from t ~from ~f =
  let n = Array.length t.records in
  let rec go i =
    if i >= n then None else if f t.records.(i) then Some i else go (i + 1)
  in
  go (max 0 from)
