(** The stepping protocol: typed requests and replies for driving a
    {!Session}, with s-expression codecs and {!Service.Proto} framing
    so a stepper can sit behind a socket exactly like the verification
    daemon — plus the line-oriented command syntax [psopt replay]
    reads interactively.

    Commands: [s] step · [b] back · [j N] jump · [i] info · [st]
    where-am-I · [mem] · [views] · [why x] · [next x] · [prm] next
    promise · [sched] full schedule · [q] quit · [h] help. *)

type request =
  | Info
  | Where  (** current position and the step about to execute *)
  | Step
  | Back
  | Jump of int
  | Mem  (** render the memory at the current position *)
  | Views  (** per-thread views and promise sets *)
  | Why of string
      (** everything the debugger knows about one location: its
          messages, what the current thread could read, outstanding
          promises on it, and the next step touching it *)
  | Next_at of string  (** advance to the next step touching a location *)
  | Next_promise  (** advance to the next promise step *)
  | Schedule  (** the whole recorded schedule, annotated *)
  | Quit

type reply =
  | Ok of { pos : int; len : int; text : string }
  | Err of string
  | Bye

val parse_command : string -> (request, string) result
(** One interactive line to a request ([Error] explains the syntax,
    listing the commands). *)

val help : string

val handle : Session.t -> request -> reply
(** Execute a request against a session (mutating its position). *)

(** {1 Serialization} — round-trips exactly, like {!Service.Proto}. *)

val sexp_of_request : request -> Lang.Sexp.t
val request_of_sexp : Lang.Sexp.t -> (request, string) result
val sexp_of_reply : reply -> Lang.Sexp.t
val reply_of_sexp : Lang.Sexp.t -> (reply, string) result

(** {1 Framed transport} over any file descriptor, reusing the
    service's length+digest framing and its timeout discipline. *)

val send_request :
  ?timeout_s:float -> Unix.file_descr -> request -> (unit, Service.Proto.error) result

val recv_request :
  ?idle_timeout_s:float ->
  ?io_timeout_s:float ->
  Unix.file_descr ->
  (request, Service.Proto.error) result

val send_reply :
  ?timeout_s:float -> Unix.file_descr -> reply -> (unit, Service.Proto.error) result

val recv_reply :
  ?idle_timeout_s:float ->
  ?io_timeout_s:float ->
  Unix.file_descr ->
  (reply, Service.Proto.error) result
