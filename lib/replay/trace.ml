module Sexp = Lang.Sexp
module P = Service.Proto

type kind = Explore.Stepper.kind = Thread_step | Promise_step | Switch_step

type record = {
  num : int;
  tid : int;
  kind : kind;
  choice : int;
  event : Ps.Event.te option;
  loc : Lang.Ast.var option;
  committed : bool;
  cert_states : int;
  msgs_added : string list;
  view_delta : string option;
}

type header = {
  version : int;
  program : Lang.Ast.program;
  discipline : Explore.Enum.discipline;
  outs : Lang.Ast.value list;
  config : Explore.Config.t;
  note : string;
}

let current_version = 1

(* ---- thread events ---- *)

let mode_read m = Sexp.Atom (Format.asprintf "%a" Lang.Modes.pp_read m)
let mode_write m = Sexp.Atom (Format.asprintf "%a" Lang.Modes.pp_write m)
let mode_fence m = Sexp.Atom (Format.asprintf "%a" Lang.Modes.pp_fence m)

let sexp_of_te : Ps.Event.te -> Sexp.t = function
  | Ps.Event.Tau -> Sexp.List [ Sexp.Atom "tau" ]
  | Ps.Event.Out v -> Sexp.List [ Sexp.Atom "out"; P.sexp_of_int v ]
  | Ps.Event.Rd (m, x, v) ->
      Sexp.List
        [ Sexp.Atom "rd"; mode_read m; P.atom_of_string x; P.sexp_of_int v ]
  | Ps.Event.Wr (m, x, v) ->
      Sexp.List
        [ Sexp.Atom "wr"; mode_write m; P.atom_of_string x; P.sexp_of_int v ]
  | Ps.Event.Upd (mr, mw, x, vr, vw) ->
      Sexp.List
        [
          Sexp.Atom "upd";
          mode_read mr;
          mode_write mw;
          P.atom_of_string x;
          P.sexp_of_int vr;
          P.sexp_of_int vw;
        ]
  | Ps.Event.Fnc m -> Sexp.List [ Sexp.Atom "fnc"; mode_fence m ]
  | Ps.Event.Prm -> Sexp.List [ Sexp.Atom "prm" ]
  | Ps.Event.Rsv -> Sexp.List [ Sexp.Atom "rsv" ]
  | Ps.Event.Ccl -> Sexp.List [ Sexp.Atom "ccl" ]

let ( let* ) = Result.bind

let read_mode_of_sexp = function
  | Sexp.Atom s -> (
      match Lang.Modes.read_of_string s with
      | Some m -> Ok m
      | None -> Error ("bad read mode " ^ s))
  | Sexp.List _ -> Error "read mode: expected atom"

let write_mode_of_sexp = function
  | Sexp.Atom s -> (
      match Lang.Modes.write_of_string s with
      | Some m -> Ok m
      | None -> Error ("bad write mode " ^ s))
  | Sexp.List _ -> Error "write mode: expected atom"

let fence_mode_of_sexp = function
  | Sexp.Atom s -> (
      match Lang.Modes.fence_of_string s with
      | Some m -> Ok m
      | None -> Error ("bad fence mode " ^ s))
  | Sexp.List _ -> Error "fence mode: expected atom"

let te_of_sexp = function
  | Sexp.List [ Sexp.Atom "tau" ] -> Ok Ps.Event.Tau
  | Sexp.List [ Sexp.Atom "out"; v ] ->
      let* v = P.int_of_sexp v in
      Ok (Ps.Event.Out v)
  | Sexp.List [ Sexp.Atom "rd"; m; x; v ] ->
      let* m = read_mode_of_sexp m in
      let* x = P.string_of_atom x in
      let* v = P.int_of_sexp v in
      Ok (Ps.Event.Rd (m, x, v))
  | Sexp.List [ Sexp.Atom "wr"; m; x; v ] ->
      let* m = write_mode_of_sexp m in
      let* x = P.string_of_atom x in
      let* v = P.int_of_sexp v in
      Ok (Ps.Event.Wr (m, x, v))
  | Sexp.List [ Sexp.Atom "upd"; mr; mw; x; vr; vw ] ->
      let* mr = read_mode_of_sexp mr in
      let* mw = write_mode_of_sexp mw in
      let* x = P.string_of_atom x in
      let* vr = P.int_of_sexp vr in
      let* vw = P.int_of_sexp vw in
      Ok (Ps.Event.Upd (mr, mw, x, vr, vw))
  | Sexp.List [ Sexp.Atom "fnc"; m ] ->
      let* m = fence_mode_of_sexp m in
      Ok (Ps.Event.Fnc m)
  | Sexp.List [ Sexp.Atom "prm" ] -> Ok Ps.Event.Prm
  | Sexp.List [ Sexp.Atom "rsv" ] -> Ok Ps.Event.Rsv
  | Sexp.List [ Sexp.Atom "ccl" ] -> Ok Ps.Event.Ccl
  | _ -> Error "undecodable thread event"

(* ---- options / kinds ---- *)

let sexp_of_opt f = function
  | None -> Sexp.Atom "none"
  | Some v -> Sexp.List [ Sexp.Atom "some"; f v ]

let opt_of_sexp f = function
  | Sexp.Atom "none" -> Ok None
  | Sexp.List [ Sexp.Atom "some"; v ] ->
      let* v = f v in
      Ok (Some v)
  | _ -> Error "expected none | (some _)"

let sexp_of_kind = function
  | Thread_step -> Sexp.Atom "thread"
  | Promise_step -> Sexp.Atom "promise"
  | Switch_step -> Sexp.Atom "switch"

let kind_of_sexp = function
  | Sexp.Atom "thread" -> Ok Thread_step
  | Sexp.Atom "promise" -> Ok Promise_step
  | Sexp.Atom "switch" -> Ok Switch_step
  | _ -> Error "bad step kind"

(* ---- records ---- *)

let sexp_of_record r =
  Sexp.List
    [
      Sexp.Atom "step";
      P.sexp_of_int r.num;
      P.sexp_of_int r.tid;
      sexp_of_kind r.kind;
      P.sexp_of_int r.choice;
      sexp_of_opt sexp_of_te r.event;
      sexp_of_opt P.atom_of_string r.loc;
      P.sexp_of_bool r.committed;
      P.sexp_of_int r.cert_states;
      Sexp.List (List.map P.atom_of_string r.msgs_added);
      sexp_of_opt P.atom_of_string r.view_delta;
    ]

let record_of_sexp = function
  | Sexp.List
      [
        Sexp.Atom "step";
        num;
        tid;
        kind;
        choice;
        event;
        loc;
        committed;
        cert_states;
        Sexp.List msgs;
        view_delta;
      ] ->
      let* num = P.int_of_sexp num in
      let* tid = P.int_of_sexp tid in
      let* kind = kind_of_sexp kind in
      let* choice = P.int_of_sexp choice in
      let* event = opt_of_sexp te_of_sexp event in
      let* loc = opt_of_sexp P.string_of_atom loc in
      let* committed = P.bool_of_sexp committed in
      let* cert_states = P.int_of_sexp cert_states in
      let* msgs_added =
        List.fold_right
          (fun m acc ->
            let* acc = acc in
            let* m = P.string_of_atom m in
            Ok (m :: acc))
          msgs (Ok [])
      in
      let* view_delta = opt_of_sexp P.string_of_atom view_delta in
      Ok
        {
          num;
          tid;
          kind;
          choice;
          event;
          loc;
          committed;
          cert_states;
          msgs_added;
          view_delta;
        }
  | _ -> Error "undecodable step record"

(* ---- header ---- *)

let sexp_of_discipline = function
  | Explore.Enum.Interleaving -> Sexp.Atom "il"
  | Explore.Enum.Non_preemptive -> Sexp.Atom "np"

let discipline_of_sexp = function
  | Sexp.Atom "il" -> Ok Explore.Enum.Interleaving
  | Sexp.Atom "np" -> Ok Explore.Enum.Non_preemptive
  | _ -> Error "bad discipline"

let sexp_of_header h =
  Sexp.List
    [
      Sexp.Atom "replay-header";
      P.sexp_of_int h.version;
      Sexp.sexp_of_program h.program;
      sexp_of_discipline h.discipline;
      Sexp.List (List.map P.sexp_of_int h.outs);
      P.sexp_of_config h.config;
      P.atom_of_string h.note;
    ]

let header_of_sexp = function
  | Sexp.List
      [
        Sexp.Atom "replay-header";
        version;
        program;
        discipline;
        Sexp.List outs;
        config;
        note;
      ] ->
      let* version = P.int_of_sexp version in
      let* () =
        if version = current_version then Ok ()
        else Error (Printf.sprintf "unsupported trace version %d" version)
      in
      let* program = Sexp.program_of_sexp program in
      let* discipline = discipline_of_sexp discipline in
      let* outs =
        List.fold_right
          (fun o acc ->
            let* acc = acc in
            let* o = P.int_of_sexp o in
            Ok (o :: acc))
          outs (Ok [])
      in
      let* config = P.config_of_sexp config in
      let* note = P.string_of_atom note in
      Ok { version; program; discipline; outs; config; note }
  | _ -> Error "undecodable trace header"

(* ---- misc ---- *)

let equal_record (a : record) b =
  a.num = b.num && a.tid = b.tid && a.kind = b.kind && a.choice = b.choice
  && Option.equal Ps.Event.equal_te a.event b.event
  && Option.equal String.equal a.loc b.loc
  && a.committed = b.committed
  && a.cert_states = b.cert_states
  && List.equal String.equal a.msgs_added b.msgs_added
  && Option.equal String.equal a.view_delta b.view_delta

let pp_record ppf r =
  (match r.event with
  | Some e -> Format.fprintf ppf "%d. t%d: %a" r.num r.tid Ps.Event.pp_te e
  | None -> Format.fprintf ppf "%d. -> t%d" r.num r.tid);
  if r.msgs_added <> [] then
    Format.fprintf ppf "  mem %s" (String.concat " " (List.map (fun m -> "+" ^ m) r.msgs_added));
  (match r.view_delta with
  | Some d -> Format.fprintf ppf "  view %s" d
  | None -> ());
  if r.cert_states > 0 then Format.fprintf ppf "  cert:%d" r.cert_states
