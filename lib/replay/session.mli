(** The stepping engine: machine state reconstructed at any step of a
    recorded trace by snapshot-plus-replay.

    Loading validates the whole trace once — every record's [(kind,
    choice)] is applied through {!Explore.Stepper.apply} and its event
    cross-checked — and captures a keyframe (an in-memory machine
    state) every [keyframe_every] steps.  After that, [jump n] replays
    at most [keyframe_every - 1] steps from the nearest snapshot at or
    below [n] (or continues from the current position when that is
    closer), so navigation is O(K), not O(n) — the cost model of
    docs/REPLAY.md.  {!replayed_steps} counts every step re-executed
    since load, which is how the O(K) bound is asserted in tests. *)

type t

val load : ?keyframe_every:int -> Store.reader -> (t, Store.error) result
(** Validate and index a trace ([keyframe_every] defaults to 16; it
    must be positive).  Fails with [Corrupt_record] if some record
    does not decode, does not apply from its pre-state, or applies to
    a different event than recorded. *)

val of_records :
  ?keyframe_every:int ->
  Trace.header ->
  Trace.record list ->
  (t, string) result
(** The same construction from in-memory parts (tests, shrinking). *)

val header : t -> Trace.header
val length : t -> int
(** Number of steps; positions run from [0] (initial state) to
    [length]. *)

val pos : t -> int
val state : t -> Explore.Stepper.state
val world : t -> Ps.Machine.world

val record_at : t -> int -> Trace.record option
(** The step taken from position [n] (so [record_at t (pos t)] is the
    {e next} step; [None] at the end). *)

val jump : t -> int -> (unit, string) result
val step : t -> (Trace.record option, string) result
(** Advance one step; returns the record crossed ([Ok None] at the
    end). *)

val back : t -> (Trace.record option, string) result
(** Retreat one step; returns the record un-done ([Ok None] at 0). *)

val replayed_steps : t -> int
(** Total steps re-executed since load (excluding the validation
    pass): the measured cost of all navigation so far. *)

val keyframe_every : t -> int

val find_from : t -> from:int -> f:(Trace.record -> bool) -> int option
(** First record number [>= from] satisfying [f]. *)
