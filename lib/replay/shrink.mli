(** Counterexample shrinking: ddmin over schedule switch points, and a
    greedy program reducer — both re-validating every candidate, so the
    result always still exhibits the original verdict
    (docs/REPLAY.md).

    A recorded schedule cannot shrink by dropping steps: a terminal
    configuration needs every thread to run to completion, so the
    per-thread event multiset is fixed.  What {e can} shrink is the
    interleaving — how often control changes hands — and the program
    itself.  {!schedule} minimizes context switches: the schedule is
    split into maximal per-thread segments, each boundary is a switch
    point, and dropping a boundary defers that segment's events to the
    next emitted segment of the same thread (or to the tail).  Every
    candidate is replayed through {!Explore.Stepper.drive} and its
    output sequence compared, so only genuinely executable,
    observation-equivalent schedules survive; ddmin terminates on a
    1-minimal set of switch points. *)

val ddmin : check:('a list -> bool) -> 'a list -> 'a list
(** Zeller-Hildebrandt minimizing delta debugging on lists.  [check]
    must hold of the input; the result is a subset on which [check]
    holds and which is 1-minimal: removing any single element breaks
    [check].  [check []] is tried first. *)

type schedule_result = {
  witness : Explore.Witness.t;  (** the shrunk schedule *)
  init : Explore.Stepper.state;
  trail : Explore.Stepper.succ list;
      (** a full replay of [witness], recordable via {!Record} *)
  switches_before : int;
  switches_after : int;
  candidates_tried : int;
}

val schedule :
  ?config:Explore.Config.t ->
  ?discipline:Explore.Enum.discipline ->
  Lang.Ast.program ->
  Explore.Witness.t ->
  (schedule_result, string) result
(** Minimize the context switches of a witness schedule, preserving
    its output sequence.  Fails if the input schedule itself does not
    drive to a terminal state under this configuration. *)

val program :
  keep:(Lang.Ast.program -> bool) ->
  Lang.Ast.program ->
  Lang.Ast.program * int
(** Greedy structural shrinking to a fixpoint: drop a whole thread,
    delete an instruction, collapse a branch to one of its arms,
    shrink a constant toward zero — accepting any candidate that is
    well-formed ({!Lang.Wf.check}), satisfies [keep], and strictly
    decreases program size.  Returns the reduced program and the
    number of candidates tried.  [keep] is the reproduction check
    (e.g. "the witness outcome is still observable" or "refinement
    still fails"); soundness discussion in docs/REPLAY.md. *)
