(** The replay trace model: one header describing the recorded
    execution, then one record per machine step (docs/REPLAY.md).

    A record stores the {e choice}, not the resulting state: the
    successor enumeration of {!Explore.Stepper} is a pure function of
    the pre-state and the configuration, so [(kind, choice)] pairs
    replay the execution deterministically — the store stays compact
    (no machine states on disk) and replay is exact by construction.
    The remaining fields (event, location, memory/view deltas,
    certification cost) are the human-facing annotations the debugger
    surfaces without re-deriving them.

    Serialization is {!Lang.Sexp} with the same total encoders /
    typed-error decoders discipline as {!Service.Proto} (arbitrary
    strings travel percent-encoded behind the ["s:"] sigil). *)

type kind = Explore.Stepper.kind = Thread_step | Promise_step | Switch_step

type record = {
  num : int;  (** 0-based step number: the step from state [num] to
                  state [num+1] *)
  tid : int;  (** acting thread (switch target for switches) *)
  kind : kind;
  choice : int;  (** index within the deterministic successor
                     enumeration — see {!Explore.Stepper.succ} *)
  event : Ps.Event.te option;  (** [None] exactly for switches *)
  loc : Lang.Ast.var option;
      (** shared location the step touched (promises/reservations: the
          announced message's location) — the index key of
          "next event at location" queries *)
  committed : bool;  (** pre-state promise-certification verdict *)
  cert_states : int;
      (** states the certification search expanded at this step's gate
          (0: the promise set was empty, no search ran) *)
  msgs_added : string list;
      (** rendered messages this step added to memory *)
  view_delta : string option;
      (** rendered view change of the acting thread ([None] if its
          view was unchanged) *)
}

type header = {
  version : int;
  program : Lang.Ast.program;
  discipline : Explore.Enum.discipline;
  outs : Lang.Ast.value list;  (** the outputs the execution prints *)
  config : Explore.Config.t;
      (** full exploration configuration — replay re-enumerates
          successors, so the configuration must travel with the trace
          (a quarantined stress case replays under its exact reduction
          mode and budgets) *)
  note : string;  (** free-form origin: ["witness"],
                      ["stress-quarantine seed=…"], … *)
}

val current_version : int

val sexp_of_te : Ps.Event.te -> Lang.Sexp.t
val te_of_sexp : Lang.Sexp.t -> (Ps.Event.te, string) result
val sexp_of_record : record -> Lang.Sexp.t
val record_of_sexp : Lang.Sexp.t -> (record, string) result
val sexp_of_header : header -> Lang.Sexp.t
val header_of_sexp : Lang.Sexp.t -> (header, string) result

val equal_record : record -> record -> bool
val pp_record : Format.formatter -> record -> unit
(** One line: step number, thread, event, then the non-empty
    annotations ([mem +⟨…⟩], [view x: rlx->1], [cert n]). *)
