module Sexp = Lang.Sexp
module P = Service.Proto
module TidMap = Ps.Machine.TidMap

type request =
  | Info
  | Where
  | Step
  | Back
  | Jump of int
  | Mem
  | Views
  | Why of string
  | Next_at of string
  | Next_promise
  | Schedule
  | Quit

type reply =
  | Ok of { pos : int; len : int; text : string }
  | Err of string
  | Bye

let help =
  String.concat "\n"
    [
      "s            step forward";
      "b            step back";
      "j N          jump to step N";
      "i            trace info (program, outputs, config)";
      "st           current position and the step about to run";
      "mem          memory at the current position";
      "views        per-thread views and promise sets";
      "why <loc>    messages, readability and promises of a location";
      "next <loc>   run to the next step touching a location";
      "prm          run to the next promise step";
      "sched        the whole recorded schedule";
      "q            quit";
    ]

let parse_command line =
  let words =
    List.filter
      (fun w -> w <> "")
      (String.split_on_char ' ' (String.trim line))
  in
  match words with
  | [ "s" ] | [ "step" ] -> Stdlib.Ok Step
  | [ "b" ] | [ "back" ] -> Stdlib.Ok Back
  | [ "j"; n ] | [ "jump"; n ] -> (
      match int_of_string_opt n with
      | Some n -> Stdlib.Ok (Jump n)
      | None -> Stdlib.Error (Printf.sprintf "j: not a step number: %s" n))
  | [ "i" ] | [ "info" ] -> Stdlib.Ok Info
  | [ "st" ] | [ "state" ] | [ "where" ] -> Stdlib.Ok Where
  | [ "mem" ] -> Stdlib.Ok Mem
  | [ "views" ] -> Stdlib.Ok Views
  | [ "why"; x ] -> Stdlib.Ok (Why x)
  | [ "next"; x ] -> Stdlib.Ok (Next_at x)
  | [ "prm" ] | [ "next-prm" ] -> Stdlib.Ok Next_promise
  | [ "sched" ] | [ "schedule" ] -> Stdlib.Ok Schedule
  | [ "q" ] | [ "quit" ] | [ "exit" ] -> Stdlib.Ok Quit
  | [ "h" ] | [ "help" ] | [ "?" ] -> Stdlib.Error help
  | _ -> Stdlib.Error ("unknown command; try:\n" ^ help)

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let where_text t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "at step %d/%d" (Session.pos t) (Session.length t));
  (match Session.record_at t (Session.pos t) with
  | Some r ->
      Buffer.add_string b
        (Format.asprintf "@\nnext: %a" Trace.pp_record r)
  | None -> Buffer.add_string b "\nat end (terminal state)");
  Buffer.contents b

let info_text t =
  let h = Session.header t in
  Format.asprintf
    "note: %s@\ndiscipline: %a@\nouts: [%s]@\nsteps: %d@\nthreads: %d@\nconfig: %s"
    h.Trace.note Explore.Enum.pp_discipline h.Trace.discipline
    (String.concat "; " (List.map string_of_int h.Trace.outs))
    (Session.length t)
    (List.length h.Trace.program.Lang.Ast.threads)
    (Explore.Config.fingerprint h.Trace.config)

let mem_text t =
  Format.asprintf "%a" Ps.Memory.pp (Session.world t).Ps.Machine.mem

let views_text t =
  let w = Session.world t in
  let b = Buffer.create 256 in
  TidMap.iter
    (fun tid (ts : Ps.Thread.ts) ->
      Buffer.add_string b
        (Format.asprintf "t%d%s: view %a@\n" tid
           (if tid = w.Ps.Machine.cur then "*" else "")
           Ps.View.pp ts.Ps.Thread.view);
      match ts.Ps.Thread.prm with
      | [] -> ()
      | prm ->
          Buffer.add_string b
            (Format.asprintf "    promises: %a@\n"
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
                  Ps.Message.pp)
               prm))
    w.Ps.Machine.tp;
  String.trim (Buffer.contents b)

let why_text t x =
  let w = Session.world t in
  let mem = w.Ps.Machine.mem in
  let b = Buffer.create 256 in
  (match Ps.Memory.per_loc x mem with
  | [] -> Buffer.add_string b (Printf.sprintf "%s: no messages\n" x)
  | msgs ->
      Buffer.add_string b
        (Format.asprintf "%s messages: %a@\n" x
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
              Ps.Message.pp)
           msgs));
  let cur_ts = Ps.Machine.cur_ts w in
  let readable mode tag =
    match Ps.Memory.readable mode x cur_ts.Ps.Thread.view mem with
    | [] -> ()
    | msgs ->
        Buffer.add_string b
          (Format.asprintf "t%d may read (%s): %a@\n" w.Ps.Machine.cur tag
             (Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
                Ps.Message.pp)
             msgs)
  in
  readable Lang.Modes.Na "na";
  readable Lang.Modes.Rlx "rlx";
  TidMap.iter
    (fun tid (ts : Ps.Thread.ts) ->
      if Ps.Thread.has_promise_on x ts then
        Buffer.add_string b
          (Printf.sprintf "t%d has an outstanding promise on %s\n" tid x))
    w.Ps.Machine.tp;
  (match
     Session.find_from t ~from:(Session.pos t)
       ~f:(fun r -> r.Trace.loc = Some x)
   with
  | Some i ->
      Buffer.add_string b (Printf.sprintf "next step touching %s: %d\n" x i)
  | None ->
      Buffer.add_string b
        (Printf.sprintf "no later step touches %s\n" x));
  String.trim (Buffer.contents b)

let schedule_text t =
  let b = Buffer.create 512 in
  let rec go i =
    match Session.record_at t i with
    | None -> ()
    | Some r ->
        Buffer.add_string b (Format.asprintf "%a@\n" Trace.pp_record r);
        go (i + 1)
  in
  go 0;
  String.trim (Buffer.contents b)

let ok t text = Ok { pos = Session.pos t; len = Session.length t; text }

let crossed t verb = function
  | None -> ok t (Printf.sprintf "%s: %s" verb (where_text t))
  | Some r -> ok t (Format.asprintf "%a@\n%s" Trace.pp_record r (where_text t))

(* Advance to the first record >= pos satisfying [f]; if that is the
   step already about to run, look strictly past it so repeated
   queries make progress. *)
let advance_to t f what =
  let from =
    match Session.record_at t (Session.pos t) with
    | Some r when f r -> Session.pos t + 1
    | _ -> Session.pos t
  in
  match Session.find_from t ~from ~f with
  | None -> ok t (Printf.sprintf "no %s after step %d" what (Session.pos t))
  | Some i -> (
      match Session.jump t i with
      | Stdlib.Error m -> Err m
      | Stdlib.Ok () -> ok t (where_text t))

let handle t = function
  | Info -> ok t (info_text t)
  | Where -> ok t (where_text t)
  | Step -> (
      match Session.step t with
      | Stdlib.Error m -> Err m
      | Stdlib.Ok r -> crossed t "at start of trace; nothing to step" r)
  | Back -> (
      match Session.back t with
      | Stdlib.Error m -> Err m
      | Stdlib.Ok r -> crossed t "at start" r)
  | Jump n -> (
      match Session.jump t n with
      | Stdlib.Error m -> Err m
      | Stdlib.Ok () -> ok t (where_text t))
  | Mem -> ok t (mem_text t)
  | Views -> ok t (views_text t)
  | Why x -> ok t (why_text t x)
  | Next_at x -> advance_to t (fun r -> r.Trace.loc = Some x)
                   (Printf.sprintf "step touching %s" x)
  | Next_promise ->
      advance_to t
        (fun r -> r.Trace.kind = Trace.Promise_step)
        "promise step"
  | Schedule -> ok t (schedule_text t)
  | Quit -> Bye

(* ------------------------------------------------------------------ *)
(* Serialization. *)

let sexp_of_request = function
  | Info -> Sexp.List [ Sexp.Atom "info" ]
  | Where -> Sexp.List [ Sexp.Atom "where" ]
  | Step -> Sexp.List [ Sexp.Atom "step" ]
  | Back -> Sexp.List [ Sexp.Atom "back" ]
  | Jump n -> Sexp.List [ Sexp.Atom "jump"; P.sexp_of_int n ]
  | Mem -> Sexp.List [ Sexp.Atom "mem" ]
  | Views -> Sexp.List [ Sexp.Atom "views" ]
  | Why x -> Sexp.List [ Sexp.Atom "why"; P.atom_of_string x ]
  | Next_at x -> Sexp.List [ Sexp.Atom "next-at"; P.atom_of_string x ]
  | Next_promise -> Sexp.List [ Sexp.Atom "next-promise" ]
  | Schedule -> Sexp.List [ Sexp.Atom "schedule" ]
  | Quit -> Sexp.List [ Sexp.Atom "quit" ]

let ( let* ) = Result.bind

let request_of_sexp = function
  | Sexp.List [ Sexp.Atom "info" ] -> Stdlib.Ok Info
  | Sexp.List [ Sexp.Atom "where" ] -> Stdlib.Ok Where
  | Sexp.List [ Sexp.Atom "step" ] -> Stdlib.Ok Step
  | Sexp.List [ Sexp.Atom "back" ] -> Stdlib.Ok Back
  | Sexp.List [ Sexp.Atom "jump"; n ] ->
      let* n = P.int_of_sexp n in
      Stdlib.Ok (Jump n)
  | Sexp.List [ Sexp.Atom "mem" ] -> Stdlib.Ok Mem
  | Sexp.List [ Sexp.Atom "views" ] -> Stdlib.Ok Views
  | Sexp.List [ Sexp.Atom "why"; x ] ->
      let* x = P.string_of_atom x in
      Stdlib.Ok (Why x)
  | Sexp.List [ Sexp.Atom "next-at"; x ] ->
      let* x = P.string_of_atom x in
      Stdlib.Ok (Next_at x)
  | Sexp.List [ Sexp.Atom "next-promise" ] -> Stdlib.Ok Next_promise
  | Sexp.List [ Sexp.Atom "schedule" ] -> Stdlib.Ok Schedule
  | Sexp.List [ Sexp.Atom "quit" ] -> Stdlib.Ok Quit
  | _ -> Stdlib.Error "undecodable replay request"

let sexp_of_reply = function
  | Ok { pos; len; text } ->
      Sexp.List
        [
          Sexp.Atom "ok";
          P.sexp_of_int pos;
          P.sexp_of_int len;
          P.atom_of_string text;
        ]
  | Err m -> Sexp.List [ Sexp.Atom "err"; P.atom_of_string m ]
  | Bye -> Sexp.List [ Sexp.Atom "bye" ]

let reply_of_sexp = function
  | Sexp.List [ Sexp.Atom "ok"; pos; len; text ] ->
      let* pos = P.int_of_sexp pos in
      let* len = P.int_of_sexp len in
      let* text = P.string_of_atom text in
      Stdlib.Ok (Ok { pos; len; text })
  | Sexp.List [ Sexp.Atom "err"; m ] ->
      let* m = P.string_of_atom m in
      Stdlib.Ok (Err m)
  | Sexp.List [ Sexp.Atom "bye" ] -> Stdlib.Ok Bye
  | _ -> Stdlib.Error "undecodable replay reply"

(* ------------------------------------------------------------------ *)
(* Framed transport (Service.Proto framing). *)

let send_request ?timeout_s fd req =
  P.write_frame ?timeout_s fd (Sexp.to_string (sexp_of_request req))

let recv_of of_sexp ?idle_timeout_s ?io_timeout_s fd =
  match P.read_frame ?idle_timeout_s ?io_timeout_s fd with
  | Stdlib.Error e -> Stdlib.Error e
  | Stdlib.Ok payload -> (
      match Sexp.parse payload with
      | Stdlib.Error m -> Stdlib.Error (P.Corrupt m)
      | Stdlib.Ok sx -> (
          match of_sexp sx with
          | Stdlib.Error m -> Stdlib.Error (P.Corrupt m)
          | Stdlib.Ok v -> Stdlib.Ok v))

let recv_request ?idle_timeout_s ?io_timeout_s fd =
  recv_of request_of_sexp ?idle_timeout_s ?io_timeout_s fd

let send_reply ?timeout_s fd reply =
  P.write_frame ?timeout_s fd (Sexp.to_string (sexp_of_reply reply))

let recv_reply ?idle_timeout_s ?io_timeout_s fd =
  recv_of reply_of_sexp ?idle_timeout_s ?io_timeout_s fd
