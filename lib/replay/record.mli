(** The recorder: turn a {!Explore.Stepper} trail into persistable
    step records, annotating each step with what it did to memory, how
    the acting thread's view moved, and what its certification gate
    cost (docs/REPLAY.md). *)

val records_of_trail :
  config:Explore.Config.t ->
  program:Lang.Ast.program ->
  Explore.Stepper.state ->
  Explore.Stepper.succ list ->
  Trace.record list
(** One record per trail step.  Deterministic given the trail: the
    annotations (message/view deltas, certification stats) are
    recomputed from the states along the trail. *)

val header :
  ?note:string ->
  config:Explore.Config.t ->
  discipline:Explore.Enum.discipline ->
  outs:Lang.Ast.value list ->
  Lang.Ast.program ->
  Trace.header

val record_witness :
  ?config:Explore.Config.t ->
  ?discipline:Explore.Enum.discipline ->
  ?eager_switch:bool ->
  ?note:string ->
  outs:Lang.Ast.value list ->
  path:string ->
  Lang.Ast.program ->
  (int, string) result
(** Search for a witness of [outs] ({!Explore.Witness.find_trail}) and
    persist its full trail at [path].  Returns the number of steps
    recorded; [Error] if no witness exists within the bounds or the
    store cannot be written. *)

val record_schedule :
  ?config:Explore.Config.t ->
  ?discipline:Explore.Enum.discipline ->
  ?note:string ->
  outs:Lang.Ast.value list ->
  path:string ->
  Lang.Ast.program ->
  Explore.Witness.t ->
  (int, string) result
(** Re-drive a known schedule ({!Explore.Stepper.drive}) and persist
    the resulting trail — how shrunk witnesses are written back out. *)
