module Stepper = Explore.Stepper
module Witness = Explore.Witness
module Ast = Lang.Ast
module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Generic ddmin. *)

let split_chunks items n =
  let len = List.length items in
  let base = len / n and extra = len mod n in
  let rec go i items acc =
    if i = n then List.rev acc
    else
      let take = base + if i < extra then 1 else 0 in
      let rec split k xs pre =
        if k = 0 then (List.rev pre, xs)
        else
          match xs with
          | [] -> (List.rev pre, [])
          | x :: xs -> split (k - 1) xs (x :: pre)
      in
      let chunk, rest = split take items [] in
      go (i + 1) rest (chunk :: acc)
  in
  List.filter (fun c -> c <> []) (go 0 items [])

let complement_of items chunk =
  List.filter (fun x -> not (List.memq x chunk)) items

let ddmin ~check items =
  if check [] then []
  else
    let rec go items n =
      let len = List.length items in
      if len <= 1 then items
      else
        let chunks = split_chunks items n in
        match List.find_opt check chunks with
        | Some c -> go c 2
        | None -> (
            let complements =
              if n = 2 then [] (* same as the chunks just tried *)
              else List.map (complement_of items) chunks
            in
            match List.find_opt check complements with
            | Some c -> go c (max (n - 1) 2)
            | None -> if n < len then go items (min len (2 * n)) else items)
    in
    go items 2

(* ------------------------------------------------------------------ *)
(* Schedule shrinking. *)

type schedule_result = {
  witness : Witness.t;
  init : Stepper.state;
  trail : Stepper.succ list;
  switches_before : int;
  switches_after : int;
  candidates_tried : int;
}

(* Maximal runs of steps by the same thread, in order. *)
let segments (w : Witness.t) =
  let rec go acc cur cur_tid = function
    | [] -> List.rev (if cur = [] then acc else (cur_tid, List.rev cur) :: acc)
    | (s : Witness.step) :: rest ->
        if cur <> [] && s.tid = cur_tid then go acc (s :: cur) cur_tid rest
        else
          go
            (if cur = [] then acc else (cur_tid, List.rev cur) :: acc)
            [ s ] s.tid rest
  in
  go [] [] (-1) w

(* Rebuild a schedule keeping only the switch points in [kept]
   (boundary [i] sits before segment [i]; segment 0 is always
   emitted).  A dropped segment's events are deferred — prepended, in
   original order, to the next emitted segment of the same thread, or
   appended at the tail if none follows. *)
let rebuild segs kept =
  let keptset = List.fold_left (Fun.flip IntSet.add) IntSet.empty kept in
  (* [pending]: tid -> deferred steps, assoc list in first-deferral
     order so the tail is deterministic. *)
  let take_pending pending tid =
    match List.assoc_opt tid pending with
    | None -> ([], pending)
    | Some steps -> (steps, List.remove_assoc tid pending)
  in
  let add_pending pending tid steps =
    match List.assoc_opt tid pending with
    | None -> pending @ [ (tid, steps) ]
    | Some _ ->
        List.map
          (fun (t, ss) -> if t = tid then (t, ss @ steps) else (t, ss))
          pending
  in
  let rec go i pending acc = function
    | [] ->
        let tail = List.concat_map snd pending in
        List.concat (List.rev acc) @ tail
    | (tid, steps) :: rest ->
        if i = 0 || IntSet.mem i keptset then
          let pfx, pending = take_pending pending tid in
          go (i + 1) pending ((pfx @ steps) :: acc) rest
        else go (i + 1) (add_pending pending tid steps) acc rest
  in
  go 0 [] [] segs

let outs_of (w : Witness.t) =
  List.filter_map
    (fun (s : Witness.step) ->
      match s.event with Ps.Event.Out v -> Some v | _ -> None)
    w

let count_switches trail =
  List.length
    (List.filter (fun (s : Stepper.succ) -> s.kind = Stepper.Switch_step) trail)

let drive_witness ~config ~discipline ~program (w : Witness.t) =
  Stepper.drive ~config ~discipline ~program
    (List.map (fun (s : Witness.step) -> (s.tid, s.event)) w)

let schedule ?(config = Explore.Config.default)
    ?(discipline = Explore.Enum.Interleaving) program (w : Witness.t) =
  match drive_witness ~config ~discipline ~program w with
  | None -> Error "schedule does not drive to a terminal state"
  | Some (_, trail0) ->
      let segs = segments w in
      let n_segs = List.length segs in
      let boundaries = List.init (max 0 (n_segs - 1)) (fun i -> i + 1) in
      let outs0 = outs_of w in
      let tried = ref 0 in
      (* Deferral changes positions, never per-thread order — but it
         can reorder [Out] events across threads, so the observable
         sequence is re-checked explicitly. *)
      let check kept =
        incr tried;
        let cand = rebuild segs kept in
        outs_of cand = outs0
        && Option.is_some (drive_witness ~config ~discipline ~program cand)
      in
      let kept = ddmin ~check boundaries in
      let witness = rebuild segs kept in
      (* Re-drive the winner for the final trail (ddmin only kept the
         boolean). *)
      (match drive_witness ~config ~discipline ~program witness with
      | None -> Error "internal: accepted candidate no longer drives"
      | Some (init, trail) ->
          Ok
            {
              witness;
              init;
              trail;
              switches_before = count_switches trail0;
              switches_after = count_switches trail;
              candidates_tried = !tried;
            })

(* ------------------------------------------------------------------ *)
(* Program shrinking. *)

(* Size counts only code reachable from the running threads, so
   dropping a thread strictly helps even though its function stays in
   the heap. *)
let reachable (p : Ast.program) =
  let module SS = Set.Make (String) in
  let rec go seen = function
    | [] -> seen
    | f :: todo ->
        if SS.mem f seen then go seen todo
        else
          let seen = SS.add f seen in
          let callees =
            match Ast.FnameMap.find_opt f p.code with
            | None -> []
            | Some ch ->
                Ast.LabelMap.fold
                  (fun _ (b : Ast.block) acc ->
                    match b.term with
                    | Ast.Call (g, _) -> g :: acc
                    | _ -> acc)
                  ch.Ast.blocks []
          in
          go seen (callees @ todo)
  in
  go SS.empty p.threads

let rec expr_size = function
  | Ast.Reg _ -> 1
  | Ast.Val k -> 1 + min (abs k) 999
  | Ast.Bin (_, a, b) -> 1 + expr_size a + expr_size b

let instr_size = function
  | Ast.Load _ | Ast.Skip | Ast.Fence _ -> 1000
  | Ast.Store (_, e, _) | Ast.Assign (_, e) | Ast.Print e ->
      1000 + expr_size e
  | Ast.Cas (_, _, er, ew, _, _) -> 1000 + expr_size er + expr_size ew

let term_size = function
  | Ast.Jmp _ | Ast.Return -> 100
  | Ast.Be (e, _, _) -> 500 + expr_size e
  | Ast.Call _ -> 100

let size (p : Ast.program) =
  let module SS = Set.Make (String) in
  let live = reachable p in
  (* weigh the thread list itself so a dropped thread always counts *)
  (10000 * List.length p.threads)
  + Ast.FnameMap.fold
      (fun f (ch : Ast.codeheap) acc ->
        if not (SS.mem f live) then acc
        else
          Ast.LabelMap.fold
            (fun _ (b : Ast.block) acc ->
              List.fold_left (fun acc i -> acc + instr_size i) acc b.instrs
              + term_size b.term)
            ch.Ast.blocks acc)
      p.code 0

let rec expr_shrinks = function
  | Ast.Reg _ | Ast.Val 0 -> []
  | Ast.Val k ->
      Ast.Val 0 :: (if k / 2 <> 0 && k / 2 <> k then [ Ast.Val (k / 2) ] else [])
  | Ast.Bin (op, a, b) ->
      List.map (fun a' -> Ast.Bin (op, a', b)) (expr_shrinks a)
      @ List.map (fun b' -> Ast.Bin (op, a, b')) (expr_shrinks b)

let instr_shrinks = function
  | Ast.Store (x, e, o) ->
      List.map (fun e' -> Ast.Store (x, e', o)) (expr_shrinks e)
  | Ast.Assign (r, e) ->
      List.map (fun e' -> Ast.Assign (r, e')) (expr_shrinks e)
  | Ast.Print e -> List.map (fun e' -> Ast.Print e') (expr_shrinks e)
  | Ast.Cas (r, x, er, ew, o1, o2) ->
      List.map (fun e' -> Ast.Cas (r, x, e', ew, o1, o2)) (expr_shrinks er)
      @ List.map (fun e' -> Ast.Cas (r, x, er, e', o1, o2)) (expr_shrinks ew)
  | Ast.Load _ | Ast.Skip | Ast.Fence _ -> []

let term_shrinks = function
  | Ast.Be (e, l1, l2) ->
      Ast.Jmp l1 :: Ast.Jmp l2
      :: List.map (fun e' -> Ast.Be (e', l1, l2)) (expr_shrinks e)
  | Ast.Jmp _ | Ast.Call _ | Ast.Return -> []

let with_block (p : Ast.program) f l (b : Ast.block) =
  let ch = Ast.FnameMap.find f p.code in
  let ch = { ch with Ast.blocks = Ast.LabelMap.add l b ch.Ast.blocks } in
  { p with Ast.code = Ast.FnameMap.add f ch p.code }

let drop_nth n l = List.filteri (fun i _ -> i <> n) l

let candidates (p : Ast.program) =
  let threads =
    if List.length p.threads <= 1 then []
    else
      List.mapi
        (fun i _ -> { p with Ast.threads = drop_nth i p.threads })
        p.threads
  in
  let per_block =
    Ast.FnameMap.fold
      (fun f (ch : Ast.codeheap) acc ->
        Ast.LabelMap.fold
          (fun l (b : Ast.block) acc ->
            let drops =
              List.mapi
                (fun i _ ->
                  with_block p f l
                    { b with Ast.instrs = drop_nth i b.Ast.instrs })
                b.Ast.instrs
            in
            let terms =
              List.map
                (fun t' -> with_block p f l { b with Ast.term = t' })
                (term_shrinks b.Ast.term)
            in
            let consts =
              List.concat
                (List.mapi
                   (fun i ins ->
                     List.map
                       (fun ins' ->
                         with_block p f l
                           {
                             b with
                             Ast.instrs =
                               List.mapi
                                 (fun j x -> if j = i then ins' else x)
                                 b.Ast.instrs;
                           })
                       (instr_shrinks ins))
                   b.Ast.instrs)
            in
            drops @ terms @ consts @ acc)
          ch.Ast.blocks acc)
      p.code []
  in
  threads @ per_block

let program ~keep p0 =
  let tried = ref 0 in
  let ok p =
    incr tried;
    (match Lang.Wf.check p with Ok () -> true | Error _ -> false) && keep p
  in
  let rec go p =
    let sz = size p in
    match List.find_opt (fun c -> size c < sz && ok c) (candidates p) with
    | Some c -> go c
    | None -> p
  in
  (* bind before pairing: tuple components evaluate right-to-left, so
     [(go p0, !tried)] would read the counter before any candidate ran *)
  let p = go p0 in
  (p, !tried)
