(* The fleet load generator behind `psopt loadgen` and the bench
   loadgen table.

   Two generation modes, because they answer different questions:

   - Closed loop: N persistent clients, each sending its next request
     the moment the previous answer lands.  Offered load adapts to the
     server — a stalled server quietly stops being offered work, so
     closed-loop latency *cannot* see overload.  Good for "how fast
     can N well-behaved clients go", useless for tail honesty.

   - Open loop: a seeded arrival schedule fixes every request's
     intended start time in advance (Poisson or uniform interarrival
     at a configured rate); workers send on schedule regardless of how
     the server is doing.  Latency is recorded against the *intended*
     start, not the actual send — if the generator falls behind, the
     backlog time is part of what a real arrival would have waited, so
     it belongs in the number.  This is the standard defense against
     coordinated omission: a server stall must surface in the tail,
     not silently reshape the offered load.

   Latency samples are raw per-worker arrays merged and sorted at the
   end — exact order statistics, no histogram interpolation error in
   the reported p99.9. *)

type arrivals = Poisson | Uniform
type mode = Closed | Open of { rate_hz : float; arrivals : arrivals }
type klass = High | Normal

module Schedule = struct
  (* Intended start offsets (ns, strictly relative to the run start)
     for [n] arrivals at [rate_hz].  A pure function of the seed:
     reruns and saturation steps are comparable. *)
  let gen ~seed ~arrivals ~rate_hz ~n =
    if rate_hz <= 0. then invalid_arg "Schedule.gen: rate must be positive";
    let st = Random.State.make [| seed; 0x10adc0de |] in
    let period_ns = 1e9 /. rate_hz in
    let a = Array.make (max n 0) 0 in
    let t = ref 0.0 in
    for i = 0 to n - 1 do
      let gap =
        match arrivals with
        | Uniform -> period_ns
        | Poisson ->
            (* exponential interarrivals: -ln(1-u)/rate *)
            let u = Random.State.float st 1.0 in
            -.period_ns *. log (1.0 -. u)
      in
      t := !t +. gap;
      a.(i) <- int_of_float !t
    done;
    a

  (* The coordinated-omission-safe latency assignment: completion
     against the schedule, never against the (possibly late) send. *)
  let co_latency ~intended_ns ~completion_ns = completion_ns - intended_ns
end

module Quantiles = struct
  type t = {
    n : int;
    p50_ns : int;
    p90_ns : int;
    p99_ns : int;
    p999_ns : int;
    max_ns : int;
    mean_ns : float;
  }

  let zero =
    { n = 0; p50_ns = 0; p90_ns = 0; p99_ns = 0; p999_ns = 0; max_ns = 0;
      mean_ns = 0. }

  (* Exact order statistic over a sorted array: the ceil(q*n)-th
     smallest sample (1-based), the "nearest rank" definition. *)
  let exact sorted q =
    let n = Array.length sorted in
    if n = 0 then 0
    else
      let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
      sorted.(min (n - 1) (max 0 (rank - 1)))

  let of_samples samples =
    let n = Array.length samples in
    if n = 0 then zero
    else begin
      let sorted = Array.copy samples in
      Array.sort compare sorted;
      let sum = Array.fold_left (fun acc v -> acc +. float_of_int v) 0. sorted in
      {
        n;
        p50_ns = exact sorted 0.5;
        p90_ns = exact sorted 0.9;
        p99_ns = exact sorted 0.99;
        p999_ns = exact sorted 0.999;
        max_ns = sorted.(n - 1);
        mean_ns = sum /. float_of_int n;
      }
    end
end

type class_stats = {
  sent : int;
  ok : int;
  cached : int;  (** subset of [ok] answered from the store *)
  shed : int;
  busy : int;
  errors : int;
  latency : Quantiles.t;
}

type report = {
  mode : mode;
  clients : int;
  wall_s : float;  (** measured window actually covered *)
  throughput_rps : float;  (** ok answers per measured second *)
  high : class_stats;
  normal : class_stats;
  all : class_stats;
  retries : int;
  reconnects : int;
  transport_errors : int;  (** I/O-level failures, excludes Refused *)
  late_sends : int;  (** open loop: sends that fell behind schedule *)
}

type config = {
  socket : string;
  clients : int;
  mode : mode;
  warmup_s : float;
  duration_s : float;
  high_pct : int;  (** % of requests drawn from the litmus corpus *)
  seed : int;
  io_timeout_s : float option;
  retries : int;  (** rpc_wait budget per request; 0 = single shot *)
  prewarm : bool;
      (** push the whole litmus corpus through one connection before
          the clock starts, so a store-backed daemon measures warm *)
  work_config : Explore.Config.t;
}

(* Generated explorations are kept deliberately small: the point of
   the Normal class is heterogeneous *uncached* work (every seed is a
   distinct program, so the store cannot answer it), not minutes-long
   searches that outlive the measurement window. *)
let default_work_config =
  {
    Explore.Config.quick with
    Explore.Config.max_steps = 400;
    deadline_ms = Some 2_000;
    domains = 1;
  }

let default ~socket =
  {
    socket;
    clients = 32;
    mode = Closed;
    warmup_s = 2.0;
    duration_s = 10.0;
    high_pct = 90;
    seed = 1;
    io_timeout_s = Some 30.0;
    retries = 0;
    prewarm = false;
    work_config = default_work_config;
  }

let litmus_names =
  lazy (Array.of_list (List.map (fun t -> t.Litmus.name) Litmus.all))

(* The request mix is a pure function of (seed, index): every worker
   and every rerun agrees on what request k is. *)
let request_of ~seed ~high_pct i =
  let st = Random.State.make [| seed; i; 0x5eed |] in
  if Random.State.int st 100 < high_pct then
    let names = Lazy.force litmus_names in
    (High, Proto.Litmus names.(Random.State.int st (Array.length names)))
  else
    ( Normal,
      Proto.Explore
        (Explore.Enum.Interleaving, Explore.Stress.generate ~seed:(seed + i)) )

(* ---- per-worker accounting ---- *)

type acc = {
  mutable a_sent : int;
  mutable a_ok : int;
  mutable a_cached : int;
  mutable a_shed : int;
  mutable a_busy : int;
  mutable a_errors : int;
  mutable a_transport : int;
  mutable a_late : int;
  mutable lat : int array;
  mutable nlat : int;
}

let fresh_acc () =
  { a_sent = 0; a_ok = 0; a_cached = 0; a_shed = 0; a_busy = 0; a_errors = 0;
    a_transport = 0; a_late = 0; lat = Array.make 256 0; nlat = 0 }

let push_lat a v =
  if a.nlat = Array.length a.lat then begin
    let bigger = Array.make (2 * a.nlat) 0 in
    Array.blit a.lat 0 bigger 0 a.nlat;
    a.lat <- bigger
  end;
  a.lat.(a.nlat) <- v;
  a.nlat <- a.nlat + 1

(* Outcome classification shared by both loops.  [lat_ns] is only
   recorded for answered requests ([Reply]): sheds and busies are
   near-instant rejections whose latency would only dilute the story
   the tail tells about served work. *)
let account acc ~in_window ~lat_ns outcome =
  if in_window then begin
    acc.a_sent <- acc.a_sent + 1;
    match outcome with
    | `Ok cached ->
        acc.a_ok <- acc.a_ok + 1;
        if cached then acc.a_cached <- acc.a_cached + 1;
        push_lat acc lat_ns
    | `Shed -> acc.a_shed <- acc.a_shed + 1
    | `Busy -> acc.a_busy <- acc.a_busy + 1
    | `Refused -> acc.a_errors <- acc.a_errors + 1
    | `Transport ->
        acc.a_errors <- acc.a_errors + 1;
        acc.a_transport <- acc.a_transport + 1
  end

let classify = function
  | Ok (Proto.Reply r) -> `Ok r.Proto.cached
  | Ok (Proto.Shed _) -> `Shed
  | Ok (Proto.Busy _) -> `Busy
  | Ok (Proto.Refused _) -> `Refused
  | Ok _ -> `Transport (* protocol confusion: count with the wire faults *)
  | Error _ -> `Transport

(* A worker's connection: retried with a short linear backoff because
   a thousand simultaneous connects can transiently overrun the
   daemon's listen backlog — that is load-generator startup noise, not
   a server fault. *)
let connect_retrying ~cfg ~stop () =
  let rec go k =
    if Atomic.get stop then Error "stopped"
    else
      match
        Client.connect ~seed:(cfg.seed + k) ?io_timeout_s:cfg.io_timeout_s
          ~socket:cfg.socket ()
      with
      | Ok c -> Ok c
      | Error e -> if k >= 50 then Error e else (Thread.delay 0.02; go (k + 1))
  in
  go 0

let merge_accs accs =
  let merge_class sel =
    let accs = List.map sel accs in
    let sum f = List.fold_left (fun t a -> t + f a) 0 accs in
    let nlat = sum (fun a -> a.nlat) in
    let lat = Array.make nlat 0 in
    let off = ref 0 in
    List.iter
      (fun a ->
        Array.blit a.lat 0 lat !off a.nlat;
        off := !off + a.nlat)
      accs;
    {
      sent = sum (fun a -> a.a_sent);
      ok = sum (fun a -> a.a_ok);
      cached = sum (fun a -> a.a_cached);
      shed = sum (fun a -> a.a_shed);
      busy = sum (fun a -> a.a_busy);
      errors = sum (fun a -> a.a_errors);
      latency = Quantiles.of_samples lat;
    }
  in
  ( merge_class fst,
    merge_class snd,
    merge_class (fun (h, n) ->
      let c = fresh_acc () in
      c.a_sent <- h.a_sent + n.a_sent;
      c.a_ok <- h.a_ok + n.a_ok;
      c.a_cached <- h.a_cached + n.a_cached;
      c.a_shed <- h.a_shed + n.a_shed;
      c.a_busy <- h.a_busy + n.a_busy;
      c.a_errors <- h.a_errors + n.a_errors;
      c.a_transport <- h.a_transport + n.a_transport;
      c.a_late <- h.a_late + n.a_late;
      c.lat <- Array.append (Array.sub h.lat 0 h.nlat) (Array.sub n.lat 0 n.nlat);
      c.nlat <- h.nlat + n.nlat;
      c) )

let acc_of ~klass (h, n) = match klass with High -> h | Normal -> n

(* Warm the store through one resilient connection before any clock
   starts: every litmus program computed once, so the measured window
   sees a warm store (the bench's "warm-store p99" gate). *)
let do_prewarm cfg =
  match
    Client.with_client ?io_timeout_s:cfg.io_timeout_s ~socket:cfg.socket
      (fun cl ->
        Array.iter
          (fun name ->
            ignore
              (Client.rpc_wait ~retries:1000 cl
                 (Proto.Work (Proto.Litmus name, cfg.work_config, None))))
          (Lazy.force litmus_names))
  with
  | Ok () -> Ok ()
  | Error e -> Error ("prewarm: " ^ e)

let run cfg =
  if cfg.clients <= 0 then Error "loadgen: need at least one client"
  else if cfg.duration_s <= 0. then Error "loadgen: need a positive duration"
  else
    match Client.ping ~socket:cfg.socket with
    | Error e -> Error ("loadgen: daemon not reachable: " ^ e)
    | Ok _version -> (
        let prewarmed = if cfg.prewarm then do_prewarm cfg else Ok () in
        match prewarmed with
        | Error _ as e -> e
        | Ok () ->
            let stop = Atomic.make false in
            let t0 = Obs.Clock.now_ns () in
            let warm_end = t0 + int_of_float (cfg.warmup_s *. 1e9) in
            let meas_end = warm_end + int_of_float (cfg.duration_s *. 1e9) in
            let counter = Atomic.make 0 in
            let schedule =
              match cfg.mode with
              | Closed -> [||]
              | Open { rate_hz; arrivals } ->
                  let n =
                    int_of_float
                      (Float.ceil (rate_hz *. (cfg.warmup_s +. cfg.duration_s)))
                  in
                  Schedule.gen ~seed:cfg.seed ~arrivals ~rate_hz ~n
            in
            let retries_total = Atomic.make 0 in
            let reconnects_total = Atomic.make 0 in
            let results =
              Array.init cfg.clients (fun _ -> (fresh_acc (), fresh_acc ()))
            in
            let worker wid =
              let h = fresh_acc () and n = fresh_acc () in
              (match connect_retrying ~cfg ~stop () with
              | Error _ ->
                  (* never connected: there is nothing to account — the
                     run-level transport gate still catches a dead
                     daemon because no requests implies zero ok *)
                  ()
              | Ok cl ->
                  Fun.protect
                    ~finally:(fun () ->
                      let s = Client.stats cl in
                      ignore
                        (Atomic.fetch_and_add retries_total
                           s.Client.retries);
                      ignore
                        (Atomic.fetch_and_add reconnects_total
                           s.Client.reconnects);
                      Client.close cl)
                    (fun () ->
                      match cfg.mode with
                      | Closed ->
                          let rec loop () =
                            let now = Obs.Clock.now_ns () in
                            if now >= meas_end || Atomic.get stop then ()
                            else begin
                              let i = Atomic.fetch_and_add counter 1 in
                              let klass, work =
                                request_of ~seed:cfg.seed
                                  ~high_pct:cfg.high_pct i
                              in
                              let req =
                                Proto.Work (work, cfg.work_config, None)
                              in
                              let t_send = Obs.Clock.now_ns () in
                              let r =
                                if cfg.retries = 0 then Client.rpc cl req
                                else
                                  Client.rpc_wait ~retries:cfg.retries cl req
                              in
                              let t_done = Obs.Clock.now_ns () in
                              let in_window =
                                t_send >= warm_end && t_send < meas_end
                              in
                              account (acc_of ~klass (h, n)) ~in_window
                                ~lat_ns:(t_done - t_send) (classify r);
                              loop ()
                            end
                          in
                          loop ()
                      | Open _ ->
                          let nsched = Array.length schedule in
                          let rec loop () =
                            if Atomic.get stop then ()
                            else begin
                              let k = Atomic.fetch_and_add counter 1 in
                              if k >= nsched then ()
                              else begin
                                let intended = t0 + schedule.(k) in
                                if intended >= meas_end then ()
                                else begin
                                  let now = Obs.Clock.now_ns () in
                                  let in_window =
                                    intended >= warm_end && intended < meas_end
                                  in
                                  if now < intended then
                                    Thread.delay
                                      (float_of_int (intended - now) /. 1e9)
                                  else if in_window then begin
                                    let a = acc_of ~klass:High (h, n) in
                                    (* which class is irrelevant for the
                                       run-level late counter; park it on
                                       the High acc of this worker *)
                                    a.a_late <- a.a_late + 1
                                  end;
                                  let klass, work =
                                    request_of ~seed:cfg.seed
                                      ~high_pct:cfg.high_pct k
                                  in
                                  let req =
                                    Proto.Work (work, cfg.work_config, None)
                                  in
                                  let r =
                                    if cfg.retries = 0 then Client.rpc cl req
                                    else
                                      Client.rpc_wait ~retries:cfg.retries cl
                                        req
                                  in
                                  let t_done = Obs.Clock.now_ns () in
                                  account (acc_of ~klass (h, n)) ~in_window
                                    ~lat_ns:
                                      (Schedule.co_latency ~intended_ns:intended
                                         ~completion_ns:t_done)
                                    (classify r);
                                  loop ()
                                end
                              end
                            end
                          in
                          loop ()));
              results.(wid) <- (h, n)
            in
            let threads =
              List.init cfg.clients (fun wid ->
                  Thread.create (fun () -> worker wid) ())
            in
            List.iter Thread.join threads;
            let accs = Array.to_list results in
            let t_end = Obs.Clock.now_ns () in
            let high, normal, all = merge_accs accs in
            let wall_s =
              float_of_int (min t_end meas_end - warm_end) /. 1e9
            in
            let wall_s = Float.max wall_s 1e-9 in
            let transport_errors =
              List.fold_left
                (fun t (h, n) -> t + h.a_transport + n.a_transport)
                0 accs
            in
            let late_sends =
              List.fold_left (fun t (h, n) -> t + h.a_late + n.a_late) 0 accs
            in
            Ok
              {
                mode = cfg.mode;
                clients = cfg.clients;
                wall_s;
                throughput_rps = float_of_int all.ok /. wall_s;
                high;
                normal;
                all;
                retries = Atomic.get retries_total;
                reconnects = Atomic.get reconnects_total;
                transport_errors;
                late_sends;
              })

(* ---- saturation search ---- *)

type slo = { slo_p99_ms : float option; slo_shed_pct : float option }

type sat_step = { rate_hz : float; step_report : report; passed : bool }

type saturation = { steps : sat_step list; knee_hz : float option }

let shed_pct r =
  if r.all.sent = 0 then 0.
  else 100. *. float_of_int (r.all.shed + r.all.busy) /. float_of_int r.all.sent

let slo_passes slo r =
  let p99_ok =
    match slo.slo_p99_ms with
    | None -> true
    | Some ms -> float_of_int r.all.latency.Quantiles.p99_ns /. 1e6 <= ms
  in
  let shed_ok =
    match slo.slo_shed_pct with
    | None -> true
    | Some pct -> shed_pct r <= pct
  in
  p99_ok && shed_ok

(* Step the offered rate upward until the SLO breaks; the knee is the
   last rate that passed.  Search stops at the first failing step —
   beyond the knee the server is by definition not meeting its SLO, so
   further (slower, queue-saturating) steps add wall clock without
   adding information. *)
let saturation cfg ~slo ~rates =
  let arrivals =
    match cfg.mode with Open { arrivals; _ } -> arrivals | Closed -> Poisson
  in
  let rec go acc = function
    | [] -> Ok { steps = List.rev acc; knee_hz = None }
    | rate_hz :: rest -> (
        match run { cfg with mode = Open { rate_hz; arrivals } } with
        | Error _ as e -> e
        | Ok r ->
            let passed = slo_passes slo r in
            let step = { rate_hz; step_report = r; passed } in
            if passed then go (step :: acc) rest
            else Ok { steps = List.rev (step :: acc); knee_hz = None })
  in
  match go [] rates with
  | Error _ as e -> e
  | Ok { steps; _ } ->
      let knee_hz =
        List.fold_left
          (fun knee s -> if s.passed then Some s.rate_hz else knee)
          None steps
      in
      Ok { steps; knee_hz }
