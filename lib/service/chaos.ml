(* The deterministic fault proxy.  Pure byte-level mischief: it knows
   nothing about the frame format, which is exactly the point — tears
   land mid-length-prefix, corruption lands inside checksummed
   payloads, disconnects land between a request and its reply, and the
   protocol layer must cope. *)

type plan = {
  seed : int;
  delay_p : float;
  max_delay_s : float;
  tear_p : float;
  corrupt_p : float;
  disconnect_p : float;
}

let calm =
  {
    seed = 0;
    delay_p = 0.0;
    max_delay_s = 0.0;
    tear_p = 0.0;
    corrupt_p = 0.0;
    disconnect_p = 0.0;
  }

let rough =
  {
    seed = 1;
    delay_p = 0.25;
    max_delay_s = 0.02;
    tear_p = 0.3;
    corrupt_p = 0.05;
    disconnect_p = 0.04;
  }

type counts = {
  connections : int;
  delays : int;
  tears : int;
  corruptions : int;
  disconnects : int;
}

type t = {
  plan : plan;
  listen_path : string;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  mutable acceptor : Thread.t option;
  pumps : Thread.t list ref;
  pumps_m : Mutex.t;
  live : Unix.file_descr list ref;
  live_m : Mutex.t;
  c_conns : int Atomic.t;
  c_delays : int Atomic.t;
  c_tears : int Atomic.t;
  c_corruptions : int Atomic.t;
  c_disconnects : int Atomic.t;
}

let counts t =
  {
    connections = Atomic.get t.c_conns;
    delays = Atomic.get t.c_delays;
    tears = Atomic.get t.c_tears;
    corruptions = Atomic.get t.c_corruptions;
    disconnects = Atomic.get t.c_disconnects;
  }

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let shutdown_quiet fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let track t fd =
  Mutex.lock t.live_m;
  t.live := fd :: !(t.live);
  Mutex.unlock t.live_m

let untrack t fd =
  Mutex.lock t.live_m;
  t.live := List.filter (fun f -> f != fd) !(t.live);
  Mutex.unlock t.live_m

let register_thread t th =
  Mutex.lock t.pumps_m;
  t.pumps := th :: !(t.pumps);
  Mutex.unlock t.pumps_m

let write_all fd buf pos len =
  let p = ref pos and n = ref len in
  while !n > 0 do
    let k = Unix.write fd buf !p !n in
    p := !p + k;
    n := !n - k
  done

(* One direction of one connection: read a chunk from [src], maybe
   maul it, forward to [dst].  A disconnect fault (or EOF, or either
   side going away) severs *both* directions, so the peer observes a
   connection death like a real network partition. *)
let pump t rng src dst =
  let buf = Bytes.create 4096 in
  let sever () =
    shutdown_quiet src;
    shutdown_quiet dst
  in
  let roll p = p > 0.0 && Random.State.float rng 1.0 < p in
  let rec loop () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> sever ()
    | exception Unix.Unix_error _ -> sever ()
    | n ->
        if roll t.plan.disconnect_p then begin
          Atomic.incr t.c_disconnects;
          sever ()
        end
        else begin
          if roll t.plan.delay_p then begin
            Atomic.incr t.c_delays;
            Thread.delay (Random.State.float rng t.plan.max_delay_s)
          end;
          if roll t.plan.corrupt_p then begin
            Atomic.incr t.c_corruptions;
            let i = Random.State.int rng n in
            Bytes.set buf i
              (Char.chr
                 (Char.code (Bytes.get buf i) lxor (1 + Random.State.int rng 255)))
          end;
          match
            if n > 1 && roll t.plan.tear_p then begin
              Atomic.incr t.c_tears;
              let cut = 1 + Random.State.int rng (n - 1) in
              write_all dst buf 0 cut;
              Thread.delay (Random.State.float rng t.plan.max_delay_s);
              write_all dst buf cut (n - cut)
            end
            else write_all dst buf 0 n
          with
          | () -> loop ()
          | exception Unix.Unix_error _ -> sever ()
        end
  in
  loop ()

let serve_conn t ~upstream conn_id client =
  let up = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect up (Unix.ADDR_UNIX upstream) with
  | exception Unix.Unix_error _ ->
      (* upstream down (e.g. mid kill-and-restart): the client sees an
         immediate close — a failure it must retry *)
      close_quiet up;
      shutdown_quiet client;
      close_quiet client
  | () ->
      track t client;
      track t up;
      (* independent fault schedules per direction, replayable by
         (seed, connection, direction) *)
      let rng dir = Random.State.make [| t.plan.seed; conn_id; dir |] in
      let th_up = Thread.create (fun () -> pump t (rng 0) client up) () in
      let th_down = Thread.create (fun () -> pump t (rng 1) up client) () in
      (* close both fds only once both directions are finished *)
      let closer =
        Thread.create
          (fun () ->
            Thread.join th_up;
            Thread.join th_down;
            untrack t client;
            untrack t up;
            close_quiet client;
            close_quiet up)
          ()
      in
      register_thread t th_up;
      register_thread t th_down;
      register_thread t closer

let start ~plan ~listen ~upstream =
  (* pumps write to peers that the fault schedule itself kills; that
     must be an EPIPE the pump handles, not a fatal SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    if Sys.file_exists listen then Unix.unlink listen;
    Unix.bind listen_fd (Unix.ADDR_UNIX listen);
    Unix.listen listen_fd 16
  with
  | exception e ->
      close_quiet listen_fd;
      Error ("chaos proxy cannot bind " ^ listen ^ ": " ^ Printexc.to_string e)
  | () ->
      let t =
        {
          plan;
          listen_path = listen;
          listen_fd;
          stop = Atomic.make false;
          acceptor = None;
          pumps = ref [];
          pumps_m = Mutex.create ();
          live = ref [];
          live_m = Mutex.create ();
          c_conns = Atomic.make 0;
          c_delays = Atomic.make 0;
          c_tears = Atomic.make 0;
          c_corruptions = Atomic.make 0;
          c_disconnects = Atomic.make 0;
        }
      in
      let acceptor =
        Thread.create
          (fun () ->
            let conn_id = ref 0 in
            while not (Atomic.get t.stop) do
              match
                try Unix.select [ listen_fd ] [] [] 0.1
                with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
              with
              | [], _, _ -> ()
              | _ :: _, _, _ -> (
                  match Unix.accept listen_fd with
                  | exception Unix.Unix_error _ -> ()
                  | client, _ ->
                      Atomic.incr t.c_conns;
                      incr conn_id;
                      serve_conn t ~upstream !conn_id client)
            done)
          ()
      in
      t.acceptor <- Some acceptor;
      Ok t

let stop t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Option.iter (fun th -> try Thread.join th with _ -> ()) t.acceptor;
    close_quiet t.listen_fd;
    Mutex.lock t.live_m;
    let live = !(t.live) in
    Mutex.unlock t.live_m;
    List.iter shutdown_quiet live;
    Mutex.lock t.pumps_m;
    let pumps = !(t.pumps) in
    t.pumps := [];
    Mutex.unlock t.pumps_m;
    List.iter (fun th -> try Thread.join th with _ -> ()) pumps;
    try Unix.unlink t.listen_path with Unix.Unix_error _ | Sys_error _ -> ()
  end
