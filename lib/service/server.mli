(** The verification daemon: accepts concurrent clients on a
    Unix-domain socket, answers {!Proto} requests, serves results out
    of the content-addressed {!Store}, and schedules fresh work
    through an admission gate — one execution slot (each search
    already parallelizes across the domain pool) plus a bounded,
    priority-aware wait queue with per-waiter deadlines.

    Fault tolerance (docs/ROBUSTNESS.md's service fault model): every
    connection read/write carries a deadline (slowloris and idle peers
    are evicted); queued work carries a wall-clock deadline and a
    queue TTL and is answered with a typed {!Proto.Shed} when either
    passes; a request admitted close to its deadline runs with its
    exploration budget shrunk to the remaining wall clock, so an
    overrun surfaces as the honest inconclusive taxonomy; finished
    handler threads are reaped continuously.

    Store lookups happen {e before} admission, so cached traffic never
    queues behind a heavy miss.  Shutdown — SIGINT, SIGTERM or a
    {!Proto.Shutdown} request — is graceful: stop accepting, drain
    admitted work, flush the store, unlink the socket
    (docs/SERVICE.md). *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  store_dir : string option;  (** result store root; [None] disables *)
  capacity : int;  (** wait-queue bound beyond the execution slot *)
  quiet : bool;
  io_timeout_s : float;
      (** mid-frame read/write deadline per connection: a peer that
          stalls inside a frame (slowloris) or stops draining its
          reply is evicted after this many seconds *)
  idle_timeout_s : float;
      (** between-frames deadline: how long a keep-alive connection
          may sit idle before it is evicted *)
  request_deadline_ms : int option;
      (** server-side cap on each work request's wall clock; the
          effective deadline is the minimum of this and the client's
          [Config.deadline_ms] *)
  queue_ttl_ms : int option;
      (** how long a request may wait in the admission queue before it
          is answered [Shed Expired]; bounds waiting only — it never
          shrinks the execution budget *)
}

val default_capacity : int

val default : socket:string -> config
(** A production-shaped config: 10 s I/O deadline, 10 min idle
    deadline, 60 s queue TTL, no server-side deadline cap, store
    off. *)

(** The admission gate, exposed for direct testing: one execution
    slot, a bounded priority-aware wait queue with per-waiter
    deadlines, [`Busy] beyond it. *)
module Admission : sig
  (** [High] is admitted ahead of every [Normal] waiter and may
      preempt the youngest one out of a full queue; FIFO within a
      priority. *)
  type priority = High | Normal

  type waiter

  type t = {
    m : Mutex.t;
    turn : Condition.t;
    capacity : int;
    mutable running : bool;
    mutable next_seq : int;
    mutable waiters : waiter list;
  }

  val create : capacity:int -> t

  val inflight : t -> int
  (** Running (0 or 1) + waiting. *)

  val try_run :
    ?prio:priority ->
    ?deadline_ns:int ->
    t ->
    (unit -> 'a) ->
    [ `Done of 'a | `Busy of int | `Shed | `Expired ]
  (** Run in the slot, waiting for a turn if the queue has room.
      [`Busy n] — the queue was full (and, for a [High] arrival, held
      no preemptable [Normal] waiter).  [`Shed] — this waiter was
      preempted out of the full queue by a [High] arrival.
      [`Expired] — [deadline_ns] (absolute, {!Obs.Clock.now_ns} scale)
      passed before the slot was granted.  The deadline bounds
      {e waiting} only; once running, the thunk owns the slot until it
      returns. *)

  val tick : t -> unit
  (** Wake all waiters so expired deadlines fire; the daemon's
      watchdog thread calls this periodically (OCaml's [Condition] has
      no timed wait). *)

  val drain : t -> unit
  (** Block until the slot is free and the queue empty.  Requires
      {!tick}s to keep arriving so deadline-expired waiters clear
      themselves out. *)
end

val priority_of_work : Proto.work -> Admission.priority
(** [Litmus] (small, corpus-bounded) is [High]; [Explore], [Verify]
    and [Races] (arbitrary programs, possibly hour-long) are
    [Normal]. *)

val run_work :
  Proto.work -> Explore.Config.t -> (string * int, string) result
(** Execute one work item with no store and no queue: compute, render
    ({!Render}), and map every predictable failure into the exit-code
    taxonomy (ill-formed program → 3, exhausted budget → 2).  [Error]
    is reserved for internal failures and unknown pass/litmus names —
    the classes that must not be cached. *)

val serve_work :
  ?store:Store.t ->
  stats:Explore.Stats.Service.t ->
  Proto.work ->
  Explore.Config.t ->
  Proto.response
(** The store-aware serve path shared by the daemon, the bench
    harness's cold/warm table and the tests: look up
    (completeness-aware, {!Store.find}), else compute and record.
    Conclusive verdicts (exit 0/1) are cached unconditionally;
    inconclusive ones carry their budget; errors are never cached. *)

val run : ?on_ready:(unit -> unit) -> config -> (unit, string) result
(** Run the daemon until shutdown.  [on_ready] fires once the socket
    is listening (used by tests to sequence a client).  [Error] covers
    startup failures (socket already served) and unexpected crashes of
    the accept loop. *)
