(** The verification daemon: accepts concurrent clients on a
    Unix-domain socket, answers {!Proto} requests, serves results out
    of the content-addressed {!Store}, and schedules fresh work
    through an admission gate — one execution slot (each search
    already parallelizes across the domain pool) plus a bounded wait
    queue with an explicit {!Proto.Busy} backpressure response beyond
    it.

    Store lookups happen {e before} admission, so cached traffic never
    queues behind a heavy miss.  Shutdown — SIGINT, SIGTERM or a
    {!Proto.Shutdown} request — is graceful: stop accepting, drain
    admitted work, flush the store, unlink the socket
    (docs/SERVICE.md). *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  store_dir : string option;  (** result store root; [None] disables *)
  capacity : int;  (** wait-queue bound beyond the execution slot *)
  quiet : bool;
}

val default_capacity : int

(** The admission gate, exposed for direct testing: one execution
    slot, a bounded wait queue, [`Busy] beyond it. *)
module Admission : sig
  type t = {
    m : Mutex.t;
    turn : Condition.t;
    capacity : int;
    mutable running : bool;
    mutable waiting : int;
  }

  val create : capacity:int -> t
  val inflight : t -> int

  val try_run : t -> (unit -> 'a) -> [ `Busy of int | `Done of 'a ]
  (** Run in the slot (waiting for a turn if the queue has room);
      [`Busy inflight] when the queue is full. *)

  val drain : t -> unit
  (** Block until the slot is free and the queue empty. *)
end

val run_work :
  Proto.work -> Explore.Config.t -> (string * int, string) result
(** Execute one work item with no store and no queue: compute, render
    ({!Render}), and map every predictable failure into the exit-code
    taxonomy (ill-formed program → 3, exhausted budget → 2).  [Error]
    is reserved for internal failures and unknown pass/litmus names —
    the classes that must not be cached. *)

val serve_work :
  ?store:Store.t ->
  stats:Explore.Stats.Service.t ->
  Proto.work ->
  Explore.Config.t ->
  Proto.response
(** The store-aware serve path shared by the daemon, the bench
    harness's cold/warm table and the tests: look up
    (completeness-aware, {!Store.find}), else compute and record.
    Conclusive verdicts (exit 0/1) are cached unconditionally;
    inconclusive ones carry their budget; errors are never cached. *)

val run : ?on_ready:(unit -> unit) -> config -> (unit, string) result
(** Run the daemon until shutdown.  [on_ready] fires once the socket
    is listening (used by tests to sequence a client).  [Error] covers
    startup failures (socket already served) and unexpected crashes of
    the accept loop. *)
