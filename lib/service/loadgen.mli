(** The fleet load generator behind [psopt loadgen] and the bench
    loadgen table: drive a live daemon with thousands of concurrent
    synthetic clients and report honest tail latency.

    Two generation modes answer different questions.  {e Closed loop}
    ([Closed]) runs N persistent clients in lock step — offered load
    adapts to the server, so it measures "how fast can N well-behaved
    clients go" but structurally cannot see overload.  {e Open loop}
    ([Open]) fixes every request's intended start time in advance from
    a seeded arrival schedule and records latency against that
    schedule, not the actual send — the standard defense against
    coordinated omission: when the generator falls behind a stalled
    server, the backlog time lands in the tail where it belongs
    (docs/SERVICE.md "Load generation methodology").

    Latencies are raw samples, merged and sorted at the end: the
    reported quantiles are exact order statistics, with none of the
    2x bucket-interpolation error of the registry histograms. *)

type arrivals =
  | Poisson  (** exponential interarrivals (memoryless fleet traffic) *)
  | Uniform  (** fixed spacing (a metronome; adversarially bursty-free) *)

type mode = Closed | Open of { rate_hz : float; arrivals : arrivals }

(** Request classes of the mix: [High] draws a random litmus-corpus
    name (cache-friendly, High service priority); [Normal] ships a
    distinct stress-generated program per request index (uncached
    exploration work). *)
type klass = High | Normal

(** The seeded arrival schedule, exposed for the coordinated-omission
    tests. *)
module Schedule : sig
  val gen : seed:int -> arrivals:arrivals -> rate_hz:float -> n:int -> int array
  (** [n] intended start offsets in ns from the run start,
      nondecreasing, a pure function of [seed].  Raises
      [Invalid_argument] on a non-positive rate. *)

  val co_latency : intended_ns:int -> completion_ns:int -> int
  (** Completion against the schedule — never against the (possibly
      late) actual send. *)
end

module Quantiles : sig
  type t = {
    n : int;
    p50_ns : int;
    p90_ns : int;
    p99_ns : int;
    p999_ns : int;
    max_ns : int;
    mean_ns : float;
  }

  val zero : t

  val exact : int array -> float -> int
  (** Nearest-rank order statistic over a {e sorted} array:
      the ceil(q·n)-th smallest sample. *)

  val of_samples : int array -> t
  (** Sorts a copy; [zero] for an empty array. *)
end

type class_stats = {
  sent : int;
  ok : int;
  cached : int;  (** subset of [ok] answered from the store *)
  shed : int;
  busy : int;
  errors : int;  (** transport failures + [Refused] + protocol noise *)
  latency : Quantiles.t;  (** over [ok] answers only *)
}
(** Invariant (tested): [sent = ok + shed + busy + errors]. *)

type report = {
  mode : mode;
  clients : int;
  wall_s : float;  (** measured window actually covered *)
  throughput_rps : float;  (** ok answers per measured second *)
  high : class_stats;
  normal : class_stats;
  all : class_stats;
  retries : int;  (** client-library retries across all workers *)
  reconnects : int;
  transport_errors : int;  (** I/O-level failures only (gate: zero) *)
  late_sends : int;  (** open loop: sends that fell behind schedule *)
}

type config = {
  socket : string;
  clients : int;  (** concurrent connections (worker threads) *)
  mode : mode;
  warmup_s : float;  (** requests in this phase are sent but not counted *)
  duration_s : float;
  high_pct : int;  (** percentage of requests in the [High] class *)
  seed : int;
  io_timeout_s : float option;
  retries : int;  (** {!Client.rpc_wait} budget per request; 0 = single shot *)
  prewarm : bool;
      (** push the whole litmus corpus through one connection before
          the clock starts, so a store-backed daemon measures warm *)
  work_config : Explore.Config.t;
}

val default : socket:string -> config
(** 32 closed-loop clients, 2 s warmup + 10 s measure, 90% litmus,
    single-shot sends, no prewarm. *)

val default_work_config : Explore.Config.t
(** Small bounded explorations (quick profile, 400 steps, 2 s
    deadline, one domain) so Normal-class work is heterogeneous but
    cannot outlive the measurement window. *)

val request_of : seed:int -> high_pct:int -> int -> klass * Proto.work
(** The request mix as a pure function of (seed, request index) —
    every worker and every rerun agrees on what request [k] is. *)

val run : config -> (report, string) result
(** Drive the daemon.  Fails fast when the daemon is unreachable;
    per-request failures are accounted, not fatal.  Only requests
    whose (intended, for open loop) start falls inside the measure
    window are counted, and classification happens at completion, so
    the class invariant holds exactly. *)

(** {2 Saturation search} *)

type slo = {
  slo_p99_ms : float option;  (** ceiling on all-class p99 *)
  slo_shed_pct : float option;  (** ceiling on (shed+busy)/sent·100 *)
}

type sat_step = { rate_hz : float; step_report : report; passed : bool }

type saturation = {
  steps : sat_step list;  (** in offered-rate order, ends at first failure *)
  knee_hz : float option;  (** last offered rate that met the SLO *)
}

val shed_pct : report -> float
val slo_passes : slo -> report -> bool

val saturation : config -> slo:slo -> rates:float list -> (saturation, string) result
(** Rerun [cfg] open-loop at each offered rate in order until the SLO
    breaks; the knee is the last passing rate ([None] when even the
    first step fails).  [cfg.mode]'s arrival process is kept when it
    is already open-loop; Poisson otherwise. *)
