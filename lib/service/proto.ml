(* The wire protocol of the verification service: typed requests and
   responses serialized as s-expressions (reusing Lang.Sexp's minimal
   tree), framed with a 4-byte big-endian length prefix over a
   Unix-domain socket.

   Lang.Sexp atoms carry no quoting, so arbitrary strings (rendered
   reports, error messages) travel percent-encoded behind an "s:"
   sigil — see [atom_of_string].  Every encoder has a matching decoder
   and the round-trip is exact (property-tested in
   test/test_service.ml). *)

module Sexp = Lang.Sexp
open Sexp

(* ------------------------------------------------------------------ *)
(* Strings as atoms.  Safe characters pass through; everything else —
   including '%', whitespace, parens — becomes %XX.  The "s:" prefix
   keeps the empty string representable (Lang.Sexp cannot print an
   empty atom). *)

let safe_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '.' || c = '/'

let atom_of_string s =
  let b = Buffer.create (String.length s + 8) in
  Buffer.add_string b "s:";
  String.iter
    (fun c ->
      if safe_char c then Buffer.add_char b c
      else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Atom (Buffer.contents b)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | _ -> None

let string_of_atom = function
  | List _ -> Error "expected a string atom"
  | Atom a ->
      if String.length a < 2 || String.sub a 0 2 <> "s:" then
        Error ("string atom missing s: prefix: " ^ a)
      else begin
        let b = Buffer.create (String.length a) in
        let n = String.length a in
        let rec go i =
          if i >= n then Ok (Buffer.contents b)
          else if a.[i] = '%' then
            if i + 2 >= n then Error "truncated %XX escape"
            else
              match (hex_val a.[i + 1], hex_val a.[i + 2]) with
              | Some h, Some l ->
                  Buffer.add_char b (Char.chr ((h * 16) + l));
                  go (i + 3)
              | _ -> Error "bad %XX escape"
          else begin
            Buffer.add_char b a.[i];
            go (i + 1)
          end
        in
        go 2
      end

(* ------------------------------------------------------------------ *)
(* Shared small encoders *)

let ( let* ) = Result.bind

let sexp_of_bool v = Atom (string_of_bool v)

let bool_of_sexp = function
  | Atom "true" -> Ok true
  | Atom "false" -> Ok false
  | s -> Error ("expected bool, got " ^ to_string s)

let sexp_of_int v = Atom (string_of_int v)

let int_of_sexp = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some v -> Ok v
      | None -> Error ("expected int, got " ^ a))
  | s -> Error ("expected int, got " ^ to_string s)

let sexp_of_int_opt = function None -> Atom "-" | Some v -> sexp_of_int v

let int_opt_of_sexp = function
  | Atom "-" -> Ok None
  | s -> Result.map Option.some (int_of_sexp s)

(* ------------------------------------------------------------------ *)
(* Explore.Config over the wire: every field travels, so a request is
   a complete description of the computation (the server has no
   configuration of its own beyond the admission queue). *)

let sexp_of_config (c : Explore.Config.t) =
  let open Explore.Config in
  let mode =
    match c.promise_mode with
    | No_promises -> "none"
    | Semantic -> "semantic"
    | Syntactic -> "syntactic"
  in
  let fault =
    match c.fault with
    | None -> Atom "-"
    | Some f ->
        List
          [
            sexp_of_int f.fault_seed;
            (* %h round-trips the float exactly *)
            Atom (Printf.sprintf "%h" f.fault_rate);
          ]
  in
  List
    [
      Atom "config";
      sexp_of_int c.max_steps;
      sexp_of_int c.max_promises;
      Atom mode;
      sexp_of_bool c.reservations;
      sexp_of_int c.cert_fuel;
      sexp_of_bool c.cap_certification;
      sexp_of_bool c.memoize;
      sexp_of_bool c.cert_cache;
      sexp_of_int_opt c.deadline_ms;
      sexp_of_int_opt c.max_nodes;
      sexp_of_int_opt c.max_live_words;
      sexp_of_bool c.strict_promises;
      fault;
      sexp_of_int c.domains;
      (* reduction knobs are semantic (they key the result store), so
         they must travel; "-" keeps the common all-off case short *)
      (if c.reduction = no_reduction then Atom "-"
       else
         List
           [
             sexp_of_bool c.reduction.por;
             sexp_of_bool c.reduction.symmetry;
             sexp_of_int_opt c.reduction.bound_promises;
           ]);
    ]

let config_of_sexp s =
  let open Explore.Config in
  match s with
  | List
      (Atom "config"
      :: steps
      :: promises
      :: Atom mode
      :: rsv
      :: fuel
      :: cap
      :: memo
      :: ccache
      :: deadline
      :: nodes
      :: live
      :: strict
      :: fault
      :: domains
      :: rest) ->
      let* max_steps = int_of_sexp steps in
      let* max_promises = int_of_sexp promises in
      let* promise_mode =
        match mode with
        | "none" -> Ok No_promises
        | "semantic" -> Ok Semantic
        | "syntactic" -> Ok Syntactic
        | m -> Error ("unknown promise mode " ^ m)
      in
      let* reservations = bool_of_sexp rsv in
      let* cert_fuel = int_of_sexp fuel in
      let* cap_certification = bool_of_sexp cap in
      let* memoize = bool_of_sexp memo in
      let* cert_cache = bool_of_sexp ccache in
      let* deadline_ms = int_opt_of_sexp deadline in
      let* max_nodes = int_opt_of_sexp nodes in
      let* max_live_words = int_opt_of_sexp live in
      let* strict_promises = bool_of_sexp strict in
      let* fault =
        match fault with
        | Atom "-" -> Ok None
        | List [ seed; Atom rate ] -> (
            let* fault_seed = int_of_sexp seed in
            match float_of_string_opt rate with
            | Some fault_rate -> Ok (Some { fault_seed; fault_rate })
            | None -> Error ("bad fault rate " ^ rate))
        | s -> Error ("bad fault " ^ to_string s)
      in
      let* domains = int_of_sexp domains in
      let* reduction =
        match rest with
        (* an empty tail is a frame from a pre-reduction peer *)
        | [] | [ Atom "-" ] -> Ok no_reduction
        | [ List [ por; sym; bound ] ] ->
            let* por = bool_of_sexp por in
            let* symmetry = bool_of_sexp sym in
            let* bound_promises = int_opt_of_sexp bound in
            Ok { por; symmetry; bound_promises }
        | _ -> Error ("bad reduction " ^ to_string s)
      in
      Ok
        {
          max_steps;
          max_promises;
          promise_mode;
          reservations;
          cert_fuel;
          cap_certification;
          memoize;
          cert_cache;
          deadline_ms;
          max_nodes;
          max_live_words;
          strict_promises;
          fault;
          domains;
          reduction;
          (* pure performance knobs (like [domains] they cannot change
             results), deliberately not on the wire: the server's
             defaults apply *)
          oversubscribe = default.oversubscribe;
          publish_period = default.publish_period;
        }
  | s -> Error ("bad config " ^ to_string s)

(* ------------------------------------------------------------------ *)
(* Requests *)

type work =
  | Explore of Explore.Enum.discipline * Lang.Ast.program
  | Verify of string * Lang.Ast.program  (** registered pass name *)
  | Races of Lang.Ast.program
  | Litmus of string  (** corpus name; the program is compiled in *)

type request =
  | Ping
  | Stats
  | Metrics
  | Shutdown
  | Work of work * Explore.Config.t * Obs.Trace.ctx option

let kind_tag = function
  | Explore (Explore.Enum.Interleaving, _) -> "explore:il"
  | Explore (Explore.Enum.Non_preemptive, _) -> "explore:np"
  | Verify (pass, _) -> "verify:" ^ pass
  | Races _ -> "races"
  | Litmus name -> "litmus:" ^ name

let program_of_work = function
  | Explore (_, p) | Verify (_, p) | Races p -> Ok p
  | Litmus name -> (
      match List.find_opt (fun t -> t.Litmus.name = name) Litmus.all with
      | Some t -> Ok t.Litmus.prog
      | None -> Error ("unknown litmus test: " ^ name))

let sexp_of_discipline = function
  | Explore.Enum.Interleaving -> Atom "interleaving"
  | Explore.Enum.Non_preemptive -> Atom "non-preemptive"

let discipline_of_sexp = function
  | Atom "interleaving" -> Ok Explore.Enum.Interleaving
  | Atom "non-preemptive" -> Ok Explore.Enum.Non_preemptive
  | s -> Error ("bad discipline " ^ to_string s)

let sexp_of_work = function
  | Explore (d, p) ->
      List [ Atom "explore"; sexp_of_discipline d; Sexp.sexp_of_program p ]
  | Verify (pass, p) ->
      List [ Atom "verify"; Atom pass; Sexp.sexp_of_program p ]
  | Races p -> List [ Atom "races"; Sexp.sexp_of_program p ]
  | Litmus name -> List [ Atom "litmus"; Atom name ]

let work_of_sexp = function
  | List [ Atom "explore"; d; p ] ->
      let* d = discipline_of_sexp d in
      let* p = Sexp.program_of_sexp p in
      Ok (Explore (d, p))
  | List [ Atom "verify"; Atom pass; p ] ->
      let* p = Sexp.program_of_sexp p in
      Ok (Verify (pass, p))
  | List [ Atom "races"; p ] ->
      let* p = Sexp.program_of_sexp p in
      Ok (Races p)
  | List [ Atom "litmus"; Atom name ] -> Ok (Litmus name)
  | s -> Error ("bad work " ^ to_string s)

let sexp_of_request = function
  | Ping -> List [ Atom "ping" ]
  | Stats -> List [ Atom "stats" ]
  | Metrics -> List [ Atom "metrics" ]
  | Shutdown -> List [ Atom "shutdown" ]
  | Work (w, c, tctx) -> (
      (* A context-free request keeps the exact pre-trace wire shape,
         so new clients stay compatible with old daemons unless they
         actually trace; the optional trailing element mirrors the
         config fingerprint field's evolution pattern. *)
      let base = [ Atom "work"; sexp_of_work w; sexp_of_config c ] in
      match tctx with
      | None -> List base
      | Some { Obs.Trace.trace_id; span_id } ->
          List (base @ [ List [ Atom "trace"; Atom trace_id; Atom span_id ] ]))

let trace_ctx_of_rest = function
  | [] | [ Atom "-" ] -> Ok None
  | [ List [ Atom "trace"; Atom trace_id; Atom span_id ] ] ->
      Ok (Some { Obs.Trace.trace_id; span_id })
  | s -> Error ("bad trace context " ^ to_string (List s))

let request_of_sexp = function
  | List [ Atom "ping" ] -> Ok Ping
  | List [ Atom "stats" ] -> Ok Stats
  | List [ Atom "metrics" ] -> Ok Metrics
  | List [ Atom "shutdown" ] -> Ok Shutdown
  | List (Atom "work" :: w :: c :: rest) ->
      let* w = work_of_sexp w in
      let* c = config_of_sexp c in
      let* tctx = trace_ctx_of_rest rest in
      Ok (Work (w, c, tctx))
  | s -> Error ("bad request " ^ to_string s)

(* ------------------------------------------------------------------ *)
(* Responses *)

type reply = {
  exit_code : int;
      (** the CLI taxonomy: 0 verified / claim holds, 1 refuted,
          2 inconclusive, 3 usage or parse error *)
  output : string;  (** rendered report, byte-identical to the CLI's *)
  cached : bool;  (** answered from the content-addressed store *)
  conclusive : bool;
      (** [exit_code < 2]: the verdict cannot improve under a larger
          budget, so the store may serve it forever *)
}

type stats_payload = {
  served : int;
  store_hits : int;
  store_misses : int;
  busy_rejections : int;
  errors : int;
  store_entries : int;
  store_corrupt : int;
  inflight : int;
  capacity : int;
  sheds : int;
  expired : int;
  evictions : int;
}

type shed_reason = Expired | Overload

let shed_reason_to_string = function
  | Expired -> "expired"
  | Overload -> "overload"

type response =
  | Pong of string  (** server version *)
  | Busy of { inflight : int; capacity : int }
  | Shed of { reason : shed_reason; inflight : int; capacity : int }
  | Stats_reply of stats_payload
  | Metrics_reply of string  (** Prometheus text exposition *)
  | Reply of reply
  | Shutting_down
  | Refused of string  (** protocol error, unknown pass/litmus, … *)

let sexp_of_response = function
  | Pong v -> List [ Atom "pong"; atom_of_string v ]
  | Busy { inflight; capacity } ->
      List [ Atom "busy"; sexp_of_int inflight; sexp_of_int capacity ]
  | Shed { reason; inflight; capacity } ->
      List
        [
          Atom "shed";
          Atom (shed_reason_to_string reason);
          sexp_of_int inflight;
          sexp_of_int capacity;
        ]
  | Stats_reply s ->
      List
        [
          Atom "stats";
          sexp_of_int s.served;
          sexp_of_int s.store_hits;
          sexp_of_int s.store_misses;
          sexp_of_int s.busy_rejections;
          sexp_of_int s.errors;
          sexp_of_int s.store_entries;
          sexp_of_int s.store_corrupt;
          sexp_of_int s.inflight;
          sexp_of_int s.capacity;
          sexp_of_int s.sheds;
          sexp_of_int s.expired;
          sexp_of_int s.evictions;
        ]
  | Metrics_reply text -> List [ Atom "metrics"; atom_of_string text ]
  | Reply r ->
      List
        [
          Atom "reply";
          sexp_of_int r.exit_code;
          sexp_of_bool r.cached;
          sexp_of_bool r.conclusive;
          atom_of_string r.output;
        ]
  | Shutting_down -> List [ Atom "shutting-down" ]
  | Refused msg -> List [ Atom "refused"; atom_of_string msg ]

let response_of_sexp = function
  | List [ Atom "pong"; v ] ->
      let* v = string_of_atom v in
      Ok (Pong v)
  | List [ Atom "busy"; i; c ] ->
      let* inflight = int_of_sexp i in
      let* capacity = int_of_sexp c in
      Ok (Busy { inflight; capacity })
  | List [ Atom "shed"; Atom reason; i; c ] ->
      let* reason =
        match reason with
        | "expired" -> Ok Expired
        | "overload" -> Ok Overload
        | r -> Error ("bad shed reason " ^ r)
      in
      let* inflight = int_of_sexp i in
      let* capacity = int_of_sexp c in
      Ok (Shed { reason; inflight; capacity })
  | List [ Atom "stats"; a; b; c; d; e; f; fc; g; h; sh; ex; ev ] ->
      let* served = int_of_sexp a in
      let* store_hits = int_of_sexp b in
      let* store_misses = int_of_sexp c in
      let* busy_rejections = int_of_sexp d in
      let* errors = int_of_sexp e in
      let* store_entries = int_of_sexp f in
      let* store_corrupt = int_of_sexp fc in
      let* inflight = int_of_sexp g in
      let* capacity = int_of_sexp h in
      let* sheds = int_of_sexp sh in
      let* expired = int_of_sexp ex in
      let* evictions = int_of_sexp ev in
      Ok
        (Stats_reply
           {
             served;
             store_hits;
             store_misses;
             busy_rejections;
             errors;
             store_entries;
             store_corrupt;
             inflight;
             capacity;
             sheds;
             expired;
             evictions;
           })
  | List [ Atom "metrics"; text ] ->
      let* text = string_of_atom text in
      Ok (Metrics_reply text)
  | List [ Atom "reply"; code; cached; conclusive; output ] ->
      let* exit_code = int_of_sexp code in
      let* cached = bool_of_sexp cached in
      let* conclusive = bool_of_sexp conclusive in
      let* output = string_of_atom output in
      Ok (Reply { exit_code; output; cached; conclusive })
  | List [ Atom "shutting-down" ] -> Ok Shutting_down
  | List [ Atom "refused"; msg ] ->
      let* msg = string_of_atom msg in
      Ok (Refused msg)
  | s -> Error ("bad response " ^ to_string s)

(* ------------------------------------------------------------------ *)
(* Transport errors: every way a frame can fail to cross the wire, as
   a closed type so both sides can pick a policy per class instead of
   string-matching (retry on [Closed], evict on [Timed_out], drop the
   connection on [Corrupt]). *)

type phase = Idle | Header | Payload | Write

let phase_to_string = function
  | Idle -> "idle"
  | Header -> "header"
  | Payload -> "payload"
  | Write -> "write"

type error =
  | Closed  (** EOF or reset from the peer *)
  | Timed_out of phase  (** an I/O deadline expired mid-frame (or idle) *)
  | Corrupt of string  (** bad length, checksum mismatch, undecodable *)
  | Io of string  (** any other [Unix] error *)

let error_to_string = function
  | Closed -> "connection closed"
  | Timed_out p -> Printf.sprintf "i/o timeout (%s)" (phase_to_string p)
  | Corrupt msg -> "corrupt frame: " ^ msg
  | Io msg -> "i/o error: " ^ msg

(* ------------------------------------------------------------------ *)
(* Framing: a 20-byte header — 4-byte big-endian payload length plus
   the 16-byte MD5 of the payload — then the payload itself.
   [max_frame] bounds a hostile or corrupted length word so a bad
   client cannot make the daemon allocate unboundedly; the digest
   turns any in-flight byte corruption into a typed [Corrupt] error
   instead of a silently different (and possibly still decodable)
   message — the "never a wrong cached verdict" line of the chaos
   suite.

   All reads and writes take optional wall-clock deadlines, enforced
   with [select] before every blocking call.  [read_frame]
   distinguishes the {e idle} deadline (waiting for the first header
   byte of the next frame — a keep-alive connection may sit here for
   minutes) from the {e I/O} deadline (once a frame has started,
   every subsequent byte must arrive promptly — the slowloris
   defence). *)

let max_frame = 64 * 1024 * 1024
let header_len = 20

let deadline_of_timeout = function
  | None -> None
  | Some s -> Some (Unix.gettimeofday () +. s)

(* Wait until [fd] is ready in direction [dir], or the deadline
   passes.  EINTR is an early wakeup, not an error. *)
let wait_ready dir fd deadline =
  match deadline with
  | None -> Ok ()
  | Some d ->
      let rec go () =
        let remaining = d -. Unix.gettimeofday () in
        if remaining <= 0.0 then Error `Timeout
        else
          let r, w =
            match dir with `Read -> ([ fd ], []) | `Write -> ([], [ fd ])
          in
          match Unix.select r w [] remaining with
          | [], [], _ -> Error `Timeout
          | _ -> Ok ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ()

(* A deadline needs the fd in non-blocking mode: [select] only
   promises that {e some} progress is possible, and on Linux a
   blocking [write] of a large buffer keeps blocking after filling
   the socket buffer — past any deadline.  Non-blocking turns that
   into EAGAIN, which loops back to [select] where the deadline is
   enforced. *)
let with_nonblock deadline fd f =
  match deadline with
  | None -> f ()
  | Some _ ->
      (match Unix.set_nonblock fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ());
      Fun.protect
        ~finally:(fun () ->
          try Unix.clear_nonblock fd with Unix.Unix_error _ -> ())
        f

let read_exact ?deadline ~phase fd len =
  let buf = Bytes.create len in
  let rec go pos =
    if pos >= len then Ok (Bytes.unsafe_to_string buf)
    else
      match wait_ready `Read fd deadline with
      | Error `Timeout -> Error (Timed_out phase)
      | Ok () -> (
          match Unix.read fd buf pos (len - pos) with
          | 0 -> Error Closed
          | n -> go (pos + n)
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              go pos
          | exception
              Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              Error Closed
          | exception Unix.Unix_error (e, _, _) ->
              Error (Io (Unix.error_message e)))
  in
  with_nonblock deadline fd (fun () -> go 0)

let write_all ?deadline fd buf pos len =
  let rec go pos len =
    if len <= 0 then Ok ()
    else
      match wait_ready `Write fd deadline with
      | Error `Timeout -> Error (Timed_out Write)
      | Ok () -> (
          match Unix.write_substring fd buf pos len with
          | n -> go (pos + n) (len - n)
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              go pos len
          | exception
              Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              Error Closed
          | exception Unix.Unix_error (e, _, _) ->
              Error (Io (Unix.error_message e)))
  in
  with_nonblock deadline fd (fun () -> go pos len)

let write_frame ?timeout_s fd payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Proto.write_frame: frame too large";
  let deadline = deadline_of_timeout timeout_s in
  let hdr = Bytes.create header_len in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  Bytes.blit_string (Digest.string payload) 0 hdr 4 16;
  let* () = write_all ?deadline fd (Bytes.to_string hdr) 0 header_len in
  write_all ?deadline fd payload 0 n

let read_frame ?idle_timeout_s ?io_timeout_s fd =
  (* the gap between frames may be long (keep-alive); once the first
     byte of a header has arrived, the rest of the frame is on the
     short I/O clock *)
  let* first =
    read_exact
      ?deadline:(deadline_of_timeout idle_timeout_s)
      ~phase:Idle fd 1
  in
  let deadline = deadline_of_timeout io_timeout_s in
  let* rest = read_exact ?deadline ~phase:Header fd (header_len - 1) in
  let hdr = first ^ rest in
  let n = Int32.to_int (String.get_int32_be hdr 0) in
  if n < 0 || n > max_frame then
    Error (Corrupt (Printf.sprintf "bad frame length %d" n))
  else
    let sum = String.sub hdr 4 16 in
    let* payload = read_exact ?deadline ~phase:Payload fd n in
    if not (String.equal (Digest.string payload) sum) then
      Error (Corrupt "frame checksum mismatch")
    else Ok payload

let send_request ?timeout_s fd r =
  write_frame ?timeout_s fd (to_string (sexp_of_request r))

let send_response ?timeout_s fd r =
  write_frame ?timeout_s fd (to_string (sexp_of_response r))

let decode of_sexp payload =
  match Sexp.parse payload with
  | Error msg -> Error (Corrupt ("undecodable payload: " ^ msg))
  | Ok s -> (
      match of_sexp s with
      | Error msg -> Error (Corrupt msg)
      | Ok v -> Ok v)

let recv_request ?idle_timeout_s ?io_timeout_s fd =
  let* payload = read_frame ?idle_timeout_s ?io_timeout_s fd in
  decode request_of_sexp payload

let recv_response ?idle_timeout_s ?io_timeout_s fd =
  let* payload = read_frame ?idle_timeout_s ?io_timeout_s fd in
  decode response_of_sexp payload
