(** The deployed version string, substituted at build time from the
    [(version ...)] field of [dune-project] — the single source of
    truth a daemon and its clients are matched against
    ([psopt version], {!Proto.Pong}). *)

val version : string
