(* The content-addressed on-disk result store.

   Layout: one record per file under [root]/<k0k1>/<key>.sexp, where
   [key] is the hex MD5 of (program digest, subcommand tag, semantic
   config fingerprint) and <k0k1> are its first two characters (a
   256-way fan-out so directories stay small under millions of
   entries).

   Records are versioned s-expressions written atomically (tmp file in
   the same directory, then rename), so a reader never observes a
   half-written record and a crashed writer leaves at worst an orphan
   tmp file.  Any failure to read or decode a record — missing file,
   truncated or garbled bytes, wrong version — is a cache miss, never
   an error: the store is an accelerator, the engine is the truth. *)

type budget = {
  steps : int;
  deadline_ms : int option;
  max_nodes : int option;
  max_live_words : int option;
}

let budget_of_config (c : Explore.Config.t) =
  {
    steps = c.Explore.Config.max_steps;
    deadline_ms = c.Explore.Config.deadline_ms;
    max_nodes = c.Explore.Config.max_nodes;
    max_live_words = c.Explore.Config.max_live_words;
  }

(* [ge_opt a b]: budget component [a] is at least as generous as [b]
   ([None] = unlimited). *)
let ge_opt a b =
  match (a, b) with
  | None, _ -> true
  | Some _, None -> false
  | Some a, Some b -> a >= b

let covers ~cached ~request =
  cached.steps >= request.steps
  && ge_opt cached.deadline_ms request.deadline_ms
  && ge_opt cached.max_nodes request.max_nodes
  && ge_opt cached.max_live_words request.max_live_words

type entry = {
  exit_code : int;
  output : string;
  conclusive : bool;
  budget : budget;
}

type t = {
  root : string;
  (* damaged-record misses: the file was there and readable but failed
     to parse or decode.  A missing file is an ordinary miss and does
     not count. *)
  corrupt : int Atomic.t;
}

let record_version = 1

(* ------------------------------------------------------------------ *)

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) ->
      failwith
        (Printf.sprintf "store: cannot create %s: %s" dir
           (Unix.error_message e))

let open_ root =
  ensure_dir root;
  { root; corrupt = Atomic.make 0 }

let corrupt_misses t = Atomic.get t.corrupt

let m_corrupt =
  Obs.Metrics.counter ~help:"Store lookups that found a damaged record"
    "psopt_store_corrupt_total"

let lookup_hist =
  Obs.Metrics.histogram ~help:"Store lookup (read + decode) time"
    "psopt_store_lookup_duration_ns"

let program_digest p = Digest.to_hex (Digest.string (Lang.Sexp.program_to_string p))

let key ~program_digest ~kind ~fingerprint =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "psopt-store/%d|%s|%s|%s" record_version program_digest
          kind fingerprint))

let shard_dir t key = Filename.concat t.root (String.sub key 0 2)
let path t key = Filename.concat (shard_dir t key) (key ^ ".sexp")

(* ------------------------------------------------------------------ *)
(* Records *)

open Lang.Sexp

let ( let* ) = Result.bind

let sexp_of_entry key e =
  List
    [
      Atom "psopt-result";
      List [ Atom "version"; Atom (string_of_int record_version) ];
      List [ Atom "key"; Atom key ];
      List [ Atom "exit"; Atom (string_of_int e.exit_code) ];
      List [ Atom "conclusive"; Atom (string_of_bool e.conclusive) ];
      List
        [
          Atom "budget";
          Proto.sexp_of_int e.budget.steps;
          Proto.sexp_of_int_opt e.budget.deadline_ms;
          Proto.sexp_of_int_opt e.budget.max_nodes;
          Proto.sexp_of_int_opt e.budget.max_live_words;
        ];
      List [ Atom "output"; Proto.atom_of_string e.output ];
    ]

let entry_of_sexp key s =
  match s with
  | List
      [
        Atom "psopt-result";
        List [ Atom "version"; Atom v ];
        List [ Atom "key"; Atom k ];
        List [ Atom "exit"; code ];
        List [ Atom "conclusive"; concl ];
        List [ Atom "budget"; steps; deadline; nodes; live ];
        List [ Atom "output"; output ];
      ] ->
      if v <> string_of_int record_version then Error "record version mismatch"
      else if k <> key then Error "record key mismatch"
      else
        let* exit_code = Proto.int_of_sexp code in
        let* conclusive = Proto.bool_of_sexp concl in
        let* steps = Proto.int_of_sexp steps in
        let* deadline_ms = Proto.int_opt_of_sexp deadline in
        let* max_nodes = Proto.int_opt_of_sexp nodes in
        let* max_live_words = Proto.int_opt_of_sexp live in
        let* output = Proto.string_of_atom output in
        Ok
          {
            exit_code;
            output;
            conclusive;
            budget = { steps; deadline_ms; max_nodes; max_live_words };
          }
  | _ -> Error "malformed record"

(* ------------------------------------------------------------------ *)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Corruption-tolerant: every failure mode is [None] (a miss). *)
let peek t k =
  Obs.Metrics.time lookup_hist @@ fun () ->
  match read_file (path t k) with
  | exception _ -> None
  | contents -> (
      match Result.bind (parse contents) (entry_of_sexp k) with
      | Ok e -> Some e
      | Error _ ->
          Atomic.incr t.corrupt;
          Obs.Metrics.incr m_corrupt;
          None)

(* Completeness-aware reuse: a conclusive verdict (verified/refuted)
   holds under every budget, so it is always served.  An inconclusive
   record is served only when the cached run's budget covers the
   request's — a larger-budget request must re-run, because it might
   turn inconclusive into a verdict (docs/SERVICE.md). *)
let find t ~key:k ~budget =
  match peek t k with
  | Some e when e.conclusive || covers ~cached:e.budget ~request:budget ->
      Some e
  | _ -> None

let tmp_counter = Atomic.make 0

let put t ~key:k e =
  let dir = shard_dir t k in
  ensure_dir dir;
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc (to_string (sexp_of_entry k e));
     output_char oc '\n';
     close_out oc
   with exn ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  (* rename within one directory is atomic: readers see the old record
     or the new one, never a prefix *)
  Unix.rename tmp (path t k)

let entries t =
  match Sys.readdir t.root with
  | exception Sys_error _ -> 0
  | shards ->
      Array.fold_left
        (fun acc shard ->
          if String.length shard <> 2 then acc
          else
            match Sys.readdir (Filename.concat t.root shard) with
            | exception Sys_error _ -> acc
            | files ->
                acc
                + Array.fold_left
                    (fun n f ->
                      if Filename.check_suffix f ".sexp" then n + 1 else n)
                    0 files)
        0 shards

(* Writes are synchronous and atomic, so there is no dirty in-memory
   state to lose; flushing asks the kernel to push the root directory
   entry so a post-shutdown crash cannot unlink freshly renamed
   records on journal replay. *)
let flush t =
  match Unix.openfile t.root [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
