(** The verification service's wire protocol: typed requests and
    responses serialized as {!Lang.Sexp} trees, framed with a 4-byte
    big-endian length prefix over a Unix-domain socket.

    One connection carries any number of request/response pairs in
    lock step (the client library is blocking; the server handles each
    connection on its own thread).  Responses to work requests carry
    the same exit-code taxonomy as the CLI — 0 verified, 1 refuted,
    2 inconclusive, 3 usage/parse error — plus the rendered report
    text, so [psopt submit]/[psopt batch] print byte-identical output
    to the direct subcommands (docs/SERVICE.md). *)

(** A verification query.  [Explore]/[Verify]/[Races] ship the program
    itself (as its canonical s-expression); [Litmus] names a program
    of the compiled-in corpus. *)
type work =
  | Explore of Explore.Enum.discipline * Lang.Ast.program
  | Verify of string * Lang.Ast.program  (** registered pass name *)
  | Races of Lang.Ast.program
  | Litmus of string  (** corpus name *)

type request =
  | Ping  (** liveness + version handshake *)
  | Stats  (** service counters snapshot *)
  | Metrics  (** full registry in Prometheus text format *)
  | Shutdown  (** graceful drain, then exit *)
  | Work of work * Explore.Config.t
      (** a request is a complete description of the computation: the
          full configuration travels with it *)

val kind_tag : work -> string
(** The store-key component naming the subcommand: ["explore:il"],
    ["explore:np"], ["verify:<pass>"], ["races"], ["litmus:<name>"]. *)

val program_of_work : work -> (Lang.Ast.program, string) result
(** The program a work item is about ([Litmus] resolves through the
    corpus; unknown names are an [Error]). *)

type reply = {
  exit_code : int;
      (** 0 verified / claim holds, 1 refuted, 2 inconclusive,
          3 usage or parse error *)
  output : string;  (** rendered report, byte-identical to the CLI's *)
  cached : bool;  (** answered from the content-addressed store *)
  conclusive : bool;
      (** [exit_code < 2]: the verdict cannot improve under a larger
          budget, so the store may serve it forever *)
}

type stats_payload = {
  served : int;
  store_hits : int;
  store_misses : int;
  busy_rejections : int;
  errors : int;
  store_entries : int;
  store_corrupt : int;
      (** store lookups that found a damaged record (served as a clean
          miss; the computation re-ran) *)
  inflight : int;  (** admitted work requests (running + queued) *)
  capacity : int;  (** admission-queue bound *)
}

type response =
  | Pong of string  (** server version (from dune-project) *)
  | Busy of { inflight : int; capacity : int }
      (** backpressure: the admission queue is full; retry later *)
  | Stats_reply of stats_payload
  | Metrics_reply of string
      (** the daemon's {!Obs.Metrics.render} output, verbatim *)
  | Reply of reply
  | Shutting_down
  | Refused of string  (** protocol error, unknown pass/litmus name, … *)

(** {1 Serialization} — every encoder round-trips exactly
    (property-tested in test/test_service.ml). *)

val atom_of_string : string -> Lang.Sexp.t
(** Arbitrary strings as atoms: percent-encoded behind an ["s:"]
    sigil, since {!Lang.Sexp} atoms carry no quoting. *)

val string_of_atom : Lang.Sexp.t -> (string, string) result

val sexp_of_int : int -> Lang.Sexp.t
val int_of_sexp : Lang.Sexp.t -> (int, string) result
val sexp_of_int_opt : int option -> Lang.Sexp.t
val int_opt_of_sexp : Lang.Sexp.t -> (int option, string) result
val sexp_of_bool : bool -> Lang.Sexp.t
val bool_of_sexp : Lang.Sexp.t -> (bool, string) result

val sexp_of_config : Explore.Config.t -> Lang.Sexp.t
val config_of_sexp : Lang.Sexp.t -> (Explore.Config.t, string) result
val sexp_of_request : request -> Lang.Sexp.t
val request_of_sexp : Lang.Sexp.t -> (request, string) result
val sexp_of_response : response -> Lang.Sexp.t
val response_of_sexp : Lang.Sexp.t -> (response, string) result

(** {1 Framing} *)

val max_frame : int
(** Upper bound (64 MiB) on one frame's payload: a corrupted length
    word is rejected instead of driving allocation. *)

val write_frame : Unix.file_descr -> string -> unit
val read_frame : Unix.file_descr -> (string, string) result

val send_request : Unix.file_descr -> request -> unit
val recv_request : Unix.file_descr -> (request, string) result
val send_response : Unix.file_descr -> response -> unit
val recv_response : Unix.file_descr -> (response, string) result
