(** The verification service's wire protocol: typed requests and
    responses serialized as {!Lang.Sexp} trees, framed with a 4-byte
    big-endian length prefix over a Unix-domain socket.

    One connection carries any number of request/response pairs in
    lock step (the client library is blocking; the server handles each
    connection on its own thread).  Responses to work requests carry
    the same exit-code taxonomy as the CLI — 0 verified, 1 refuted,
    2 inconclusive, 3 usage/parse error — plus the rendered report
    text, so [psopt submit]/[psopt batch] print byte-identical output
    to the direct subcommands (docs/SERVICE.md). *)

(** A verification query.  [Explore]/[Verify]/[Races] ship the program
    itself (as its canonical s-expression); [Litmus] names a program
    of the compiled-in corpus. *)
type work =
  | Explore of Explore.Enum.discipline * Lang.Ast.program
  | Verify of string * Lang.Ast.program  (** registered pass name *)
  | Races of Lang.Ast.program
  | Litmus of string  (** corpus name *)

type request =
  | Ping  (** liveness + version handshake *)
  | Stats  (** service counters snapshot *)
  | Metrics  (** full registry in Prometheus text format *)
  | Shutdown  (** graceful drain, then exit *)
  | Work of work * Explore.Config.t * Obs.Trace.ctx option
      (** a request is a complete description of the computation: the
          full configuration travels with it.  The optional trace
          context stamps daemon-side spans with the caller's
          trace/span ids so client and server Chrome traces stitch
          into one per-request timeline (docs/OBSERVABILITY.md).  The
          field is wire-compatible both ways: a context-free request
          encodes exactly as before this field existed, and decoders
          accept both shapes. *)

val kind_tag : work -> string
(** The store-key component naming the subcommand: ["explore:il"],
    ["explore:np"], ["verify:<pass>"], ["races"], ["litmus:<name>"]. *)

val program_of_work : work -> (Lang.Ast.program, string) result
(** The program a work item is about ([Litmus] resolves through the
    corpus; unknown names are an [Error]). *)

type reply = {
  exit_code : int;
      (** 0 verified / claim holds, 1 refuted, 2 inconclusive,
          3 usage or parse error *)
  output : string;  (** rendered report, byte-identical to the CLI's *)
  cached : bool;  (** answered from the content-addressed store *)
  conclusive : bool;
      (** [exit_code < 2]: the verdict cannot improve under a larger
          budget, so the store may serve it forever *)
}

type stats_payload = {
  served : int;
  store_hits : int;
  store_misses : int;
  busy_rejections : int;
  errors : int;
  store_entries : int;
  store_corrupt : int;
      (** store lookups that found a damaged record (served as a clean
          miss; the computation re-ran) *)
  inflight : int;  (** admitted work requests (running + queued) *)
  capacity : int;  (** admission-queue bound *)
  sheds : int;  (** queued requests preempted by higher priority *)
  expired : int;  (** queued requests dropped past their deadline/TTL *)
  evictions : int;
      (** connections closed by the server's I/O deadlines (slowloris
          or idle) *)
}

(** Why an admitted request was dropped without an answer:
    [Expired] — its wall-clock deadline (or the queue TTL) passed
    while it waited; [Overload] — it was preempted out of a full
    queue by a higher-priority request. *)
type shed_reason = Expired | Overload

val shed_reason_to_string : shed_reason -> string

type response =
  | Pong of string  (** server version (from dune-project) *)
  | Busy of { inflight : int; capacity : int }
      (** backpressure: the admission queue is full; retry later *)
  | Shed of { reason : shed_reason; inflight : int; capacity : int }
      (** the request was admitted to the queue but dropped before it
          could run — see {!shed_reason}.  [Overload] is retryable
          (with backoff); [Expired] means the deadline the request
          carried has already passed. *)
  | Stats_reply of stats_payload
  | Metrics_reply of string
      (** the daemon's {!Obs.Metrics.render} output, verbatim *)
  | Reply of reply
  | Shutting_down
  | Refused of string  (** protocol error, unknown pass/litmus name, … *)

(** {1 Serialization} — every encoder round-trips exactly
    (property-tested in test/test_service.ml). *)

val atom_of_string : string -> Lang.Sexp.t
(** Arbitrary strings as atoms: percent-encoded behind an ["s:"]
    sigil, since {!Lang.Sexp} atoms carry no quoting. *)

val string_of_atom : Lang.Sexp.t -> (string, string) result

val sexp_of_int : int -> Lang.Sexp.t
val int_of_sexp : Lang.Sexp.t -> (int, string) result
val sexp_of_int_opt : int option -> Lang.Sexp.t
val int_opt_of_sexp : Lang.Sexp.t -> (int option, string) result
val sexp_of_bool : bool -> Lang.Sexp.t
val bool_of_sexp : Lang.Sexp.t -> (bool, string) result

val sexp_of_config : Explore.Config.t -> Lang.Sexp.t
val config_of_sexp : Lang.Sexp.t -> (Explore.Config.t, string) result
val sexp_of_request : request -> Lang.Sexp.t
val request_of_sexp : Lang.Sexp.t -> (request, string) result
val sexp_of_response : response -> Lang.Sexp.t
val response_of_sexp : Lang.Sexp.t -> (response, string) result

(** {1 Transport errors} *)

(** Where in a frame an I/O deadline expired.  [Idle] is the
    between-frames wait (a keep-alive connection may sit there for
    minutes); [Header]/[Payload]/[Write] are mid-frame — the slowloris
    signature. *)
type phase = Idle | Header | Payload | Write

val phase_to_string : phase -> string

(** The closed taxonomy of transport failures, so callers pick a
    policy per class instead of string-matching: retry/reconnect on
    [Closed], evict on [Timed_out], drop the connection on [Corrupt]
    (the stream cannot be resynchronized after a bad frame). *)
type error =
  | Closed  (** EOF or reset from the peer *)
  | Timed_out of phase  (** an I/O deadline expired *)
  | Corrupt of string
      (** bad length word, checksum mismatch, or undecodable payload *)
  | Io of string  (** any other [Unix] error *)

val error_to_string : error -> string

(** {1 Framing}

    A 20-byte header — 4-byte big-endian payload length plus the
    16-byte MD5 of the payload — then the payload.  The digest turns
    in-flight byte corruption into a typed {!Corrupt} error instead of
    a silently different message (the chaos suite's "never a wrong
    cached verdict" property).  All I/O takes optional wall-clock
    deadlines enforced with [select]; no call can block forever when a
    timeout is supplied. *)

val max_frame : int
(** Upper bound (64 MiB) on one frame's payload: a corrupted length
    word is rejected instead of driving allocation. *)

val header_len : int
(** Bytes of framing overhead per message (20). *)

val write_frame :
  ?timeout_s:float -> Unix.file_descr -> string -> (unit, error) result

val read_frame :
  ?idle_timeout_s:float ->
  ?io_timeout_s:float ->
  Unix.file_descr ->
  (string, error) result
(** [idle_timeout_s] bounds the wait for the first header byte;
    [io_timeout_s] bounds every subsequent byte of the same frame. *)

val send_request :
  ?timeout_s:float -> Unix.file_descr -> request -> (unit, error) result

val recv_request :
  ?idle_timeout_s:float ->
  ?io_timeout_s:float ->
  Unix.file_descr ->
  (request, error) result

val send_response :
  ?timeout_s:float -> Unix.file_descr -> response -> (unit, error) result

val recv_response :
  ?idle_timeout_s:float ->
  ?io_timeout_s:float ->
  Unix.file_descr ->
  (response, error) result
