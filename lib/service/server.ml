(* The verification daemon.

   One accept loop; one handler thread per connection (requests on a
   connection are answered in order); work requests funnel through an
   admission gate — a single execution slot plus a bounded,
   priority-aware wait queue, the explicit [Busy] response as
   backpressure beyond it.  One slot is deliberate: each exploration
   already parallelizes across the domain pool ([Config.domains]), and
   two heavy searches racing for the same cores just thrash — queueing
   preserves throughput and keeps memory bounded (docs/SERVICE.md).

   Fault tolerance (docs/ROBUSTNESS.md's service fault model):

   - every read and write on a connection carries a deadline: a peer
     that dribbles a frame (slowloris) or stops reading its reply is
     evicted, counted in [psopt_service_conn_evictions_total];
   - each queued work request carries a wall-clock deadline derived
     from the wire config (capped by [request_deadline_ms]) and a
     queue TTL; requests that expire while waiting are answered with
     a typed [Shed Expired] instead of occupying the slot;
   - when the queue is full, a high-priority arrival (cheap litmus
     work) preempts the youngest normal-priority waiter, which is
     answered [Shed Overload] — load degrades by shedding the most
     expensive work first, never by silent starvation;
   - a request that is admitted close to its deadline runs with its
     exploration budget shrunk to the remaining wall clock, so an
     overrun surfaces as the honest [Inconclusive] taxonomy rather
     than a dropped connection;
   - finished handler threads are reaped continuously (not just at
     shutdown) and a watchdog thread ticks the admission gate so
     queued deadlines fire even while the slot is busy.

   Store lookups happen *before* admission: a warm hit is a disk read
   plus a frame write, so cached traffic never queues behind a heavy
   miss.

   Shutdown (SIGINT, SIGTERM, or a [Shutdown] request) is graceful:
   stop accepting, answer queued clients' in-flight work, refuse new
   work, flush the store, unlink the socket. *)

type config = {
  socket : string;
  store_dir : string option;
  capacity : int;
  quiet : bool;
  io_timeout_s : float;
  idle_timeout_s : float;
  request_deadline_ms : int option;
  queue_ttl_ms : int option;
}

let default_capacity = 16

let default ~socket =
  {
    socket;
    store_dir = None;
    capacity = default_capacity;
    quiet = false;
    io_timeout_s = 10.0;
    idle_timeout_s = 600.0;
    request_deadline_ms = None;
    queue_ttl_ms = Some 60_000;
  }

(* ------------------------------------------------------------------ *)
(* The admission gate: one execution slot, a bounded priority-aware
   wait queue with per-waiter deadlines. *)

module Admission = struct
  type priority = High | Normal

  type waiter_state = Waiting | Admitted | Preempted | Expired

  type waiter = {
    prio : priority;
    seq : int;
    deadline_ns : int option;  (* absolute, Obs.Clock.now_ns scale *)
    mutable state : waiter_state;
  }

  type t = {
    m : Mutex.t;
    turn : Condition.t;
    capacity : int;  (* waiters allowed beyond the one running *)
    mutable running : bool;
    mutable next_seq : int;
    mutable waiters : waiter list;
  }

  let create ~capacity =
    {
      m = Mutex.create ();
      turn = Condition.create ();
      capacity = max 0 capacity;
      running = false;
      next_seq = 0;
      waiters = [];
    }

  let waiting_locked t =
    List.length (List.filter (fun w -> w.state = Waiting) t.waiters)

  let inflight t =
    Mutex.lock t.m;
    let n = (if t.running then 1 else 0) + waiting_locked t in
    Mutex.unlock t.m;
    n

  let expire_locked t now =
    List.iter
      (fun w ->
        if w.state = Waiting then
          match w.deadline_ns with
          | Some d when now >= d -> w.state <- Expired
          | _ -> ())
      t.waiters

  (* The next waiter to admit: [High] before [Normal], FIFO within a
     priority. *)
  let pick_locked t =
    List.fold_left
      (fun best w ->
        if w.state <> Waiting then best
        else
          match best with
          | None -> Some w
          | Some b ->
              let better =
                match (w.prio, b.prio) with
                | High, Normal -> true
                | Normal, High -> false
                | High, High | Normal, Normal -> w.seq < b.seq
              in
              if better then Some w else best)
      None t.waiters

  (* The waiter to preempt for a high-priority arrival: the *youngest*
     normal-priority one — it has waited least, so shedding it wastes
     the least accumulated queue time. *)
  let pick_preemptable_locked t =
    List.fold_left
      (fun best w ->
        if w.state <> Waiting || w.prio <> Normal then best
        else
          match best with
          | None -> Some w
          | Some b -> if w.seq > b.seq then Some w else best)
      None t.waiters

  let remove_locked t w = t.waiters <- List.filter (fun x -> x != w) t.waiters

  (* Give the slot away: to the best waiter if there is one (handoff —
     [running] stays true), otherwise free it. *)
  let release t =
    Mutex.lock t.m;
    expire_locked t (Obs.Clock.now_ns ());
    (match pick_locked t with
    | Some w -> w.state <- Admitted
    | None -> t.running <- false);
    Condition.broadcast t.turn;
    Mutex.unlock t.m

  (* Wake waiters so they can notice their deadlines; called
     periodically by the server's watchdog thread (OCaml's [Condition]
     has no timed wait). *)
  let tick t =
    Mutex.lock t.m;
    expire_locked t (Obs.Clock.now_ns ());
    Condition.broadcast t.turn;
    Mutex.unlock t.m

  (* Park until admitted, preempted or expired.  Called with [t.m]
     held; returns with it released. *)
  let wait_turn t w =
    let rec loop () =
      match w.state with
      | Admitted -> `Run
      | Preempted -> `Shed
      | Expired -> `Expired
      | Waiting -> (
          match w.deadline_ns with
          | Some d when Obs.Clock.now_ns () >= d ->
              w.state <- Expired;
              loop ()
          | _ ->
              Condition.wait t.turn t.m;
              loop ())
    in
    let r = loop () in
    remove_locked t w;
    Mutex.unlock t.m;
    r

  (* Run [f] in the execution slot, waiting for a turn if the slot is
     taken and the queue has room.  The queue is bounded so a traffic
     burst degrades into fast explicit rejections instead of an
     unbounded convoy; a [High] arrival at a full queue preempts the
     youngest [Normal] waiter. *)
  let try_run ?(prio = Normal) ?deadline_ns t f =
    let expired_already () =
      match deadline_ns with
      | Some d -> Obs.Clock.now_ns () >= d
      | None -> false
    in
    if expired_already () then `Expired
    else begin
      Mutex.lock t.m;
      if not t.running then begin
        t.running <- true;
        Mutex.unlock t.m;
        let r = try f () with exn -> release t; raise exn in
        release t;
        `Done r
      end
      else begin
        let q = waiting_locked t in
        let room =
          if q < t.capacity then `Yes
          else
            match if prio = High then pick_preemptable_locked t else None with
            | Some victim ->
                victim.state <- Preempted;
                remove_locked t victim;
                Condition.broadcast t.turn;
                `Preempted
            | None -> `No
        in
        match room with
        | `No ->
            let n = 1 + q in
            Mutex.unlock t.m;
            `Busy n
        | `Yes | `Preempted -> (
            let w =
              { prio; seq = t.next_seq; deadline_ns; state = Waiting }
            in
            t.next_seq <- t.next_seq + 1;
            t.waiters <- w :: t.waiters;
            match wait_turn t w with
            | `Run ->
                let r = try f () with exn -> release t; raise exn in
                release t;
                `Done r
            | `Shed -> `Shed
            | `Expired -> `Expired)
      end
    end

  (* Block until the slot is free and nobody is waiting — the shutdown
     drain.  Requires the watchdog to keep ticking so expired waiters
     clear themselves out. *)
  let drain t =
    Mutex.lock t.m;
    while t.running || waiting_locked t > 0 do
      Condition.wait t.turn t.m
    done;
    Mutex.unlock t.m
end

(* Cheap corpus checks jump the queue ahead of open-ended
   explorations: a litmus program is small and bounded, an
   [Explore]/[Verify]/[Races] request ships an arbitrary program and
   may run for hours. *)
let priority_of_work = function
  | Proto.Litmus _ -> Admission.High
  | Proto.Explore _ | Proto.Verify _ | Proto.Races _ -> Admission.Normal

(* ------------------------------------------------------------------ *)
(* Executing one work item (no store, no queue): compute and render.
   Every predictable failure maps into the CLI exit taxonomy; only
   genuinely internal errors surface as [Error] (and are counted, not
   cached). *)

let run_work (w : Proto.work) (config : Explore.Config.t) :
    (string * int, string) result =
  Obs.Trace.span ~cat:"service" "work.run" @@ fun () ->
  let wf p = Lang.Wf.check_exn p in
  let render f = Obs.Trace.span ~cat:"service" "render" f in
  match
    match w with
    | Proto.Explore (d, p) ->
        let o = Explore.Enum.behaviors_exn ~config d (wf p) in
        Ok (render (fun () -> Render.explore d o))
    | Proto.Verify (pass, p) -> (
        match Sim.Verif.find pass with
        | None -> Error ("unknown optimizer: " ^ pass)
        | Some r ->
            let report = Sim.Verif.check ~explore_config:config r (wf p) in
            Ok (render (fun () -> Render.verify ~pass report)))
    | Proto.Races p ->
        let report = Race.check_all ~config (wf p) in
        Ok (render (fun () -> Render.races report))
    | Proto.Litmus name -> (
        match List.find_opt (fun t -> t.Litmus.name = name) Litmus.all with
        | None -> Error ("unknown litmus test: " ^ name)
        | Some t ->
            let r = Litmus.check ~config t in
            Ok (render (fun () -> Render.litmus t r)))
  with
  | result -> result
  | exception Lang.Wf.Ill_formed errs ->
      Ok ("ill-formed: " ^ Lang.Wf.errors_message errs ^ "\n", Render.exit_error)
  | exception Explore.Errors.Error (Explore.Errors.Budget_exhausted why) ->
      Ok ("inconclusive: " ^ why ^ "\n", Render.exit_inconclusive)
  | exception
      Explore.Errors.Error
        ((Explore.Errors.Parse_error _ | Explore.Errors.Ill_formed _) as e) ->
      Ok (Explore.Errors.to_string e ^ "\n", Render.exit_error)
  | exception exn ->
      Error (Explore.Errors.to_string (Explore.Errors.of_exn exn))

(* The store-aware serve path, shared by the daemon, the bench
   harness's cold/warm table and the unit tests: look up, else compute
   and record.  Conclusive verdicts (exit 0/1) are cached forever;
   inconclusive ones (exit 2) are cached with their budget so only a
   no-larger-budget request can reuse them; errors (exit 3) are never
   cached. *)
(* Work request service time.  Recorded here in [serve_work] — the one
   path every work request funnels through, whether it arrives via the
   daemon, the batch client or a direct embedding like the bench — so
   the histogram is never empty when work was actually served.  The
   daemon's cached-only fast path (which answers without entering
   [serve_work]) records into the same histogram separately. *)
let request_hist =
  Obs.Metrics.histogram ~help:"Work request service time (store hit or full run)"
    "psopt_service_request_duration_ns"

let serve_work ?store ~(stats : Explore.Stats.Service.t) (w : Proto.work)
    (config : Explore.Config.t) : Proto.response =
  Obs.Metrics.time request_hist @@ fun () ->
  match Proto.program_of_work w with
  | Error msg ->
      Atomic.incr stats.errors;
      Proto.Refused msg
  | Ok prog -> (
      let key =
        Store.key
          ~program_digest:(Store.program_digest prog)
          ~kind:(Proto.kind_tag w)
          ~fingerprint:(Explore.Config.fingerprint config)
      in
      let budget = Store.budget_of_config config in
      match
        Obs.Trace.span ~cat:"service" "store.lookup" (fun () ->
            Option.bind store (fun st -> Store.find st ~key ~budget))
      with
      | Some e ->
          Atomic.incr stats.store_hits;
          Atomic.incr stats.served;
          Proto.Reply
            {
              exit_code = e.Store.exit_code;
              output = e.Store.output;
              cached = true;
              conclusive = e.Store.conclusive;
            }
      | None -> (
          match run_work w config with
          | Error msg ->
              Atomic.incr stats.errors;
              Proto.Refused msg
          | Ok (output, exit_code) ->
              Atomic.incr stats.store_misses;
              Atomic.incr stats.served;
              let conclusive = exit_code < Render.exit_inconclusive in
              if exit_code <> Render.exit_error then
                Option.iter
                  (fun st ->
                    Store.put st ~key
                      { Store.exit_code; output; conclusive; budget })
                  store;
              Proto.Reply { exit_code; output; cached = false; conclusive }))

(* ------------------------------------------------------------------ *)
(* The daemon proper *)

type state = {
  cfg : config;
  store : Store.t option;
  stats : Explore.Stats.Service.t;
  gate : Admission.t;
  stop : bool Atomic.t;
  conns : (Unix.file_descr list ref * Mutex.t);
}

(* Daemon diagnostics go through the structured logger; [--quiet]
   keeps the historical contract (nothing on stderr) regardless of the
   ambient level. *)
let log ?(level = Obs.Log.Info) st ?fields text =
  if not st.cfg.quiet then Obs.Log.msg level ~src:"serve" ?fields text

(* Service-level gauges, refreshed on each [Metrics] request from the
   live counters so the exposition and the [Stats] payload agree. *)
let g_served = Obs.Metrics.gauge ~help:"Work requests answered" "psopt_service_served_total"
let g_hits = Obs.Metrics.gauge ~help:"Requests answered from the store" "psopt_service_store_hits_total"
let g_misses = Obs.Metrics.gauge ~help:"Requests computed fresh" "psopt_service_store_misses_total"
let g_busy = Obs.Metrics.gauge ~help:"Requests rejected Busy by admission" "psopt_service_busy_total"
let g_errors = Obs.Metrics.gauge ~help:"Protocol or internal failures" "psopt_service_errors_total"
let g_entries = Obs.Metrics.gauge ~help:"Records in the result store" "psopt_service_store_entries"
let g_corrupt = Obs.Metrics.gauge ~help:"Damaged store records served as misses" "psopt_service_store_corrupt_total"
let g_inflight = Obs.Metrics.gauge ~help:"Admitted work requests (running + queued)" "psopt_service_inflight"
let g_capacity = Obs.Metrics.gauge ~help:"Admission queue bound" "psopt_service_queue_capacity"
let g_handlers = Obs.Metrics.gauge ~help:"Live connection handler threads" "psopt_service_handler_threads"

(* Fault-path counters (docs/ROBUSTNESS.md): sheds by reason,
   connection evictions by reason, deadline shrinks, queue wait. *)
let m_shed_overload =
  Obs.Metrics.counter ~help:"Queued requests preempted by higher priority"
    ~labels:[ ("reason", "overload") ] "psopt_service_shed_total"
let m_shed_expired =
  Obs.Metrics.counter ~help:"Queued requests dropped past their deadline"
    ~labels:[ ("reason", "expired") ] "psopt_service_shed_total"
let m_evict_slowloris =
  Obs.Metrics.counter ~help:"Connections evicted mid-frame by the I/O deadline"
    ~labels:[ ("reason", "slowloris") ] "psopt_service_conn_evictions_total"
let m_evict_idle =
  Obs.Metrics.counter ~help:"Connections evicted by the idle deadline"
    ~labels:[ ("reason", "idle") ] "psopt_service_conn_evictions_total"
let m_corrupt_frames =
  Obs.Metrics.counter ~help:"Connections dropped on an undecodable or checksum-failed frame"
    "psopt_service_corrupt_frames_total"
let m_deadline_shrunk =
  Obs.Metrics.counter
    ~help:"Admitted requests whose explore budget was shrunk by queue wait"
    "psopt_service_deadline_shrunk_total"
let queue_wait_hist =
  Obs.Metrics.histogram ~help:"Admission-queue wait before the slot"
    "psopt_service_queue_wait_ns"

let track_conn st fd =
  let l, m = st.conns in
  Mutex.lock m;
  l := fd :: !l;
  Mutex.unlock m

let untrack_conn st fd =
  let l, m = st.conns in
  Mutex.lock m;
  l := List.filter (fun f -> f != fd) !l;
  Mutex.unlock m

let stats_payload st =
  let ( ! ) = Atomic.get in
  {
    Proto.served = !(st.stats.served);
    store_hits = !(st.stats.store_hits);
    store_misses = !(st.stats.store_misses);
    busy_rejections = !(st.stats.busy);
    errors = !(st.stats.errors);
    store_entries = (match st.store with Some s -> Store.entries s | None -> 0);
    store_corrupt =
      (match st.store with Some s -> Store.corrupt_misses s | None -> 0);
    inflight = Admission.inflight st.gate;
    capacity = st.gate.Admission.capacity;
    sheds = !(st.stats.sheds);
    expired = !(st.stats.expired);
    evictions = !(st.stats.evictions);
  }

let metrics_payload st =
  let p = stats_payload st in
  Obs.Metrics.set g_served p.Proto.served;
  Obs.Metrics.set g_hits p.Proto.store_hits;
  Obs.Metrics.set g_misses p.Proto.store_misses;
  Obs.Metrics.set g_busy p.Proto.busy_rejections;
  Obs.Metrics.set g_errors p.Proto.errors;
  Obs.Metrics.set g_entries p.Proto.store_entries;
  Obs.Metrics.set g_corrupt p.Proto.store_corrupt;
  Obs.Metrics.set g_inflight p.Proto.inflight;
  Obs.Metrics.set g_capacity p.Proto.capacity;
  Obs.Metrics.render ()

let shed_reply st reason =
  Proto.Shed
    {
      reason;
      inflight = Admission.inflight st.gate;
      capacity = st.gate.Admission.capacity;
    }

let ms_to_ns ms = ms * 1_000_000

let handle_request st = function
  | Proto.Ping -> Proto.Pong Version.version
  | Proto.Stats -> Proto.Stats_reply (stats_payload st)
  | Proto.Metrics -> Proto.Metrics_reply (metrics_payload st)
  | Proto.Shutdown ->
      Atomic.set st.stop true;
      Proto.Shutting_down
  | Proto.Work (w, config, tctx) ->
      if Atomic.get st.stop then Proto.Refused "server is shutting down"
      else
        (* Every span below — store.lookup, queue.wait, work.run and
           its nested renders — runs under the caller's trace context,
           so the daemon side of the request carries the client's
           trace id and the merge tool can stitch both processes into
           one timeline. *)
        Obs.Trace.with_ctx tctx @@ fun () -> begin
        (* Cached answers bypass the gate entirely: a hit is a disk
           read, not a search.  The fast path records its service time
           here only when it actually answers; the slow path
           self-times inside [serve_work] — exactly one histogram
           sample per work request either way. *)
        let t0 = Obs.Clock.now_ns () in
        let cached_only =
          match (st.store, Proto.program_of_work w) with
          | Some store, Ok prog ->
              let key =
                Store.key
                  ~program_digest:(Store.program_digest prog)
                  ~kind:(Proto.kind_tag w)
                  ~fingerprint:(Explore.Config.fingerprint config)
              in
              Obs.Trace.span ~cat:"service" "store.lookup" (fun () ->
                  Store.find store ~key ~budget:(Store.budget_of_config config))
          | _ -> None
        in
        match cached_only with
        | Some e ->
            Atomic.incr st.stats.store_hits;
            Atomic.incr st.stats.served;
            Obs.Metrics.observe_ns request_hist (Obs.Clock.now_ns () - t0);
            Proto.Reply
              {
                exit_code = e.Store.exit_code;
                output = e.Store.output;
                cached = true;
                conclusive = e.Store.conclusive;
              }
        | None -> (
            (* The effective request deadline: the client's wall-clock
               budget, capped by the server's own limit.  The queue
               deadline additionally folds in the queue TTL, so even
               deadline-less requests cannot wait forever. *)
            let request_deadline_ns =
              match
                (config.Explore.Config.deadline_ms, st.cfg.request_deadline_ms)
              with
              | None, None -> None
              | Some a, None -> Some (t0 + ms_to_ns a)
              | None, Some b -> Some (t0 + ms_to_ns b)
              | Some a, Some b -> Some (t0 + ms_to_ns (min a b))
            in
            let queue_deadline_ns =
              let ttl =
                Option.map (fun ms -> t0 + ms_to_ns ms) st.cfg.queue_ttl_ms
              in
              match (request_deadline_ns, ttl) with
              | Some a, Some b -> Some (min a b)
              | Some a, None -> Some a
              | None, other -> other
            in
            match
              Admission.try_run st.gate ~prio:(priority_of_work w)
                ?deadline_ns:queue_deadline_ns (fun () ->
                  let now = Obs.Clock.now_ns () in
                  let waited = now - t0 in
                  Obs.Metrics.observe_ns queue_wait_hist waited;
                  (* The wait is only known once the slot is granted,
                     so the span is recorded after the fact over the
                     [t0, now] interval it actually covered. *)
                  Obs.Trace.add ~cat:"service" ~name:"queue.wait" ~ts_ns:t0
                    ~dur_ns:waited ();
                  match request_deadline_ns with
                  | Some d when d - now < ms_to_ns 1 ->
                      (* admitted with (essentially) no wall clock
                         left: answer Shed rather than spinning up a
                         search that must immediately truncate *)
                      `Expired
                  | Some d ->
                      let remaining_ms = (d - now) / 1_000_000 in
                      if waited > ms_to_ns 1 then
                        Obs.Metrics.incr m_deadline_shrunk;
                      `Reply
                        (serve_work ?store:st.store ~stats:st.stats w
                           {
                             config with
                             Explore.Config.deadline_ms = Some remaining_ms;
                           })
                  | None ->
                      `Reply (serve_work ?store:st.store ~stats:st.stats w config))
            with
            | `Done (`Reply r) -> r
            | `Done `Expired | `Expired ->
                Atomic.incr st.stats.expired;
                Obs.Metrics.incr m_shed_expired;
                shed_reply st Proto.Expired
            | `Shed ->
                Atomic.incr st.stats.sheds;
                Obs.Metrics.incr m_shed_overload;
                shed_reply st Proto.Overload
            | `Busy inflight ->
                Atomic.incr st.stats.busy;
                Proto.Busy { inflight; capacity = st.gate.Admission.capacity })
      end

let handle_connection st fd =
  let evict reason counter phase =
    Atomic.incr st.stats.evictions;
    Obs.Metrics.incr counter;
    log ~level:Obs.Log.Warn st "connection evicted"
      ~fields:[ ("reason", reason); ("phase", Proto.phase_to_string phase) ]
  in
  let rec loop () =
    match
      Proto.recv_request ~idle_timeout_s:st.cfg.idle_timeout_s
        ~io_timeout_s:st.cfg.io_timeout_s fd
    with
    | Error Proto.Closed -> ()  (* orderly disconnect *)
    | Error (Proto.Timed_out (Proto.Idle as phase)) ->
        evict "idle" m_evict_idle phase
    | Error (Proto.Timed_out phase) ->
        (* the peer started a frame and stalled: slowloris *)
        evict "slowloris" m_evict_slowloris phase
    | Error (Proto.Corrupt msg) ->
        (* after a bad frame the stream cannot be resynchronized *)
        Atomic.incr st.stats.errors;
        Obs.Metrics.incr m_corrupt_frames;
        log ~level:Obs.Log.Warn st "corrupt frame; dropping connection"
          ~fields:[ ("error", msg) ]
    | Error (Proto.Io msg) ->
        Atomic.incr st.stats.errors;
        log ~level:Obs.Log.Warn st "i/o error on connection"
          ~fields:[ ("error", msg) ]
    | Ok req -> (
        let resp =
          try handle_request st req
          with exn ->
            Atomic.incr st.stats.errors;
            Proto.Refused
              (Explore.Errors.to_string (Explore.Errors.of_exn exn))
        in
        match Proto.send_response ~timeout_s:st.cfg.io_timeout_s fd resp with
        | Ok () -> if not (Atomic.get st.stop) then loop ()
        | Error (Proto.Timed_out phase) ->
            (* the peer stopped draining its reply *)
            evict "slowloris" m_evict_slowloris phase
        | Error _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      untrack_conn st fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* A live daemon already owns the socket iff connecting succeeds; a
   stale path from a crashed one is safe to unlink. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if alive then Error ("socket already served: " ^ path)
    else begin
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ()
    end
  end
  else Ok ()

let run ?(on_ready = fun () -> ()) cfg =
  let ( let* ) = Result.bind in
  let* () = claim_socket cfg.socket in
  let store = Option.map Store.open_ cfg.store_dir in
  let st =
    {
      cfg;
      store;
      stats = Explore.Stats.Service.create ();
      gate = Admission.create ~capacity:cfg.capacity;
      stop = Atomic.make false;
      conns = (ref [], Mutex.create ());
    }
  in
  (* A client vanishing mid-reply must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let request_stop _ = Atomic.set st.stop true in
  let previous_handlers =
    List.filter_map
      (fun s ->
        try
          let old = Sys.signal s (Sys.Signal_handle request_stop) in
          Some (s, old)
        with Invalid_argument _ | Sys_error _ -> None)
      [ Sys.sigint; Sys.sigterm ]
  in
  (* Handler threads carry a finished flag so the accept loop can reap
     them continuously — a long-running daemon must not accumulate one
     dead [Thread.t] per connection it ever served. *)
  let threads : (Thread.t * bool Atomic.t) list ref = ref [] in
  let threads_m = Mutex.create () in
  let reap () =
    Mutex.lock threads_m;
    let live, finished =
      List.partition (fun (_, fin) -> not (Atomic.get fin)) !threads
    in
    threads := live;
    Mutex.unlock threads_m;
    (* joining a finished thread is immediate *)
    List.iter (fun (t, _) -> Thread.join t) finished;
    Obs.Metrics.set g_handlers (List.length live)
  in
  let spawn_handler fd =
    let fin = Atomic.make false in
    let t =
      Thread.create
        (fun fd ->
          Fun.protect
            ~finally:(fun () -> Atomic.set fin true)
            (fun () -> handle_connection st fd))
        fd
    in
    Mutex.lock threads_m;
    threads := (t, fin) :: !threads;
    Mutex.unlock threads_m
  in
  (* The watchdog: wakes queued waiters so their deadlines fire even
     while the slot is busy (OCaml's [Condition] has no timed wait),
     and reaps finished handler threads between accepts.  It keeps
     running through the shutdown drain — expired waiters must still
     clear out — and stops only once the gate is empty. *)
  let watchdog_stop = Atomic.make false in
  let watchdog =
    Thread.create
      (fun () ->
        while not (Atomic.get watchdog_stop) do
          Thread.delay 0.05;
          Admission.tick st.gate;
          reap ()
        done)
      ()
  in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let result =
    try
      Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
      Unix.listen listen_fd 64;
      log st "listening"
        ~fields:
          [
            ("version", Version.version);
            ("socket", cfg.socket);
            ( "store",
              match cfg.store_dir with Some d -> d | None -> "off" );
            ("queue", string_of_int cfg.capacity);
            ("io_timeout_s", string_of_float cfg.io_timeout_s);
            ("idle_timeout_s", string_of_float cfg.idle_timeout_s);
          ];
      on_ready ();
      while not (Atomic.get st.stop) do
        (* a signal interrupting the poll is just an early wakeup: the
           loop condition re-reads the stop flag the handler set *)
        match
          try Unix.select [ listen_fd ] [] [] 0.2
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        with
        | [], _, _ -> ()
        | _ :: _, _, _ ->
            let fd, _ =
              Obs.Trace.span ~cat:"service" "accept" (fun () ->
                  Unix.accept listen_fd)
            in
            track_conn st fd;
            spawn_handler fd
      done;
      log st "draining";
      (* stop accepting, let admitted work finish *)
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Admission.drain st.gate;
      Atomic.set watchdog_stop true;
      Thread.join watchdog;
      Option.iter Store.flush store;
      (* unblock handler threads still parked on reads *)
      let l, m = st.conns in
      Mutex.lock m;
      let open_fds = !l in
      Mutex.unlock m;
      List.iter
        (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        open_fds;
      Mutex.lock threads_m;
      let remaining = !threads in
      threads := [];
      Mutex.unlock threads_m;
      List.iter (fun (t, _) -> Thread.join t) remaining;
      (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
      log st "bye"
        ~fields:
          [ ("stats", Format.asprintf "%a" Explore.Stats.Service.pp st.stats) ];
      Ok ()
    with exn ->
      Atomic.set watchdog_stop true;
      (try Thread.join watchdog with _ -> ());
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
      Error (Printexc.to_string exn)
  in
  List.iter (fun (s, old) -> try Sys.set_signal s old with _ -> ()) previous_handlers;
  result
