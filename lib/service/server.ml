(* The verification daemon.

   One accept loop; one handler thread per connection (requests on a
   connection are answered in order); work requests funnel through an
   admission gate — a single execution slot plus a bounded wait queue,
   the explicit [Busy] response as backpressure beyond it.  One slot
   is deliberate: each exploration already parallelizes across the
   domain pool ([Config.domains]), and two heavy searches racing for
   the same cores just thrash — queueing preserves throughput and
   keeps memory bounded (docs/SERVICE.md).

   Store lookups happen *before* admission: a warm hit is a disk read
   plus a frame write, so cached traffic never queues behind a heavy
   miss.

   Shutdown (SIGINT, SIGTERM, or a [Shutdown] request) is graceful:
   stop accepting, answer queued clients' in-flight work, refuse new
   work, flush the store, unlink the socket. *)

type config = {
  socket : string;
  store_dir : string option;
  capacity : int;
  quiet : bool;
}

let default_capacity = 16

(* ------------------------------------------------------------------ *)
(* The admission gate: one execution slot, a bounded wait queue. *)

module Admission = struct
  type t = {
    m : Mutex.t;
    turn : Condition.t;
    capacity : int;  (* waiters allowed beyond the one running *)
    mutable running : bool;
    mutable waiting : int;
  }

  let create ~capacity = {
    m = Mutex.create ();
    turn = Condition.create ();
    capacity = max 0 capacity;
    running = false;
    waiting = 0;
  }

  let inflight t =
    Mutex.lock t.m;
    let n = (if t.running then 1 else 0) + t.waiting in
    Mutex.unlock t.m;
    n

  (* Run [f] in the execution slot, waiting for a turn if the slot is
     taken and the queue has room; [`Busy] otherwise.  The queue is
     bounded so a traffic burst degrades into fast explicit rejections
     instead of an unbounded convoy. *)
  let try_run t f =
    Mutex.lock t.m;
    if t.running && t.waiting >= t.capacity then begin
      let n = 1 + t.waiting in
      Mutex.unlock t.m;
      `Busy n
    end
    else begin
      while t.running do
        t.waiting <- t.waiting + 1;
        Condition.wait t.turn t.m;
        t.waiting <- t.waiting - 1
      done;
      t.running <- true;
      Mutex.unlock t.m;
      let release () =
        Mutex.lock t.m;
        t.running <- false;
        Condition.broadcast t.turn;
        Mutex.unlock t.m
      in
      let r = try f () with exn -> release (); raise exn in
      release ();
      `Done r
    end

  (* Block until the slot is free and nobody is queued — the shutdown
     drain. *)
  let drain t =
    Mutex.lock t.m;
    while t.running || t.waiting > 0 do
      Condition.wait t.turn t.m
    done;
    Mutex.unlock t.m
end

(* ------------------------------------------------------------------ *)
(* Executing one work item (no store, no queue): compute and render.
   Every predictable failure maps into the CLI exit taxonomy; only
   genuinely internal errors surface as [Error] (and are counted, not
   cached). *)

let run_work (w : Proto.work) (config : Explore.Config.t) :
    (string * int, string) result =
  Obs.Trace.span ~cat:"service" "work.run" @@ fun () ->
  let wf p = Lang.Wf.check_exn p in
  let render f = Obs.Trace.span ~cat:"service" "render" f in
  match
    match w with
    | Proto.Explore (d, p) ->
        let o = Explore.Enum.behaviors_exn ~config d (wf p) in
        Ok (render (fun () -> Render.explore d o))
    | Proto.Verify (pass, p) -> (
        match Sim.Verif.find pass with
        | None -> Error ("unknown optimizer: " ^ pass)
        | Some r ->
            let report = Sim.Verif.check ~explore_config:config r (wf p) in
            Ok (render (fun () -> Render.verify ~pass report)))
    | Proto.Races p ->
        let report = Race.check_all ~config (wf p) in
        Ok (render (fun () -> Render.races report))
    | Proto.Litmus name -> (
        match List.find_opt (fun t -> t.Litmus.name = name) Litmus.all with
        | None -> Error ("unknown litmus test: " ^ name)
        | Some t ->
            let r = Litmus.check ~config t in
            Ok (render (fun () -> Render.litmus t r)))
  with
  | result -> result
  | exception Lang.Wf.Ill_formed errs ->
      Ok ("ill-formed: " ^ Lang.Wf.errors_message errs ^ "\n", Render.exit_error)
  | exception Explore.Errors.Error (Explore.Errors.Budget_exhausted why) ->
      Ok ("inconclusive: " ^ why ^ "\n", Render.exit_inconclusive)
  | exception
      Explore.Errors.Error
        ((Explore.Errors.Parse_error _ | Explore.Errors.Ill_formed _) as e) ->
      Ok (Explore.Errors.to_string e ^ "\n", Render.exit_error)
  | exception exn ->
      Error (Explore.Errors.to_string (Explore.Errors.of_exn exn))

(* The store-aware serve path, shared by the daemon, the bench
   harness's cold/warm table and the unit tests: look up, else compute
   and record.  Conclusive verdicts (exit 0/1) are cached forever;
   inconclusive ones (exit 2) are cached with their budget so only a
   no-larger-budget request can reuse them; errors (exit 3) are never
   cached. *)
(* Work request service time.  Recorded here in [serve_work] — the one
   path every work request funnels through, whether it arrives via the
   daemon, the batch client or a direct embedding like the bench — so
   the histogram is never empty when work was actually served.  The
   daemon's cached-only fast path (which answers without entering
   [serve_work]) records into the same histogram separately. *)
let request_hist =
  Obs.Metrics.histogram ~help:"Work request service time (store hit or full run)"
    "psopt_service_request_duration_ns"

let serve_work ?store ~(stats : Explore.Stats.Service.t) (w : Proto.work)
    (config : Explore.Config.t) : Proto.response =
  Obs.Metrics.time request_hist @@ fun () ->
  match Proto.program_of_work w with
  | Error msg ->
      Atomic.incr stats.errors;
      Proto.Refused msg
  | Ok prog -> (
      let key =
        Store.key
          ~program_digest:(Store.program_digest prog)
          ~kind:(Proto.kind_tag w)
          ~fingerprint:(Explore.Config.fingerprint config)
      in
      let budget = Store.budget_of_config config in
      match
        Obs.Trace.span ~cat:"service" "store.lookup" (fun () ->
            Option.bind store (fun st -> Store.find st ~key ~budget))
      with
      | Some e ->
          Atomic.incr stats.store_hits;
          Atomic.incr stats.served;
          Proto.Reply
            {
              exit_code = e.Store.exit_code;
              output = e.Store.output;
              cached = true;
              conclusive = e.Store.conclusive;
            }
      | None -> (
          match run_work w config with
          | Error msg ->
              Atomic.incr stats.errors;
              Proto.Refused msg
          | Ok (output, exit_code) ->
              Atomic.incr stats.store_misses;
              Atomic.incr stats.served;
              let conclusive = exit_code < Render.exit_inconclusive in
              if exit_code <> Render.exit_error then
                Option.iter
                  (fun st ->
                    Store.put st ~key
                      { Store.exit_code; output; conclusive; budget })
                  store;
              Proto.Reply { exit_code; output; cached = false; conclusive }))

(* ------------------------------------------------------------------ *)
(* The daemon proper *)

type state = {
  cfg : config;
  store : Store.t option;
  stats : Explore.Stats.Service.t;
  gate : Admission.t;
  stop : bool Atomic.t;
  conns : (Unix.file_descr list ref * Mutex.t);
}

(* Daemon diagnostics go through the structured logger; [--quiet]
   keeps the historical contract (nothing on stderr) regardless of the
   ambient level. *)
let log ?(level = Obs.Log.Info) st ?fields text =
  if not st.cfg.quiet then Obs.Log.msg level ~src:"serve" ?fields text

(* Service-level gauges, refreshed on each [Metrics] request from the
   live counters so the exposition and the [Stats] payload agree. *)
let g_served = Obs.Metrics.gauge ~help:"Work requests answered" "psopt_service_served_total"
let g_hits = Obs.Metrics.gauge ~help:"Requests answered from the store" "psopt_service_store_hits_total"
let g_misses = Obs.Metrics.gauge ~help:"Requests computed fresh" "psopt_service_store_misses_total"
let g_busy = Obs.Metrics.gauge ~help:"Requests rejected Busy by admission" "psopt_service_busy_total"
let g_errors = Obs.Metrics.gauge ~help:"Protocol or internal failures" "psopt_service_errors_total"
let g_entries = Obs.Metrics.gauge ~help:"Records in the result store" "psopt_service_store_entries"
let g_corrupt = Obs.Metrics.gauge ~help:"Damaged store records served as misses" "psopt_service_store_corrupt_total"
let g_inflight = Obs.Metrics.gauge ~help:"Admitted work requests (running + queued)" "psopt_service_inflight"
let g_capacity = Obs.Metrics.gauge ~help:"Admission queue bound" "psopt_service_queue_capacity"

let track_conn st fd =
  let l, m = st.conns in
  Mutex.lock m;
  l := fd :: !l;
  Mutex.unlock m

let untrack_conn st fd =
  let l, m = st.conns in
  Mutex.lock m;
  l := List.filter (fun f -> f != fd) !l;
  Mutex.unlock m

let stats_payload st =
  let ( ! ) = Atomic.get in
  {
    Proto.served = !(st.stats.served);
    store_hits = !(st.stats.store_hits);
    store_misses = !(st.stats.store_misses);
    busy_rejections = !(st.stats.busy);
    errors = !(st.stats.errors);
    store_entries = (match st.store with Some s -> Store.entries s | None -> 0);
    store_corrupt =
      (match st.store with Some s -> Store.corrupt_misses s | None -> 0);
    inflight = Admission.inflight st.gate;
    capacity = st.gate.Admission.capacity;
  }

let metrics_payload st =
  let p = stats_payload st in
  Obs.Metrics.set g_served p.Proto.served;
  Obs.Metrics.set g_hits p.Proto.store_hits;
  Obs.Metrics.set g_misses p.Proto.store_misses;
  Obs.Metrics.set g_busy p.Proto.busy_rejections;
  Obs.Metrics.set g_errors p.Proto.errors;
  Obs.Metrics.set g_entries p.Proto.store_entries;
  Obs.Metrics.set g_corrupt p.Proto.store_corrupt;
  Obs.Metrics.set g_inflight p.Proto.inflight;
  Obs.Metrics.set g_capacity p.Proto.capacity;
  Obs.Metrics.render ()

let handle_request st = function
  | Proto.Ping -> Proto.Pong Version.version
  | Proto.Stats -> Proto.Stats_reply (stats_payload st)
  | Proto.Metrics -> Proto.Metrics_reply (metrics_payload st)
  | Proto.Shutdown ->
      Atomic.set st.stop true;
      Proto.Shutting_down
  | Proto.Work (w, config) ->
      if Atomic.get st.stop then Proto.Refused "server is shutting down"
      else begin
        (* Cached answers bypass the gate entirely: a hit is a disk
           read, not a search.  The fast path records its service time
           here only when it actually answers; the slow path
           self-times inside [serve_work] — exactly one histogram
           sample per work request either way. *)
        let t0 = Obs.Clock.now_ns () in
        let cached_only =
          match (st.store, Proto.program_of_work w) with
          | Some store, Ok prog ->
              let key =
                Store.key
                  ~program_digest:(Store.program_digest prog)
                  ~kind:(Proto.kind_tag w)
                  ~fingerprint:(Explore.Config.fingerprint config)
              in
              Obs.Trace.span ~cat:"service" "store.lookup" (fun () ->
                  Store.find store ~key ~budget:(Store.budget_of_config config))
          | _ -> None
        in
        match cached_only with
        | Some e ->
            Atomic.incr st.stats.store_hits;
            Atomic.incr st.stats.served;
            Obs.Metrics.observe_ns request_hist (Obs.Clock.now_ns () - t0);
            Proto.Reply
              {
                exit_code = e.Store.exit_code;
                output = e.Store.output;
                cached = true;
                conclusive = e.Store.conclusive;
              }
        | None -> (
            match
              Admission.try_run st.gate (fun () ->
                  serve_work ?store:st.store ~stats:st.stats w config)
            with
            | `Busy inflight ->
                Atomic.incr st.stats.busy;
                Proto.Busy { inflight; capacity = st.gate.Admission.capacity }
            | `Done r -> r)
      end

let handle_connection st fd =
  let rec loop () =
    match Proto.recv_request fd with
    | Error _ -> ()  (* disconnect or garbage: drop the connection *)
    | Ok req ->
        let resp =
          try handle_request st req
          with exn ->
            Atomic.incr st.stats.errors;
            Proto.Refused
              (Explore.Errors.to_string (Explore.Errors.of_exn exn))
        in
        (match (try Ok (Proto.send_response fd resp) with exn -> Error exn) with
        | Ok () -> if not (Atomic.get st.stop) then loop ()
        | Error _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      untrack_conn st fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* A live daemon already owns the socket iff connecting succeeds; a
   stale path from a crashed one is safe to unlink. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if alive then Error ("socket already served: " ^ path)
    else begin
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ()
    end
  end
  else Ok ()

let run ?(on_ready = fun () -> ()) cfg =
  let ( let* ) = Result.bind in
  let* () = claim_socket cfg.socket in
  let store = Option.map Store.open_ cfg.store_dir in
  let st =
    {
      cfg;
      store;
      stats = Explore.Stats.Service.create ();
      gate = Admission.create ~capacity:cfg.capacity;
      stop = Atomic.make false;
      conns = (ref [], Mutex.create ());
    }
  in
  (* A client vanishing mid-reply must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let request_stop _ = Atomic.set st.stop true in
  let previous_handlers =
    List.filter_map
      (fun s ->
        try
          let old = Sys.signal s (Sys.Signal_handle request_stop) in
          Some (s, old)
        with Invalid_argument _ | Sys_error _ -> None)
      [ Sys.sigint; Sys.sigterm ]
  in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let result =
    try
      Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
      Unix.listen listen_fd 64;
      log st "listening"
        ~fields:
          [
            ("version", Version.version);
            ("socket", cfg.socket);
            ( "store",
              match cfg.store_dir with Some d -> d | None -> "off" );
            ("queue", string_of_int cfg.capacity);
          ];
      on_ready ();
      let threads = ref [] in
      while not (Atomic.get st.stop) do
        (* a signal interrupting the poll is just an early wakeup: the
           loop condition re-reads the stop flag the handler set *)
        match
          try Unix.select [ listen_fd ] [] [] 0.2
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        with
        | [], _, _ -> ()
        | _ :: _, _, _ ->
            let fd, _ =
              Obs.Trace.span ~cat:"service" "accept" (fun () ->
                  Unix.accept listen_fd)
            in
            track_conn st fd;
            threads := Thread.create (handle_connection st) fd :: !threads
      done;
      log st "draining";
      (* stop accepting, let admitted work finish *)
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Admission.drain st.gate;
      Option.iter Store.flush store;
      (* unblock handler threads still parked on reads *)
      let l, m = st.conns in
      Mutex.lock m;
      let open_fds = !l in
      Mutex.unlock m;
      List.iter
        (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        open_fds;
      List.iter Thread.join !threads;
      (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
      log st "bye"
        ~fields:
          [ ("stats", Format.asprintf "%a" Explore.Stats.Service.pp st.stats) ];
      Ok ()
    with exn ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
      Error (Printexc.to_string exn)
  in
  List.iter (fun (s, old) -> try Sys.set_signal s old with _ -> ()) previous_handlers;
  result
