(** A deterministic in-process fault proxy for the chaos suite
    (test/test_chaos.ml) and [psopt chaos-proxy].

    The proxy listens on one Unix-domain socket and forwards byte
    streams to an upstream daemon socket, injecting faults drawn from
    a seeded RNG: artificial delays, torn writes (a chunk split in two
    with a pause between — the slowloris shape), single-byte
    corruption, and mid-stream disconnects.  Each connection direction
    gets its own RNG stream derived from [(seed, connection, direction)],
    so a given plan replays the same fault schedule run after run —
    chaos findings are reproducible by seed (docs/ROBUSTNESS.md).

    The properties the suite asserts through this proxy: every client
    call converges to a correct reply or a typed error (never a hang,
    never a silently wrong verdict — corruption is caught by the frame
    checksum), and warm-store replies after the storm are
    byte-identical to fault-free runs. *)

type plan = {
  seed : int;
  delay_p : float;  (** per-chunk probability of an injected delay *)
  max_delay_s : float;  (** injected delays are uniform in [0, max] *)
  tear_p : float;
      (** per-chunk probability of a torn write: the chunk is split at
          a random point and the halves separated by a pause *)
  corrupt_p : float;  (** per-chunk probability of flipping one byte *)
  disconnect_p : float;
      (** per-chunk probability of dropping the connection entirely *)
}

val calm : plan
(** No faults at all — the proxy as a transparent relay (baseline). *)

val rough : plan
(** Frequent delays and tears, occasional corruption and
    disconnects — the default storm. *)

type counts = {
  connections : int;
  delays : int;
  tears : int;
  corruptions : int;
  disconnects : int;
}

type t

val start : plan:plan -> listen:string -> upstream:string -> (t, string) result
(** Start the proxy: bind [listen], forward every connection to
    [upstream].  Fails if [listen] cannot be bound.  The upstream is
    connected per client connection, so the proxy may be started
    before (or survive restarts of) the daemon. *)

val counts : t -> counts
(** Faults injected so far (all connections summed). *)

val stop : t -> unit
(** Shut the proxy down: stop accepting, sever active connections,
    join all pump threads, unlink the listen socket.  Idempotent. *)
