(** The content-addressed on-disk result store.

    Results are keyed by [(program digest, subcommand tag, semantic
    config fingerprint)] — see {!Explore.Config.fingerprint} for what
    the fingerprint covers — and stored one versioned s-expression
    record per file under a 256-way sharded directory tree.  Writes
    are atomic (tmp file + rename in one directory); reads are
    corruption-tolerant (a missing, truncated, garbled or
    version-mismatched record is a miss, never an error).

    Reuse is completeness-aware: a {e conclusive} verdict (exit code 0
    or 1 — verified or refuted) holds under every budget and is served
    forever; an {e inconclusive} record is served only to requests
    whose budget the cached run already covers, so a larger-budget
    request always re-runs (docs/SERVICE.md's cache-soundness
    argument). *)

type budget = {
  steps : int;  (** [Config.max_steps] *)
  deadline_ms : int option;
  max_nodes : int option;
  max_live_words : int option;
}
(** The four budget fields of {!Explore.Config.t} — everything the
    config fingerprint deliberately excludes.  [None] = unlimited. *)

val budget_of_config : Explore.Config.t -> budget

val covers : cached:budget -> request:budget -> bool
(** Componentwise: every budget of [cached] is at least as generous as
    [request]'s ([None] dominates). *)

type entry = {
  exit_code : int;
  output : string;
  conclusive : bool;  (** [exit_code < 2] at record time *)
  budget : budget;  (** the budget the recorded run was given *)
}

type t

val open_ : string -> t
(** Create or reopen a store rooted at the given directory. *)

val program_digest : Lang.Ast.program -> string
(** Hex digest of the program's canonical s-expression — the
    content-address component, independent of file paths and of the
    human-facing concrete syntax. *)

val key : program_digest:string -> kind:string -> fingerprint:string -> string
(** The record key (hex); [kind] is {!Proto.kind_tag}, [fingerprint]
    is {!Explore.Config.fingerprint}. *)

val find : t -> key:string -> budget:budget -> entry option
(** Completeness-aware lookup (see the module doc).  Never raises. *)

val peek : t -> string -> entry option
(** Raw lookup without the budget rule (tests, inspection). *)

val put : t -> key:string -> entry -> unit
(** Atomic record write (tmp + rename). *)

val entries : t -> int
(** Number of records on disk (walks the shard directories). *)

val corrupt_misses : t -> int
(** Lookups (since [open_]) that found a record on disk but could not
    parse or decode it — each one was served as a clean miss.  A
    missing file does not count.  Surfaced in the daemon's [Stats]
    payload and the [psopt batch] report. *)

val flush : t -> unit
(** Push the root directory entry to stable storage.  Record writes
    are already synchronous and atomic; this is the graceful-shutdown
    hook. *)
