(* The blocking client: one Unix-domain connection, requests answered
   in lock step.

   Fault tolerance lives here, not in callers: [rpc_wait] retries
   [Busy]/[Shed] backpressure and transport failures (EOF, reset,
   timeout, corrupt frame) with decorrelated-jitter exponential
   backoff, reconnecting as needed, behind a small circuit breaker.
   Retrying a work request is safe because the server's
   content-addressed store makes work idempotent: a request that was
   actually served before the connection died is answered from the
   store on the retry, byte-identical (docs/ROBUSTNESS.md).

   [rpc] stays single-shot for callers that want their own policy. *)

type t = {
  mutable fd : Unix.file_descr option;
  socket : string;
  io_timeout_s : float option;
  backoff : Resilience.Backoff.t;
  breaker : Resilience.Breaker.t;
  mutable retries : int;
  mutable reconnects : int;
}

type stats = {
  retries : int;  (** extra attempts beyond the first, all causes *)
  reconnects : int;  (** connections re-established after a failure *)
  backoff_total_s : float;  (** total time spent sleeping *)
  breaker_trips : int;  (** times the circuit breaker opened *)
}

(* Client-observed latency of the *whole* logical request — connects,
   retries and backoff sleeps included — which is what a caller
   actually waits, as opposed to the server's own
   psopt_service_request_duration_ns (one admitted attempt, queue wait
   excluded on the fast path).  The gap between the two histograms is
   exactly the fleet's retry/backpressure overhead. *)
let request_hist =
  Obs.Metrics.histogram
    ~help:"Whole logical rpc_wait request incl. reconnects and backoff"
    "psopt_client_request_duration_ns"

let connect_fd socket =
  (* a peer that died mid-request must surface as a typed [Closed],
     not kill the whole client process with SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX socket);
    Ok fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))

let connect ?seed ?io_timeout_s ~socket () =
  match
    Obs.Trace.span ~cat:"client" "client.connect" (fun () -> connect_fd socket)
  with
  | Error _ as e -> e
  | Ok fd ->
      Ok
        {
          fd = Some fd;
          socket;
          io_timeout_s;
          backoff = Resilience.Backoff.create ?seed ();
          breaker = Resilience.Breaker.create ();
          retries = 0;
          reconnects = 0;
        }

let close t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None

let stats (t : t) =
  {
    retries = t.retries;
    reconnects = t.reconnects;
    backoff_total_s = Resilience.Backoff.total_s t.backoff;
    breaker_trips = Resilience.Breaker.trips t.breaker;
  }

(* Drop a connection we no longer trust: after any transport error the
   stream state is unknown, so the only safe continuation is a fresh
   connection. *)
let invalidate t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None

let ensure_connected t =
  match t.fd with
  | Some fd -> Ok fd
  | None -> (
      match
        Obs.Trace.span ~cat:"client" "client.connect" (fun () ->
            connect_fd t.socket)
      with
      | Ok fd ->
          t.fd <- Some fd;
          t.reconnects <- t.reconnects + 1;
          Ok fd
      | Error _ as e -> e)

(* One round trip on the current connection: typed transport errors,
   no retries.  Any transport error invalidates the connection. *)
let rpc_once t req : (Proto.response, Proto.error) result =
  match ensure_connected t with
  | Error msg ->
      t.fd <- None;
      Error (Proto.Io msg)
  | Ok fd -> (
      match Proto.send_request ?timeout_s:t.io_timeout_s fd req with
      | Error e ->
          invalidate t;
          Error e
      | Ok () -> (
          match Proto.recv_response ?io_timeout_s:t.io_timeout_s fd with
          | Error e ->
              invalidate t;
              Error e
          | Ok _ as ok -> ok))

let rpc t req =
  Result.map_error Proto.error_to_string (rpc_once t req)

(* The resilient call.  Every retryable outcome — transport failure,
   [Busy], [Shed] — sleeps a decorrelated-jitter backoff and tries
   again, up to [retries] attempts and [deadline_s] of wall clock,
   whichever comes first; the circuit breaker turns a dead daemon into
   fast failures instead of a retry storm.  The last response or error
   passes through when the budget is exhausted. *)
let rpc_wait ?(retries = 100) ?deadline_s t req =
  (* When the request ships a trace context, the retry loop runs under
     it, so every connect/rpc/backoff span below carries the same
     trace id as the daemon-side spans for this request. *)
  let tctx = match req with Proto.Work (_, _, Some c) -> Some c | _ -> None in
  Obs.Trace.with_ctx tctx @@ fun () ->
  Obs.Metrics.time request_hist @@ fun () ->
  Obs.Trace.span ~cat:"client" "client.request" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let out_of_time () =
    match deadline_s with
    | None -> false
    | Some d -> Unix.gettimeofday () -. t0 >= d
  in
  let sleep () =
    let d = Resilience.Backoff.next t.backoff in
    Obs.Trace.span ~cat:"client" "client.backoff" (fun () -> Thread.delay d)
  in
  let rec go k =
    if not (Resilience.Breaker.allow t.breaker) then
      if k >= retries || out_of_time () then
        Error
          (Printf.sprintf "circuit breaker open for %s (after %d trips)"
             t.socket
             (Resilience.Breaker.trips t.breaker))
      else begin
        t.retries <- t.retries + 1;
        sleep ();
        go (k + 1)
      end
    else
      match
        Obs.Trace.span ~cat:"client" "client.rpc" (fun () -> rpc_once t req)
      with
      | Ok (Proto.Busy _ as r) | Ok (Proto.Shed _ as r) ->
          (* the daemon is alive and answering: backpressure, not
             failure *)
          Resilience.Breaker.success t.breaker;
          if k >= retries || out_of_time () then Ok r
          else begin
            t.retries <- t.retries + 1;
            sleep ();
            go (k + 1)
          end
      | Ok r ->
          Resilience.Breaker.success t.breaker;
          Resilience.Backoff.reset t.backoff;
          Ok r
      | Error e ->
          Resilience.Breaker.failure t.breaker;
          if k >= retries || out_of_time () then
            Error (Proto.error_to_string e)
          else begin
            t.retries <- t.retries + 1;
            sleep ();
            go (k + 1)
          end
  in
  go 0

let with_client ?seed ?io_timeout_s ~socket f =
  match connect ?seed ?io_timeout_s ~socket () with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> Ok (f t))

let ping ~socket =
  match connect ~socket () with
  | Error _ as e -> e
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () ->
          match rpc t Proto.Ping with
          | Ok (Proto.Pong v) -> Ok v
          | Ok _ -> Error "unexpected response to ping"
          | Error _ as e -> e)

let metrics ~socket =
  match connect ~socket () with
  | Error _ as e -> e
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () ->
          match rpc t Proto.Metrics with
          | Ok (Proto.Metrics_reply text) -> Ok text
          | Ok _ -> Error "unexpected response to metrics"
          | Error _ as e -> e)

let shutdown ~socket =
  match connect ~socket () with
  | Error _ as e -> e
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () ->
          match rpc t Proto.Shutdown with
          | Ok Proto.Shutting_down -> Ok ()
          | Ok _ -> Error "unexpected response to shutdown"
          | Error _ as e -> e)
