(* The blocking client: one Unix-domain connection, requests answered
   in lock step.  Every failure is a [result] — callers (the CLI, the
   batch driver) decide whether to retry, never this layer, except for
   the explicit [Busy] backoff helper. *)

type t = { fd : Unix.file_descr; socket : string }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX socket);
    Ok { fd; socket }
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t req =
  match Proto.send_request t.fd req with
  | () -> Proto.recv_response t.fd
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send to %s failed: %s" t.socket (Unix.error_message e))

(* Retry [Busy] with linear backoff: the daemon's admission queue is
   the real scheduler; the client just needs to come back.  Any other
   response passes through. *)
let rpc_wait ?(retries = 100) ?(delay_s = 0.1) t req =
  let rec go k =
    match rpc t req with
    | Ok (Proto.Busy _ as b) when k >= retries -> Ok b
    | Ok (Proto.Busy _) ->
        Thread.delay delay_s;
        go (k + 1)
    | r -> r
  in
  go 0

let with_client ~socket f =
  match connect ~socket with
  | Error _ as e -> e
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () -> Ok (f t))

let ping ~socket =
  match connect ~socket with
  | Error _ as e -> e
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () ->
          match rpc t Proto.Ping with
          | Ok (Proto.Pong v) -> Ok v
          | Ok _ -> Error "unexpected response to ping"
          | Error _ as e -> e)

let metrics ~socket =
  match connect ~socket with
  | Error _ as e -> e
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () ->
          match rpc t Proto.Metrics with
          | Ok (Proto.Metrics_reply text) -> Ok text
          | Ok _ -> Error "unexpected response to metrics"
          | Error _ as e -> e)

let shutdown ~socket =
  match connect ~socket with
  | Error _ as e -> e
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () ->
          match rpc t Proto.Shutdown with
          | Ok Proto.Shutting_down -> Ok ()
          | Ok _ -> Error "unexpected response to shutdown"
          | Error _ as e -> e)
