(* Canonical report renderings shared by the CLI and the daemon.

   The byte-identity contract: `psopt litmus`/`psopt races` and the
   service path (`psopt batch --litmus`, `psopt submit`) print through
   these same functions, so a cached reply replayed from the store is
   indistinguishable from a fresh run.  For that to be sound the text
   must be a pure function of the verdict — no wall-clock stats, no
   file paths, no pool widths. *)

let exit_ok = 0
let exit_fail = 1
let exit_inconclusive = 2
let exit_error = 3

let with_buffer f =
  let b = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer b in
  let code = f ppf in
  Format.pp_print_flush ppf ();
  (Buffer.contents b, code)

(* ------------------------------------------------------------------ *)

let litmus (t : Litmus.t) (r : Litmus.result) =
  with_buffer (fun ppf ->
      Format.fprintf ppf "%-18s %a — %s@." t.Litmus.name Litmus.pp_verdict
        r.Litmus.verdict t.Litmus.descr;
      List.iter
        (fun o ->
          Format.fprintf ppf "    [%s]@."
            (String.concat ";" (List.map string_of_int o)))
        r.Litmus.observed;
      match r.Litmus.verdict with
      | Litmus.Pass -> exit_ok
      | Litmus.Mismatch _ -> exit_fail
      | Litmus.Inconclusive _ -> exit_inconclusive)

let races (rep : Race.report) =
  with_buffer (fun ppf ->
      let worst = ref exit_ok in
      let bump c = if c > !worst then worst := c in
      let report label v =
        match v with
        | Ok (Race.Racy _ as v) ->
            Format.fprintf ppf "%s %a@." label Race.pp_verdict v;
            bump exit_fail
        | Ok (Race.Inconclusive _ as v) ->
            Format.fprintf ppf "%s %a@." label Race.pp_verdict v;
            bump exit_inconclusive
        | Ok Race.Free ->
            Format.fprintf ppf "%s %a@." label Race.pp_verdict Race.Free
        | Error e ->
            Format.fprintf ppf "%s error: %s@." label e;
            bump exit_error
      in
      report "ww-RF:  " rep.Race.ww;
      report "ww-NPRF:" rep.Race.ww_np;
      (match rep.Race.rw with
      | Ok [] -> Format.fprintf ppf "rw:      none@."
      | Ok rs ->
          List.iter (fun r -> Format.fprintf ppf "rw:      %a@." Race.pp_race r) rs
      | Error e ->
          Format.fprintf ppf "rw:      error: %s@." e;
          bump exit_error);
      !worst)

(* No config or stats line: the traceset and completeness are pure
   functions of (program, discipline, semantic config, budget) — the
   stats counters are not (they vary with pool width and caches). *)
let explore disc (o : Explore.Enum.outcome) =
  with_buffer (fun ppf ->
      Format.fprintf ppf "discipline: %a@." Explore.Enum.pp_discipline disc;
      Format.fprintf ppf "behaviours (%a):@.%a@." Explore.Enum.pp_completeness
        o.Explore.Enum.completeness Explore.Traceset.pp o.Explore.Enum.traces;
      match o.Explore.Enum.completeness with
      | Explore.Enum.Exhaustive -> exit_ok
      | Explore.Enum.Truncated _ -> exit_inconclusive)

(* Identified by pass name only — the program is content-addressed, a
   file path would poison the cache. *)
let verify ~pass (v : Sim.Verif.verdict) =
  with_buffer (fun ppf ->
      Format.fprintf ppf "%s: %a@." pass Sim.Verif.pp_verdict v;
      match v with
      | Sim.Verif.Verified -> exit_ok
      | Sim.Verif.Fail _ -> exit_fail
      | Sim.Verif.Inconclusive _ -> exit_inconclusive)
