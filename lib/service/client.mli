(** The blocking client library behind [psopt ping], [psopt submit]
    and [psopt batch]: one Unix-domain connection, request/response in
    lock step, every failure a [result].

    The resilient entry point is {!rpc_wait}: it retries backpressure
    ({!Proto.Busy}, {!Proto.Shed}) and transport failures (EOF, reset,
    I/O deadline, corrupt frame) with decorrelated-jitter exponential
    backoff, transparently reconnecting, behind a small circuit
    breaker.  Retrying work is safe because the server's
    content-addressed store makes it idempotent — a request served
    just before the connection died is answered from the store on
    retry, byte-identical (docs/ROBUSTNESS.md). *)

type t

type stats = {
  retries : int;  (** extra attempts beyond the first, all causes *)
  reconnects : int;  (** connections re-established after a failure *)
  backoff_total_s : float;  (** total time spent sleeping in backoff *)
  breaker_trips : int;  (** times the circuit breaker opened *)
}

val connect :
  ?seed:int -> ?io_timeout_s:float -> socket:string -> unit -> (t, string) result
(** [io_timeout_s] bounds every frame read/write on this client (so a
    wedged daemon surfaces as [Timed_out], not a hang); [seed] makes
    the backoff jitter deterministic for tests. *)

val close : t -> unit

val stats : t -> stats
(** Cumulative fault-handling counters for this client — the batch
    driver reports them in its summary line. *)

val rpc : t -> Proto.request -> (Proto.response, string) result
(** One single-shot round trip, no retries; transport errors are
    rendered with {!Proto.error_to_string} and invalidate the
    connection (the next call reconnects). *)

val rpc_wait :
  ?retries:int ->
  ?deadline_s:float ->
  t ->
  Proto.request ->
  (Proto.response, string) result
(** The resilient round trip: retries {!Proto.Busy}/{!Proto.Shed}
    backpressure and every transport failure with
    decorrelated-jitter backoff (reconnecting first), up to [retries]
    extra attempts (default 100) and [deadline_s] of wall clock.  When
    the budget runs out the last response or error passes through
    verbatim.

    The whole logical request — reconnects and backoff sleeps included
    — is observed into the [psopt_client_request_duration_ns]
    histogram, and (when tracing is on) recorded as a [client.request]
    span with nested [client.connect]/[client.rpc]/[client.backoff]
    spans, all run under the request's trace context if it ships
    one. *)

val with_client :
  ?seed:int ->
  ?io_timeout_s:float ->
  socket:string ->
  (t -> 'a) ->
  ('a, string) result

val ping : socket:string -> (string, string) result
(** Round-trip a {!Proto.Ping}; returns the server's version. *)

val metrics : socket:string -> (string, string) result
(** Fetch the daemon's metrics registry rendered as Prometheus text
    (behind [psopt metrics]). *)

val shutdown : socket:string -> (unit, string) result
(** Ask the daemon to drain and exit. *)
