(** The blocking client library behind [psopt ping], [psopt submit]
    and [psopt batch]: one Unix-domain connection, request/response in
    lock step, every failure a [result]. *)

type t

val connect : socket:string -> (t, string) result
val close : t -> unit

val rpc : t -> Proto.request -> (Proto.response, string) result
(** One request/response round trip. *)

val rpc_wait :
  ?retries:int ->
  ?delay_s:float ->
  t ->
  Proto.request ->
  (Proto.response, string) result
(** Like {!rpc} but sleeps and retries on {!Proto.Busy} (default: up
    to 100 times, 0.1 s apart) — the batch driver's answer to
    backpressure.  The final [Busy] passes through once retries are
    exhausted. *)

val with_client : socket:string -> (t -> 'a) -> ('a, string) result

val ping : socket:string -> (string, string) result
(** Round-trip a {!Proto.Ping}; returns the server's version. *)

val metrics : socket:string -> (string, string) result
(** Fetch the daemon's metrics registry rendered as Prometheus text
    (behind [psopt metrics]). *)

val shutdown : socket:string -> (unit, string) result
(** Ask the daemon to drain and exit. *)
