(* Client-side fault-tolerance primitives: jittered exponential
   backoff and a small circuit breaker.  Pure state machines — no
   sleeping, no I/O — so tests can drive them with fake clocks and
   fixed seeds. *)

module Backoff = struct
  type t = {
    base_s : float;
    cap_s : float;
    rng : Random.State.t;
    mutable prev_s : float;
    mutable count : int;
    mutable total_s : float;
  }

  let create ?seed ?(base_s = 0.02) ?(cap_s = 2.0) () =
    let rng =
      match seed with
      | Some s -> Random.State.make [| s |]
      | None -> Random.State.make_self_init ()
    in
    { base_s; cap_s; rng; prev_s = base_s; count = 0; total_s = 0.0 }

  (* Decorrelated jitter: uniform in [base, 3 * previous], capped.
     Exponential growth in expectation, but two clients that failed at
     the same instant immediately desynchronize. *)
  let next t =
    let hi = Float.min t.cap_s (3.0 *. t.prev_s) in
    let lo = Float.min t.base_s hi in
    let d = lo +. Random.State.float t.rng (Float.max 0.0 (hi -. lo)) in
    t.prev_s <- Float.max d t.base_s;
    t.count <- t.count + 1;
    t.total_s <- t.total_s +. d;
    d

  let reset t = t.prev_s <- t.base_s
  let count t = t.count
  let total_s t = t.total_s
end

module Breaker = struct
  type state = Closed | Open | Half_open

  type t = {
    failure_threshold : int;
    cooldown_s : float;
    now : unit -> float;
    mutable state : state;
    mutable failures : int;  (* consecutive, while Closed *)
    mutable opened_at : float;
    mutable trips : int;
  }

  let create ?(failure_threshold = 5) ?(cooldown_s = 1.0)
      ?(now = Unix.gettimeofday) () =
    {
      failure_threshold = max 1 failure_threshold;
      cooldown_s;
      now;
      state = Closed;
      failures = 0;
      opened_at = 0.0;
      trips = 0;
    }

  let state t = t.state

  let trip t =
    t.state <- Open;
    t.opened_at <- t.now ();
    t.trips <- t.trips + 1

  let allow t =
    match t.state with
    | Closed | Half_open -> true
    | Open ->
        if t.now () -. t.opened_at >= t.cooldown_s then begin
          (* one probe is admitted; its outcome decides *)
          t.state <- Half_open;
          true
        end
        else false

  let success t =
    t.failures <- 0;
    t.state <- Closed

  let failure t =
    match t.state with
    | Half_open -> trip t  (* the probe failed: back to Open, new cooldown *)
    | Open -> ()
    | Closed ->
        t.failures <- t.failures + 1;
        if t.failures >= t.failure_threshold then begin
          t.failures <- 0;
          trip t
        end

  let trips t = t.trips
end
