(** Canonical report renderings shared by the CLI and the daemon, so
    service replies are byte-identical to direct subcommand output and
    safe to replay from the result store.

    Every function returns the rendered report together with its exit
    code in the uniform taxonomy: 0 verified / claim holds, 1 refuted
    / race, 2 inconclusive, 3 error.  The text is a pure function of
    the verdict — no stats counters, timings, pool widths or file
    paths (the cache-soundness requirement of docs/SERVICE.md). *)

val exit_ok : int
val exit_fail : int
val exit_inconclusive : int
val exit_error : int

val litmus : Litmus.t -> Litmus.result -> string * int
(** Exactly the per-test block `psopt litmus` prints: the verdict
    line, then one indented line per observed outcome. *)

val races : Race.report -> string * int
(** Exactly the three-scan report `psopt races` prints. *)

val explore : Explore.Enum.discipline -> Explore.Enum.outcome -> string * int
(** Discipline, completeness and the behaviour set ({e without} the
    config and stats lines the CLI adds — those are not pure functions
    of the result). *)

val verify : pass:string -> Sim.Verif.verdict -> string * int
(** The Fig. 6 pipeline verdict, identified by pass name only. *)
