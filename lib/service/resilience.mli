(** Client-side fault-tolerance primitives (docs/SERVICE.md's fault
    model): a jittered exponential backoff schedule and a small
    circuit breaker.  Both are deterministic under an injected seed or
    clock, so the chaos suite and the unit tests can replay exact
    schedules; neither sleeps on its own — callers decide what to do
    with the returned delay. *)

(** Exponential backoff with decorrelated jitter: each delay is drawn
    uniformly from [[base, 3 * previous]], capped at [cap] — the
    schedule grows exponentially in expectation but never
    synchronizes a fleet of retrying clients into lockstep bursts. *)
module Backoff : sig
  type t

  val create : ?seed:int -> ?base_s:float -> ?cap_s:float -> unit -> t
  (** Defaults: [base_s = 0.02], [cap_s = 2.0].  [seed] fixes the
      jitter stream (tests); omitted, it is drawn from
      [Random.self_init]-style entropy. *)

  val next : t -> float
  (** The next delay to sleep, in seconds.  Monotone state: calling
      advances the schedule. *)

  val reset : t -> unit
  (** Back to the base delay (call after a success). *)

  val count : t -> int
  (** Delays handed out since creation (not reset by {!reset}). *)

  val total_s : t -> float
  (** Sum of all delays handed out since creation. *)
end

(** A three-state circuit breaker.  [Closed] admits calls and counts
    consecutive failures; [failure_threshold] consecutive failures
    trip it [Open], which fails fast until [cooldown_s] has elapsed;
    the first probe after cooldown runs [Half_open] — one success
    closes the breaker, one failure re-opens it (and restarts the
    cooldown). *)
module Breaker : sig
  type t

  type state = Closed | Open | Half_open

  val create :
    ?failure_threshold:int ->
    ?cooldown_s:float ->
    ?now:(unit -> float) ->
    unit ->
    t
  (** Defaults: [failure_threshold = 5], [cooldown_s = 1.0].  [now] is
      the clock (seconds; injectable for tests — defaults to
      [Unix.gettimeofday]). *)

  val state : t -> state

  val allow : t -> bool
  (** Whether a call may proceed.  [Open] past its cooldown moves to
      [Half_open] and admits exactly one probe; [Open] within the
      cooldown returns [false]. *)

  val success : t -> unit
  (** Report a call outcome.  Resets the failure count and closes a
      half-open breaker. *)

  val failure : t -> unit
  (** Counts toward the threshold; trips or re-opens the breaker. *)

  val trips : t -> int
  (** Times the breaker has transitioned to [Open] since creation. *)
end
