type sample = { ts_ns : int; values : (string * float) list }

type t = {
  capacity : int;
  interval_s : float;
  families : string list;
  buf : sample option array;
  mutable total : int;
  m : Mutex.t;
}

let create ?(capacity = 120) ?(families = []) ~interval_s () =
  if capacity <= 0 then invalid_arg "Series.create: capacity must be positive";
  {
    capacity;
    interval_s;
    families;
    buf = Array.make capacity None;
    total = 0;
    m = Mutex.create ();
  }

let interval_s t = t.interval_s
let capacity t = t.capacity

let keep t k =
  t.families = []
  || List.exists (fun p -> String.starts_with ~prefix:p k) t.families

let push t ?ts_ns values =
  let ts_ns = match ts_ns with Some t -> t | None -> Clock.now_ns () in
  let values = List.filter (fun (k, _) -> keep t k) values in
  Mutex.lock t.m;
  t.buf.(t.total mod t.capacity) <- Some { ts_ns; values };
  t.total <- t.total + 1;
  Mutex.unlock t.m

let sample t = push t (Metrics.snapshot ())

let length t =
  Mutex.lock t.m;
  let n = min t.total t.capacity in
  Mutex.unlock t.m;
  n

let total t =
  Mutex.lock t.m;
  let n = t.total in
  Mutex.unlock t.m;
  n

let samples t =
  Mutex.lock t.m;
  let n = min t.total t.capacity in
  (* oldest surviving sample first: once wrapped, the slot after the
     write cursor holds it *)
  let first = if t.total <= t.capacity then 0 else t.total mod t.capacity in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match t.buf.((first + i) mod t.capacity) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  Mutex.unlock t.m;
  !out

let last t =
  Mutex.lock t.m;
  let r =
    if t.total = 0 then None else t.buf.((t.total - 1) mod t.capacity)
  in
  Mutex.unlock t.m;
  r

let values t key =
  List.filter_map (fun s -> List.assoc_opt key s.values) (samples t)

let loop ?(stop = fun () -> false) t =
  while not (stop ()) do
    sample t;
    Unix.sleepf t.interval_s
  done
