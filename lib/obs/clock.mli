(** The process-wide time source for all telemetry.

    OCaml's stdlib exposes no monotonic counter without C stubs, so
    this is [Unix.gettimeofday] scaled to integer nanoseconds.  Every
    consumer of wall-clock time in the tree — span begin/end stamps,
    [Explore.Stats.elapsed_ms], exploration deadlines, bench timings —
    reads this one source, so durations computed across subsystems are
    mutually comparable.  Resolution is sub-microsecond (the float64
    mantissa quantizes current epochs to ~0.25 µs), which is finer
    than the microsecond grid of the Chrome trace_event format the
    spans are exported in. *)

val now_ns : unit -> int
(** Nanoseconds since the Unix epoch.  Fits a 63-bit [int] until the
    year 2262. *)

val ms_of_ns : int -> int
(** Truncating conversion helper. *)

val us_of_ns : int -> float
(** Exact conversion to the microsecond floats of trace_event. *)
