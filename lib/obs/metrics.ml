type kind = Counter | Gauge

type counter = {
  c_name : string;
  c_labels : (string * string) list;
  c_help : string;
  c_kind : kind;
  cell : int Atomic.t;
}

(* Power-of-two bucket bounds: 2^10 ns (~1 us) .. 2^34 ns (~17 s).
   [buckets.(i)] counts observations v with bound(i-1) < v <= bound(i);
   the final slot is the +Inf overflow bucket. *)
let min_shift = 10
let max_shift = 34
let nbounds = max_shift - min_shift + 1
let bound i = 1 lsl (min_shift + i)

type histogram = {
  h_name : string;
  h_help : string;
  h_buckets : int Atomic.t array; (* nbounds + 1, last = +Inf *)
  h_sum : int Atomic.t;
}

type metric = M_counter of counter | M_histogram of histogram

let registry : metric list ref = ref []
let lock = Mutex.create ()

let metric_name = function
  | M_counter c -> c.c_name
  | M_histogram h -> h.h_name

let make_counter kind ?(help = "") ?(labels = []) name =
  Mutex.lock lock;
  let existing =
    List.find_opt
      (function
        | M_counter c -> c.c_name = name && c.c_labels = labels
        | M_histogram _ -> false)
      !registry
  in
  let c =
    match existing with
    | Some (M_counter c) -> c
    | _ ->
        let c =
          { c_name = name; c_labels = labels; c_help = help; c_kind = kind;
            cell = Atomic.make 0 }
        in
        registry := M_counter c :: !registry;
        c
  in
  Mutex.unlock lock;
  c

let counter ?help ?labels name = make_counter Counter ?help ?labels name
let gauge ?help ?labels name = make_counter Gauge ?help ?labels name
let incr c = ignore (Atomic.fetch_and_add c.cell 1)
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let set c n = Atomic.set c.cell n
let value c = Atomic.get c.cell

let histogram ?(help = "") name =
  Mutex.lock lock;
  let existing =
    List.find_opt
      (function
        | M_histogram h -> h.h_name = name
        | M_counter _ -> false)
      !registry
  in
  let h =
    match existing with
    | Some (M_histogram h) -> h
    | _ ->
        let h =
          { h_name = name; h_help = help;
            h_buckets = Array.init (nbounds + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0 }
        in
        registry := M_histogram h :: !registry;
        h
  in
  Mutex.unlock lock;
  h

let find_histogram name =
  Mutex.lock lock;
  let r =
    List.find_map
      (function
        | M_histogram h when h.h_name = name -> Some h
        | _ -> None)
      !registry
  in
  Mutex.unlock lock;
  r

let bucket_index v =
  let rec go i = if i >= nbounds then nbounds else if v <= bound i then i else go (i + 1) in
  go 0

let observe_ns h v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_index v) 1);
  ignore (Atomic.fetch_and_add h.h_sum v)

let time h f =
  let t0 = Clock.now_ns () in
  match f () with
  | v ->
      observe_ns h (Clock.now_ns () - t0);
      v
  | exception e ->
      observe_ns h (Clock.now_ns () - t0);
      raise e

type summary = {
  count : int;
  sum_ns : int;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  p999_ns : float;
}

let histogram_count h =
  Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.h_buckets

let quantile counts total q =
  if total = 0 then 0.
  else begin
    let target = Float.max 1. (Float.round (q *. float_of_int total)) in
    let cum = ref 0 and i = ref 0 and result = ref 0. and found = ref false in
    while (not !found) && !i <= nbounds do
      let n = counts.(!i) in
      if n > 0 && float_of_int (!cum + n) >= target then begin
        let lo = if !i = 0 then 0. else float_of_int (bound (!i - 1)) in
        let hi =
          if !i >= nbounds then 2. *. float_of_int (bound (nbounds - 1))
          else float_of_int (bound !i)
        in
        let frac = (target -. float_of_int !cum) /. float_of_int n in
        result := lo +. ((hi -. lo) *. frac);
        found := true
      end;
      cum := !cum + n;
      i := !i + 1
    done;
    !result
  end

let summary h =
  let counts = Array.map Atomic.get h.h_buckets in
  let total = Array.fold_left ( + ) 0 counts in
  {
    count = total;
    sum_ns = Atomic.get h.h_sum;
    p50_ns = quantile counts total 0.5;
    p90_ns = quantile counts total 0.9;
    p99_ns = quantile counts total 0.99;
    p999_ns = quantile counts total 0.999;
  }

(* ---- Registry snapshot ----

   A flat numeric view for the Series sampler: counters and gauges
   under their rendered name (labels included), histograms as their
   [_count]/[_sum] series.  Quantiles are deliberately not
   materialized here — a sampler wants raw monotone series it can
   delta; quantiles over a window come from
   [quantile_from_cumulative] on scraped buckets. *)

let snapshot_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let snapshot () =
  let metrics =
    Mutex.lock lock;
    let m = !registry in
    Mutex.unlock lock;
    List.rev m
  in
  List.concat_map
    (function
      | M_counter c ->
          [ (c.c_name ^ snapshot_labels c.c_labels, float_of_int (Atomic.get c.cell)) ]
      | M_histogram h ->
          [
            (h.h_name ^ "_count", float_of_int (histogram_count h));
            (h.h_name ^ "_sum", float_of_int (Atomic.get h.h_sum));
          ])
    metrics

(* ---- Prometheus text rendering ---- *)

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label v)) labels)
      ^ "}"

let render () =
  let metrics =
    Mutex.lock lock;
    let m = !registry in
    Mutex.unlock lock;
    List.stable_sort (fun a b -> compare (metric_name a) (metric_name b)) (List.rev m)
  in
  let b = Buffer.create 1024 in
  let last_family = ref "" in
  let header name help ty =
    if name <> !last_family then begin
      if help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name ty);
      last_family := name
    end
  in
  List.iter
    (function
      | M_counter c ->
          header c.c_name c.c_help
            (match c.c_kind with Counter -> "counter" | Gauge -> "gauge");
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" c.c_name (render_labels c.c_labels)
               (Atomic.get c.cell))
      | M_histogram h ->
          header h.h_name h.h_help "histogram";
          let cum = ref 0 in
          for i = 0 to nbounds - 1 do
            cum := !cum + Atomic.get h.h_buckets.(i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" h.h_name (bound i) !cum)
          done;
          cum := !cum + Atomic.get h.h_buckets.(nbounds);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" h.h_name !cum);
          Buffer.add_string b
            (Printf.sprintf "%s_sum %d\n" h.h_name (Atomic.get h.h_sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" h.h_name !cum))
    metrics;
  Buffer.contents b

(* ---- Parsing the exposition format back ----

   `psopt top` watches a *remote* daemon through the Metrics RPC, which
   ships the text above — so the registry must be able to read its own
   output.  The parser is structural (quoted label values may contain
   spaces and escapes), tolerant of comment lines, and drops lines it
   cannot read rather than failing the whole scrape. *)

type exposed = {
  ex_name : string;
  ex_labels : (string * string) list;
  ex_value : float;
}

let parse_line line =
  let n = String.length line in
  let is_name_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do i := !i + 1 done;
  if !i = 0 then None
  else begin
    let name = String.sub line 0 !i in
    let labels = ref [] in
    let ok = ref true in
    (if !i < n && line.[!i] = '{' then begin
       i := !i + 1;
       let rec parse_pairs () =
         if !i < n && line.[!i] = '}' then i := !i + 1
         else begin
           let k0 = !i in
           while !i < n && is_name_char line.[!i] do i := !i + 1 done;
           let k = String.sub line k0 (!i - k0) in
           if !i + 1 < n && line.[!i] = '=' && line.[!i + 1] = '"' then begin
             i := !i + 2;
             let b = Buffer.create 8 in
             let rec scan () =
               if !i >= n then ok := false
               else
                 match line.[!i] with
                 | '"' -> i := !i + 1
                 | '\\' when !i + 1 < n ->
                     (match line.[!i + 1] with
                     | 'n' -> Buffer.add_char b '\n'
                     | c -> Buffer.add_char b c);
                     i := !i + 2;
                     scan ()
                 | c ->
                     Buffer.add_char b c;
                     i := !i + 1;
                     scan ()
             in
             scan ();
             if !ok then begin
               labels := (k, Buffer.contents b) :: !labels;
               if !i < n && line.[!i] = ',' then begin
                 i := !i + 1;
                 parse_pairs ()
               end
               else if !i < n && line.[!i] = '}' then i := !i + 1
               else ok := false
             end
           end
           else ok := false
         end
       in
       parse_pairs ()
     end);
    if not !ok then None
    else begin
      let rest = String.trim (String.sub line !i (n - !i)) in
      let v =
        match rest with
        | "+Inf" -> Some infinity
        | "-Inf" -> Some neg_infinity
        | "NaN" -> Some nan
        | s -> float_of_string_opt s
      in
      match v with
      | Some v -> Some { ex_name = name; ex_labels = List.rev !labels; ex_value = v }
      | None -> None
    end
  end

let parse_exposition text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else parse_line line)

(* Windowed quantiles from scraped cumulative buckets: the delta of two
   scrapes' [_bucket{le=...}] series is again cumulative in [le], so
   the same interpolation applies.  [buckets] must be (le bound,
   cumulative count) pairs sorted by bound, +Inf last. *)
let quantile_from_cumulative buckets ~q =
  match List.rev buckets with
  | [] -> 0.
  | (_, total) :: _ ->
      if total <= 0. then 0.
      else begin
        let target = Float.max 1. (Float.round (q *. total)) in
        let rec go prev_le prev_cum = function
          | [] -> 0.
          | (le, cum) :: rest ->
              if cum >= target && cum > prev_cum then begin
                let hi =
                  if Float.is_finite le then le
                  else if prev_le > 0. then 2. *. prev_le
                  else 1.
                in
                let frac = (target -. prev_cum) /. (cum -. prev_cum) in
                prev_le +. ((hi -. prev_le) *. frac)
              end
              else go le cum rest
        in
        go 0. 0. buckets
      end
