let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let ms_of_ns ns = ns / 1_000_000
let us_of_ns ns = float_of_int ns /. 1e3
