(** Structured, levelled stderr logging.

    One line per event: a level tag, a source component, a free-text
    message, then sexp-escaped [key=value] fields, e.g.

    {v psopt[warn] stress: case quarantined seed=41 file="q/case 41.sexp" v}

    Values are emitted bare when they are plain atoms and quoted with
    s-expression escapes otherwise, so a line always splits back into
    tokens on whitespace.  The level defaults to [Info] and is
    initialised from the [PSOPT_LOG] environment variable
    ([debug]/[info]/[warn]/[error]/[quiet]); [--log-level] on the CLI
    overrides it.  Writes are serialized under a mutex so concurrent
    domains and server threads never interleave half-lines. *)

type level = Debug | Info | Warn | Error | Quiet

val level_of_string : string -> level option
val level_name : level -> string

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** [enabled l] is true when a message at severity [l] would be
    emitted.  [enabled Quiet] is always false: [Quiet] is a threshold,
    not a message severity. *)

val line : level -> src:string -> string -> (string * string) list -> string
(** The formatted line, without the trailing newline.  Pure; exposed
    for tests. *)

val msg : level -> src:string -> ?fields:(string * string) list -> string -> unit

val debug : src:string -> ?fields:(string * string) list -> string -> unit
val info : src:string -> ?fields:(string * string) list -> string -> unit
val warn : src:string -> ?fields:(string * string) list -> string -> unit
val err : src:string -> ?fields:(string * string) list -> string -> unit

val set_sink : (string -> unit) option -> unit
(** Redirect emitted lines (tests).  [None] restores stderr. *)
