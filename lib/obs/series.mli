(** A bounded ring of timestamped registry snapshots — the memory
    behind sparklines.

    A series holds the last [capacity] samples of selected metric
    families; older samples are overwritten in ring order, so memory is
    fixed no matter how long the process runs.  Two feeding modes share
    the ring: {!sample} snapshots the local {!Metrics} registry (a
    daemon observing itself), while {!push} accepts externally-obtained
    values (how [psopt top] keeps history of a remote daemon's scraped
    and derived figures).  All operations are thread-safe. *)

type sample = { ts_ns : int; values : (string * float) list }

type t

val create : ?capacity:int -> ?families:string list -> interval_s:float -> unit -> t
(** [create ~interval_s ()] makes an empty series.  [capacity]
    (default 120) bounds retained samples; [families] is a list of
    name prefixes to retain per sample ([[]] = keep everything) —
    filtering happens at insert, so an unselective registry does not
    bloat the ring.  Raises [Invalid_argument] on [capacity <= 0]. *)

val sample : t -> unit
(** Append one snapshot of the local {!Metrics} registry, stamped with
    {!Clock.now_ns}. *)

val push : t -> ?ts_ns:int -> (string * float) list -> unit
(** Append externally-obtained values (same family filter applies). *)

val loop : ?stop:(unit -> bool) -> t -> unit
(** Blocking sampling loop: {!sample} every [interval_s] until [stop]
    returns true (checked once per tick).  Run it on a thread the
    caller owns; the series itself spawns none. *)

val samples : t -> sample list
(** Retained samples, oldest first (at most [capacity]). *)

val last : t -> sample option

val values : t -> string -> float list
(** [values t key] projects one family's retained history, oldest
    first; samples missing the key are skipped. *)

val length : t -> int
(** Retained sample count ([<= capacity]). *)

val total : t -> int
(** Samples ever appended, including overwritten ones. *)

val capacity : t -> int
val interval_s : t -> float
