type level = Debug | Info | Warn | Error | Quiet

let severity = function
  | Debug -> 0
  | Info -> 1
  | Warn -> 2
  | Error -> 3
  | Quiet -> 4

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Quiet -> "quiet"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" | "err" -> Some Error
  | "quiet" | "none" | "off" -> Some Quiet
  | _ -> None

let initial =
  match Sys.getenv_opt "PSOPT_LOG" with
  | None -> Info
  | Some s -> ( match level_of_string s with Some l -> l | None -> Info)

let current = Atomic.make initial
let set_level l = Atomic.set current l
let level () = Atomic.get current

let enabled l =
  l <> Quiet && severity l >= severity (Atomic.get current)

(* An atom that survives whitespace tokenization unquoted: the same
   class [Service.Proto] treats as bare. *)
let is_bare s =
  s <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
         | '-' | '_' | '.' | '/' | ':' | '+' | ',' | '%' | '@' -> true
         | _ -> false)
       s

let escape_value s =
  if is_bare s then s
  else begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 32 ->
            Buffer.add_string b (Printf.sprintf "\\%03d" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let line l ~src text fields =
  let b = Buffer.create 96 in
  Buffer.add_string b "psopt[";
  Buffer.add_string b (level_name l);
  Buffer.add_string b "] ";
  Buffer.add_string b src;
  Buffer.add_string b ": ";
  Buffer.add_string b text;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b (escape_value v))
    fields;
  Buffer.contents b

let mutex = Mutex.create ()
let sink : (string -> unit) option ref = ref None
let set_sink s = sink := s

let emit s =
  Mutex.lock mutex;
  (match !sink with
  | Some f -> f s
  | None ->
      prerr_string s;
      prerr_newline ());
  Mutex.unlock mutex

let msg l ~src ?(fields = []) text = if enabled l then emit (line l ~src text fields)
let debug ~src ?fields text = msg Debug ~src ?fields text
let info ~src ?fields text = msg Info ~src ?fields text
let warn ~src ?fields text = msg Warn ~src ?fields text
let err ~src ?fields text = msg Error ~src ?fields text
