type event = { name : string; cat : string; ts_ns : int; dur_ns : int; tid : int }

let enabled = Atomic.make false
let on () = Atomic.get enabled

(* Per-domain buffers.  Each domain's first recorded span allocates a
   buffer through Domain.DLS and registers it in [all] under [lock];
   afterwards the recording path touches only domain-local state.  A
   cap bounds memory on runaway traces; overflow is counted, not
   silently dropped. *)
let max_events_per_domain = 1 lsl 18

type buf = {
  mutable evs : event list;
  mutable n : int;
  mutable dropped : int;
  (* Cleared buffers must not resurrect spans recorded before the
     clear; the generation stamp invalidates stale buffers instead of
     racing domains that are mid-record. *)
  mutable gen : int;
  dom : int;
}

let all : buf list ref = ref []
let lock = Mutex.create ()
let generation = Atomic.make 0

let key =
  Domain.DLS.new_key (fun () ->
    let b =
      { evs = []; n = 0; dropped = 0; gen = Atomic.get generation;
        dom = (Domain.self () :> int) }
    in
    Mutex.lock lock;
    all := b :: !all;
    Mutex.unlock lock;
    b)

let record name cat t0 t1 =
  let b = Domain.DLS.get key in
  let gen = Atomic.get generation in
  if b.gen <> gen then begin
    b.gen <- gen;
    b.evs <- [];
    b.n <- 0;
    b.dropped <- 0
  end;
  if b.n >= max_events_per_domain then b.dropped <- b.dropped + 1
  else begin
    b.evs <- { name; cat; ts_ns = t0; dur_ns = t1 - t0; tid = b.dom } :: b.evs;
    b.n <- b.n + 1
  end

let span ?(cat = "psopt") name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Clock.now_ns () in
    match f () with
    | v ->
        record name cat t0 (Clock.now_ns ());
        v
    | exception e ->
        record name cat t0 (Clock.now_ns ());
        raise e
  end

let start () =
  ignore (Atomic.fetch_and_add generation 1);
  Atomic.set enabled true

let stop () = Atomic.set enabled false

let live_bufs () =
  let gen = Atomic.get generation in
  Mutex.lock lock;
  let bufs = List.filter (fun b -> b.gen = gen) !all in
  Mutex.unlock lock;
  bufs

let events () =
  let evs = List.concat_map (fun b -> b.evs) (live_bufs ()) in
  List.stable_sort (fun a b -> compare (a.ts_ns, a.tid) (b.ts_ns, b.tid)) evs

let dropped () = List.fold_left (fun acc b -> acc + b.dropped) 0 (live_bufs ())

(* ---- Chrome trace_event JSON export ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_events oc evs =
  let t0 = match evs with [] -> 0 | e :: _ -> e.ts_ns in
  output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then output_char oc ',';
      Printf.fprintf oc
        "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}"
        (json_escape e.name) (json_escape e.cat)
        (Clock.us_of_ns (e.ts_ns - t0))
        (Clock.us_of_ns e.dur_ns) e.tid)
    evs;
  output_string oc "\n]}\n";
  List.length evs

let write_channel oc = write_events oc (events ())

let write_file path =
  match open_out path with
  | exception Sys_error m -> Error m
  | oc ->
      let n = write_channel oc in
      close_out oc;
      Ok n

(* ---- Minimal JSON reader, for trace shape validation ---- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad (Printf.sprintf "%s at byte %d" m !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input";
    let c = s.[!pos] in
    pos := !pos + 1;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        pos := !pos + 1;
        skip_ws ()
    | _ -> ()
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %C" c) in
  let literal lit v =
    String.iter (fun c -> expect c) lit;
    v
  in
  let parse_string () =
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              let hex = String.init 4 (fun _ -> next ()) in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* non-BMP fidelity is irrelevant for shape checking *)
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?'
          | _ -> fail "bad escape");
          go ())
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      pos := !pos + 1
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        pos := !pos + 1;
        skip_ws ();
        if peek () = Some '}' then (pos := !pos + 1; J_obj [])
        else begin
          let rec members acc =
            skip_ws ();
            expect '"';
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> J_obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        pos := !pos + 1;
        skip_ws ();
        if peek () = Some ']' then (pos := !pos + 1; J_arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elements (v :: acc)
            | ']' -> J_arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' ->
        pos := !pos + 1;
        J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

type shape = { n_events : int; names : string list }

let validate_string doc =
  match parse_json doc with
  | exception Bad m -> Error ("not valid JSON: " ^ m)
  | J_obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | None -> Error "missing traceEvents key"
      | Some (J_arr evs) -> (
          let check i = function
            | J_obj e ->
                let str k =
                  match List.assoc_opt k e with
                  | Some (J_str s) -> Ok s
                  | _ -> Error (Printf.sprintf "event %d: missing string %S" i k)
                in
                let num k =
                  match List.assoc_opt k e with
                  | Some (J_num _) -> Ok ()
                  | _ -> Error (Printf.sprintf "event %d: missing number %S" i k)
                in
                let ( let* ) = Result.bind in
                let* name = str "name" in
                let* ph = str "ph" in
                let* () =
                  if ph = "X" then Ok ()
                  else Error (Printf.sprintf "event %d: ph=%S, expected \"X\"" i ph)
                in
                let* () = num "ts" in
                let* () = num "dur" in
                let* () = num "pid" in
                let* () = num "tid" in
                Ok name
            | _ -> Error (Printf.sprintf "event %d: not an object" i)
          in
          let rec go i names = function
            | [] -> Ok (List.rev names)
            | e :: rest -> (
                match check i e with
                | Ok name -> go (i + 1) (name :: names) rest
                | Error _ as e -> e)
          in
          match go 0 [] evs with
          | Error m -> Error m
          | Ok names ->
              Ok
                {
                  n_events = List.length names;
                  names = List.sort_uniq compare names;
                })
      | Some _ -> Error "traceEvents is not an array")
  | _ -> Error "top level is not an object"

let validate_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | doc -> validate_string doc
