type event = {
  name : string;
  cat : string;
  ts_ns : int;
  dur_ns : int;
  tid : int;
  args : (string * string) list;
}

let enabled = Atomic.make false
let on () = Atomic.get enabled

(* ---- Trace contexts ----

   A context names one logical request: [trace_id] groups every span
   the request touched — across retries, connections and processes —
   and [span_id] names the request's root span on the side that minted
   it.  The context travels over the wire (Service.Proto's optional
   trace field) so daemon-side spans carry the caller's ids; the merge
   tool then stitches client- and server-side traces into one timeline
   per request. *)

type ctx = { trace_id : string; span_id : string }

(* Ids are minted from a process-global PRNG behind a mutex: minting
   happens once per logical request, not per span, so contention is
   irrelevant next to a connect round trip. *)
let id_state =
  lazy
    (Random.State.make
       [|
         int_of_float (Unix.gettimeofday () *. 1e6);
         Unix.getpid ();
         0x7ace1d;
       |])

let id_m = Mutex.create ()

let genid () =
  Mutex.lock id_m;
  let st = Lazy.force id_state in
  let a = Random.State.bits st and b = Random.State.bits st in
  Mutex.unlock id_m;
  Printf.sprintf "%08x%08x" (a land 0xffffffff) (b land 0xffffffff)

let new_ctx () = { trace_id = genid (); span_id = genid () }

(* The current context is per *thread*, not per domain: the daemon
   serves connections on sys-threads that all share domain 0, and two
   concurrent requests must not stamp each other's spans.  The table
   is only consulted while tracing is on, so the disabled hot path
   still costs one [Atomic.get]. *)
let ctxs : (int, ctx) Hashtbl.t = Hashtbl.create 64
let ctx_m = Mutex.create ()

let current () =
  if not (Atomic.get enabled) then None
  else begin
    Mutex.lock ctx_m;
    let r = Hashtbl.find_opt ctxs (Thread.id (Thread.self ())) in
    Mutex.unlock ctx_m;
    r
  end

let with_ctx c f =
  if not (Atomic.get enabled) then f ()
  else begin
    let id = Thread.id (Thread.self ()) in
    Mutex.lock ctx_m;
    let prev = Hashtbl.find_opt ctxs id in
    (match c with
    | Some c -> Hashtbl.replace ctxs id c
    | None -> Hashtbl.remove ctxs id);
    Mutex.unlock ctx_m;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock ctx_m;
        (match prev with
        | Some p -> Hashtbl.replace ctxs id p
        | None -> Hashtbl.remove ctxs id);
        Mutex.unlock ctx_m)
      f
  end

(* Per-domain buffers.  Each domain's first recorded span allocates a
   buffer through Domain.DLS and registers it in [all] under [lock];
   afterwards the recording path touches only domain-local state.  A
   cap bounds memory on runaway traces; overflow is counted, not
   silently dropped. *)
let max_events_per_domain = 1 lsl 18

type buf = {
  mutable evs : event list;
  mutable n : int;
  mutable dropped : int;
  (* Cleared buffers must not resurrect spans recorded before the
     clear; the generation stamp invalidates stale buffers instead of
     racing domains that are mid-record. *)
  mutable gen : int;
  dom : int;
}

let all : buf list ref = ref []
let lock = Mutex.create ()
let generation = Atomic.make 0

(* Buffer overflow is visible in the scraped registry too, not only in
   the CLI's post-run report: a fleet daemon that is quietly losing
   spans must show it on `psopt metrics`. *)
let m_dropped =
  Metrics.counter ~help:"Spans discarded because a per-domain buffer hit its cap"
    "psopt_obs_spans_dropped_total"

let key =
  Domain.DLS.new_key (fun () ->
    let b =
      { evs = []; n = 0; dropped = 0; gen = Atomic.get generation;
        dom = (Domain.self () :> int) }
    in
    Mutex.lock lock;
    all := b :: !all;
    Mutex.unlock lock;
    b)

let record ?(args = []) name cat t0 t1 =
  let b = Domain.DLS.get key in
  let gen = Atomic.get generation in
  if b.gen <> gen then begin
    b.gen <- gen;
    b.evs <- [];
    b.n <- 0;
    b.dropped <- 0
  end;
  if b.n >= max_events_per_domain then begin
    b.dropped <- b.dropped + 1;
    Metrics.incr m_dropped
  end
  else begin
    let args =
      match current () with
      | Some c ->
          ("trace_id", c.trace_id) :: ("span_id", c.span_id) :: args
      | None -> args
    in
    b.evs <-
      { name; cat; ts_ns = t0; dur_ns = t1 - t0; tid = b.dom; args } :: b.evs;
    b.n <- b.n + 1
  end

let span ?(cat = "psopt") ?args name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Clock.now_ns () in
    match f () with
    | v ->
        record ?args name cat t0 (Clock.now_ns ());
        v
    | exception e ->
        record ?args name cat t0 (Clock.now_ns ());
        raise e
  end

(* An explicit span for intervals not shaped like a thunk — the
   admission gate's queue wait, a load generator's intended-start
   anchoring.  No-op while tracing is off, like [span]. *)
let add ?(cat = "psopt") ?args ~name ~ts_ns ~dur_ns () =
  if Atomic.get enabled then record ?args name cat ts_ns (ts_ns + dur_ns)

let start () =
  ignore (Atomic.fetch_and_add generation 1);
  Atomic.set enabled true

let stop () = Atomic.set enabled false

let live_bufs () =
  let gen = Atomic.get generation in
  Mutex.lock lock;
  let bufs = List.filter (fun b -> b.gen = gen) !all in
  Mutex.unlock lock;
  bufs

let events () =
  let evs = List.concat_map (fun b -> b.evs) (live_bufs ()) in
  List.stable_sort (fun a b -> compare (a.ts_ns, a.tid) (b.ts_ns, b.tid)) evs

let dropped () = List.fold_left (fun acc b -> acc + b.dropped) 0 (live_bufs ())

(* ---- Chrome trace_event JSON export ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Timestamps are normalized so the timeline starts at zero, but the
   subtracted base is preserved as a top-level [baseNs] field: that is
   what lets [merge] re-anchor traces from different processes onto
   one absolute clock ({!Clock.now_ns} is epoch-based on every side). *)
let write_event oc ~pid ~t0 e =
  Printf.fprintf oc
    "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d"
    (json_escape e.name) (json_escape e.cat)
    (Clock.us_of_ns (e.ts_ns - t0))
    (Clock.us_of_ns e.dur_ns) pid e.tid;
  if e.args <> [] then begin
    output_string oc ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then output_char oc ',';
        Printf.fprintf oc "\"%s\":\"%s\"" (json_escape k) (json_escape v))
      e.args;
    output_char oc '}'
  end;
  output_char oc '}'

let write_events oc evs =
  let t0 = match evs with [] -> 0 | e :: _ -> e.ts_ns in
  Printf.fprintf oc "{\"displayTimeUnit\":\"ms\",\"baseNs\":%d,\"traceEvents\":[" t0;
  List.iteri
    (fun i e ->
      if i > 0 then output_char oc ',';
      write_event oc ~pid:1 ~t0 e)
    evs;
  output_string oc "\n]}\n";
  List.length evs

let write_channel oc = write_events oc (events ())

let write_file path =
  match open_out path with
  | exception Sys_error m -> Error m
  | oc ->
      let n = write_channel oc in
      close_out oc;
      Ok n

(* ---- Minimal JSON reader, for trace shape validation ---- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad (Printf.sprintf "%s at byte %d" m !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input";
    let c = s.[!pos] in
    pos := !pos + 1;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        pos := !pos + 1;
        skip_ws ()
    | _ -> ()
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %C" c) in
  let literal lit v =
    String.iter (fun c -> expect c) lit;
    v
  in
  let parse_string () =
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              let hex = String.init 4 (fun _ -> next ()) in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* non-BMP fidelity is irrelevant for shape checking *)
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?'
          | _ -> fail "bad escape");
          go ())
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      pos := !pos + 1
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        pos := !pos + 1;
        skip_ws ();
        if peek () = Some '}' then (pos := !pos + 1; J_obj [])
        else begin
          let rec members acc =
            skip_ws ();
            expect '"';
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> J_obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        pos := !pos + 1;
        skip_ws ();
        if peek () = Some ']' then (pos := !pos + 1; J_arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elements (v :: acc)
            | ']' -> J_arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' ->
        pos := !pos + 1;
        J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

type shape = { n_events : int; names : string list }

let validate_string doc =
  match parse_json doc with
  | exception Bad m -> Error ("not valid JSON: " ^ m)
  | J_obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | None -> Error "missing traceEvents key"
      | Some (J_arr evs) -> (
          let check i = function
            | J_obj e ->
                let str k =
                  match List.assoc_opt k e with
                  | Some (J_str s) -> Ok s
                  | _ -> Error (Printf.sprintf "event %d: missing string %S" i k)
                in
                let num k =
                  match List.assoc_opt k e with
                  | Some (J_num _) -> Ok ()
                  | _ -> Error (Printf.sprintf "event %d: missing number %S" i k)
                in
                let ( let* ) = Result.bind in
                let* name = str "name" in
                let* ph = str "ph" in
                let* () =
                  if ph = "X" then Ok ()
                  else Error (Printf.sprintf "event %d: ph=%S, expected \"X\"" i ph)
                in
                let* () = num "ts" in
                let* () = num "dur" in
                let* () = num "pid" in
                let* () = num "tid" in
                Ok name
            | _ -> Error (Printf.sprintf "event %d: not an object" i)
          in
          let rec go i names = function
            | [] -> Ok (List.rev names)
            | e :: rest -> (
                match check i e with
                | Ok name -> go (i + 1) (name :: names) rest
                | Error _ as e -> e)
          in
          match go 0 [] evs with
          | Error m -> Error m
          | Ok names ->
              Ok
                {
                  n_events = List.length names;
                  names = List.sort_uniq compare names;
                })
      | Some _ -> Error "traceEvents is not an array")
  | _ -> Error "top level is not an object"

let validate_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | doc -> validate_string doc

(* ---- Merging traces from several processes ----

   Each input document carries [baseNs] — the absolute {!Clock.now_ns}
   stamp its normalized timestamps were measured from — so events from
   a client and a daemon rebase onto one shared clock.  Every input
   file becomes its own [pid] track group (file order), which is how
   Perfetto shows the processes side by side; spans of one request
   line up by their [trace_id] arg. *)

type merged_event = {
  m_name : string;
  m_cat : string;
  m_abs_ns : int;
  m_dur_ns : int;
  m_pid : int;
  m_tid : int;
  m_args : (string * string) list;
}

let events_of_doc ~pid doc =
  match parse_json doc with
  | exception Bad m -> Error ("not valid JSON: " ^ m)
  | J_obj fields -> (
      let base =
        match List.assoc_opt "baseNs" fields with
        | Some (J_num b) -> int_of_float b
        | _ -> 0
      in
      match List.assoc_opt "traceEvents" fields with
      | Some (J_arr evs) ->
          let ev i = function
            | J_obj e ->
                let str k d =
                  match List.assoc_opt k e with
                  | Some (J_str s) -> s
                  | _ -> d
                in
                let num k =
                  match List.assoc_opt k e with
                  | Some (J_num f) -> Ok f
                  | _ -> Error (Printf.sprintf "event %d: missing number %S" i k)
                in
                let ( let* ) = Result.bind in
                let* ts_us = num "ts" in
                let* dur_us = num "dur" in
                let tid =
                  match List.assoc_opt "tid" e with
                  | Some (J_num f) -> int_of_float f
                  | _ -> 0
                in
                let args =
                  match List.assoc_opt "args" e with
                  | Some (J_obj kvs) ->
                      List.filter_map
                        (fun (k, v) ->
                          match v with J_str s -> Some (k, s) | _ -> None)
                        kvs
                  | _ -> []
                in
                Ok
                  {
                    m_name = str "name" "?";
                    m_cat = str "cat" "";
                    m_abs_ns = base + int_of_float (ts_us *. 1e3);
                    m_dur_ns = int_of_float (dur_us *. 1e3);
                    m_pid = pid;
                    m_tid = tid;
                    m_args = args;
                  }
            | _ -> Error (Printf.sprintf "event %d: not an object" i)
          in
          let rec go i acc = function
            | [] -> Ok (List.rev acc)
            | e :: rest -> (
                match ev i e with
                | Ok m -> go (i + 1) (m :: acc) rest
                | Error _ as err -> err)
          in
          go 0 [] evs
      | _ -> Error "missing traceEvents array")
  | _ -> Error "top level is not an object"

let merge_files ~inputs ~output =
  let ( let* ) = Result.bind in
  let rec read pid acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | path :: rest -> (
        match In_channel.with_open_bin path In_channel.input_all with
        | exception Sys_error m -> Error m
        | doc -> (
            match events_of_doc ~pid doc with
            | Ok evs -> read (pid + 1) (evs :: acc) rest
            | Error m -> Error (path ^ ": " ^ m)))
  in
  let* evs = read 1 [] inputs in
  let evs =
    List.stable_sort (fun a b -> compare (a.m_abs_ns, a.m_pid) (b.m_abs_ns, b.m_pid)) evs
  in
  let t0 = match evs with [] -> 0 | e :: _ -> e.m_abs_ns in
  match open_out output with
  | exception Sys_error m -> Error m
  | oc ->
      Printf.fprintf oc
        "{\"displayTimeUnit\":\"ms\",\"baseNs\":%d,\"traceEvents\":[" t0;
      List.iteri
        (fun i e ->
          if i > 0 then output_char oc ',';
          write_event oc ~pid:e.m_pid ~t0
            {
              name = e.m_name;
              cat = e.m_cat;
              ts_ns = e.m_abs_ns;
              dur_ns = e.m_dur_ns;
              tid = e.m_tid;
              args = e.m_args;
            })
        evs;
      output_string oc "\n]}\n";
      close_out oc;
      Ok (List.length evs)
