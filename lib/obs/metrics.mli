(** A process-global metrics registry: named counters, gauges and
    log-bucketed latency histograms, rendered in the Prometheus text
    exposition format.

    Registration is idempotent: asking twice for the same
    [(name, labels)] pair returns the same instrument, so modules can
    declare their metrics at toplevel without coordinating.  All
    updates are single [Atomic.t] operations — safe from any domain or
    thread, cheap enough for hot paths.

    Naming scheme (documented in docs/OBSERVABILITY.md):
    [psopt_<subsystem>_<what>_<unit>], with [_total] for counters and
    [_ns] for nanosecond-valued histograms; label values distinguish
    members of one logical family (e.g. the exact cert partition
    [psopt_explore_cert_checks_total{outcome=...}]). *)

type counter
(** A monotonically increasing integer (or a settable gauge; the
    distinction is only in the rendered TYPE line). *)

type histogram
(** A histogram over nanosecond durations with power-of-two buckets
    from 2^10 ns (~1 µs) to 2^34 ns (~17 s) plus overflow. *)

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
val gauge : ?help:string -> ?labels:(string * string) list -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val set : counter -> int -> unit
val value : counter -> int

val histogram : ?help:string -> string -> histogram

val observe_ns : histogram -> int -> unit
(** Record one duration.  Negative observations are clamped to 0. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, observe its duration (also on exceptions). *)

type summary = {
  count : int;
  sum_ns : int;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  p999_ns : float;
}
(** Quantiles are interpolated within the matching bucket, so they are
    estimates with at most one-bucket (2x) error — adequate for the
    bench report. [count = 0] yields zero quantiles. *)

val summary : histogram -> summary
val histogram_count : histogram -> int

val find_histogram : string -> histogram option
(** Look an existing histogram up by family name (bench, tests). *)

val render : unit -> string
(** The whole registry in Prometheus text format: one [# HELP]/[# TYPE]
    header per family, cumulative [_bucket{le=...}] / [_sum] / [_count]
    series for histograms. *)

val snapshot : unit -> (string * float) list
(** A flat numeric view of the registry for the {!Series} sampler:
    counters and gauges under their rendered name (labels included),
    histograms as their [_count]/[_sum] series.  Registration order. *)

(** {2 Reading the exposition format back}

    [psopt top] watches a remote daemon through the Metrics RPC, which
    ships {!render}'s text — so the registry can also read its own
    output. *)

type exposed = {
  ex_name : string;
  ex_labels : (string * string) list;
  ex_value : float;  (** ["+Inf"]/["-Inf"]/["NaN"] parse to the floats *)
}

val parse_exposition : string -> exposed list
(** Parse Prometheus text into samples.  Comment and blank lines are
    skipped; malformed lines are dropped rather than failing the whole
    scrape. *)

val quantile_from_cumulative : (float * float) list -> q:float -> float
(** [quantile_from_cumulative buckets ~q] interpolates the [q]-quantile
    from (le bound, cumulative count) pairs sorted by bound, +Inf last
    — the shape of a scraped [_bucket] series, or of the delta between
    two scrapes (which is again cumulative in [le]).  Returns 0 for an
    empty window. *)
