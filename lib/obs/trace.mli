(** Low-overhead span tracing.

    Spans are recorded into per-domain buffers (no cross-domain
    contention on the hot path) and merged at export.  Tracing is off
    by default; when disabled, {!span} costs a single branch on an
    [Atomic.get] before running its thunk, so instrumented code can
    stay instrumented in production builds.

    Export is Chrome [trace_event] JSON (complete events, [ph:"X"],
    microsecond timestamps), the format Perfetto and chrome://tracing
    open directly: each domain appears as one track ([tid] = domain
    id), spans nest by time inclusion. *)

val on : unit -> bool
(** Whether tracing is currently enabled (one [Atomic.get]). *)

val start : unit -> unit
(** Clear all recorded spans and enable recording. *)

val stop : unit -> unit
(** Disable recording; recorded spans remain available for export. *)

(** {2 Trace contexts}

    A context names one logical request: [trace_id] groups every span
    the request touched — across retries, connections and processes —
    and [span_id] names the request's root span on the side that
    minted it.  The context travels over the wire in
    [Service.Proto]'s optional trace field, so daemon-side spans can
    be stamped with the caller's ids and {!merge_files} can stitch
    client- and server-side traces into one timeline per request. *)

type ctx = { trace_id : string; span_id : string }

val genid : unit -> string
(** A fresh 16-hex-digit random id (thread-safe). *)

val new_ctx : unit -> ctx

val current : unit -> ctx option
(** The calling thread's ambient context, if tracing is on and
    {!with_ctx} is active somewhere up the stack. *)

val with_ctx : ctx option -> (unit -> 'a) -> 'a
(** [with_ctx c f] runs [f] with the calling thread's ambient context
    set to [c] ([None] clears it); spans recorded inside are stamped
    with [trace_id]/[span_id] args.  The previous context is restored
    afterwards, also on exceptions.  When tracing is off this is just
    [f ()]. *)

val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when tracing is on, the call is
    recorded as a complete event (also when [f] raises).  [cat] is the
    trace_event category (defaults to ["psopt"]); [args] become the
    event's [args] object, after any ambient-context stamp. *)

val add :
  ?cat:string ->
  ?args:(string * string) list ->
  name:string ->
  ts_ns:int ->
  dur_ns:int ->
  unit ->
  unit
(** Record an explicit span for an interval not shaped like a thunk —
    the admission gate's queue wait, a load generator's intended-start
    anchoring.  No-op while tracing is off, like {!span}. *)

type event = {
  name : string;
  cat : string;
  ts_ns : int;  (** absolute begin stamp from {!Clock.now_ns} *)
  dur_ns : int;
  tid : int;  (** recording domain id *)
  args : (string * string) list;  (** trace_event [args], string-valued *)
}

val events : unit -> event list
(** All recorded spans, merged across domains, in begin-stamp order. *)

val dropped : unit -> int
(** Spans discarded because a per-domain buffer hit its cap.  Also
    exported continuously as the [psopt_obs_spans_dropped_total]
    metric (which, unlike this post-hoc count, survives {!start}'s
    clear and is visible on a scrape mid-run). *)

val write_channel : out_channel -> int
(** Emit the trace_event JSON document; returns the event count. *)

val write_events : out_channel -> event list -> int
(** The same emission for an explicit event list — how [psopt witness
    --trace] exports a synthetic per-thread timeline of a witness
    schedule (events need not come from {!span}).  The document's
    timestamps are normalized to the first event; the subtracted
    absolute base is preserved as a top-level [baseNs] field so
    {!merge_files} can re-anchor documents from different processes
    onto one clock. *)

val write_file : string -> (int, string) result

val merge_files : inputs:string list -> output:string -> (int, string) result
(** [merge_files ~inputs ~output] stitches several trace documents
    into one timeline: each input's normalized timestamps are restored
    to absolute time via its [baseNs] field, every input becomes its
    own [pid] track group (file order, 1-based), and the merged
    document is re-normalized to the earliest event overall.  Returns
    the merged event count.  Spans of one logical request line up
    across processes by their [trace_id] arg. *)

(** {2 Shape checking}

    A minimal self-contained JSON reader used by [psopt trace-check]
    and the CI smoke job to validate emitted traces without external
    tooling. *)

type shape = { n_events : int; names : string list (** distinct, sorted *) }

val validate_string : string -> (shape, string) result
(** Checks the document parses as JSON, has a [traceEvents] array, and
    that every event is an object with string [name]/[ph] ([ph] =
    ["X"]) and numeric [ts]/[dur]/[pid]/[tid]. *)

val validate_file : string -> (shape, string) result
