(** Low-overhead span tracing.

    Spans are recorded into per-domain buffers (no cross-domain
    contention on the hot path) and merged at export.  Tracing is off
    by default; when disabled, {!span} costs a single branch on an
    [Atomic.get] before running its thunk, so instrumented code can
    stay instrumented in production builds.

    Export is Chrome [trace_event] JSON (complete events, [ph:"X"],
    microsecond timestamps), the format Perfetto and chrome://tracing
    open directly: each domain appears as one track ([tid] = domain
    id), spans nest by time inclusion. *)

val on : unit -> bool
(** Whether tracing is currently enabled (one [Atomic.get]). *)

val start : unit -> unit
(** Clear all recorded spans and enable recording. *)

val stop : unit -> unit
(** Disable recording; recorded spans remain available for export. *)

val span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when tracing is on, the call is
    recorded as a complete event (also when [f] raises).  [cat] is the
    trace_event category (defaults to ["psopt"]). *)

type event = {
  name : string;
  cat : string;
  ts_ns : int;  (** absolute begin stamp from {!Clock.now_ns} *)
  dur_ns : int;
  tid : int;  (** recording domain id *)
}

val events : unit -> event list
(** All recorded spans, merged across domains, in begin-stamp order. *)

val dropped : unit -> int
(** Spans discarded because a per-domain buffer hit its cap. *)

val write_channel : out_channel -> int
(** Emit the trace_event JSON document; returns the event count. *)

val write_events : out_channel -> event list -> int
(** The same emission for an explicit event list — how [psopt witness
    --trace] exports a synthetic per-thread timeline of a witness
    schedule (events need not come from {!span}). *)

val write_file : string -> (int, string) result

(** {2 Shape checking}

    A minimal self-contained JSON reader used by [psopt trace-check]
    and the CI smoke job to validate emitted traces without external
    tooling. *)

type shape = { n_events : int; names : string list (** distinct, sorted *) }

val validate_string : string -> (shape, string) result
(** Checks the document parses as JSON, has a [traceEvents] array, and
    that every event is an object with string [name]/[ph] ([ph] =
    ["X"]) and numeric [ts]/[dur]/[pid]/[tid]. *)

val validate_file : string -> (shape, string) result
