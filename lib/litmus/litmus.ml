open Lang.Modes

type t = {
  name : string;
  descr : string;
  prog : Lang.Ast.program;
  expected : Lang.Ast.value list list;
  forbidden : Lang.Ast.value list list;
  needs_promises : bool;
}

(* All [expected]/[forbidden] entries are sorted output multisets;
   tests compare them against the sorted outputs of completed traces
   (threads' prints interleave, so the order across threads is not
   meaningful). *)

let b = Lang.Build.blk
let p = Lang.Build.proc

open Lang.Build

let sb =
  {
    name = "sb";
    descr = "Store buffering (Sec. 2.1): r1 = r2 = 0 is allowed in PS2.1";
    prog =
      program ~atomics:[ "x"; "y" ]
        [
          p "t1"
            [
              b "L0"
                [ store "x" ~mode:WRlx (i 1); load "r1" "y" ~mode:Rlx;
                  print (r "r1") ]
                ret;
            ];
          p "t2"
            [
              b "L0"
                [ store "y" ~mode:WRlx (i 1); load "r2" "x" ~mode:Rlx;
                  print (r "r2") ]
                ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ];
    forbidden = [];
    needs_promises = false;
  }

let lb =
  {
    name = "lb";
    descr = "Load buffering (Sec. 2.1): r1 = r2 = 1 via a promise";
    prog =
      program ~atomics:[ "x"; "y" ]
        [
          p "t1"
            [
              b "L0"
                [ load "r1" "x" ~mode:Rlx; store "y" ~mode:WRlx (i 1);
                  print (r "r1") ]
                ret;
            ];
          p "t2"
            [
              b "L0"
                [ load "r2" "y" ~mode:Rlx; store "x" ~mode:WRlx (r "r2");
                  print (r "r2") ]
                ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ];
    forbidden = [];
    needs_promises = true;
  }

let lb_oota =
  {
    name = "lb_oota";
    descr =
      "Load buffering with dependency (Sec. 2.1): out-of-thin-air 1/1 is \
       forbidden by promise certification";
    prog =
      program ~atomics:[ "x"; "y" ]
        [
          p "t1"
            [
              b "L0"
                [ load "r1" "x" ~mode:Rlx; store "y" ~mode:WRlx (r "r1");
                  print (r "r1") ]
                ret;
            ];
          p "t2"
            [
              b "L0"
                [ load "r2" "y" ~mode:Rlx; store "x" ~mode:WRlx (r "r2");
                  print (r "r2") ]
                ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ 0; 0 ] ];
    forbidden = [ [ 1; 1 ]; [ 0; 1 ] ];
    needs_promises = false;
  }

let cas_exclusive =
  {
    name = "cas_exclusive";
    descr =
      "Two concurrent CAS reading the same write (Sec. 3): timestamp \
       interval adjacency lets at most one succeed";
    prog =
      program ~atomics:[ "x" ]
        [
          p "t1"
            [
              b "L0"
                [
                  cas "r1" "x" ~expect:(i 0) ~write:(i 1) ~rmode:Rlx
                    ~wmode:WRlx;
                  print (r "r1");
                ]
                ret;
            ];
          p "t2"
            [
              b "L0"
                [
                  cas "r2" "x" ~expect:(i 0) ~write:(i 1) ~rmode:Rlx
                    ~wmode:WRlx;
                  print (r "r2");
                ]
                ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ 0; 1 ] ];
    forbidden = [ [ 1; 1 ]; [ 0; 0 ] ];
    needs_promises = false;
  }

let mp body_flag_w body_flag_r name descr expected forbidden =
  {
    name;
    descr;
    prog =
      program ~atomics:[ "x" ]
        [
          p "t1"
            [
              b "L0"
                [ store "y" ~mode:WNa (i 42); store "x" ~mode:body_flag_w (i 1) ]
                ret;
            ];
          p "t2"
            [
              b "L0"
                [ load "r1" "x" ~mode:body_flag_r ]
                (be (r "r1" == i 1) "L1" "L2");
              b "L1" [ load "r2" "y" ~mode:Na; print (r "r2") ] ret;
              b "L2" [ print (i (-1)) ] ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected;
    forbidden;
    needs_promises = false;
  }

let mp_rel_acq =
  mp WRel Acq "mp_rel_acq"
    "Message passing, release/acquire: the reader seeing the flag must see \
     the payload"
    [ [ -1 ]; [ 42 ] ] [ [ 0 ] ]

let mp_rlx =
  mp WRlx Rlx "mp_rlx"
    "Message passing, relaxed flag: the stale payload is observable"
    [ [ -1 ]; [ 0 ]; [ 42 ] ]
    []

(* ------------------------------------------------------------------ *)
(* Fig. 1: loop invariant code motion and the acquire read.  The loop
   bound is 2 (the paper uses 10) to keep exhaustive exploration
   instant; the claim is bound-independent and the bench sweeps it. *)

let fig1_g =
  p "g"
    [
      b "G0" [ store "y" ~mode:WNa (i 1); store "x" ~mode:WRel (i 1) ] ret;
    ]

let fig1_foo_body ~flag_mode ~hoisted =
  let prelude =
    [ assign "r1" (i 0); assign "r2" (i 0) ]
    @ if hoisted then [ load "r2" "y" ~mode:Na ] else []
  in
  let loop_body =
    if hoisted then [ assign "r1" (r "r1" + i 1) ]
    else [ load "r2" "y" ~mode:Na; assign "r1" (r "r1" + i 1) ]
  in
  [
    b "L0" prelude (jmp "L1");
    b "L1" [] (be (r "r1" < i 2) "L2" "L4");
    b "L2" [ load "r3" "x" ~mode:flag_mode ] (be (r "r3" == i 0) "L2" "L3");
    b "L3" loop_body (jmp "L1");
    b "L4" [ print (r "r2") ] ret;
  ]

let fig1_make name descr ~flag_mode ~hoisted expected forbidden =
  {
    name;
    descr;
    prog =
      program ~atomics:[ "x" ]
        [ p "foo" (fig1_foo_body ~flag_mode ~hoisted); fig1_g ]
        ~threads:[ "foo"; "g" ];
    expected;
    forbidden;
    needs_promises = false;
  }

let fig1_foo =
  fig1_make "fig1_foo"
    "Fig. 1 source: acquire flag forces the loop's read of y to see 1"
    ~flag_mode:Acq ~hoisted:false [ [ 1 ] ] [ [ 0 ] ]

let fig1_foo_opt =
  fig1_make "fig1_foo_opt"
    "Fig. 1 target: hoisting the read of y before the acquire loop makes 0 \
     observable — the refinement violation"
    ~flag_mode:Acq ~hoisted:true
    [ [ 0 ]; [ 1 ] ]
    []

let fig1_foo_rlx =
  fig1_make "fig1_foo_rlx"
    "Fig. 1 source, flag read weakened to relaxed: 0 already observable"
    ~flag_mode:Rlx ~hoisted:false
    [ [ 0 ]; [ 1 ] ]
    []

let fig1_foo_opt_rlx =
  fig1_make "fig1_foo_opt_rlx"
    "Fig. 1 target with the relaxed flag: hoisting is sound here"
    ~flag_mode:Rlx ~hoisted:true
    [ [ 0 ]; [ 1 ] ]
    []

(* ------------------------------------------------------------------ *)
(* (Reorder), Sec. 2.3: sound even in racy contexts, via a source
   promise (Fig. 3(c)/Fig. 14(d)). *)

let reorder_env =
  p "env"
    [ b "E0" [ store "x" ~mode:WNa (i 1); load "r9" "y" ~mode:Na;
               print (r "r9") ] ret ]

let reorder_make name descr instrs =
  {
    name;
    descr;
    prog =
      program ~atomics:[]
        [ p "t1" [ b "L0" (instrs @ [ print (r "r0") ]) ret ]; reorder_env ]
        ~threads:[ "t1"; "env" ];
    expected = [ [ 0; 0 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] ];
    forbidden = [];
    needs_promises = false;
  }

let reorder_src =
  reorder_make "reorder_src" "(Reorder) source: r0 := x_na; y_na := 2"
    [ load "r0" "x" ~mode:Na; store "y" ~mode:WNa (i 2) ]

let reorder_tgt =
  reorder_make "reorder_tgt" "(Reorder) target: y_na := 2; r0 := x_na"
    [ store "y" ~mode:WNa (i 2); load "r0" "x" ~mode:Na ]

(* ------------------------------------------------------------------ *)
(* Fig. 4: no write-write race, because races are checked only when
   promises are certified. *)

let fig4 =
  {
    name = "fig4";
    descr =
      "Fig. 4: both threads write z_na only on branches that cannot be taken \
       in the same certified execution — no ww-race";
    prog =
      program ~atomics:[ "x"; "y" ]
        [
          p "t1"
            [
              b "L0" [ load "r1" "y" ~mode:Rlx ] (be (r "r1" == i 1) "A" "B");
              b "A" [ store "z" ~mode:WNa (i 1); print (r "r1") ] ret;
              b "B" [ store "x" ~mode:WRlx (i 1); print (r "r1") ] ret;
            ];
          p "t2"
            [
              b "L0" [ load "r2" "x" ~mode:Rlx ] (be (r "r2" == i 1) "C" "D");
              b "C"
                [ store "z" ~mode:WNa (i 2); store "y" ~mode:WRlx (i 1);
                  print (r "r2") ]
                ret;
              b "D" [ print (r "r2") ] ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ 0; 0 ]; [ 0; 1 ] ];
    forbidden = [ [ 1; 1 ] ];
    needs_promises = false;
  }

(* ------------------------------------------------------------------ *)
(* Fig. 15: DCE across a release write is unsound. *)

let fig15_observer =
  p "g"
    [
      b "G0" [ load "r1" "x" ~mode:Acq ] (be (r "r1" == i 1) "G1" "G2");
      b "G1" [ load "r2" "y" ~mode:Na; print (r "r2") ] ret;
      b "G2" [ print (i (-1)) ] ret;
    ]

let fig15_make name descr first_write expected forbidden =
  {
    name;
    descr;
    prog =
      program ~atomics:[ "x" ]
        [
          p "t1"
            [
              b "L0"
                (first_write
                @ [ store "x" ~mode:WRel (i 1); store "y" ~mode:WNa (i 4) ])
                ret;
            ];
          fig15_observer;
        ]
        ~threads:[ "t1"; "g" ];
    expected;
    forbidden;
    needs_promises = false;
  }

let fig15_src =
  fig15_make "fig15_src"
    "Fig. 15 source: y_na := 2 precedes the release write, so the observer \
     never sees y = 0"
    [ store "y" ~mode:WNa (i 2) ]
    [ [ -1 ]; [ 2 ]; [ 4 ] ]
    [ [ 0 ] ]

let fig15_bad_tgt =
  fig15_make "fig15_bad_tgt"
    "Fig. 15 incorrect target: eliminating y_na := 2 across the release \
     write lets the observer print 0"
    [ skip ]
    [ [ -1 ]; [ 0 ]; [ 4 ] ]
    []

(* ------------------------------------------------------------------ *)
(* Fig. 16: the two-writes DCE example, with a racy reader. *)

let fig16_make name descr first =
  {
    name;
    descr;
    prog =
      program ~atomics:[]
        [
          p "t1" [ b "L0" (first @ [ store "x" ~mode:WNa (i 2) ]) ret ];
          p "t2" [ b "L0" [ load "r1" "x" ~mode:Na; print (r "r1") ] ret ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ 0 ]; [ 2 ] ];
    forbidden = [];
    needs_promises = false;
  }

let fig16_src =
  let tm = fig16_make "fig16_src" "Fig. 16 source: x_na := 1; x_na := 2"
      [ store "x" ~mode:WNa (i 1) ]
  in
  { tm with expected = [ [ 0 ]; [ 1 ]; [ 2 ] ] }

let fig16_tgt =
  fig16_make "fig16_tgt" "Fig. 16 target: skip; x_na := 2" [ skip ]

(* ------------------------------------------------------------------ *)

let coherence =
  {
    name = "coherence";
    descr =
      "Per-location coherence: having read the newer write, a thread cannot \
       go back to the older one";
    prog =
      program ~atomics:[ "x" ]
        [
          p "t1"
            [
              b "L0" [ store "x" ~mode:WRlx (i 1); store "x" ~mode:WRlx (i 2) ]
                ret;
            ];
          p "t2"
            [
              b "L0"
                [ load "r1" "x" ~mode:Rlx; load "r2" "x" ~mode:Rlx;
                  print ((r "r1" * i 10) + r "r2") ]
                ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ 0 ]; [ 1 ] (* 01 *); [ 11 ]; [ 12 ]; [ 22 ]; [ 2 ] ];
    forbidden = [ [ 21 ]; [ 10 ]; [ 20 ] ];
    needs_promises = false;
  }

(* ------------------------------------------------------------------ *)
(* Fence-based message passing (footnote 1: fences are part of the
   full model).  A release fence before a relaxed write, matched by an
   acquire fence after a relaxed read, establishes the same
   synchronization as rel/acq accesses. *)

let mp_fences =
  {
    name = "mp_fences";
    descr =
      "Message passing through fences: rel fence + rlx write / rlx read + \
       acq fence synchronize like rel/acq accesses";
    prog =
      program ~atomics:[ "x" ]
        [
          p "t1"
            [
              b "L0"
                [ store "y" ~mode:WNa (i 42); fence FRel;
                  store "x" ~mode:WRlx (i 1) ]
                ret;
            ];
          p "t2"
            [
              b "L0" [ load "r1" "x" ~mode:Rlx ]
                (be (r "r1" == i 1) "L1" "L2");
              b "L1" [ fence FAcq; load "r2" "y" ~mode:Na; print (r "r2") ] ret;
              b "L2" [ print (i (-1)) ] ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ -1 ]; [ 42 ] ];
    forbidden = [ [ 0 ] ];
    needs_promises = false;
  }

(* IRIW: two writers, two readers disagreeing on the write order.  PS
   has no per-execution total order on independent writes, so the
   split outcome 10/10 is observable even with release/acquire
   accesses (C11 needs SC accesses to forbid it). *)

let iriw =
  {
    name = "iriw";
    descr =
      "IRIW, release/acquire: the two readers may observe the independent \
       writes in opposite orders (10/10)";
    prog =
      program ~atomics:[ "x"; "y" ]
        [
          p "w1" [ b "L0" [ store "x" ~mode:WRel (i 1) ] ret ];
          p "w2" [ b "L0" [ store "y" ~mode:WRel (i 1) ] ret ];
          p "r1"
            [
              b "L0"
                [ load "a" "x" ~mode:Acq; load "b" "y" ~mode:Acq;
                  print ((r "a" * i 10) + r "b") ]
                ret;
            ];
          p "r2"
            [
              b "L0"
                [ load "c" "y" ~mode:Acq; load "d" "x" ~mode:Acq;
                  print ((r "c" * i 10) + r "d") ]
                ret;
            ];
        ]
        ~threads:[ "w1"; "w2"; "r1"; "r2" ];
    expected = [ [ 10; 10 ]; [ 11; 11 ]; [ 0; 0 ] ];
    forbidden = [];
    needs_promises = false;
  }

(* Write-to-read causality: acquiring a flag written after an acquire
   of x transfers the observation of x (message views compose). *)

let wrc =
  {
    name = "wrc";
    descr =
      "WRC: release/acquire chains are cumulative — the third thread must \
       see x = 1 after acquiring y";
    prog =
      program ~atomics:[ "x"; "y" ]
        [
          p "t1" [ b "L0" [ store "x" ~mode:WRel (i 1) ] ret ];
          p "t2"
            [
              b "L0" [ load "r1" "x" ~mode:Acq ]
                (be (r "r1" == i 1) "L1" "L2");
              b "L1" [ store "y" ~mode:WRel (i 1) ] ret;
              b "L2" [] ret;
            ];
          p "t3"
            [
              b "L0" [ load "r2" "y" ~mode:Acq ]
                (be (r "r2" == i 1) "L1" "L2");
              b "L1" [ load "r3" "x" ~mode:Rlx; print (r "r3") ] ret;
              b "L2" [ print (i (-1)) ] ret;
            ];
        ]
        ~threads:[ "t1"; "t2"; "t3" ];
    expected = [ [ -1 ]; [ 1 ] ];
    forbidden = [ [ 0 ] ];
    needs_promises = false;
  }

(* ------------------------------------------------------------------ *)
(* Read-own-write coherence: after writing x, a thread's own reads are
   bounded by its view, so the old value is gone (for itself). *)

let corw =
  {
    name = "corw";
    descr =
      "Read-own-write: a thread that wrote x = 1 can no longer read the \
       initial 0";
    prog =
      program ~atomics:[ "x" ]
        [
          p "t1"
            [
              b "L0"
                [ store "x" ~mode:WRlx (i 1); load "r1" "x" ~mode:Rlx;
                  print (r "r1") ]
                ret;
            ];
          p "t2" [ b "L0" [ store "x" ~mode:WRlx (i 2) ] ret ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ 1 ]; [ 2 ] ];
    forbidden = [ [ 0 ] ];
    needs_promises = false;
  }

(* Control dependencies and promises: a conditional write can be
   promised only if certification can reach it.  With the write under
   the r1 == 1 branch, the LB outcome would be out-of-thin-air and is
   forbidden; with the branch inverted (write when r1 == 0) the
   promise certifies and the outcome appears. *)

let lb_ctrl_make name descr ~then_writes expected forbidden =
  let l1, l2 = if then_writes then ("W", "E") else ("E", "W") in
  {
    name;
    descr;
    prog =
      program ~atomics:[ "x"; "y" ]
        [
          p "t1"
            [
              b "L0" [ load "r1" "x" ~mode:Rlx ] (be (r "r1" == i 1) l1 l2);
              b "W" [ store "y" ~mode:WRlx (i 1); print (r "r1") ] ret;
              b "E" [ print (r "r1") ] ret;
            ];
          p "t2"
            [
              b "L0"
                [ load "r2" "y" ~mode:Rlx; store "x" ~mode:WRlx (r "r2");
                  print (r "r2") ]
                ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected;
    forbidden;
    (* [0;1] in the inverted variant is also reachable by plain
       scheduling (t1 reads x = 0 before writing y), so neither
       variant's expected outcomes require promises. *)
    needs_promises = false;
  }

let lb_ctrl_dep =
  lb_ctrl_make "lb_ctrl_dep"
    "LB with a control dependency: y := 1 only under r1 == 1, so promising \
     it would be out-of-thin-air — 1/1 forbidden"
    ~then_writes:true
    [ [ 0; 0 ] ]
    [ [ 1; 1 ] ]

let lb_ctrl_indep =
  lb_ctrl_make "lb_ctrl_indep"
    "LB with the branch inverted (y := 1 when r1 == 0): the promise \
     certifies, so t2 can read 1 while t1 itself reads 0 — and reading 1 \
     at t1 would strand the promise, so 1/1 stays impossible"
    ~then_writes:false
    [ [ 0; 0 ]; [ 0; 1 ] ]
    [ [ 1; 1 ] ]

(* ------------------------------------------------------------------ *)
(* Release sequences: a relaxed write to x after a release write to x
   (same thread) carries the release view, and an RMW by any thread
   extends the sequence. *)

let release_seq =
  {
    name = "release_seq";
    descr =
      "Release sequence: a later relaxed write to the same location carries \
       the release view, so acquiring either write sees the payload";
    prog =
      program ~atomics:[ "x" ]
        [
          p "t1"
            [
              b "L0"
                [ store "y" ~mode:WNa (i 42); store "x" ~mode:WRel (i 1);
                  store "x" ~mode:WRlx (i 2) ]
                ret;
            ];
          p "t2"
            [
              b "L0" [ load "r1" "x" ~mode:Acq ]
                (be (r "r1" == i 0) "L2" "L1");
              b "L1" [ load "r2" "y" ~mode:Na; print (r "r2") ] ret;
              b "L2" [ print (i (-1)) ] ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ -1 ]; [ 42 ] ];
    forbidden = [ [ 0 ] ];
    needs_promises = false;
  }

let release_seq_rmw =
  {
    name = "release_seq_rmw";
    descr =
      "Release sequence through an RMW: a relaxed CAS by another thread \
       extends the sequence, so acquiring its write still sees the payload";
    prog =
      program ~atomics:[ "x" ]
        [
          p "t1"
            [
              b "L0"
                [ store "y" ~mode:WNa (i 42); store "x" ~mode:WRel (i 1) ]
                ret;
            ];
          p "t2"
            [
              b "L0"
                [ cas "r0" "x" ~expect:(i 1) ~write:(i 2) ~rmode:Rlx
                    ~wmode:WRlx ]
                ret;
            ];
          p "t3"
            [
              b "L0" [ load "r1" "x" ~mode:Acq ]
                (be (r "r1" == i 2) "L1" "L2");
              b "L1" [ load "r2" "y" ~mode:Na; print (r "r2") ] ret;
              b "L2" [ print (i (-1)) ] ret;
            ];
        ]
        ~threads:[ "t1"; "t2"; "t3" ];
    expected = [ [ -1 ]; [ 42 ] ];
    forbidden = [ [ 0 ] ];
    needs_promises = false;
  }

(* ------------------------------------------------------------------ *)
(* A CAS spinlock protecting a non-atomic counter: the acquire CAS
   synchronizes with the release unlock, so the second thread into
   the critical section must see the increment — and the two
   non-atomic writes to the counter are ww-race-free despite being
   unordered syntactically. *)

let spinlock =
  let worker name =
    p name
      [
        b "L0"
          [ cas "r0" "l" ~expect:(i 0) ~write:(i 1) ~rmode:Acq ~wmode:WRlx ]
          (be (r "r0" == i 1) "CS" "L0");
        b "CS"
          [ load "r1" "c" ~mode:Na; store "c" ~mode:WNa (r "r1" + i 1);
            print (r "r1"); store "l" ~mode:WRel (i 0) ]
          ret;
      ]
  in
  {
    name = "spinlock";
    descr =
      "CAS spinlock around a non-atomic counter: mutual exclusion makes the \
       two critical-section reads see 0 then 1, and keeps the counter \
       ww-race-free";
    prog =
      program ~atomics:[ "l" ]
        [ worker "t1"; worker "t2" ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ 0; 1 ] ];
    forbidden = [ [ 0; 0 ]; [ 1; 1 ] ];
    needs_promises = false;
  }

(* ------------------------------------------------------------------ *)
(* Write-write races (Sec. 5). *)

let ww_racy =
  {
    name = "ww_racy";
    descr = "Unsynchronized non-atomic writes to x from two threads: ww-race";
    prog =
      program ~atomics:[]
        [
          p "t1" [ b "L0" [ store "x" ~mode:WNa (i 1) ] ret ];
          p "t2"
            [ b "L0" [ store "x" ~mode:WNa (i 2); load "r1" "x" ~mode:Na;
                       print (r "r1") ] ret ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ 1 ]; [ 2 ] ];
    forbidden = [];
    needs_promises = false;
  }

let ww_sync =
  {
    name = "ww_sync";
    descr =
      "The same two writes ordered by release/acquire message passing: \
       ww-race free";
    prog =
      program ~atomics:[ "f" ]
        [
          p "t1"
            [ b "L0" [ store "x" ~mode:WNa (i 1); store "f" ~mode:WRel (i 1) ]
                ret ];
          p "t2"
            [
              b "L0" [ load "r0" "f" ~mode:Acq ]
                (be (r "r0" == i 1) "L1" "L2");
              b "L1" [ store "x" ~mode:WNa (i 2); load "r1" "x" ~mode:Na;
                       print (r "r1") ] ret;
              b "L2" [ print (i (-1)) ] ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ];
    expected = [ [ -1 ]; [ 2 ] ];
    forbidden = [ [ 1 ] ];
    needs_promises = false;
  }

(* ------------------------------------------------------------------ *)
(* Fig. 5(b): LInv introduces a read-write race, soundly.  The loop
   bound follows the paper (r1 counts from z's value 9 up to 8: zero
   iterations when synchronized). *)

let fig5_g =
  p "g"
    [
      b "G0"
        [ store "z" ~mode:WNa (i 9); store "y" ~mode:WRel (i 1);
          store "x" ~mode:WNa (i 5) ]
        ret;
    ]

let fig5_make name descr ~hoisted =
  let loop_pre = if hoisted then [ load "r" "x" ~mode:Na ] else [] in
  let body =
    [
      b "L0" [ load "r0" "y" ~mode:Acq ] (be (r "r0" == i 1) "L1" "L5");
      b "L1" ([ load "r1" "z" ~mode:Na ] @ loop_pre) (jmp "L2");
      b "L2" [] (be (r "r1" < i 8) "L3" "L4");
      b "L3" [ load "r2" "x" ~mode:Na; assign "r1" (r "r1" + i 1) ] (jmp "L2");
      b "L4" [ print (r "r1") ] ret;
      b "L5" [ print (i (-1)) ] ret;
    ]
  in
  {
    name;
    descr;
    prog =
      program ~atomics:[ "y" ]
        [ p "t1" body; fig5_g ]
        ~threads:[ "t1"; "g" ];
    expected = [ [ -1 ]; [ 9 ] ];
    forbidden = [ [ 0 ] ];
    needs_promises = false;
  }

let fig5_src =
  fig5_make "fig5_src"
    "Fig. 5(b) source: x is read only inside the guarded loop — no \
     read-write race"
    ~hoisted:false

let fig5_tgt =
  fig5_make "fig5_tgt"
    "Fig. 5(b) target after LInv: the hoisted read of x races with g's \
     write, but its value is unused — sound"
    ~hoisted:true

let all =
  [
    sb;
    lb;
    lb_oota;
    cas_exclusive;
    mp_rel_acq;
    mp_rlx;
    fig1_foo;
    fig1_foo_opt;
    fig1_foo_rlx;
    fig1_foo_opt_rlx;
    reorder_src;
    reorder_tgt;
    fig4;
    fig15_src;
    fig15_bad_tgt;
    fig16_src;
    fig16_tgt;
    coherence;
    corw;
    lb_ctrl_dep;
    lb_ctrl_indep;
    release_seq;
    release_seq_rmw;
    spinlock;
    mp_fences;
    iriw;
    wrc;
    ww_racy;
    ww_sync;
    fig5_src;
    fig5_tgt;
  ]

let find name = List.find (fun t -> String.equal t.name name) all

(* ------------------------------------------------------------------ *)
(* Checking a corpus entry against the explorer. *)

type verdict =
  | Pass
  | Mismatch of {
      unexpected : Lang.Ast.value list list;
      missing : Lang.Ast.value list list;
    }
  | Inconclusive of string

type result = { verdict : verdict; observed : Lang.Ast.value list list }

let check ?(config = Explore.Config.default) t =
  Obs.Trace.span ~cat:"litmus" "litmus.check" @@ fun () ->
  let o = Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving t.prog in
  let sorted l = List.sort compare l in
  let observed =
    Explore.Traceset.done_outs o.Explore.Enum.traces
    |> List.map sorted |> List.sort_uniq compare
  in
  let unexpected = List.filter (fun f -> List.mem (sorted f) observed) t.forbidden in
  let missing =
    List.filter (fun e -> not (List.mem (sorted e) observed)) t.expected
  in
  let verdict =
    (* A forbidden outcome that showed up is decisive regardless of
       completeness: observed traces are genuinely producible.  The
       absence of an outcome is only meaningful on an exhaustive
       exploration. *)
    if unexpected <> [] then Mismatch { unexpected; missing }
    else
      match o.Explore.Enum.completeness with
      | Explore.Enum.Truncated reasons ->
          Inconclusive
            (Format.asprintf "exploration truncated (%a)"
               Explore.Errors.pp_reasons reasons)
      | Explore.Enum.Exhaustive ->
          if missing <> [] then Mismatch { unexpected; missing } else Pass
  in
  { verdict; observed }

let check_all ?(config = Explore.Config.default) ?j () =
  let j =
    match j with
    | Some j -> max 1 (min j Explore.Pool.domain_cap)
    | None -> max 1 (min config.Explore.Config.domains Explore.Pool.domain_cap)
  in
  (* One corpus program per pool task; each check's own exploration
     then runs single-domain (case-level parallelism composes better
     than nested pools on litmus-size state spaces). *)
  let config =
    if j > 1 then { config with Explore.Config.domains = 1 } else config
  in
  Explore.Pool.map ~j (fun t -> (t, check ~config t)) all

let pp_verdict ppf = function
  | Pass -> Format.pp_print_string ppf "ok"
  | Mismatch { unexpected; missing } ->
      let pp_outs ppf outs =
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
          (fun ppf o ->
            Format.fprintf ppf "[%s]"
              (String.concat ";" (List.map string_of_int o)))
          ppf outs
      in
      Format.pp_print_string ppf "MISMATCH";
      if unexpected <> [] then
        Format.fprintf ppf " forbidden-observed: %a" pp_outs unexpected;
      if missing <> [] then
        Format.fprintf ppf " expected-missing: %a" pp_outs missing
  | Inconclusive why -> Format.fprintf ppf "inconclusive: %s" why
