(** The litmus-program corpus: every example of the paper plus the
    classic weak-memory shapes, as ready-made CSimpRTL programs.

    Each program prints the registers the paper annotates, so that its
    behaviour set directly exhibits the claimed outcome.  The [expected]
    / [forbidden] output lists state the paper's claim, and the test
    suite checks them against {!Explore.Enum}. *)

type t = {
  name : string;
  descr : string;  (** where in the paper, and what it demonstrates *)
  prog : Lang.Ast.program;
  expected : Lang.Ast.value list list;
      (** sorted output multisets the paper says are observable (print
          order across threads is scheduling noise, so outcomes are
          compared as sorted multisets) *)
  forbidden : Lang.Ast.value list list;
      (** sorted output multisets the paper says must not occur *)
  needs_promises : bool;
      (** whether the expected outcomes require promise steps *)
}

val sb : t
(** Store buffering (Sec. 2.1): both threads may read 0. *)

val lb : t
(** Load buffering (Sec. 2.1): both threads may read 1, via a
    promise. *)

val lb_oota : t
(** Load buffering with a dependency ([y := r1]): the out-of-thin-air
    outcome 1/1 is forbidden — certification cannot justify the
    promise. *)

val cas_exclusive : t
(** Two concurrent CAS on the same initial value (Sec. 3): at most one
    may succeed. *)

val mp_rel_acq : t
(** Message passing with release/acquire: the acquire reader that sees
    the flag must see the payload. *)

val mp_rlx : t
(** Message passing with relaxed flag: stale payload observable. *)

val fig1_foo : t
(** Fig. 1 source: LICM's soundness counterexample context — [foo() ∥
    g()] with an acquire flag read; [r2 = 0] is forbidden. *)

val fig1_foo_opt : t
(** Fig. 1 target [foo_opt() ∥ g()]: hoisting the read of [y] makes
    [r2 = 0] observable — the refinement violation of Fig. 1. *)

val fig1_foo_rlx : t
(** Fig. 1 source with the acquire read weakened to relaxed: now
    [r2 = 0] is observable already in the source, so the hoisting
    becomes sound. *)

val fig1_foo_opt_rlx : t
(** Fig. 1 target with the relaxed flag read. *)

val reorder_src : t
(** (Reorder) source (Sec. 2.3): [r := x_na; y_na := 2] with an
    observer. *)

val reorder_tgt : t
(** (Reorder) target: [y_na := 2; r := x_na]. *)

val fig4 : t
(** Fig. 4: the subtle non-ww-race program (races are only checked
    when promises certify). *)

val fig15_src : t
(** Fig. 15 source: DCE across a release write would be unsound; the
    source keeps both writes to [y]. *)

val fig15_bad_tgt : t
(** Fig. 15's incorrect target: first write to [y] eliminated across
    the release write; observer can print 0, which the source never
    does. *)

val fig16_src : t
(** The two-writes example of Fig. 16: [x_na := 1; x_na := 2]. *)

val fig16_tgt : t
(** Its DCE target: [skip; x_na := 2]. *)

val coherence : t
(** Per-location coherence: after reading 2 from [x], a thread cannot
    read an older write. *)

val corw : t
(** Read-own-write coherence: the writer cannot read back the initial
    value. *)

val lb_ctrl_dep : t
(** LB with a control dependency guarding the write: promising it
    would be out-of-thin-air — forbidden. *)

val lb_ctrl_indep : t
(** The inverted branch: the promise certifies, the reader may see it,
    and reading it back at the promiser strands the promise. *)

val release_seq : t
(** A relaxed write after a release write to the same location carries
    the release view (release sequences). *)

val release_seq_rmw : t
(** Release sequences extend through RMW steps by other threads. *)

val spinlock : t
(** A CAS spinlock protecting a non-atomic counter: mutual exclusion
    and ww-race freedom through lock synchronization. *)

val mp_fences : t
(** Message passing through a release fence + relaxed write and a
    relaxed read + acquire fence (footnote 1's fence semantics). *)

val iriw : t
(** IRIW with release/acquire accesses: the split outcome is
    observable in PS (forbidding it needs SC accesses, which PS2.1 —
    and this reproduction — excludes). *)

val wrc : t
(** Write-to-read causality: release/acquire chains compose. *)

val ww_racy : t
(** Two threads write the same non-atomic location with no
    synchronization: the canonical write-write race ([ww-RF] fails). *)

val ww_sync : t
(** The same two writes ordered by release/acquire message passing:
    write-write race free. *)

val fig5_src : t
(** Fig. 5(b) source: the loop body reads [x] only under the acquire
    guard, so the source has no read-write race. *)

val fig5_tgt : t
(** Fig. 5(b) target (after LInv): the hoisted read of [x] races with
    [g()]'s unsynchronized write — yet the transformation is sound
    (the racy read's value is never used). *)

val all : t list
(** The whole corpus (used by equivalence and race experiments). *)

val find : string -> t
(** @raise Not_found on unknown name. *)

(** The paper's claim, checked against the explorer. *)
type verdict =
  | Pass
  | Mismatch of {
      unexpected : Lang.Ast.value list list;
          (** forbidden outcomes that were observed — decisive even on
              a truncated exploration (observed means producible) *)
      missing : Lang.Ast.value list list;
          (** expected outcomes that never showed up *)
    }
  | Inconclusive of string
      (** the exploration was truncated and no forbidden outcome was
          observed: absence claims cannot be trusted *)

type result = {
  verdict : verdict;
  observed : Lang.Ast.value list list;
      (** sorted output multisets of completed traces *)
}

val check : ?config:Explore.Config.t -> t -> result

val check_all :
  ?config:Explore.Config.t -> ?j:int -> unit -> (t * result) list
(** Check the whole corpus, one program per {!Explore.Pool} task
    ([j] defaults to [config.domains]); results are in corpus order
    and identical at every [j]. *)

val pp_verdict : Format.formatter -> verdict -> unit
