type read = Na | Rlx | Acq
type write = WNa | WRlx | WRel
type fence = FAcq | FRel | FSc

let read_is_atomic = function Na -> false | Rlx | Acq -> true
let write_is_atomic = function WNa -> false | WRlx | WRel -> true
let read_rank = function Na -> 0 | Rlx -> 1 | Acq -> 2
let write_rank = function WNa -> 0 | WRlx -> 1 | WRel -> 2
let read_le a b = read_rank a <= read_rank b
let write_le a b = write_rank a <= write_rank b
let equal_read (a : read) b = a = b
let equal_write (a : write) b = a = b
let equal_fence (a : fence) b = a = b

let pp_read ppf m =
  Format.pp_print_string ppf
    (match m with Na -> "na" | Rlx -> "rlx" | Acq -> "acq")

let pp_write ppf m =
  Format.pp_print_string ppf
    (match m with WNa -> "na" | WRlx -> "rlx" | WRel -> "rel")

let pp_fence ppf m =
  Format.pp_print_string ppf
    (match m with FAcq -> "acq" | FRel -> "rel" | FSc -> "sc")

let read_of_string = function
  | "na" -> Some Na
  | "rlx" -> Some Rlx
  | "acq" -> Some Acq
  | _ -> None

let write_of_string = function
  | "na" -> Some WNa
  | "rlx" -> Some WRlx
  | "rel" -> Some WRel
  | _ -> None

let fence_of_string = function
  | "acq" -> Some FAcq
  | "rel" -> Some FRel
  | "sc" -> Some FSc
  | _ -> None
