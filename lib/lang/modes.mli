(** Memory access modes of CSimpRTL (Fig. 7 of the paper).

    Reads are non-atomic ([na]), relaxed ([rlx]) or acquire ([acq]);
    writes are non-atomic, relaxed or release ([rel]).  CAS carries one
    mode of each kind.  Fences (footnote 1; modelled fully in the Coq
    artifact and here) are acquire, release or sequentially consistent. *)

type read = Na | Rlx | Acq
type write = WNa | WRlx | WRel
type fence = FAcq | FRel | FSc

val read_is_atomic : read -> bool
(** [rlx] and [acq] are atomic accesses; [na] is not. *)

val write_is_atomic : write -> bool

val read_le : read -> read -> bool
(** Strength order [na ⊑ rlx ⊑ acq]: [read_le a b] iff [a] is no
    stronger than [b].  Strengthening a read mode is never an
    optimization we perform, but the order is useful to state tests. *)

val write_le : write -> write -> bool
(** Strength order [na ⊑ rlx ⊑ rel]. *)

val equal_read : read -> read -> bool
val equal_write : write -> write -> bool
val equal_fence : fence -> fence -> bool
val pp_read : Format.formatter -> read -> unit
val pp_write : Format.formatter -> write -> unit
val pp_fence : Format.formatter -> fence -> unit
val read_of_string : string -> read option
val write_of_string : string -> write option
val fence_of_string : string -> fence option
