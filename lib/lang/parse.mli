(** Concrete syntax for CSimpRTL: a hand-written lexer and
    recursive-descent parser.

    The grammar (comments are [// ...] to end of line):

    {v
    program   ::= ("atomics" ident* ";")?  "threads" ident+ ";"  proc*
    proc      ::= "proc" ident "entry" ident "{" labeled+ "}"
    labeled   ::= ident ":" (stmt ";")+          -- last stmt a terminator
    stmt      ::= reg ":=" var "." rmode                       -- load
               |  reg ":=" "cas" "." rmode "." wmode
                     "(" var "," expr "," expr ")"             -- CAS
               |  var "." wmode ":=" expr                      -- store
               |  reg ":=" expr                                -- assign
               |  "skip" | "print" "(" expr ")" | "fence" "." fmode
               |  "jmp" ident | "be" expr "," ident "," ident
               |  "call" "(" ident "," ident ")" | "return"
    expr      ::= arith (cmpop arith)?
    arith     ::= term (("+" | "-") term)*
    term      ::= atom ("*" atom)*
    atom      ::= int | ident | "(" expr ")" | "-" atom
    v}

    A statement [a := b.m] is a load; loads are distinguished from
    assignments by the [.mode] suffix on the right-hand side
    identifier.  Whether an identifier denotes a register or a shared
    variable is determined by position: memory accesses name variables,
    everything else names registers ({!Wf} checks consistency). *)

type error = { line : int; col : int; msg : string }
(** A lexical or syntax error, positioned at the offending character
    or token (1-based line and column). *)

exception Error of error

val error_message : error -> string
(** ["<line>:<col>: <msg>"]. *)

val program_of_string : string -> Ast.program
val program_of_file : string -> Ast.program
val expr_of_string : string -> Ast.expr
