(** Well-formedness of CSimpRTL programs.

    Checked properties:
    - every thread's function is declared in [π];
    - every jump/branch target and call-return label is a block of the
      same code heap, and every entry label exists;
    - every called function is declared;
    - the access-mode discipline of Fig. 7: variables in the atomic set
      [ι] are accessed only with atomic modes ([rlx]/[acq]/[rel]) and
      CAS, and variables outside [ι] only with [na] loads and stores
      (the paper requires non-atomic locations to be accessed in [na]
      mode and CAS to target atomic locations only);
    - registers and shared variables do not share names (the concrete
      syntax distinguishes them by position only). *)

type error = { where : string; what : string }

exception Ill_formed of error list

val pp_error : Format.formatter -> error -> unit

val errors_message : error list -> string
(** All violations, ["; "]-separated. *)

val check : Ast.program -> (unit, error list) result

val check_exn : Ast.program -> Ast.program
(** Identity on well-formed programs.
    @raise Ill_formed listing all violations otherwise. *)
