open Ast

type error = { where : string; what : string }

exception Ill_formed of error list

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.what

let errors_message errs =
  String.concat "; " (List.map (fun e -> Format.asprintf "%a" pp_error e) errs)

let check (p : program) : (unit, error list) result =
  let errs = ref [] in
  let err where fmt =
    Format.kasprintf (fun what -> errs := { where; what } :: !errs) fmt
  in
  (* Threads run declared functions. *)
  List.iter
    (fun f ->
      if not (FnameMap.mem f p.code) then
        err "threads" "thread function %s is not declared" f)
    p.threads;
  (* Per-function checks. *)
  let all_regs = ref RegSet.empty in
  let all_vars = ref VarSet.empty in
  FnameMap.iter
    (fun fn ch ->
      let where l = Printf.sprintf "%s/%s" fn l in
      if not (LabelMap.mem ch.entry ch.blocks) then
        err fn "entry label %s has no block" ch.entry;
      all_regs := RegSet.union !all_regs (Cfg.regs_of_codeheap ch);
      all_vars := VarSet.union !all_vars (Cfg.vars_of_codeheap ch);
      LabelMap.iter
        (fun l b ->
          let target t =
            if not (LabelMap.mem t ch.blocks) then
              err (where l) "jump target %s has no block" t
          in
          (match b.term with
          | Jmp t -> target t
          | Be (_, t1, t2) -> target t1; target t2
          | Call (f, lret) ->
              target lret;
              if not (FnameMap.mem f p.code) then
                err (where l) "call to undeclared function %s" f
          | Return -> ());
          List.iter
            (fun i ->
              let atomic x = VarSet.mem x p.atomics in
              match i with
              | Load (_, x, m) ->
                  if atomic x && not (Modes.read_is_atomic m) then
                    err (where l) "non-atomic read of atomic variable %s" x;
                  if (not (atomic x)) && Modes.read_is_atomic m then
                    err (where l) "atomic read of non-atomic variable %s" x
              | Store (x, _, m) ->
                  if atomic x && not (Modes.write_is_atomic m) then
                    err (where l) "non-atomic write of atomic variable %s" x;
                  if (not (atomic x)) && Modes.write_is_atomic m then
                    err (where l) "atomic write of non-atomic variable %s" x
              | Cas (_, x, _, _, _, _) ->
                  if not (atomic x) then
                    err (where l) "CAS on non-atomic variable %s" x
              | Skip | Assign _ | Print _ | Fence _ -> ())
            b.instrs)
        ch.blocks)
    p.code;
  let clashes = RegSet.inter !all_regs (VarSet.to_seq !all_vars |> RegSet.of_seq) in
  RegSet.iter
    (fun name ->
      err "naming" "%s is used both as a register and as a variable" name)
    clashes;
  match List.rev !errs with [] -> Ok () | errs -> Error errs

let check_exn p =
  match check p with Ok () -> p | Error errs -> raise (Ill_formed errs)
