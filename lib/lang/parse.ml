type error = { line : int; col : int; msg : string }

exception Error of error

let error_message e = Printf.sprintf "%d:%d: %s" e.line e.col e.msg

type token =
  | IDENT of string
  | INT of int
  | ASSIGN (* := *)
  | SEMI
  | COMMA
  | COLON
  | DOT
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | PLUS
  | MINUS
  | STAR
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

let pp_token = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | ASSIGN -> "':='"
  | SEMI -> "';'"
  | COMMA -> "','"
  | COLON -> "':'"
  | DOT -> "'.'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EOF -> "end of input"

(* ------------------------------------------------------------------ *)
(* Lexer *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

(* Tokens carry their start position (line and column, both
   1-based), so parse errors can point at the offending token. *)
let tokenize (src : string) : (token * int * int) list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  (* byte offset of the current line's start *)
  let i = ref 0 in
  let col () = !i - !bol + 1 in
  let emit t = toks := (t, !line, col ()) :: !toks in
  let fail msg = raise (Error { line = !line; col = col (); msg }) in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i; bol := !i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then (
      while !i < n && src.[!i] <> '\n' do incr i done)
    else if is_ident_start c then (
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      emit (IDENT (String.sub src !i (!j - !i)));
      i := !j)
    else if is_digit c then (
      let j = ref !i in
      while !j < n && is_digit src.[!j] do incr j done;
      emit (INT (int_of_string (String.sub src !i (!j - !i))));
      i := !j)
    else
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | ":=" -> emit ASSIGN; i := !i + 2
      | "==" -> emit EQEQ; i := !i + 2
      | "!=" -> emit NEQ; i := !i + 2
      | "<=" -> emit LE; i := !i + 2
      | ">=" -> emit GE; i := !i + 2
      | _ -> (
          (match c with
          | ';' -> emit SEMI
          | ',' -> emit COMMA
          | ':' -> emit COLON
          | '.' -> emit DOT
          | '(' -> emit LPAREN
          | ')' -> emit RPAREN
          | '{' -> emit LBRACE
          | '}' -> emit RBRACE
          | '+' -> emit PLUS
          | '-' -> emit MINUS
          | '*' -> emit STAR
          | '<' -> emit LT
          | '>' -> emit GT
          | _ -> fail (Printf.sprintf "unexpected character %C" c));
          incr i)
  done;
  emit EOF;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser state: a mutable cursor over the token list. *)

type state = { mutable toks : (token * int * int) list }

let peek st = match st.toks with (t, _, _) :: _ -> t | [] -> EOF
let pos st = match st.toks with (_, l, c) :: _ -> (l, c) | [] -> (0, 0)
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st msg =
  let line, col = pos st in
  raise
    (Error
       {
         line;
         col;
         msg = Printf.sprintf "%s, got %s" msg (pp_token (peek st));
       })

let expect st t =
  if peek st = t then advance st
  else fail st (Printf.sprintf "expected %s" (pp_token t))

let ident st =
  match peek st with
  | IDENT s -> advance st; s
  | _ -> fail st "expected identifier"

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec parse_atom st : Ast.expr =
  match peek st with
  | INT n -> advance st; Ast.Val n
  | IDENT r -> advance st; Ast.Reg r
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | MINUS -> (
      advance st;
      match peek st with
      | INT n ->
          advance st;
          Ast.Val (-n)
      | _ ->
          let e = parse_atom st in
          Ast.Bin (Ast.Sub, Ast.Val 0, e))
  | _ -> fail st "expected expression"

and parse_term st =
  let lhs = parse_atom st in
  let rec loop lhs =
    match peek st with
    | STAR ->
        advance st;
        loop (Ast.Bin (Ast.Mul, lhs, parse_atom st))
    | _ -> lhs
  in
  loop lhs

and parse_arith st =
  let lhs = parse_term st in
  let rec loop lhs =
    match peek st with
    | PLUS ->
        advance st;
        loop (Ast.Bin (Ast.Add, lhs, parse_term st))
    | MINUS ->
        advance st;
        loop (Ast.Bin (Ast.Sub, lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_expr st =
  let lhs = parse_arith st in
  let cmp op =
    advance st;
    Ast.Bin (op, lhs, parse_arith st)
  in
  match peek st with
  | EQEQ -> cmp Ast.Eq
  | NEQ -> cmp Ast.Ne
  | LT -> cmp Ast.Lt
  | LE -> cmp Ast.Le
  | GT -> cmp Ast.Gt
  | GE -> cmp Ast.Ge
  | _ -> lhs

(* ------------------------------------------------------------------ *)
(* Statements *)

let read_mode st =
  let m = ident st in
  match Modes.read_of_string m with
  | Some m -> m
  | None -> fail st (Printf.sprintf "invalid read mode %S" m)

let write_mode st =
  let m = ident st in
  match Modes.write_of_string m with
  | Some m -> m
  | None -> fail st (Printf.sprintf "invalid write mode %S" m)

let fence_mode st =
  match ident st with
  | "acq" -> Modes.FAcq
  | "rel" -> Modes.FRel
  | "sc" -> Modes.FSc
  | m -> fail st (Printf.sprintf "invalid fence mode %S" m)

type stmt = I of Ast.instr | T of Ast.terminator

let parse_stmt st : stmt =
  match peek st with
  | IDENT "skip" -> advance st; I Ast.Skip
  | IDENT "print" ->
      advance st;
      expect st LPAREN;
      let e = parse_expr st in
      expect st RPAREN;
      I (Ast.Print e)
  | IDENT "fence" ->
      advance st;
      expect st DOT;
      I (Ast.Fence (fence_mode st))
  | IDENT "jmp" ->
      advance st;
      T (Ast.Jmp (ident st))
  | IDENT "be" ->
      advance st;
      let e = parse_expr st in
      expect st COMMA;
      let l1 = ident st in
      expect st COMMA;
      let l2 = ident st in
      T (Ast.Be (e, l1, l2))
  | IDENT "call" ->
      advance st;
      expect st LPAREN;
      let f = ident st in
      expect st COMMA;
      let lret = ident st in
      expect st RPAREN;
      T (Ast.Call (f, lret))
  | IDENT "return" -> advance st; T Ast.Return
  | IDENT lhs -> (
      advance st;
      match peek st with
      | DOT ->
          (* store: var.mode := e *)
          advance st;
          let m = write_mode st in
          expect st ASSIGN;
          let e = parse_expr st in
          I (Ast.Store (lhs, e, m))
      | ASSIGN -> (
          advance st;
          match peek st with
          | IDENT "cas" ->
              advance st;
              expect st DOT;
              let orr = read_mode st in
              expect st DOT;
              let ow = write_mode st in
              expect st LPAREN;
              let x = ident st in
              expect st COMMA;
              let er = parse_expr st in
              expect st COMMA;
              let ew = parse_expr st in
              expect st RPAREN;
              I (Ast.Cas (lhs, x, er, ew, orr, ow))
          | IDENT x
            when (match st.toks with
                 | _ :: (DOT, _, _) :: (IDENT m, _, _) :: _ ->
                     Modes.read_of_string m <> None
                 | _ -> false) ->
              (* load: r := x.mode — lookahead distinguishes it from an
                 assignment whose expression begins with a register. *)
              advance st;
              expect st DOT;
              let m = read_mode st in
              I (Ast.Load (lhs, x, m))
          | _ ->
              let e = parse_expr st in
              I (Ast.Assign (lhs, e)))
      | _ -> fail st "expected ':=' or '.' after identifier")
  | _ -> fail st "expected statement"

(* ------------------------------------------------------------------ *)
(* Blocks, procedures, programs *)

let parse_labeled_blocks st : (Ast.label * Ast.block) list =
  let blocks = ref [] in
  let rec block_body acc =
    let s = parse_stmt st in
    expect st SEMI;
    match s with
    | T term -> { Ast.instrs = List.rev acc; term }
    | I i -> block_body (i :: acc)
  in
  let rec loop () =
    match peek st with
    | RBRACE -> ()
    | IDENT l ->
        advance st;
        expect st COLON;
        let b = block_body [] in
        blocks := (l, b) :: !blocks;
        loop ()
    | _ -> fail st "expected label or '}'"
  in
  loop ();
  List.rev !blocks

let parse_proc st : Ast.fname * Ast.codeheap =
  expect st (IDENT "proc");
  let name = ident st in
  expect st (IDENT "entry");
  let entry = ident st in
  expect st LBRACE;
  let blocks = parse_labeled_blocks st in
  expect st RBRACE;
  (name, Ast.codeheap ~entry blocks)

let parse_program st : Ast.program =
  let atomics =
    if peek st = IDENT "atomics" then (
      advance st;
      let rec loop acc =
        match peek st with
        | SEMI -> advance st; List.rev acc
        | IDENT x -> advance st; loop (x :: acc)
        | _ -> fail st "expected variable name or ';'"
      in
      loop [])
    else []
  in
  expect st (IDENT "threads");
  let threads =
    let rec loop acc =
      match peek st with
      | SEMI -> advance st; List.rev acc
      | IDENT f -> advance st; loop (f :: acc)
      | _ -> fail st "expected function name or ';'"
    in
    loop []
  in
  if threads = [] then fail st "a program needs at least one thread";
  let procs = ref [] in
  while peek st <> EOF do
    procs := parse_proc st :: !procs
  done;
  Ast.program ~atomics ~code:(List.rev !procs) threads

let program_of_string src =
  let st = { toks = tokenize src } in
  let p = parse_program st in
  expect st EOF;
  p

let program_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> program_of_string (really_input_string ic (in_channel_length ic)))

let expr_of_string src =
  let st = { toks = tokenize src } in
  let e = parse_expr st in
  expect st EOF;
  e
