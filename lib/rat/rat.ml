(* Exact rationals with a native fast path and a bignum slow path.

   Small values are kept with |num| <= small_max and den <= small_max
   (2^30), so every cross product the fast paths form — [num * den'],
   and sums of two such products — stays within 62 bits and cannot
   wrap.  The moment a normalized result leaves that range it is
   promoted to {!Bignat}-backed form; values representable small are
   always stored small, so structural equality per constructor
   coincides with numeric equality. *)

module Bignat = Bignat

type big = { sign : int; (* -1 | 1; zero is always small *) bnum : Bignat.t; bden : Bignat.t }

type t =
  | S of { num : int; den : int }  (* normalized, den > 0, both <= 2^30 *)
  | B of big  (* normalized, not representable as S *)

let small_max = 1 lsl 30

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

(* Normalize a big pair (sign, |num|, den); demote when it fits. *)
let norm_big sign n d =
  if Bignat.is_zero d then raise Division_by_zero
  else if Bignat.is_zero n then S { num = 0; den = 1 }
  else
    let g = Bignat.gcd n d in
    let n = Bignat.div_exact n g and d = Bignat.div_exact d g in
    match (Bignat.to_int_opt n, Bignat.to_int_opt d) with
    | Some ni, Some di when ni <= small_max && di <= small_max ->
        S { num = sign * ni; den = di }
    | _ -> B { sign; bnum = n; bden = d }

(* Normalize native ints whose magnitudes are known to be below
   2^61 (products of the small fast path): the gcd runs on native
   ints, only the residue may promote. *)
let norm_ints num den =
  let den, num = if den < 0 then (-den, -num) else (den, num) in
  if num = 0 then S { num = 0; den = 1 }
  else
    let g = gcd_int (abs num) den in
    let num = num / g and den = den / g in
    if abs num <= small_max && den <= small_max then S { num; den }
    else
      B
        {
          sign = (if num < 0 then -1 else 1);
          bnum = Bignat.of_int_abs num;
          bden = Bignat.of_int_abs den;
        }

let make num den =
  if den = 0 then raise Division_by_zero
  else if abs num <= small_max && abs den <= small_max && num <> min_int
          && den <> min_int then norm_ints num den
  else
    let sign = if (num < 0) = (den < 0) then 1 else -1 in
    norm_big sign (Bignat.of_int_abs num) (Bignat.of_int_abs den)

let of_int n = make n 1
let zero = S { num = 0; den = 1 }
let one = S { num = 1; den = 1 }

(* Decompose into (sign, |num|, den) over bignums for slow paths. *)
let parts = function
  | S { num; den } ->
      ( (if num < 0 then -1 else if num = 0 then 0 else 1),
        Bignat.of_int_abs num,
        Bignat.of_int_abs den )
  | B { sign; bnum; bden } -> (sign, bnum, bden)

(* Signed combination s1*m1 + s2*m2 over magnitudes. *)
let signed_add (s1, m1) (s2, m2) =
  if s1 = 0 then (s2, m2)
  else if s2 = 0 then (s1, m1)
  else if s1 = s2 then (s1, Bignat.add m1 m2)
  else
    match Bignat.compare m1 m2 with
    | 0 -> (0, Bignat.zero)
    | c when c > 0 -> (s1, Bignat.sub m1 m2)
    | _ -> (s2, Bignat.sub m2 m1)

let add a b =
  match (a, b) with
  | S a, S b -> norm_ints ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
  | _ ->
      let sa, na, da = parts a and sb, nb, db = parts b in
      let s, n = signed_add (sa, Bignat.mul na db) (sb, Bignat.mul nb da) in
      if s = 0 then zero else norm_big s n (Bignat.mul da db)

let neg = function
  | S { num; den } -> S { num = -num; den }
  | B b -> B { b with sign = -b.sign }

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | S a, S b -> norm_ints (a.num * b.num) (a.den * b.den)
  | _ ->
      let sa, na, da = parts a and sb, nb, db = parts b in
      if sa = 0 || sb = 0 then zero
      else norm_big (sa * sb) (Bignat.mul na nb) (Bignat.mul da db)

let div a b =
  match (a, b) with
  | _, S { num = 0; _ } -> raise Division_by_zero
  | S a, S b -> norm_ints (a.num * b.den) (a.den * b.num)
  | _ ->
      let sa, na, da = parts a and sb, nb, db = parts b in
      if sa = 0 then zero else norm_big (sa * sb) (Bignat.mul na db) (Bignat.mul da nb)

let compare a b =
  match (a, b) with
  | S a, S b ->
      (* |num| and den bounded by 2^30: products fit in 60 bits. *)
      Int.compare (a.num * b.den) (b.num * a.den)
  | _ ->
      let sa, na, da = parts a and sb, nb, db = parts b in
      if sa <> sb then Int.compare sa sb
      else if sa = 0 then 0
      else
        let c = Bignat.compare (Bignat.mul na db) (Bignat.mul nb da) in
        if sa > 0 then c else -c

let equal a b =
  (* Canonical forms: small-representable values are never stored big. *)
  match (a, b) with
  | S a, S b -> a.num = b.num && a.den = b.den
  | B a, B b ->
      a.sign = b.sign && Bignat.equal a.bnum b.bnum && Bignat.equal a.bden b.bden
  | S _, B _ | B _, S _ -> false

let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
let min a b = if le a b then a else b
let max a b = if ge a b then a else b

let two = S { num = 2; den = 1 }
let midpoint a b = div (add a b) two
let succ t = add t one

let is_integer = function
  | S { den; _ } -> den = 1
  | B { bden; _ } -> Bignat.equal bden Bignat.one

let to_float = function
  | S { num; den } -> float_of_int num /. float_of_int den
  | B { sign; bnum; bden } ->
      float_of_int sign *. (Bignat.to_float bnum /. Bignat.to_float bden)

(* SplitMix64-style finalizer, truncated to OCaml's 63-bit ints: a
   real avalanche so that Hashtbl buckets spread even on the dense,
   regular timestamps canonical slotting produces. *)
let mix k =
  let k = k lxor (k lsr 30) in
  let k = k * 0x2545F4914F6CDD1D in
  let k = k lxor (k lsr 27) in
  let k = k * 0x61C8864680B583EB in
  (k lxor (k lsr 31)) land max_int

let hash_combine h k = mix ((h * 0x1FFFFFFFFFFFFFFD) + k + 0x9E3779B9)

let hash = function
  | S { num; den } -> mix ((num * 0x3B9ACA07) lxor (den * 0x5DEECE66D))
  | B { sign; bnum; bden } ->
      hash_combine (hash_combine (Bignat.hash bnum) (Bignat.hash bden)) sign

let pp ppf = function
  | S { num; den } ->
      if den = 1 then Format.fprintf ppf "%d" num
      else Format.fprintf ppf "%d/%d" num den
  | B { sign; bnum; bden } ->
      let s = if sign < 0 then "-" else "" in
      if Bignat.equal bden Bignat.one then
        Format.fprintf ppf "%s%a" s Bignat.pp bnum
      else Format.fprintf ppf "%s%a/%a" s Bignat.pp bnum Bignat.pp bden

let to_string t = Format.asprintf "%a" pp t
