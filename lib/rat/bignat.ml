(* Arbitrary-precision naturals: the overflow escape hatch of {!Rat}.

   Little-endian limbs in base 2^31, no trailing zero limbs, [||] is
   zero.  Limb products fit native 63-bit ints: (2^31-1)^2 + 2*(2^31-1)
   = 2^62 - 1 = max_int, so schoolbook multiplication never wraps. *)

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero = [||]
let one = [| 1 |]
let is_zero a = Array.length a = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative"
  else if n = 0 then zero
  else if n < base then [| n |]
  else
    let rec limbs n = if n = 0 then [] else (n land mask) :: limbs (n lsr limb_bits) in
    Array.of_list (limbs n)

let of_int_abs n =
  (* |min_int| = 2^62 is not representable as a positive [int]. *)
  if n = min_int then [| 0; 0; 1 |] else of_int (abs n)

let to_int_opt a =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl limb_bits))
  | _ -> None (* >= 2^62 > max_int *)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb + 1 in
  let r = Array.make l 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub a b =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Bignat.sub: underflow";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then (
      r.(i) <- d + base;
      borrow := 1)
    else (
      r.(i) <- d;
      borrow := 0)
  done;
  if !borrow <> 0 then invalid_arg "Bignat.sub: underflow";
  normalize r

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land mask;
          carry := t lsr limb_bits;
          incr k
        done
      end
    done;
    normalize r
  end

(* ------------------------------------------------------------------ *)
(* Shifts and bits (for division and gcd) *)

let bit_length a =
  if is_zero a then 0
  else
    let top = a.(Array.length a - 1) in
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    ((Array.length a - 1) * limb_bits) + width top 0

let get_bit a i =
  let limb = i / limb_bits in
  if limb >= Array.length a then 0 else (a.(limb) lsr (i mod limb_bits)) land 1

let shift_right1 a =
  let la = Array.length a in
  if la = 0 then a
  else begin
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let lo = a.(i) lsr 1 in
      let hi = if i + 1 < la then (a.(i + 1) land 1) lsl (limb_bits - 1) else 0 in
      r.(i) <- lo lor hi
    done;
    normalize r
  end

let shift_left a k =
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    normalize r
  end

let is_even a = is_zero a || a.(0) land 1 = 0

(* Binary long division: O(bits(a) * limbs(b)); ample for the rare
   big-rational normalizations this backs. *)
let divmod a b =
  if is_zero b then raise Division_by_zero
  else if compare a b < 0 then (zero, a)
  else begin
    let n = bit_length a in
    let q = Array.make ((n + limb_bits - 1) / limb_bits) 0 in
    let r = ref zero in
    for i = n - 1 downto 0 do
      let shifted = shift_left !r 1 in
      r := if get_bit a i = 1 then add shifted one else shifted;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, !r)
  end

let div_exact a b = fst (divmod a b)

(* Stein's binary gcd: only shifts, subtraction and comparison. *)
let gcd a b =
  if is_zero a then b
  else if is_zero b then a
  else begin
    let a = ref a and b = ref b and shift = ref 0 in
    while is_even !a && is_even !b do
      a := shift_right1 !a;
      b := shift_right1 !b;
      incr shift
    done;
    while is_even !a do
      a := shift_right1 !a
    done;
    (* invariant: a odd *)
    let continue = ref true in
    while !continue do
      while is_even !b do
        b := shift_right1 !b
      done;
      if compare !a !b > 0 then begin
        let t = !a in
        a := !b;
        b := t
      end;
      b := sub !b !a;
      if is_zero !b then continue := false
    done;
    shift_left !a !shift
  end

(* ------------------------------------------------------------------ *)
(* Conversions *)

let hash a =
  Array.fold_left (fun h l -> (h * 0x01000193) lxor l) 0x811c9dc5 a

let to_float a =
  let f = ref 0.0 in
  for i = Array.length a - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int a.(i)
  done;
  !f

let divmod_small a d =
  (* d in (0, 2^31): rem * base + limb <= (d-1) * 2^31 + 2^31 - 1 < 2^62 *)
  if d <= 0 || d >= base then invalid_arg "Bignat.divmod_small";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem * base) + a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

let to_string a =
  if is_zero a then "0"
  else begin
    let chunk = 1_000_000_000 in
    let rec groups a acc =
      if is_zero a then acc
      else
        let q, r = divmod_small a chunk in
        groups q (r :: acc)
    in
    match groups a [] with
    | [] -> "0"
    | g :: rest ->
        String.concat ""
          (string_of_int g :: List.map (Printf.sprintf "%09d") rest)
  end

let pp ppf a = Format.pp_print_string ppf (to_string a)
