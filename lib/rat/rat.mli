(** Exact rational arithmetic for PS2.1 timestamps.

    The promising semantics draws timestamps from a dense total order
    ([Time = Q] in Fig. 8 of the paper): between any two distinct
    timestamps there must be room for another, so that a write can
    always be slotted into a gap between existing messages.

    Representation: a native-int fast path (numerator magnitude and
    denominator bounded by [2^30], so cross products in comparison and
    arithmetic fit 62 bits and cannot wrap) with automatic promotion
    to arbitrary-precision {!Bignat}-backed rationals beyond that
    range.  Deep executions repeatedly halving the same gap double the
    denominator per write, so overflow is a real regime — the earlier
    all-native implementation silently misordered timestamps there,
    which is fatal to a memory model built on a total timestamp order.

    Values are kept in normal form: the denominator is positive,
    [gcd |num| den = 1], and values representable on the fast path are
    always stored there.  Structural equality therefore coincides with
    numeric equality, and values are usable as keys of maps, sets and
    hash tables. *)

module Bignat = Bignat
(** The arbitrary-precision backend, re-exported for direct use and
    testing ([rat.ml] being the library's main module hides siblings). *)

type t

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
(** [of_int n] is the rational [n/1]. *)

val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is {!zero}. *)

val neg : t -> t

val compare : t -> t -> int
(** Numeric comparison; total order.  Never overflows: the fast path
    is product-safe by the representation invariant, mixed and big
    comparisons cross-multiply in arbitrary precision. *)

val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val midpoint : t -> t -> t
(** [midpoint a b] is [(a + b) / 2], strictly between [a] and [b]
    whenever [a <> b].  Used to slot a fresh message into the gap
    between two existing messages. *)

val succ : t -> t
(** [succ t] is [t + 1]; used to place a message after the last
    message of a location, and to build the cap reservation
    [⟨x : (t, t+1]⟩] of the capped memory. *)

val is_integer : t -> bool

val to_float : t -> float
(** Lossy; for diagnostics only. *)

val hash : t -> int
(** Mixing hash consistent with {!equal}: equal values hash equal, and
    the dense, regular timestamps produced by canonical slotting
    avalanche across the full word (SplitMix-style finalizer). *)

val hash_combine : int -> int -> int
(** [hash_combine h k] folds component hash [k] into accumulator [h];
    order-dependent.  The combinator used by the [hash] functions of
    the whole machine-state stack ({!Ps.View}, {!Ps.Message},
    {!Ps.Memory}, {!Ps.Thread}, {!Ps.Machine}). *)

val pp : Format.formatter -> t -> unit
(** Prints [n] for integers and [n/d] otherwise. *)

val to_string : t -> string
