(** Arbitrary-precision natural numbers.

    The overflow escape hatch behind {!Rat}: timestamps produced by
    canonical slotting ({!Rat.midpoint}/{!Rat.succ} chains) grow
    without bound on deep executions, so the rational layer promotes
    to these bignums the moment a numerator or denominator leaves the
    native fast-path range.  Pure OCaml (no [Zarith] dependency):
    little-endian limbs in base [2^31], schoolbook arithmetic, binary
    long division and Stein's gcd — tiny-input performance is
    irrelevant because {!Rat} only reaches for this module off the
    fast path. *)

type t
(** A natural number.  Structural equality coincides with numeric
    equality (no trailing zero limbs). *)

val zero : t
val one : t
val is_zero : t -> bool

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val of_int_abs : int -> t
(** Magnitude of any [int], [min_int] included. *)

val to_int_opt : t -> int option
(** [Some n] iff the value fits a native [int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division: [a = q*b + r] with [0 <= r < b].
    @raise Division_by_zero if the divisor is zero. *)

val div_exact : t -> t -> t
(** Quotient of {!divmod} (intended for known-exact divisions). *)

val gcd : t -> t -> t

val shift_left : t -> int -> t
val shift_right1 : t -> t
val is_even : t -> bool
val bit_length : t -> int

val hash : t -> int
val to_float : t -> float

val to_string : t -> string
(** Decimal. *)

val pp : Format.formatter -> t -> unit
