(** Thread states and the PS2.1 thread-step relation
    [ι ⊢ (TS, M) --te--> (TS', M')] (Sec. 3).

    A thread state [TS = (σ, V, P)] holds the local state, the thread
    view and the promise set.  Following footnote 1 of the paper (and
    its Coq artifact), we also model fences; this adds two auxiliary
    views: [vacq] accumulates the message views observed by relaxed
    reads (an acquire fence folds it into [V]), and [vrel] is the view
    frozen by the last release fence (relaxed writes stamp it on their
    messages).  Programs without fences never move either away from
    [V⊥]/[⊥], and the state degenerates to the paper's [(σ, V, P)].

    [steps] enumerates every possible next non-promise step — reads
    enumerate readable messages, writes enumerate canonical slots and
    fulfillable promises (see {!Memory} on why this enumeration is
    finite and complete).  Promise and reservation steps are enumerated
    separately so that callers (the machines, certification) control
    where they are allowed. *)

type ts = {
  local : Local.t;
  view : View.t;
  vacq : View.t;  (** accumulated acquire view (fence support) *)
  vrel : View.t;  (** view frozen at the last release fence *)
  vrel_loc : View.t Lang.Ast.VarMap.t;
      (** per-location release views (release sequences): a release
          write to [x] records its message view here, and later
          relaxed writes to [x] carry it; updates additionally inherit
          the view of the message they read from, extending release
          sequences through RMW chains *)
  prm : Message.t list;  (** the promise set [P], sorted *)
}

val init : Lang.Ast.code -> Lang.Ast.fname -> ts option
(** Initial thread state [((σ, V⊥, ∅))] for a thread running [f]. *)

val compare : ts -> ts -> int
val equal : ts -> ts -> bool

val hash : ts -> int
(** Consistent with {!equal}; mixes the local state, all views and
    the promise set. *)

val pp : Format.formatter -> ts -> unit

val concrete_promises : ts -> Message.t list
val has_promise_on : Lang.Ast.var -> ts -> bool

val is_terminal : ts -> bool
(** Finished and no outstanding concrete promise. *)

type step = { event : Event.te; ts : ts; mem : Memory.t }

val steps : code:Lang.Ast.code -> ts -> Memory.t -> step list
(** All non-[PRC] steps: local computation, jumps, reads, writes
    (fresh and promise-fulfilling), CAS, fences, output. *)

val promise_steps :
  candidates:(Lang.Ast.var * Lang.Ast.value) list ->
  atomics:Lang.Ast.VarSet.t ->
  ts ->
  Memory.t ->
  step list
(** Promise steps for the candidate location/value pairs.  Only
    non-atomic and relaxed writes can be promised (Sec. 3), i.e.
    promises carry the bottom message view; release writes are never
    promisable. *)

val reserve_steps : ts -> Memory.t -> step list
(** Reservations attached behind each concrete message. *)

val cancel_steps : ts -> Memory.t -> step list
(** Cancellation of each owned reservation. *)

val writes_in_code : code:Lang.Ast.code -> ts -> (Lang.Ast.var * Lang.Ast.value) list
(** Syntactic over-approximation helper for promise candidates: the
    [(x, v)] pairs of store instructions with constant right-hand sides
    reachable from the thread's current position (callees included).
    The explorer combines this with semantic candidates gathered from
    certification runs. *)
