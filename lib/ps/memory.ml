module VarMap = Lang.Ast.VarMap

(* Messages of one location, sorted by "to"-timestamp ascending. *)
type t = Message.t list VarMap.t

let init vars =
  List.fold_left
    (fun m x -> VarMap.add x [ Message.init x ] m)
    VarMap.empty vars

let vars m = List.map fst (VarMap.bindings m)
let per_loc x m = match VarMap.find_opt x m with Some l -> l | None -> []
let concrete x m = List.filter Message.is_concrete (per_loc x m)
(* Linear: the previous [acc @ l] fold re-copied the accumulator per
   location (quadratic in the number of locations). *)
let messages m = List.concat_map snd (VarMap.bindings m)

let find x ts m =
  List.find_opt (fun mg -> Rat.equal (Message.to_ mg) ts) (per_loc x m)

let contains mg m =
  List.exists (fun mg' -> Message.equal mg mg') (per_loc (Message.var mg) m)

let rec insert_sorted mg = function
  | [] -> Ok [ mg ]
  | mg' :: rest ->
      if Message.overlaps mg mg' then Error mg'
      else if Rat.lt (Message.to_ mg) (Message.to_ mg') then
        (* Equal "to"-timestamps can only happen for the zero-width
           initialization message against itself; reject as overlap. *)
        if Rat.equal (Message.to_ mg) (Message.to_ mg') then Error mg'
        else Ok (mg :: mg' :: rest)
      else if Rat.equal (Message.to_ mg) (Message.to_ mg') then Error mg'
      else
        match insert_sorted mg rest with
        | Ok rest' -> Ok (mg' :: rest')
        | Error e -> Error e

let add mg m =
  let x = Message.var mg in
  let existing =
    match VarMap.find_opt x m with
    | Some l -> l
    | None -> [ Message.init x ] (* implicit initialization *)
  in
  match insert_sorted mg existing with
  | Ok l -> Ok (VarMap.add x l m)
  | Error e -> Error e

let add_exn mg m =
  match add mg m with
  | Ok m -> m
  | Error clash ->
      invalid_arg
        (Format.asprintf "Memory.add_exn: %a overlaps %a" Message.pp mg
           Message.pp clash)

let remove mg m =
  let x = Message.var mg in
  let l = List.filter (fun mg' -> not (Message.equal mg mg')) (per_loc x m) in
  VarMap.add x l m

let readable mode x view m =
  let min = View.read_ts mode x view in
  List.filter
    (fun mg -> Message.is_concrete mg && Rat.ge (Message.to_ mg) min)
    (per_loc x m)

let last_ts x m =
  match List.rev (per_loc x m) with
  | [] -> Rat.zero
  | mg :: _ -> Message.to_ mg

(* A detached interval strictly inside the gap (a, b): occupy the
   middle third, leaving room on both sides. *)
let detached a b =
  let third = Rat.div (Rat.sub b a) (Rat.of_int 3) in
  (Rat.add a third, Rat.sub b third)

let write_slots x ~min m =
  let msgs = per_loc x m in
  let rec gaps = function
    | m1 :: (m2 :: _ as rest) ->
        let a = Message.to_ m1 and b = Message.from_ m2 in
        let acc = gaps rest in
        if Rat.lt a b then (a, b) :: acc else acc
    | _ -> []
  in
  let inner =
    List.filter_map
      (fun (a, b) ->
        let f, t = detached a b in
        if Rat.gt t min then Some (f, t) else None)
      (gaps msgs)
  in
  let after =
    let last = last_ts x m in
    let base = Rat.max last min in
    (Rat.succ base, Rat.succ (Rat.succ base))
  in
  inner @ [ after ]

let attach_slot x ~after m =
  let msgs = per_loc x m in
  (* Find the next occupied "from" strictly beyond [after]; everything
     in between must be free. *)
  let blocked =
    List.exists
      (fun mg ->
        Rat.lt (Message.from_ mg) after
        && Rat.gt (Message.to_ mg) after
        && not (Rat.equal (Message.from_ mg) (Message.to_ mg)))
      msgs
  in
  if blocked then None
  else
    let next_from =
      List.fold_left
        (fun acc mg ->
          let f = Message.from_ mg in
          if Rat.ge f after && not (Rat.equal (Message.from_ mg) (Message.to_ mg)) then
            match acc with
            | Some best -> if Rat.lt f best then Some f else acc
            | None -> Some f
          else acc)
        None msgs
    in
    match next_from with
    | Some f when Rat.equal f after -> None (* adjacent space taken *)
    | Some f -> Some (after, Rat.midpoint after f)
    | None -> Some (after, Rat.succ after)

let cap m =
  VarMap.mapi
    (fun x msgs ->
      let rec fill = function
        | m1 :: (m2 :: _ as rest) ->
            let a = Message.to_ m1 and b = Message.from_ m2 in
            if Rat.lt a b then
              m1 :: Message.rsv ~var:x ~from_:a ~to_:b :: fill rest
            else m1 :: fill rest
        | l -> l
      in
      let filled = fill msgs in
      match List.rev filled with
      | [] -> filled
      | last :: _ ->
          let t = Message.to_ last in
          filled @ [ Message.rsv ~var:x ~from_:t ~to_:(Rat.succ t) ])
    m

let equal a b = VarMap.equal (List.equal Message.equal) a b
let compare a b = VarMap.compare (List.compare Message.compare) a b

let hash m =
  VarMap.fold
    (fun x l h ->
      List.fold_left
        (fun h mg -> Rat.hash_combine h (Message.hash mg))
        (Rat.hash_combine h (Hashtbl.hash x))
        l)
    m 0x4d454d
let fold f m acc = VarMap.fold (fun _ l acc -> List.fold_right f l acc) m acc

let pp ppf m =
  VarMap.iter
    (fun x l ->
      Format.fprintf ppf "@[<h>%s: %a@]@\n" x
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           Message.pp)
        l)
    m

(* Memory deltas, for the replay debugger: which messages one step
   added (fresh writes, promises, reservations) or removed (cancels).
   Fulfillment moves a message from a thread's promise set, not out of
   memory, so it shows up as a thread-state delta instead. *)
let added ~prev m =
  List.sort Message.compare
    (fold (fun mg acc -> if contains mg prev then acc else mg :: acc) m [])

let removed ~prev m = added ~prev:m prev

let pp_delta ~prev ppf m =
  let a = added ~prev m and r = removed ~prev m in
  if a = [] && r = [] then Format.pp_print_string ppf "(unchanged)"
  else
    let signed sign ppf mg = Format.fprintf ppf "%s%a" sign Message.pp mg in
    Format.fprintf ppf "@[<h>%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         (fun ppf (sign, mg) -> signed sign ppf mg))
      (List.map (fun mg -> ("+", mg)) a @ List.map (fun mg -> ("-", mg)) r)
