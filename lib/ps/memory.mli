(** The global memory [M]: all historical writes as time-stamped
    messages, per location (Fig. 8), with the operations the thread
    steps need — readable-message lookup, disjoint insertion, gap
    ("slot") enumeration for fresh writes, and the capped memory
    [M̂] used by promise certification (Sec. 3).

    Representation: a map from location to its messages sorted by
    "to"-timestamp.  Invariant: intervals of one location are pairwise
    disjoint ({!Message.overlaps}); every location present carries its
    initialization message [⟨x:0@(0,0],V⊥⟩].

    {2 Canonical slotting}

    Timestamps are dense, so "choose a fresh disjoint interval" has
    infinitely many solutions.  Only the relative order of messages
    and exact endpoint adjacency (for CAS/reservations) are observable,
    so {!write_slots} enumerates one canonical representative per
    distinguishable placement: a detached interval strictly inside
    every gap (leaving room on both sides for later writes, CAS and
    reservations of other threads) and one after the last message.
    Exact adjacency, which CAS and reservations require, is provided
    separately by {!attach_slot}.  This finitization is what makes
    bounded-exhaustive exploration of PS2.1 possible (DESIGN.md,
    "Canonical timestamp slotting"). *)

type t

val init : Lang.Ast.var list -> t
(** Memory [M0] holding the initialization message of each listed
    location. *)

val vars : t -> Lang.Ast.var list
val messages : t -> Message.t list

val per_loc : Lang.Ast.var -> t -> Message.t list
(** Messages of [x] sorted by "to"-timestamp (empty if unknown). *)

val concrete : Lang.Ast.var -> t -> Message.t list

val find : Lang.Ast.var -> Rat.t -> t -> Message.t option
(** Message of [x] with the given "to"-timestamp. *)

val contains : Message.t -> t -> bool

val add : Message.t -> t -> (t, Message.t) result
(** [add m mem] inserts [m]; [Error m'] if [m] overlaps existing
    [m'].  Locations never seen before are implicitly initialized
    first, so that reads of a location always find at least the
    initialization message. *)

val add_exn : Message.t -> t -> t
val remove : Message.t -> t -> t

val readable : Lang.Modes.read -> Lang.Ast.var -> View.t -> t -> Message.t list
(** Concrete messages of [x] a thread with the given view may read:
    "to"-timestamp at least [View.read_ts mode x view]. *)

val last_ts : Lang.Ast.var -> t -> Rat.t
(** Greatest "to"-timestamp of [x] (0 if only initialization). *)

val write_slots : Lang.Ast.var -> min:Rat.t -> t -> (Rat.t * Rat.t) list
(** Canonical [(from, to]] placements for a fresh write of [x] with
    ["to" > min] (the writer's view constraint): one detached interval
    per gap plus one beyond the last message. *)

val attach_slot : Lang.Ast.var -> after:Rat.t -> t -> (Rat.t * Rat.t) option
(** The canonical placement whose "from" is exactly [after] — as
    required for the write part of a successful CAS reading the message
    ending at [after], and for reservations.  [None] if the adjacent
    space is occupied. *)

val cap : t -> t
(** The capped memory [M̂]: every gap between two messages of the same
    location is filled by a reservation, and a cap reservation
    [⟨x:(t,t+1]⟩] is appended after the last message of every
    location. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Consistent with {!equal}; folds locations and their message lists
    in key order.  Linear in the number of messages — the basis of the
    hashed state memoization in {!Explore}. *)

val fold : (Message.t -> 'a -> 'a) -> t -> 'a -> 'a
val pp : Format.formatter -> t -> unit

val added : prev:t -> t -> Message.t list
(** Messages present in the new memory but not in [prev], sorted —
    the write/promise/reservation a single step performed.  (Promise
    fulfillment leaves memory unchanged: the message merely leaves the
    thread's promise set.) *)

val removed : prev:t -> t -> Message.t list
(** Messages of [prev] no longer present (reservation cancels). *)

val pp_delta : prev:t -> Format.formatter -> t -> unit
(** [+⟨msg⟩ -⟨rsv⟩] rendering of {!added}/{!removed}
    (["(unchanged)"] when both are empty). *)
