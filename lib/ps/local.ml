module RegMap = Lang.Ast.VarMap

type frame = { fn : Lang.Ast.fname; ret : Lang.Ast.label }

type pos =
  | Running of {
      fn : Lang.Ast.fname;
      rest : Lang.Ast.instr list;
      term : Lang.Ast.terminator;
    }
  | Finished

type t = {
  regs : Lang.Ast.value RegMap.t;
  pos : pos;
  stack : frame list;
}

let enter (code : Lang.Ast.code) fn l =
  match Lang.Ast.FnameMap.find_opt fn code with
  | None -> None
  | Some ch -> (
      match Lang.Ast.LabelMap.find_opt l ch.Lang.Ast.blocks with
      | None -> None
      | Some b ->
          Some (Running { fn; rest = b.Lang.Ast.instrs; term = b.Lang.Ast.term }))

let init code fn =
  match Lang.Ast.FnameMap.find_opt fn code with
  | None -> None
  | Some ch -> (
      match enter code fn ch.Lang.Ast.entry with
      | None -> None
      | Some pos -> Some { regs = RegMap.empty; pos; stack = [] })

let reg r t = match RegMap.find_opt r t.regs with Some v -> v | None -> 0

let set_reg r v t =
  (* Keep the map sparse so structural equality is extensional. *)
  let regs = if v = 0 then RegMap.remove r t.regs else RegMap.add r v t.regs in
  { t with regs }

let eval t e = Lang.Expr.eval (fun r -> reg r t) e
let is_finished t = t.pos = Finished

type next =
  | NInstr of Lang.Ast.instr
  | NTerm of Lang.Ast.terminator
  | NDone

let nxt t =
  match t.pos with
  | Finished -> NDone
  | Running { rest = i :: _; _ } -> NInstr i
  | Running { rest = []; term; _ } -> NTerm term

let goto code fn l t =
  match enter code fn l with
  | None -> None
  | Some pos -> Some { t with pos }

let step_over t =
  match t.pos with
  | Running ({ rest = _ :: rest; _ } as r) ->
      { t with pos = Running { r with rest } }
  | _ -> invalid_arg "Local.step_over: no pending instruction"

let compare (a : t) (b : t) =
  (* [regs] is a map: compare it with the map's own canonical order,
     never with polymorphic compare (equal maps may have different
     internal tree shapes).  [pos] and [stack] are plain data. *)
  let c = RegMap.compare Int.compare a.regs b.regs in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.pos b.pos in
    if c <> 0 then c else Stdlib.compare a.stack b.stack

let equal a b = compare a b = 0

let hash (t : t) =
  (* [regs] is a map: fold bindings in key order (equal maps may have
     different tree shapes).  [pos] and [stack] are plain data, where
     structural equality licenses the structural [Hashtbl.hash]. *)
  let regs =
    RegMap.fold
      (fun r v h -> Rat.hash_combine (Rat.hash_combine h (Hashtbl.hash r)) v)
      t.regs 0x10ca1
  in
  Rat.hash_combine
    (Rat.hash_combine regs (Hashtbl.hash t.pos))
    (Hashtbl.hash t.stack)

let pp ppf t =
  let pos ppf = function
    | Finished -> Format.pp_print_string ppf "finished"
    | Running { fn; rest; term } ->
        Format.fprintf ppf "%s[+%d instrs; %a]" fn (List.length rest)
          Lang.Pp.pp_terminator term
  in
  Format.fprintf ppf "{regs=%a; pos=%a; depth=%d}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf (r, v) -> Format.fprintf ppf "%s=%d" r v))
    (RegMap.bindings t.regs) pos t.pos (List.length t.stack)
