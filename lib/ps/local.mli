(** Thread-local program state [σ]: register file, current control
    position and call stack.

    Control is block-granular: a running thread holds the function it
    executes, the instructions remaining in the current block and the
    block's terminator.  [Call (f, lret)] pushes the frame [(fn, lret)]
    and enters [f]'s entry block; [Return] pops a frame, or finishes
    the thread when the stack is empty. *)

type frame = { fn : Lang.Ast.fname; ret : Lang.Ast.label }

type pos =
  | Running of {
      fn : Lang.Ast.fname;
      rest : Lang.Ast.instr list;
      term : Lang.Ast.terminator;
    }
  | Finished

type t = {
  regs : Lang.Ast.value Lang.Ast.VarMap.t;  (** absent registers are 0 *)
  pos : pos;
  stack : frame list;
}

val init : Lang.Ast.code -> Lang.Ast.fname -> t option
(** [Init(π, f)]: start at [f]'s entry block; [None] if [f] or its
    entry block is missing. *)

val reg : Lang.Ast.reg -> t -> Lang.Ast.value
val set_reg : Lang.Ast.reg -> Lang.Ast.value -> t -> t
val eval : t -> Lang.Ast.expr -> Lang.Ast.value
val is_finished : t -> bool

(** The next operation of the thread, as needed by the race check
    [nxt(σ) = W(na, x, _)] of Fig. 11 and by the non-preemptive
    machine. *)
type next =
  | NInstr of Lang.Ast.instr
  | NTerm of Lang.Ast.terminator
  | NDone

val nxt : t -> next

val goto : Lang.Ast.code -> Lang.Ast.fname -> Lang.Ast.label -> t -> t option
(** Enter the block labelled [l] of function [fn]; [None] if it does
    not exist (the machine treats that as abort; {!Lang.Wf} rules it
    out statically). *)

val step_over : t -> t
(** Drop the instruction at the head of the current block.
    @raise Invalid_argument if the block has no pending instruction. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
