type t =
  | Msg of {
      var : Lang.Ast.var;
      value : Lang.Ast.value;
      from_ : Rat.t;
      to_ : Rat.t;
      view : View.t;
    }
  | Rsv of { var : Lang.Ast.var; from_ : Rat.t; to_ : Rat.t }

let msg ~var ~value ~from_ ~to_ ~view = Msg { var; value; from_; to_; view }
let rsv ~var ~from_ ~to_ = Rsv { var; from_; to_ }

let init x =
  Msg { var = x; value = 0; from_ = Rat.zero; to_ = Rat.zero; view = View.bot }

let var = function Msg m -> m.var | Rsv r -> r.var
let from_ = function Msg m -> m.from_ | Rsv r -> r.from_
let to_ = function Msg m -> m.to_ | Rsv r -> r.to_
let value = function Msg m -> Some m.value | Rsv _ -> None
let view = function Msg m -> Some m.view | Rsv _ -> None
let is_concrete = function Msg _ -> true | Rsv _ -> false
let is_reservation = function Rsv _ -> true | Msg _ -> false

let overlaps a b =
  String.equal (var a) (var b)
  && (not (Rat.equal (from_ a) (to_ a)))
  && (not (Rat.equal (from_ b) (to_ b)))
  && Rat.lt (from_ a) (to_ b)
  && Rat.lt (from_ b) (to_ a)

let compare (a : t) (b : t) =
  let c = String.compare (var a) (var b) in
  if c <> 0 then c
  else
    let c = Rat.compare (to_ a) (to_ b) in
    if c <> 0 then c
    else
      let c = Rat.compare (from_ a) (from_ b) in
      if c <> 0 then c
      else
        (* Views contain maps; compare canonically, never with
           polymorphic compare. *)
        match (a, b) with
        | Msg ma, Msg mb ->
            let c = Int.compare ma.value mb.value in
            if c <> 0 then c else View.compare ma.view mb.view
        | Rsv _, Rsv _ -> 0
        | Msg _, Rsv _ -> -1
        | Rsv _, Msg _ -> 1

let equal a b = compare a b = 0

let hash m =
  let ( ++ ) = Rat.hash_combine in
  match m with
  | Msg m ->
      Hashtbl.hash m.var ++ m.value ++ Rat.hash m.from_ ++ Rat.hash m.to_
      ++ View.hash m.view
  | Rsv r -> 0x5e5e ++ Hashtbl.hash r.var ++ Rat.hash r.from_ ++ Rat.hash r.to_

let pp ppf = function
  | Msg m ->
      Format.fprintf ppf "<%s:%d@(%a,%a] %a>" m.var m.value Rat.pp m.from_
        Rat.pp m.to_ View.pp m.view
  | Rsv r ->
      Format.fprintf ppf "<%s:(%a,%a]>" r.var Rat.pp r.from_ Rat.pp r.to_
