module TidMap = Map.Make (Int)

type world = {
  tp : Thread.ts TidMap.t;
  cur : int;
  mem : Memory.t;
}

let init (p : Lang.Ast.program) =
  let vars = Lang.Ast.VarSet.elements (Lang.Cfg.vars_of_program p) in
  let mem = Memory.init vars in
  let rec build tid acc = function
    | [] -> Ok acc
    | f :: rest -> (
        match Thread.init p.Lang.Ast.code f with
        | Some ts -> build (tid + 1) (TidMap.add tid ts acc) rest
        | None -> Error (Printf.sprintf "thread function %s has no body" f))
  in
  match build 0 TidMap.empty p.Lang.Ast.threads with
  | Ok tp -> Ok { tp; cur = 0; mem }
  | Error e -> Error e

let tids w = List.map fst (TidMap.bindings w.tp)
let cur_ts w = TidMap.find w.cur w.tp
let set_cur_ts w ts mem = { w with tp = TidMap.add w.cur ts w.tp; mem }
let switch w t = { w with cur = t }

let all_finished w =
  TidMap.for_all (fun _ ts -> Local.is_finished ts.Thread.local) w.tp

let terminal w = TidMap.for_all (fun _ ts -> Thread.is_terminal ts) w.tp

let compare a b =
  let c = TidMap.compare Thread.compare a.tp b.tp in
  if c <> 0 then c
  else
    let c = Int.compare a.cur b.cur in
    if c <> 0 then c else Memory.compare a.mem b.mem

let equal a b = compare a b = 0

let hash w =
  let tp =
    TidMap.fold
      (fun tid ts h -> Rat.hash_combine (Rat.hash_combine h tid) (Thread.hash ts))
      w.tp 0x3a3a
  in
  Rat.hash_combine (Rat.hash_combine tp w.cur) (Memory.hash w.mem)

let pp ppf w =
  Format.fprintf ppf "@[<v>cur: t%d@ mem:@ %a" w.cur Memory.pp w.mem;
  TidMap.iter
    (fun tid ts -> Format.fprintf ppf "t%d: %a@ " tid Thread.pp ts)
    w.tp;
  Format.fprintf ppf "@]"
