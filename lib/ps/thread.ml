open Lang

type ts = {
  local : Local.t;
  view : View.t;
  vacq : View.t;
  vrel : View.t;
  vrel_loc : View.t Ast.VarMap.t;
      (* per-location release views: set by a release write to x,
         carried by subsequent relaxed writes to x — the release
         sequences of PS.  Sparse; absent locations are ⊥, and ⊥ is
         never stored so that comparison stays extensional. *)
  prm : Message.t list;
}

let init code fn =
  match Local.init code fn with
  | None -> None
  | Some local ->
      Some
        {
          local;
          view = View.bot;
          vacq = View.bot;
          vrel = View.bot;
          vrel_loc = Ast.VarMap.empty;
          prm = [];
        }

let vrel_of x t =
  match Ast.VarMap.find_opt x t.vrel_loc with
  | Some v -> View.join t.vrel v
  | None -> t.vrel

let set_vrel_loc x v t =
  if View.equal v View.bot then t
  else { t with vrel_loc = Ast.VarMap.add x v t.vrel_loc }

let compare (a : ts) (b : ts) =
  let ( <?> ) c next = if c <> 0 then c else next () in
  Local.compare a.local b.local <?> fun () ->
  View.compare a.view b.view <?> fun () ->
  View.compare a.vacq b.vacq <?> fun () ->
  View.compare a.vrel b.vrel <?> fun () ->
  Ast.VarMap.compare View.compare a.vrel_loc b.vrel_loc <?> fun () ->
  List.compare Message.compare a.prm b.prm

let equal a b = compare a b = 0

let hash (t : ts) =
  let ( ++ ) = Rat.hash_combine in
  let vrel_loc =
    Ast.VarMap.fold
      (fun x v h -> h ++ Hashtbl.hash x ++ View.hash v)
      t.vrel_loc 0x7e1
  in
  let prm = List.fold_left (fun h m -> h ++ Message.hash m) 0x975 t.prm in
  Local.hash t.local ++ View.hash t.view ++ View.hash t.vacq
  ++ View.hash t.vrel ++ vrel_loc ++ prm

let pp ppf t =
  Format.fprintf ppf "@[<v>local: %a@ view: %a@ promises: %a@]" Local.pp
    t.local View.pp t.view
    (Format.pp_print_list Message.pp)
    t.prm

let concrete_promises t = List.filter Message.is_concrete t.prm

let has_promise_on x t =
  List.exists
    (fun m -> Message.is_concrete m && String.equal (Message.var m) x)
    t.prm

let is_terminal t = Local.is_finished t.local && concrete_promises t = []

type step = { event : Event.te; ts : ts; mem : Memory.t }

let add_prm m t = { t with prm = List.sort Message.compare (m :: t.prm) }
let remove_prm m t =
  { t with prm = List.filter (fun m' -> not (Message.equal m m')) t.prm }

(* ------------------------------------------------------------------ *)
(* Reads *)

let read_results mode x (t : ts) mem =
  List.filter_map
    (fun m ->
      match (Message.value m, Message.view m) with
      | Some v, Some mview ->
          let view = View.observe_read mode x (Message.to_ m) t.view in
          let t' =
            match mode with
            | Modes.Na -> { t with view }
            | Modes.Rlx ->
                { t with view; vacq = View.join t.vacq mview }
            | Modes.Acq ->
                {
                  t with
                  view = View.join view mview;
                  vacq = View.join t.vacq mview;
                }
          in
          Some (v, Message.to_ m, t')
      | _ -> None)
    (Memory.readable mode x t.view mem)

(* ------------------------------------------------------------------ *)
(* Writes *)

(* The message view a fresh write would carry.  Non-atomic writes are
   non-synchronizing: bottom view.  Relaxed writes carry the location's
   release view — set by an earlier release write to the same location
   (release sequences) or by a release fence.  Release writes carry the
   thread's view updated with the write itself. *)
let fresh_msg_view mode x to_ (t : ts) =
  match mode with
  | Modes.WNa -> View.bot
  | Modes.WRlx -> vrel_of x t
  | Modes.WRel -> View.observe_write x to_ t.view

let write_results mode x v (t : ts) mem =
  let min = View.TimeMap.get x t.view.View.rlx in
  (* A release write requires all promises on x to have been fulfilled
     (PS: release writes cannot overtake the thread's own promises). *)
  if mode = Modes.WRel && has_promise_on x t then []
  else
    let fresh =
      List.map
        (fun (f, to_) ->
          let view = View.observe_write x to_ t.view in
          let mview = fresh_msg_view mode x to_ t in
          let msg = Message.msg ~var:x ~value:v ~from_:f ~to_ ~view:mview in
          let mem' = Memory.add_exn msg mem in
          let t' = { t with view } in
          (* A release write opens a release sequence on x: later
             relaxed writes to x carry its view. *)
          let t' =
            if mode = Modes.WRel then set_vrel_loc x mview t' else t'
          in
          (t', mem'))
        (Memory.write_slots x ~min mem)
    in
    let fulfill =
      if mode = Modes.WRel then []
      else
        List.filter_map
          (fun p ->
            match (Message.value p, Message.view p) with
            | Some pv, Some pview
              when String.equal (Message.var p) x
                   && pv = v
                   && Rat.gt (Message.to_ p) min
                   && View.equal pview (fresh_msg_view mode x (Message.to_ p) t)
              ->
                let view = View.observe_write x (Message.to_ p) t.view in
                Some (remove_prm p { t with view }, mem)
            | _ -> None)
          (concrete_promises t)
    in
    fresh @ fulfill

(* ------------------------------------------------------------------ *)
(* Instruction dispatch *)

let steps ~code (t : ts) mem : step list =
  let tau local = [ { event = Event.Tau; ts = { t with local }; mem } ] in
  match Local.nxt t.local with
  | Local.NDone -> []
  | Local.NTerm term -> (
      match term with
      | Ast.Jmp l -> (
          match
            Local.goto code
              (match t.local.Local.pos with
              | Local.Running { fn; _ } -> fn
              | Local.Finished -> assert false)
              l t.local
          with
          | Some local -> tau local
          | None -> [])
      | Ast.Be (e, l1, l2) -> (
          let target = if Local.eval t.local e <> 0 then l1 else l2 in
          match
            Local.goto code
              (match t.local.Local.pos with
              | Local.Running { fn; _ } -> fn
              | Local.Finished -> assert false)
              target t.local
          with
          | Some local -> tau local
          | None -> [])
      | Ast.Call (f, lret) -> (
          let caller =
            match t.local.Local.pos with
            | Local.Running { fn; _ } -> fn
            | Local.Finished -> assert false
          in
          let frame = { Local.fn = caller; ret = lret } in
          match
            Local.goto code f
              (match Ast.FnameMap.find_opt f code with
              | Some ch -> ch.Ast.entry
              | None -> "?")
              t.local
          with
          | Some local -> tau { local with Local.stack = frame :: local.Local.stack }
          | None -> [])
      | Ast.Return -> (
          match t.local.Local.stack with
          | [] -> tau { t.local with Local.pos = Local.Finished }
          | frame :: stack -> (
              match
                Local.goto code frame.Local.fn frame.Local.ret
                  { t.local with Local.stack = stack }
              with
              | Some local -> tau local
              | None -> [])))
  | Local.NInstr i -> (
      let local = Local.step_over t.local in
      match i with
      | Ast.Skip -> tau local
      | Ast.Assign (r, e) ->
          let v = Local.eval t.local e in
          tau (Local.set_reg r v local)
      | Ast.Print e ->
          let v = Local.eval t.local e in
          [ { event = Event.Out v; ts = { t with local }; mem } ]
      | Ast.Fence f -> (
          match f with
          | Modes.FAcq ->
              [
                {
                  event = Event.Fnc f;
                  ts = { t with local; view = View.join t.view t.vacq };
                  mem;
                };
              ]
          | Modes.FRel ->
              if concrete_promises t <> [] then []
              else
                [
                  {
                    event = Event.Fnc f;
                    ts = { t with local; vrel = t.view };
                    mem;
                  };
                ]
          | Modes.FSc ->
              if concrete_promises t <> [] then []
              else
                let view = View.join t.view t.vacq in
                [
                  {
                    event = Event.Fnc f;
                    ts = { t with local; view; vrel = view };
                    mem;
                  };
                ])
      | Ast.Load (r, x, mode) ->
          List.map
            (fun (v, _ts, t') ->
              {
                event = Event.Rd (mode, x, v);
                ts = { t' with local = Local.set_reg r v local };
                mem;
              })
            (read_results mode x t mem)
      | Ast.Store (x, e, mode) ->
          let v = Local.eval t.local e in
          List.map
            (fun (t', mem') ->
              {
                event = Event.Wr (mode, x, v);
                ts = { t' with local };
                mem = mem';
              })
            (write_results mode x v t mem)
      | Ast.Cas (r, x, er, ew, rmode, wmode) ->
          let ver = Local.eval t.local er in
          let vew = Local.eval t.local ew in
          List.concat_map
            (fun (v, mts, t') ->
              if v <> ver then
                (* CAS failure: behaves as a read of mode [rmode]. *)
                [
                  {
                    event = Event.Rd (rmode, x, v);
                    ts = { t' with local = Local.set_reg r 0 local };
                    mem;
                  };
                ]
              else if wmode = Modes.WRel && has_promise_on x t then []
              else
                match Memory.attach_slot x ~after:mts mem with
                | None -> []
                | Some (f, to_) ->
                    let view = View.observe_write x to_ t'.view in
                    let t'' = { t' with view } in
                    (* An update inherits the view of the message it
                       reads from: release sequences extend through
                       RMW chains in PS. *)
                    let read_view =
                      match Memory.find x mts mem with
                      | Some m -> (
                          match Message.view m with
                          | Some mv -> mv
                          | None -> View.bot)
                      | None -> View.bot
                    in
                    let mview =
                      View.join (fresh_msg_view wmode x to_ t'') read_view
                    in
                    let msg =
                      Message.msg ~var:x ~value:vew ~from_:f ~to_ ~view:mview
                    in
                    let mem' = Memory.add_exn msg mem in
                    let t'' =
                      if wmode = Modes.WRel then set_vrel_loc x mview t''
                      else t''
                    in
                    [
                      {
                        event = Event.Upd (rmode, wmode, x, v, vew);
                        ts = { t'' with local = Local.set_reg r 1 local };
                        mem = mem';
                      };
                    ])
            (read_results rmode x t mem))

(* ------------------------------------------------------------------ *)
(* Promises, reservations, cancels *)

let promise_steps ~candidates ~atomics (t : ts) mem : step list =
  if Local.is_finished t.local then []
  else
    List.concat_map
      (fun (x, v) ->
        (* Promised messages carry the bottom view: only na/rlx writes
           can be promised and both are non-synchronizing.  A relaxed
           write after a release fence carries [vrel]; such writes are
           not promisable here (over-approximating PS2.1's restriction
           on promises past release fences). *)
        ignore atomics;
        let min = View.TimeMap.get x t.view.View.rlx in
        List.map
          (fun (f, to_) ->
            let msg =
              Message.msg ~var:x ~value:v ~from_:f ~to_ ~view:View.bot
            in
            let mem' = Memory.add_exn msg mem in
            { event = Event.Prm; ts = add_prm msg t; mem = mem' })
          (Memory.write_slots x ~min mem))
      candidates

let reserve_steps (t : ts) mem : step list =
  if Local.is_finished t.local then []
  else
    List.concat_map
      (fun x ->
        List.filter_map
          (fun m ->
            if not (Message.is_concrete m) then None
            else
              match Memory.attach_slot x ~after:(Message.to_ m) mem with
              | None -> None
              | Some (f, to_) ->
                  let r = Message.rsv ~var:x ~from_:f ~to_ in
                  let mem' = Memory.add_exn r mem in
                  Some { event = Event.Rsv; ts = add_prm r t; mem = mem' })
          (Memory.per_loc x mem))
      (Memory.vars mem)

let cancel_steps (t : ts) mem : step list =
  List.filter_map
    (fun m ->
      if Message.is_reservation m then
        Some
          {
            event = Event.Ccl;
            ts = remove_prm m t;
            mem = Memory.remove m mem;
          }
      else None)
    t.prm

(* ------------------------------------------------------------------ *)
(* Syntactic promise candidates *)

let writes_in_code ~code (t : ts) =
  match t.local.Local.pos with
  | Local.Finished -> []
  | Local.Running { fn; _ } ->
      (* Collect constant stores from every function reachable from
         the current one (a cheap, sound-for-candidates
         over-approximation; semantic candidates come from
         certification runs). *)
      let seen = Hashtbl.create 8 in
      let acc = ref [] in
      let rec visit f =
        if not (Hashtbl.mem seen f) then (
          Hashtbl.add seen f ();
          match Ast.FnameMap.find_opt f code with
          | None -> ()
          | Some ch ->
              Ast.LabelMap.iter
                (fun _ b ->
                  List.iter
                    (fun i ->
                      match i with
                      | Ast.Store (x, e, (Modes.WNa | Modes.WRlx)) -> (
                          match Lang.Expr.is_const e with
                          | Some v -> acc := (x, v) :: !acc
                          | None -> ())
                      | _ -> ())
                    b.Ast.instrs)
                ch.Ast.blocks;
              List.iter visit (Lang.Cfg.callees ch))
      in
      visit fn;
      List.sort_uniq Stdlib.compare !acc
