(** Time maps and views (Fig. 8 of the paper).

    A time map [T ∈ Var → Time] records, per location, a timestamp;
    absent locations implicitly map to timestamp 0 (the timestamp of
    the initialization message).  A thread view [V = (Tna, Trlx)] keeps
    two time maps: the most recent write the thread has observed with
    non-atomic reads and with relaxed/acquire reads respectively.
    Message views use the same structure. *)

module TimeMap : sig
  type t

  val bot : t
  (** [T⁰ = {x ↦ 0 | x ∈ Var}], represented sparsely. *)

  val get : Lang.Ast.var -> t -> Rat.t
  val set : Lang.Ast.var -> Rat.t -> t -> t

  val join : t -> t -> t
  (** Pointwise maximum [T1 ⊔ T2]. *)

  val le : t -> t -> bool
  (** Pointwise order. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int

  val hash : t -> int
  (** Consistent with {!equal} (folds bindings in key order). *)

  val bindings : t -> (Lang.Ast.var * Rat.t) list
  val pp : Format.formatter -> t -> unit
end

type t = { na : TimeMap.t; rlx : TimeMap.t }
(** Invariant maintained by the semantics: [na ⊑ rlx] — a relaxed
    observation subsumes non-atomic knowledge.  (Non-atomic reads
    consult [na]; relaxed and acquire reads consult [rlx].) *)

val bot : t
(** [V⊥ = (T⁰, T⁰)]. *)

val join : t -> t -> t
val le : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Consistent with {!equal}. *)

val read_ts : Lang.Modes.read -> Lang.Ast.var -> t -> Rat.t
(** The lower bound the semantics imposes on the timestamp of a
    message read from [x]: [Tna(x)] for [na] reads, [Trlx(x)] for
    [rlx]/[acq] reads. *)

val observe_read : Lang.Modes.read -> Lang.Ast.var -> Rat.t -> t -> t
(** View update after reading a message of [x] with "to"-timestamp
    [t]: non-atomic reads record [t] in [Trlx] only, atomic reads in
    both maps (Sec. 3, read step). *)

val observe_write : Lang.Ast.var -> Rat.t -> t -> t
(** View update after writing [x] at timestamp [t]: both maps. *)

val pp : Format.formatter -> t -> unit

val delta :
  prev:t -> t -> (Lang.Ast.var * Rat.t option * Rat.t option) list
(** The locations whose [na]/[rlx] timestamp changed between [prev]
    and the new view, with the new value per changed component.  Empty
    iff the views are equal. *)

val pp_delta : prev:t -> Format.formatter -> t -> unit
(** Renders {!delta} as [x: na->t rlx->t', ...] (["(unchanged)"] when
    empty) — the per-step view annotation of the replay debugger. *)
