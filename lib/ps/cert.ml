let default_fuel = 128

module State = struct
  type t = Thread.ts * Memory.t

  let compare (ts1, m1) (ts2, m2) =
    let c = Thread.compare ts1 ts2 in
    if c <> 0 then c else Memory.compare m1 m2
end

module StateSet = Set.Make (State)
module StateMap = Map.Make (State)

let isolation_steps ~code ts mem =
  Thread.steps ~code ts mem @ Thread.cancel_steps ts mem

let consistent_stats ?(fuel = default_fuel) ?(cap = true) ~code
    (ts : Thread.ts) mem =
  if Thread.concrete_promises ts = [] then (true, 0)
  else
    let mem = if cap then Memory.cap mem else mem in
    (* Memoize the shallowest depth each state was explored at: a
       revisit with less remaining fuel can be pruned, a revisit with
       more fuel must be re-explored. *)
    let best = ref StateMap.empty in
    let expanded = ref 0 in
    let rec dfs ts mem depth =
      if Thread.concrete_promises ts = [] then true
      else if depth >= fuel then false
      else
        let key = (ts, mem) in
        match StateMap.find_opt key !best with
        | Some d when d <= depth -> false
        | _ ->
            best := StateMap.add key depth !best;
            incr expanded;
            List.exists
              (fun (s : Thread.step) -> dfs s.ts s.mem (depth + 1))
              (isolation_steps ~code ts mem)
    in
    let ok = dfs ts mem 0 in
    (ok, !expanded)

let consistent ?fuel ?cap ~code ts mem =
  fst (consistent_stats ?fuel ?cap ~code ts mem)

let certifiable_writes ?(fuel = default_fuel) ~code (ts : Thread.ts) mem =
  let mem = Memory.cap mem in
  let visited = ref StateSet.empty in
  let acc = ref [] in
  let rec dfs ts mem depth =
    if depth < fuel && not (StateSet.mem (ts, mem) !visited) then (
      visited := StateSet.add (ts, mem) !visited;
      List.iter
        (fun (s : Thread.step) ->
          (match s.Thread.event with
          | Event.Wr ((Lang.Modes.WNa | Lang.Modes.WRlx), x, v) ->
              acc := (x, v) :: !acc
          | _ -> ());
          dfs s.Thread.ts s.Thread.mem (depth + 1))
        (isolation_steps ~code ts mem))
  in
  dfs ts mem 0;
  List.sort_uniq Stdlib.compare !acc
