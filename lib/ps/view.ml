module VarMap = Lang.Ast.VarMap

module TimeMap = struct
  (* Sparse: absent bindings are timestamp 0, and we never store 0, so
     that structural comparison coincides with extensional equality. *)
  type t = Rat.t VarMap.t

  let bot = VarMap.empty
  let get x t = match VarMap.find_opt x t with Some r -> r | None -> Rat.zero

  let set x r t =
    if Rat.equal r Rat.zero then VarMap.remove x t else VarMap.add x r t

  let join a b =
    VarMap.union (fun _ ra rb -> Some (Rat.max ra rb)) a b

  let le a b = VarMap.for_all (fun x ra -> Rat.le ra (get x b)) a
  let equal a b = VarMap.equal Rat.equal a b
  let compare a b = VarMap.compare Rat.compare a b
  let bindings t = VarMap.bindings t

  let hash t =
    (* fold in key order: equal maps hash equal regardless of the
       internal tree shape *)
    VarMap.fold
      (fun x r h ->
        Rat.hash_combine (Rat.hash_combine h (Hashtbl.hash x)) (Rat.hash r))
      t 0x51f15

  let pp ppf t =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (x, r) -> Format.fprintf ppf "%s@%a" x Rat.pp r))
      (bindings t)
end

type t = { na : TimeMap.t; rlx : TimeMap.t }

let bot = { na = TimeMap.bot; rlx = TimeMap.bot }

let join a b =
  { na = TimeMap.join a.na b.na; rlx = TimeMap.join a.rlx b.rlx }

let le a b = TimeMap.le a.na b.na && TimeMap.le a.rlx b.rlx
let equal a b = TimeMap.equal a.na b.na && TimeMap.equal a.rlx b.rlx

let compare a b =
  let c = TimeMap.compare a.na b.na in
  if c <> 0 then c else TimeMap.compare a.rlx b.rlx

let hash v = Rat.hash_combine (TimeMap.hash v.na) (TimeMap.hash v.rlx)

let read_ts (mode : Lang.Modes.read) x v =
  match mode with
  | Lang.Modes.Na -> TimeMap.get x v.na
  | Lang.Modes.Rlx | Lang.Modes.Acq -> TimeMap.get x v.rlx

let observe_read (mode : Lang.Modes.read) x t v =
  let bump tm = TimeMap.set x (Rat.max t (TimeMap.get x tm)) tm in
  match mode with
  | Lang.Modes.Na -> { v with rlx = bump v.rlx }
  | Lang.Modes.Rlx | Lang.Modes.Acq -> { na = bump v.na; rlx = bump v.rlx }

let observe_write x t v =
  let bump tm = TimeMap.set x (Rat.max t (TimeMap.get x tm)) tm in
  { na = bump v.na; rlx = bump v.rlx }

let pp ppf v =
  Format.fprintf ppf "(na:%a, rlx:%a)" TimeMap.pp v.na TimeMap.pp v.rlx

(* Delta rendering, for the replay debugger: only the locations whose
   timestamp moved between two views, component-wise. *)
let delta ~prev v =
  let vars tm = List.map fst (TimeMap.bindings tm) in
  let all =
    List.sort_uniq Stdlib.compare
      (vars prev.na @ vars prev.rlx @ vars v.na @ vars v.rlx)
  in
  List.filter_map
    (fun x ->
      let d get m0 m1 =
        let a = get x m0 and b = get x m1 in
        if Rat.equal a b then None else Some b
      in
      match (d TimeMap.get prev.na v.na, d TimeMap.get prev.rlx v.rlx) with
      | None, None -> None
      | na, rlx -> Some (x, na, rlx))
    all

let pp_delta ~prev ppf v =
  match delta ~prev v with
  | [] -> Format.pp_print_string ppf "(unchanged)"
  | ds ->
      let item ppf (x, na, rlx) =
        let comp tag ppf = function
          | None -> ()
          | Some r -> Format.fprintf ppf " %s->%a" tag Rat.pp r
        in
        Format.fprintf ppf "%s:%a%a" x (comp "na") na (comp "rlx") rlx
      in
      Format.fprintf ppf "@[<h>%a@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           item)
        ds
