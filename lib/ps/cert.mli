(** Promise certification (Sec. 3, "Promise certification").

    [consistent(TS, M, ι)] holds iff the thread, executing in
    isolation from the {e capped} memory [M̂], can reach a state with
    an empty promise set.  Capping models the worst-case interference
    of the environment: the thread may not slot future writes between
    existing messages, only beyond the cap — so a certification cannot
    rely on winning a timestamp race (e.g. a CAS) that another thread
    might win first.

    The search is a depth-bounded DFS over the thread-step relation
    with promise and reservation steps excluded (new obligations never
    help to discharge existing ones) and cancellation allowed.  States
    are memoized.  The default fuel (128 steps) is ample for the
    bounded programs this library explores; a certification that
    exhausts fuel is reported as inconsistent, which errs on the safe
    (fewer-behaviours) side and is flagged by {!Explore} statistics. *)

val default_fuel : int

val consistent :
  ?fuel:int -> ?cap:bool -> code:Lang.Ast.code -> Thread.ts -> Memory.t -> bool
(** [consistent ~code ts mem] — the paper's [consistent(TS, M, ι)].
    [cap:false] certifies against the plain current memory instead of
    [M̂] (used by the ablation experiment of DESIGN.md and by the
    write-write-race-freedom discussion of Sec. 2.4). *)

val consistent_stats :
  ?fuel:int ->
  ?cap:bool ->
  code:Lang.Ast.code ->
  Thread.ts ->
  Memory.t ->
  bool * int
(** {!consistent} plus the number of isolation states the search
    expanded (0 when the promise set is empty and the answer is
    immediate) — the "certification sub-steps" surfaced per step by
    the replay recorder. *)

val certifiable_writes :
  ?fuel:int ->
  code:Lang.Ast.code ->
  Thread.ts ->
  Memory.t ->
  (Lang.Ast.var * Lang.Ast.value) list
(** The [(x, v)] pairs of non-atomic/relaxed write events occurring in
    any bounded isolation run of the thread from the capped memory —
    exactly the writes a certifiable promise could announce.  Used by
    {!Explore} to enumerate promise candidates. *)
