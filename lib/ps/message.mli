(** Memory messages (Fig. 8).

    A concrete message [⟨x : v@(f, t], V⟩] records a write of value [v]
    to [x] over the timestamp interval [(f, t]] with message view [V];
    a reservation [⟨x : (f, t]⟩] blocks an interval without carrying a
    value.  The initialization message of every location is
    [⟨x : 0@(0, 0], V⊥⟩]: its interval is the single point 0, and it is
    the only message allowed to have [f = t]. *)

type t =
  | Msg of {
      var : Lang.Ast.var;
      value : Lang.Ast.value;
      from_ : Rat.t;
      to_ : Rat.t;
      view : View.t;
    }
  | Rsv of { var : Lang.Ast.var; from_ : Rat.t; to_ : Rat.t }

val msg :
  var:Lang.Ast.var ->
  value:Lang.Ast.value ->
  from_:Rat.t ->
  to_:Rat.t ->
  view:View.t ->
  t

val rsv : var:Lang.Ast.var -> from_:Rat.t -> to_:Rat.t -> t

val init : Lang.Ast.var -> t
(** [⟨x : 0@(0,0], V⊥⟩]. *)

val var : t -> Lang.Ast.var
val from_ : t -> Rat.t
val to_ : t -> Rat.t
val value : t -> Lang.Ast.value option
val view : t -> View.t option
val is_concrete : t -> bool
val is_reservation : t -> bool

val overlaps : t -> t -> bool
(** Two messages of the same location overlap if their half-open
    intervals [(f, t]] intersect.  The zero-width initialization
    interval [(0, 0]] never overlaps anything. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Consistent with {!equal}; mixes the location, interval, value and
    message view. *)

val pp : Format.formatter -> t -> unit
