(** Whole-machine configurations [W = (TP, t, M)] (Fig. 8/9).

    This module defines the world state shared by the interleaving
    machine (Fig. 9) and the non-preemptive machine (Fig. 10; see
    {!Npsem}), plus the initialization from a program.  Step
    {e enumeration} lives in {!Explore}, which needs bounds and
    configuration; the machine-step {e rules} are documented there and
    tested against the paper's examples.

    Interleaving-machine discipline implemented by the explorer, in
    one sentence: any thread step of the current thread may run, but a
    context switch, an observable output and termination are only
    permitted at configurations where the current thread is
    [consistent] — exactly the reachable committed points of Fig. 9's
    [(τ-step)]/[(out-step)]/[(sw-step)] rules. *)

module TidMap : Map.S with type key = int

type world = {
  tp : Thread.ts TidMap.t;  (** thread pool [TP] *)
  cur : int;  (** current thread id [t] *)
  mem : Memory.t;  (** shared memory [M] *)
}

val init : Lang.Ast.program -> (world, string) result
(** Initial world: one thread per entry of [P.threads] (tids 0, 1, …),
    all variables mentioned anywhere in the program initialized to 0,
    thread 0 current.  [Error] if some thread's function is missing
    (ruled out by {!Lang.Wf}). *)

val tids : world -> int list
val cur_ts : world -> Thread.ts
val set_cur_ts : world -> Thread.ts -> Memory.t -> world
val switch : world -> int -> world
val all_finished : world -> bool

val terminal : world -> bool
(** All threads finished with empty (concrete) promise sets: the
    configuration emits [done]. *)

val compare : world -> world -> int
val equal : world -> world -> bool

val hash : world -> int
(** Consistent with {!equal}; the key of the hashed exploration
    tables in {!Explore.Enum}. *)

val pp : Format.formatter -> world -> unit
