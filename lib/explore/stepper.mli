(** The deterministic machine-stepping core shared by the witness
    search and the replay debugger ([lib/replay]).

    A {!state} is a machine world plus the two pieces of search-side
    bookkeeping that gate successor steps: the non-preemptive switch
    bit [β] (Fig. 10) and the per-thread promise-budget spent.
    {!successors} enumerates every machine step allowed from a state —
    regular thread steps first (in {!Ps.Thread.steps} order), then
    promise steps, then context switches in ascending thread id — with
    exactly the gating of {!Enum}/{!Witness}: outputs and switches only
    at configurations where the current thread is consistent, promises
    only within the budget and (non-preemptively) when the bit is on.

    Because the enumeration is a pure function of the state and the
    configuration, a [(kind, choice)] pair identifies one successor
    {e deterministically}: recording those pairs is enough to replay an
    execution step-for-step without search, which is what the replay
    store persists ([docs/REPLAY.md]). *)

module TidMap = Ps.Machine.TidMap

type state = {
  world : Ps.Machine.world;
  bit : bool;  (** the non-preemptive switch bit [β]; always [true]
                   under the interleaving discipline *)
  promised : int TidMap.t;  (** promise steps spent, per thread *)
}

(** How a successor was taken. *)
type kind = Thread_step | Promise_step | Switch_step

type succ = {
  kind : kind;
  choice : int;
      (** index of this candidate inside the deterministic enumeration
          of its kind: position in the {!Ps.Thread.steps} /
          {!Ps.Thread.promise_steps} list, or the target thread id for
          switches.  [(kind, choice)] replayed through {!apply} from
          the same state yields the same successor. *)
  tid : int;  (** acting thread: current for steps, target for switches *)
  event : Ps.Event.te option;  (** [None] exactly for switches *)
  state : state;
}

val init : Lang.Ast.program -> (state, string) result
(** Initial state: machine init, bit on, no promises spent. *)

val equal_state : state -> state -> bool
val compare_state : state -> state -> int

val committed : config:Config.t -> program:Lang.Ast.program -> state -> bool
(** Whether the current thread passes promise certification — the gate
    on outputs, switches and termination. *)

val committed_stats :
  config:Config.t -> program:Lang.Ast.program -> state -> bool * int
(** {!committed} plus the certification-search state count
    ({!Ps.Cert.consistent_stats}). *)

val successors :
  config:Config.t ->
  discipline:Enum.discipline ->
  program:Lang.Ast.program ->
  state ->
  succ list
(** All allowed machine steps, deterministically ordered: thread
    steps, then promise steps, then switches. *)

val apply :
  config:Config.t ->
  discipline:Enum.discipline ->
  program:Lang.Ast.program ->
  state ->
  kind ->
  choice:int ->
  succ option
(** Replay one recorded choice: the successor of that [kind] whose
    {!succ.choice} matches, or [None] if the enumeration from this
    state has no such candidate (a corrupt or mismatched trace). *)

val drive :
  config:Config.t ->
  discipline:Enum.discipline ->
  program:Lang.Ast.program ->
  (int * Ps.Event.te) list ->
  (state * succ list) option
(** Schedule-constrained execution: find (by backtracking over the
    successor enumeration) a machine run whose thread/promise steps
    follow the given [(tid, event)] schedule exactly — context
    switches are inserted implicitly whenever the scheduled thread is
    not current — and whose final state is terminal.  Returns the
    initial state and the full trail (switches included), or [None] if
    no run realizes the schedule.  This is how shrinking candidates
    are re-validated: only schedules that genuinely execute survive. *)

val trail_states : state -> succ list -> state list
(** The [n+1] states along a trail, initial state first. *)

val pp_kind : Format.formatter -> kind -> unit
