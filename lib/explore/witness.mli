(** Execution witnesses: concrete annotated schedules for observable
    outcomes, in the style of the paper's annotated executions
    (Sec. 2.1, e.g. [t1: promise (y_rlx := 1); t2: r2 := y_rlx //1;
    ...]).

    Given a program and a target output sequence, the search explores
    the same machine-step space as {!Enum} (successor enumeration
    shared through {!Stepper}) and returns the sequence of (thread id,
    thread event) pairs of one execution producing exactly those
    outputs and terminating — or reports that none exists within the
    bounds (which, for exact explorations, refutes observability).

    This is how refinement counterexamples become debuggable: ask the
    target program for a witness of the offending trace and read off
    where the promise/read choices diverge from anything the source
    can do.  [psopt record] persists the underlying {!Stepper} trail
    into a replay store so the witness can be stepped through
    interactively and shrunk (docs/REPLAY.md). *)

type step = { tid : int; event : Ps.Event.te }

type t = step list

val find :
  ?config:Config.t ->
  ?discipline:Enum.discipline ->
  outs:Lang.Ast.value list ->
  Lang.Ast.program ->
  t option
(** A terminating execution printing exactly [outs], or [None] if the
    bounded search finds none. *)

val find_trail :
  ?config:Config.t ->
  ?discipline:Enum.discipline ->
  ?eager_switch:bool ->
  outs:Lang.Ast.value list ->
  Lang.Ast.program ->
  (Stepper.state * Stepper.succ list) option
(** The same search returning the full {!Stepper} trail — initial
    state plus every successor taken, context switches included —
    which is what the replay recorder persists.  [eager_switch] makes
    the search try context switches {e first}, yielding a deliberately
    switch-heavy schedule (useful as shrinker input; the default DFS
    order runs each thread as long as possible, so its witnesses are
    often already switch-minimal). *)

val of_trail : Stepper.succ list -> t
(** Forget the stepper bookkeeping: the witness schedule of a trail
    (switch steps dropped). *)

val forbidden :
  ?config:Config.t ->
  outs:Lang.Ast.value list ->
  Lang.Ast.program ->
  bool
(** [true] when no witness exists and the exploration was exact — a
    bounded-exhaustive proof that the outcome is unobservable. *)

(** {2 Annotation}

    A found schedule replayed deterministically, each promise
    cross-referenced (by location and timestamp) with the write that
    later fulfills it — the paper's bracketed executions. *)

type note =
  | Plain
  | Promises of { msg : string; fulfilled_at : int option }
      (** a promise step, the message it announced, and the trail
          position of the fulfilling write ([None]: certification
          covered it but the schedule ended first) *)
  | Fulfills of { msg : string; promised_at : int option }
      (** a write discharging an outstanding promise *)

type annotated_step = {
  num : int;  (** absolute trail position, context switches included —
                  the step numbers [psopt replay] navigates by *)
  tid : int;
  event : Ps.Event.te option;  (** [None] for a context switch *)
  note : note;
}

val annotate :
  ?config:Config.t ->
  ?discipline:Enum.discipline ->
  Lang.Ast.program ->
  t ->
  annotated_step list option
(** Replay the schedule ({!Stepper.drive}) and annotate it.  [None] if
    the schedule does not drive to a terminal state under this
    configuration (it did not come from {!find} under the same
    bounds). *)

val pp_annotated : Format.formatter -> annotated_step list -> unit
(** Numbered, promise-annotated rendering; silent local steps elided,
    context switches shown as [-> t1]. *)

val pp : Format.formatter -> t -> unit
(** Prints the schedule in the paper's bracketed style, steps numbered
    by schedule position, silent local steps elided. *)

val pp_full : Format.formatter -> t -> unit
(** Every step, local computation included. *)
