module TidMap = Ps.Machine.TidMap

type discipline = Interleaving | Non_preemptive

type completeness = Exhaustive | Truncated of Errors.reason list

type outcome = {
  traces : Traceset.t;
  completeness : completeness;
  exact : bool;
  stats : Stats.t;
}

let pp_completeness ppf = function
  | Exhaustive -> Format.pp_print_string ppf "exhaustive"
  | Truncated rs -> Format.fprintf ppf "truncated (%a)" Errors.pp_reasons rs

let pp_discipline ppf = function
  | Interleaving -> Format.pp_print_string ppf "interleaving"
  | Non_preemptive -> Format.pp_print_string ppf "non-preemptive"

(* A search node: machine world, switch bit (always [true] under the
   interleaving discipline) and per-thread promise budget spent. *)
module Node = struct
  type t = {
    world : Ps.Machine.world;
    bit : bool;
    promised : int TidMap.t;
  }

  let compare a b =
    let c = Ps.Machine.compare a.world b.world in
    if c <> 0 then c
    else
      let c = Bool.compare a.bit b.bit in
      if c <> 0 then c else TidMap.compare Int.compare a.promised b.promised

  let equal a b = compare a b = 0

  let hash n =
    let promised =
      TidMap.fold
        (fun tid k h -> Rat.hash_combine (Rat.hash_combine h tid) k)
        n.promised 0x6e6f
    in
    Rat.hash_combine
      (Rat.hash_combine (Ps.Machine.hash n.world) (Bool.to_int n.bit))
      promised
end

module NodeTbl = Hashtbl.Make (Node)

(* Certification-cache key: the certified configuration.  The verdict
   of [Ps.Cert.consistent] is a pure function of the thread state and
   the memory (fuel, capping and code are fixed per search), so one
   entry answers every successor enumeration that reaches the same
   configuration — which the interleavings of the other threads do
   constantly. *)
module CertTbl = Hashtbl.Make (struct
  type t = Ps.Thread.ts * Ps.Memory.t

  let equal (ts1, m1) (ts2, m2) =
    Ps.Thread.equal ts1 ts2 && Ps.Memory.equal m1 m2

  let hash (ts, m) = Rat.hash_combine (Ps.Thread.hash ts) (Ps.Memory.hash m)
end)

(* One successor: the output emitted (if any) and the next node. *)
type succ = { emit : Lang.Ast.value option; next : Node.t }

type search = {
  code : Lang.Ast.code;
  atomics : Lang.Ast.VarSet.t;
  disc : discipline;
  cfg : Config.t;
  stats : Stats.t;
  memo : Traceset.t NodeTbl.t;
  on_stack : int NodeTbl.t;  (* node -> stack index *)
  cert_cache : bool CertTbl.t;
  cand_cache : (Lang.Ast.var * Lang.Ast.value) list CertTbl.t;
      (* semantic promise candidates, the other certification search
         ran per node (see [promise_candidates]) *)
  deadline : float option;  (* absolute, [Unix.gettimeofday] scale *)
  fault : (Random.State.t * float) option;
  mutable tick : int;
  (* Sticky resource flags: once the wall clock or the heap budget
     trips, every remaining subtree is abandoned — there is no way to
     "recover" time or memory mid-search. *)
  mutable out_of_time : bool;
  mutable out_of_mem : bool;
}

let make_search code atomics disc cfg =
  {
    code;
    atomics;
    disc;
    cfg;
    stats = Stats.create ();
    memo = NodeTbl.create 1024;
    on_stack = NodeTbl.create 256;
    cert_cache = CertTbl.create 1024;
    cand_cache = CertTbl.create 1024;
    deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
        cfg.Config.deadline_ms;
    fault =
      Option.map
        (fun f ->
          (Random.State.make [| f.Config.fault_seed |], f.Config.fault_rate))
        cfg.Config.fault;
    tick = 0;
    out_of_time = false;
    out_of_mem = false;
  }

(* Wall-clock and heap probes are amortized over this many calls; the
   node budget and the sticky flags are checked every time. *)
let probe_mask = 0x3F

let budget_stop s : Errors.reason option =
  s.tick <- s.tick + 1;
  if s.tick land probe_mask = 0 then begin
    (match s.deadline with
    | Some d when Unix.gettimeofday () > d -> s.out_of_time <- true
    | _ -> ());
    match s.cfg.Config.max_live_words with
    | Some w when (Gc.quick_stat ()).Gc.heap_words > w -> s.out_of_mem <- true
    | _ -> ()
  end;
  if s.out_of_time then begin
    s.stats.Stats.deadline_hits <- s.stats.Stats.deadline_hits + 1;
    Some Errors.Deadline
  end
  else if s.out_of_mem then begin
    s.stats.Stats.oom_hits <- s.stats.Stats.oom_hits + 1;
    Some Errors.Oom
  end
  else
    match s.cfg.Config.max_nodes with
    | Some n when s.stats.Stats.nodes >= n ->
        s.stats.Stats.node_budget_hits <- s.stats.Stats.node_budget_hits + 1;
        Some Errors.Node_budget
    | _ -> None

(* Deterministic fault injection: fires with probability [rate] per
   draw.  A firing site either cuts the enumeration subtree or answers
   a certification query "inconsistent"/"no candidates" — every move
   only removes behaviours, so completed traces under any schedule are
   a subset of the fault-free run (test/test_robustness.ml). *)
let fault_fires s =
  match s.fault with
  | None -> false
  | Some (rng, rate) ->
      let fire = Random.State.float rng 1.0 < rate in
      if fire then
        s.stats.Stats.faults_injected <- s.stats.Stats.faults_injected + 1;
      fire

let run_cert s ts mem =
  Ps.Cert.consistent ~fuel:s.cfg.Config.cert_fuel
    ~cap:s.cfg.Config.cap_certification ~code:s.code ts mem

let consistent s ts mem =
  s.stats.Stats.cert_checks <- s.stats.Stats.cert_checks + 1;
  (* An injected fault answers "inconsistent" without consulting the
     cache, so the cache stays pure and the pruning is per-draw. *)
  if fault_fires s then false
  else if
    (* Promise-free thread states are trivially consistent; don't
       spend a hash of the whole configuration on them. *)
    Ps.Thread.concrete_promises ts = []
  then true
  else if not s.cfg.Config.cert_cache then run_cert s ts mem
  else
    let key = (ts, mem) in
    match CertTbl.find_opt s.cert_cache key with
    | Some verdict ->
        s.stats.Stats.cert_cache_hits <- s.stats.Stats.cert_cache_hits + 1;
        verdict
    | None ->
        let verdict = run_cert s ts mem in
        CertTbl.add s.cert_cache key verdict;
        verdict

let promise_candidates s ts mem =
  match s.cfg.Config.promise_mode with
  | Config.No_promises -> []
  | (Config.Syntactic | Config.Semantic) when fault_fires s ->
      (* Candidate discovery killed by an injected fault: no promise
         successors from here — behaviours shrink, never grow. *)
      []
  | Config.Syntactic -> Ps.Thread.writes_in_code ~code:s.code ts
  | Config.Semantic ->
      (* Candidate discovery is the other certification search, run
         for every node with promise budget left; like the verdicts it
         is a pure function of the configuration, so it shares the
         cache discipline (and the hit/size counters). *)
      let compute () =
        Ps.Cert.certifiable_writes ~fuel:s.cfg.Config.cert_fuel ~code:s.code
          ts mem
      in
      if not s.cfg.Config.cert_cache then compute ()
      else
        let key = (ts, mem) in
        match CertTbl.find_opt s.cand_cache key with
        | Some cands ->
            s.stats.Stats.cert_cache_hits <-
              s.stats.Stats.cert_cache_hits + 1;
            cands
        | None ->
            let cands = compute () in
            CertTbl.add s.cand_cache key cands;
            cands

let successors s (n : Node.t) : succ list =
  let w = n.world in
  let ts = Ps.Machine.cur_ts w in
  let mem = w.Ps.Machine.mem in
  let promised_cur =
    match TidMap.find_opt w.Ps.Machine.cur n.promised with
    | Some k -> k
    | None -> 0
  in
  (* The current thread's consistency gates outputs and switches; it
     is cheap when the thread has no promises. *)
  let committed = lazy (consistent s ts mem) in
  let bit_after te =
    match s.disc with
    | Interleaving -> Some true
    | Non_preemptive -> Npsem.bit_after te ~before:n.bit
  in
  let lift (step : Ps.Thread.step) : succ option =
    match bit_after step.Ps.Thread.event with
    | None -> None
    | Some bit -> (
        let world = Ps.Machine.set_cur_ts w step.Ps.Thread.ts step.Ps.Thread.mem in
        let next = { n with Node.world; bit } in
        match step.Ps.Thread.event with
        | Ps.Event.Out v ->
            if Lazy.force committed then Some { emit = Some v; next } else None
        | _ -> Some { emit = None; next })
  in
  let regular = List.filter_map lift (Ps.Thread.steps ~code:s.code ts mem) in
  let promises =
    let budget_left = promised_cur < s.cfg.Config.max_promises in
    let sched_ok =
      (match s.disc with Interleaving -> true | Non_preemptive -> n.bit)
      && not (Ps.Local.is_finished ts.Ps.Thread.local)
    in
    if not (budget_left && sched_ok) then begin
      (* Under [strict_promises], a nonempty candidate set suppressed
         purely by the promise budget counts as truncation (a
         conservative over-approximation: the candidates are not
         re-certified here, so this can only push verdicts toward
         inconclusive, never toward a claim). *)
      if s.cfg.Config.strict_promises && sched_ok && not budget_left then
        if promise_candidates s ts mem <> [] then
          s.stats.Stats.promise_budget_hits <-
            s.stats.Stats.promise_budget_hits + 1;
      []
    end
    else
      let candidates = promise_candidates s ts mem in
      Ps.Thread.promise_steps ~candidates ~atomics:s.atomics ts mem
      |> List.filter_map (fun (step : Ps.Thread.step) ->
             (* A promise must remain certifiable with the chosen
                slot; pruning inconsistent promise placements is sound
                because a τ machine step must end consistent. *)
             if consistent s step.Ps.Thread.ts step.Ps.Thread.mem then (
               s.stats.Stats.promises <- s.stats.Stats.promises + 1;
               let world =
                 Ps.Machine.set_cur_ts w step.Ps.Thread.ts step.Ps.Thread.mem
               in
               let promised =
                 TidMap.add w.Ps.Machine.cur (promised_cur + 1) n.promised
               in
               Some
                 { emit = None; next = { Node.world; bit = n.bit; promised } })
             else None)
  in
  let reservations =
    if not s.cfg.Config.reservations then []
    else
      let rsv_allowed =
        (match s.disc with Interleaving -> true | Non_preemptive -> n.bit)
        (* one outstanding reservation per thread: reserve/cancel
           cycles otherwise defeat memoization (every cycle member is
           taint-excluded) and blow up the search *)
        && List.for_all
             (fun m -> not (Ps.Message.is_reservation m))
             ts.Ps.Thread.prm
      in
      let rsvs =
        if rsv_allowed then Ps.Thread.reserve_steps ts mem else []
      in
      let ccls = Ps.Thread.cancel_steps ts mem in
      List.filter_map lift (rsvs @ ccls)
  in
  let switches =
    let may =
      (match s.disc with
      | Interleaving -> true
      | Non_preemptive ->
          (* The switch bit guards blocks of non-atomic accesses; a
             finished thread has no block in progress, so the machine
             may always move on from it. *)
          n.bit || Ps.Local.is_finished ts.Ps.Thread.local)
      && Lazy.force committed
    in
    if not may then []
    else
      TidMap.fold
        (fun tid ts' acc ->
          if tid <> w.Ps.Machine.cur
             && not (Ps.Local.is_finished ts'.Ps.Thread.local)
          then
            {
              emit = None;
              next = { n with Node.world = Ps.Machine.switch w tid; bit = true };
            }
            :: acc
          else acc)
        w.Ps.Machine.tp []
  in
  regular @ promises @ reservations @ switches

(* Depth-first computation of the suffix trace set of a node.

   Taint discipline: [dfs] returns the suffixes together with the
   lowest stack index this result depends on ([max_int] if none).  A
   result is memoized only when it closes over its own subtree —
   cycle heads included, inner cycle members excluded — and never when
   the depth budget truncated it. *)
let max_taint = max_int

let cut_trace = (Traceset.singleton (Ps.Event.trace_cut []), -1 (* taint *))

let rec dfs s (n : Node.t) depth stack_ix : Traceset.t * int =
  if depth > s.stats.Stats.peak_depth then s.stats.Stats.peak_depth <- depth;
  if depth >= s.cfg.Config.max_steps then (
    s.stats.Stats.cuts <- s.stats.Stats.cuts + 1;
    cut_trace)
  else if budget_stop s <> None then
    (* Deadline / node budget / heap budget: the subtree is abandoned
       with the same honest [Cut] marker (and the same negative taint,
       so nothing truncated is ever memoized) as a depth cut; the
       per-reason stats counter was incremented by [budget_stop]. *)
    cut_trace
  else if fault_fires s then cut_trace
  else
    match NodeTbl.find_opt s.memo n with
    | Some traces ->
        s.stats.Stats.memo_hits <- s.stats.Stats.memo_hits + 1;
        (traces, max_taint)
    | None -> (
        match NodeTbl.find_opt s.on_stack n with
        | Some ix ->
            (* Back-edge: divergence.  The honest behaviour is the
               prefix observed so far, i.e. the empty suffix with an
               [Open] ending. *)
            s.stats.Stats.cycles <- s.stats.Stats.cycles + 1;
            ( Traceset.singleton { Ps.Event.outs = []; ending = Ps.Event.Open },
              ix )
        | None ->
            s.stats.Stats.nodes <- s.stats.Stats.nodes + 1;
            NodeTbl.add s.on_stack n stack_ix;
            let base =
              if Ps.Machine.terminal n.world then
                Traceset.singleton (Ps.Event.trace_done [])
              else Traceset.empty
            in
            let succs = successors s n in
            s.stats.Stats.transitions <-
              s.stats.Stats.transitions + List.length succs;
            let base =
              if Traceset.is_empty base && succs = [] then
                (* Stuck without terminating: an execution that cannot
                   commit further; its observable behaviour is the
                   open prefix. *)
                Traceset.singleton { Ps.Event.outs = []; ending = Ps.Event.Open }
              else base
            in
            let traces, taint =
              List.fold_left
                (fun (acc, taint) { emit; next } ->
                  let sub, t = dfs s next (depth + 1) (stack_ix + 1) in
                  let sub =
                    match emit with
                    | Some v -> Traceset.prepend v sub
                    | None -> sub
                  in
                  (Traceset.union acc sub, min taint t))
                (base, max_taint) succs
            in
            NodeTbl.remove s.on_stack n;
            if s.cfg.Config.memoize && taint >= stack_ix && taint >= 0 then (
              (* No dependency below this node on the stack (cycle
                 heads close here) and no depth cut: safe to memoize. *)
              NodeTbl.replace s.memo n traces;
              (traces, max_taint))
            else (traces, taint))

let finish_stats s =
  s.stats.Stats.memo_size <- NodeTbl.length s.memo;
  s.stats.Stats.cert_cache_size <-
    CertTbl.length s.cert_cache + CertTbl.length s.cand_cache

let behaviors ?(config = Config.default) disc (p : Lang.Ast.program) =
  match Ps.Machine.init p with
  | Error e -> Error e
  | Ok world ->
      let s = make_search p.Lang.Ast.code p.Lang.Ast.atomics disc config in
      let root = { Node.world; bit = true; promised = TidMap.empty } in
      let traces, _ = dfs s root 0 0 in
      finish_stats s;
      let completeness =
        match Stats.truncation_reasons s.stats with
        | [] -> Exhaustive
        | reasons -> Truncated reasons
      in
      Ok
        {
          traces;
          completeness;
          exact = completeness = Exhaustive;
          stats = s.stats;
        }

let behaviors_exn ?config disc p =
  match behaviors ?config disc p with
  | Ok o -> o
  | Error e -> raise (Errors.Error (Errors.Ill_formed e))

let iter_reachable ?(config = Config.default) disc (p : Lang.Ast.program) ~f =
  match Ps.Machine.init p with
  | Error e -> Error e
  | Ok world ->
      let s = make_search p.Lang.Ast.code p.Lang.Ast.atomics disc config in
      (* Best (lowest) depth each node was expanded at.  Marking a node
         visited at the depth it is *first* seen is wrong under a step
         budget: a node first reached near [max_steps] would never be
         re-expanded when later reachable at a shallower depth, cutting
         off its successors and undercounting both states and
         transitions.  Re-expansion on improvement makes the walk
         budget-complete: every state reachable within [max_steps]
         micro-steps along some path is visited. *)
      let best = NodeTbl.create 1024 in
      let rec visit (n : Node.t) depth =
        if depth >= s.cfg.Config.max_steps then
          s.stats.Stats.cuts <- s.stats.Stats.cuts + 1
        else if budget_stop s <> None || fault_fires s then
          (* Budget or fault: skip the subtree.  The stats counters
             record the reason, so callers recover completeness via
             [Stats.truncation_reasons]. *)
          ()
        else
          let prev = NodeTbl.find_opt best n in
          match prev with
          | Some d when d <= depth -> ()
          | _ ->
              if depth > s.stats.Stats.peak_depth then
                s.stats.Stats.peak_depth <- depth;
              NodeTbl.replace best n depth;
              let first = prev = None in
              if first then begin
                s.stats.Stats.nodes <- s.stats.Stats.nodes + 1;
                let ts = Ps.Machine.cur_ts n.world in
                let committed = consistent s ts n.world.Ps.Machine.mem in
                f ~committed n.Node.world
              end;
              let succs = successors s n in
              if first then
                s.stats.Stats.transitions <-
                  s.stats.Stats.transitions + List.length succs;
              List.iter (fun { next; _ } -> visit next (depth + 1)) succs
      in
      visit { Node.world; bit = true; promised = TidMap.empty } 0;
      s.stats.Stats.memo_size <- NodeTbl.length best;
      s.stats.Stats.cert_cache_size <-
        CertTbl.length s.cert_cache + CertTbl.length s.cand_cache;
      Ok s.stats
