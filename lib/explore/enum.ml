module TidMap = Ps.Machine.TidMap

type discipline = Interleaving | Non_preemptive

type completeness = Exhaustive | Truncated of Errors.reason list

type outcome = {
  traces : Traceset.t;
  completeness : completeness;
  exact : bool;
  stats : Stats.t;
}

let pp_completeness ppf = function
  | Exhaustive -> Format.pp_print_string ppf "exhaustive"
  | Truncated rs -> Format.fprintf ppf "truncated (%a)" Errors.pp_reasons rs

let pp_discipline ppf = function
  | Interleaving -> Format.pp_print_string ppf "interleaving"
  | Non_preemptive -> Format.pp_print_string ppf "non-preemptive"

(* A search node: machine world, switch bit (always [true] under the
   interleaving discipline) and per-thread promise budget spent. *)
module Node = struct
  type t = {
    world : Ps.Machine.world;
    bit : bool;
    promised : int TidMap.t;
  }

  let compare a b =
    let c = Ps.Machine.compare a.world b.world in
    if c <> 0 then c
    else
      let c = Bool.compare a.bit b.bit in
      if c <> 0 then c else TidMap.compare Int.compare a.promised b.promised

  let equal a b = compare a b = 0

  let hash n =
    let promised =
      TidMap.fold
        (fun tid k h -> Rat.hash_combine (Rat.hash_combine h tid) k)
        n.promised 0x6e6f
    in
    Rat.hash_combine
      (Rat.hash_combine (Ps.Machine.hash n.world) (Bool.to_int n.bit))
      promised
end

module NodeTbl = Hashtbl.Make (Node)

(* Certification-cache key: the certified configuration.  The verdict
   of [Ps.Cert.consistent] is a pure function of the thread state and
   the memory (fuel, capping and code are fixed per search), so one
   entry answers every successor enumeration that reaches the same
   configuration — which the interleavings of the other threads do
   constantly. *)
module CertKey = struct
  type t = Ps.Thread.ts * Ps.Memory.t

  let equal (ts1, m1) (ts2, m2) =
    Ps.Thread.equal ts1 ts2 && Ps.Memory.equal m1 m2

  let hash (ts, m) = Rat.hash_combine (Ps.Thread.hash ts) (Ps.Memory.hash m)
end

(* The certification and candidate caches are hash-sharded so workers
   of the parallel engine contend per shard, not per lookup; at j=1
   the per-shard mutex is uncontended and costs nothing measurable
   next to hashing a whole memory. *)
module CertShards = Pool.Sharded (CertKey)

(* One successor: the output emitted (if any) and the next node. *)
type succ = { emit : Lang.Ast.value option; next : Node.t }

(* State shared by every worker domain of one search.  All counters
   are atomics ({!Stats}); the caches are sharded; the sticky resource
   flags are atomics so one worker tripping the wall-clock or heap
   budget abandons every other worker's remaining subtrees too. *)
type search = {
  code : Lang.Ast.code;
  atomics : Lang.Ast.VarSet.t;
  disc : discipline;
  cfg : Config.t;
  stats : Stats.t;
  memo_merged : (Traceset.t * int) NodeTbl.t;
      (* domain-local memo tables merged here on worker join (under
         [memo_lock]); entries are [(suffixes, rel_peak)] — see [dfs] *)
  memo_lock : Mutex.t;
  cert_cache : bool CertShards.t;
  cand_cache : (Lang.Ast.var * Lang.Ast.value) list CertShards.t;
  deadline : float option;  (* absolute, [Unix.gettimeofday] scale *)
  fault : (int * int) option;  (* seed, threshold in [0, 2^30] *)
  out_of_time : bool Atomic.t;
  out_of_mem : bool Atomic.t;
}

(* Per-domain state: the memo and stack tables are domain-local (no
   locking on the DFS hot path); [tick] amortizes the clock/heap
   probes per worker. *)
type worker = {
  s : search;
  memo : (Traceset.t * int) NodeTbl.t;
  on_stack : int NodeTbl.t;  (* node -> entry depth (= stack index) *)
  mutable tick : int;
}

let fault_threshold rate =
  (* [Hashtbl.hash] ranges over [0, 2^30); a rate >= 1.0 must fire on
     every site. *)
  int_of_float (rate *. 1073741824.0)

let make_search code atomics disc cfg =
  {
    code;
    atomics;
    disc;
    cfg;
    stats = Stats.create ();
    memo_merged = NodeTbl.create 1024;
    memo_lock = Mutex.create ();
    cert_cache = CertShards.create 1024;
    cand_cache = CertShards.create 1024;
    deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
        cfg.Config.deadline_ms;
    fault =
      Option.map
        (fun f -> (f.Config.fault_seed, fault_threshold f.Config.fault_rate))
        cfg.Config.fault;
    out_of_time = Atomic.make false;
    out_of_mem = Atomic.make false;
  }

let make_worker s =
  { s; memo = NodeTbl.create 1024; on_stack = NodeTbl.create 256; tick = 0 }

(* Wall-clock and heap probes are amortized over this many calls; the
   node budget and the sticky flags are checked every time. *)
let probe_mask = 0x3F

let budget_stop w : Errors.reason option =
  let s = w.s in
  w.tick <- w.tick + 1;
  if w.tick land probe_mask = 0 then begin
    (match s.deadline with
    | Some d when Unix.gettimeofday () > d -> Atomic.set s.out_of_time true
    | _ -> ());
    match s.cfg.Config.max_live_words with
    | Some words when (Gc.quick_stat ()).Gc.heap_words > words ->
        Atomic.set s.out_of_mem true
    | _ -> ()
  end;
  if Atomic.get s.out_of_time then begin
    Atomic.incr s.stats.Stats.deadline_hits;
    Some Errors.Deadline
  end
  else if Atomic.get s.out_of_mem then begin
    Atomic.incr s.stats.Stats.oom_hits;
    Some Errors.Oom
  end
  else
    match s.cfg.Config.max_nodes with
    | Some n when Atomic.get s.stats.Stats.nodes >= n ->
        Atomic.incr s.stats.Stats.node_budget_hits;
        Some Errors.Node_budget
    | _ -> None

(* Deterministic fault injection.  A site fires iff
   [hash (seed, site, salt) < rate * 2^30] — a pure function of the
   fault seed and the machine state (NOT of the draw order or the
   schedule), so the same sites fire no matter how the search is split
   across domains, and the set of firing sites grows monotonically
   with the rate.  A firing site either cuts the enumeration subtree
   or answers a certification query "inconsistent"/"no candidates" —
   every move only removes behaviours, so completed traces under any
   schedule are a subset of the fault-free run
   (test/test_robustness.ml). *)
let salt_cut = 0x11
let salt_cert = 0x22
let salt_cand = 0x33

let fault_fires s site salt =
  match s.fault with
  | None -> false
  | Some (seed, threshold) -> Hashtbl.hash (seed, site, salt) < threshold

let node_fault_fires s n =
  let fire = fault_fires s (Node.hash n) salt_cut in
  if fire then Atomic.incr s.stats.Stats.faults_injected;
  fire

(* Certification is the engine's dominant cost, so its run time is
   always histogrammed; the observe is two clock reads against a full
   consistency search. *)
let cert_hist =
  Obs.Metrics.histogram ~help:"Certification consistency-check run time"
    "psopt_explore_cert_run_duration_ns"

let run_cert s ts mem =
  Obs.Trace.span ~cat:"explore" "certify" (fun () ->
      Obs.Metrics.time cert_hist (fun () ->
          Ps.Cert.consistent ~fuel:s.cfg.Config.cert_fuel
            ~cap:s.cfg.Config.cap_certification ~code:s.code ts mem))

(* Exact certification accounting: every call bumps [cert_checks] and
   then exactly one of [cert_faults] / [cert_trivial] /
   [cert_cache_hits] / [cert_runs]. *)
let consistent s ts mem =
  Atomic.incr s.stats.Stats.cert_checks;
  (* An injected fault answers "inconsistent" without consulting the
     cache, so the cache stays pure; the decision is a pure function
     of the configuration, so it is the same on every path and every
     domain that reaches it. *)
  if fault_fires s (CertKey.hash (ts, mem)) salt_cert then begin
    Atomic.incr s.stats.Stats.cert_faults;
    Atomic.incr s.stats.Stats.faults_injected;
    false
  end
  else if
    (* Promise-free thread states are trivially consistent; don't
       spend a hash of the whole configuration on them. *)
    Ps.Thread.concrete_promises ts = []
  then begin
    Atomic.incr s.stats.Stats.cert_trivial;
    true
  end
  else if not s.cfg.Config.cert_cache then begin
    Atomic.incr s.stats.Stats.cert_runs;
    run_cert s ts mem
  end
  else
    let key = (ts, mem) in
    match CertShards.find_opt s.cert_cache key with
    | Some verdict ->
        Atomic.incr s.stats.Stats.cert_cache_hits;
        verdict
    | None ->
        Atomic.incr s.stats.Stats.cert_runs;
        let verdict = run_cert s ts mem in
        CertShards.replace s.cert_cache key verdict;
        verdict

let promise_candidates s ts mem =
  match s.cfg.Config.promise_mode with
  | Config.No_promises -> []
  | Config.Syntactic | Config.Semantic
    when fault_fires s (CertKey.hash (ts, mem)) salt_cand ->
      (* Candidate discovery killed by an injected fault: no promise
         successors from here — behaviours shrink, never grow. *)
      Atomic.incr s.stats.Stats.faults_injected;
      []
  | Config.Syntactic -> Ps.Thread.writes_in_code ~code:s.code ts
  | Config.Semantic -> (
      (* Candidate discovery is the other certification search, run
         for every node with promise budget left; like the verdicts it
         is a pure function of the configuration, so it shares the
         cache discipline (hits are counted separately in
         [cand_cache_hits]). *)
      let compute () =
        Obs.Trace.span ~cat:"explore" "candidates" (fun () ->
            Ps.Cert.certifiable_writes ~fuel:s.cfg.Config.cert_fuel
              ~code:s.code ts mem)
      in
      if not s.cfg.Config.cert_cache then compute ()
      else
        let key = (ts, mem) in
        match CertShards.find_opt s.cand_cache key with
        | Some cands ->
            Atomic.incr s.stats.Stats.cand_cache_hits;
            cands
        | None ->
            let cands = compute () in
            CertShards.replace s.cand_cache key cands;
            cands)

let successors s (n : Node.t) : succ list =
  let w = n.world in
  let ts = Ps.Machine.cur_ts w in
  let mem = w.Ps.Machine.mem in
  let promised_cur =
    match TidMap.find_opt w.Ps.Machine.cur n.promised with
    | Some k -> k
    | None -> 0
  in
  (* The current thread's consistency gates outputs and switches; it
     is cheap when the thread has no promises. *)
  let committed = lazy (consistent s ts mem) in
  let bit_after te =
    match s.disc with
    | Interleaving -> Some true
    | Non_preemptive -> Npsem.bit_after te ~before:n.bit
  in
  let lift (step : Ps.Thread.step) : succ option =
    match bit_after step.Ps.Thread.event with
    | None -> None
    | Some bit -> (
        let world = Ps.Machine.set_cur_ts w step.Ps.Thread.ts step.Ps.Thread.mem in
        let next = { n with Node.world; bit } in
        match step.Ps.Thread.event with
        | Ps.Event.Out v ->
            if Lazy.force committed then Some { emit = Some v; next } else None
        | _ -> Some { emit = None; next })
  in
  let regular = List.filter_map lift (Ps.Thread.steps ~code:s.code ts mem) in
  let promises =
    let budget_left = promised_cur < s.cfg.Config.max_promises in
    let sched_ok =
      (match s.disc with Interleaving -> true | Non_preemptive -> n.bit)
      && not (Ps.Local.is_finished ts.Ps.Thread.local)
    in
    if not (budget_left && sched_ok) then begin
      (* Under [strict_promises], a nonempty candidate set suppressed
         purely by the promise budget counts as truncation (a
         conservative over-approximation: the candidates are not
         re-certified here, so this can only push verdicts toward
         inconclusive, never toward a claim). *)
      if s.cfg.Config.strict_promises && sched_ok && not budget_left then
        if promise_candidates s ts mem <> [] then
          Atomic.incr s.stats.Stats.promise_budget_hits;
      []
    end
    else
      let candidates = promise_candidates s ts mem in
      Ps.Thread.promise_steps ~candidates ~atomics:s.atomics ts mem
      |> List.filter_map (fun (step : Ps.Thread.step) ->
             (* A promise must remain certifiable with the chosen
                slot; pruning inconsistent promise placements is sound
                because a τ machine step must end consistent. *)
             if consistent s step.Ps.Thread.ts step.Ps.Thread.mem then (
               Atomic.incr s.stats.Stats.promises;
               let world =
                 Ps.Machine.set_cur_ts w step.Ps.Thread.ts step.Ps.Thread.mem
               in
               let promised =
                 TidMap.add w.Ps.Machine.cur (promised_cur + 1) n.promised
               in
               Some
                 { emit = None; next = { Node.world; bit = n.bit; promised } })
             else None)
  in
  let reservations =
    if not s.cfg.Config.reservations then []
    else
      let rsv_allowed =
        (match s.disc with Interleaving -> true | Non_preemptive -> n.bit)
        (* one outstanding reservation per thread: reserve/cancel
           cycles otherwise defeat memoization (every cycle member is
           taint-excluded) and blow up the search *)
        && List.for_all
             (fun m -> not (Ps.Message.is_reservation m))
             ts.Ps.Thread.prm
      in
      let rsvs =
        if rsv_allowed then Ps.Thread.reserve_steps ts mem else []
      in
      let ccls = Ps.Thread.cancel_steps ts mem in
      List.filter_map lift (rsvs @ ccls)
  in
  let switches =
    let may =
      (match s.disc with
      | Interleaving -> true
      | Non_preemptive ->
          (* The switch bit guards blocks of non-atomic accesses; a
             finished thread has no block in progress, so the machine
             may always move on from it. *)
          n.bit || Ps.Local.is_finished ts.Ps.Thread.local)
      && Lazy.force committed
    in
    if not may then []
    else
      TidMap.fold
        (fun tid ts' acc ->
          if tid <> w.Ps.Machine.cur
             && not (Ps.Local.is_finished ts'.Ps.Thread.local)
          then
            {
              emit = None;
              next = { n with Node.world = Ps.Machine.switch w tid; bit = true };
            }
            :: acc
          else acc)
        w.Ps.Machine.tp []
  in
  regular @ promises @ reservations @ switches

(* Depth-first computation of the suffix trace set of a node.

   Taint discipline: [dfs] returns the suffixes together with the
   lowest stack index this result depends on ([max_int] if none).  A
   result is memoized only when it closes over its own subtree —
   cycle heads included, inner cycle members excluded — and never when
   the depth budget truncated it.

   Depth honesty: [dfs] additionally returns the deepest entry depth
   reached in its subtree (virtual for memo hits), and the memo stores
   it relative to the memoizing depth.  An entry is reused at depth
   [d] only when [d + rel_peak < max_steps] — i.e. exactly when a
   fresh recomputation would also complete without hitting the step
   budget.  Reuse is therefore recomputation-equivalent, which is what
   makes the traceset a pure function of the node and the remaining
   depth budget — independent of visit order, memo state, and hence of
   how the parallel engine splits the search (docs/PARALLEL.md). *)
let max_taint = max_int

let cut_traces = Traceset.singleton (Ps.Event.trace_cut [])
let open_traces = Traceset.singleton { Ps.Event.outs = []; ending = Ps.Event.Open }

(* [dfs w n depth] -> [(suffixes, taint, peak)].  [depth] doubles as
   the stack index: both start at 0 at the search root and increment
   together on every recursive call. *)
let rec dfs w (n : Node.t) depth : Traceset.t * int * int =
  let s = w.s in
  Stats.record_max s.stats.Stats.peak_depth depth;
  if depth >= s.cfg.Config.max_steps then begin
    Atomic.incr s.stats.Stats.cuts;
    (cut_traces, -1, depth)
  end
  else if budget_stop w <> None then
    (* Deadline / node budget / heap budget: the subtree is abandoned
       with the same honest [Cut] marker (and the same negative taint,
       so nothing truncated is ever memoized) as a depth cut; the
       per-reason stats counter was incremented by [budget_stop]. *)
    (cut_traces, -1, depth)
  else if node_fault_fires s n then (cut_traces, -1, depth)
  else
    match NodeTbl.find_opt w.memo n with
    | Some (traces, rel_peak) when depth + rel_peak < s.cfg.Config.max_steps ->
        Atomic.incr s.stats.Stats.memo_hits;
        (traces, max_taint, depth + rel_peak)
    | _ -> (
        match NodeTbl.find_opt w.on_stack n with
        | Some ix ->
            (* Back-edge: divergence.  The honest behaviour is the
               prefix observed so far, i.e. the empty suffix with an
               [Open] ending. *)
            Atomic.incr s.stats.Stats.cycles;
            (open_traces, ix, depth)
        | None ->
            Atomic.incr s.stats.Stats.nodes;
            NodeTbl.add w.on_stack n depth;
            let base =
              if Ps.Machine.terminal n.world then
                Traceset.singleton (Ps.Event.trace_done [])
              else Traceset.empty
            in
            let succs = successors s n in
            ignore
              (Atomic.fetch_and_add s.stats.Stats.transitions
                 (List.length succs));
            let base =
              if Traceset.is_empty base && succs = [] then
                (* Stuck without terminating: an execution that cannot
                   commit further; its observable behaviour is the
                   open prefix. *)
                open_traces
              else base
            in
            let traces, taint, peak =
              List.fold_left
                (fun (acc, taint, peak) { emit; next } ->
                  let sub, t, pk = dfs w next (depth + 1) in
                  let sub =
                    match emit with
                    | Some v -> Traceset.prepend v sub
                    | None -> sub
                  in
                  (Traceset.union acc sub, min taint t, max peak pk))
                (base, max_taint, depth) succs
            in
            NodeTbl.remove w.on_stack n;
            if s.cfg.Config.memoize && taint >= depth && taint >= 0 then begin
              (* No dependency below this node on the stack (cycle
                 heads close here) and no cut anywhere in the subtree:
                 safe to memoize, with the peak made depth-relative. *)
              NodeTbl.replace w.memo n (traces, peak - depth);
              (traces, max_taint, peak)
            end
            else (traces, taint, peak))

let merge_memo w =
  Obs.Trace.span ~cat:"explore" "memo" (fun () ->
      let s = w.s in
      Mutex.lock s.memo_lock;
      NodeTbl.iter (fun n e -> NodeTbl.replace s.memo_merged n e) w.memo;
      Mutex.unlock s.memo_lock)

(* ------------------------------------------------------------------ *)
(* The parallel engine: plan / execute / fold.

   Plan: the coordinator runs a breadth-first expansion of the search
   tree — replicating [dfs]'s per-node decisions exactly (depth cut,
   global budgets, fault, ancestor cycle) — until the frontier holds
   enough unexpanded leaves to feed the pool.

   Execute: each leaf subtree is a task; a worker seeds its on-stack
   table with the leaf's ancestor chain (the exact stack the
   sequential DFS would carry there) and runs [dfs] from the leaf.
   Memo tables are domain-local and merged on join.

   Fold: the coordinator folds the plan tree bottom-up with the same
   union/prepend/min-taint accumulation as [dfs], so the root traceset
   is byte-identical to the sequential one — see the purity argument
   at [dfs]. *)

type pnode = {
  pn : Node.t;
  pdepth : int;
  pparent : pnode option;
  pemit : Lang.Ast.value option;  (* edge label from the parent *)
  mutable pbase : Traceset.t;
  mutable pchildren : pnode list option;  (* Some: expanded in planning *)
  mutable presolved : (Traceset.t * int * int) option;
}

let plan wc root j =
  let s = wc.s in
  let target = 8 * j in
  let expansion_cap = 64 * j in
  let proot =
    {
      pn = root;
      pdepth = 0;
      pparent = None;
      pemit = None;
      pbase = Traceset.empty;
      pchildren = None;
      presolved = None;
    }
  in
  let q = Queue.create () in
  Queue.push proot q;
  let frontier = ref 1 in
  let expansions = ref 0 in
  let leaves = ref [] in
  while (not (Queue.is_empty q)) && !frontier < target && !expansions < expansion_cap do
    let p = Queue.pop q in
    decr frontier;
    let n = p.pn and depth = p.pdepth in
    Stats.record_max s.stats.Stats.peak_depth depth;
    if depth >= s.cfg.Config.max_steps then begin
      Atomic.incr s.stats.Stats.cuts;
      p.presolved <- Some (cut_traces, -1, depth)
    end
    else if budget_stop wc <> None then p.presolved <- Some (cut_traces, -1, depth)
    else if node_fault_fires s n then p.presolved <- Some (cut_traces, -1, depth)
    else begin
      (* Ancestor-chain cycle check: the plan-tree ancestors of [p]
         are exactly the DFS stack under which [p] would be visited. *)
      let rec back = function
        | None -> None
        | Some a -> if Node.equal a.pn n then Some a.pdepth else back a.pparent
      in
      match back p.pparent with
      | Some ix ->
          Atomic.incr s.stats.Stats.cycles;
          p.presolved <- Some (open_traces, ix, depth)
      | None ->
          Atomic.incr s.stats.Stats.nodes;
          incr expansions;
          let base =
            if Ps.Machine.terminal n.world then
              Traceset.singleton (Ps.Event.trace_done [])
            else Traceset.empty
          in
          let succs = successors s n in
          ignore
            (Atomic.fetch_and_add s.stats.Stats.transitions (List.length succs));
          if Traceset.is_empty base && succs = [] then
            p.presolved <- Some (open_traces, max_taint, depth)
          else begin
            p.pbase <- base;
            let children =
              List.map
                (fun { emit; next } ->
                  {
                    pn = next;
                    pdepth = depth + 1;
                    pparent = Some p;
                    pemit = emit;
                    pbase = Traceset.empty;
                    pchildren = None;
                    presolved = None;
                  })
                succs
            in
            p.pchildren <- Some children;
            List.iter
              (fun c ->
                Queue.push c q;
                incr frontier)
              children
          end
    end
  done;
  Queue.iter (fun p -> leaves := p :: !leaves) q;
  (proot, List.rev !leaves)

let run_task w leaf =
  NodeTbl.reset w.on_stack;
  let rec seed = function
    | None -> ()
    | Some a ->
        NodeTbl.replace w.on_stack a.pn a.pdepth;
        seed a.pparent
  in
  seed leaf.pparent;
  dfs w leaf.pn leaf.pdepth

let rec fold_plan cfg p =
  match p.presolved with
  | Some r -> r
  | None -> (
      match p.pchildren with
      | None ->
          (* unreachable: every unexpanded leaf was resolved by a task *)
          assert false
      | Some children ->
          let traces, taint, peak =
            List.fold_left
              (fun (acc, taint, peak) c ->
                let sub, t, pk = fold_plan cfg c in
                let sub =
                  match c.pemit with
                  | Some v -> Traceset.prepend v sub
                  | None -> sub
                in
                (Traceset.union acc sub, min taint t, max peak pk))
              (p.pbase, max_taint, p.pdepth) children
          in
          if cfg.Config.memoize && taint >= p.pdepth && taint >= 0 then
            (traces, max_taint, peak)
          else (traces, taint, peak))

let parallel_traces s root j =
  let wc = make_worker s in
  let proot, leaves = plan wc root j in
  (match leaves with
  | [] -> ()
  | _ ->
      let results =
        Pool.map_with ~j
          ~init:(fun () -> make_worker s)
          ~finish:merge_memo
          run_task leaves
      in
      List.iter2 (fun leaf r -> leaf.presolved <- Some r) leaves results);
  let traces, _, _ = fold_plan s.cfg proot in
  traces

let effective_domains cfg = max 1 (min cfg.Config.domains Pool.domain_cap)

let finish_stats s =
  Atomic.set s.stats.Stats.memo_size (NodeTbl.length s.memo_merged);
  Atomic.set s.stats.Stats.cert_cache_size
    (CertShards.length s.cert_cache + CertShards.length s.cand_cache);
  Stats.finish s.stats

let record_domains s used =
  Atomic.set s.stats.Stats.domains_used used;
  Atomic.set s.stats.Stats.domains_recommended
    (Domain.recommended_domain_count ())

let behaviors ?(config = Config.default) disc (p : Lang.Ast.program) =
  match Ps.Machine.init p with
  | Error e -> Error e
  | Ok world ->
      let s = make_search p.Lang.Ast.code p.Lang.Ast.atomics disc config in
      let root = { Node.world; bit = true; promised = TidMap.empty } in
      let j = effective_domains config in
      record_domains s j;
      let traces =
        Obs.Trace.span ~cat:"explore" "enumerate" (fun () ->
            if j <= 1 then begin
              let w = make_worker s in
              let traces, _, _ = dfs w root 0 in
              merge_memo w;
              traces
            end
            else parallel_traces s root j)
      in
      finish_stats s;
      let completeness =
        match Stats.truncation_reasons s.stats with
        | [] -> Exhaustive
        | reasons -> Truncated reasons
      in
      Ok
        {
          traces;
          completeness;
          exact = completeness = Exhaustive;
          stats = s.stats;
        }

let behaviors_exn ?config disc p =
  match behaviors ?config disc p with
  | Ok o -> o
  | Error e -> raise (Errors.Error (Errors.Ill_formed e))

let iter_reachable ?(config = Config.default) disc (p : Lang.Ast.program) ~f =
  match Ps.Machine.init p with
  | Error e -> Error e
  | Ok world ->
      let s = make_search p.Lang.Ast.code p.Lang.Ast.atomics disc config in
      (* The reachability walk streams states to [f] in visit order,
         so it stays single-domain; [Race.check_all] parallelizes at
         the granularity of whole scans instead. *)
      record_domains s 1;
      let w = make_worker s in
      (* Best (lowest) depth each node was expanded at.  Marking a node
         visited at the depth it is *first* seen is wrong under a step
         budget: a node first reached near [max_steps] would never be
         re-expanded when later reachable at a shallower depth, cutting
         off its successors and undercounting both states and
         transitions.  Re-expansion on improvement makes the walk
         budget-complete: every state reachable within [max_steps]
         micro-steps along some path is visited. *)
      let best = NodeTbl.create 1024 in
      let rec visit (n : Node.t) depth =
        if depth >= s.cfg.Config.max_steps then
          Atomic.incr s.stats.Stats.cuts
        else if budget_stop w <> None || node_fault_fires s n then
          (* Budget or fault: skip the subtree.  The stats counters
             record the reason, so callers recover completeness via
             [Stats.truncation_reasons]. *)
          ()
        else
          let prev = NodeTbl.find_opt best n in
          match prev with
          | Some d when d <= depth -> ()
          | _ ->
              Stats.record_max s.stats.Stats.peak_depth depth;
              NodeTbl.replace best n depth;
              let first = prev = None in
              if first then begin
                Atomic.incr s.stats.Stats.nodes;
                let ts = Ps.Machine.cur_ts n.world in
                let committed = consistent s ts n.world.Ps.Machine.mem in
                f ~committed n.Node.world
              end;
              let succs = successors s n in
              if first then
                ignore
                  (Atomic.fetch_and_add s.stats.Stats.transitions
                     (List.length succs));
              List.iter (fun { next; _ } -> visit next (depth + 1)) succs
      in
      Obs.Trace.span ~cat:"explore" "enumerate" (fun () ->
          visit { Node.world; bit = true; promised = TidMap.empty } 0);
      Atomic.set s.stats.Stats.memo_size (NodeTbl.length best);
      Atomic.set s.stats.Stats.cert_cache_size
        (CertShards.length s.cert_cache + CertShards.length s.cand_cache);
      Stats.finish s.stats;
      Ok s.stats
