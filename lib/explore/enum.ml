module TidMap = Ps.Machine.TidMap
module L = Stats.Local

type discipline = Interleaving | Non_preemptive

type completeness = Exhaustive | Truncated of Errors.reason list

type outcome = {
  traces : Traceset.t;
  completeness : completeness;
  exact : bool;
  stats : Stats.t;
}

let pp_completeness ppf = function
  | Exhaustive -> Format.pp_print_string ppf "exhaustive"
  | Truncated rs -> Format.fprintf ppf "truncated (%a)" Errors.pp_reasons rs

let pp_discipline ppf = function
  | Interleaving -> Format.pp_print_string ppf "interleaving"
  | Non_preemptive -> Format.pp_print_string ppf "non-preemptive"

(* A search node: machine world, switch bit (always [true] under the
   interleaving discipline) and per-thread promise budget spent. *)
module Node = struct
  type t = {
    world : Ps.Machine.world;
    bit : bool;
    promised : int TidMap.t;
    (* Memoized structural hash, 0 = not yet computed.  Hashing a node
       walks the entire world (every thread's views plus the whole
       memory), so it is far too expensive to redo on every table
       probe — and published cache entries carry their hash to the
       absorbing domain for free.  The unsynchronized write is benign:
       every racing writer stores the same value. *)
    mutable hv : int;
  }

  let make ~world ~bit ~promised = { world; bit; promised; hv = 0 }

  let compare a b =
    let c = Ps.Machine.compare a.world b.world in
    if c <> 0 then c
    else
      let c = Bool.compare a.bit b.bit in
      if c <> 0 then c else TidMap.compare Int.compare a.promised b.promised

  let equal a b = a == b || compare a b = 0

  let hash n =
    if n.hv <> 0 then n.hv
    else begin
      let promised =
        TidMap.fold
          (fun tid k h -> Rat.hash_combine (Rat.hash_combine h tid) k)
          n.promised 0x6e6f
      in
      let h =
        Rat.hash_combine
          (Rat.hash_combine (Ps.Machine.hash n.world) (Bool.to_int n.bit))
          promised
      in
      let h = if h = 0 then 0x6e6f else h in
      n.hv <- h;
      h
    end
end

module NodeTbl = Hashtbl.Make (Node)

(* Certification-cache key: the certified configuration.  The verdict
   of [Ps.Cert.consistent] is a pure function of the thread state and
   the memory (fuel, capping and code are fixed per search), so one
   entry answers every successor enumeration that reaches the same
   configuration — which the interleavings of the other threads do
   constantly. *)
module CertKey = struct
  type t = { ts : Ps.Thread.ts; mem : Ps.Memory.t; mutable khv : int }

  let make ts mem = { ts; mem; khv = 0 }

  let equal a b =
    a == b || (Ps.Thread.equal a.ts b.ts && Ps.Memory.equal a.mem b.mem)

  (* Same memoization scheme as {!Node.hash}: the key hash walks the
     thread state and the whole memory, and each key is probed several
     times (fault site, cache lookup, cache insert, absorption). *)
  let hash k =
    if k.khv <> 0 then k.khv
    else begin
      let h = Rat.hash_combine (Ps.Thread.hash k.ts) (Ps.Memory.hash k.mem) in
      let h = if h = 0 then 0x4b45 else h in
      k.khv <- h;
      h
    end
end

module CertTbl = Hashtbl.Make (CertKey)

(* One successor: the output emitted (if any) and the next node. *)
type succ = { emit : Lang.Ast.value option; next : Node.t }

(* State shared by every worker domain of one search.

   The hot-path caches (cert verdicts, promise candidates, memoized
   suffix sets) are domain-local; fresh entries flow between domains
   through the lock-free {!Pool.Chan} channels in batches, so the hot
   path never takes a lock and never touches a contended cache line.
   The [*_merged] tables exist only for the end-of-search size stats
   and are filled under [merge_lock] when workers finish.

   The sticky resource flags are atomics so one worker tripping the
   wall-clock or heap budget abandons every other worker's remaining
   subtrees too; [node_count] is a shared exact counter allocated only
   when [max_nodes] is configured (the budget must trip at the
   configured total across domains, which batched per-domain counters
   cannot guarantee). *)
(* Reduction context, computed once per search from the program
   (docs/REDUCTION.md).  [classes] lists the groups of >= 2 threads
   running syntactically identical code (tids ascending, the
   contiguous ids [Ps.Machine.init] assigns); [class_of.(tid)] is the
   index of the class containing [tid], or -1; [thread_fns.(tid)] is
   the thread's root function name (the only fname that can differ
   between same-class threads — [equal_codeheap] equality forces
   equal [Call] targets, so callee names are shared); [acyclic.(tid)]
   says the thread's whole program is Call-free with a DAG block
   graph — the gate for the symmetric-sibling switch prune;
   [private_vars.(tid)] holds the locations accessed (syntactically,
   calls included) by thread [tid] and by no other thread — accesses
   to them commute with every other thread's step, extending the
   ample τ rule. *)
type red = {
  por : bool;
  sym : bool;
  classes : int array list;
  class_of : int array;
  thread_fns : string array;
  acyclic : bool array;
  private_vars : Lang.Ast.VarSet.t array;
}

type search = {
  code : Lang.Ast.code;
  atomics : Lang.Ast.VarSet.t;
  disc : discipline;
  cfg : Config.t;
  red : red;
  stats : Stats.t;
  memo_merged : (Traceset.t * int) NodeTbl.t;
  cert_merged : bool CertTbl.t;
  cand_merged : (Lang.Ast.var * Lang.Ast.value) list CertTbl.t;
  merge_lock : Mutex.t;
  cert_chan : (CertKey.t * bool) Pool.Chan.t;
  cand_chan : (CertKey.t * (Lang.Ast.var * Lang.Ast.value) list) Pool.Chan.t;
  memo_chan : (Node.t * (Traceset.t * int)) Pool.Chan.t;
  deadline : float option;  (* absolute, [Unix.gettimeofday] scale *)
  fault : (int * int) option;  (* seed, threshold in [0, 2^30] *)
  out_of_time : bool Atomic.t;
  out_of_mem : bool Atomic.t;
  node_count : int Atomic.t option;  (* Some iff max_nodes is set *)
}

(* Per-domain state.  Everything the DFS hot path touches is
   unsynchronized: the caches, the on-stack table, the stats batch
   ([ls], flushed into the shared atomics by [finish_worker]) and the
   publication buffers.  [tick] amortizes the clock/heap probes and
   channel absorption. *)
type worker = {
  s : search;
  id : int;
  parallel : bool;
  ls : L.t;
  memo : (Traceset.t * int) NodeTbl.t;
  cert_cache : bool CertTbl.t;
  cand_cache : (Lang.Ast.var * Lang.Ast.value) list CertTbl.t;
  on_stack : int NodeTbl.t;  (* node -> entry depth (= stack index) *)
  mutable tick : int;
  mutable pub_pending : int;
  mutable pub_cert : (CertKey.t * bool) list;
  mutable pub_cand : (CertKey.t * (Lang.Ast.var * Lang.Ast.value) list) list;
  mutable pub_memo : (Node.t * (Traceset.t * int)) list;
  mutable cert_mark : (CertKey.t * bool) Pool.Chan.mark;
  mutable cand_mark : (CertKey.t * (Lang.Ast.var * Lang.Ast.value) list) Pool.Chan.mark;
  mutable memo_mark : (Node.t * (Traceset.t * int)) Pool.Chan.mark;
}

let fault_threshold rate =
  (* [Hashtbl.hash] ranges over [0, 2^30); a rate >= 1.0 must fire on
     every site. *)
  int_of_float (rate *. 1073741824.0)

let no_red =
  {
    por = false;
    sym = false;
    classes = [];
    class_of = [||];
    thread_fns = [||];
    acyclic = [||];
    private_vars = [||];
  }

(* The locations a thread rooted at [fname] can touch: every
   [Load]/[Store]/[Cas] var in code reachable through [Call]s.  Used
   to find thread-private locations — promise candidates are
   syntactic too, so a location outside every other thread's access
   set can never gain a message or a reader from them. *)
let accessed_vars code fname =
  let seen = Hashtbl.create 8 in
  let acc = ref Lang.Ast.VarSet.empty in
  let rec go fn =
    if not (Hashtbl.mem seen fn) then begin
      Hashtbl.add seen fn ();
      match Lang.Ast.FnameMap.find_opt fn code with
      | None -> ()
      | Some ch ->
          Lang.Ast.LabelMap.iter
            (fun _ (b : Lang.Ast.block) ->
              List.iter
                (fun (ins : Lang.Ast.instr) ->
                  match ins with
                  | Lang.Ast.Load (_, v, _)
                  | Lang.Ast.Store (v, _, _)
                  | Lang.Ast.Cas (_, v, _, _, _, _) ->
                      acc := Lang.Ast.VarSet.add v !acc
                  | Lang.Ast.Skip | Lang.Ast.Assign _ | Lang.Ast.Print _
                  | Lang.Ast.Fence _ ->
                      ())
                b.Lang.Ast.instrs;
              match b.Lang.Ast.term with
              | Lang.Ast.Call (f, _) -> go f
              | Lang.Ast.Jmp _ | Lang.Ast.Be _ | Lang.Ast.Return -> ())
            ch.Lang.Ast.blocks
    end
  in
  go fname;
  !acc

(* Substitute a thread's root function name.  A same-class thread's
   state mentions its own root fname in at most two places: the
   running position (while executing the root) and stack frames (the
   bottom frame returns into the root).  Callee names are shared
   across the class (see [red]), so this substitution maps a thread
   state onto the syntactically identical program of another class
   member, exactly. *)
let rename_root ~from_ ~to_ (ts : Ps.Thread.ts) =
  if String.equal from_ to_ then ts
  else
    let l = ts.Ps.Thread.local in
    let pos =
      match l.Ps.Local.pos with
      | Ps.Local.Running ({ fn; _ } as r) when String.equal fn from_ ->
          Ps.Local.Running { r with fn = to_ }
      | p -> p
    in
    let stack =
      List.map
        (fun (f : Ps.Local.frame) ->
          if String.equal f.Ps.Local.fn from_ then
            { f with Ps.Local.fn = to_ }
          else f)
        l.Ps.Local.stack
    in
    { ts with Ps.Thread.local = { l with Ps.Local.pos; stack } }

let block_succs (b : Lang.Ast.block) =
  match b.Lang.Ast.term with
  | Lang.Ast.Jmp l -> [ l ]
  | Lang.Ast.Be (_, l1, l2) -> [ l1; l2 ]
  | Lang.Ast.Call _ | Lang.Ast.Return -> []

(* Call-free with a DAG block graph: such a thread's control position
   strictly advances on every instruction and terminator step, which
   is what makes the symmetric-sibling prune exact (a pruned subtree's
   isomorphic image cannot collide with an on-stack ancestor that its
   kept sibling missed — docs/REDUCTION.md). *)
let fn_acyclic code fname =
  match Lang.Ast.FnameMap.find_opt fname code with
  | None -> false
  | Some ch ->
      let blocks = ch.Lang.Ast.blocks in
      Lang.Ast.LabelMap.for_all
        (fun _ (b : Lang.Ast.block) ->
          match b.Lang.Ast.term with Lang.Ast.Call _ -> false | _ -> true)
        blocks
      &&
      let color = Hashtbl.create 16 in
      (* tri-color DFS: 1 = on stack, 2 = done *)
      let rec dag l =
        match Hashtbl.find_opt color l with
        | Some 2 -> true
        | Some _ -> false
        | None -> (
            match Lang.Ast.LabelMap.find_opt l blocks with
            | None -> true (* dangling target: Lang.Wf rules it out *)
            | Some b ->
                Hashtbl.add color l 1;
                let ok = List.for_all dag (block_succs b) in
                Hashtbl.replace color l 2;
                ok)
      in
      Lang.Ast.LabelMap.for_all (fun l _ -> dag l) blocks

let compute_red code threads (cfg : Config.t) =
  let r = cfg.Config.reduction in
  if not (r.Config.por || r.Config.symmetry) then no_red
  else
    let acyclic =
      if r.Config.por then Array.of_list (List.map (fn_acyclic code) threads)
      else [||]
    in
    let private_vars =
      if not r.Config.por then [||]
      else
        let per_tid =
          Array.of_list (List.map (accessed_vars code) threads)
        in
        Array.mapi
          (fun i vs ->
            Lang.Ast.VarSet.filter
              (fun v ->
                let shared = ref false in
                Array.iteri
                  (fun j vs' ->
                    if j <> i && Lang.Ast.VarSet.mem v vs' then shared := true)
                  per_tid;
                not !shared)
              vs)
          per_tid
    in
    (* Group tids by syntactically identical programs.  Threads of
       the same fname are trivially identical; distinct fnames with
       [equal_codeheap]-equal bodies also qualify (equal terminators
       mean equal [Call] targets, so the transitive code is shared
       too).  Both reductions use the classes: canonicalization folds
       whole orbits onto one memo entry, and the symmetric-sibling
       switch prune needs the same-program guarantee to equate
       siblings up to their root fname. *)
    let groups : (Lang.Ast.codeheap * int list ref) list ref = ref [] in
    List.iteri
      (fun tid fname ->
        match Lang.Ast.FnameMap.find_opt fname code with
        | None -> ()
        | Some ch -> (
            match
              List.find_opt
                (fun (ch', _) -> Lang.Ast.equal_codeheap ch ch')
                !groups
            with
            | Some (_, tids) -> tids := tid :: !tids
            | None -> groups := (ch, ref [ tid ]) :: !groups))
      threads;
    let classes =
      List.rev !groups
      |> List.filter_map (fun (_, tids) ->
             match List.rev !tids with
             | _ :: _ :: _ as l -> Some (Array.of_list l)
             | _ -> None)
    in
    let class_of = Array.make (List.length threads) (-1) in
    List.iteri
      (fun i cls -> Array.iter (fun tid -> class_of.(tid) <- i) cls)
      classes;
    {
      por = r.Config.por;
      sym = r.Config.symmetry;
      classes;
      class_of;
      thread_fns = Array.of_list threads;
      acyclic;
      private_vars;
    }

let make_search ~threads code atomics disc cfg =
  {
    code;
    atomics;
    disc;
    cfg;
    red = compute_red code threads cfg;
    stats = Stats.create ();
    memo_merged = NodeTbl.create 1024;
    cert_merged = CertTbl.create 1024;
    cand_merged = CertTbl.create 1024;
    merge_lock = Mutex.create ();
    cert_chan = Pool.Chan.create ();
    cand_chan = Pool.Chan.create ();
    memo_chan = Pool.Chan.create ();
    deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
        cfg.Config.deadline_ms;
    fault =
      Option.map
        (fun f -> (f.Config.fault_seed, fault_threshold f.Config.fault_rate))
        cfg.Config.fault;
    out_of_time = Atomic.make false;
    out_of_mem = Atomic.make false;
    node_count =
      (match cfg.Config.max_nodes with
      | Some _ -> Some (Atomic.make 0)
      | None -> None);
  }

let make_worker ~id ~parallel s =
  {
    s;
    id;
    parallel;
    ls = L.create ();
    memo = NodeTbl.create 1024;
    cert_cache = CertTbl.create 1024;
    cand_cache = CertTbl.create 256;
    on_stack = NodeTbl.create 256;
    tick = 0;
    pub_pending = 0;
    pub_cert = [];
    pub_cand = [];
    pub_memo = [];
    cert_mark = Pool.Chan.genesis;
    cand_mark = Pool.Chan.genesis;
    memo_mark = Pool.Chan.genesis;
  }

(* Symmetry canonicalization (docs/REDUCTION.md): permute the thread
   records of each symmetry class into a canonical slot order.
   Applied ONLY to memo-table keys — never to cycle detection or fault
   sites — so orbit-equivalent subtrees fold onto one memo entry.
   Sound because the taint-qualified memo entries are context-free,
   traces carry no thread identifiers, and permuting
   identical-program threads across tid slots is a step-for-step
   subtree isomorphism (same traceset, same depth profile).  The sort
   key puts the current thread's record first, then orders by thread
   state and spent promise budget, so any two orbit members canonize
   to the same node.  Class members may run under distinct root
   fnames (identical bodies); each member is renamed to the class
   representative's fname before sorting — making the order a pure
   function of thread *state*, not thread identity — and renamed
   again to its destination slot's fname on assignment, so the result
   is a well-formed state of the original program.  Returns the
   argument physically ([==]) when the permutation is the identity,
   so callers can count genuine folds. *)
let canon s (n : Node.t) : Node.t =
  if not (s.red.sym && s.red.classes <> []) then n
  else begin
    let wd = n.Node.world in
    let changed = ref false in
    let tp = ref wd.Ps.Machine.tp in
    let promised = ref n.Node.promised in
    let cur = ref wd.Ps.Machine.cur in
    List.iter
      (fun cls ->
        let rep_fn = s.red.thread_fns.(cls.(0)) in
        let members =
          Array.map
            (fun tid ->
              let ts = TidMap.find tid wd.Ps.Machine.tp in
              let ts =
                rename_root ~from_:s.red.thread_fns.(tid) ~to_:rep_fn ts
              in
              let p =
                match TidMap.find_opt tid n.Node.promised with
                | Some k -> k
                | None -> 0
              in
              (tid = wd.Ps.Machine.cur, ts, p, tid))
            cls
        in
        Array.sort
          (fun (c1, t1, p1, _) (c2, t2, p2, _) ->
            match Bool.compare c2 c1 with
            | 0 -> (
                match Ps.Thread.compare t1 t2 with
                | 0 -> Int.compare p1 p2
                | c -> c)
            | c -> c)
          members;
        Array.iteri
          (fun i (is_cur, ts, p, orig_tid) ->
            let slot = cls.(i) in
            if slot <> orig_tid then changed := true;
            let ts =
              rename_root ~from_:rep_fn ~to_:s.red.thread_fns.(slot) ts
            in
            tp := TidMap.add slot ts !tp;
            promised :=
              (if p > 0 then TidMap.add slot p !promised
               else TidMap.remove slot !promised);
            if is_cur then cur := slot)
          members)
      s.red.classes;
    if not !changed then n
    else
      Node.make
        ~world:{ wd with Ps.Machine.tp = !tp; cur = !cur }
        ~bit:n.Node.bit ~promised:!promised
  end

(* ---- domain-local cache publication ----
   Fresh entries are buffered and pushed as one immutable batch every
   [publish_period] entries; other workers absorb at their probe tick
   and when idle.  Every published value is a pure function of its key
   (the cache-soundness invariant), so at-least-once unordered
   delivery is benign and absorbing keeps determinism: a hit is
   recomputation-equivalent no matter which domain computed it. *)

let publish_now w =
  let s = w.s in
  if w.pub_cert <> [] then begin
    Pool.Chan.publish s.cert_chan (Array.of_list w.pub_cert);
    w.pub_cert <- []
  end;
  if w.pub_cand <> [] then begin
    Pool.Chan.publish s.cand_chan (Array.of_list w.pub_cand);
    w.pub_cand <- []
  end;
  if w.pub_memo <> [] then begin
    Pool.Chan.publish s.memo_chan (Array.of_list w.pub_memo);
    w.pub_memo <- []
  end;
  w.pub_pending <- 0

let queued w =
  w.pub_pending <- w.pub_pending + 1;
  if w.pub_pending >= w.s.cfg.Config.publish_period then publish_now w

let absorb w =
  let s = w.s in
  w.cert_mark <-
    Pool.Chan.drain s.cert_chan ~since:w.cert_mark ~f:(fun (k, v) ->
        if not (CertTbl.mem w.cert_cache k) then CertTbl.add w.cert_cache k v);
  w.cand_mark <-
    Pool.Chan.drain s.cand_chan ~since:w.cand_mark ~f:(fun (k, v) ->
        if not (CertTbl.mem w.cand_cache k) then CertTbl.add w.cand_cache k v);
  w.memo_mark <-
    Pool.Chan.drain s.memo_chan ~since:w.memo_mark ~f:(fun (n, e) ->
        if not (NodeTbl.mem w.memo n) then NodeTbl.add w.memo n e)

(* Wall-clock and heap probes are amortized over this many calls; the
   node budget and the sticky flags are checked every time.  Channel
   absorption runs on a much shorter cycle: a drain with nothing new
   costs three atomic loads, while every tick of absorption latency is
   a tick in which another domain may re-expand a subtree this one
   already memoized. *)
let probe_mask = 0x3F
let absorb_mask = 0x07

let budget_stop w : Errors.reason option =
  let s = w.s in
  let ls = w.ls in
  w.tick <- w.tick + 1;
  if w.parallel && w.tick land absorb_mask = 0 then absorb w;
  if w.tick land probe_mask = 0 then begin
    (match s.deadline with
    | Some d when Unix.gettimeofday () > d -> Atomic.set s.out_of_time true
    | _ -> ());
    match s.cfg.Config.max_live_words with
    | Some words when (Gc.quick_stat ()).Gc.heap_words > words ->
        Atomic.set s.out_of_mem true
    | _ -> ()
  end;
  if Atomic.get s.out_of_time then begin
    ls.L.deadline_hits <- ls.L.deadline_hits + 1;
    Some Errors.Deadline
  end
  else if Atomic.get s.out_of_mem then begin
    ls.L.oom_hits <- ls.L.oom_hits + 1;
    Some Errors.Oom
  end
  else
    match (s.cfg.Config.max_nodes, s.node_count) with
    | Some n, Some c when Atomic.get c >= n ->
        ls.L.node_budget_hits <- ls.L.node_budget_hits + 1;
        Some Errors.Node_budget
    | _ -> None

(* Deterministic fault injection.  A site fires iff
   [hash (seed, site, salt) < rate * 2^30] — a pure function of the
   fault seed and the machine state (NOT of the draw order or the
   schedule), so the same sites fire no matter how the search is split
   across domains, and the set of firing sites grows monotonically
   with the rate.  A firing site either cuts the enumeration subtree
   or answers a certification query "inconsistent"/"no candidates" —
   every move only removes behaviours, so completed traces under any
   schedule are a subset of the fault-free run
   (test/test_robustness.ml). *)
let salt_cut = 0x11
let salt_cert = 0x22
let salt_cand = 0x33

let fault_fires s site salt =
  match s.fault with
  | None -> false
  | Some (seed, threshold) -> Hashtbl.hash (seed, site, salt) < threshold

let node_fault_fires w n =
  let fire = fault_fires w.s (Node.hash n) salt_cut in
  if fire then w.ls.L.faults_injected <- w.ls.L.faults_injected + 1;
  fire

(* Certification is the engine's dominant cost, so its run time is
   always histogrammed; the observe is two clock reads against a full
   consistency search. *)
let cert_hist =
  Obs.Metrics.histogram ~help:"Certification consistency-check run time"
    "psopt_explore_cert_run_duration_ns"

let run_cert s ts mem =
  Obs.Trace.span ~cat:"explore" "certify" (fun () ->
      Obs.Metrics.time cert_hist (fun () ->
          Ps.Cert.consistent ~fuel:s.cfg.Config.cert_fuel
            ~cap:s.cfg.Config.cap_certification ~code:s.code ts mem))

(* Exact certification accounting: every call bumps [cert_checks] and
   then exactly one of [cert_faults] / [cert_trivial] /
   [cert_cache_hits] / [cert_runs]. *)
let consistent w ts mem =
  let s = w.s in
  let ls = w.ls in
  ls.L.cert_checks <- ls.L.cert_checks + 1;
  (* An injected fault answers "inconsistent" without consulting the
     cache, so the cache stays pure; the decision is a pure function
     of the configuration, so it is the same on every path and every
     domain that reaches it.  The configuration hash (the fault site)
     is only computed when fault injection is armed. *)
  let key = CertKey.make ts mem in
  if s.fault <> None && fault_fires s (CertKey.hash key) salt_cert then begin
    ls.L.cert_faults <- ls.L.cert_faults + 1;
    ls.L.faults_injected <- ls.L.faults_injected + 1;
    false
  end
  else if
    (* Promise-free thread states are trivially consistent; don't
       spend a hash of the whole configuration on them. *)
    Ps.Thread.concrete_promises ts = []
  then begin
    ls.L.cert_trivial <- ls.L.cert_trivial + 1;
    true
  end
  else if not s.cfg.Config.cert_cache then begin
    ls.L.cert_runs <- ls.L.cert_runs + 1;
    run_cert s ts mem
  end
  else
    match CertTbl.find_opt w.cert_cache key with
    | Some verdict ->
        ls.L.cert_cache_hits <- ls.L.cert_cache_hits + 1;
        verdict
    | None ->
        ls.L.cert_runs <- ls.L.cert_runs + 1;
        let verdict = run_cert s ts mem in
        CertTbl.replace w.cert_cache key verdict;
        if w.parallel then begin
          w.pub_cert <- (key, verdict) :: w.pub_cert;
          queued w
        end;
        verdict

let promise_candidates w ts mem =
  let s = w.s in
  match s.cfg.Config.promise_mode with
  | Config.No_promises -> []
  | mode -> (
      let key = CertKey.make ts mem in
      if s.fault <> None && fault_fires s (CertKey.hash key) salt_cand then begin
        (* Candidate discovery killed by an injected fault: no promise
           successors from here — behaviours shrink, never grow. *)
        w.ls.L.faults_injected <- w.ls.L.faults_injected + 1;
        []
      end
      else
        match mode with
        | Config.No_promises -> assert false
        | Config.Syntactic -> Ps.Thread.writes_in_code ~code:s.code ts
        | Config.Semantic -> (
            (* Candidate discovery is the other certification search,
               run for every node with promise budget left; like the
               verdicts it is a pure function of the configuration, so
               it shares the cache discipline (hits are counted
               separately in [cand_cache_hits]). *)
            let compute () =
              Obs.Trace.span ~cat:"explore" "candidates" (fun () ->
                  Ps.Cert.certifiable_writes ~fuel:s.cfg.Config.cert_fuel
                    ~code:s.code ts mem)
            in
            if not s.cfg.Config.cert_cache then compute ()
            else
              match CertTbl.find_opt w.cand_cache key with
              | Some cands ->
                  w.ls.L.cand_cache_hits <- w.ls.L.cand_cache_hits + 1;
                  cands
              | None ->
                  let cands = compute () in
                  CertTbl.replace w.cand_cache key cands;
                  if w.parallel then begin
                    w.pub_cand <- (key, cands) :: w.pub_cand;
                    queued w
                  end;
                  cands))

let successors w (n : Node.t) : succ list =
  let s = w.s in
  let wd = n.world in
  let ts = Ps.Machine.cur_ts wd in
  let mem = wd.Ps.Machine.mem in
  let promised_cur =
    match TidMap.find_opt wd.Ps.Machine.cur n.promised with
    | Some k -> k
    | None -> 0
  in
  (* The current thread's consistency gates outputs and switches; it
     is cheap when the thread has no promises. *)
  let committed = lazy (consistent w ts mem) in
  let bit_after te =
    match s.disc with
    | Interleaving -> Some true
    | Non_preemptive -> Npsem.bit_after te ~before:n.bit
  in
  let lift (step : Ps.Thread.step) : succ option =
    match bit_after step.Ps.Thread.event with
    | None -> None
    | Some bit -> (
        let world = Ps.Machine.set_cur_ts wd step.Ps.Thread.ts step.Ps.Thread.mem in
        let next = Node.make ~world ~bit ~promised:n.Node.promised in
        match step.Ps.Thread.event with
        | Ps.Event.Out v ->
            if Lazy.force committed then Some { emit = Some v; next } else None
        | _ -> Some { emit = None; next })
  in
  let regular = List.filter_map lift (Ps.Thread.steps ~code:s.code ts mem) in
  let promises =
    (* [reduction.bound_promises] overrides [max_promises] and forces
       strict reporting: the bounded-promise mode is exhaustive for
       the bound and honestly [Truncated [Promise_budget]] above it. *)
    let bound = s.cfg.Config.reduction.Config.bound_promises in
    let max_promises =
      match bound with Some k -> k | None -> s.cfg.Config.max_promises
    in
    let budget_left = promised_cur < max_promises in
    let sched_ok =
      (match s.disc with Interleaving -> true | Non_preemptive -> n.bit)
      && not (Ps.Local.is_finished ts.Ps.Thread.local)
    in
    if not (budget_left && sched_ok) then begin
      (* Under [strict_promises], a nonempty candidate set suppressed
         purely by the promise budget counts as truncation (a
         conservative over-approximation: the candidates are not
         re-certified here, so this can only push verdicts toward
         inconclusive, never toward a claim). *)
      let strict = s.cfg.Config.strict_promises || bound <> None in
      if strict && sched_ok && not budget_left then
        if promise_candidates w ts mem <> [] then begin
          w.ls.L.promise_budget_hits <- w.ls.L.promise_budget_hits + 1;
          if bound <> None then
            w.ls.L.promise_bound_hits <- w.ls.L.promise_bound_hits + 1
        end;
      []
    end
    else
      let candidates = promise_candidates w ts mem in
      Ps.Thread.promise_steps ~candidates ~atomics:s.atomics ts mem
      |> List.filter_map (fun (step : Ps.Thread.step) ->
             (* A promise must remain certifiable with the chosen
                slot; pruning inconsistent promise placements is sound
                because a τ machine step must end consistent. *)
             if consistent w step.Ps.Thread.ts step.Ps.Thread.mem then (
               w.ls.L.promises <- w.ls.L.promises + 1;
               let world =
                 Ps.Machine.set_cur_ts wd step.Ps.Thread.ts step.Ps.Thread.mem
               in
               let promised =
                 TidMap.add wd.Ps.Machine.cur (promised_cur + 1) n.promised
               in
               Some
                 { emit = None; next = Node.make ~world ~bit:n.Node.bit ~promised })
             else None)
  in
  let reservations =
    if not s.cfg.Config.reservations then []
    else
      let rsv_allowed =
        (match s.disc with Interleaving -> true | Non_preemptive -> n.bit)
        (* one outstanding reservation per thread: reserve/cancel
           cycles otherwise defeat memoization (every cycle member is
           taint-excluded) and blow up the search *)
        && List.for_all
             (fun m -> not (Ps.Message.is_reservation m))
             ts.Ps.Thread.prm
      in
      let rsvs =
        if rsv_allowed then Ps.Thread.reserve_steps ts mem else []
      in
      let ccls = Ps.Thread.cancel_steps ts mem in
      List.filter_map lift (rsvs @ ccls)
  in
  (* Ample-set rule of the partial-order reduction
     (docs/REDUCTION.md): when the current thread's only regular move
     is a deterministic in-block step that every other thread's step
     commutes past, that step alone is an ample set and the switches
     are dropped.  Two shapes qualify: a local τ ([Assign]/[Skip] —
     memory, views and the switch bit untouched), and an access to a
     thread-private location (no other thread can read it, write it,
     or — promise candidates being syntactic — ever promise to it, so
     the access is invisible to them and unaffected by them; the
     single-successor requirement below keeps multi-placement writes
     and multi-message reads fully explored).  In-block steps
     strictly consume the block's remaining instructions, so pruned
     chains terminate within a basic block — the cycle proviso holds
     for free.  Promise and reservation successors are kept, and the
     current thread's own certification only gets {e more} favourable
     after the step (the isolated run from the pre-step state must
     begin with it); other threads' certifications never read a
     private location, so deferring their switch past it changes
     nothing they can observe. *)
  let ample =
    s.red.por
    && (match Ps.Local.nxt ts.Ps.Thread.local with
       | Ps.Local.NInstr (Lang.Ast.Assign _ | Lang.Ast.Skip) -> true
       | Ps.Local.NInstr
           ( Lang.Ast.Load (_, v, _)
           | Lang.Ast.Store (v, _, _)
           | Lang.Ast.Cas (_, v, _, _, _, _) ) ->
           let tid = wd.Ps.Machine.cur in
           tid < Array.length s.red.private_vars
           && Lang.Ast.VarSet.mem v s.red.private_vars.(tid)
       | _ -> false)
    &&
    match regular with
    | [ { emit = None; next } ] -> next.Node.bit = n.Node.bit
    | _ -> false
  in
  let switches =
    if ample then begin
      (* Count what the unreduced enumeration would have offered (the
         other unfinished threads) without paying its certification
         gate — skipping that check is part of the win on cert-heavy
         workloads. *)
      let may =
        match s.disc with Interleaving -> true | Non_preemptive -> n.bit
      in
      if may then begin
        let k =
          TidMap.fold
            (fun tid ts' k ->
              if
                tid <> wd.Ps.Machine.cur
                && not (Ps.Local.is_finished ts'.Ps.Thread.local)
              then k + 1
              else k)
            wd.Ps.Machine.tp 0
        in
        w.ls.L.persistent_prunes <- w.ls.L.persistent_prunes + k
      end;
      []
    end
    else
      let may =
        (match s.disc with
        | Interleaving -> true
        | Non_preemptive ->
            (* The switch bit guards blocks of non-atomic accesses; a
               finished thread has no block in progress, so the machine
               may always move on from it. *)
            n.bit || Ps.Local.is_finished ts.Ps.Thread.local)
        && Lazy.force committed
      in
      if not may then []
      else
        let all =
          TidMap.fold
            (fun tid ts' acc ->
              if
                tid <> wd.Ps.Machine.cur
                && not (Ps.Local.is_finished ts'.Ps.Thread.local)
              then
                {
                  emit = None;
                  next =
                    Node.make
                      ~world:(Ps.Machine.switch wd tid)
                      ~bit:true ~promised:n.Node.promised;
                }
                :: acc
              else acc)
            wd.Ps.Machine.tp []
        in
        if not s.red.por then all
        else begin
          (* Symmetric-sibling rule: switch targets running the same
             program (same symmetry class) whose thread record
             (state up to the root fname + spent promise budget) is
             equal head isomorphic subtrees (the swap permutation
             fixes everything else in the node); keep the first of
             each group.  Gated on the involved threads running
             acyclic (DAG, Call-free) programs — with loops, the
             pruned subtree's isomorphic image can collide with a raw
             on-stack ancestor its kept sibling missed
             (docs/REDUCTION.md). *)
          let acyclic_ok tid =
            tid < Array.length s.red.acyclic && s.red.acyclic.(tid)
          in
          let cls tid =
            if tid < Array.length s.red.class_of then s.red.class_of.(tid)
            else -1
          in
          let prom tid =
            match TidMap.find_opt tid n.Node.promised with
            | Some k -> k
            | None -> 0
          in
          let kept = ref [] in
          let out = ref [] in
          let dropped = ref 0 in
          List.iter
            (fun (sw : succ) ->
              let tid = sw.next.Node.world.Ps.Machine.cur in
              let ts' = TidMap.find tid wd.Ps.Machine.tp in
              let dup =
                acyclic_ok tid && cls tid >= 0
                && List.exists
                     (fun (tid0, ts0, p0) ->
                       acyclic_ok tid0 && cls tid0 = cls tid
                       && p0 = prom tid
                       && Ps.Thread.equal ts0
                            (rename_root ~from_:s.red.thread_fns.(tid)
                               ~to_:s.red.thread_fns.(tid0) ts'))
                     !kept
              in
              if dup then incr dropped
              else begin
                kept := (tid, ts', prom tid) :: !kept;
                out := sw :: !out
              end)
            all;
          w.ls.L.sleep_prunes <- w.ls.L.sleep_prunes + !dropped;
          List.rev !out
        end
  in
  regular @ promises @ reservations @ switches

(* ------------------------------------------------------------------ *)
(* The engine: an explicit-stack depth-first walk with work stealing
   by stack conversion.

   Taint discipline: a subtree's result carries the lowest stack index
   it depends on ([max_int] if none).  A result is memoized only when
   it closes over its own subtree — cycle heads included, inner cycle
   members excluded — and never when the depth budget truncated it.

   Depth honesty: the result also carries the deepest entry depth
   reached in the subtree (virtual for memo hits), and the memo stores
   it relative to the memoizing depth.  An entry is reused at depth
   [d] only when [d + rel_peak < max_steps] — i.e. exactly when a
   fresh recomputation would also complete without hitting the step
   budget.  Reuse is therefore recomputation-equivalent, which is what
   makes the traceset a pure function of the node, the remaining depth
   budget and the ancestor chain — independent of visit order, memo
   state, and hence of how the engine splits the search across domains
   (docs/PARALLEL.md).

   Scheduling: every worker runs the same walk.  A busy worker checks,
   before starting each child, whether some other worker is hungry
   while its own deque is empty; if so it {e converts}: every stack
   frame becomes a heap join frame, every unstarted child becomes a
   stealable task, and the worker continues with the deepest subtree.
   Each task carries a delivery target — a (frame, slot) pair — and a
   frame folds (the same union / prepend / min-taint / max-peak
   accumulation the stack walk does) when its last slot is delivered,
   then delivers its own result upward.  Traceset union is commutative
   and associative, so slot fold order is immaterial. *)

let max_taint = max_int

let cut_traces = Traceset.singleton (Ps.Event.trace_cut [])
let open_traces = Traceset.singleton { Ps.Event.outs = []; ending = Ps.Event.Open }

(* Where a completed subtree result lands. *)
type target =
  | Root
  | Slot of jframe * int

(* A converted (heap) frame: immutable snapshot of a stack frame's
   partial accumulation plus one slot per outstanding child.  Distinct
   slots are written by distinct tasks; the [fetch_and_add] on
   [jpending] publishes the writes to whichever worker folds. *)
and jframe = {
  jn : Node.t;
  jdepth : int;
  jparent : target;
  jbase : Traceset.t;
  jtaint : int;
  jpeak : int;
  jemits : Lang.Ast.value option array;
  jslots : (Traceset.t * int * int) option array;
  jpending : int Atomic.t;
}

and task = { tn : Node.t; tdepth : int; ttarget : target }

(* An in-progress (worker-local) stack frame. *)
type sframe = {
  fn : Node.t;
  fdepth : int;
  femit : Lang.Ast.value option;  (* edge label from the parent frame *)
  fsuccs : succ array;
  mutable fnext : int;
  mutable facc : Traceset.t;
  mutable ftaint : int;
  mutable fpeak : int;
}

type sched = {
  deques : task Pool.Deque.t array;
  hungry : int Atomic.t;
  finished : bool Atomic.t;
  result : (Traceset.t * int * int) option Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
}

let count_node w =
  w.ls.L.nodes <- w.ls.L.nodes + 1;
  match w.s.node_count with Some c -> Atomic.incr c | None -> ()

let memo_store w n entry =
  (* Stored under the canonical key: one entry per symmetry orbit.
     The entry is exact for every orbit member (isomorphic subtrees
     have equal tracesets and equal depth profiles). *)
  let n = canon w.s n in
  NodeTbl.replace w.memo n entry;
  if w.parallel then begin
    w.pub_memo <- (n, entry) :: w.pub_memo;
    queued w
  end

(* Everything the walk decides about a node before (possibly) pushing
   a frame for it: depth cut, global budgets, injected fault, memo
   (depth-honest), ancestor cycle — in exactly this order, which is
   the order the decisions must replicate at every [j]. *)
type entered =
  | Done of (Traceset.t * int * int)
  | Expand of succ array * Traceset.t

let enter w (n : Node.t) depth : entered =
  let s = w.s in
  let ls = w.ls in
  if depth > ls.L.peak_depth then ls.L.peak_depth <- depth;
  if depth >= s.cfg.Config.max_steps then begin
    ls.L.cuts <- ls.L.cuts + 1;
    Done (cut_traces, -1, depth)
  end
  else if budget_stop w <> None then
    (* Deadline / node budget / heap budget: the subtree is abandoned
       with the same honest [Cut] marker (and the same negative taint,
       so nothing truncated is ever memoized) as a depth cut; the
       per-reason stats counter was incremented by [budget_stop]. *)
    Done (cut_traces, -1, depth)
  else if node_fault_fires w n then Done (cut_traces, -1, depth)
  else
    (* The memo probe uses the symmetry-canonical key ([canon] is the
       identity, physically, when symmetry is off or the node is its
       own representative); cycle detection below stays on the raw
       node — the ancestor chain is not symmetric. *)
    let key = canon s n in
    match NodeTbl.find_opt w.memo key with
    | Some (traces, rel_peak) when depth + rel_peak < s.cfg.Config.max_steps ->
        ls.L.memo_hits <- ls.L.memo_hits + 1;
        if key != n then
          ls.L.symmetry_folds <- ls.L.symmetry_folds + 1;
        Done (traces, max_taint, depth + rel_peak)
    | _ -> (
        match NodeTbl.find_opt w.on_stack n with
        | Some ix ->
            (* Back-edge: divergence.  The honest behaviour is the
               prefix observed so far, i.e. the empty suffix with an
               [Open] ending. *)
            ls.L.cycles <- ls.L.cycles + 1;
            Done (open_traces, ix, depth)
        | None ->
            count_node w;
            NodeTbl.add w.on_stack n depth;
            let base =
              if Ps.Machine.terminal n.world then
                Traceset.singleton (Ps.Event.trace_done [])
              else Traceset.empty
            in
            let succs = Array.of_list (successors w n) in
            ls.L.transitions <- ls.L.transitions + Array.length succs;
            let base =
              if Traceset.is_empty base && Array.length succs = 0 then
                (* Stuck without terminating: an execution that cannot
                   commit further; its observable behaviour is the
                   open prefix. *)
                open_traces
              else base
            in
            Expand (succs, base))

(* Deliver a subtree result to its target; fold and propagate when a
   frame completes.  Tail-recursive: converted chains can be as deep
   as the step budget. *)
let rec deliver w sd (t : target) (r : Traceset.t * int * int) =
  match t with
  | Root ->
      Atomic.set sd.result (Some r);
      Atomic.set sd.finished true
  | Slot (f, i) ->
      f.jslots.(i) <- Some r;
      if Atomic.fetch_and_add f.jpending (-1) = 1 then begin
        (* last slot: this worker folds the frame *)
        let acc = ref f.jbase in
        let taint = ref f.jtaint in
        let peak = ref f.jpeak in
        Array.iteri
          (fun i slot ->
            match slot with
            | None -> assert false
            | Some (tr, t, pk) ->
                let tr =
                  match f.jemits.(i) with
                  | Some v -> Traceset.prepend v tr
                  | None -> tr
                in
                acc := Traceset.union !acc tr;
                taint := min !taint t;
                peak := max !peak pk)
          f.jslots;
        let r =
          if w.s.cfg.Config.memoize && !taint >= f.jdepth && !taint >= 0 then begin
            memo_store w f.jn (!acc, !peak - f.jdepth);
            (!acc, max_taint, !peak)
          end
          else (!acc, !taint, !peak)
        in
        deliver w sd f.jparent r
      end

(* Run one task to completion — or until conversion hands its
   remainder to the deque.  The on-stack table is rebuilt from the
   task's frame chain: those frames are exactly the ancestor stack the
   sequential walk would carry here. *)
let exec w sd (task : task) =
  NodeTbl.reset w.on_stack;
  let rec seed = function
    | Root -> ()
    | Slot (f, _) ->
        NodeTbl.replace w.on_stack f.jn f.jdepth;
        seed f.jparent
  in
  seed task.ttarget;
  let stack : sframe Stack.t = Stack.create () in
  let start n depth emit =
    match enter w n depth with
    | Done r -> Some r
    | Expand (succs, base) ->
        Stack.push
          {
            fn = n;
            fdepth = depth;
            femit = emit;
            fsuccs = succs;
            fnext = 0;
            facc = base;
            ftaint = max_taint;
            fpeak = depth;
          }
          stack;
        None
  in
  let merge (f : sframe) ((tr, t, pk) : Traceset.t * int * int) emit =
    let tr = match emit with Some v -> Traceset.prepend v tr | None -> tr in
    f.facc <- Traceset.union f.facc tr;
    f.ftaint <- min f.ftaint t;
    f.fpeak <- max f.fpeak pk
  in
  (* Convert the whole stack into join frames, bottom (task root)
     first so each frame's parent target exists before the frame.
     Every frame except the deepest has one in-progress child — the
     next frame — wired into its slot 0; unstarted children become
     tasks, pushed shallowest-first so thieves (who take the top of
     the deque) get the biggest remaining subtrees while this worker
     continues with the deepest. *)
  let convert () =
    let frames = Array.of_list (Stack.fold (fun acc f -> f :: acc) [] stack) in
    Stack.clear stack;
    let nf = Array.length frames in
    let tasks = ref [] in
    let parent = ref task.ttarget in
    Array.iteri
      (fun i (f : sframe) ->
        let rem = Array.length f.fsuccs - f.fnext in
        let child = if i < nf - 1 then 1 else 0 in
        let k = rem + child in
        let jemits = Array.make k None in
        let jslots = Array.make k None in
        if child = 1 then jemits.(0) <- frames.(i + 1).femit;
        for r = 0 to rem - 1 do
          jemits.(child + r) <- f.fsuccs.(f.fnext + r).emit
        done;
        let jf =
          {
            jn = f.fn;
            jdepth = f.fdepth;
            jparent = !parent;
            jbase = f.facc;
            jtaint = f.ftaint;
            jpeak = f.fpeak;
            jemits;
            jslots;
            jpending = Atomic.make k;
          }
        in
        for r = 0 to rem - 1 do
          tasks :=
            {
              tn = f.fsuccs.(f.fnext + r).next;
              tdepth = f.fdepth + 1;
              ttarget = Slot (jf, child + r);
            }
            :: !tasks
        done;
        parent := Slot (jf, 0))
      frames;
    (* Share the freshly computed cache entries along with the work:
       the thief will need exactly them. *)
    publish_now w;
    List.iter (Pool.Deque.push sd.deques.(w.id)) (List.rev !tasks)
  in
  (* Convert only when there is something to share beyond this
     worker's own continuation; otherwise a chain of unary nodes would
     pay a join frame per node while thieves starve anyway. *)
  let shareable () =
    Stack.fold (fun acc f -> acc + Array.length f.fsuccs - f.fnext) 0 stack
  in
  let want_split () =
    w.parallel
    && Atomic.get sd.hungry > 0
    && Pool.Deque.is_empty sd.deques.(w.id)
    && shareable () >= 2
  in
  match start task.tn task.tdepth None with
  | Some r -> deliver w sd task.ttarget r
  | None ->
      let rec loop () =
        if not (Stack.is_empty stack) then begin
          let f = Stack.top stack in
          if f.fnext < Array.length f.fsuccs then
            if want_split () then convert ()
            else begin
              let { emit; next } = f.fsuccs.(f.fnext) in
              f.fnext <- f.fnext + 1;
              (match start next (f.fdepth + 1) emit with
              | Some r -> merge f r emit
              | None -> ());
              loop ()
            end
          else begin
            (* close the top frame *)
            NodeTbl.remove w.on_stack f.fn;
            let r =
              if w.s.cfg.Config.memoize && f.ftaint >= f.fdepth && f.ftaint >= 0
              then begin
                (* No dependency below this node on the stack (cycle
                   heads close here) and no cut anywhere in the
                   subtree: safe to memoize, with the peak made
                   depth-relative. *)
                memo_store w f.fn (f.facc, f.fpeak - f.fdepth);
                (f.facc, max_taint, f.fpeak)
              end
              else (f.facc, f.ftaint, f.fpeak)
            in
            ignore (Stack.pop stack);
            if Stack.is_empty stack then deliver w sd task.ttarget r
            else begin
              merge (Stack.top stack) r f.femit;
              loop ()
            end
          end
        end
      in
      loop ()

(* ------------------------------------------------------------------ *)
(* The per-worker scheduler loop: pop own deque (LIFO — depth first),
   steal from the others (FIFO — biggest subtrees), back off when the
   whole system is out of work but not yet finished. *)

let idle_backoff n =
  if n < 16 then Domain.cpu_relax ()
  else Unix.sleepf (Float.min 0.0005 (2e-5 *. float_of_int (n - 15)))

let run_one w sd t =
  try Pool.timed (fun () -> exec w sd t)
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (Atomic.compare_and_set sd.failure None (Some (e, bt)))

let sched_loop w sd =
  let j = Array.length sd.deques in
  let hungry = ref false in
  let go_hungry () =
    if not !hungry then begin
      hungry := true;
      Atomic.incr sd.hungry
    end
  in
  let fed () =
    if !hungry then begin
      hungry := false;
      Atomic.decr sd.hungry
    end
  in
  let try_steal () =
    let found = ref None in
    let k = ref 1 in
    while !found = None && !k < j do
      (match Pool.Deque.steal sd.deques.((w.id + !k) mod j) with
      | Some t -> found := Some t
      | None -> ());
      incr k
    done;
    !found
  in
  let rec loop idle =
    if Atomic.get sd.finished || Atomic.get sd.failure <> None then ()
    else
      match Pool.Deque.pop sd.deques.(w.id) with
      | Some t ->
          run_one w sd t;
          loop 0
      | None -> (
          go_hungry ();
          match try_steal () with
          | Some t ->
              fed ();
              run_one w sd t;
              loop 0
          | None ->
              if Atomic.get sd.finished || Atomic.get sd.failure <> None then ()
              else begin
                if w.parallel then absorb w;
                idle_backoff idle;
                loop (idle + 1)
              end)
  in
  loop 0;
  fed ()

(* Merge this worker's local tables into the end-of-search aggregates
   and flush its stats batch.  Runs on every worker, success or not
   ([Fun.protect] in [traces_of]). *)
let finish_worker w =
  Obs.Trace.span ~cat:"explore" "memo" (fun () ->
      let s = w.s in
      Mutex.lock s.merge_lock;
      NodeTbl.iter (fun n e -> NodeTbl.replace s.memo_merged n e) w.memo;
      CertTbl.iter (fun k v -> CertTbl.replace s.cert_merged k v) w.cert_cache;
      CertTbl.iter (fun k v -> CertTbl.replace s.cand_merged k v) w.cand_cache;
      Mutex.unlock s.merge_lock;
      Stats.Local.flush w.ls s.stats)

(* Run the search at width [j] (the calling domain is worker 0; [j=1]
   spawns nothing and the whole scheduler degenerates to the plain
   depth-first walk: no thief ever registers hunger, so [want_split]
   is never even probed past its [parallel] flag). *)
let traces_of s root j =
  let sd =
    {
      deques = Array.init j (fun _ -> Pool.Deque.create ());
      hungry = Atomic.make 0;
      finished = Atomic.make false;
      result = Atomic.make None;
      failure = Atomic.make None;
    }
  in
  Pool.Deque.push sd.deques.(0) { tn = root; tdepth = 0; ttarget = Root };
  let worker id =
    let w = make_worker ~id ~parallel:(j > 1) s in
    Fun.protect ~finally:(fun () -> finish_worker w) (fun () -> sched_loop w sd)
  in
  let spawned =
    List.init (j - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  (* Every spawned domain is joined no matter how worker 0 exits; a
     failing join must not abandon the remaining joins, so errors are
     collected and the first one re-raised after the sweep. *)
  let spawn_err = ref None in
  let join_all () =
    List.iter
      (fun d ->
        try Domain.join d
        with e ->
          if !spawn_err = None then
            spawn_err := Some (e, Printexc.get_raw_backtrace ()))
      spawned
  in
  Fun.protect ~finally:join_all (fun () -> worker 0);
  (match Atomic.get sd.failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  (match !spawn_err with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  match Atomic.get sd.result with
  | Some (traces, _, _) -> traces
  | None -> assert false

(* The requested width, clamped.  [Pool.domain_cap] always applies;
   the hardware core count applies unless the caller explicitly asked
   to oversubscribe — on a machine with fewer cores than requested
   domains, extra domains cannot run anything in parallel, but they do
   multiply GC stop-the-world synchronizations and stretch the
   cache-publication latency to whole scheduler quanta, which is
   exactly the anti-scaling the width request was trying to avoid. *)
let effective_domains cfg =
  let cap =
    if cfg.Config.oversubscribe then Pool.domain_cap else Pool.recommended ()
  in
  max 1 (min cfg.Config.domains cap)

let finish_stats s =
  Atomic.set s.stats.Stats.memo_size (NodeTbl.length s.memo_merged);
  Atomic.set s.stats.Stats.cert_cache_size
    (CertTbl.length s.cert_merged + CertTbl.length s.cand_merged);
  Stats.finish s.stats

let record_domains s used =
  Atomic.set s.stats.Stats.domains_used used;
  Atomic.set s.stats.Stats.domains_recommended
    (Domain.recommended_domain_count ())

let behaviors ?(config = Config.default) disc (p : Lang.Ast.program) =
  match Ps.Machine.init p with
  | Error e -> Error e
  | Ok world ->
      let s =
        make_search ~threads:p.Lang.Ast.threads p.Lang.Ast.code
          p.Lang.Ast.atomics disc config
      in
      let root = Node.make ~world ~bit:true ~promised:TidMap.empty in
      let j = effective_domains config in
      record_domains s j;
      let traces =
        Obs.Trace.span ~cat:"explore" "enumerate" (fun () -> traces_of s root j)
      in
      finish_stats s;
      let completeness =
        match Stats.truncation_reasons s.stats with
        | [] -> Exhaustive
        | reasons -> Truncated reasons
      in
      Ok
        {
          traces;
          completeness;
          exact = completeness = Exhaustive;
          stats = s.stats;
        }

let behaviors_exn ?config disc p =
  match behaviors ?config disc p with
  | Ok o -> o
  | Error e -> raise (Errors.Error (Errors.Ill_formed e))

let iter_reachable ?(config = Config.default) disc (p : Lang.Ast.program) ~f =
  (* Reachability consumers (the race check) must see every reachable
     state: reduction prunes states that are redundant for tracesets
     but not for per-state predicates, so it is forced off here. *)
  let config = { config with Config.reduction = Config.no_reduction } in
  match Ps.Machine.init p with
  | Error e -> Error e
  | Ok world ->
      let s =
        make_search ~threads:p.Lang.Ast.threads p.Lang.Ast.code
          p.Lang.Ast.atomics disc config
      in
      (* The reachability walk streams states to [f] in visit order,
         so it stays single-domain; [Race.check_all] parallelizes at
         the granularity of whole scans instead. *)
      record_domains s 1;
      let w = make_worker ~id:0 ~parallel:false s in
      (* Best (lowest) depth each node was expanded at.  Marking a node
         visited at the depth it is *first* seen is wrong under a step
         budget: a node first reached near [max_steps] would never be
         re-expanded when later reachable at a shallower depth, cutting
         off its successors and undercounting both states and
         transitions.  Re-expansion on improvement makes the walk
         budget-complete: every state reachable within [max_steps]
         micro-steps along some path is visited. *)
      let best = NodeTbl.create 1024 in
      let rec visit (n : Node.t) depth =
        if depth >= s.cfg.Config.max_steps then
          w.ls.L.cuts <- w.ls.L.cuts + 1
        else if budget_stop w <> None || node_fault_fires w n then
          (* Budget or fault: skip the subtree.  The stats counters
             record the reason, so callers recover completeness via
             [Stats.truncation_reasons]. *)
          ()
        else
          let prev = NodeTbl.find_opt best n in
          match prev with
          | Some d when d <= depth -> ()
          | _ ->
              if depth > w.ls.L.peak_depth then w.ls.L.peak_depth <- depth;
              NodeTbl.replace best n depth;
              let first = prev = None in
              if first then begin
                count_node w;
                let ts = Ps.Machine.cur_ts n.world in
                let committed = consistent w ts n.world.Ps.Machine.mem in
                f ~committed n.Node.world
              end;
              let succs = successors w n in
              if first then
                w.ls.L.transitions <- w.ls.L.transitions + List.length succs;
              List.iter (fun { next; _ } -> visit next (depth + 1)) succs
      in
      Obs.Trace.span ~cat:"explore" "enumerate" (fun () ->
          visit (Node.make ~world ~bit:true ~promised:TidMap.empty) 0);
      Stats.Local.flush w.ls s.stats;
      Atomic.set s.stats.Stats.memo_size (NodeTbl.length best);
      Atomic.set s.stats.Stats.cert_cache_size
        (CertTbl.length w.cert_cache + CertTbl.length w.cand_cache);
      Stats.finish s.stats;
      Ok s.stats
