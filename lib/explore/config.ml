type promise_mode = No_promises | Semantic | Syntactic

type fault = { fault_seed : int; fault_rate : float }

type reduction = {
  por : bool;
  symmetry : bool;
  bound_promises : int option;
}

let no_reduction = { por = false; symmetry = false; bound_promises = None }

type t = {
  max_steps : int;
  max_promises : int;
  promise_mode : promise_mode;
  reservations : bool;
  cert_fuel : int;
  cap_certification : bool;
  memoize : bool;
  cert_cache : bool;
  deadline_ms : int option;
  max_nodes : int option;
  max_live_words : int option;
  strict_promises : bool;
  fault : fault option;
  domains : int;
  oversubscribe : bool;
  publish_period : int;
  reduction : reduction;
}

(* PSOPT_J lets the CI matrix (and users) run the entire test suite
   through the parallel engine without threading a flag into every
   call site that uses [default]. *)
let env_domains =
  match Sys.getenv_opt "PSOPT_J" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
               | Some n when n >= 1 -> Some n
               | _ -> None)
  | None -> None

let default_domains = match env_domains with Some n -> n | None -> 1

(* PSOPT_J is an explicit request to exercise the parallel engine, so
   it also lifts the cores clamp — otherwise a single-core CI runner
   would silently run the whole matrix sequentially. *)
let default_oversubscribe = env_domains <> None

let default =
  {
    max_steps = 400;
    max_promises = 1;
    promise_mode = Semantic;
    reservations = false;
    cert_fuel = 64;
    cap_certification = true;
    memoize = true;
    cert_cache = true;
    deadline_ms = None;
    max_nodes = None;
    max_live_words = None;
    strict_promises = false;
    fault = None;
    domains = default_domains;
    oversubscribe = default_oversubscribe;
    publish_period = 16;
    reduction = no_reduction;
  }

let quick =
  {
    default with
    max_steps = 200;
    max_promises = 0;
    promise_mode = No_promises;
  }

let with_promises n t =
  {
    t with
    max_promises = n;
    promise_mode = (if n = 0 then No_promises else t.promise_mode);
  }

let with_deadline_ms ms t = { t with deadline_ms = Some ms }

let with_domains j t = { t with domains = max 1 j }

let with_reduction r t = { t with reduction = r }

let full_reduction = { por = true; symmetry = true; bound_promises = None }

(* The fingerprint covers exactly the fields that can change the
   *result* of a search (traceset / verdict), and none of the fields
   that only change how fast it is computed or when it gets truncated:

   - in:  max_promises, promise_mode, reservations, cert_fuel,
          cap_certification, strict_promises, fault, reduction.
          The reduction knobs are semantic even though the techniques
          preserve behaviour: [bound_promises] changes completeness
          (Truncated above the bound), por changes which Open chatter
          prefixes appear, and a store keyed without the knobs could
          hand a bounded result to an unbounded query.
   - out: memoize, cert_cache, domains, oversubscribe, publish_period (the
          determinism contract of docs/PARALLEL.md: identical results
          at every width and with every cache setting)
   - out: max_steps, deadline_ms, max_nodes, max_live_words — the
          budgets.  An [Exhaustive] outcome is the same for every
          budget large enough to reach it, so the result store keys on
          the fingerprint and records the budget separately
          (docs/SERVICE.md's cache-soundness argument). *)
let fingerprint t =
  let b = Buffer.create 96 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b ';') fmt in
  add "psopt-config-fp/2";
  add "promises=%d" t.max_promises;
  add "mode=%s"
    (match t.promise_mode with
    | No_promises -> "none"
    | Semantic -> "semantic"
    | Syntactic -> "syntactic");
  add "rsv=%b" t.reservations;
  add "cert_fuel=%d" t.cert_fuel;
  add "cap=%b" t.cap_certification;
  add "strict=%b" t.strict_promises;
  (match t.fault with
  | None -> add "fault=none"
  | Some f -> add "fault=%d:%h" f.fault_seed f.fault_rate);
  add "por=%b" t.reduction.por;
  add "sym=%b" t.reduction.symmetry;
  (match t.reduction.bound_promises with
  | None -> add "bound=none"
  | Some k -> add "bound=%d" k);
  Digest.to_hex (Digest.string (Buffer.contents b))

let pp_opt ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some n -> Format.pp_print_int ppf n

let pp ppf t =
  Format.fprintf ppf
    "{steps=%d; promises=%d(%s); rsv=%b; cert_fuel=%d; cap=%b; memo=%b; \
     cert_cache=%b; j=%d"
    t.max_steps t.max_promises
    (match t.promise_mode with
    | No_promises -> "none"
    | Semantic -> "semantic"
    | Syntactic -> "syntactic")
    t.reservations t.cert_fuel t.cap_certification t.memoize t.cert_cache
    t.domains;
  (match (t.deadline_ms, t.max_nodes, t.max_live_words) with
  | None, None, None -> ()
  | d, n, w ->
      Format.fprintf ppf "; deadline_ms=%a; max_nodes=%a; max_live_words=%a"
        pp_opt d pp_opt n pp_opt w);
  if t.strict_promises then Format.fprintf ppf "; strict_promises";
  (match t.fault with
  | None -> ()
  | Some f ->
      Format.fprintf ppf "; fault={seed=%d; rate=%g}" f.fault_seed
        f.fault_rate);
  (if t.reduction <> no_reduction then
     let r = t.reduction in
     Format.fprintf ppf "; reduction={por=%b; sym=%b; bound=%a}" r.por
       r.symmetry pp_opt r.bound_promises);
  Format.fprintf ppf "}"
