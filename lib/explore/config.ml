type promise_mode = No_promises | Semantic | Syntactic

type t = {
  max_steps : int;
  max_promises : int;
  promise_mode : promise_mode;
  reservations : bool;
  cert_fuel : int;
  cap_certification : bool;
  memoize : bool;
  cert_cache : bool;
}

let default =
  {
    max_steps = 400;
    max_promises = 1;
    promise_mode = Semantic;
    reservations = false;
    cert_fuel = 64;
    cap_certification = true;
    memoize = true;
    cert_cache = true;
  }

let quick =
  {
    default with
    max_steps = 200;
    max_promises = 0;
    promise_mode = No_promises;
  }

let with_promises n t =
  {
    t with
    max_promises = n;
    promise_mode = (if n = 0 then No_promises else t.promise_mode);
  }

let pp ppf t =
  Format.fprintf ppf
    "{steps=%d; promises=%d(%s); rsv=%b; cert_fuel=%d; cap=%b; memo=%b; \
     cert_cache=%b}"
    t.max_steps t.max_promises
    (match t.promise_mode with
    | No_promises -> "none"
    | Semantic -> "semantic"
    | Syntactic -> "syntactic")
    t.reservations t.cert_fuel t.cap_certification t.memoize t.cert_cache
