module TidMap = Ps.Machine.TidMap

type step = { tid : int; event : Ps.Event.te }
type t = step list

(* The witness search walks the same committed-step space as {!Enum}
   (out/switch gated on the current thread's consistency; the
   non-preemptive discipline additionally threads the switch bit), but
   tracks how much of the requested output sequence has been emitted
   and returns the path. *)

module Key = struct
  type t = Ps.Machine.world * bool * int TidMap.t * int
  (* world, switch bit, promise budget spent, outputs matched *)

  let compare (w1, b1, p1, k1) (w2, b2, p2, k2) =
    let ( <?> ) c next = if c <> 0 then c else next () in
    Ps.Machine.compare w1 w2 <?> fun () ->
    Bool.compare b1 b2 <?> fun () ->
    TidMap.compare Int.compare p1 p2 <?> fun () -> Int.compare k1 k2
end

module KeySet = Set.Make (Key)

let find ?(config = Config.default) ?(discipline = Enum.Interleaving) ~outs
    (p : Lang.Ast.program) =
  match Ps.Machine.init p with
  | Error e -> raise (Errors.Error (Errors.Ill_formed e))
  | Ok world0 ->
      let code = p.Lang.Ast.code in
      let target = Array.of_list outs in
      let visited = ref KeySet.empty in
      let consistent ts mem =
        Ps.Cert.consistent ~fuel:config.Config.cert_fuel
          ~cap:config.Config.cap_certification ~code ts mem
      in
      let bit_after te before =
        match discipline with
        | Enum.Interleaving -> Some true
        | Enum.Non_preemptive -> Npsem.bit_after te ~before
      in
      let exception Found of step list in
      let rec dfs world bit promised matched depth acc =
        if depth < config.Config.max_steps then begin
          let key = (world, bit, promised, matched) in
          if not (KeySet.mem key !visited) then begin
            visited := KeySet.add key !visited;
            if matched = Array.length target && Ps.Machine.terminal world
            then raise (Found (List.rev acc));
            let ts = Ps.Machine.cur_ts world in
            let mem = world.Ps.Machine.mem in
            let cur = world.Ps.Machine.cur in
            let committed = lazy (consistent ts mem) in
            (* regular thread steps *)
            List.iter
              (fun (s : Ps.Thread.step) ->
                match bit_after s.Ps.Thread.event bit with
                | None -> ()
                | Some bit' -> (
                    let world' =
                      Ps.Machine.set_cur_ts world s.Ps.Thread.ts
                        s.Ps.Thread.mem
                    in
                    let step = { tid = cur; event = s.Ps.Thread.event } in
                    match s.Ps.Thread.event with
                    | Ps.Event.Out v ->
                        if
                          matched < Array.length target
                          && v = target.(matched)
                          && Lazy.force committed
                        then
                          dfs world' bit' promised (matched + 1) (depth + 1)
                            (step :: acc)
                    | _ ->
                        dfs world' bit' promised matched (depth + 1)
                          (step :: acc)))
              (Ps.Thread.steps ~code ts mem);
            (* promises *)
            let spent =
              match TidMap.find_opt cur promised with Some k -> k | None -> 0
            in
            if
              spent < config.Config.max_promises
              && (discipline = Enum.Interleaving || bit)
              && not (Ps.Local.is_finished ts.Ps.Thread.local)
            then begin
              let candidates =
                match config.Config.promise_mode with
                | Config.No_promises -> []
                | Config.Syntactic -> Ps.Thread.writes_in_code ~code ts
                | Config.Semantic ->
                    Ps.Cert.certifiable_writes ~fuel:config.Config.cert_fuel
                      ~code ts mem
              in
              List.iter
                (fun (s : Ps.Thread.step) ->
                  if consistent s.Ps.Thread.ts s.Ps.Thread.mem then
                    let world' =
                      Ps.Machine.set_cur_ts world s.Ps.Thread.ts
                        s.Ps.Thread.mem
                    in
                    dfs world' bit
                      (TidMap.add cur (spent + 1) promised)
                      matched (depth + 1)
                      ({ tid = cur; event = s.Ps.Thread.event } :: acc))
                (Ps.Thread.promise_steps ~candidates
                   ~atomics:p.Lang.Ast.atomics ts mem)
            end;
            (* switches *)
            let may_switch =
              (match discipline with
              | Enum.Interleaving -> true
              | Enum.Non_preemptive ->
                  bit || Ps.Local.is_finished ts.Ps.Thread.local)
              && Lazy.force committed
            in
            if may_switch then
              TidMap.iter
                (fun tid ts' ->
                  if
                    tid <> cur
                    && not (Ps.Local.is_finished ts'.Ps.Thread.local)
                  then
                    dfs (Ps.Machine.switch world tid) true promised matched
                      (depth + 1) acc)
                world.Ps.Machine.tp
          end
        end
      in
      (try
         dfs world0 true TidMap.empty 0 0 [];
         None
       with Found path -> Some path)

let forbidden ?config ~outs p =
  (* No witness, and the behaviour set is exact: bounded-exhaustive
     unobservability. *)
  match find ?config ~outs p with
  | Some _ -> false
  | None ->
      let o = Enum.behaviors_exn ?config Enum.Interleaving p in
      o.Enum.exact

let is_visible = function
  | Ps.Event.Tau | Ps.Event.Ccl | Ps.Event.Rsv -> false
  | _ -> true

let pp_step ppf { tid; event } =
  Format.fprintf ppf "t%d: %a" tid Ps.Event.pp_te event

let pp ppf w =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_step)
    (List.filter (fun s -> is_visible s.event) w)

let pp_full ppf w =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_step)
    w
