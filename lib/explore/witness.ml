module TidMap = Ps.Machine.TidMap

type step = { tid : int; event : Ps.Event.te }
type t = step list

(* The witness search walks the same committed-step space as {!Enum}
   (out/switch gated on the current thread's consistency; the
   non-preemptive discipline additionally threads the switch bit), but
   tracks how much of the requested output sequence has been emitted
   and returns the path.  The successor enumeration itself lives in
   {!Stepper}, shared with the replay debugger. *)

module Key = struct
  type t = Stepper.state * int
  (* stepper state (world, switch bit, promise budget spent), outputs
     matched *)

  let compare (s1, k1) (s2, k2) =
    let c = Stepper.compare_state s1 s2 in
    if c <> 0 then c else Int.compare k1 k2
end

module KeySet = Set.Make (Key)

let find_trail ?(config = Config.default) ?(discipline = Enum.Interleaving)
    ?(eager_switch = false) ~outs (p : Lang.Ast.program) =
  match Stepper.init p with
  | Error e -> raise (Errors.Error (Errors.Ill_formed e))
  | Ok st0 ->
      let target = Array.of_list outs in
      let visited = ref KeySet.empty in
      let exception Found of Stepper.succ list in
      let rec dfs (st : Stepper.state) matched depth acc =
        if depth < config.Config.max_steps then begin
          let key = (st, matched) in
          if not (KeySet.mem key !visited) then begin
            visited := KeySet.add key !visited;
            if
              matched = Array.length target
              && Ps.Machine.terminal st.Stepper.world
            then raise (Found (List.rev acc));
            let succs = Stepper.successors ~config ~discipline ~program:p st in
            let succs =
              (* Eager-switch order: try context switches before thread
                 and promise steps, so the first witness found is
                 switch-heavy — a realistic "buggy schedule" for the
                 shrinker to reduce (default DFS order yields schedules
                 that are already near switch-minimal). *)
              if eager_switch then
                let sw, rest =
                  List.partition
                    (fun (s : Stepper.succ) ->
                      s.Stepper.kind = Stepper.Switch_step)
                    succs
                in
                sw @ rest
              else succs
            in
            List.iter
              (fun (s : Stepper.succ) ->
                match s.Stepper.event with
                | Some (Ps.Event.Out v) ->
                    if matched < Array.length target && v = target.(matched)
                    then
                      dfs s.Stepper.state (matched + 1) (depth + 1) (s :: acc)
                | _ -> dfs s.Stepper.state matched (depth + 1) (s :: acc))
              succs
          end
        end
      in
      (try
         dfs st0 0 0 [];
         None
       with Found trail -> Some (st0, trail))

let of_trail trail =
  List.filter_map
    (fun (s : Stepper.succ) ->
      match s.Stepper.event with
      | Some event -> Some { tid = s.Stepper.tid; event }
      | None -> None)
    trail

let find ?config ?discipline ~outs p =
  Option.map
    (fun (_, trail) -> of_trail trail)
    (find_trail ?config ?discipline ~outs p)

let forbidden ?config ~outs p =
  (* No witness, and the behaviour set is exact: bounded-exhaustive
     unobservability. *)
  match find ?config ~outs p with
  | Some _ -> false
  | None ->
      let o = Enum.behaviors_exn ?config Enum.Interleaving p in
      o.Enum.exact

(* ------------------------------------------------------------------ *)
(* Annotation: replay the schedule deterministically and cross-link
   each promise with the fulfillment that later discharges it. *)

type note =
  | Plain
  | Promises of { msg : string; fulfilled_at : int option }
  | Fulfills of { msg : string; promised_at : int option }

type annotated_step = {
  num : int;  (** absolute trail position, context switches included *)
  tid : int;
  event : Ps.Event.te option;  (** [None] for a context switch *)
  note : note;
}

(* Promise identity: a promised message is uniquely determined by its
   location and "to"-timestamp (intervals of one location are
   disjoint), which survives the view updates fulfillment may apply. *)
let msg_id m = (Ps.Message.var m, Ps.Message.to_ m)

let msg_to_string m = Format.asprintf "%a" Ps.Message.pp m

let prm_of_tid (st : Stepper.state) tid =
  match TidMap.find_opt tid st.Stepper.world.Ps.Machine.tp with
  | Some ts -> ts.Ps.Thread.prm
  | None -> []

let annotate ?(config = Config.default) ?(discipline = Enum.Interleaving)
    (p : Lang.Ast.program) (w : t) =
  let schedule = List.map (fun (s : step) -> (s.tid, s.event)) w in
  match Stepper.drive ~config ~discipline ~program:p schedule with
  | None -> None
  | Some (st0, trail) ->
      let states = Array.of_list (Stepper.trail_states st0 trail) in
      let steps = Array.of_list trail in
      let n = Array.length steps in
      (* Per trail position: the message a promise step announced, and
         the promised messages a fulfillment removed from its thread's
         promise set. *)
      let promised_msg i =
        let s = steps.(i) in
        if s.Stepper.kind <> Stepper.Promise_step then None
        else
          match
            Ps.Memory.added
              ~prev:states.(i).Stepper.world.Ps.Machine.mem
              states.(i + 1).Stepper.world.Ps.Machine.mem
          with
          | [ m ] -> Some m
          | _ -> None
      in
      let fulfilled_msgs i =
        let s = steps.(i) in
        if s.Stepper.kind <> Stepper.Thread_step then []
        else
          let before = prm_of_tid states.(i) s.Stepper.tid in
          let after = prm_of_tid states.(i + 1) s.Stepper.tid in
          let after_ids = List.map msg_id after in
          List.filter (fun m -> not (List.mem (msg_id m) after_ids)) before
      in
      let annotated =
        List.init n (fun i ->
            let s = steps.(i) in
            let note =
              match promised_msg i with
              | Some m ->
                  let rec fulfill_at j =
                    if j >= n then None
                    else if
                      List.exists
                        (fun m' -> msg_id m' = msg_id m)
                        (fulfilled_msgs j)
                    then Some j
                    else fulfill_at (j + 1)
                  in
                  Promises
                    { msg = msg_to_string m; fulfilled_at = fulfill_at (i + 1) }
              | None -> (
                  match fulfilled_msgs i with
                  | [] -> Plain
                  | m :: _ ->
                      let rec promise_at j =
                        if j < 0 then None
                        else
                          match promised_msg j with
                          | Some m' when msg_id m' = msg_id m -> Some j
                          | _ -> promise_at (j - 1)
                      in
                      Fulfills
                        { msg = msg_to_string m; promised_at = promise_at (i - 1) })
            in
            { num = i; tid = s.Stepper.tid; event = s.Stepper.event; note })
      in
      Some annotated

(* ------------------------------------------------------------------ *)
(* Printing. *)

let is_visible = function
  | Ps.Event.Tau | Ps.Event.Ccl | Ps.Event.Rsv -> false
  | _ -> true

let pp_step ppf ({ tid; event } : step) =
  Format.fprintf ppf "t%d: %a" tid Ps.Event.pp_te event

let numbered w = List.mapi (fun i s -> (i, s)) w

let pp_numbered ppf (i, s) = Format.fprintf ppf "%d. %a" i pp_step s

let pp ppf w =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_numbered)
    (List.filter (fun (_, (s : step)) -> is_visible s.event) (numbered w))

let pp_full ppf w =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_numbered)
    (numbered w)

let pp_annotated_step ppf (s : annotated_step) =
  (match s.event with
  | Some e -> Format.fprintf ppf "%d. t%d: %a" s.num s.tid Ps.Event.pp_te e
  | None -> Format.fprintf ppf "%d. -> t%d" s.num s.tid);
  match s.note with
  | Plain -> ()
  | Promises { msg; fulfilled_at = Some j } ->
      Format.fprintf ppf " {promises %s, fulfilled at %d}" msg j
  | Promises { msg; fulfilled_at = None } ->
      Format.fprintf ppf " {promises %s, never fulfilled}" msg
  | Fulfills { msg; promised_at = Some j } ->
      Format.fprintf ppf " {fulfills %s promised at %d}" msg j
  | Fulfills { msg; promised_at = None } ->
      Format.fprintf ppf " {fulfills %s}" msg

let annotated_is_visible (s : annotated_step) =
  match s.event with None -> true | Some e -> is_visible e

let pp_annotated ppf steps =
  Format.fprintf ppf "[@[<v>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_annotated_step)
    (List.filter annotated_is_visible steps)
