type t = {
  nodes : int Atomic.t;
  transitions : int Atomic.t;
  memo_hits : int Atomic.t;
  memo_size : int Atomic.t;
  cert_checks : int Atomic.t;
  cert_cache_hits : int Atomic.t;
  cert_runs : int Atomic.t;
  cert_trivial : int Atomic.t;
  cert_faults : int Atomic.t;
  cand_cache_hits : int Atomic.t;
  cert_cache_size : int Atomic.t;
  cycles : int Atomic.t;
  cuts : int Atomic.t;
  promises : int Atomic.t;
  peak_depth : int Atomic.t;
  deadline_hits : int Atomic.t;
  node_budget_hits : int Atomic.t;
  oom_hits : int Atomic.t;
  promise_budget_hits : int Atomic.t;
  faults_injected : int Atomic.t;
  sleep_prunes : int Atomic.t;
  persistent_prunes : int Atomic.t;
  symmetry_folds : int Atomic.t;
  promise_bound_hits : int Atomic.t;
  domains_used : int Atomic.t;
  domains_recommended : int Atomic.t;
  started_ns : int Atomic.t;
  elapsed_ns : int Atomic.t;
}

let create () =
  {
    nodes = Atomic.make 0;
    transitions = Atomic.make 0;
    memo_hits = Atomic.make 0;
    memo_size = Atomic.make 0;
    cert_checks = Atomic.make 0;
    cert_cache_hits = Atomic.make 0;
    cert_runs = Atomic.make 0;
    cert_trivial = Atomic.make 0;
    cert_faults = Atomic.make 0;
    cand_cache_hits = Atomic.make 0;
    cert_cache_size = Atomic.make 0;
    cycles = Atomic.make 0;
    cuts = Atomic.make 0;
    promises = Atomic.make 0;
    peak_depth = Atomic.make 0;
    deadline_hits = Atomic.make 0;
    node_budget_hits = Atomic.make 0;
    oom_hits = Atomic.make 0;
    promise_budget_hits = Atomic.make 0;
    faults_injected = Atomic.make 0;
    sleep_prunes = Atomic.make 0;
    persistent_prunes = Atomic.make 0;
    symmetry_folds = Atomic.make 0;
    promise_bound_hits = Atomic.make 0;
    domains_used = Atomic.make 1;
    domains_recommended = Atomic.make 1;
    started_ns = Atomic.make (Obs.Clock.now_ns ());
    elapsed_ns = Atomic.make 0;
  }

let elapsed_ms s = Obs.Clock.ms_of_ns (Atomic.get s.elapsed_ns)

let record_max c v =
  let rec go () =
    let cur = Atomic.get c in
    if v > cur && not (Atomic.compare_and_set c cur v) then go ()
  in
  go ()

(* ---- domain-local batch ----
   The parallel engine bumps these plain mutable fields on its hot
   path (one store each, no cache-line ping-pong between domains) and
   [flush]es them into the shared atomics when a worker finishes or at
   its periodic probe tick.  Readers of [t] mid-search therefore see a
   slightly stale but always-consistent-per-flush view; the final
   numbers are exact because every worker flushes before the join. *)

module Local = struct
  type shared = t

  type t = {
    mutable nodes : int;
    mutable transitions : int;
    mutable memo_hits : int;
    mutable cert_checks : int;
    mutable cert_cache_hits : int;
    mutable cert_runs : int;
    mutable cert_trivial : int;
    mutable cert_faults : int;
    mutable cand_cache_hits : int;
    mutable cycles : int;
    mutable cuts : int;
    mutable promises : int;
    mutable peak_depth : int;
    mutable deadline_hits : int;
    mutable node_budget_hits : int;
    mutable oom_hits : int;
    mutable promise_budget_hits : int;
    mutable faults_injected : int;
    mutable sleep_prunes : int;
    mutable persistent_prunes : int;
    mutable symmetry_folds : int;
    mutable promise_bound_hits : int;
  }

  let create () =
    {
      nodes = 0;
      transitions = 0;
      memo_hits = 0;
      cert_checks = 0;
      cert_cache_hits = 0;
      cert_runs = 0;
      cert_trivial = 0;
      cert_faults = 0;
      cand_cache_hits = 0;
      cycles = 0;
      cuts = 0;
      promises = 0;
      peak_depth = 0;
      deadline_hits = 0;
      node_budget_hits = 0;
      oom_hits = 0;
      promise_budget_hits = 0;
      faults_injected = 0;
      sleep_prunes = 0;
      persistent_prunes = 0;
      symmetry_folds = 0;
      promise_bound_hits = 0;
    }

  let flush (l : t) (s : shared) =
    let add c v = if v > 0 then ignore (Atomic.fetch_and_add c v) in
    add s.nodes l.nodes;
    l.nodes <- 0;
    add s.transitions l.transitions;
    l.transitions <- 0;
    add s.memo_hits l.memo_hits;
    l.memo_hits <- 0;
    add s.cert_checks l.cert_checks;
    l.cert_checks <- 0;
    add s.cert_cache_hits l.cert_cache_hits;
    l.cert_cache_hits <- 0;
    add s.cert_runs l.cert_runs;
    l.cert_runs <- 0;
    add s.cert_trivial l.cert_trivial;
    l.cert_trivial <- 0;
    add s.cert_faults l.cert_faults;
    l.cert_faults <- 0;
    add s.cand_cache_hits l.cand_cache_hits;
    l.cand_cache_hits <- 0;
    add s.cycles l.cycles;
    l.cycles <- 0;
    add s.cuts l.cuts;
    l.cuts <- 0;
    add s.promises l.promises;
    l.promises <- 0;
    add s.deadline_hits l.deadline_hits;
    l.deadline_hits <- 0;
    add s.node_budget_hits l.node_budget_hits;
    l.node_budget_hits <- 0;
    add s.oom_hits l.oom_hits;
    l.oom_hits <- 0;
    add s.promise_budget_hits l.promise_budget_hits;
    l.promise_budget_hits <- 0;
    add s.faults_injected l.faults_injected;
    l.faults_injected <- 0;
    add s.sleep_prunes l.sleep_prunes;
    l.sleep_prunes <- 0;
    add s.persistent_prunes l.persistent_prunes;
    l.persistent_prunes <- 0;
    add s.symmetry_folds l.symmetry_folds;
    l.symmetry_folds <- 0;
    add s.promise_bound_hits l.promise_bound_hits;
    l.promise_bound_hits <- 0;
    record_max s.peak_depth l.peak_depth
end

(* ---- metrics-registry mirror ----
   Cumulative process-wide counters absorbing the per-search [t]
   values; the exact cert partition survives as label values of one
   family, so sum-over-outcomes still equals the checks counter. *)

let m_nodes =
  Obs.Metrics.counter ~help:"Machine states visited by exploration"
    "psopt_explore_nodes_total"

let m_transitions =
  Obs.Metrics.counter ~help:"Micro-steps enumerated" "psopt_explore_transitions_total"

let m_memo_hits =
  Obs.Metrics.counter ~help:"Suffix-set memo hits" "psopt_explore_memo_hits_total"

let m_cert_checks =
  Obs.Metrics.counter ~help:"Consistency checks requested"
    "psopt_explore_cert_checks_total"

let cert_outcome outcome =
  Obs.Metrics.counter
    ~help:"Consistency checks by outcome (exact partition of cert checks)"
    ~labels:[ ("outcome", outcome) ]
    "psopt_explore_cert_outcomes_total"

let m_cert_cache_hits = cert_outcome "cache_hit"
let m_cert_runs = cert_outcome "run"
let m_cert_trivial = cert_outcome "trivial"
let m_cert_faults = cert_outcome "fault"

let m_searches =
  Obs.Metrics.counter ~help:"Explorations finished" "psopt_explore_searches_total"

let m_truncated =
  Obs.Metrics.counter ~help:"Explorations finished incomplete"
    "psopt_explore_truncated_total"


let truncation_reasons s =
  let add cond r acc = if cond then r :: acc else acc in
  let ( ! ) = Atomic.get in
  []
  |> add (!(s.faults_injected) > 0) Errors.Fault
  |> add (!(s.oom_hits) > 0) Errors.Oom
  |> add (!(s.node_budget_hits) > 0) Errors.Node_budget
  |> add (!(s.deadline_hits) > 0) Errors.Deadline
  |> add (!(s.promise_budget_hits) > 0) Errors.Promise_budget
  |> add (!(s.cuts) > 0) Errors.Step_budget

let publish s =
  let ( ! ) = Atomic.get in
  let add m v = if v > 0 then Obs.Metrics.add m v in
  add m_nodes !(s.nodes);
  add m_transitions !(s.transitions);
  add m_memo_hits !(s.memo_hits);
  add m_cert_checks !(s.cert_checks);
  add m_cert_cache_hits !(s.cert_cache_hits);
  add m_cert_runs !(s.cert_runs);
  add m_cert_trivial !(s.cert_trivial);
  add m_cert_faults !(s.cert_faults);
  Obs.Metrics.incr m_searches

let finish s =
  Atomic.set s.elapsed_ns (Obs.Clock.now_ns () - Atomic.get s.started_ns);
  publish s;
  if truncation_reasons s <> [] then Obs.Metrics.incr m_truncated

module Service = struct
  type t = {
    served : int Atomic.t;
    store_hits : int Atomic.t;
    store_misses : int Atomic.t;
    busy : int Atomic.t;
    errors : int Atomic.t;
    sheds : int Atomic.t;
    expired : int Atomic.t;
    evictions : int Atomic.t;
  }

  let create () =
    {
      served = Atomic.make 0;
      store_hits = Atomic.make 0;
      store_misses = Atomic.make 0;
      busy = Atomic.make 0;
      errors = Atomic.make 0;
      sheds = Atomic.make 0;
      expired = Atomic.make 0;
      evictions = Atomic.make 0;
    }

  let pp ppf s =
    let ( ! ) = Atomic.get in
    Format.fprintf ppf
      "served=%d hits=%d misses=%d busy=%d errors=%d sheds=%d expired=%d \
       evictions=%d"
      !(s.served) !(s.store_hits) !(s.store_misses) !(s.busy) !(s.errors)
      !(s.sheds) !(s.expired) !(s.evictions)
end

let pp ppf s =
  let ( ! ) = Atomic.get in
  Format.fprintf ppf
    "nodes=%d transitions=%d memo_hits=%d memo_size=%d cert_checks=%d \
     cert_cache_hits=%d cert_runs=%d cert_trivial=%d cand_cache_hits=%d \
     cert_cache_size=%d cycles=%d cuts=%d promises=%d peak_depth=%d \
     domains=%d/%d elapsed_ms=%d"
    !(s.nodes) !(s.transitions) !(s.memo_hits) !(s.memo_size)
    !(s.cert_checks) !(s.cert_cache_hits) !(s.cert_runs) !(s.cert_trivial)
    !(s.cand_cache_hits) !(s.cert_cache_size) !(s.cycles) !(s.cuts)
    !(s.promises) !(s.peak_depth) !(s.domains_used) !(s.domains_recommended)
    (elapsed_ms s);
  if
    !(s.deadline_hits) > 0 || !(s.node_budget_hits) > 0 || !(s.oom_hits) > 0
    || !(s.promise_budget_hits) > 0 || !(s.faults_injected) > 0
  then
    Format.fprintf ppf
      " deadline_hits=%d node_budget_hits=%d oom_hits=%d \
       promise_budget_hits=%d faults_injected=%d cert_faults=%d"
      !(s.deadline_hits) !(s.node_budget_hits) !(s.oom_hits)
      !(s.promise_budget_hits) !(s.faults_injected) !(s.cert_faults);
  if
    !(s.sleep_prunes) > 0 || !(s.persistent_prunes) > 0
    || !(s.symmetry_folds) > 0 || !(s.promise_bound_hits) > 0
  then
    Format.fprintf ppf
      " sleep_prunes=%d persistent_prunes=%d symmetry_folds=%d \
       promise_bound_hits=%d"
      !(s.sleep_prunes) !(s.persistent_prunes) !(s.symmetry_folds)
      !(s.promise_bound_hits)
