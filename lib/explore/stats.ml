type t = {
  mutable nodes : int;
  mutable transitions : int;
  mutable memo_hits : int;
  mutable memo_size : int;
  mutable cert_checks : int;
  mutable cert_cache_hits : int;
  mutable cert_cache_size : int;
  mutable cycles : int;
  mutable cuts : int;
  mutable promises : int;
  mutable peak_depth : int;
  mutable deadline_hits : int;
  mutable node_budget_hits : int;
  mutable oom_hits : int;
  mutable promise_budget_hits : int;
  mutable faults_injected : int;
}

let create () =
  {
    nodes = 0;
    transitions = 0;
    memo_hits = 0;
    memo_size = 0;
    cert_checks = 0;
    cert_cache_hits = 0;
    cert_cache_size = 0;
    cycles = 0;
    cuts = 0;
    promises = 0;
    peak_depth = 0;
    deadline_hits = 0;
    node_budget_hits = 0;
    oom_hits = 0;
    promise_budget_hits = 0;
    faults_injected = 0;
  }

let truncation_reasons s =
  let add cond r acc = if cond then r :: acc else acc in
  []
  |> add (s.faults_injected > 0) Errors.Fault
  |> add (s.oom_hits > 0) Errors.Oom
  |> add (s.node_budget_hits > 0) Errors.Node_budget
  |> add (s.deadline_hits > 0) Errors.Deadline
  |> add (s.promise_budget_hits > 0) Errors.Promise_budget
  |> add (s.cuts > 0) Errors.Step_budget

let pp ppf s =
  Format.fprintf ppf
    "nodes=%d transitions=%d memo_hits=%d memo_size=%d cert_checks=%d \
     cert_cache_hits=%d cert_cache_size=%d cycles=%d cuts=%d promises=%d \
     peak_depth=%d"
    s.nodes s.transitions s.memo_hits s.memo_size s.cert_checks
    s.cert_cache_hits s.cert_cache_size s.cycles s.cuts s.promises
    s.peak_depth;
  if
    s.deadline_hits > 0 || s.node_budget_hits > 0 || s.oom_hits > 0
    || s.promise_budget_hits > 0 || s.faults_injected > 0
  then
    Format.fprintf ppf
      " deadline_hits=%d node_budget_hits=%d oom_hits=%d \
       promise_budget_hits=%d faults_injected=%d"
      s.deadline_hits s.node_budget_hits s.oom_hits s.promise_budget_hits
      s.faults_injected
