type t = {
  nodes : int Atomic.t;
  transitions : int Atomic.t;
  memo_hits : int Atomic.t;
  memo_size : int Atomic.t;
  cert_checks : int Atomic.t;
  cert_cache_hits : int Atomic.t;
  cert_runs : int Atomic.t;
  cert_trivial : int Atomic.t;
  cert_faults : int Atomic.t;
  cand_cache_hits : int Atomic.t;
  cert_cache_size : int Atomic.t;
  cycles : int Atomic.t;
  cuts : int Atomic.t;
  promises : int Atomic.t;
  peak_depth : int Atomic.t;
  deadline_hits : int Atomic.t;
  node_budget_hits : int Atomic.t;
  oom_hits : int Atomic.t;
  promise_budget_hits : int Atomic.t;
  faults_injected : int Atomic.t;
  domains_used : int Atomic.t;
  domains_recommended : int Atomic.t;
}

let create () =
  {
    nodes = Atomic.make 0;
    transitions = Atomic.make 0;
    memo_hits = Atomic.make 0;
    memo_size = Atomic.make 0;
    cert_checks = Atomic.make 0;
    cert_cache_hits = Atomic.make 0;
    cert_runs = Atomic.make 0;
    cert_trivial = Atomic.make 0;
    cert_faults = Atomic.make 0;
    cand_cache_hits = Atomic.make 0;
    cert_cache_size = Atomic.make 0;
    cycles = Atomic.make 0;
    cuts = Atomic.make 0;
    promises = Atomic.make 0;
    peak_depth = Atomic.make 0;
    deadline_hits = Atomic.make 0;
    node_budget_hits = Atomic.make 0;
    oom_hits = Atomic.make 0;
    promise_budget_hits = Atomic.make 0;
    faults_injected = Atomic.make 0;
    domains_used = Atomic.make 1;
    domains_recommended = Atomic.make 1;
  }

let record_max c v =
  let rec go () =
    let cur = Atomic.get c in
    if v > cur && not (Atomic.compare_and_set c cur v) then go ()
  in
  go ()

let truncation_reasons s =
  let add cond r acc = if cond then r :: acc else acc in
  let ( ! ) = Atomic.get in
  []
  |> add (!(s.faults_injected) > 0) Errors.Fault
  |> add (!(s.oom_hits) > 0) Errors.Oom
  |> add (!(s.node_budget_hits) > 0) Errors.Node_budget
  |> add (!(s.deadline_hits) > 0) Errors.Deadline
  |> add (!(s.promise_budget_hits) > 0) Errors.Promise_budget
  |> add (!(s.cuts) > 0) Errors.Step_budget

module Service = struct
  type t = {
    served : int Atomic.t;
    store_hits : int Atomic.t;
    store_misses : int Atomic.t;
    busy : int Atomic.t;
    errors : int Atomic.t;
  }

  let create () =
    {
      served = Atomic.make 0;
      store_hits = Atomic.make 0;
      store_misses = Atomic.make 0;
      busy = Atomic.make 0;
      errors = Atomic.make 0;
    }

  let pp ppf s =
    let ( ! ) = Atomic.get in
    Format.fprintf ppf "served=%d hits=%d misses=%d busy=%d errors=%d"
      !(s.served) !(s.store_hits) !(s.store_misses) !(s.busy) !(s.errors)
end

let pp ppf s =
  let ( ! ) = Atomic.get in
  Format.fprintf ppf
    "nodes=%d transitions=%d memo_hits=%d memo_size=%d cert_checks=%d \
     cert_cache_hits=%d cert_runs=%d cert_trivial=%d cand_cache_hits=%d \
     cert_cache_size=%d cycles=%d cuts=%d promises=%d peak_depth=%d \
     domains=%d/%d"
    !(s.nodes) !(s.transitions) !(s.memo_hits) !(s.memo_size)
    !(s.cert_checks) !(s.cert_cache_hits) !(s.cert_runs) !(s.cert_trivial)
    !(s.cand_cache_hits) !(s.cert_cache_size) !(s.cycles) !(s.cuts)
    !(s.promises) !(s.peak_depth) !(s.domains_used) !(s.domains_recommended);
  if
    !(s.deadline_hits) > 0 || !(s.node_budget_hits) > 0 || !(s.oom_hits) > 0
    || !(s.promise_budget_hits) > 0 || !(s.faults_injected) > 0
  then
    Format.fprintf ppf
      " deadline_hits=%d node_budget_hits=%d oom_hits=%d \
       promise_budget_hits=%d faults_injected=%d cert_faults=%d"
      !(s.deadline_hits) !(s.node_budget_hits) !(s.oom_hits)
      !(s.promise_budget_hits) !(s.faults_injected) !(s.cert_faults)
