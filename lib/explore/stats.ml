type t = {
  mutable nodes : int;
  mutable transitions : int;
  mutable memo_hits : int;
  mutable memo_size : int;
  mutable cert_checks : int;
  mutable cert_cache_hits : int;
  mutable cert_cache_size : int;
  mutable cycles : int;
  mutable cuts : int;
  mutable promises : int;
  mutable peak_depth : int;
}

let create () =
  {
    nodes = 0;
    transitions = 0;
    memo_hits = 0;
    memo_size = 0;
    cert_checks = 0;
    cert_cache_hits = 0;
    cert_cache_size = 0;
    cycles = 0;
    cuts = 0;
    promises = 0;
    peak_depth = 0;
  }

let pp ppf s =
  Format.fprintf ppf
    "nodes=%d transitions=%d memo_hits=%d memo_size=%d cert_checks=%d \
     cert_cache_hits=%d cert_cache_size=%d cycles=%d cuts=%d promises=%d \
     peak_depth=%d"
    s.nodes s.transitions s.memo_hits s.memo_size s.cert_checks
    s.cert_cache_hits s.cert_cache_size s.cycles s.cuts s.promises
    s.peak_depth
