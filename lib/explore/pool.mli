(** A fixed-width domain pool built on per-worker work-stealing
    deques.

    Workers are OCaml 5 [Domain]s, each owning a Chase–Lev deque: the
    owner pushes and pops one end without locks, idle workers steal
    the other end with a single CAS.  The calling domain always
    participates as one of the [j] workers, so [~j:1] spawns nothing
    and degenerates to [List.map].  Results are returned in input
    order and worker exceptions are re-raised deterministically
    (lowest task index first), so observable behaviour is independent
    of [j].  Spawned domains are joined even when the coordinating
    worker's [init]/[finish] raises. *)

val domain_cap : int
(** Hard upper bound on pool width (8): oversubscribing a small core
    count still works (the OS time-slices the domains), but unbounded
    widths only add counter contention. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [1, domain_cap]. *)

val map : j:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~j f xs] applies [f] to every element on a pool of [j]
    domains (including the caller) and returns results in input
    order. *)

val map_with :
  j:int ->
  init:(unit -> 'w) ->
  finish:('w -> unit) ->
  ('w -> 'a -> 'b) ->
  'a list ->
  'b list
(** Like {!map} but each worker domain first builds private state with
    [init] (e.g. a domain-local memo table), threads it through every
    task it executes, and hands it to [finish] before joining (e.g. to
    merge the local table into a global one).  [finish] runs on every
    worker that ran [init], even when a task or another worker's
    [init] raised. *)

val timed : (unit -> 'a) -> 'a
(** Run a thunk under the pool's task instrumentation: an
    [Obs.Trace] "pool.task" span plus the
    [psopt_pool_task_duration_ns] histogram.  Exposed so schedulers
    that bypass {!map} (e.g. {!Enum}'s subtree tasks) feed the same
    load-balance histogram. *)

(** Chase–Lev work-stealing deque.  Single owner: only the creating
    worker may call {!Deque.push}/{!Deque.pop}; any domain may
    {!Deque.steal}.  The owner end is lock-free (plain loads/stores on
    SC atomics), thieves contend on one CAS.  ABA-free because the
    steal index only grows. *)
module Deque : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val steal : 'a t -> 'a option
  (** [None] = empty, or lost a race with the owner or another thief;
      callers just move on to the next victim. *)

  val is_empty : 'a t -> bool
  (** A racy snapshot — exact only for the owner. *)
end

(** A lock-free publication channel: producers CAS immutable batches
    onto a shared cons-list, consumers keep a {!Chan.mark} (the last
    head they saw) and {!Chan.drain} only the batches published since.
    When nothing new was published, [drain] costs one atomic load.
    For domain-local cache entries whose values are pure functions of
    their key: delivery is at-least-once per consumer and unordered,
    both benign for such entries. *)
module Chan : sig
  type 'a t
  type 'a mark

  val create : unit -> 'a t

  val genesis : 'a mark
  (** The before-anything mark: [drain ~since:genesis] sees every
      batch ever published.  Valid for any channel. *)

  val mark : 'a t -> 'a mark
  (** The current head: a [drain ~since:(mark t)] would do nothing. *)

  val publish : 'a t -> 'a array -> unit
  (** Publish a batch.  The array must not be mutated afterwards.
      Empty batches are skipped. *)

  val drain : 'a t -> since:'a mark -> f:('a -> unit) -> 'a mark
  (** Apply [f] to every entry published since [since] (newest batch
      first) and return the new mark. *)
end

(** Hash-sharded hash tables: a power-of-two array of
    mutex-protected [Hashtbl.Make(H)] shards indexed by key hash, so
    concurrent lookups from different domains contend only when they
    land on the same shard.  Intended for caches of pure values: a
    racing double-insert of the same key is benign. *)
module Sharded (H : Hashtbl.HashedType) : sig
  type 'a t

  val create : ?shards:int -> int -> 'a t
  (** [create ?shards size] — [shards] (default 64) is rounded up to a
      power of two; [size] is the aggregate initial capacity. *)

  val find_opt : 'a t -> H.t -> 'a option
  val replace : 'a t -> H.t -> 'a -> unit

  val length : 'a t -> int
  (** Total entry count; takes each shard lock in turn (consistent
      per shard, not across shards). *)
end
