(** A fixed-width domain pool with a hand-rolled work-sharing queue.

    Workers are OCaml 5 [Domain]s coordinated by a [Mutex]/[Condition]
    index queue; the calling domain always participates as one of the
    [j] workers, so [~j:1] spawns nothing and degenerates to
    [List.map].  Results are returned in input order and worker
    exceptions are re-raised deterministically (lowest task index
    first), so observable behaviour is independent of [j]. *)

val domain_cap : int
(** Hard upper bound on pool width (8): oversubscribing a small core
    count still works (the OS time-slices the domains), but unbounded
    widths only add queue and counter contention. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [1, domain_cap]. *)

val map : j:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~j f xs] applies [f] to every element on a pool of [j]
    domains (including the caller) and returns results in input
    order. *)

val map_with :
  j:int ->
  init:(unit -> 'w) ->
  finish:('w -> unit) ->
  ('w -> 'a -> 'b) ->
  'a list ->
  'b list
(** Like {!map} but each worker domain first builds private state with
    [init] (e.g. a domain-local memo table), threads it through every
    task it executes, and hands it to [finish] before joining (e.g. to
    merge the local table into a global one). *)

(** Hash-sharded hash tables: a power-of-two array of
    mutex-protected [Hashtbl.Make(H)] shards indexed by key hash, so
    concurrent lookups from different domains contend only when they
    land on the same shard.  Intended for caches of pure values: a
    racing double-insert of the same key is benign. *)
module Sharded (H : Hashtbl.HashedType) : sig
  type 'a t

  val create : ?shards:int -> int -> 'a t
  (** [create ?shards size] — [shards] (default 64) is rounded up to a
      power of two; [size] is the aggregate initial capacity. *)

  val find_opt : 'a t -> H.t -> 'a option
  val replace : 'a t -> H.t -> 'a -> unit
  val length : 'a t -> int
end
