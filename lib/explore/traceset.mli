(** Sets of observable event traces — the behaviours of a program
    (Fig. 8, "Behaviors"). *)

include Set.S with type elt = Ps.Event.trace

val prepend : Lang.Ast.value -> t -> t
(** Prefix every trace with one output value. *)

val done_outs : t -> Lang.Ast.value list list
(** The output sequences of the completed ([done]) traces, sorted. *)

val has_done : Lang.Ast.value list -> t -> bool
(** Is there a completed trace with exactly these outputs? *)

val completed : t -> t
(** Only the [done]-ending traces. *)

val closure : t -> t
(** Prefix closure: the paper's trace sets are prefix-closed by
    construction ([B ::= ϵ | done | abort | out(v)::B] — every finite
    prefix of an execution is itself a trace).  [closure s] adds, for
    every trace, all its proper prefixes as [Open] traces.  Behaviour
    sets must be compared after closure: a divergence prefix observed
    by one machine may be extended to completion by the other. *)

val equal_behaviour : t -> t -> bool
(** Equality of prefix-closures (the paper's [P ≈ P']). *)

val is_refined_by : target:t -> source:t -> bool
(** Event-trace refinement [P_s ⊇ P_t] restricted to completed traces:
    every [done] trace of the target is a [done] trace of the source.
    (Open/cut prefixes are compared by {!Refine}, which interprets
    them; this is the strict core used by most experiments.) *)

val diff_done : target:t -> source:t -> t
(** Completed target traces absent from the source: the refinement
    counterexamples. *)

val orbit_expand : int array list -> t -> t
(** [orbit_expand classes t] expands a symmetry-reduced traceset over
    the orbits of the given thread-symmetry classes.  It is the
    identity — traces are output sequences and carry no thread
    identifiers, so every permuted execution contributes the same
    trace its orbit representative already did.  The function exists
    to carry that erasure theorem in the API (asserted in the tests):
    consumers of a symmetry-reduced run need no compensation step.
    See docs/REDUCTION.md. *)

val pp : Format.formatter -> t -> unit
