(** Bounded-exhaustive behaviour enumeration for both machines.

    [behaviors disc p] computes the set of observable event traces of
    [p] under the chosen machine discipline:

    - {!Interleaving} implements Fig. 9: any thread step of the
      current thread may run; context switches, outputs and
      termination are only taken at configurations where the current
      thread passes the [consistent] check — precisely the committed
      points reachable by sequences of [(τ-step)], [(out-step)] and
      [(sw-step)] machine steps.
    - {!Non_preemptive} implements Fig. 10: additionally threads the
      switch bit [β] through thread steps ({!Npsem.bit_after}) and
      only switches when the bit is on.

    The search is a depth-first traversal of the machine state space
    computing, per state, the set of trace {e suffixes} from it.
    Suffix sets are memoized per state (promise budget included in the
    key), with Tarjan-style taint tracking so that results depending
    on a cycle (divergence) or on the depth budget are never reused
    unsoundly.  Divergence contributes the honest prefix trace ending
    {!Ps.Event.Open}; budget exhaustion contributes a trace ending
    {!Ps.Event.Cut} and clears {!outcome.exact}.

    {!Config.reduction} layers three state-space reductions over the
    same traversal (docs/REDUCTION.md): certification-aware
    partial-order reduction (ample thread-local steps defer context
    switches; symmetric switch siblings collapse), symmetry reduction
    (memo keys are canonicalized under permutation of
    identical-program threads, so N replicated threads cost one
    orbit), and bounded-promise mode (exhaustive within the bound,
    honest [Truncated] above it).  Symmetry alone preserves the raw
    traceset; the partial-order rules preserve behaviour
    ({!Traceset.equal_behaviour}) and completeness.  At a fixed
    reduction config the result stays deterministic across pool
    widths.  {!iter_reachable} ignores the reduction request: race
    checking must see every reachable state. *)

type discipline = Interleaving | Non_preemptive

(** Whether the traceset covers the whole (bounded-promise) state
    space.  Any verdict derived from a [Truncated] outcome must
    degrade to inconclusive — {!Refine}, {!Race}, [Sim.Verif] and
    [Litmus] all enforce this (docs/ROBUSTNESS.md). *)
type completeness =
  | Exhaustive
  | Truncated of Errors.reason list
      (** the distinct reasons subtrees were abandoned: step budget,
          wall-clock deadline, node budget, heap budget, suppressed
          promises (strict mode) or injected faults *)

type outcome = {
  traces : Traceset.t;
  completeness : completeness;
  exact : bool;
      (** [completeness = Exhaustive]: for programs with finite (up to
          silent divergence) behaviour this is the full PS2.1
          behaviour set under the configured promise bound *)
  stats : Stats.t;
}

val pp_completeness : Format.formatter -> completeness -> unit

val behaviors :
  ?config:Config.t -> discipline -> Lang.Ast.program -> (outcome, string) result

val behaviors_exn :
  ?config:Config.t -> discipline -> Lang.Ast.program -> outcome
(** @raise Errors.Error [(Ill_formed _)] when the program's machine
    cannot be initialised. *)

val iter_reachable :
  ?config:Config.t ->
  discipline ->
  Lang.Ast.program ->
  f:(committed:bool -> Ps.Machine.world -> unit) ->
  (Stats.t, string) result
(** Visit every distinct reachable machine state once (breadth across
    the same successor relation as {!behaviors}).  [committed] is true
    when the current thread passes the consistency check — exactly the
    machine configurations reachable by Fig. 9/Fig. 10 machine steps,
    which is where the race predicate of Fig. 11 is evaluated
    ({!Race}).  Returns the exploration statistics (the state-space
    measurements of experiments E9/E16). *)

val pp_discipline : Format.formatter -> discipline -> unit
