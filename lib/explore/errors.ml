type reason =
  | Step_budget
  | Promise_budget
  | Deadline
  | Node_budget
  | Oom
  | Fault

let reason_to_string = function
  | Step_budget -> "step-budget"
  | Promise_budget -> "promise-budget"
  | Deadline -> "deadline"
  | Node_budget -> "node-budget"
  | Oom -> "oom"
  | Fault -> "fault-injection"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

let pp_reasons ppf rs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_reason ppf rs

type pos = { line : int; col : int }

type t =
  | Parse_error of pos * string
  | Ill_formed of string
  | Budget_exhausted of string
  | Internal of string

exception Error of t

let to_string = function
  | Parse_error (p, msg) ->
      Printf.sprintf "parse error at %d:%d: %s" p.line p.col msg
  | Ill_formed msg -> "ill-formed program: " ^ msg
  | Budget_exhausted msg -> "budget exhausted: " ^ msg
  | Internal msg -> "internal error: " ^ msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

let ill_formed fmt = Format.kasprintf (fun s -> raise (Error (Ill_formed s))) fmt

let internal fmt = Format.kasprintf (fun s -> raise (Error (Internal s))) fmt

(* Classification of escaped exceptions, for the boundaries (the CLI,
   the stress runner) that must never show a user an OCaml backtrace
   for a predictable failure.  Anything unrecognized is [Internal] —
   the quarantine-worthy class. *)
let of_exn = function
  | Error e -> e
  | Invalid_argument msg -> Ill_formed msg
  | Stack_overflow -> Internal "stack overflow"
  | Out_of_memory -> Internal "out of memory"
  | Not_found -> Internal "uncaught Not_found"
  | Failure msg -> Internal msg
  | exn -> Internal (Printexc.to_string exn)

let guard f =
  match f () with
  | v -> Ok v
  | exception ((Stack_overflow | Out_of_memory) as exn) -> Error (of_exn exn)
  | exception Error e -> Error e
  | exception Invalid_argument msg -> Error (Ill_formed msg)
  | exception Failure msg -> Error (Internal msg)
