module TidMap = Ps.Machine.TidMap

type state = {
  world : Ps.Machine.world;
  bit : bool;
  promised : int TidMap.t;
}

type kind = Thread_step | Promise_step | Switch_step

type succ = {
  kind : kind;
  choice : int;
  tid : int;
  event : Ps.Event.te option;
  state : state;
}

let init p =
  Result.map
    (fun world -> { world; bit = true; promised = TidMap.empty })
    (Ps.Machine.init p)

let compare_state a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  Ps.Machine.compare a.world b.world <?> fun () ->
  Bool.compare a.bit b.bit <?> fun () ->
  TidMap.compare Int.compare a.promised b.promised

let equal_state a b = compare_state a b = 0

let committed_stats ~config ~program st =
  Ps.Cert.consistent_stats ~fuel:config.Config.cert_fuel
    ~cap:config.Config.cap_certification ~code:program.Lang.Ast.code
    (Ps.Machine.cur_ts st.world) st.world.Ps.Machine.mem

let committed ~config ~program st = fst (committed_stats ~config ~program st)

(* The successor enumeration.  Order and gating mirror the committed
   machine-step space of {!Enum}/{!Witness}: any thread step of the
   current thread (the non-preemptive discipline threads the switch
   bit), outputs only when consistent; promise steps within the
   per-thread budget (and, non-preemptively, only while the bit is
   on); switches from consistent configurations to unfinished threads.
   Everything is deterministic, so [(kind, choice)] pairs replay. *)
let successors ~config ~discipline ~program st =
  let code = program.Lang.Ast.code in
  let world = st.world in
  let ts = Ps.Machine.cur_ts world in
  let mem = world.Ps.Machine.mem in
  let cur = world.Ps.Machine.cur in
  let consistent ts mem =
    Ps.Cert.consistent ~fuel:config.Config.cert_fuel
      ~cap:config.Config.cap_certification ~code ts mem
  in
  let committed = lazy (consistent ts mem) in
  let bit_after te =
    match discipline with
    | Enum.Interleaving -> Some true
    | Enum.Non_preemptive -> Npsem.bit_after te ~before:st.bit
  in
  let thread_succs =
    List.concat
      (List.mapi
         (fun i (s : Ps.Thread.step) ->
           match bit_after s.Ps.Thread.event with
           | None -> []
           | Some bit' ->
               let allowed =
                 match s.Ps.Thread.event with
                 | Ps.Event.Out _ -> Lazy.force committed
                 | _ -> true
               in
               if not allowed then []
               else
                 [
                   {
                     kind = Thread_step;
                     choice = i;
                     tid = cur;
                     event = Some s.Ps.Thread.event;
                     state =
                       {
                         world =
                           Ps.Machine.set_cur_ts world s.Ps.Thread.ts
                             s.Ps.Thread.mem;
                         bit = bit';
                         promised = st.promised;
                       };
                   };
                 ])
         (Ps.Thread.steps ~code ts mem))
  in
  let spent =
    match TidMap.find_opt cur st.promised with Some k -> k | None -> 0
  in
  let promise_succs =
    if
      spent < config.Config.max_promises
      && (discipline = Enum.Interleaving || st.bit)
      && not (Ps.Local.is_finished ts.Ps.Thread.local)
    then
      let candidates =
        match config.Config.promise_mode with
        | Config.No_promises -> []
        | Config.Syntactic -> Ps.Thread.writes_in_code ~code ts
        | Config.Semantic ->
            Ps.Cert.certifiable_writes ~fuel:config.Config.cert_fuel ~code ts
              mem
      in
      List.concat
        (List.mapi
           (fun i (s : Ps.Thread.step) ->
             if consistent s.Ps.Thread.ts s.Ps.Thread.mem then
               [
                 {
                   kind = Promise_step;
                   choice = i;
                   tid = cur;
                   event = Some s.Ps.Thread.event;
                   state =
                     {
                       world =
                         Ps.Machine.set_cur_ts world s.Ps.Thread.ts
                           s.Ps.Thread.mem;
                       bit = st.bit;
                       promised = TidMap.add cur (spent + 1) st.promised;
                     };
                 };
               ]
             else [])
           (Ps.Thread.promise_steps ~candidates
              ~atomics:program.Lang.Ast.atomics ts mem))
    else []
  in
  let switch_succs =
    let may_switch =
      (match discipline with
      | Enum.Interleaving -> true
      | Enum.Non_preemptive ->
          st.bit || Ps.Local.is_finished ts.Ps.Thread.local)
      && Lazy.force committed
    in
    if may_switch then
      List.rev
        (TidMap.fold
           (fun tid ts' acc ->
             if tid <> cur && not (Ps.Local.is_finished ts'.Ps.Thread.local)
             then
               {
                 kind = Switch_step;
                 choice = tid;
                 tid;
                 event = None;
                 state =
                   {
                     world = Ps.Machine.switch world tid;
                     bit = true;
                     promised = st.promised;
                   };
               }
               :: acc
             else acc)
           world.Ps.Machine.tp [])
    else []
  in
  thread_succs @ promise_succs @ switch_succs

let apply ~config ~discipline ~program st kind ~choice =
  List.find_opt
    (fun s -> s.kind = kind && s.choice = choice)
    (successors ~config ~discipline ~program st)

let drive ~config ~discipline ~program schedule =
  match init program with
  | Error _ -> None
  | Ok st0 ->
      let exception Done of succ list in
      (* Backtracking over the successor enumeration: several distinct
         machine steps can carry the same (tid, event) label — e.g.
         two readable messages with the same value — so the first
         matching candidate is not necessarily the one that lets the
         rest of the schedule complete. *)
      let rec go st schedule acc =
        match schedule with
        | [] ->
            if Ps.Machine.terminal st.world then raise (Done (List.rev acc))
        | (tid, ev) :: rest ->
            let succs = successors ~config ~discipline ~program st in
            if tid = st.world.Ps.Machine.cur then
              List.iter
                (fun s ->
                  match (s.kind, s.event) with
                  | (Thread_step | Promise_step), Some e
                    when Ps.Event.equal_te e ev ->
                      go s.state rest (s :: acc)
                  | _ -> ())
                succs
            else
              (* Insert the context switch the schedule implies.  At
                 most one switch successor targets [tid], and after it
                 the thread is current, so this cannot loop. *)
              List.iter
                (fun s ->
                  if s.kind = Switch_step && s.tid = tid then
                    go s.state schedule (s :: acc))
                succs
      in
      (try
         go st0 schedule [];
         None
       with Done trail -> Some (st0, trail))

let trail_states st0 trail =
  st0 :: List.map (fun s -> s.state) trail

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Thread_step -> "step"
    | Promise_step -> "promise"
    | Switch_step -> "switch")
