(** The typed error taxonomy of the exploration stack, and the
    truncation vocabulary shared by every budget-aware component.

    Library modules never [failwith] on predictable failures: they
    return or raise one of these four classes so callers (the CLI, the
    stress runner, CI scripts) can branch on the {e kind} of failure —
    a syntax error is the user's problem, [Budget_exhausted] means the
    verdict is [Inconclusive], and [Internal] means quarantine the
    input and file a bug. *)

(** Why an exploration is incomplete.  A verdict derived from a
    traceset truncated for any of these reasons must degrade to
    inconclusive — see {!Enum.completeness} and docs/ROBUSTNESS.md. *)
type reason =
  | Step_budget  (** a path hit [Config.max_steps] *)
  | Promise_budget
      (** a certifiable promise was suppressed by [Config.max_promises]
          (only reported under [Config.strict_promises]) *)
  | Deadline  (** the wall-clock deadline [Config.deadline_ms] passed *)
  | Node_budget  (** [Config.max_nodes] distinct states were expanded *)
  | Oom  (** the live-word budget [Config.max_live_words] was exceeded *)
  | Fault  (** a fault-injection schedule fired ([Config.fault]) *)

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit
val pp_reasons : Format.formatter -> reason list -> unit

type pos = { line : int; col : int }

type t =
  | Parse_error of pos * string
  | Ill_formed of string  (** well-formedness / machine-init failures *)
  | Budget_exhausted of string
  | Internal of string  (** a bug in this library; quarantine-worthy *)

exception Error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val ill_formed : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error}[ (Ill_formed _)] with a formatted message. *)

val internal : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error}[ (Internal _)] with a formatted message. *)

val of_exn : exn -> t
(** Classify an escaped exception; unrecognized ones become
    [Internal]. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run [f], catching {!Error}, [Invalid_argument], [Failure],
    [Stack_overflow] and [Out_of_memory] into the taxonomy.  Genuinely
    unexpected exceptions still escape (the stress runner catches and
    quarantines those separately). *)
