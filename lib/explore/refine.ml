type verdict =
  | Refines
  | Violates of Ps.Event.trace list
  | Inconclusive of string

type report = {
  verdict : verdict;
  target : Enum.outcome;
  source : Enum.outcome;
}

(* The two sides of a refinement check (and the two disciplines of an
   equivalence check) are independent explorations: with a domain
   budget > 1 they run as two pool tasks, each with half the budget
   for its own inner engine.  [Enum.behaviors] is deterministic in
   [domains], so the verdict is identical either way. *)
let both_behaviors ~config disc pa pb =
  let stage d p cfg =
    Obs.Trace.span ~cat:"refine" "refine.stage" (fun () ->
        Enum.behaviors_exn ~config:cfg d p)
  in
  if config.Config.domains > 1 then
    let inner =
      { config with Config.domains = max 1 (config.Config.domains / 2) }
    in
    match
      Pool.map ~j:2
        (fun (d, p) -> stage d p inner)
        [ (fst disc, pa); (snd disc, pb) ]
    with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  else (stage (fst disc) pa config, stage (snd disc) pb config)

let check ?(config = Config.default) ?(discipline = Enum.Interleaving)
    ~target ~source () =
  let t, s = both_behaviors ~config (discipline, discipline) target source in
  let verdict =
    let reasons o =
      match o.Enum.completeness with
      | Enum.Exhaustive -> []
      | Enum.Truncated rs -> rs
    in
    match
      List.sort_uniq compare (reasons t @ reasons s)
    with
    | _ :: _ as rs ->
        Inconclusive
          (Format.asprintf
             "exploration truncated (%a); raise the exhausted budgets"
             Errors.pp_reasons rs)
    | [] ->
      (* The paper's behaviour sets are prefix-closed; compare the
         closures so that a divergence prefix of one side is matched
         by any extension on the other. *)
      let bad =
        Traceset.diff (Traceset.closure t.traces) (Traceset.closure s.traces)
      in
      if Traceset.is_empty bad then Refines
      else
        (* Completed counterexamples first: they are the decisive
           ones. *)
        let done_, open_ =
          List.partition
            (fun tr -> tr.Ps.Event.ending = Ps.Event.Done)
            (Traceset.elements bad)
        in
        Violates (done_ @ open_)
  in
  { verdict; target = t; source = s }

let refines ?config ?discipline ~target ~source () =
  (check ?config ?discipline ~target ~source ()).verdict = Refines

let equivalent ?config ?discipline p1 p2 =
  refines ?config ?discipline ~target:p1 ~source:p2 ()
  && refines ?config ?discipline ~target:p2 ~source:p1 ()

let equivalent_disciplines ?(config = Config.default) p =
  let a, b =
    both_behaviors ~config (Enum.Interleaving, Enum.Non_preemptive) p p
  in
  Traceset.equal_behaviour a.Enum.traces b.Enum.traces

let safe ?config p =
  let o = Enum.behaviors_exn ?config Enum.Interleaving p in
  Traceset.for_all
    (fun tr -> tr.Ps.Event.ending <> Ps.Event.Abort)
    o.Enum.traces

let pp_verdict ppf = function
  | Refines -> Format.pp_print_string ppf "refines"
  | Violates bad ->
      Format.fprintf ppf "violates (%d counterexample trace(s)): @[<v>%a@]"
        (List.length bad)
        (Format.pp_print_list Ps.Event.pp_trace)
        bad
  | Inconclusive why -> Format.fprintf ppf "inconclusive: %s" why
