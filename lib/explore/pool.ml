(* A hand-rolled work-sharing pool over OCaml 5 domains.

   No external dependencies: a [Mutex]/[Condition]-protected queue of
   indexed tasks, a fixed set of worker domains (the calling domain
   participates as one of them), and results gathered positionally so
   the merge order is deterministic regardless of which domain ran
   which task.

   The pool is batch-oriented: [map]/[map_with] enqueue the whole
   input, close the queue, and join.  Worker exceptions are captured
   per task and re-raised in task order after the join, so a failure
   is reported identically at every [j]. *)

let domain_cap = 8

let recommended () =
  max 1 (min domain_cap (Domain.recommended_domain_count ()))

(* ------------------------------------------------------------------ *)
(* The shared queue.  Tasks are indices into the input array; [closed]
   lets workers distinguish "momentarily empty" from "drained". *)

type queue = {
  m : Mutex.t;
  nonempty : Condition.t;
  q : int Queue.t;
  mutable closed : bool;
}

let queue_create () =
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    closed = false;
  }

let queue_push qu i =
  Mutex.lock qu.m;
  Queue.push i qu.q;
  Condition.signal qu.nonempty;
  Mutex.unlock qu.m

let queue_close qu =
  Mutex.lock qu.m;
  qu.closed <- true;
  Condition.broadcast qu.nonempty;
  Mutex.unlock qu.m

let queue_pop qu =
  Mutex.lock qu.m;
  let rec wait () =
    match Queue.take_opt qu.q with
    | Some i ->
        Mutex.unlock qu.m;
        Some i
    | None ->
        if qu.closed then begin
          Mutex.unlock qu.m;
          None
        end
        else begin
          Condition.wait qu.nonempty qu.m;
          wait ()
        end
  in
  wait ()

(* ------------------------------------------------------------------ *)

(* Task runtimes feed the load-balance histogram at every [j]
   (including the sequential fast path, so j=1 and j=4 runs are
   comparable in `psopt metrics`). *)
let task_hist =
  Obs.Metrics.histogram ~help:"Pool task run time" "psopt_pool_task_duration_ns"

let run_task f w x =
  Obs.Trace.span ~cat:"pool" "pool.task" (fun () ->
      Obs.Metrics.time task_hist (fun () -> f w x))

let map_with ~j ~init ~finish f xs =
  let n = List.length xs in
  let j = max 1 (min j n) in
  if j <= 1 then begin
    let w = init () in
    let r = List.map (run_task f w) xs in
    finish w;
    r
  end
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let qu = queue_create () in
    Array.iteri (fun i _ -> queue_push qu i) input;
    queue_close qu;
    let worker () =
      let w = init () in
      let rec loop () =
        match queue_pop qu with
        | None -> ()
        | Some i ->
            (results.(i) <-
               Some
                 (try Ok (run_task f w input.(i))
                  with e -> Error (e, Printexc.get_raw_backtrace ())));
            loop ()
      in
      loop ();
      finish w
    in
    let spawned = List.init (j - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let map ~j f xs = map_with ~j ~init:(fun () -> ()) ~finish:(fun () -> ()) (fun () x -> f x) xs

(* ------------------------------------------------------------------ *)
(* Hash-sharded mutex-protected hash tables: one lock per shard so
   concurrent cache lookups from different domains rarely collide.
   Purely a cache structure — callers must only store values that are
   pure functions of their key, so a lost race (two domains computing
   the same entry) is benign. *)

module Sharded (H : Hashtbl.HashedType) = struct
  module T = Hashtbl.Make (H)

  type 'a shard = { lock : Mutex.t; tbl : 'a T.t }
  type 'a t = { shards : 'a shard array; mask : int }

  let create ?(shards = 64) size =
    (* round the shard count up to a power of two for mask indexing *)
    let rec pow2 n = if n >= shards then n else pow2 (n * 2) in
    let n = pow2 1 in
    {
      shards =
        Array.init n (fun _ ->
            { lock = Mutex.create (); tbl = T.create (max 1 (size / n)) });
      mask = n - 1;
    }

  let shard t k = t.shards.(H.hash k land t.mask)

  let find_opt t k =
    let s = shard t k in
    Mutex.lock s.lock;
    let r = T.find_opt s.tbl k in
    Mutex.unlock s.lock;
    r

  let replace t k v =
    let s = shard t k in
    Mutex.lock s.lock;
    T.replace s.tbl k v;
    Mutex.unlock s.lock

  let length t =
    Array.fold_left (fun acc s -> acc + T.length s.tbl) 0 t.shards
end
