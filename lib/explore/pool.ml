(* A hand-rolled work-stealing pool over OCaml 5 domains.

   No external dependencies.  Each worker owns a Chase–Lev deque: the
   owner pushes and pops one end without locks, idle workers steal
   single tasks from the other end with a CAS.  The calling domain
   participates as worker 0, so [~j:1] spawns nothing.

   Results are gathered positionally and worker exceptions are
   captured per task and re-raised in task order after the join, so a
   failure is reported identically at every [j].  Spawned domains are
   always joined — even when [init]/[finish] raises on the
   coordinating domain — via a [Fun.protect] finalizer. *)

let domain_cap = 8

let recommended () =
  max 1 (min domain_cap (Domain.recommended_domain_count ()))

(* ------------------------------------------------------------------ *)
(* Chase–Lev work-stealing deque.

   [top] and [bottom] are SC atomics; the buffer is a growable
   circular array published through an [Atomic] so thieves holding a
   stale pointer still read a coherent (frozen) copy.  [top] is
   monotonically increasing, which rules out ABA on the steal CAS.
   Only the owner calls [push]/[pop]; any domain may [steal].  Slots
   are ['a option] so an empty slot needs no dummy value; stale slots
   are not cleared — the retained references are bounded by the buffer
   size and die with the deque. *)

module Deque = struct
  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    buf : 'a option array Atomic.t;
  }

  let create () =
    { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (Array.make 16 None) }

  let grow d b t a =
    let n = Array.length a in
    let a' = Array.make (2 * n) None in
    for i = t to b - 1 do
      a'.(i land ((2 * n) - 1)) <- a.(i land (n - 1))
    done;
    Atomic.set d.buf a';
    a'

  (* owner only *)
  let push d v =
    let b = Atomic.get d.bottom in
    let t = Atomic.get d.top in
    let a = Atomic.get d.buf in
    let a = if b - t >= Array.length a then grow d b t a else a in
    a.(b land (Array.length a - 1)) <- Some v;
    Atomic.set d.bottom (b + 1)

  (* owner only *)
  let pop d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b < t then begin
      (* empty: restore the canonical empty state *)
      Atomic.set d.bottom t;
      None
    end
    else begin
      let a = Atomic.get d.buf in
      let v = a.(b land (Array.length a - 1)) in
      if b > t then v
      else begin
        (* last element: race the thieves for it *)
        let won = Atomic.compare_and_set d.top t (t + 1) in
        Atomic.set d.bottom (t + 1);
        if won then v else None
      end
    end

  (* any domain.  [None] means empty or lost the race — callers retry
     elsewhere. *)
  let steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then None
    else begin
      let a = Atomic.get d.buf in
      let v = a.(t land (Array.length a - 1)) in
      if Atomic.compare_and_set d.top t (t + 1) then v else None
    end

  let is_empty d = Atomic.get d.top >= Atomic.get d.bottom
end

(* ------------------------------------------------------------------ *)
(* A lock-free single-direction publication channel: producers CAS
   immutable batches onto a cons-list head, consumers remember the
   last head they saw ([mark]) and absorb only the batches published
   since.  When nothing new was published, [drain] is a single atomic
   load and a physical-equality test.

   Intended for publishing domain-local cache entries whose values are
   pure functions of their key: batches are never removed, every
   consumer eventually sees every batch, and seeing an entry twice is
   benign. *)

module Chan = struct
  type 'a node = Nil | Cons of { batch : 'a array; next : 'a node }
  type 'a t = 'a node Atomic.t
  type 'a mark = 'a node

  let create () : 'a t = Atomic.make Nil
  let genesis : 'a mark = Nil
  let mark (t : 'a t) : 'a mark = Atomic.get t

  let publish t batch =
    if Array.length batch > 0 then begin
      let rec go () =
        let head = Atomic.get t in
        if not (Atomic.compare_and_set t head (Cons { batch; next = head })) then go ()
      in
      go ()
    end

  let drain t ~(since : 'a mark) ~f : 'a mark =
    let head = Atomic.get t in
    let rec go n =
      if n != since then
        match n with
        | Nil -> ()
        | Cons { batch; next } ->
            Array.iter f batch;
            go next
    in
    go head;
    head
end

(* ------------------------------------------------------------------ *)

(* Task runtimes feed the load-balance histogram at every [j]
   (including the sequential fast path, so j=1 and j=4 runs are
   comparable in `psopt metrics`). *)
let task_hist =
  Obs.Metrics.histogram ~help:"Pool task run time" "psopt_pool_task_duration_ns"

let timed f =
  Obs.Trace.span ~cat:"pool" "pool.task" (fun () -> Obs.Metrics.time task_hist f)

let run_task f w x = timed (fun () -> f w x)

(* Exponential idle backoff.  On an undersubscribed machine a spinning
   thief steals time slices from the domain actually doing the work,
   so after a few [cpu_relax] rounds we yield to the scheduler. *)
let backoff n =
  if n < 16 then Domain.cpu_relax ()
  else Unix.sleepf (Float.min 0.0005 (2e-5 *. float_of_int (n - 15)))

let map_with ~j ~init ~finish f xs =
  let n = List.length xs in
  let j = max 1 (min j n) in
  if j <= 1 then begin
    let w = init () in
    match List.map (run_task f w) xs with
    | r ->
        finish w;
        r
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (try finish w with _ -> ());
        Printexc.raise_with_backtrace e bt
  end
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let deques = Array.init j (fun _ -> Deque.create ()) in
    (* Pre-deal tasks round-robin; pushing high indices first makes
       each owner pop its low indices first (LIFO deque). *)
    for i = n - 1 downto 0 do
      Deque.push deques.(i mod j) i
    done;
    let remaining = Atomic.make n in
    let worker me =
      let w = init () in
      (* Hand-rolled finally: [finish] must run exactly once on every
         exit path, but its own exception must propagate as itself
         (Fun.protect would wrap it in [Finally_raised], breaking the
         deterministic-error contract), and a task-loop exception
         takes precedence over a secondary [finish] failure. *)
      let finished = ref false in
      let finish_once () =
        if not !finished then begin
          finished := true;
          finish w
        end
      in
      (fun body ->
        (match body () with
        | () -> ()
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            (try finish_once () with _ -> ());
            Printexc.raise_with_backtrace e bt);
        finish_once ())
        (fun () ->
          let run i =
            results.(i) <-
              Some
                (try Ok (run_task f w input.(i))
                 with e -> Error (e, Printexc.get_raw_backtrace ()));
            Atomic.decr remaining
          in
          let try_steal () =
            let found = ref None in
            let k = ref 1 in
            while !found = None && !k < j do
              (match Deque.steal deques.((me + !k) mod j) with
              | Some i -> found := Some i
              | None -> ());
              incr k
            done;
            !found
          in
          let rec loop idle =
            match Deque.pop deques.(me) with
            | Some i ->
                run i;
                loop 0
            | None ->
                if Atomic.get remaining = 0 then ()
                else begin
                  match try_steal () with
                  | Some i ->
                      run i;
                      loop 0
                  | None ->
                      if Atomic.get remaining = 0 then ()
                      else begin
                        backoff idle;
                        loop (idle + 1)
                      end
                end
          in
          loop 0)
    in
    let spawned = List.init (j - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    (* Join every spawned domain no matter how the coordinating worker
       exits; a worker failure during join must not abandon the rest,
       so joins never raise directly — the first failure is re-raised
       after the sweep (coordinator failures take precedence via
       Fun.protect). *)
    let spawn_err = ref None in
    let join_all () =
      List.iter
        (fun d ->
          try Domain.join d
          with e ->
            if !spawn_err = None then
              spawn_err := Some (e, Printexc.get_raw_backtrace ()))
        spawned
    in
    Fun.protect ~finally:join_all (fun () -> worker 0);
    (match !spawn_err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let map ~j f xs =
  map_with ~j ~init:(fun () -> ()) ~finish:(fun () -> ()) (fun () x -> f x) xs

(* ------------------------------------------------------------------ *)
(* Hash-sharded mutex-protected hash tables: one lock per shard so
   concurrent cache lookups from different domains rarely collide.
   Purely a cache structure — callers must only store values that are
   pure functions of their key, so a lost race (two domains computing
   the same entry) is benign. *)

module Sharded (H : Hashtbl.HashedType) = struct
  module T = Hashtbl.Make (H)

  type 'a shard = { lock : Mutex.t; tbl : 'a T.t }
  type 'a t = { shards : 'a shard array; mask : int }

  let create ?(shards = 64) size =
    (* round the shard count up to a power of two for mask indexing *)
    let rec pow2 n = if n >= shards then n else pow2 (n * 2) in
    let n = pow2 1 in
    {
      shards =
        Array.init n (fun _ ->
            { lock = Mutex.create (); tbl = T.create (max 1 (size / n)) });
      mask = n - 1;
    }

  let shard t k = t.shards.(H.hash k land t.mask)

  let find_opt t k =
    let s = shard t k in
    Mutex.lock s.lock;
    let r = T.find_opt s.tbl k in
    Mutex.unlock s.lock;
    r

  let replace t k v =
    let s = shard t k in
    Mutex.lock s.lock;
    T.replace s.tbl k v;
    Mutex.unlock s.lock

  let length t =
    (* Hashtbl reads are not atomic: lock each shard so a concurrent
       [replace] (resize in flight) cannot be observed mid-update. *)
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.lock;
        let n = T.length s.tbl in
        Mutex.unlock s.lock;
        acc + n)
      0 t.shards
end
