(** Exploration statistics — the measurements behind experiments E9
    and E16 (state-space size of the interleaving vs the
    non-preemptive machine), the bench harness and its certification
    ablation, and the truncation-pressure counters the resilience
    layer reports. *)

type t = {
  mutable nodes : int;  (** distinct machine states visited *)
  mutable transitions : int;  (** micro-steps enumerated *)
  mutable memo_hits : int;
  mutable memo_size : int;
      (** entries in the suffix-set memo table at the end of the
          search (distinct memoized machine states) *)
  mutable cert_checks : int;  (** consistency checks requested *)
  mutable cert_cache_hits : int;
      (** consistency checks answered by the certification cache
          without re-running {!Ps.Cert.consistent}; checks on
          promise-free thread states are trivially true and counted
          in neither this nor [cert_cache_size] *)
  mutable cert_cache_size : int;
      (** distinct [(thread-state, memory)] configurations certified *)
  mutable cycles : int;  (** back-edges (divergence points) found *)
  mutable cuts : int;  (** paths truncated by the step budget *)
  mutable promises : int;  (** promise steps explored *)
  mutable peak_depth : int;  (** deepest micro-step stack reached *)
  mutable deadline_hits : int;
      (** subtrees abandoned because [Config.deadline_ms] passed *)
  mutable node_budget_hits : int;
      (** subtrees abandoned because [Config.max_nodes] was reached *)
  mutable oom_hits : int;
      (** subtrees abandoned because the live-word budget
          [Config.max_live_words] was exceeded *)
  mutable promise_budget_hits : int;
      (** nonempty certifiable-promise candidate sets suppressed by
          [Config.max_promises] (counted only under
          [Config.strict_promises]) *)
  mutable faults_injected : int;
      (** injected faults that fired ([Config.fault] mode) *)
}

val create : unit -> t

val truncation_reasons : t -> Errors.reason list
(** The distinct reasons this search was incomplete — empty iff the
    exploration was exhaustive.  Derived from the counters, so callers
    of {!Enum.iter_reachable} (which streams states instead of
    returning an {!Enum.outcome}) can judge completeness too. *)

val pp : Format.formatter -> t -> unit
