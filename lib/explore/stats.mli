(** Exploration statistics — the measurements behind experiments E9
    and E16 (state-space size of the interleaving vs the
    non-preemptive machine), the bench harness and its certification
    ablation. *)

type t = {
  mutable nodes : int;  (** distinct machine states visited *)
  mutable transitions : int;  (** micro-steps enumerated *)
  mutable memo_hits : int;
  mutable memo_size : int;
      (** entries in the suffix-set memo table at the end of the
          search (distinct memoized machine states) *)
  mutable cert_checks : int;  (** consistency checks requested *)
  mutable cert_cache_hits : int;
      (** consistency checks answered by the certification cache
          without re-running {!Ps.Cert.consistent}; checks on
          promise-free thread states are trivially true and counted
          in neither this nor [cert_cache_size] *)
  mutable cert_cache_size : int;
      (** distinct [(thread-state, memory)] configurations certified *)
  mutable cycles : int;  (** back-edges (divergence points) found *)
  mutable cuts : int;  (** paths truncated by the step budget *)
  mutable promises : int;  (** promise steps explored *)
  mutable peak_depth : int;  (** deepest micro-step stack reached *)
}

val create : unit -> t
val pp : Format.formatter -> t -> unit
