(** Exploration statistics — the measurements behind experiments E9
    and E16 (state-space size of the interleaving vs the
    non-preemptive machine), the bench harness and its certification
    ablation, and the truncation-pressure counters the resilience
    layer reports.

    Every counter is an [Atomic.t] so the domain-parallel engine keeps
    accounting exact without a global lock: workers bump counters with
    [Atomic.incr]/[Atomic.fetch_and_add]; readers use [Atomic.get].

    Certification accounting is partitioned exactly: every consistency
    check requested bumps [cert_checks] and then exactly one of
    [cert_cache_hits], [cert_runs], [cert_trivial], or [cert_faults] —
    so [cert_checks = cert_cache_hits + cert_runs + cert_trivial +
    cert_faults] always holds (asserted in the test suite). *)

type t = {
  nodes : int Atomic.t;  (** distinct machine states visited *)
  transitions : int Atomic.t;  (** micro-steps enumerated *)
  memo_hits : int Atomic.t;
  memo_size : int Atomic.t;
      (** entries in the (merged) suffix-set memo table at the end of
          the search (distinct memoized machine states) *)
  cert_checks : int Atomic.t;  (** consistency checks requested *)
  cert_cache_hits : int Atomic.t;
      (** consistency checks answered by the certification cache
          without re-running {!Ps.Cert.consistent} *)
  cert_runs : int Atomic.t;
      (** consistency checks that actually ran {!Ps.Cert.consistent} *)
  cert_trivial : int Atomic.t;
      (** consistency checks on promise-free thread states, trivially
          true without consulting the cache *)
  cert_faults : int Atomic.t;
      (** consistency checks answered [false] by the fault injector
          (these bypass the cache and also count in
          [faults_injected]) *)
  cand_cache_hits : int Atomic.t;
      (** promise-candidate sets answered by the candidate cache
          (previously conflated with [cert_cache_hits]) *)
  cert_cache_size : int Atomic.t;
      (** distinct [(thread-state, memory)] configurations certified *)
  cycles : int Atomic.t;  (** back-edges (divergence points) found *)
  cuts : int Atomic.t;  (** paths truncated by the step budget *)
  promises : int Atomic.t;  (** promise steps explored *)
  peak_depth : int Atomic.t;  (** deepest micro-step stack reached *)
  deadline_hits : int Atomic.t;
      (** subtrees abandoned because [Config.deadline_ms] passed *)
  node_budget_hits : int Atomic.t;
      (** subtrees abandoned because [Config.max_nodes] was reached *)
  oom_hits : int Atomic.t;
      (** subtrees abandoned because the live-word budget
          [Config.max_live_words] was exceeded *)
  promise_budget_hits : int Atomic.t;
      (** nonempty certifiable-promise candidate sets suppressed by
          [Config.max_promises] (counted only under
          [Config.strict_promises]) *)
  faults_injected : int Atomic.t;
      (** injected faults that fired ([Config.fault] mode) *)
  sleep_prunes : int Atomic.t;
      (** switch successors dropped by the symmetric-sibling rule of
          the partial-order reduction ([Config.reduction.por],
          docs/REDUCTION.md): switch targets whose thread record is
          literally equal to an already-kept sibling's *)
  persistent_prunes : int Atomic.t;
      (** switch successors dropped by the ample-set rule: the current
          thread's only regular step is a deterministic in-block local
          τ, so every switch commutes past it *)
  symmetry_folds : int Atomic.t;
      (** memo-table lookups answered only thanks to symmetry
          canonicalization ([Config.reduction.symmetry]) — the probe
          hit under the canonical key where the raw key would have
          missed *)
  promise_bound_hits : int Atomic.t;
      (** nonempty certifiable-promise candidate sets suppressed by
          [Config.reduction.bound_promises]; each also counts in
          [promise_budget_hits], which drives the [Promise_budget]
          truncation reason *)
  domains_used : int Atomic.t;
      (** effective pool width this search ran with ([Config.domains]
          after clamping) *)
  domains_recommended : int Atomic.t;
      (** [Domain.recommended_domain_count ()] on this machine —
          recorded so bench JSON carries the hardware context *)
  started_ns : int Atomic.t;
      (** {!Obs.Clock.now_ns} stamp taken at {!create} — the same
          clock the span tracer uses, so the stats line and a [--trace]
          of the same run measure the same interval *)
  elapsed_ns : int Atomic.t;
      (** wall-clock duration of the search, set by {!finish} *)
}

(** Counters of the verification service ({!module:Service} in
    [lib/service]): requests served, content-addressed store hits and
    misses, admission-queue rejections and internal errors.  Atomics
    for the same reason as above — the daemon bumps them from one
    handler thread per connection and reports them lock-free via the
    [Stats] request (docs/SERVICE.md). *)
module Service : sig
  type t = {
    served : int Atomic.t;  (** work requests answered with a result *)
    store_hits : int Atomic.t;  (** answered straight from the store *)
    store_misses : int Atomic.t;  (** computed (and recorded) fresh *)
    busy : int Atomic.t;  (** rejected with [Busy] by admission control *)
    errors : int Atomic.t;  (** protocol or internal failures *)
    sheds : int Atomic.t;
        (** queued requests preempted out of a full queue by a
            higher-priority arrival ([Shed Overload]) *)
    expired : int Atomic.t;
        (** queued requests dropped because their wall-clock deadline
            or the queue TTL passed while waiting ([Shed Expired]) *)
    evictions : int Atomic.t;
        (** connections closed by the server's I/O deadlines —
            slowloris or idle peers *)
  }

  val create : unit -> t
  val pp : Format.formatter -> t -> unit
end

(** A domain-local unsynchronized mirror of the hot counters.  The
    parallel engine bumps these plain mutable fields per node/check
    (one store, no shared-cache-line traffic) and {!Local.flush}es
    them into the shared atomics at worker exit and at the periodic
    probe tick, so the final shared numbers are exact while the hot
    path never touches contended memory.  [peak_depth] flushes via
    {!record_max}. *)
module Local : sig
  type shared := t

  type t = {
    mutable nodes : int;
    mutable transitions : int;
    mutable memo_hits : int;
    mutable cert_checks : int;
    mutable cert_cache_hits : int;
    mutable cert_runs : int;
    mutable cert_trivial : int;
    mutable cert_faults : int;
    mutable cand_cache_hits : int;
    mutable cycles : int;
    mutable cuts : int;
    mutable promises : int;
    mutable peak_depth : int;
    mutable deadline_hits : int;
    mutable node_budget_hits : int;
    mutable oom_hits : int;
    mutable promise_budget_hits : int;
    mutable faults_injected : int;
    mutable sleep_prunes : int;
    mutable persistent_prunes : int;
    mutable symmetry_folds : int;
    mutable promise_bound_hits : int;
  }

  val create : unit -> t

  val flush : t -> shared -> unit
  (** Add every nonzero field into the shared record and zero it, so
      flushing is idempotent-by-construction and may run any number of
      times per worker. *)
end

val create : unit -> t

val record_max : int Atomic.t -> int -> unit
(** [record_max c v] atomically raises [c] to [v] if [v] is larger
    (lock-free compare-and-set loop); used for [peak_depth]. *)

val truncation_reasons : t -> Errors.reason list
(** The distinct reasons this search was incomplete — empty iff the
    exploration was exhaustive.  Derived from the counters, so callers
    of {!Enum.iter_reachable} (which streams states instead of
    returning an {!Enum.outcome}) can judge completeness too. *)

val finish : t -> unit
(** Stamp [elapsed_ns] from the shared clock and publish this search's
    counters into the process-global {!Obs.Metrics} registry
    (cumulative [psopt_explore_*] families; the exact cert partition
    becomes the [outcome] label of
    [psopt_explore_cert_outcomes_total]).  Called once per search by
    [Enum]. *)

val elapsed_ms : t -> int

val pp : Format.formatter -> t -> unit
