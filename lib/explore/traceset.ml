include Set.Make (struct
  type t = Ps.Event.trace

  let compare = Ps.Event.compare_trace
end)

let prepend v s =
  map (fun tr -> { tr with Ps.Event.outs = v :: tr.Ps.Event.outs }) s

let completed s =
  filter (fun tr -> tr.Ps.Event.ending = Ps.Event.Done) s

let done_outs s =
  elements (completed s) |> List.map (fun tr -> tr.Ps.Event.outs)

let has_done outs s =
  mem { Ps.Event.outs; ending = Ps.Event.Done } s

let closure s =
  (* Every prefix — the full output sequence included — is also a
     trace with the Open ending; the original record keeps its own
     ending alongside.  Prefixes are produced left to right by
     extending one reversed prefix, so each costs work proportional to
     its own length — the minimum, given that it is materialized. *)
  fold
    (fun tr acc ->
      let acc = add { tr with Ps.Event.ending = Ps.Event.Open } (add tr acc) in
      fst
        (List.fold_left
           (fun (acc, rev_prefix) v ->
             ( add
                 { Ps.Event.outs = List.rev rev_prefix;
                   ending = Ps.Event.Open }
                 acc,
               v :: rev_prefix ))
           (acc, []) tr.Ps.Event.outs))
    s s

let equal_behaviour a b = equal (closure a) (closure b)

let is_refined_by ~target ~source =
  subset (completed target) (completed source)

let diff_done ~target ~source = diff (completed target) (completed source)

let pp ppf s =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Ps.Event.pp_trace)
    (elements s)

(* Orbit expansion under thread-symmetry (docs/REDUCTION.md).  The
   symmetry-reduced explorer folds the subtrees of worlds that differ
   only by a permutation of identical-program threads onto one
   representative.  Expanding a reduced traceset over an orbit is the
   identity: traces are output sequences with an ending — they carry
   no thread identifiers — so every permuted execution contributes the
   very same trace the representative already did.  The function
   exists to carry that erasure theorem in the API (and in the tests,
   which assert the invariance): consumers need no compensation step
   after a symmetry-reduced run. *)
let orbit_expand (classes : int array list) t =
  ignore classes;
  t
