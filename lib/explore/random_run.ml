type run_result = {
  trace : Ps.Event.trace;
  steps : int;
  final : Ps.Machine.world;
}

let run ?(seed = 0) ?(max_steps = 10_000) (p : Lang.Ast.program) =
  match Ps.Machine.init p with
  | Error e -> Error e
  | Ok world ->
      let rng = Random.State.make [| seed |] in
      let code = p.Lang.Ast.code in
      let outs = ref [] in
      let world = ref world in
      let steps = ref 0 in
      let ending = ref Ps.Event.Cut in
      (try
         while !steps < max_steps do
           incr steps;
           let w = !world in
           if Ps.Machine.terminal w then (
             ending := Ps.Event.Done;
             raise Exit);
           let ts = Ps.Machine.cur_ts w in
           let thread_steps =
             Ps.Thread.steps ~code ts w.Ps.Machine.mem
             |> List.map (fun (s : Ps.Thread.step) -> `Step s)
           in
           let switches =
             Ps.Machine.TidMap.fold
               (fun tid ts' acc ->
                 if
                   tid <> w.Ps.Machine.cur
                   && not (Ps.Local.is_finished ts'.Ps.Thread.local)
                 then `Switch tid :: acc
                 else acc)
               w.Ps.Machine.tp []
           in
           let choices = thread_steps @ switches in
           if choices = [] then (
             ending := Ps.Event.Open;
             raise Exit);
           match List.nth choices (Random.State.int rng (List.length choices))
           with
           | `Switch tid -> world := Ps.Machine.switch w tid
           | `Step s ->
               (match s.Ps.Thread.event with
               | Ps.Event.Out v -> outs := v :: !outs
               | _ -> ());
               world := Ps.Machine.set_cur_ts w s.Ps.Thread.ts s.Ps.Thread.mem
         done
       with Exit -> ());
      Ok
        {
          trace = { Ps.Event.outs = List.rev !outs; ending = !ending };
          steps = !steps;
          final = !world;
        }

let run_exn ?seed ?max_steps p =
  match run ?seed ?max_steps p with
  | Ok r -> r
  | Error e -> raise (Errors.Error (Errors.Ill_formed e))

let sample ?(seed = 0) ?max_steps ~runs p =
  let tbl = Hashtbl.create 16 in
  for i = 0 to runs - 1 do
    let r = run_exn ~seed:(seed + i) ?max_steps p in
    if r.trace.Ps.Event.ending = Ps.Event.Done then
      let outs = r.trace.Ps.Event.outs in
      Hashtbl.replace tbl outs
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl outs))
  done;
  Hashtbl.fold (fun outs n acc -> (outs, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
