(** Crash-safe batch stress runner: seeded random CSimpRTL programs
    fed through an optimize-then-verify cycle under per-case deadlines,
    with bounded budget-escalating retries and an [Internal]-error
    quarantine (docs/ROBUSTNESS.md).

    The verification pipeline itself lives above this library
    ([Sim.Verif]), so the runner is parameterized over a [check]
    callback; [bin/psopt.ml]'s [stress] subcommand wires the two
    together. *)

val generate : seed:int -> Lang.Ast.program
(** A small well-formed two-thread program, a pure function of
    [seed]: two non-atomic locations, one atomic flag, every access
    mode, each thread ending in a print. *)

val reduction_of_seed : int -> Config.reduction
(** The case's state-space reduction mode, a pure function of the
    seed like the program itself (the random config matrix cycles
    through off / por / symmetry / full / full+bounded-promises).
    Replaying a quarantined case means
    [generate ~seed:case_seed] under [reduction_of_seed case_seed] —
    both are also recorded in the persisted artifacts. *)

val reduction_tag : Config.reduction -> string
(** One-line rendering used in artifacts and the summary,
    e.g. ["por=true sym=false bound=none"]. *)

type case_verdict =
  | Verified
  | Refuted of string  (** includes racy-source rejections *)
  | Inconclusive of string  (** still truncated after all retries *)
  | Quarantined of string
      (** the checker crashed or reported [Errors.Internal]; the
          program was persisted as a [.sexp] artifact *)

type case_result = {
  id : int;
  case_seed : int;  (** regenerate with {!generate}[ ~seed:case_seed] *)
  attempts : int;  (** 1 + retries used *)
  verdict : case_verdict;
  reduction : Config.reduction;
      (** the mode the case ran under ([reduction_of_seed case_seed]) *)
}

type summary = {
  cases : int;
  verified : int;
  refuted : int;
  inconclusive : int;
  quarantined : int;
  results : case_result list;  (** in case order *)
}

val run :
  ?config:Config.t ->
  ?retries:int ->
  ?quarantine_dir:string ->
  ?j:int ->
  ?on_quarantine:
    (dir:string -> base:string -> config:Config.t -> Lang.Ast.program -> unit) ->
  cases:int ->
  seed:int ->
  deadline_ms:int ->
  check:
    (config:Config.t ->
    Lang.Ast.program ->
    [ `Verified | `Refuted of string | `Inconclusive of string ]) ->
  unit ->
  summary
(** Run [cases] seeded cases (seeds [seed..seed+cases-1]).  Each case
    runs [check] with a config whose [max_steps] and [deadline_ms]
    double on every retry (at most [retries] extra attempts, default
    2, taken only while the verdict is inconclusive) and whose
    [reduction] is overridden with {!reduction_of_seed} — the random
    config matrix covers every reduction mode.  A case whose
    checker raises anything but [Errors.Budget_exhausted] is
    quarantined: the program and the reason are persisted under
    [quarantine_dir] (default [_stress_quarantine]).  [on_quarantine]
    (if given) then runs once per quarantined case with the directory,
    the artifact base name, the exact config the case ran under
    (reduction override included) and the program — [bin/psopt.ml]
    uses it to drop a replayable [.trace] next to the [.sexp]
    (docs/REPLAY.md); exceptions it raises are swallowed.

    [j] (default 1) dispatches whole cases across a {!Pool} of that
    many domains; each case's own explorations then run single-domain.
    Per-case verdicts are a pure function of the seed, so the summary
    is identical at every [j].

    Crash safety: the in-flight program is written to
    [<quarantine_dir>/inflight.sexp] ([inflight-<case>.sexp] per case
    under parallel dispatch) before its check starts and removed
    after, so a hard crash of the whole process still leaves the
    offending case(s) on disk. *)

val pp_case_verdict : Format.formatter -> case_verdict -> unit
val pp_summary : Format.formatter -> summary -> unit
