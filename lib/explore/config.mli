(** Exploration configuration: the bounds that make PS2.1's infinite
    branching finite, and the switches for the ablation experiments.

    Defaults are tuned so that every litmus program of the paper
    explores exhaustively (no [Cut] traces) in well under a second.
    The optional resource budgets ([deadline_ms], [max_nodes],
    [max_live_words]) are off by default; when one trips, the search
    degrades explicitly — the affected subtree becomes a [Cut] trace,
    the {!Stats} counter for the reason increments, and the
    {!Enum.outcome} reports [Truncated] so downstream verdicts become
    inconclusive instead of over-claiming (docs/ROBUSTNESS.md). *)

type promise_mode =
  | No_promises
      (** promise-free exploration (an ablation: loses LB-style
          behaviours, experiment E2 demonstrates the difference) *)
  | Semantic
      (** candidates are the certifiable writes discovered by isolated
          runs from capped memory ({!Ps.Cert.certifiable_writes}) *)
  | Syntactic
      (** candidates are constant stores syntactically reachable in
          the thread's remaining code *)

type fault = {
  fault_seed : int;  (** PRNG seed — the schedule is a pure function of it *)
  fault_rate : float;
      (** probability in [0,1] that any given enumeration or
          certification step is killed *)
}
(** Deterministic fault injection: with probability [fault_rate], an
    enumeration step is cut (as if a budget had tripped there) or a
    certification query answers "inconsistent".  Both moves only
    remove behaviours, so completed traces under any schedule are a
    subset of the fault-free run and verdicts can only degrade toward
    inconclusive — the property test in test/test_robustness.ml. *)

type reduction = {
  por : bool;
      (** certification-aware partial-order reduction: ample-set
          pruning of switch successors under a deterministic local τ
          step, plus sleep-set style pruning of switch targets whose
          thread records are literally equal (docs/REDUCTION.md).
          Preserves completed traces exactly; [Open] divergence
          prefixes may differ, so compare reduced vs. unreduced runs
          with {!Traceset.equal_behaviour}. *)
  symmetry : bool;
      (** canonicalize memo-table keys under permutations of
          syntactically identical threads, so N identical threads cost
          one orbit of subtree explorations instead of N!
          (docs/REDUCTION.md).  Raw-traceset preserving: traces carry
          no thread identifiers. *)
  bound_promises : int option;
      (** [Some k] caps outstanding promise steps per thread at [k]
          (overriding [max_promises]) and forces strict reporting:
          exhaustive for the bound, honest [Truncated
          [Promise_budget]] whenever the cap suppressed a nonempty
          candidate set — the bounded-promise exploration mode of "The
          Decidability of Verification under Promising 2.0". *)
}
(** The state-space reduction layer (docs/REDUCTION.md).  All three
    techniques compose with each other, with memoization and with the
    parallel engine ([-j]); the traceset at a {e fixed} reduction
    setting is deterministic across widths as usual. *)

val no_reduction : reduction
(** All techniques off — the default, and the reference semantics. *)

val full_reduction : reduction
(** [por] and [symmetry] on, no promise bound. *)

type t = {
  max_steps : int;
      (** depth bound on micro-steps along one path; exceeding it
          yields a [Cut] trace, never silent truncation *)
  max_promises : int;  (** promise steps per thread along a path *)
  promise_mode : promise_mode;
  reservations : bool;
      (** enumerate reserve/cancel steps (off by default: reservations
          only matter for RMW-heavy certification races, and they are
          exercised directly by unit tests) *)
  cert_fuel : int;  (** step bound inside one certification search *)
  cap_certification : bool;
      (** certify against capped memory (PS2.1); [false] is the
          ablation of Sec. 2.4's discussion *)
  memoize : bool;
      (** memoize suffix sets per machine state (exact for acyclic
          state spaces; divergence is reported as [Open] prefixes) *)
  cert_cache : bool;
      (** cache certification verdicts per [(thread-state, memory)]
          configuration, so {!Ps.Cert.consistent} — the dominant cost
          of the hot path, forced for every output, switch and promise
          candidate — runs once per distinct configuration instead of
          once per successor.  Sound: the verdict is a pure function
          of the configuration (fuel and capping are fixed per
          search).  [false] is the bench ablation. *)
  deadline_ms : int option;
      (** wall-clock budget for one exploration, measured from the
          start of the search *)
  max_nodes : int option;  (** budget on distinct states expanded *)
  max_live_words : int option;
      (** abandon the search when the major heap's live words exceed
          this (checked periodically via [Gc.quick_stat]) *)
  strict_promises : bool;
      (** also report [Promise_budget] truncation when [max_promises]
          suppresses a nonempty certifiable-candidate set.  Off by
          default: the bounded-promise exploration is the intended
          semantics for the paper's experiments, not a truncation. *)
  fault : fault option;  (** fault-injection mode (testing only) *)
  domains : int;
      (** requested width of the domain pool for the parallel engine;
          [1] — the default unless the [PSOPT_J] environment variable
          is set — runs on the calling domain alone.  The effective
          width is [min domains (Pool.recommended ())] unless
          [oversubscribe] is set: running more domains than cores
          cannot help (the OS time-slices them over the same
          hardware) and actively hurts (every minor GC is a
          stop-the-world sync across all domains, and cross-domain
          cache publication lags by whole scheduler quanta), so a
          width the hardware cannot deliver is treated as a request
          for "as parallel as profitable".  The returned traceset and
          completeness are identical for every width
          (docs/PARALLEL.md). *)
  oversubscribe : bool;
      (** run all [domains] workers even beyond the hardware core
          count.  Off by default; the test suite switches it on so the
          multi-domain engine is genuinely exercised (stealing,
          publication, merging) even on single-core CI runners. *)
  publish_period : int;
      (** parallel engine only: how many fresh domain-local cache
          entries (cert verdicts, promise-candidate sets, memoized
          suffix sets) a worker accumulates before publishing them as
          one lock-free batch for the other domains to absorb.
          Smaller values shrink the window in which two domains
          duplicate the same certification; larger values cut
          publication traffic.  A pure performance knob — excluded
          from {!fingerprint} like [domains]. *)
  reduction : reduction;
      (** state-space reduction (off by default); {e included} in
          {!fingerprint} — [bound_promises] changes completeness and
          [por] changes the reported [Open] prefixes, so cached
          results must not cross reduction modes. *)
}

val default : t
(** [domains] defaults to [$PSOPT_J] when that environment variable
    holds a positive integer (the CI matrix runs the whole test suite
    parallel this way), [1] otherwise.  Setting [PSOPT_J] also sets
    [oversubscribe]: it is an explicit request to run the parallel
    engine, even on a runner with fewer cores than that. *)

val quick : t
(** Promise-free, shallower: for smoke tests and benches. *)

val fingerprint : t -> string
(** A hex digest of the {e semantic} fields only — the ones that can
    change a search's result rather than its speed: [max_promises],
    [promise_mode], [reservations], [cert_fuel], [cap_certification],
    [strict_promises], [fault] and the [reduction] knobs.  Excluded are [memoize],
    [cert_cache], [domains] and [oversubscribe] (pure performance switches, identical
    results by the determinism contract of docs/PARALLEL.md) and the
    four budgets [max_steps]/[deadline_ms]/[max_nodes]/[max_live_words]
    (an [Exhaustive] outcome is the same under every sufficient
    budget).  The content-addressed result store keys on this
    fingerprint and tracks budgets separately — docs/SERVICE.md. *)

val with_promises : int -> t -> t
val with_deadline_ms : int -> t -> t
val with_domains : int -> t -> t
val with_reduction : reduction -> t -> t
val pp : Format.formatter -> t -> unit
