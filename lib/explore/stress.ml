(* ------------------------------------------------------------------ *)
(* Seeded random program generation.

   Same shape as the soundness property tests: two straight-line
   threads over two non-atomic locations and one atomic flag, each
   ending in a print — every access mode and the print interleavings
   are exercised while exhaustive exploration stays tractable.  The
   program is a pure function of the seed, so any quarantined case is
   reproducible from its seed alone (and from the persisted .sexp). *)

let gen_instr rng : Lang.Ast.instr =
  let open Lang.Ast in
  let reg () = Printf.sprintf "r%d" (Random.State.int rng 4) in
  let navar () = if Random.State.bool rng then "x" else "y" in
  let value () = Random.State.int rng 4 in
  let expr () =
    match Random.State.int rng 3 with
    | 0 -> Val (value ())
    | 1 -> Reg (reg ())
    | _ -> Bin (Add, Reg (reg ()), Val (value ()))
  in
  match Random.State.int rng 14 with
  | 0 | 1 | 2 -> Load (reg (), navar (), Lang.Modes.Na)
  | 3 | 4 | 5 -> Store (navar (), expr (), Lang.Modes.WNa)
  | 6 | 7 -> Assign (reg (), expr ())
  | 8 -> Load (reg (), "f", Lang.Modes.Rlx)
  | 9 -> Load (reg (), "f", Lang.Modes.Acq)
  | 10 -> Store ("f", expr (), Lang.Modes.WRlx)
  | 11 -> Store ("f", expr (), Lang.Modes.WRel)
  | 12 ->
      Fence (if Random.State.bool rng then Lang.Modes.FAcq else Lang.Modes.FRel)
  | _ -> Skip

let gen_thread rng name =
  let open Lang.Ast in
  let n = 1 + Random.State.int rng 4 in
  let instrs = List.init n (fun _ -> gen_instr rng) @ [ Print (Reg "r0") ] in
  (name, codeheap ~entry:"L" [ ("L", block instrs Return) ])

let generate ~seed =
  let rng = Random.State.make [| 0x5752; seed |] in
  Lang.Ast.program ~atomics:[ "f" ]
    ~code:[ gen_thread rng "t1"; gen_thread rng "t2" ]
    [ "t1"; "t2" ]

(* The random config matrix: each case also draws a state-space
   reduction mode, a pure function of the seed like the program
   itself, so the explorer is continuously stressed with every
   reduction config (docs/REDUCTION.md) and a quarantined case
   replays under the exact mode that broke it. *)
let reduction_of_seed seed =
  match seed mod 5 with
  | 0 -> Config.no_reduction
  | 1 -> { Config.no_reduction with Config.por = true }
  | 2 -> { Config.no_reduction with Config.symmetry = true }
  | 3 -> Config.full_reduction
  | _ ->
      {
        Config.full_reduction with
        Config.bound_promises = Some (1 + (seed / 5 mod 2));
      }

let reduction_tag (r : Config.reduction) =
  Printf.sprintf "por=%b sym=%b bound=%s" r.Config.por r.Config.symmetry
    (match r.Config.bound_promises with
    | None -> "none"
    | Some k -> string_of_int k)

(* ------------------------------------------------------------------ *)
(* The supervised optimize-then-verify cycle. *)

type case_verdict =
  | Verified
  | Refuted of string
  | Inconclusive of string
  | Quarantined of string

type case_result = {
  id : int;
  case_seed : int;
  attempts : int;
  verdict : case_verdict;
  reduction : Config.reduction;
}

type summary = {
  cases : int;
  verified : int;
  refuted : int;
  inconclusive : int;
  quarantined : int;
  results : case_result list;
}

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let ensure_dir dir = try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let case_base ~id ~case_seed = Printf.sprintf "case-%04d-seed-%d" id case_seed

let inflight_path dir = Filename.concat dir "inflight.sexp"

let quarantine ~dir ~id ~case_seed ~reduction p reason =
  ensure_dir dir;
  let base = case_base ~id ~case_seed in
  write_file
    (Filename.concat dir (base ^ ".sexp"))
    (Lang.Sexp.program_to_string p);
  write_file
    (Filename.concat dir (base ^ ".reason"))
    (Printf.sprintf "%s\nreduction: %s\n" reason (reduction_tag reduction))

(* One case: run [check] under a per-attempt deadline, escalating the
   step and wall-clock budgets (×2 per retry) while the verdict stays
   inconclusive.  Any escaped exception other than [Budget_exhausted]
   is a bug in the library — the case is quarantined with its program
   persisted as a reproducible artifact. *)
let run_case ~config ~deadline_ms ~retries ~check p =
  let rec attempt k =
    let scale = 1 lsl k in
    let cfg =
      {
        config with
        Config.max_steps = config.Config.max_steps * scale;
        deadline_ms = Some (deadline_ms * scale);
      }
    in
    let verdict =
      match check ~config:cfg p with
      | `Verified -> Verified
      | `Refuted why -> Refuted why
      | `Inconclusive why -> Inconclusive why
      | exception Errors.Error (Errors.Budget_exhausted why) ->
          Inconclusive why
      | exception exn -> Quarantined (Errors.to_string (Errors.of_exn exn))
    in
    match verdict with
    | Inconclusive _ when k < retries -> attempt (k + 1)
    | v -> (v, k + 1)
  in
  attempt 0

let run ?(config = Config.default) ?(retries = 2)
    ?(quarantine_dir = "_stress_quarantine") ?(j = 1) ?on_quarantine ~cases
    ~seed ~deadline_ms ~check () =
  let j = max 1 (min j Pool.domain_cap) in
  (* Parallel dispatch is across whole cases; each case's own
     explorations then run single-domain so a pool of [j] workers uses
     [j] domains, not [j^2].  Per-case verdicts are a pure function of
     the seed, so the summary is identical at every [j]. *)
  let config =
    if j > 1 then { config with Config.domains = 1 } else config
  in
  let run_one id =
    let case_seed = seed + id in
    let p = generate ~seed:case_seed in
    let reduction = reduction_of_seed case_seed in
    let config = { config with Config.reduction } in
    (* Crash safety: the program under test is on disk before the
       check runs, so even a hard crash (segfault, OOM kill) leaves a
       reproducible artifact behind.  Removed again on a clean
       verdict.  Under parallel dispatch each case gets its own
       marker file (several are in flight at once). *)
    ensure_dir quarantine_dir;
    let inflight =
      if j <= 1 then inflight_path quarantine_dir
      else
        Filename.concat quarantine_dir
          (Printf.sprintf "inflight-%s.sexp" (case_base ~id ~case_seed))
    in
    write_file inflight
      (Printf.sprintf ";; %s\n;; reduction: %s\n%s"
         (case_base ~id ~case_seed)
         (reduction_tag reduction)
         (Lang.Sexp.program_to_string p));
    let verdict, attempts =
      Obs.Trace.span ~cat:"stress" "stress.case" (fun () ->
          run_case ~config ~deadline_ms ~retries ~check p)
    in
    (match verdict with
    | Quarantined reason ->
        Obs.Log.warn ~src:"stress" "case quarantined"
          ~fields:
            [
              ("case", case_base ~id ~case_seed);
              ("reason", reason);
              ("reduction", reduction_tag reduction);
              ("dir", quarantine_dir);
            ];
        quarantine ~dir:quarantine_dir ~id ~case_seed ~reduction p reason;
        Option.iter
          (fun f ->
            try
              f ~dir:quarantine_dir
                ~base:(case_base ~id ~case_seed)
                ~config p
            with _ ->
              (* artifact enrichment must never fail the run *)
              ())
          on_quarantine
    | Verified | Refuted _ | Inconclusive _ -> ());
    (try Sys.remove inflight with Sys_error _ -> ());
    { id; case_seed; attempts; verdict; reduction }
  in
  let results = Pool.map ~j run_one (List.init cases Fun.id) in
  let count f = List.length (List.filter f results) in
  {
    cases;
    verified = count (fun r -> r.verdict = Verified);
    refuted = count (fun r -> match r.verdict with Refuted _ -> true | _ -> false);
    inconclusive =
      count (fun r -> match r.verdict with Inconclusive _ -> true | _ -> false);
    quarantined =
      count (fun r -> match r.verdict with Quarantined _ -> true | _ -> false);
    results;
  }

let pp_case_verdict ppf = function
  | Verified -> Format.pp_print_string ppf "verified"
  | Refuted why -> Format.fprintf ppf "refuted: %s" why
  | Inconclusive why -> Format.fprintf ppf "inconclusive: %s" why
  | Quarantined why -> Format.fprintf ppf "QUARANTINED: %s" why

let pp_summary ppf s =
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s (attempts %d) [%s] %a@."
        (case_base ~id:r.id ~case_seed:r.case_seed)
        r.attempts (reduction_tag r.reduction) pp_case_verdict r.verdict)
    s.results;
  Format.fprintf ppf
    "total %d: verified=%d refuted=%d inconclusive=%d quarantined=%d" s.cases
    s.verified s.refuted s.inconclusive s.quarantined
