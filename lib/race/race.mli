(** Write-write race freedom (Sec. 5, Fig. 11) and read-write race
    reporting (Sec. 2.5).

    A machine state [W = (TP, t, M)] {e generates a write-write race}
    when some thread's next operation is a non-atomic write to [x]
    while the memory holds a concrete message on [x], outside the
    thread's own promise set, that the thread has not observed
    ([V.Trlx(x) < m.to]).  [ww-RF(P)] holds when no reachable machine
    state generates one.

    The subtlety of Fig. 4 is reachability: machine states are reached
    by machine steps, and a [(τ-step)] must end in a {e consistent}
    configuration — so races are checked "only when promises are
    certified".  We therefore evaluate the predicate exactly at the
    committed states enumerated by {!Explore.Enum.iter_reachable}
    (every thread is checked at every committed state; the [(sw-step)]
    rule makes each of them the current thread of a reachable state
    with the same memory).

    [ww-NPRF] is the same predicate over the non-preemptive machine
    (Lemma 5.1 asserts it equivalent to [ww-RF]; experiment E10 checks
    that on the corpus).

    Read-write races are {e not} errors — sound optimizations
    introduce them (LInv, Sec. 2.5) — but they are worth reporting;
    {!rw_races} detects them with the mirror-image predicate on
    non-atomic reads. *)

type kind = WW | RW

type race = {
  kind : kind;
  tid : int;  (** the thread about to perform the non-atomic access *)
  var : Lang.Ast.var;
  message : Ps.Message.t;  (** the unobserved concurrent write *)
}

val race_at : kind -> Ps.Machine.world -> race option
(** Evaluate the race predicate at one machine state (all threads). *)

type verdict =
  | Free
  | Racy of race
  | Inconclusive of string
      (** no race found, but the reachability walk was truncated
          (budget, deadline or injected fault) — race freedom cannot
          be claimed.  [Racy] by contrast is always trustworthy: the
          racy state was genuinely reached. *)

val ww_rf :
  ?config:Explore.Config.t -> Lang.Ast.program -> (verdict, string) result
(** [ww-RF]: write-write race freedom over the interleaving machine. *)

val ww_nprf :
  ?config:Explore.Config.t -> Lang.Ast.program -> (verdict, string) result
(** [ww-NPRF]: the non-preemptive counterpart. *)

val rw_races :
  ?config:Explore.Config.t -> Lang.Ast.program -> (race list, string) result
(** All distinct read-write race points found (by thread and
    location). *)

val is_ww_rf : ?config:Explore.Config.t -> Lang.Ast.program -> bool

type report = {
  ww : (verdict, string) result;
  ww_np : (verdict, string) result;
  rw : (race list, string) result;
}
(** The three scans bundled: interleaving ww, non-preemptive ww, rw. *)

val check_all : ?config:Explore.Config.t -> Lang.Ast.program -> report
(** Run all three scans — [ww_rf], [ww_nprf], [rw_races] — as
    independent pool tasks when [config.domains > 1] (the walks
    themselves are single-domain; this parallelizes across scans). *)

val pp_race : Format.formatter -> race -> unit
val pp_verdict : Format.formatter -> verdict -> unit
