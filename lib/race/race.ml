type kind = WW | RW

type race = {
  kind : kind;
  tid : int;
  var : Lang.Ast.var;
  message : Ps.Message.t;
}

let pp_kind ppf = function
  | WW -> Format.pp_print_string ppf "write-write"
  | RW -> Format.pp_print_string ppf "read-write"

let pp_race ppf r =
  Format.fprintf ppf "%a race: thread %d about to access %s, unobserved %a"
    pp_kind r.kind r.tid r.var Ps.Message.pp r.message

(* The next non-atomic access of a thread, if any, filtered by the
   race kind we are looking for. *)
let next_na_access kind (ts : Ps.Thread.ts) =
  match Ps.Local.nxt ts.Ps.Thread.local with
  | Ps.Local.NInstr (Lang.Ast.Store (x, _, Lang.Modes.WNa)) when kind = WW ->
      Some x
  | Ps.Local.NInstr (Lang.Ast.Load (_, x, Lang.Modes.Na)) when kind = RW ->
      Some x
  | _ -> None

let race_at kind (w : Ps.Machine.world) =
  Ps.Machine.TidMap.fold
    (fun tid ts acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          match next_na_access kind ts with
          | None -> None
          | Some x ->
              (* Fig. 11 uses the relaxed view: unobserved means
                 [V.Trlx(x) < m.to]. *)
              let seen =
                Ps.View.TimeMap.get x ts.Ps.Thread.view.Ps.View.rlx
              in
              let own m =
                List.exists (Ps.Message.equal m) ts.Ps.Thread.prm
              in
              let racy =
                List.find_opt
                  (fun m ->
                    Ps.Message.is_concrete m
                    && Rat.gt (Ps.Message.to_ m) seen
                    && not (own m))
                  (Ps.Memory.per_loc x w.Ps.Machine.mem)
              in
              Option.map (fun m -> { kind; tid; var = x; message = m }) racy))
    w.Ps.Machine.tp None

type verdict = Free | Racy of race | Inconclusive of string

exception Found of race

let scan kind disc ?config p =
  match
    Explore.Enum.iter_reachable ?config disc p ~f:(fun ~committed w ->
        if committed then
          match race_at kind w with
          | Some r -> raise (Found r)
          | None -> ())
  with
  | Ok stats -> (
      (* A race found anywhere is a race at a genuinely reachable
         state, so [Racy] needs no completeness caveat — but claiming
         freedom over a truncated walk would be unsound. *)
      match Explore.Stats.truncation_reasons stats with
      | [] -> Ok Free
      | reasons ->
          Ok
            (Inconclusive
               (Format.asprintf
                  "no race found, but the reachability walk was truncated \
                   (%a)"
                  Explore.Errors.pp_reasons reasons)))
  | Error e -> Error e
  | exception Found r -> Ok (Racy r)

let ww_rf ?config p = scan WW Explore.Enum.Interleaving ?config p
let ww_nprf ?config p = scan WW Explore.Enum.Non_preemptive ?config p

let rw_races ?config p =
  let acc = ref [] in
  match
    Explore.Enum.iter_reachable ?config Explore.Enum.Interleaving p
      ~f:(fun ~committed w ->
        if committed then
          match race_at RW w with
          | Some r
            when not
                   (List.exists
                      (fun r' -> r'.tid = r.tid && String.equal r'.var r.var)
                      !acc) ->
              acc := r :: !acc
          | _ -> ())
  with
  | Ok _ -> Ok (List.rev !acc)
  | Error e -> Error e

let is_ww_rf ?config p =
  match ww_rf ?config p with Ok Free -> true | _ -> false

type report = {
  ww : (verdict, string) result;
  ww_np : (verdict, string) result;
  rw : (race list, string) result;
}

(* The three scans are independent reachability walks; the walks
   themselves stream states and stay single-domain, so with a domain
   budget > 1 the parallelism is one pool task per scan. *)
let check_all ?(config = Explore.Config.default) p =
  let j = min config.Explore.Config.domains 3 in
  let run = function
    | `Ww -> `Ww (ww_rf ~config p)
    | `Np -> `Np (ww_nprf ~config p)
    | `Rw -> `Rw (rw_races ~config p)
  in
  match Explore.Pool.map ~j run [ `Ww; `Np; `Rw ] with
  | [ `Ww ww; `Np ww_np; `Rw rw ] -> { ww; ww_np; rw }
  | _ -> assert false

let pp_verdict ppf = function
  | Free -> Format.pp_print_string ppf "write-write race free"
  | Racy r -> pp_race ppf r
  | Inconclusive why -> Format.fprintf ppf "inconclusive: %s" why
