(* The benchmark and experiment harness.

   Two phases:

   1. Reproduction rows: every experiment of DESIGN.md's index
      (E1–E17, mapping to the paper's figures and named examples)
      re-runs its checker and prints the claim and verdict — the
      qualitative "tables and figures" of this paper (a verification
      paper: its evaluation artifacts are example programs,
      counterexamples and theorems, not performance numbers).

   2. Bechamel timings: one Test.make per experiment measuring the
      underlying computation, plus the DESIGN.md ablations (capped vs
      uncapped certification, memoized vs plain exploration, promise
      candidate modes, interleaving vs non-preemptive state spaces)
      and optimizer-throughput rows on synthesized CFGs. *)

open Bechamel
open Toolkit

let lit n = (Litmus.find n).Litmus.prog

(* ------------------------------------------------------------------ *)
(* CLI: [-j N] sets the domain pool width the reproduction rows run
   under (default: $PSOPT_J, else 1 — rows must verdict identically at
   every width); [--json FILE] dumps the machine-readable summary;
   [--check] keeps only the deterministic pass/fail phases. *)

let bench_j = ref Explore.Config.default.Explore.Config.domains
let json_file : string option ref = ref None
let check_only = ref false

let parse_argv () =
  let argv = Sys.argv in
  let i = ref 1 in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--check" -> check_only := true
    | ("-j" | "--jobs") when !i + 1 < Array.length argv ->
        incr i;
        bench_j := max 1 (int_of_string argv.(!i))
    | "--json" when !i + 1 < Array.length argv ->
        incr i;
        json_file := Some argv.(!i)
    | a ->
        Printf.eprintf
          "bench: unknown argument %s (expected --check, -j N, --json FILE)\n"
          a;
        exit 2);
    incr i
  done

(* [Config.default] is evaluated at module init, so an explicit [-j]
   cannot go through $PSOPT_J: every helper threads this config. *)
let bench_config () =
  { Explore.Config.default with Explore.Config.domains = !bench_j }

(* Node-count comparisons must run single-domain: splitting the
   frontier re-expands subtrees shared across tasks, so parallel
   [nodes] counters over-approximate the sequential state count. *)
let seq_config () =
  { Explore.Config.default with Explore.Config.domains = 1 }

(* ------------------------------------------------------------------ *)
(* Phase 1: reproduction rows *)

let passed = ref 0
let failed = ref 0

(* Collected for [--json]. *)
let json_rows : (string * string * bool) list ref = ref []

(* workload, t1, t2, t4, deterministic, gate floor applied to this
   row, whether the row cleared it *)
let json_scaling :
    (string * float * float * float * bool * float * bool) list ref =
  ref []

let row id claim ok =
  incr (if ok then passed else failed);
  json_rows := (id, claim, ok) :: !json_rows;
  Format.printf "%-4s %-62s %s@." id claim (if ok then "ok" else "FAIL")

let sorted l = List.sort compare l

let outcomes ?config prog =
  let config = match config with Some c -> c | None -> bench_config () in
  let o = Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving prog in
  Explore.Traceset.done_outs o.Explore.Enum.traces
  |> List.map sorted |> List.sort_uniq compare

let observable prog out = List.mem (sorted out) (outcomes prog)

let refines t s =
  Explore.Refine.refines ~config:(bench_config ()) ~target:t ~source:s ()

let violates t s =
  match
    (Explore.Refine.check ~config:(bench_config ()) ~target:t ~source:s ())
      .Explore.Refine.verdict
  with
  | Explore.Refine.Violates _ -> true
  | _ -> false

let ww_free p =
  match Race.ww_rf ~config:(bench_config ()) p with
  | Ok Race.Free -> true
  | _ -> false

let sim_holds inv t s =
  List.for_all
    (fun (_, v) -> v = Sim.Simcheck.Holds)
    (Sim.Simcheck.check_program ~inv ~target:t ~source:s ())

let sim_fails_on f inv t s =
  List.exists
    (fun (g, v) ->
      g = f && match v with Sim.Simcheck.Fails _ -> true | _ -> false)
    (Sim.Simcheck.check_program ~inv ~target:t ~source:s ())

let nodes disc prog =
  let o = Explore.Enum.behaviors_exn ~config:(seq_config ()) disc prog in
  Atomic.get o.Explore.Enum.stats.Explore.Stats.nodes

let reproduce () =
  Format.printf "== experiment reproduction (DESIGN.md index) ==@.";
  row "E1" "SB: r1=r2=0 observable under relaxed accesses (Sec. 2.1)"
    (observable (lit "sb") [ 0; 0 ]);
  row "E2" "LB: r1=r2=1 observable via a certified promise (Sec. 2.1)"
    (observable (lit "lb") [ 1; 1 ]);
  row "E2b" "LB: r1=r2=1 NOT observable when promising is disabled"
    (not
       (List.mem [ 1; 1 ]
          (outcomes ~config:Explore.Config.quick (lit "lb"))));
  row "E3" "LB-dep: out-of-thin-air 1/1 forbidden by certification"
    (not (observable (lit "lb_oota") [ 1; 1 ]));
  row "E4" "CAS exclusivity: two CAS from one write cannot both succeed"
    (not (observable (lit "cas_exclusive") [ 1; 1 ]));
  row "E5" "Fig. 1: hoisting across an acquire read violates refinement"
    (violates (lit "fig1_foo_opt") (lit "fig1_foo"));
  row "E5b" "Fig. 1: with a relaxed flag the hoisting refines"
    (refines (lit "fig1_foo_opt_rlx") (lit "fig1_foo_rlx"));
  row "E5c" "Fig. 1: LICM itself refuses the acquire loop, hoists the relaxed"
    (Lang.Ast.equal_program
       (Opt.Pass.apply Opt.Licm.pass (lit "fig1_foo"))
       (lit "fig1_foo")
    && not
         (Lang.Ast.equal_program
            (Opt.Pass.apply Opt.Licm.pass (lit "fig1_foo_rlx"))
            (lit "fig1_foo_rlx")));
  row "E6" "(Reorder): target and source equivalent, racy context included"
    (refines (lit "reorder_tgt") (lit "reorder_src")
    && refines (lit "reorder_src") (lit "reorder_tgt"));
  row "E7" "Fig. 4: no ww-race (races checked only when promises certify)"
    (ww_free (lit "fig4"));
  row "E7b" "plain ww-race is detected (ww_racy)" (not (ww_free (lit "ww_racy")));
  row "E8" "Fig. 5: LInv introduces an rw race yet refines"
    (refines (lit "fig5_tgt") (lit "fig5_src")
    &&
    match Race.rw_races (lit "fig5_tgt") with
    | Ok (_ :: _) -> ( match Race.rw_races (lit "fig5_src") with Ok [] -> true | _ -> false)
    | _ -> false);
  row "E9" "Thm 4.1: interleaving = non-preemptive behaviours (whole corpus)"
    (List.for_all
       (fun (t : Litmus.t) ->
         Explore.Refine.equivalent_disciplines ~config:(bench_config ())
           t.Litmus.prog)
       Litmus.all);
  row "E10" "Lm 5.1: ww-RF = ww-NPRF (whole corpus)"
    (List.for_all
       (fun (t : Litmus.t) ->
         let a = ww_free t.Litmus.prog in
         let b =
           match Race.ww_nprf ~config:(bench_config ()) t.Litmus.prog with
           | Ok Race.Free -> true
           | _ -> false
         in
         a = b)
       Litmus.all);
  row "E11" "Fig. 14(d): reorder simulated with Iid + delayed write set"
    (sim_holds Sim.Invariant.iid (lit "reorder_tgt") (lit "reorder_src"));
  row "E12" "Fig. 15: DCE across a release write violates refinement"
    (violates (lit "fig15_bad_tgt") (lit "fig15_src"));
  row "E12b" "Fig. 15: the DCE implementation keeps the write (release kill)"
    (Lang.Ast.equal_program
       (Opt.Pass.apply Opt.Dce.pass (lit "fig15_src"))
       (lit "fig15_src"));
  row "E13" "Fig. 16: DCE simulated with Idce (unused-interval invariant)"
    (sim_holds Sim.Invariant.idce
       (Opt.Pass.apply Opt.Dce.pass (lit "fig16_src"))
       (lit "fig16_src"));
  row "E13b" "Fig. 16: Iid is too strong for DCE (lockstep needs Idce)"
    (sim_fails_on "t1" Sim.Invariant.iid
       (Opt.Pass.apply Opt.Dce.pass (lit "fig16_src"))
       (lit "fig16_src"));
  row "E13c" "Fig. 15: bad DCE rejected by the simulation (AT diagram)"
    (sim_fails_on "t1" Sim.Invariant.idce (lit "fig15_bad_tgt")
       (lit "fig15_src"));
  row "E14" "ConstProp refines and is simulated with Iid (corpus programs)"
    (let p = lit "sb" in
     let t = Opt.Pass.apply Opt.Constprop.pass p in
     refines t p && sim_holds Sim.Invariant.iid t p);
  row "E15" "CSE refines and is simulated with Iid (fig5 pipeline)"
    (let p = lit "fig5_tgt" in
     let t = Opt.Pass.apply Opt.Cse.pass p in
     refines t p && sim_holds Sim.Invariant.iid t p);
  row "E16" "non-preemptive machine explores no more states (corpus)"
    (List.for_all
       (fun (t : Litmus.t) ->
         nodes Explore.Enum.Non_preemptive t.Litmus.prog
         <= nodes Explore.Enum.Interleaving t.Litmus.prog)
       Litmus.all);
  row "E17" "np semantics keeps promise-visible writes (lb still 1/1)"
    (let cfg = bench_config () in
     let o = Explore.Enum.behaviors_exn ~config:cfg Explore.Enum.Non_preemptive (lit "lb") in
     List.mem [ 1; 1 ]
       (Explore.Traceset.done_outs o.Explore.Enum.traces |> List.map sorted));
  (* Extras beyond the paper's figures: classic shapes + the witness
     reconstruction of Sec. 2.1's annotated executions. *)
  row "X1" "spinlock: mutual exclusion (reads 0 then 1; 0/0 forbidden)"
    (observable (lit "spinlock") [ 0; 1 ]
    && not (observable (lit "spinlock") [ 0; 0 ]));
  row "X2" "spinlock counter is ww-race-free under lock synchronization"
    (ww_free (lit "spinlock"));
  row "X3" "IRIW rel/acq: the split outcome 10/10 is observable in PS"
    (observable (lit "iriw") [ 10; 10 ]);
  row "X4" "WRC: release/acquire chains are cumulative (0 forbidden)"
    (not (observable (lit "wrc") [ 0 ]));
  row "X5" "fence MP: rel fence + rlx write synchronizes (0 forbidden)"
    (not (observable (lit "mp_fences") [ 0 ]));
  row "X6" "witness: LB's annotated execution contains a promise step"
    (match
       Explore.Witness.find ~config:(bench_config ()) ~outs:[ 1; 1 ] (lit "lb")
     with
    | Some w ->
        List.exists
          (fun (s : Explore.Witness.step) ->
            s.Explore.Witness.event = Ps.Event.Prm)
          w
    | None -> false);
  row "X7" "witness: oota outcome refuted bounded-exhaustively"
    (Explore.Witness.forbidden ~config:(bench_config ()) ~outs:[ 1; 1 ]
       (lit "lb_oota"));
  row "X11" "read-own-write coherence: the writer cannot read back 0"
    (not (observable (lit "corw") [ 0 ]));
  row "X12" "control-dependent LB: guarded write cannot be promised (oota)"
    (not (observable (lit "lb_ctrl_dep") [ 1; 1 ]));
  row "X13" "inverted guard: the promise certifies, 0/1 observable, 1/1 not"
    (observable (lit "lb_ctrl_indep") [ 0; 1 ]
    && not (observable (lit "lb_ctrl_indep") [ 1; 1 ]));
  row "X9" "release sequence: rlx write after rel write synchronizes"
    (not (observable (lit "release_seq") [ 0 ]));
  row "X10" "release sequence extends through a relaxed RMW"
    (not (observable (lit "release_seq_rmw") [ 0 ]));
  row "X8" "Verif pipeline (Fig. 6) verifies dce/cse/licm on their examples"
    (List.for_all
       (fun (pass, prog) ->
         Sim.Verif.check
           ~explore_config:(bench_config ())
           (Option.get (Sim.Verif.find pass))
           (lit prog)
         = Sim.Verif.Verified)
       [ ("dce", "fig16_src"); ("cse", "fig5_tgt"); ("licm", "fig1_foo_rlx") ]);
  Format.printf "@."

let state_space_table () =
  Format.printf "== E16 series: states explored, interleaving vs non-preemptive ==@.";
  Format.printf "%-18s %12s %12s %9s@." "litmus" "interleaving"
    "non-preempt" "ratio";
  List.iter
    (fun (t : Litmus.t) ->
      let il = nodes Explore.Enum.Interleaving t.Litmus.prog in
      let np = nodes Explore.Enum.Non_preemptive t.Litmus.prog in
      Format.printf "%-18s %12d %12d %8.2fx@." t.Litmus.name il np
        (float_of_int il /. float_of_int (max 1 np)))
    Litmus.all;
  Format.printf "@."

(* Fig. 1 loop-bound sweep: the claim is bound-independent; the series
   shows the violation persists as the loop grows. *)
let fig1_sweep () =
  Format.printf "== E5 series: Fig. 1 violation across loop bounds ==@.";
  Format.printf "%-6s %-10s %-10s@." "bound" "acq" "rlx";
  let make ~bound ~flag_mode ~hoisted =
    let open Lang.Build in
    let prelude =
      [ assign "r1" (i 0); assign "r2" (i 0) ]
      @ if hoisted then [ load "r2" "y" ~mode:Lang.Modes.Na ] else []
    in
    let body =
      if hoisted then [ assign "r1" (r "r1" + i 1) ]
      else [ load "r2" "y" ~mode:Lang.Modes.Na; assign "r1" (r "r1" + i 1) ]
    in
    program ~atomics:[ "x" ]
      [
        proc "foo"
          [
            blk "L0" prelude (jmp "L1");
            blk "L1" [] (be (r "r1" < i bound) "L2" "L4");
            blk "L2"
              [ load "r3" "x" ~mode:flag_mode ]
              (be (r "r3" == i 0) "L2" "L3");
            blk "L3" body (jmp "L1");
            blk "L4" [ print (r "r2") ] ret;
          ];
        proc "g"
          [
            blk "G0"
              [ store "y" ~mode:Lang.Modes.WNa (i 1);
                store "x" ~mode:Lang.Modes.WRel (i 1) ]
              ret;
          ];
      ]
      ~threads:[ "foo"; "g" ]
  in
  List.iter
    (fun bound ->
      let verdict flag =
        if
          violates
            (make ~bound ~flag_mode:flag ~hoisted:true)
            (make ~bound ~flag_mode:flag ~hoisted:false)
        then "violates"
        else "refines"
      in
      Format.printf "%-6d %-10s %-10s@." bound
        (verdict Lang.Modes.Acq) (verdict Lang.Modes.Rlx))
    [ 1; 2; 3 ];
  Format.printf "(expected: acq violates at every bound, rlx always refines)@.@."

(* Cert-cache ablation: node throughput of the full exploration with
   the certification cache on (default) vs off.

   Certification — a bounded exploration of the promising thread's
   future per check — is the one per-node cost that is not O(step), so
   the workload family here is built to be certification-bound: a
   promiser whose fulfillment sits [pad] register steps after the
   promise (each consistency check walks that suffix, so uncached
   certification work grows quadratically with [pad] while the state
   space grows linearly), interleaved with a reader thread whose
   [noise] loads of an unwritten location revisit the promiser's exact
   (thread-state, memory) configuration over and over.  On litmus-size
   programs certification is a few percent of runtime and the cache is
   neutral; these rows show the regime it exists for.

   The behaviour sets must be identical with the cache on and off —
   the cache only skips re-deriving results that are pure functions of
   the (thread-state, memory) configuration; CI runs this equivalence
   check via [--check]. *)
let cert_heavy ~pad ~noise =
  let h1 = pad / 2 in
  let h2 = pad - h1 in
  let open Lang.Build in
  let padding n = List.init n (fun _ -> assign "a" (r "a" + i 1)) in
  let noise_instrs =
    List.init noise (fun _ -> load "s" "z" ~mode:Lang.Modes.Rlx)
  in
  program ~atomics:[ "x"; "y"; "z" ]
    [
      proc "t1"
        [
          blk "L0"
            ([ assign "a" (i 0) ]
            @ padding h1
            @ [ load "r1" "y" ~mode:Lang.Modes.Rlx ]
            @ padding h2
            @ [ store "x" ~mode:Lang.Modes.WRlx (i 1); print (r "r1") ])
            ret;
        ];
      proc "t2"
        [
          blk "L0"
            (noise_instrs
            @ [ load "r2" "x" ~mode:Lang.Modes.Rlx;
                store "y" ~mode:Lang.Modes.WRlx (i 1); print (r "r2") ])
            ret;
        ];
    ]
    ~threads:[ "t1"; "t2" ]

let cert_cache_table ~timings =
  Format.printf
    "== ablation: certification cache on certification-bound workloads ==@.";
  if timings then
    Format.printf "%-22s %9s %12s %12s %9s@." "workload" "nodes"
      "cached n/s" "uncached n/s" "speedup";
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let geo = ref 1.0 and count = ref 0 in
  List.iter
    (fun (pad, noise) ->
      let name = Printf.sprintf "cert_heavy %d/%d" pad noise in
      let prog = cert_heavy ~pad ~noise in
      let run cache =
        let config = { (bench_config ()) with Explore.Config.cert_cache = cache } in
        time (fun () ->
            Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving prog)
      in
      let cached, t_on = run true in
      let uncached, t_off = run false in
      if
        not
          (Explore.Traceset.equal cached.Explore.Enum.traces
             uncached.Explore.Enum.traces)
      then (
        Format.printf "%-22s traceset MISMATCH between ablations@." name;
        incr failed)
      else begin
        incr passed;
        if timings then begin
          let n =
            float_of_int
              (Atomic.get cached.Explore.Enum.stats.Explore.Stats.nodes)
          in
          let speedup = t_off /. t_on in
          geo := !geo *. speedup;
          incr count;
          Format.printf "%-22s %9.0f %12.0f %12.0f %8.2fx@." name n
            (n /. t_on) (n /. t_off) speedup
        end
        else
          Format.printf "%-22s tracesets identical across ablation  ok@." name
      end)
    [ (60, 16); (80, 20); (100, 24) ];
  if timings then begin
    let g = !geo ** (1.0 /. float_of_int (max 1 !count)) in
    Format.printf "geometric-mean speedup: %.2fx@." g
  end;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* State-space reduction ablation (docs/REDUCTION.md): node counts of
   the same single-domain exploration with [Config.full_reduction] on
   vs off.  The row family covers the regimes each technique exists
   for: the cert_heavy rows are certification-bound with a
   thread-private noise location (the ample rule collapses the local
   chains), iriw_sym is an IRIW-shaped workload with two identical
   readers (symmetry folds the reader orbit, the ample rule eats the
   padding), and sym_writers is a pure orbit workload (N identical
   writers, promise-free so the baseline stays tractable).

   Three invariants count toward [--check]:
   - behaviour equality: reduced and unreduced explorations must agree
     on [Traceset.equal_behaviour] and completeness, over these rows
     AND the whole litmus corpus;
   - the reduction gate: the headline rows (cert_heavy 100/24,
     iriw_sym) must shrink the node count by >= 10x, the supporting
     rows by their listed floors — this is the PR-facing perf claim;
   - counter consistency: nodes saved >= sleep_prunes +
     symmetry_folds (each symmetric-sibling prune and each orbit fold
     must account for at least one avoided node; the ample rule's
     [persistent_prunes] counts pruned switch *edges*, which is why it
     is not part of the inequality). *)

let iriw_sym =
  let open Lang.Build in
  let pad k tag =
    List.init k (fun j -> assign (Printf.sprintf "%s%d" tag j) (i j))
  in
  program ~atomics:[ "x"; "y" ]
    [
      proc "wx"
        [ blk "L0" (pad 4 "pw" @ [ store "x" ~mode:Lang.Modes.WRlx (i 1) ]) ret ];
      proc "wy"
        [ blk "L0" (pad 4 "pw" @ [ store "y" ~mode:Lang.Modes.WRlx (i 1) ]) ret ];
      proc "rd"
        [
          blk "L0"
            (pad 6 "pr"
            @ [
                load "r1" "x" ~mode:Lang.Modes.Rlx;
                load "r2" "y" ~mode:Lang.Modes.Rlx;
                print ((r "r1" * i 10) + r "r2");
              ])
            ret;
        ];
    ]
    ~threads:[ "wx"; "wy"; "rd"; "rd" ]

let sym_writers n =
  let open Lang.Build in
  program ~atomics:[ "x" ]
    [
      proc "reader"
        [
          blk "L0"
            [
              load "r1" "x" ~mode:Lang.Modes.Rlx;
              load "r2" "x" ~mode:Lang.Modes.Rlx;
              print (r "r1");
              print (r "r2");
            ]
            ret;
        ];
      proc "w" [ blk "L0" [ store "x" ~mode:Lang.Modes.WRlx (i 1) ] ret ];
    ]
    ~threads:("reader" :: List.init n (fun _ -> "w"))

let json_reduction :
    (string * int * int * float * int * int * int * bool * bool * float * bool)
    list
    ref =
  ref []

let json_reduction_gate : (bool * bool) option ref = ref None

let reduction_table ~timings () =
  Format.printf
    "== ablation: state-space reduction (por + symmetry) on vs off ==@.";
  if timings then
    Format.printf "%-22s %10s %10s %8s %7s %7s %7s@." "workload" "unreduced"
      "reduced" "factor" "sleep" "pers" "symfold";
  let rows =
    [
      ("cert_heavy 60/16", cert_heavy ~pad:60 ~noise:16, seq_config (), 5.0);
      ("cert_heavy 100/24", cert_heavy ~pad:100 ~noise:24, seq_config (), 10.0);
      ("iriw_sym 2r", iriw_sym, seq_config (), 10.0);
      ( "sym_writers 3",
        sym_writers 3,
        { (seq_config ()) with Explore.Config.max_promises = 0 },
        3.0 );
    ]
  in
  let gate_ok = ref true in
  List.iter
    (fun (name, prog, config, floor) ->
      let base =
        Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving prog
      in
      let red =
        Explore.Enum.behaviors_exn
          ~config:
            { config with Explore.Config.reduction = Explore.Config.full_reduction }
          Explore.Enum.Interleaving prog
      in
      let g f = Atomic.get (f red.Explore.Enum.stats) in
      let nb = Atomic.get base.Explore.Enum.stats.Explore.Stats.nodes in
      let nr = g (fun (s : Explore.Stats.t) -> s.Explore.Stats.nodes) in
      let sleep = g (fun s -> s.Explore.Stats.sleep_prunes) in
      let pers = g (fun s -> s.Explore.Stats.persistent_prunes) in
      let folds = g (fun s -> s.Explore.Stats.symmetry_folds) in
      let equal =
        Explore.Traceset.equal_behaviour base.Explore.Enum.traces
          red.Explore.Enum.traces
        && base.Explore.Enum.completeness = red.Explore.Enum.completeness
      in
      let counters_ok = nb - nr >= sleep + folds in
      let factor = float_of_int nb /. float_of_int (max 1 nr) in
      let row_ok = factor >= floor in
      if equal && counters_ok then incr passed
      else begin
        incr failed;
        Format.printf "%-22s reduction MISMATCH (equal %b, counters %b)@."
          name equal counters_ok
      end;
      if not row_ok then begin
        gate_ok := false;
        Format.printf "%-22s reduction gate FAIL: %.2fx < %.2fx@." name factor
          floor
      end;
      json_reduction :=
        (name, nb, nr, factor, sleep, pers, folds, equal, counters_ok, floor,
         row_ok)
        :: !json_reduction;
      if timings then
        Format.printf "%-22s %10d %10d %7.2fx %7d %7d %7d (floor %.1f %s)@."
          name nb nr factor sleep pers folds floor
          (if row_ok then "ok" else "FAIL")
      else
        Format.printf
          "%-22s %.2fx fewer nodes, behaviours identical  %s@." name factor
          (if equal && counters_ok && row_ok then "ok" else "FAIL"))
    rows;
  (* the whole litmus corpus must be behaviour-invariant under full
     reduction (completeness included) *)
  let corpus_ok =
    List.for_all
      (fun (t : Litmus.t) ->
        let config = bench_config () in
        let base =
          Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving
            t.Litmus.prog
        in
        let red =
          Explore.Enum.behaviors_exn
            ~config:
              {
                config with
                Explore.Config.reduction = Explore.Config.full_reduction;
              }
            Explore.Enum.Interleaving t.Litmus.prog
        in
        Explore.Traceset.equal_behaviour base.Explore.Enum.traces
          red.Explore.Enum.traces
        && base.Explore.Enum.completeness = red.Explore.Enum.completeness)
      Litmus.all
  in
  if corpus_ok then begin
    incr passed;
    Format.printf "litmus corpus: reduced ≡ unreduced behaviours  ok@."
  end
  else begin
    incr failed;
    Format.printf "litmus corpus: reduced behaviours MISMATCH@."
  end;
  if !gate_ok then begin
    incr passed;
    Format.printf "reduction gate: node-count floors met on every row  ok@."
  end
  else begin
    incr failed;
    Format.printf "reduction gate: FAIL@."
  end;
  json_reduction_gate := Some (!gate_ok, corpus_ok);
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Trace ablation: node throughput of the same certification-bound
   exploration with span tracing off (the default) vs on.  The checked
   invariant is twofold: tracesets must be identical (tracing is pure
   observation), and the traced run must actually record spans.  The
   throughput ratio is the headline number for docs/OBSERVABILITY.md's
   "~zero cost disabled" claim — [--check] verifies only the
   equivalences, CI being too noisy for a timing assert. *)

let json_trace_ablation :
    (string * float * float * float * int * bool) option ref =
  ref None

let trace_ablation_table ~timings () =
  Format.printf "== ablation: span tracing off vs on ==@.";
  let name = "cert_heavy 60/16" in
  let prog = cert_heavy ~pad:60 ~noise:16 in
  let config = bench_config () in
  let run () =
    let t0 = Unix.gettimeofday () in
    let o = Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving prog in
    (o, Unix.gettimeofday () -. t0)
  in
  (* warm-up: fault the code paths and the cert cache's allocator out
     of the measurement (both runs below start from the same state —
     the per-run caches live inside [behaviors_exn]). *)
  ignore (run ());
  let untraced, t_off = run () in
  Obs.Trace.start ();
  let traced, t_on = run () in
  Obs.Trace.stop ();
  let n_spans = List.length (Obs.Trace.events ()) in
  let equal =
    Explore.Traceset.equal untraced.Explore.Enum.traces
      traced.Explore.Enum.traces
  in
  if equal && n_spans > 0 then begin
    incr passed;
    if not timings then
      Format.printf
        "%-22s tracesets identical, %d spans recorded  ok@." name n_spans
  end
  else begin
    incr failed;
    Format.printf "%-22s trace ablation MISMATCH (equal %b, spans %d)@." name
      equal n_spans
  end;
  let nodes =
    float_of_int (Atomic.get untraced.Explore.Enum.stats.Explore.Stats.nodes)
  in
  let off_rate = nodes /. Float.max 1e-9 t_off in
  let on_rate = nodes /. Float.max 1e-9 t_on in
  let overhead = (t_on -. t_off) /. Float.max 1e-9 t_off *. 100. in
  json_trace_ablation :=
    Some (name, off_rate, on_rate, overhead, n_spans, equal);
  if timings then begin
    Format.printf "%-22s %9s %14s %14s %9s %7s@." "workload" "nodes"
      "untraced n/s" "traced n/s" "overhead" "spans";
    Format.printf "%-22s %9.0f %14.0f %14.0f %8.1f%% %7d@." name nodes
      off_rate on_rate overhead n_spans
  end;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Truncation pressure: the resource-budget counters under tight
   budgets, so perf PRs can see at a glance how much of a search each
   budget is eating.  The completeness column is also a checked
   invariant (pass/fail): a tight budget must report Truncated and the
   default config must stay Exhaustive. *)

let truncation_pressure_table () =
  Format.printf "== truncation pressure under tight budgets ==@.";
  Format.printf "%-24s %8s %6s %9s %9s %7s %7s  %s@." "config" "nodes" "cuts"
    "deadline" "node_bgt" "oom" "faults" "completeness";
  let prog = lit "spinlock" in
  let row name config ~expect_truncated =
    let o = Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving prog in
    let st = o.Explore.Enum.stats in
    let ( ! ) = Atomic.get in
    Format.printf "%-24s %8d %6d %9d %9d %7d %7d  %a@." name
      !(st.Explore.Stats.nodes) !(st.Explore.Stats.cuts)
      !(st.Explore.Stats.deadline_hits) !(st.Explore.Stats.node_budget_hits)
      !(st.Explore.Stats.oom_hits) !(st.Explore.Stats.faults_injected)
      Explore.Enum.pp_completeness o.Explore.Enum.completeness;
    let truncated = o.Explore.Enum.completeness <> Explore.Enum.Exhaustive in
    if truncated = expect_truncated then incr passed
    else begin
      Format.printf "%-24s completeness MISMATCH@." name;
      incr failed
    end
  in
  let dflt = bench_config () in
  row "default" dflt ~expect_truncated:false;
  row "max_steps=12"
    { dflt with Explore.Config.max_steps = 12 }
    ~expect_truncated:true;
  row "max_nodes=50"
    { dflt with Explore.Config.max_nodes = Some 50 }
    ~expect_truncated:true;
  row "deadline_ms=0"
    { dflt with Explore.Config.deadline_ms = Some 0; max_steps = 100_000 }
    ~expect_truncated:true;
  row "fault seed=42 rate=5%"
    {
      dflt with
      Explore.Config.fault =
        Some { Explore.Config.fault_seed = 42; fault_rate = 0.05 };
    }
    ~expect_truncated:true;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Domain-parallel scaling: the certification-bound workloads (where
   the shared cert cache lets extra domains pay off) plus two wide
   litmus shapes, explored at j=1/2/4 under the shipped scheduling
   policy (requested width clamped to the cores — oversubscription off
   regardless of $PSOPT_J, because this table measures what a user
   gets).  Each timing is the min of two reps to shave scheduler
   noise.

   Two invariants are checked (they count toward [--check]):

   - determinism: identical tracesets and completeness at every width;
   - the scaling gate, hardware-aware because a 4-wide speedup is
     physically unattainable on fewer than 4 cores:
       * "full" mode (>= 4 cores): speedup_j4 >= 2.0 on the
         cert-heavy workloads and >= 1.0 on every workload — parallel
         exploration must pay, never cost;
       * "clamped" mode (< 4 cores): speedup_j4 >= 0.9 on every
         workload — the width request is clamped to the hardware, so
         asking for more domains than cores must be a no-op, not the
         2–10x slowdown this gate was added to catch. *)

type gate_mode = Full | Clamped

let gate_mode () =
  if Explore.Pool.recommended () >= 4 then Full else Clamped

let gate_thresholds = function
  | Full -> (2.0, 1.0)  (* cert-heavy floor, all-workloads floor *)
  | Clamped -> (0.9, 0.9)

let json_gate : (string * int * float * float * bool) option ref = ref None

let scaling_table ~timings () =
  Format.printf "== scaling: domain-parallel exploration at j=1/2/4 ==@.";
  if timings then
    Format.printf "%-22s %10s %10s %10s %8s@." "workload" "t(j=1)" "t(j=2)"
      "t(j=4)" "x(j=4)";
  let workloads =
    [
      ("cert_heavy 80/20", cert_heavy ~pad:80 ~noise:20);
      ("cert_heavy 100/24", cert_heavy ~pad:100 ~noise:24);
      ("iriw", lit "iriw");
      ("spinlock", lit "spinlock");
    ]
  in
  let mode = gate_mode () in
  let cert_floor, all_floor = gate_thresholds mode in
  let gate_ok = ref true in
  List.iter
    (fun (name, prog) ->
      let run_once j =
        let config =
          {
            Explore.Config.default with
            Explore.Config.domains = j;
            oversubscribe = false;
          }
        in
        (* the ablation tables before this one leave a large, fragmented
           major heap behind (million-node memo tables); without a
           compaction the later reps of a row pay unrelated GC debt and
           the clamped-mode floor flakes on identical work *)
        Gc.compact ();
        let t0 = Unix.gettimeofday () in
        let o =
          Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving prog
        in
        (o, Unix.gettimeofday () -. t0)
      in
      (* min of two reps; the determinism check covers every rep *)
      let run j =
        let oa, ta = run_once j in
        let ob, tb = run_once j in
        (oa, ob, Float.min ta tb)
      in
      let o1, o1b, t1 = run 1 in
      let o2, o2b, t2 = run 2 in
      let o4, o4b, t4 = run 4 in
      let same (o : Explore.Enum.outcome) =
        Explore.Traceset.equal o1.Explore.Enum.traces o.Explore.Enum.traces
        && o1.Explore.Enum.completeness = o.Explore.Enum.completeness
      in
      let ok = List.for_all same [ o1b; o2; o2b; o4; o4b ] in
      if ok then incr passed
      else begin
        Format.printf "%-22s parallel/sequential MISMATCH@." name;
        incr failed
      end;
      let s4 = t1 /. Float.max 1e-9 t4 in
      let is_cert_heavy =
        String.length name >= 10 && String.sub name 0 10 = "cert_heavy"
      in
      let floor =
        match mode with
        | Full when is_cert_heavy -> cert_floor
        | Full | Clamped -> all_floor
      in
      let row_gate_ok = s4 >= floor in
      if not row_gate_ok then begin
        gate_ok := false;
        Format.printf
          "%-22s scaling gate FAIL: speedup_j4 %.2f < %.2f (%s mode)@." name
          s4 floor
          (match mode with Full -> "full" | Clamped -> "clamped")
      end;
      json_scaling :=
        (name, t1, t2, t4, ok, floor, row_gate_ok) :: !json_scaling;
      if timings then
        Format.printf "%-22s %9.3fs %9.3fs %9.3fs %7.2fx (floor %.2f %s)@."
          name t1 t2 t4 s4 floor
          (if row_gate_ok then "ok" else "FAIL")
      else if ok then
        Format.printf
          "%-22s identical traces+completeness at j=1/2/4  ok (gate floor \
           %.2f %s)@."
          name floor
          (if row_gate_ok then "ok" else "FAIL"))
    workloads;
  let mode_s = match mode with Full -> "full" | Clamped -> "clamped" in
  json_gate :=
    Some (mode_s, Explore.Pool.recommended (), cert_floor, all_floor, !gate_ok);
  if !gate_ok then begin
    incr passed;
    Format.printf
      "scaling gate (%s mode, %d cores): speedups within thresholds  ok@."
      mode_s
      (Explore.Pool.recommended ())
  end
  else begin
    incr failed;
    Format.printf "scaling gate (%s mode): FAIL@." mode_s
  end;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Verification service: the content-addressed result store's cold vs
   warm cost over the litmus corpus (docs/SERVICE.md), through the
   same [Server.serve_work] path the daemon uses.  The checked
   invariant — also under [--check] — is the cache contract: a cold
   pass misses everywhere, a warm pass hits on every request, and the
   two return byte-identical reports and exit codes.  The timings show
   what the store buys a repeated batch. *)

let json_service : (float * float * int * int) option ref = ref None

let service_store_table ~timings () =
  Format.printf "== service store: cold vs warm over the litmus corpus ==@.";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psopt-bench-store-%d" (Unix.getpid ()))
  in
  let store = Service.Store.open_ dir in
  let stats = Explore.Stats.Service.create () in
  let config = bench_config () in
  let pass () =
    let t0 = Unix.gettimeofday () in
    let replies =
      List.map
        (fun (t : Litmus.t) ->
          match
            Service.Server.serve_work ~store ~stats
              (Service.Proto.Litmus t.Litmus.name)
              config
          with
          | Service.Proto.Reply r -> r
          | _ -> failwith ("service refused litmus " ^ t.Litmus.name))
        Litmus.all
    in
    (replies, Unix.gettimeofday () -. t0)
  in
  let cold, t_cold = pass () in
  let warm, t_warm = pass () in
  let total = List.length warm in
  let hits =
    List.length (List.filter (fun r -> r.Service.Proto.cached) warm)
  in
  let cold_misses =
    List.for_all (fun r -> not r.Service.Proto.cached) cold
  in
  let identical =
    List.for_all2
      (fun (a : Service.Proto.reply) (b : Service.Proto.reply) ->
        a.Service.Proto.output = b.Service.Proto.output
        && a.Service.Proto.exit_code = b.Service.Proto.exit_code)
      cold warm
  in
  if cold_misses && hits = total && identical then begin
    incr passed;
    Format.printf
      "%d programs: cold all misses, warm %d/%d hits, replies identical  ok@."
      total hits total
  end
  else begin
    incr failed;
    Format.printf
      "service store MISMATCH (cold misses %b, warm hits %d/%d, identical %b)@."
      cold_misses hits total identical
  end;
  json_service := Some (t_cold, t_warm, hits, total);
  if timings then
    Format.printf "cold %.3fs   warm %.3fs   speedup %.1fx@." t_cold t_warm
      (t_cold /. Float.max 1e-9 t_warm);
  (try
     Array.iter
       (fun shard ->
         let sd = Filename.concat dir shard in
         if Sys.is_directory sd then begin
           Array.iter
             (fun f -> Sys.remove (Filename.concat sd f))
             (Sys.readdir sd);
           Unix.rmdir sd
         end)
       (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Replay debugger (docs/REPLAY.md): record a switch-heavy execution
   into a temp store, reload it, and sweep every position.  Checked
   invariants: the reconstructed state equals the recorder's at every
   step, no single jump replays >= K steps (the keyframe cost model),
   and ddmin strictly reduces the switch count while preserving the
   output sequence.  Timings (record / load / full backward sweep)
   print outside [--check]. *)

let json_replay : (int * int * int * int * int * bool) option ref = ref None

let replay_table ~timings () =
  Format.printf "== replay: record, O(K) navigation, shrink ==@.";
  let config = bench_config () in
  let prog = lit "lb" in
  let kf = 4 in
  let path = Filename.temp_file "psopt-bench-replay" ".trace" in
  let outs = [ 1; 1 ] in
  let t0 = Unix.gettimeofday () in
  let steps =
    match
      Replay.Record.record_witness ~config ~eager_switch:true ~outs ~path prog
    with
    | Ok n -> n
    | Error m -> failwith ("bench replay: record: " ^ m)
  in
  let t_record = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let session =
    match Replay.Store.open_ path with
    | Error e -> failwith (Replay.Store.error_to_string e)
    | Ok r ->
        let s = Replay.Session.load ~keyframe_every:kf r in
        Replay.Store.close_reader r;
        (match s with
        | Ok s -> s
        | Error e -> failwith (Replay.Store.error_to_string e))
  in
  let t_load = Unix.gettimeofday () -. t0 in
  (* reference states straight from the stepper *)
  let states =
    match
      Explore.Witness.find_trail ~config ~eager_switch:true ~outs prog
    with
    | Some (st0, trail) ->
        Array.of_list (Explore.Stepper.trail_states st0 trail)
    | None -> failwith "bench replay: witness vanished"
  in
  let max_jump_cost = ref 0 in
  let equal_everywhere = ref true in
  ignore (Replay.Session.jump session steps);
  let t0 = Unix.gettimeofday () in
  for n = steps - 1 downto 0 do
    let before = Replay.Session.replayed_steps session in
    ignore (Replay.Session.jump session n);
    max_jump_cost :=
      max !max_jump_cost (Replay.Session.replayed_steps session - before);
    if
      not
        (Explore.Stepper.equal_state states.(n)
           (Replay.Session.state session))
    then equal_everywhere := false
  done;
  let t_sweep = Unix.gettimeofday () -. t0 in
  let w =
    List.filter_map
      (fun n ->
        match Replay.Session.record_at session n with
        | Some r -> (
            match r.Replay.Trace.event with
            | Some e ->
                Some { Explore.Witness.tid = r.Replay.Trace.tid; event = e }
            | None -> None)
        | None -> None)
      (List.init steps Fun.id)
  in
  let sw_before, sw_after =
    match Replay.Shrink.schedule ~config prog w with
    | Ok res ->
        (res.Replay.Shrink.switches_before, res.Replay.Shrink.switches_after)
    | Error m -> failwith ("bench replay: shrink: " ^ m)
  in
  (try Sys.remove path with Sys_error _ -> ());
  (try Sys.remove (path ^ ".idx") with Sys_error _ -> ());
  let ok = !equal_everywhere && !max_jump_cost < kf && sw_after < sw_before in
  if ok then begin
    incr passed;
    if not timings then
      Format.printf
        "lb eager %d steps: states exact, max jump %d < K=%d, switches %d \
         -> %d  ok@."
        steps !max_jump_cost kf sw_before sw_after
  end
  else begin
    incr failed;
    Format.printf
      "lb eager replay FAILED (equal %b, max jump %d, K %d, switches %d -> \
       %d)@."
      !equal_everywhere !max_jump_cost kf sw_before sw_after
  end;
  json_replay := Some (steps, kf, !max_jump_cost, sw_before, sw_after, ok);
  if timings then
    Format.printf
      "lb eager: %d steps  record %.1fms  load %.1fms  backward sweep \
       %.2fms  max jump %d  switches %d -> %d@."
      steps (t_record *. 1e3) (t_load *. 1e3) (t_sweep *. 1e3) !max_jump_cost
      sw_before sw_after;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* ------------------------------------------------------------------ *)
(* Fleet load generation (docs/SERVICE.md "Load generation
   methodology"): a real in-process daemon on a temp socket, driven
   over the wire by the loadgen — a closed-loop client sweep plus one
   open-loop offered rate.  The mix is 100% prewarmed litmus corpus,
   so every measured request is a warm store hit and the quantiles are
   a property of the service path, not of exploration variance.

   Checked gates (also under [--check]): zero transport errors on
   every row; the warm p99 stays under a generous ceiling; and
   throughput is monotone up to the knee — growing the closed-loop
   fleet must never cost more than the tolerance factor, since warm
   hits bypass the admission queue entirely. *)

let loadgen_p99_ceiling_ms = 500.0
let loadgen_monotone_tolerance = 0.6

let json_loadgen :
    (string
    * int
    * float
    * float
    * float
    * float
    * float
    * int
    * int
    * int
    * int
    * int
    * bool)
    list
    ref =
  ref []

let json_loadgen_gate : bool option ref = ref None

let json_loadgen_sat : ((float * bool) list * float option) option ref =
  ref None

let loadgen_table ~timings () =
  Format.printf "== loadgen: closed-loop sweep + one open-loop rate ==@.";
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psopt-bench-lg-%d.sock" (Unix.getpid ()))
  in
  let store_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psopt-bench-lg-store-%d" (Unix.getpid ()))
  in
  let m = Mutex.create () in
  let c = Condition.create () in
  let ready = ref false in
  let server_result = ref (Ok ()) in
  let server =
    Thread.create
      (fun () ->
        server_result :=
          Service.Server.run
            ~on_ready:(fun () ->
              Mutex.lock m;
              ready := true;
              Condition.signal c;
              Mutex.unlock m)
            {
              (Service.Server.default ~socket) with
              store_dir = Some store_dir;
              capacity = 64;
              quiet = true;
            })
      ()
  in
  Mutex.lock m;
  while not !ready do
    Condition.wait c m
  done;
  Mutex.unlock m;
  let base =
    {
      (Service.Loadgen.default ~socket) with
      high_pct = 100;
      warmup_s = 0.3;
      duration_s = 1.5;
      prewarm = true;
      retries = 0;
    }
  in
  let gate_ok = ref true in
  let run_row label cfg =
    match Service.Loadgen.run cfg with
    | Error e ->
        incr failed;
        gate_ok := false;
        Format.printf "loadgen %s: FAIL (%s)@." label e
    | Ok r ->
        let q = r.Service.Loadgen.all.Service.Loadgen.latency in
        let p50_ms =
          float_of_int q.Service.Loadgen.Quantiles.p50_ns /. 1e6
        in
        let p99_ms =
          float_of_int q.Service.Loadgen.Quantiles.p99_ns /. 1e6
        in
        let p999_ms =
          float_of_int q.Service.Loadgen.Quantiles.p999_ns /. 1e6
        in
        let rate_hz =
          match cfg.Service.Loadgen.mode with
          | Service.Loadgen.Closed -> 0.0
          | Service.Loadgen.Open { rate_hz; _ } -> rate_hz
        in
        let row_ok =
          r.Service.Loadgen.transport_errors = 0
          && p99_ms <= loadgen_p99_ceiling_ms
          && r.Service.Loadgen.all.Service.Loadgen.sent
             = r.Service.Loadgen.all.Service.Loadgen.ok
               + r.Service.Loadgen.all.Service.Loadgen.shed
               + r.Service.Loadgen.all.Service.Loadgen.busy
               + r.Service.Loadgen.all.Service.Loadgen.errors
        in
        if row_ok then incr passed
        else begin
          incr failed;
          gate_ok := false
        end;
        if timings then
          Format.printf
            "%-12s %3d clients  %8.1f req/s  p50 %6.2fms  p99 %6.2fms  \
             transport errors %d  %s@."
            label cfg.Service.Loadgen.clients
            r.Service.Loadgen.throughput_rps p50_ms p99_ms
            r.Service.Loadgen.transport_errors
            (if row_ok then "ok" else "FAIL")
        else
          Format.printf "loadgen %s: %s@." label
            (if row_ok then "ok" else "FAIL");
        json_loadgen :=
          ( label,
            cfg.Service.Loadgen.clients,
            rate_hz,
            r.Service.Loadgen.throughput_rps,
            p50_ms,
            p99_ms,
            p999_ms,
            r.Service.Loadgen.all.Service.Loadgen.sent,
            r.Service.Loadgen.all.Service.Loadgen.shed
            + r.Service.Loadgen.all.Service.Loadgen.busy,
            r.Service.Loadgen.retries,
            r.Service.Loadgen.all.Service.Loadgen.errors,
            r.Service.Loadgen.transport_errors,
            row_ok )
          :: !json_loadgen
  in
  run_row "closed_j2" { base with clients = 2 };
  run_row "closed_j4" { base with clients = 4; prewarm = false };
  run_row "closed_j8" { base with clients = 8; prewarm = false };
  run_row "open_300hz"
    {
      base with
      clients = 8;
      prewarm = false;
      mode =
        Service.Loadgen.Open
          { rate_hz = 300.0; arrivals = Service.Loadgen.Poisson };
    };
  (* stepped saturation search: open-loop at rising offered rates
     until the SLO breaks; the knee is the last passing rate.  The
     first step is far under this host's warm-hit capacity, so the
     knee must be at least that — checked as part of the gate. *)
  let sat_rates = [ 200.0; 2000.0 ] in
  let slo =
    {
      Service.Loadgen.slo_p99_ms = Some loadgen_p99_ceiling_ms;
      slo_shed_pct = Some 10.0;
    }
  in
  (match
     Service.Loadgen.saturation
       { base with clients = 8; prewarm = false }
       ~slo ~rates:sat_rates
   with
  | Error e ->
      incr failed;
      gate_ok := false;
      Format.printf "loadgen saturation: FAIL (%s)@." e
  | Ok sat ->
      let steps =
        List.map
          (fun (s : Service.Loadgen.sat_step) ->
            (s.Service.Loadgen.rate_hz, s.Service.Loadgen.passed))
          sat.Service.Loadgen.steps
      in
      json_loadgen_sat := Some (steps, sat.Service.Loadgen.knee_hz);
      let knee_ok =
        match sat.Service.Loadgen.knee_hz with
        | Some k -> k >= List.hd sat_rates
        | None -> false
      in
      if knee_ok then incr passed
      else begin
        incr failed;
        gate_ok := false
      end;
      Format.printf "loadgen saturation knee: %s (first offered rate %s)@."
        (match sat.Service.Loadgen.knee_hz with
        | Some k -> Printf.sprintf "%g req/s" k
        | None -> "below the first step")
        (if knee_ok then "sustained  ok" else "NOT sustained  FAIL"));
  (* monotone-to-the-knee: each closed-loop step must keep at least
     the tolerance factor of the previous step's throughput *)
  let closed_thr =
    List.filter_map
      (fun (label, _, _, thr, _, _, _, _, _, _, _, _, _) ->
        if String.length label >= 6 && String.sub label 0 6 = "closed" then
          Some thr
        else None)
      (List.rev !json_loadgen)
  in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        b >= loadgen_monotone_tolerance *. a && monotone rest
    | _ -> true
  in
  let mono_ok = monotone closed_thr in
  if mono_ok then incr passed
  else begin
    incr failed;
    gate_ok := false
  end;
  Format.printf "loadgen gate (zero transport errors, p99 <= %.0fms, \
                 throughput monotone within %.1fx): %s@."
    loadgen_p99_ceiling_ms loadgen_monotone_tolerance
    (if !gate_ok && mono_ok then "ok" else "FAIL");
  json_loadgen_gate := Some (!gate_ok && mono_ok);
  (match Service.Client.shutdown ~socket with
  | Ok () -> ()
  | Error e -> Format.printf "loadgen: shutdown failed: %s@." e);
  Thread.join server;
  (match !server_result with
  | Ok () -> ()
  | Error e -> Format.printf "loadgen: server exit: %s@." e);
  (try
     Array.iter
       (fun shard ->
         let sd = Filename.concat store_dir shard in
         if Sys.is_directory sd then begin
           Array.iter
             (fun f -> Sys.remove (Filename.concat sd f))
             (Sys.readdir sd);
           Unix.rmdir sd
         end)
       (Sys.readdir store_dir);
     Unix.rmdir store_dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* [--json FILE]: a stable, hand-rolled summary for CI artifacts. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The histogram families the harness itself populates: certification
   runs and pool tasks during the exploration phases, store lookups
   and request service times during the service phase
   ([psopt_service_request_duration_ns] records inside
   [Server.serve_work], which the service table drives directly). *)
let json_histograms = [
  "psopt_explore_cert_run_duration_ns";
  "psopt_pool_task_duration_ns";
  "psopt_store_lookup_duration_ns";
  "psopt_service_request_duration_ns";
  "psopt_client_request_duration_ns";
]

let write_json file =
  let oc = open_out file in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"schema\": \"psopt-bench/6\",\n";
  pf "  \"schema_version\": 6,\n";
  pf "  \"config_fingerprint\": \"%s\",\n"
    (json_escape (Explore.Config.fingerprint (bench_config ())));
  pf "  \"jobs\": %d,\n" !bench_j;
  pf "  \"domains_recommended\": %d,\n" (Domain.recommended_domain_count ());
  pf "  \"domain_cap\": %d,\n" Explore.Pool.domain_cap;
  pf "  \"passed\": %d,\n" !passed;
  pf "  \"failed\": %d,\n" !failed;
  pf "  \"rows\": [\n";
  let rows = List.rev !json_rows in
  List.iteri
    (fun i (id, claim, ok) ->
      pf "    {\"id\": \"%s\", \"claim\": \"%s\", \"ok\": %b}%s\n"
        (json_escape id) (json_escape claim) ok
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pf "  ],\n";
  pf "  \"scaling\": [\n";
  let sc = List.rev !json_scaling in
  List.iteri
    (fun i (name, t1, t2, t4, ok, floor, row_gate_ok) ->
      pf
        "    {\"workload\": \"%s\", \"t1_s\": %.6f, \"t2_s\": %.6f, \"t4_s\": \
         %.6f, \"speedup_j4\": %.3f, \"equivalent\": %b, \"gate_floor\": \
         %.2f, \"gate_ok\": %b}%s\n"
        (json_escape name) t1 t2 t4
        (t1 /. Float.max 1e-9 t4)
        ok floor row_gate_ok
        (if i = List.length sc - 1 then "" else ","))
    sc;
  pf "  ],\n";
  (match !json_gate with
  | Some (mode, cores, cert_floor, all_floor, ok) ->
      pf
        "  \"scaling_gate\": {\"mode\": \"%s\", \"cores\": %d, \
         \"cert_heavy_floor\": %.2f, \"all_floor\": %.2f, \"ok\": %b},\n"
        (json_escape mode) cores cert_floor all_floor ok
  | None -> pf "  \"scaling_gate\": null,\n");
  pf "  \"reduction\": [\n";
  let red = List.rev !json_reduction in
  List.iteri
    (fun i
         (name, nb, nr, factor, sleep, pers, folds, equal, counters_ok, floor,
          row_ok) ->
      pf
        "    {\"workload\": \"%s\", \"nodes_unreduced\": %d, \
         \"nodes_reduced\": %d, \"factor\": %.3f, \"sleep_prunes\": %d, \
         \"persistent_prunes\": %d, \"symmetry_folds\": %d, \"equivalent\": \
         %b, \"counters_ok\": %b, \"gate_floor\": %.2f, \"gate_ok\": %b}%s\n"
        (json_escape name) nb nr factor sleep pers folds equal counters_ok
        floor row_ok
        (if i = List.length red - 1 then "" else ","))
    red;
  pf "  ],\n";
  (match !json_reduction_gate with
  | Some (gate_ok, corpus_ok) ->
      pf
        "  \"reduction_gate\": {\"ok\": %b, \"corpus_equivalent\": %b},\n"
        gate_ok corpus_ok
  | None -> pf "  \"reduction_gate\": null,\n");
  (match !json_service with
  | Some (cold_s, warm_s, hits, programs) ->
      pf
        "  \"service\": {\"programs\": %d, \"cold_s\": %.6f, \"warm_s\": \
         %.6f, \"store_hits_warm\": %d},\n"
        programs cold_s warm_s hits
  | None -> pf "  \"service\": null,\n");
  (match !json_trace_ablation with
  | Some (name, off_rate, on_rate, overhead, spans, equal) ->
      pf
        "  \"trace_ablation\": {\"workload\": \"%s\", \"untraced_nodes_per_s\": \
         %.0f, \"traced_nodes_per_s\": %.0f, \"overhead_pct\": %.2f, \
         \"spans\": %d, \"equivalent\": %b},\n"
        (json_escape name) off_rate on_rate overhead spans equal
  | None -> pf "  \"trace_ablation\": null,\n");
  (match !json_replay with
  | Some (steps, kf, max_jump, sw_before, sw_after, ok) ->
      pf
        "  \"replay\": {\"steps\": %d, \"keyframe_every\": %d, \
         \"max_jump_cost\": %d, \"switches_before\": %d, \
         \"switches_after\": %d, \"ok\": %b},\n"
        steps kf max_jump sw_before sw_after ok
  | None -> pf "  \"replay\": null,\n");
  pf "  \"loadgen\": [\n";
  let lg = List.rev !json_loadgen in
  List.iteri
    (fun i
         (label, clients, rate_hz, thr, p50, p99, p999, sent, shed, retries,
          errors, terrs, ok) ->
      pf
        "    {\"row\": \"%s\", \"clients\": %d, \"rate_hz\": %g, \
         \"throughput_rps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
         \"p999_ms\": %.3f, \"sent\": %d, \"shed\": %d, \"retries\": %d, \
         \"errors\": %d, \"transport_errors\": %d, \"ok\": %b}%s\n"
        (json_escape label) clients rate_hz thr p50 p99 p999 sent shed
        retries errors terrs ok
        (if i = List.length lg - 1 then "" else ","))
    lg;
  pf "  ],\n";
  (match !json_loadgen_sat with
  | Some (steps, knee) ->
      pf "  \"loadgen_saturation\": {\"steps\": [%s], \"knee_hz\": %s},\n"
        (String.concat ", "
           (List.map
              (fun (rate, passed) ->
                Printf.sprintf "{\"rate_hz\": %g, \"passed\": %b}" rate passed)
              steps))
        (match knee with Some k -> Printf.sprintf "%g" k | None -> "null")
  | None -> pf "  \"loadgen_saturation\": null,\n");
  (match !json_loadgen_gate with
  | Some ok ->
      pf
        "  \"loadgen_gate\": {\"ok\": %b, \"p99_ceiling_ms\": %.0f, \
         \"monotone_tolerance\": %.2f},\n"
        ok loadgen_p99_ceiling_ms loadgen_monotone_tolerance
  | None -> pf "  \"loadgen_gate\": null,\n");
  pf "  \"histograms\": [\n";
  List.iteri
    (fun i name ->
      let s =
        match Obs.Metrics.find_histogram name with
        | Some h -> Obs.Metrics.summary h
        | None ->
            { Obs.Metrics.count = 0; sum_ns = 0; p50_ns = 0.; p90_ns = 0.;
              p99_ns = 0.; p999_ns = 0. }
      in
      pf
        "    {\"name\": \"%s\", \"count\": %d, \"sum_ns\": %d, \"p50_ns\": \
         %.0f, \"p90_ns\": %.0f, \"p99_ns\": %.0f, \"p999_ns\": %.0f}%s\n"
        (json_escape name) s.Obs.Metrics.count s.Obs.Metrics.sum_ns
        s.Obs.Metrics.p50_ns s.Obs.Metrics.p90_ns s.Obs.Metrics.p99_ns
        s.Obs.Metrics.p999_ns
        (if i = List.length json_histograms - 1 then "" else ","))
    json_histograms;
  pf "  ]\n";
  pf "}\n";
  close_out oc;
  Format.printf "json summary written to %s@." file

(* ------------------------------------------------------------------ *)
(* Synthetic workload generator for optimizer throughput *)

let synth_cfg ~blocks =
  let open Lang.Ast in
  let label i = Printf.sprintf "B%d" i in
  let mk i =
    let instrs =
      [
        Assign (Printf.sprintf "r%d" (i mod 7), Val i);
        Load (Printf.sprintf "s%d" (i mod 5), Printf.sprintf "v%d" (i mod 4), Lang.Modes.Na);
        Store
          ( Printf.sprintf "v%d" (i mod 4),
            Bin (Add, Reg (Printf.sprintf "r%d" (i mod 7)), Val 1),
            Lang.Modes.WNa );
        Assign
          ( Printf.sprintf "t%d" (i mod 3),
            Bin (Mul, Reg (Printf.sprintf "r%d" (i mod 7)), Val 3) );
      ]
    in
    let term =
      if i = blocks - 1 then Return
      else if i mod 3 = 0 then
        Be (Reg (Printf.sprintf "r%d" (i mod 7)), label (i + 1), label ((i + 2) mod blocks))
      else Jmp (label (i + 1))
    in
    (label i, block instrs term)
  in
  program ~code:[ ("t", codeheap ~entry:"B0" (List.init blocks mk)) ] [ "t" ]

(* ------------------------------------------------------------------ *)
(* Phase 2: bechamel timings *)

let explore_bench ?config disc prog () =
  ignore (Explore.Enum.behaviors_exn ?config disc prog)

let tests =
  let t name f = Test.make ~name (Staged.stage f) in
  let lbp = lit "lb" in
  let cert_state =
    (* an LB-style thread with one pending promise, for certification
       cost measurements *)
    let code = lbp.Lang.Ast.code in
    let ts = Option.get (Ps.Thread.init code "t1") in
    let mem =
      Ps.Memory.init
        (Lang.Ast.VarSet.elements (Lang.Cfg.vars_of_program lbp))
    in
    let p =
      List.hd
        (Ps.Thread.promise_steps ~candidates:[ ("y", 1) ]
           ~atomics:lbp.Lang.Ast.atomics ts mem)
    in
    (code, p.Ps.Thread.ts, p.Ps.Thread.mem)
  in
  let code_c, ts_c, mem_c = cert_state in
  let big = synth_cfg ~blocks:120 in
  [
    (* per-experiment exploration cost *)
    t "e1_sb" (explore_bench Explore.Enum.Interleaving (lit "sb"));
    t "e2_lb" (explore_bench Explore.Enum.Interleaving lbp);
    t "e3_oota" (explore_bench Explore.Enum.Interleaving (lit "lb_oota"));
    t "e4_cas" (explore_bench Explore.Enum.Interleaving (lit "cas_exclusive"));
    t "e5_licm_acq" (fun () ->
        ignore (refines (lit "fig1_foo_opt") (lit "fig1_foo")));
    t "e6_reorder" (fun () ->
        ignore (refines (lit "reorder_tgt") (lit "reorder_src")));
    t "e7_ww_subtle" (fun () -> ignore (Race.ww_rf (lit "fig4")));
    t "e8_licm_pipeline" (fun () ->
        ignore (Opt.Pass.apply Opt.Licm.pass (lit "fig5_src")));
    t "e9_np_equiv" (fun () ->
        ignore (Explore.Refine.equivalent_disciplines (lit "sb")));
    t "e10_race_equiv" (fun () -> ignore (Race.ww_nprf (lit "ww_racy")));
    t "e11_sim_reorder" (fun () ->
        ignore
          (Sim.Simcheck.check_program ~inv:Sim.Invariant.iid
             ~target:(lit "reorder_tgt") ~source:(lit "reorder_src") ()));
    t "e12_dce_rel" (fun () ->
        ignore (violates (lit "fig15_bad_tgt") (lit "fig15_src")));
    t "e13_dce_sim" (fun () ->
        ignore
          (Sim.Simcheck.check_program ~inv:Sim.Invariant.idce
             ~target:(lit "fig16_tgt") ~source:(lit "fig16_src") ()));
    t "e14_constprop" (fun () ->
        ignore (Opt.Pass.apply Opt.Constprop.pass_fix big));
    t "e15_cse" (fun () -> ignore (Opt.Pass.apply Opt.Cse.pass_fix big));
    t "e16_states_il"
      (explore_bench Explore.Enum.Interleaving (lit "fig1_foo"));
    t "e16_states_np"
      (explore_bench Explore.Enum.Non_preemptive (lit "fig1_foo"));
    t "e17_np_lb" (explore_bench Explore.Enum.Non_preemptive lbp);
    (* ablations (DESIGN.md) *)
    t "abl_cert_capped" (fun () ->
        ignore (Ps.Cert.consistent ~code:code_c ts_c mem_c));
    t "abl_cert_uncapped" (fun () ->
        ignore (Ps.Cert.consistent ~cap:false ~code:code_c ts_c mem_c));
    t "abl_explore_memo"
      (explore_bench
         ~config:{ Explore.Config.default with memoize = true }
         Explore.Enum.Interleaving (lit "mp_rlx"));
    t "abl_explore_nomemo"
      (explore_bench
         ~config:{ Explore.Config.default with memoize = false }
         Explore.Enum.Interleaving (lit "mp_rlx"));
    t "abl_promise_semantic"
      (explore_bench
         ~config:{ Explore.Config.default with promise_mode = Explore.Config.Semantic }
         Explore.Enum.Interleaving lbp);
    t "abl_promise_syntactic"
      (explore_bench
         ~config:{ Explore.Config.default with promise_mode = Explore.Config.Syntactic }
         Explore.Enum.Interleaving lbp);
    t "abl_promise_none"
      (explore_bench ~config:Explore.Config.quick Explore.Enum.Interleaving lbp);
    t "abl_cert_cache_on"
      (explore_bench
         ~config:{ Explore.Config.default with cert_cache = true }
         Explore.Enum.Interleaving (cert_heavy ~pad:20 ~noise:8));
    t "abl_cert_cache_off"
      (explore_bench
         ~config:{ Explore.Config.default with cert_cache = false }
         Explore.Enum.Interleaving (cert_heavy ~pad:20 ~noise:8));
    (* optimizer throughput on the synthetic CFG *)
    t "opt_dce_120blocks" (fun () -> ignore (Opt.Pass.apply Opt.Dce.pass big));
    t "opt_licm_120blocks" (fun () -> ignore (Opt.Pass.apply Opt.Licm.pass big));
    t "opt_liveness_120blocks" (fun () ->
        ignore
          (Analysis.Liveness.analyze
             (Lang.Ast.FnameMap.find "t" big.Lang.Ast.code)));
    t "random_run_sb" (fun () ->
        ignore (Explore.Random_run.run_exn ~seed:7 (lit "sb")));
    (* extras *)
    t "x1_spinlock" (explore_bench Explore.Enum.Interleaving (lit "spinlock"));
    t "x3_iriw" (explore_bench Explore.Enum.Interleaving (lit "iriw"));
    t "x4_wrc" (explore_bench Explore.Enum.Interleaving (lit "wrc"));
    t "x6_witness_lb" (fun () ->
        ignore (Explore.Witness.find ~outs:[ 1; 1 ] lbp));
    t "x8_verif_dce" (fun () ->
        ignore
          (Sim.Verif.check
             (Option.get (Sim.Verif.find "dce"))
             (lit "fig16_src")));
  ]

let run_benchmarks () =
  Format.printf "== bechamel timings (ns/run, linear-regression estimate) ==@.";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let instances = [ Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let anl = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> Printf.sprintf "%12.0f" e
            | _ -> "           ?"
          in
          Format.printf "%-28s %s ns/run@." name est)
        anl)
    tests

let () =
  (* [--check]: reproduction rows, the cert-cache equivalence and the
     parallel-scaling equivalence only — the deterministic pass/fail
     half of the harness, suitable for CI.  Without it, the timing
     phases run too. *)
  parse_argv ();
  let check_only = !check_only in
  Format.printf "domains: j=%d (recommended %d, cap %d)@.@." !bench_j
    (Domain.recommended_domain_count ())
    Explore.Pool.domain_cap;
  reproduce ();
  cert_cache_table ~timings:(not check_only);
  reduction_table ~timings:(not check_only) ();
  trace_ablation_table ~timings:(not check_only) ();
  truncation_pressure_table ();
  scaling_table ~timings:(not check_only) ();
  service_store_table ~timings:(not check_only) ();
  replay_table ~timings:(not check_only) ();
  loadgen_table ~timings:(not check_only) ();
  if not check_only then begin
    state_space_table ();
    fig1_sweep ();
    run_benchmarks ()
  end;
  Format.printf "@.experiments: %d ok, %d failed@." !passed !failed;
  Option.iter write_json !json_file;
  if !failed > 0 then exit 1
