(* A single-producer/single-consumer handoff buffer: the kind of
   real-world C11 code whose correctness rests exactly on the
   release/acquire reasoning this library mechanizes.

   The producer writes two payload slots (non-atomically!) and
   publishes each by bumping a release-written index; the consumer
   spins on the index with acquire reads and consumes the slots.  The
   claims, checked exhaustively against the PS2.1 behaviour set:

   - the consumer prints exactly the produced values, in order
     (10 then 20) — no stale slot reads despite the slots being
     non-atomic;
   - the program is write-write race free (the slot writes are ordered
     by the publication protocol);
   - weakening the publication index to relaxed breaks the guarantee:
     stale slot values become observable — the same mode-sensitivity
     that governs which optimizations are sound (Sec. 1).

     dune exec examples/ring_buffer.exe *)

open Lang.Modes

let buffer ~publish ~watch =
  Lang.Build.(
    program ~atomics:[ "widx" ]
      [
        proc "producer"
          [
            blk "P0"
              [
                store "slot0" ~mode:WNa (i 10);
                store "widx" ~mode:publish (i 1);
                store "slot1" ~mode:WNa (i 20);
                store "widx" ~mode:publish (i 2);
              ]
              ret;
          ];
        proc "consumer"
          [
            blk "C0" [ load "r" "widx" ~mode:watch ]
              (be (r "r" < i 1) "C0" "C1");
            blk "C1" [ load "v0" "slot0" ~mode:Na; print (r "v0") ] (jmp "C2");
            blk "C2" [ load "r" "widx" ~mode:watch ]
              (be (r "r" < i 2) "C2" "C3");
            blk "C3" [ load "v1" "slot1" ~mode:Na; print (r "v1") ] ret;
          ];
      ]
      ~threads:[ "producer"; "consumer" ])

let outcomes p =
  let o = Explore.Enum.behaviors_exn Explore.Enum.Interleaving p in
  Explore.Traceset.done_outs o.Explore.Enum.traces |> List.sort_uniq compare

let () =
  let strong = buffer ~publish:WRel ~watch:Acq in
  let weak = buffer ~publish:WRlx ~watch:Rlx in

  let strong_outs = outcomes strong in
  Format.printf "release/acquire publication outcomes: %s@."
    (String.concat " "
       (List.map
          (fun l -> "[" ^ String.concat ";" (List.map string_of_int l) ^ "]")
          strong_outs));
  assert (strong_outs = [ [ 10; 20 ] ]);
  Format.printf "-> exactly the produced values, in order.@.@.";

  (match Race.ww_rf strong with
  | Ok Race.Free -> Format.printf "ww-race free: yes@.@."
  | Ok (Racy r) -> Format.printf "unexpected race: %a@." Race.pp_race r
  | Ok (Inconclusive why) -> Format.printf "inconclusive: %s@." why
  | Error e -> Format.printf "error: %s@." e);

  let weak_outs = outcomes weak in
  Format.printf "relaxed publication outcomes: %s@."
    (String.concat " "
       (List.map
          (fun l -> "[" ^ String.concat ";" (List.map string_of_int l) ^ "]")
          weak_outs));
  assert (List.exists (fun l -> l <> [ 10; 20 ]) weak_outs);
  Format.printf
    "-> stale slots observable: the publication index must be rel/acq.@."
