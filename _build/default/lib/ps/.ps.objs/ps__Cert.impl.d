lib/ps/cert.ml: Event Lang List Map Memory Set Stdlib Thread
