lib/ps/local.ml: Format Int Lang List Stdlib
