lib/ps/event.ml: Format Lang Stdlib
