lib/ps/message.mli: Format Lang Rat View
