lib/ps/machine.mli: Format Lang Map Memory Thread
