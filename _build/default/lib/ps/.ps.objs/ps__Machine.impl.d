lib/ps/machine.ml: Format Int Lang List Local Map Memory Printf Thread
