lib/ps/cert.mli: Lang Memory Thread
