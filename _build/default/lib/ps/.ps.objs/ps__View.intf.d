lib/ps/view.mli: Format Lang Rat
