lib/ps/view.ml: Format Lang Rat
