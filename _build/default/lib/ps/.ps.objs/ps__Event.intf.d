lib/ps/event.mli: Format Lang
