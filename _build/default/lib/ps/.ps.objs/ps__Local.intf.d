lib/ps/local.mli: Format Lang
