lib/ps/message.ml: Format Int Lang Rat String View
