lib/ps/memory.mli: Format Lang Message Rat View
