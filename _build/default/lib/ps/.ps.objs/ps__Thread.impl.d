lib/ps/thread.ml: Ast Event Format Hashtbl Lang List Local Memory Message Modes Rat Stdlib String View
