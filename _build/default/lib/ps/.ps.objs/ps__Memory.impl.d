lib/ps/memory.ml: Format Lang List Message Rat View
