lib/ps/thread.mli: Event Format Lang Local Memory Message View
