(** Thread events, program events and observable traces (Fig. 8).

    Thread events [te] label individual thread steps; program events
    [pe] label machine steps; an observable event trace [B] is a finite
    sequence of outputs possibly ended by [done] or [abort].  For
    bounded exploration we additionally mark traces cut off by the step
    budget, so that behaviour-set comparisons never silently confuse
    "incomplete" with "terminated". *)

type te =
  | Tau  (** silent local step *)
  | Out of Lang.Ast.value  (** [out(v)], from [print] *)
  | Rd of Lang.Modes.read * Lang.Ast.var * Lang.Ast.value  (** [R(or,x,v)] *)
  | Wr of Lang.Modes.write * Lang.Ast.var * Lang.Ast.value  (** [W(ow,x,v)] *)
  | Upd of
      Lang.Modes.read
      * Lang.Modes.write
      * Lang.Ast.var
      * Lang.Ast.value
      * Lang.Ast.value  (** [U(or,ow,x,vr,vw)], successful CAS *)
  | Fnc of Lang.Modes.fence
  | Prm  (** promise *)
  | Rsv  (** reservation *)
  | Ccl  (** cancel *)

type pe = PTau | POut of Lang.Ast.value | PSw  (** program events *)

(** Classification of thread events used by the non-preemptive
    semantics (Fig. 10): [NA] events keep the current thread running
    with the switch bit off; [PRC] (promise/reserve/cancel) events are
    restricted by the switch bit; [AT] events re-enable switching. *)
type cls = NA | PRC | AT

val classify : te -> cls
(** [NA = {τ, R(na,..), W(na,..)}]; [PRC = {prm, rsv, ccl}]; everything
    else — atomic accesses, updates, fences, outputs — is [AT]. *)

(** Terminators of an observable trace. *)
type ending =
  | Done  (** all threads returned, no outstanding promises *)
  | Abort  (** execution aborted *)
  | Cut  (** exploration budget exhausted (not part of the paper's [B];
             used to make boundedness explicit) *)
  | Open  (** trace of a (possibly continuing) prefix *)

type trace = { outs : Lang.Ast.value list; ending : ending }

val trace_done : Lang.Ast.value list -> trace
val trace_cut : Lang.Ast.value list -> trace
val equal_te : te -> te -> bool
val compare_trace : trace -> trace -> int
val equal_trace : trace -> trace -> bool
val pp_te : Format.formatter -> te -> unit
val pp_trace : Format.formatter -> trace -> unit

val is_silent : te -> bool
(** All events but [Out _] are silent (invisible in [B]). *)
