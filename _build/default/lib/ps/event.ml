type te =
  | Tau
  | Out of Lang.Ast.value
  | Rd of Lang.Modes.read * Lang.Ast.var * Lang.Ast.value
  | Wr of Lang.Modes.write * Lang.Ast.var * Lang.Ast.value
  | Upd of
      Lang.Modes.read
      * Lang.Modes.write
      * Lang.Ast.var
      * Lang.Ast.value
      * Lang.Ast.value
  | Fnc of Lang.Modes.fence
  | Prm
  | Rsv
  | Ccl

type pe = PTau | POut of Lang.Ast.value | PSw
type cls = NA | PRC | AT

let classify = function
  | Tau | Rd (Lang.Modes.Na, _, _) | Wr (Lang.Modes.WNa, _, _) -> NA
  | Prm | Rsv | Ccl -> PRC
  | Rd _ | Wr _ | Upd _ | Fnc _ | Out _ -> AT

type ending = Done | Abort | Cut | Open
type trace = { outs : Lang.Ast.value list; ending : ending }

let trace_done outs = { outs; ending = Done }
let trace_cut outs = { outs; ending = Cut }
let equal_te (a : te) (b : te) = a = b
let compare_trace (a : trace) (b : trace) = Stdlib.compare a b
let equal_trace a b = compare_trace a b = 0

let pp_te ppf = function
  | Tau -> Format.pp_print_string ppf "tau"
  | Out v -> Format.fprintf ppf "out(%d)" v
  | Rd (m, x, v) -> Format.fprintf ppf "R(%a,%s,%d)" Lang.Modes.pp_read m x v
  | Wr (m, x, v) -> Format.fprintf ppf "W(%a,%s,%d)" Lang.Modes.pp_write m x v
  | Upd (mr, mw, x, vr, vw) ->
      Format.fprintf ppf "U(%a,%a,%s,%d,%d)" Lang.Modes.pp_read mr
        Lang.Modes.pp_write mw x vr vw
  | Fnc m -> Format.fprintf ppf "F(%a)" Lang.Modes.pp_fence m
  | Prm -> Format.pp_print_string ppf "prm"
  | Rsv -> Format.pp_print_string ppf "rsv"
  | Ccl -> Format.pp_print_string ppf "ccl"

let pp_trace ppf t =
  Format.fprintf ppf "[%a]%s"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    t.outs
    (match t.ending with
    | Done -> " done"
    | Abort -> " abort"
    | Cut -> " cut"
    | Open -> "")

let is_silent = function Out _ -> false | _ -> true
