(** Exploration statistics — the measurements behind experiments E9
    and E16 (state-space size of the interleaving vs the
    non-preemptive machine) and the bench harness. *)

type t = {
  mutable nodes : int;  (** distinct machine states visited *)
  mutable transitions : int;  (** micro-steps enumerated *)
  mutable memo_hits : int;
  mutable cert_checks : int;  (** consistency checks performed *)
  mutable cycles : int;  (** back-edges (divergence points) found *)
  mutable cuts : int;  (** paths truncated by the step budget *)
  mutable promises : int;  (** promise steps explored *)
}

val create : unit -> t
val pp : Format.formatter -> t -> unit
