type t = {
  mutable nodes : int;
  mutable transitions : int;
  mutable memo_hits : int;
  mutable cert_checks : int;
  mutable cycles : int;
  mutable cuts : int;
  mutable promises : int;
}

let create () =
  {
    nodes = 0;
    transitions = 0;
    memo_hits = 0;
    cert_checks = 0;
    cycles = 0;
    cuts = 0;
    promises = 0;
  }

let pp ppf s =
  Format.fprintf ppf
    "nodes=%d transitions=%d memo_hits=%d cert_checks=%d cycles=%d cuts=%d \
     promises=%d"
    s.nodes s.transitions s.memo_hits s.cert_checks s.cycles s.cuts s.promises
