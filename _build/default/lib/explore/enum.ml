module TidMap = Ps.Machine.TidMap

type discipline = Interleaving | Non_preemptive

type outcome = { traces : Traceset.t; exact : bool; stats : Stats.t }

let pp_discipline ppf = function
  | Interleaving -> Format.pp_print_string ppf "interleaving"
  | Non_preemptive -> Format.pp_print_string ppf "non-preemptive"

(* A search node: machine world, switch bit (always [true] under the
   interleaving discipline) and per-thread promise budget spent. *)
module Node = struct
  type t = {
    world : Ps.Machine.world;
    bit : bool;
    promised : int TidMap.t;
  }

  let compare a b =
    let c = Ps.Machine.compare a.world b.world in
    if c <> 0 then c
    else
      let c = Bool.compare a.bit b.bit in
      if c <> 0 then c else TidMap.compare Int.compare a.promised b.promised
end

module NodeMap = Map.Make (Node)

(* One successor: the output emitted (if any) and the next node. *)
type succ = { emit : Lang.Ast.value option; next : Node.t }

type search = {
  code : Lang.Ast.code;
  atomics : Lang.Ast.VarSet.t;
  disc : discipline;
  cfg : Config.t;
  stats : Stats.t;
  mutable memo : Traceset.t NodeMap.t;
  mutable on_stack : int NodeMap.t;  (* node -> stack index *)
}

let consistent s ts mem =
  s.stats.Stats.cert_checks <- s.stats.Stats.cert_checks + 1;
  Ps.Cert.consistent ~fuel:s.cfg.Config.cert_fuel
    ~cap:s.cfg.Config.cap_certification ~code:s.code ts mem

let promise_candidates s ts mem =
  match s.cfg.Config.promise_mode with
  | Config.No_promises -> []
  | Config.Syntactic -> Ps.Thread.writes_in_code ~code:s.code ts
  | Config.Semantic ->
      Ps.Cert.certifiable_writes ~fuel:s.cfg.Config.cert_fuel ~code:s.code ts
        mem

let successors s (n : Node.t) : succ list =
  let w = n.world in
  let ts = Ps.Machine.cur_ts w in
  let mem = w.Ps.Machine.mem in
  let promised_cur =
    match TidMap.find_opt w.Ps.Machine.cur n.promised with
    | Some k -> k
    | None -> 0
  in
  (* The current thread's consistency gates outputs and switches; it
     is cheap when the thread has no promises. *)
  let committed = lazy (consistent s ts mem) in
  let bit_after te =
    match s.disc with
    | Interleaving -> Some true
    | Non_preemptive -> Npsem.bit_after te ~before:n.bit
  in
  let lift (step : Ps.Thread.step) : succ option =
    match bit_after step.Ps.Thread.event with
    | None -> None
    | Some bit -> (
        let world = Ps.Machine.set_cur_ts w step.Ps.Thread.ts step.Ps.Thread.mem in
        let next = { n with Node.world; bit } in
        match step.Ps.Thread.event with
        | Ps.Event.Out v ->
            if Lazy.force committed then Some { emit = Some v; next } else None
        | _ -> Some { emit = None; next })
  in
  let regular = List.filter_map lift (Ps.Thread.steps ~code:s.code ts mem) in
  let promises =
    let allowed =
      promised_cur < s.cfg.Config.max_promises
      && (match s.disc with Interleaving -> true | Non_preemptive -> n.bit)
      && not (Ps.Local.is_finished ts.Ps.Thread.local)
    in
    if not allowed then []
    else
      let candidates = promise_candidates s ts mem in
      Ps.Thread.promise_steps ~candidates ~atomics:s.atomics ts mem
      |> List.filter_map (fun (step : Ps.Thread.step) ->
             (* A promise must remain certifiable with the chosen
                slot; pruning inconsistent promise placements is sound
                because a τ machine step must end consistent. *)
             if consistent s step.Ps.Thread.ts step.Ps.Thread.mem then (
               s.stats.Stats.promises <- s.stats.Stats.promises + 1;
               let world =
                 Ps.Machine.set_cur_ts w step.Ps.Thread.ts step.Ps.Thread.mem
               in
               let promised =
                 TidMap.add w.Ps.Machine.cur (promised_cur + 1) n.promised
               in
               Some
                 { emit = None; next = { Node.world; bit = n.bit; promised } })
             else None)
  in
  let reservations =
    if not s.cfg.Config.reservations then []
    else
      let rsv_allowed =
        (match s.disc with Interleaving -> true | Non_preemptive -> n.bit)
        (* one outstanding reservation per thread: reserve/cancel
           cycles otherwise defeat memoization (every cycle member is
           taint-excluded) and blow up the search *)
        && List.for_all
             (fun m -> not (Ps.Message.is_reservation m))
             ts.Ps.Thread.prm
      in
      let rsvs =
        if rsv_allowed then Ps.Thread.reserve_steps ts mem else []
      in
      let ccls = Ps.Thread.cancel_steps ts mem in
      List.filter_map lift (rsvs @ ccls)
  in
  let switches =
    let may =
      (match s.disc with
      | Interleaving -> true
      | Non_preemptive ->
          (* The switch bit guards blocks of non-atomic accesses; a
             finished thread has no block in progress, so the machine
             may always move on from it. *)
          n.bit || Ps.Local.is_finished ts.Ps.Thread.local)
      && Lazy.force committed
    in
    if not may then []
    else
      TidMap.fold
        (fun tid ts' acc ->
          if tid <> w.Ps.Machine.cur
             && not (Ps.Local.is_finished ts'.Ps.Thread.local)
          then
            {
              emit = None;
              next = { n with Node.world = Ps.Machine.switch w tid; bit = true };
            }
            :: acc
          else acc)
        w.Ps.Machine.tp []
  in
  regular @ promises @ reservations @ switches

(* Depth-first computation of the suffix trace set of a node.

   Taint discipline: [dfs] returns the suffixes together with the
   lowest stack index this result depends on ([max_int] if none).  A
   result is memoized only when it closes over its own subtree —
   cycle heads included, inner cycle members excluded — and never when
   the depth budget truncated it. *)
let max_taint = max_int

let rec dfs s (n : Node.t) depth stack_ix : Traceset.t * int =
  if depth >= s.cfg.Config.max_steps then (
    s.stats.Stats.cuts <- s.stats.Stats.cuts + 1;
    (Traceset.singleton (Ps.Event.trace_cut []), -1 (* depth taint *)))
  else
    match NodeMap.find_opt n s.memo with
    | Some traces ->
        s.stats.Stats.memo_hits <- s.stats.Stats.memo_hits + 1;
        (traces, max_taint)
    | None -> (
        match NodeMap.find_opt n s.on_stack with
        | Some ix ->
            (* Back-edge: divergence.  The honest behaviour is the
               prefix observed so far, i.e. the empty suffix with an
               [Open] ending. *)
            s.stats.Stats.cycles <- s.stats.Stats.cycles + 1;
            ( Traceset.singleton { Ps.Event.outs = []; ending = Ps.Event.Open },
              ix )
        | None ->
            s.stats.Stats.nodes <- s.stats.Stats.nodes + 1;
            s.on_stack <- NodeMap.add n stack_ix s.on_stack;
            let base =
              if Ps.Machine.terminal n.world then
                Traceset.singleton (Ps.Event.trace_done [])
              else Traceset.empty
            in
            let succs = successors s n in
            s.stats.Stats.transitions <-
              s.stats.Stats.transitions + List.length succs;
            let base =
              if Traceset.is_empty base && succs = [] then
                (* Stuck without terminating: an execution that cannot
                   commit further; its observable behaviour is the
                   open prefix. *)
                Traceset.singleton { Ps.Event.outs = []; ending = Ps.Event.Open }
              else base
            in
            let traces, taint =
              List.fold_left
                (fun (acc, taint) { emit; next } ->
                  let sub, t = dfs s next (depth + 1) (stack_ix + 1) in
                  let sub =
                    match emit with
                    | Some v -> Traceset.prepend v sub
                    | None -> sub
                  in
                  (Traceset.union acc sub, min taint t))
                (base, max_taint) succs
            in
            s.on_stack <- NodeMap.remove n s.on_stack;
            if s.cfg.Config.memoize && taint >= stack_ix && taint >= 0 then (
              (* No dependency below this node on the stack (cycle
                 heads close here) and no depth cut: safe to memoize. *)
              s.memo <- NodeMap.add n traces s.memo;
              (traces, max_taint))
            else (traces, taint))

let behaviors ?(config = Config.default) disc (p : Lang.Ast.program) =
  match Ps.Machine.init p with
  | Error e -> Error e
  | Ok world ->
      let s =
        {
          code = p.Lang.Ast.code;
          atomics = p.Lang.Ast.atomics;
          disc;
          cfg = config;
          stats = Stats.create ();
          memo = NodeMap.empty;
          on_stack = NodeMap.empty;
        }
      in
      let root = { Node.world; bit = true; promised = TidMap.empty } in
      let traces, _ = dfs s root 0 0 in
      Ok { traces; exact = s.stats.Stats.cuts = 0; stats = s.stats }

let behaviors_exn ?config disc p =
  match behaviors ?config disc p with
  | Ok o -> o
  | Error e -> invalid_arg ("Enum.behaviors: " ^ e)

let iter_reachable ?(config = Config.default) disc (p : Lang.Ast.program) ~f =
  match Ps.Machine.init p with
  | Error e -> Error e
  | Ok world ->
      let s =
        {
          code = p.Lang.Ast.code;
          atomics = p.Lang.Ast.atomics;
          disc;
          cfg = config;
          stats = Stats.create ();
          memo = NodeMap.empty;
          on_stack = NodeMap.empty;
        }
      in
      let visited = ref NodeMap.empty in
      let rec visit (n : Node.t) depth =
        if depth < s.cfg.Config.max_steps && not (NodeMap.mem n !visited)
        then (
          visited := NodeMap.add n () !visited;
          s.stats.Stats.nodes <- s.stats.Stats.nodes + 1;
          let ts = Ps.Machine.cur_ts n.world in
          let committed = consistent s ts n.world.Ps.Machine.mem in
          f ~committed n.Node.world;
          let succs = successors s n in
          s.stats.Stats.transitions <-
            s.stats.Stats.transitions + List.length succs;
          List.iter (fun { next; _ } -> visit next (depth + 1)) succs)
        else if depth >= s.cfg.Config.max_steps then
          s.stats.Stats.cuts <- s.stats.Stats.cuts + 1
      in
      visit { Node.world; bit = true; promised = TidMap.empty } 0;
      Ok s.stats
