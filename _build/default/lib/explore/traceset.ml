include Set.Make (struct
  type t = Ps.Event.trace

  let compare = Ps.Event.compare_trace
end)

let prepend v s =
  map (fun tr -> { tr with Ps.Event.outs = v :: tr.Ps.Event.outs }) s

let completed s =
  filter (fun tr -> tr.Ps.Event.ending = Ps.Event.Done) s

let done_outs s =
  elements (completed s) |> List.map (fun tr -> tr.Ps.Event.outs)

let has_done outs s =
  mem { Ps.Event.outs; ending = Ps.Event.Done } s

let closure s =
  fold
    (fun tr acc ->
      let rec prefixes acc = function
        | [] -> add { Ps.Event.outs = []; ending = Ps.Event.Open } acc
        | _ :: _ as outs ->
            let outs' = List.filteri (fun i _ -> i < List.length outs - 1) outs in
            prefixes
              (add { Ps.Event.outs; ending = Ps.Event.Open } acc)
              outs'
      in
      (* Every prefix — the full output sequence included — is also a
         trace with the Open ending; the original record keeps its own
         ending alongside. *)
      prefixes (add tr acc) tr.Ps.Event.outs)
    s s

let equal_behaviour a b = equal (closure a) (closure b)

let is_refined_by ~target ~source =
  subset (completed target) (completed source)

let diff_done ~target ~source = diff (completed target) (completed source)

let pp ppf s =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Ps.Event.pp_trace)
    (elements s)
