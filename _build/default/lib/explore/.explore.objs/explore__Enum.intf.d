lib/explore/enum.mli: Config Format Lang Ps Stats Traceset
