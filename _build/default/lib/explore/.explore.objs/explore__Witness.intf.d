lib/explore/witness.mli: Config Enum Format Lang Ps
