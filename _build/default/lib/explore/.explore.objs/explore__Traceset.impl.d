lib/explore/traceset.ml: Format List Ps Set
