lib/explore/config.mli: Format
