lib/explore/stats.mli: Format
