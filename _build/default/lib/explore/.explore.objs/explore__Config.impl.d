lib/explore/config.ml: Format
