lib/explore/stats.ml: Format
