lib/explore/enum.ml: Bool Config Format Int Lang Lazy List Map Npsem Ps Stats Traceset
