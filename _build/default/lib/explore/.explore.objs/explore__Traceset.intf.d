lib/explore/traceset.mli: Format Lang Ps Set
