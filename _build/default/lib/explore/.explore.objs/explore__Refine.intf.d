lib/explore/refine.mli: Config Enum Format Lang Ps
