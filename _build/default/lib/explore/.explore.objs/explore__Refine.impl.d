lib/explore/refine.ml: Config Enum Format List Ps Traceset
