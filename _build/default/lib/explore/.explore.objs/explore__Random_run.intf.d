lib/explore/random_run.mli: Lang Ps
