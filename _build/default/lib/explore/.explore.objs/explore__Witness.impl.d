lib/explore/witness.ml: Array Bool Config Enum Format Int Lang Lazy List Npsem Ps Set
