lib/explore/random_run.ml: Hashtbl Int Lang List Option Ps Random
