(** A single-execution interpreter with a pseudo-random scheduler.

    Unlike {!Enum}, which computes the full behaviour set, this module
    runs one execution, picking uniformly among enabled micro-steps
    (promise-free: promises only matter when hunting for weak
    behaviours exhaustively).  It is the workhorse of the smoke-test
    examples and of throughput benches, and doubles as a quick sanity
    sampler: every trace it produces must be in the enumerated set —
    a property the test suite checks on the litmus corpus. *)

type run_result = {
  trace : Ps.Event.trace;
  steps : int;
  final : Ps.Machine.world;
}

val run :
  ?seed:int ->
  ?max_steps:int ->
  Lang.Ast.program ->
  (run_result, string) result

val run_exn : ?seed:int -> ?max_steps:int -> Lang.Ast.program -> run_result

val sample :
  ?seed:int ->
  ?max_steps:int ->
  runs:int ->
  Lang.Ast.program ->
  (Lang.Ast.value list * int) list
(** litmus7-style sampling: run [runs] random executions and return
    the frequency of each completed output sequence, most frequent
    first.  A sampler only ever {e under}-approximates the behaviour
    set (and it is promise-free, so it misses LB-style outcomes
    entirely) — the contrast with {!Enum} is the point: tests check
    every sampled outcome is enumerated, and the quickstart shows
    outcomes sampling cannot reach. *)
