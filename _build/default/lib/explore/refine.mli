(** Event-trace refinement checking [P_s ⊇ P_t] (Sec. 2.2).

    The soundness statement of an optimization is that the target
    program produces no observable trace the source cannot produce.
    On the bounded-exhaustive behaviour sets of {!Enum} this is a
    decidable inclusion check; both sides are explored with the same
    configuration and discipline so the comparison is apples to
    apples.

    Completed ([done]) traces are compared exactly.  [Open] prefixes
    (divergence) are compared as prefixes: an open target trace must
    be a prefix of some source trace.  If either exploration was cut
    by the step budget the verdict is downgraded to [Inconclusive]
    rather than silently trusted. *)

type verdict =
  | Refines
  | Violates of Ps.Event.trace list
      (** target traces (worst offenders first) the source cannot
          produce *)
  | Inconclusive of string

type report = {
  verdict : verdict;
  target : Enum.outcome;
  source : Enum.outcome;
}

val check :
  ?config:Config.t ->
  ?discipline:Enum.discipline ->
  target:Lang.Ast.program ->
  source:Lang.Ast.program ->
  unit ->
  report

val refines :
  ?config:Config.t ->
  ?discipline:Enum.discipline ->
  target:Lang.Ast.program ->
  source:Lang.Ast.program ->
  unit ->
  bool
(** [true] iff the verdict is [Refines]. *)

val equivalent :
  ?config:Config.t ->
  ?discipline:Enum.discipline ->
  Lang.Ast.program ->
  Lang.Ast.program ->
  bool
(** Refinement in both directions ([P ≈ P'] on the bounded sets). *)

val equivalent_disciplines : ?config:Config.t -> Lang.Ast.program -> bool
(** Theorem 4.1, checked: the interleaving and non-preemptive
    behaviour sets of one program coincide (as prefix-closed sets). *)

val safe : ?config:Config.t -> Lang.Ast.program -> bool
(** [Safe(P)] (Sec. 6.3): no execution aborts.  CSimpRTL as modelled
    here has no undefined behaviour, so every well-formed program is
    safe; the check is still performed against the explored trace set
    so that the premise of Def. 6.4 is established rather than
    assumed. *)

val pp_verdict : Format.formatter -> verdict -> unit
