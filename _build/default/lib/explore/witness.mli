(** Execution witnesses: concrete annotated schedules for observable
    outcomes, in the style of the paper's annotated executions
    (Sec. 2.1, e.g. [t1: promise (y_rlx := 1); t2: r2 := y_rlx //1;
    ...]).

    Given a program and a target output sequence, the search explores
    the same machine-step space as {!Enum} and returns the sequence of
    (thread id, thread event) pairs of one execution producing exactly
    those outputs and terminating — or reports that none exists within
    the bounds (which, for exact explorations, refutes
    observability).

    This is how refinement counterexamples become debuggable: ask the
    target program for a witness of the offending trace and read off
    where the promise/read choices diverge from anything the source
    can do. *)

type step = { tid : int; event : Ps.Event.te }

type t = step list

val find :
  ?config:Config.t ->
  ?discipline:Enum.discipline ->
  outs:Lang.Ast.value list ->
  Lang.Ast.program ->
  t option
(** A terminating execution printing exactly [outs], or [None] if the
    bounded search finds none. *)

val forbidden :
  ?config:Config.t ->
  outs:Lang.Ast.value list ->
  Lang.Ast.program ->
  bool
(** [true] when no witness exists and the exploration was exact — a
    bounded-exhaustive proof that the outcome is unobservable. *)

val pp : Format.formatter -> t -> unit
(** Prints the schedule in the paper's bracketed style, silent local
    steps elided. *)

val pp_full : Format.formatter -> t -> unit
(** Every step, local computation included. *)
