open Lang.Ast

(* dom.(l) = set of labels dominating l, for reachable l. *)
type t = {
  dom : (label, VarSet.t) Hashtbl.t;  (* label sets; VarSet is a string set *)
  idom : (label, label option) Hashtbl.t;
  entry : label;
}

let compute (ch : codeheap) =
  let rpo = Lang.Cfg.reverse_postorder ch in
  let preds = Lang.Cfg.predecessors ch in
  let reachable = VarSet.of_list rpo in
  let all = VarSet.of_list rpo in
  let dom = Hashtbl.create 16 in
  Hashtbl.replace dom ch.entry (VarSet.singleton ch.entry);
  List.iter
    (fun l -> if not (String.equal l ch.entry) then Hashtbl.replace dom l all)
    rpo;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if not (String.equal l ch.entry) then
          let ps =
            match LabelMap.find_opt l preds with
            | Some ps -> List.filter (fun p -> VarSet.mem p reachable) ps
            | None -> []
          in
          let meet =
            List.fold_left
              (fun acc p ->
                let dp = Hashtbl.find dom p in
                match acc with
                | None -> Some dp
                | Some s -> Some (VarSet.inter s dp))
              None ps
          in
          let nd =
            match meet with
            | None -> VarSet.singleton l (* unreachable-from-preds *)
            | Some s -> VarSet.add l s
          in
          if not (VarSet.equal nd (Hashtbl.find dom l)) then (
            Hashtbl.replace dom l nd;
            changed := true))
      rpo
  done;
  (* Immediate dominators: the dominator with the largest dominator
     set other than the node itself. *)
  let idom = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let ds = VarSet.remove l (Hashtbl.find dom l) in
      let best =
        VarSet.fold
          (fun d acc ->
            let size = VarSet.cardinal (Hashtbl.find dom d) in
            match acc with
            | Some (_, s) when s >= size -> acc
            | _ -> Some (d, size))
          ds None
      in
      Hashtbl.replace idom l (Option.map fst best))
    rpo;
  { dom; idom; entry = ch.entry }

let dominates t a b =
  match Hashtbl.find_opt t.dom b with
  | Some s -> VarSet.mem a s
  | None -> true (* unreachable: vacuous *)

let idom t l = match Hashtbl.find_opt t.idom l with Some d -> d | None -> None

let dominators_of t l =
  match Hashtbl.find_opt t.dom l with
  | None -> []
  | Some s ->
      List.sort
        (fun a b ->
          if dominates t a b then -1 else if dominates t b a then 1 else 0)
        (VarSet.elements s)
