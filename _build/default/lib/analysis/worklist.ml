open Lang.Ast

module Forward (L : Lattice.S) = struct
  type transfer = {
    instr : instr -> L.t -> L.t;
    term : terminator -> L.t -> L.t;
  }

  type result = {
    entry_state : label -> L.t;
    exit_state : label -> L.t;
    before_instrs : label -> L.t list;
  }

  let block_exit tf (b : block) st =
    tf.term b.term (List.fold_left (fun st i -> tf.instr i st) st b.instrs)

  let solve (ch : codeheap) ~init tf =
    let entries = ref LabelMap.empty in
    let get l =
      match LabelMap.find_opt l !entries with Some s -> s | None -> L.bot
    in
    let work = Queue.create () in
    entries := LabelMap.add ch.entry init !entries;
    Queue.add ch.entry work;
    while not (Queue.is_empty work) do
      let l = Queue.pop work in
      match LabelMap.find_opt l ch.blocks with
      | None -> ()
      | Some b ->
          let out = block_exit tf b (get l) in
          List.iter
            (fun succ ->
              let old = get succ in
              let merged = L.join old out in
              if not (L.equal old merged) then (
                entries := LabelMap.add succ merged !entries;
                Queue.add succ work))
            (Lang.Cfg.successors b)
    done;
    let entry_state = get in
    let exit_state l =
      match LabelMap.find_opt l ch.blocks with
      | Some b -> block_exit tf b (get l)
      | None -> L.bot
    in
    let before_instrs l =
      match LabelMap.find_opt l ch.blocks with
      | None -> []
      | Some b ->
          let st = ref (get l) in
          List.map
            (fun i ->
              let before = !st in
              st := tf.instr i before;
              before)
            b.instrs
    in
    { entry_state; exit_state; before_instrs }
end

module Backward (L : Lattice.S) = struct
  type transfer = {
    instr : instr -> L.t -> L.t;
    term : terminator -> L.t -> L.t;
  }

  type result = {
    exit_state : label -> L.t;
    entry_state : label -> L.t;
    after_instrs : label -> L.t list;
  }

  let block_entry tf (b : block) out =
    List.fold_right (fun i st -> tf.instr i st) b.instrs (tf.term b.term out)

  let solve (ch : codeheap) ~exit_init tf =
    let preds = Lang.Cfg.predecessors ch in
    (* [entries.(l)] is the state at the entry of block [l] (the value
       propagated backwards to predecessors). *)
    let entry = ref LabelMap.empty in
    let get_entry l =
      match LabelMap.find_opt l !entry with Some s -> s | None -> L.bot
    in
    let exit_of b =
      let succs = Lang.Cfg.successors b in
      if succs = [] then exit_init
      else
        List.fold_left (fun acc s -> L.join acc (get_entry s)) L.bot succs
    in
    let work = Queue.create () in
    LabelMap.iter (fun l _ -> Queue.add l work) ch.blocks;
    while not (Queue.is_empty work) do
      let l = Queue.pop work in
      match LabelMap.find_opt l ch.blocks with
      | None -> ()
      | Some b ->
          let new_entry = block_entry tf b (exit_of b) in
          if not (L.equal (get_entry l) new_entry) then (
            entry := LabelMap.add l new_entry !entry;
            match LabelMap.find_opt l preds with
            | Some ps -> List.iter (fun p -> Queue.add p work) ps
            | None -> ())
    done;
    let exit_state l =
      match LabelMap.find_opt l ch.blocks with
      | Some b -> exit_of b
      | None -> L.bot
    in
    let after_instrs l =
      match LabelMap.find_opt l ch.blocks with
      | None -> []
      | Some b ->
          (* after i_k  =  before i_{k+1}; after the last instruction
             is the state before the terminator. *)
          let before_term = tf.term b.term (exit_of b) in
          let rec go = function
            | [] -> ([], before_term)
            | i :: rest ->
                let after_rest, st = go rest in
                (st :: after_rest, tf.instr i st)
          in
          fst (go b.instrs)
    in
    { exit_state; entry_state = get_entry; after_instrs }
end
