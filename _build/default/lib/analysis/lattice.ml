module type S = sig
  type t

  val bot : t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Flat (V : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) =
struct
  type t = Bot | Known of V.t | Top

  let bot = Bot

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Known v1, Known v2 -> if V.equal v1 v2 then a else Top
    | Top, _ | _, Top -> Top

  let equal a b =
    match (a, b) with
    | Bot, Bot | Top, Top -> true
    | Known v1, Known v2 -> V.equal v1 v2
    | _ -> false

  let pp ppf = function
    | Bot -> Format.pp_print_string ppf "bot"
    | Known v -> V.pp ppf v
    | Top -> Format.pp_print_string ppf "top"

  let known v = Known v
  let get = function Known v -> Some v | _ -> None
end
