open Lang.Ast

type loop = {
  header : label;
  body : VarSet.t;
  back_edges : label list;
}

let find (ch : codeheap) =
  let dom = Dominator.compute ch in
  let preds = Lang.Cfg.predecessors ch in
  let back_edges =
    LabelMap.fold
      (fun l b acc ->
        List.fold_left
          (fun acc succ ->
            if Dominator.dominates dom succ l then (l, succ) :: acc else acc)
          acc (Lang.Cfg.successors b))
      ch.blocks []
  in
  (* The natural loop of back edge t → h: h plus everything reaching t
     without going through h. *)
  let loop_of (t, h) =
    let body = ref (VarSet.singleton h) in
    let rec visit l =
      if not (VarSet.mem l !body) then (
        body := VarSet.add l !body;
        match LabelMap.find_opt l preds with
        | Some ps -> List.iter visit ps
        | None -> ())
    in
    visit t;
    (h, !body, t)
  in
  let by_header = Hashtbl.create 4 in
  List.iter
    (fun be ->
      let h, body, t = loop_of be in
      match Hashtbl.find_opt by_header h with
      | Some (b, ts) -> Hashtbl.replace by_header h (VarSet.union b body, t :: ts)
      | None -> Hashtbl.replace by_header h (body, [ t ]))
    back_edges;
  Hashtbl.fold
    (fun header (body, back_edges) acc -> { header; body; back_edges } :: acc)
    by_header []
  |> List.sort (fun a b -> String.compare a.header b.header)

let preheader_preds (ch : codeheap) l =
  let preds = Lang.Cfg.predecessors ch in
  match LabelMap.find_opt l.header preds with
  | None -> []
  | Some ps -> List.filter (fun p -> not (VarSet.mem p l.body)) ps
