(** Available expressions, for common subexpression elimination
    (Sec. 7.2: CSE, verified with the identity invariant [Iid]).

    A fact ["rhs is available in r"] means register [r] currently
    holds the value of [rhs], where [rhs] is either a pure expression
    over registers or a non-atomic load [x_na].  CSE replaces a
    recomputation of an available [rhs] by a copy from [r].

    Kill rules under PS2.1:
    - defining a register kills the facts held in it and the facts
      whose expression mentions it;
    - a non-atomic store to [x] kills the load facts on [x] (the
      thread's [Tna(x)] moves past the remembered message, and the
      remembered value may differ from the new one);
    - an {e acquire} read (and acquire/sc fence, CAS with acquire
      part) kills {e all} load facts: the incoming message view may
      push [Tna] past the remembered messages — this is precisely why
      LICM must not hoist across acquire reads (Fig. 1);
    - relaxed accesses and release writes kill no load facts: reusing
      an earlier non-atomic read across them amounts to reading the
      same message again, which the grown view still allows;
    - call boundaries kill everything.

    Note that {e other threads'} writes never kill a load fact: the
    remembered message stays in the memory forever, and re-reading it
    stays allowed until the thread's own view moves — unlike in SC,
    where CSE over shared loads is unsound under interference.  That
    is the essence of why PS2.1 admits these optimizations on
    non-atomics (Sec. 1). *)

type rhs = Expr of Lang.Ast.expr | LoadNa of Lang.Ast.var

module RhsMap : Map.S with type key = rhs

type t = Unreached | Avail of Lang.Ast.reg RhsMap.t

module L : Lattice.S with type t = t

val lookup : rhs -> t -> Lang.Ast.reg option
val transfer_instr : Lang.Ast.instr -> t -> t
val transfer_term : Lang.Ast.terminator -> t -> t

type result = {
  before : Lang.Ast.label -> t list;
  entry : Lang.Ast.label -> t;
}

val analyze : Lang.Ast.codeheap -> result
val pp_rhs : Format.formatter -> rhs -> unit
