(** Natural-loop detection, for LInv (Sec. 2.5): a back edge [t → h]
    with [h] dominating [t] defines the loop with header [h] whose
    body is every block that reaches [t] without passing through
    [h]. *)

type loop = {
  header : Lang.Ast.label;
  body : Lang.Ast.VarSet.t;  (** labels in the loop, header included *)
  back_edges : Lang.Ast.label list;  (** sources of the back edges *)
}

val find : Lang.Ast.codeheap -> loop list
(** Natural loops, merged per header, outermost-last order is not
    guaranteed — LInv treats them independently. *)

val preheader_preds : Lang.Ast.codeheap -> loop -> Lang.Ast.label list
(** The predecessors of the header from outside the loop — the edges
    a preheader block must intercept. *)
