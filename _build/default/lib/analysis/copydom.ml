open Lang.Ast

(* Map from a register to the older register it copies.  Chains are
   flattened at insertion ([r := s] with [s ↦ u] records [r ↦ u]), so
   lookups are one step. *)
type t = Unreached | Copies of reg VarMap.t

module L = struct
  type nonrec t = t

  let bot = Unreached

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Copies m1, Copies m2 ->
        Copies
          (VarMap.merge
             (fun _ a b ->
               match (a, b) with
               | Some r1, Some r2 when String.equal r1 r2 -> Some r1
               | _ -> None)
             m1 m2)

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Copies m1, Copies m2 -> VarMap.equal String.equal m1 m2
    | _ -> false

  let pp ppf = function
    | Unreached -> Format.pp_print_string ppf "unreached"
    | Copies m ->
        VarMap.iter (fun r r0 -> Format.fprintf ppf "%s=%s " r r0) m
end

let copy_of r = function
  | Unreached -> None
  | Copies m -> VarMap.find_opt r m

let kill r = function
  | Unreached -> Unreached
  | Copies m ->
      Copies
        (VarMap.filter
           (fun holder orig ->
             (not (String.equal holder r)) && not (String.equal orig r))
           (VarMap.remove r m))

let add r r0 = function
  | Unreached -> Unreached
  | Copies m -> Copies (VarMap.add r r0 m)

let transfer_instr i st =
  match st with
  | Unreached -> Unreached
  | Copies _ -> (
      match i with
      | Assign (r, Reg r0) when not (String.equal r r0) ->
          let st = kill r st in
          let canonical =
            match copy_of r0 st with Some u -> u | None -> r0
          in
          add r canonical st
      | Assign (r, _) | Load (r, _, _) | Cas (r, _, _, _, _, _) -> kill r st
      | Store _ | Skip | Print _ | Fence _ -> st)

let transfer_term t st =
  match t with
  | Jmp _ | Be _ | Return -> st
  | Call _ -> ( match st with Unreached -> Unreached | Copies _ -> Copies VarMap.empty)

type result = { before : label -> t list; entry : label -> t }

module F = Worklist.Forward (L)

let analyze (ch : codeheap) =
  let tf = { F.instr = transfer_instr; term = transfer_term } in
  let r = F.solve ch ~init:(Copies VarMap.empty) tf in
  { before = r.F.before_instrs; entry = r.F.entry_state }
