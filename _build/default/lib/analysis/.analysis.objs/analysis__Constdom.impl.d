lib/analysis/constdom.ml: Format Lang VarMap Worklist
