lib/analysis/lattice.ml: Format
