lib/analysis/availexpr.ml: Format Lang Map RegSet Stdlib String Worklist
