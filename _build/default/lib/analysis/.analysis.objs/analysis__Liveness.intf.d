lib/analysis/liveness.mli: Lang Lattice
