lib/analysis/dominator.mli: Lang
