lib/analysis/liveness.ml: Format Lang RegSet String VarSet Worklist
