lib/analysis/lattice.mli: Format
