lib/analysis/constdom.mli: Lang Lattice
