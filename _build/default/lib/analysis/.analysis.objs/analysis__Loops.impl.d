lib/analysis/loops.ml: Dominator Hashtbl LabelMap Lang List String VarSet
