lib/analysis/availexpr.mli: Format Lang Lattice Map
