lib/analysis/dominator.ml: Hashtbl LabelMap Lang List Option String VarSet
