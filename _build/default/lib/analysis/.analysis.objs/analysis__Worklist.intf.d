lib/analysis/worklist.mli: Lang Lattice
