lib/analysis/copydom.mli: Lang Lattice
