lib/analysis/loops.mli: Lang
