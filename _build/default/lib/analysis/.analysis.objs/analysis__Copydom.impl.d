lib/analysis/copydom.ml: Format Lang String VarMap Worklist
