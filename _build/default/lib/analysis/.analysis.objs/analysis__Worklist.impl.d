lib/analysis/worklist.ml: LabelMap Lang Lattice List Queue
