(** The abstract domain of constant propagation (Sec. 7.2: ConstProp
    is one of the four verified optimizations; its invariant is
    [Iid]).

    Facts track known constant values of registers {e and} of
    non-atomic locations.  The location facts record the value of the
    thread's own latest write: resolving a later non-atomic read to
    that value is a refinement in PS2.1 (the read is free to pick the
    thread's own message).  The justification breaks exactly when the
    thread's non-atomic view may grow past its own message, so
    location facts are killed at {e acquire} reads (which join a
    message view into [Tna]), at acquire/sc fences, at CAS with an
    acquire read part and at call boundaries.  Relaxed accesses and
    release writes kill nothing — ConstProp is allowed across them. *)

type const = Known of Lang.Ast.value | Unknown

type t =
  | Unreached
  | Env of {
      regs : const Lang.Ast.VarMap.t;  (** absent = unknown ([Top]) *)
      vars : const Lang.Ast.VarMap.t;
    }

module L : Lattice.S with type t = t

val init : t
(** The entry state: registers are all 0 (the machine initializes
    them), locations unknown (another thread may have written). *)

val reg_value : Lang.Ast.reg -> t -> Lang.Ast.value option
val var_value : Lang.Ast.var -> t -> Lang.Ast.value option

val eval : t -> Lang.Ast.expr -> Lang.Ast.value option
(** Abstract evaluation: [Some v] if the expression is a compile-time
    constant in this state. *)

val transfer_instr : Lang.Ast.instr -> t -> t
val transfer_term : Lang.Ast.terminator -> t -> t

type result = {
  before : Lang.Ast.label -> t list;
      (** abstract state before each instruction of the block *)
  entry : Lang.Ast.label -> t;
}

val analyze : Lang.Ast.codeheap -> result
