(** Liveness analysis [Lv_Analyzer] (Sec. 7.1).

    Computes, for every program point, the set of live registers and
    live non-atomic locations; the complement is the paper's dead set
    [Lnl].  The analysis is backward, with the weak-memory-aware kill
    rule of Fig. 15:

    - a {e release write} (and a release/sc fence, and a CAS with a
      release write part) makes {e every} non-atomic location live —
      values written before a release may be observed by acquirers,
      so no preceding write is dead across it;
    - relaxed writes and relaxed/acquire reads do {e not} revive
      locations: DCE is allowed across them (Sec. 7.1);
    - call boundaries are fully conservative (the analysis is
      intraprocedural).

    Live sets are explicit finite sets drawn from the code heap's own
    universe of registers and non-atomically accessed locations (a
    write to anything outside that universe does not occur in the code
    heap, so nothing is lost).  At function exits everything is
    conservatively live by default — Fig. 15 annotates its example
    with an empty {e dead} set at the end; tests override [exit_live]
    to study the bound's effect. *)

type t = { regs : Lang.Ast.RegSet.t; vars : Lang.Ast.VarSet.t }

(** The universe a code heap's live sets range over. *)
type universe = { all_regs : Lang.Ast.RegSet.t; all_vars : Lang.Ast.VarSet.t }

val universe_of : Lang.Ast.codeheap -> universe
(** All registers, and all locations accessed non-atomically. *)

module L : Lattice.S with type t = t

val none : t
val of_sets : regs:Lang.Ast.RegSet.t -> vars:Lang.Ast.VarSet.t -> t
val all : universe -> t
val reg_live : Lang.Ast.reg -> t -> bool
val var_live : Lang.Ast.var -> t -> bool

val transfer_instr : universe -> Lang.Ast.instr -> t -> t
(** One backward step: live-before from live-after. *)

val transfer_term : universe -> Lang.Ast.terminator -> t -> t

type result = {
  after : Lang.Ast.label -> t list;
      (** live set after each instruction of the block — the
          complement of the [Lnl] the transformation consults *)
  entry : Lang.Ast.label -> t;
}

val analyze : ?exit_live:t -> Lang.Ast.codeheap -> result
(** [exit_live] defaults to everything in the universe. *)
