(** Copy propagation facts: which register is a live copy of which
    other register.

    A fact [r ↦ r0] means [r] currently holds the same value as [r0]
    (established by [r := r0]); uses of [r] can be replaced by [r0],
    which in turn exposes more constants/CSE and lets DCE drop the
    copy.  Copies are over registers only — thread-private — so no
    memory-model subtlety arises; facts are killed when either side is
    redefined, and at call boundaries.  (CSE introduces exactly such
    copies, making [copyprop] its natural companion pass.) *)

type t = Unreached | Copies of Lang.Ast.reg Lang.Ast.VarMap.t

module L : Lattice.S with type t = t

val copy_of : Lang.Ast.reg -> t -> Lang.Ast.reg option
(** The canonical original register [r0] for [r], if any. *)

val transfer_instr : Lang.Ast.instr -> t -> t
val transfer_term : Lang.Ast.terminator -> t -> t

type result = {
  before : Lang.Ast.label -> t list;
  entry : Lang.Ast.label -> t;
}

val analyze : Lang.Ast.codeheap -> result
