open Lang.Ast

type t = { regs : RegSet.t; vars : VarSet.t }
type universe = { all_regs : RegSet.t; all_vars : VarSet.t }

let universe_of (ch : codeheap) =
  let all_regs = Lang.Cfg.regs_of_codeheap ch in
  let all_vars =
    Lang.Cfg.fold_instrs ch ~init:VarSet.empty ~f:(fun acc _ i ->
        match i with
        | Load (_, x, Lang.Modes.Na) | Store (x, _, Lang.Modes.WNa) ->
            VarSet.add x acc
        | _ -> acc)
  in
  { all_regs; all_vars }

module L = struct
  type nonrec t = t

  let bot = { regs = RegSet.empty; vars = VarSet.empty }

  let join a b =
    { regs = RegSet.union a.regs b.regs; vars = VarSet.union a.vars b.vars }

  let equal a b = RegSet.equal a.regs b.regs && VarSet.equal a.vars b.vars

  let pp ppf t =
    Format.fprintf ppf "regs:{%s} vars:{%s}"
      (String.concat "," (RegSet.elements t.regs))
      (String.concat "," (VarSet.elements t.vars))
end

let none = L.bot
let of_sets ~regs ~vars = { regs; vars }
let all u = { regs = u.all_regs; vars = u.all_vars }
let reg_live r t = RegSet.mem r t.regs
let var_live x t = VarSet.mem x t.vars
let kill_reg r t = { t with regs = RegSet.remove r t.regs }
let kill_var x t = { t with vars = VarSet.remove x t.vars }
let gen_regs e t = { t with regs = RegSet.union t.regs (expr_regs e) }
let gen_var x t = { t with vars = VarSet.add x t.vars }

(* Does this instruction synchronize outgoing observations (Fig. 15)? *)
let releases = function
  | Store (_, _, Lang.Modes.WRel) -> true
  | Cas (_, _, _, _, _, Lang.Modes.WRel) -> true
  | Fence (Lang.Modes.FRel | Lang.Modes.FSc) -> true
  | _ -> false

let transfer_instr u i live =
  let live =
    if releases i then { live with vars = u.all_vars } else live
  in
  match i with
  | Load (r, x, Lang.Modes.Na) ->
      (* A load into a dead register is itself eliminable, so it needs
         nothing (matching the transformation, which drops it). *)
      if reg_live r live then gen_var x (kill_reg r live) else live
  | Load (r, _, _) ->
      (* Atomic load: defines [r]; atomic locations are never
         optimized, so their liveness is not tracked. *)
      kill_reg r live
  | Store (x, e, Lang.Modes.WNa) ->
      if var_live x live then gen_regs e (kill_var x live) else live
  | Store (_, e, _) -> gen_regs e live
  | Cas (r, _, er, ew, _, _) -> gen_regs er (gen_regs ew (kill_reg r live))
  | Skip -> live
  | Assign (r, e) ->
      if reg_live r live then gen_regs e (kill_reg r live)
      else (* dead definition: its uses do not revive anything *) live
  | Print e -> gen_regs e live
  | Fence _ -> live

let transfer_term u t live =
  match t with
  | Jmp _ -> live
  | Be (e, _, _) -> gen_regs e live
  | Call _ -> all u (* intraprocedural: fully conservative at calls *)
  | Return -> live

type result = { after : label -> t list; entry : label -> t }

module B = Worklist.Backward (L)

let analyze ?exit_live (ch : codeheap) =
  let u = universe_of ch in
  let exit_live = match exit_live with Some l -> l | None -> all u in
  let tf = { B.instr = transfer_instr u; term = transfer_term u } in
  let r = B.solve ch ~exit_init:exit_live tf in
  { after = r.B.after_instrs; entry = r.B.entry_state }
