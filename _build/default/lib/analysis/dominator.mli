(** Dominator computation over a code heap's CFG (the textbook
    iterative algorithm over reverse postorder), used to find natural
    loops for loop-invariant code motion. *)

type t

val compute : Lang.Ast.codeheap -> t

val dominates : t -> Lang.Ast.label -> Lang.Ast.label -> bool
(** [dominates t a b]: every path from the entry to [b] goes through
    [a].  Reflexive.  Unreachable blocks are dominated by
    everything. *)

val idom : t -> Lang.Ast.label -> Lang.Ast.label option
(** Immediate dominator ([None] for the entry and unreachable
    blocks). *)

val dominators_of : t -> Lang.Ast.label -> Lang.Ast.label list
(** All dominators of a label, entry first. *)
