(** Join-semilattices for dataflow analysis.

    Analyses in this library follow the CompCert/Kildall recipe the
    paper's Sec. 7 refers to: facts form a join-semilattice, transfer
    functions are monotone, and {!Worklist} iterates to a fixpoint.
    Joins happen where control-flow edges meet, so the lattice order
    reads "less precise". *)

module type S = sig
  type t

  val bot : t
  (** The most precise element (used for unreached code). *)

  val join : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** The flat lattice over a value type: [Bot ⊑ Known v ⊑ Top], the
    shape of constant-propagation facts. *)
module Flat (V : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) : sig
  type t = Bot | Known of V.t | Top

  include S with type t := t

  val known : V.t -> t
  val get : t -> V.t option
end
