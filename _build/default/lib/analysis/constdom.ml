open Lang.Ast

type const = Known of value | Unknown

(* Maps are sparse: absent bindings mean [Unknown], and [Unknown] is
   never stored, so map equality is extensional. *)
type t =
  | Unreached
  | Env of { regs : const VarMap.t; vars : const VarMap.t }

let set_const k c m =
  match c with Unknown -> VarMap.remove k m | Known _ -> VarMap.add k c m

let join_maps =
  VarMap.merge (fun _ a b ->
      match (a, b) with
      | Some (Known v1), Some (Known v2) when v1 = v2 -> Some (Known v1)
      | _ -> None)

module L = struct
  type nonrec t = t

  let bot = Unreached

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Env e1, Env e2 ->
        Env { regs = join_maps e1.regs e2.regs; vars = join_maps e1.vars e2.vars }

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Env e1, Env e2 ->
        VarMap.equal ( = ) e1.regs e2.regs && VarMap.equal ( = ) e1.vars e2.vars
    | _ -> false

  let pp_map ppf m =
    VarMap.iter
      (fun k c ->
        match c with
        | Known v -> Format.fprintf ppf "%s=%d " k v
        | Unknown -> ())
      m

  let pp ppf = function
    | Unreached -> Format.pp_print_string ppf "unreached"
    | Env e ->
        Format.fprintf ppf "regs[%a] vars[%a]" pp_map e.regs pp_map e.vars
end

(* Registers start at 0 in the machine; locations are unknown (other
   threads may have written before this thread reads). *)
let init = Env { regs = VarMap.empty; vars = VarMap.empty }

(* NB. [init]'s empty register map means "unknown".  Registers do
   start at 0, but a function may also be entered by an internal call
   after the registers changed, so per-function entry facts stay
   conservative. *)

let reg_value r = function
  | Unreached -> None
  | Env e -> (
      match VarMap.find_opt r e.regs with
      | Some (Known v) -> Some v
      | _ -> None)

let var_value x = function
  | Unreached -> None
  | Env e -> (
      match VarMap.find_opt x e.vars with
      | Some (Known v) -> Some v
      | _ -> None)

let eval st e =
  match st with
  | Unreached -> None
  | Env _ ->
      let exception Unknown_reg in
      let lookup r =
        match reg_value r st with Some v -> v | None -> raise Unknown_reg
      in
      (try Some (Lang.Expr.eval lookup e) with Unknown_reg -> None)

let set_reg r c = function
  | Unreached -> Unreached
  | Env e -> Env { e with regs = set_const r c e.regs }

let set_var x c = function
  | Unreached -> Unreached
  | Env e -> Env { e with vars = set_const x c e.vars }

let kill_vars = function
  | Unreached -> Unreached
  | Env e -> Env { e with vars = VarMap.empty }

let kill_all = function
  | Unreached -> Unreached
  | Env _ -> Env { regs = VarMap.empty; vars = VarMap.empty }

(* Does the instruction's read part acquire (join a message view into
   the thread view, growing [Tna] unpredictably)? *)
let acquires = function
  | Load (_, _, Lang.Modes.Acq) -> true
  | Cas (_, _, _, _, Lang.Modes.Acq, _) -> true
  | Fence (Lang.Modes.FAcq | Lang.Modes.FSc) -> true
  | _ -> false

let transfer_instr i st =
  match st with
  | Unreached -> Unreached
  | Env _ -> (
      let st = if acquires i then kill_vars st else st in
      match i with
      | Skip | Print _ | Fence _ -> st
      | Assign (r, e) ->
          let c = match eval st e with Some v -> Known v | None -> Unknown in
          set_reg r c st
      | Load (r, x, Lang.Modes.Na) ->
          let c =
            match var_value x st with Some v -> Known v | None -> Unknown
          in
          set_reg r c st
      | Load (r, _, _) -> set_reg r Unknown st
      | Store (x, e, Lang.Modes.WNa) ->
          let c = match eval st e with Some v -> Known v | None -> Unknown in
          set_var x c st
      | Store (_, _, _) -> st
      | Cas (r, _, _, _, _, _) -> set_reg r Unknown st)

let transfer_term t st =
  match t with
  | Jmp _ | Be _ | Return -> st
  | Call _ ->
      (* Registers are shared with the callee in this machine, and the
         callee may read/write any location. *)
      kill_all st

type result = { before : label -> t list; entry : label -> t }

module F = Worklist.Forward (L)

let analyze (ch : codeheap) =
  let tf = { F.instr = transfer_instr; term = transfer_term } in
  let r = F.solve ch ~init tf in
  { before = r.F.before_instrs; entry = r.F.entry_state }
