open Lang.Ast

type rhs = Expr of expr | LoadNa of var

module RhsMap = Map.Make (struct
  type t = rhs

  let compare = Stdlib.compare
end)

type t = Unreached | Avail of reg RhsMap.t

module L = struct
  type nonrec t = t

  let bot = Unreached

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Avail m1, Avail m2 ->
        Avail
          (RhsMap.merge
             (fun _ r1 r2 ->
               match (r1, r2) with
               | Some r1, Some r2 when String.equal r1 r2 -> Some r1
               | _ -> None)
             m1 m2)

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Avail m1, Avail m2 -> RhsMap.equal String.equal m1 m2
    | _ -> false

  let pp ppf = function
    | Unreached -> Format.pp_print_string ppf "unreached"
    | Avail m ->
        RhsMap.iter
          (fun rhs r ->
            match rhs with
            | Expr e -> Format.fprintf ppf "%s=%s " r (Lang.Pp.expr_to_string e)
            | LoadNa x -> Format.fprintf ppf "%s=%s.na " r x)
          m
end

let pp_rhs ppf = function
  | Expr e -> Lang.Pp.pp_expr ppf e
  | LoadNa x -> Format.fprintf ppf "%s.na" x

let lookup rhs = function
  | Unreached -> None
  | Avail m -> RhsMap.find_opt rhs m

let map f = function Unreached -> Unreached | Avail m -> Avail (f m)

(* Remove the facts held in [r] and the facts whose expression
   mentions [r]. *)
let kill_reg r =
  map
    (RhsMap.filter (fun rhs holder ->
         (not (String.equal holder r))
         &&
         match rhs with
         | Expr e -> not (RegSet.mem r (Lang.Ast.expr_regs e))
         | LoadNa _ -> true))

let kill_loads_of x =
  map (RhsMap.filter (fun rhs _ -> rhs <> LoadNa x))

let kill_all_loads =
  map (RhsMap.filter (fun rhs _ -> match rhs with LoadNa _ -> false | Expr _ -> true))

let add rhs r = map (RhsMap.add rhs r)

let acquires = function
  | Load (_, _, Lang.Modes.Acq) -> true
  | Cas (_, _, _, _, Lang.Modes.Acq, _) -> true
  | Fence (Lang.Modes.FAcq | Lang.Modes.FSc) -> true
  | _ -> false

(* Is an expression worth remembering (non-trivial and register-pure)? *)
let memorable r = function
  | Reg _ | Val _ -> false
  | Bin _ as e -> not (RegSet.mem r (Lang.Ast.expr_regs e))

let transfer_instr i st =
  match st with
  | Unreached -> Unreached
  | Avail _ -> (
      let st = if acquires i then kill_all_loads st else st in
      match i with
      | Skip | Print _ | Fence _ -> st
      | Assign (r, e) ->
          let st = kill_reg r st in
          if memorable r e && lookup (Expr e) st = None then add (Expr e) r st
          else st
      | Load (r, x, Lang.Modes.Na) ->
          (* The remembered message stays readable after later na
             reads (they move Trlx only, and na reads are bounded by
             Tna).  Keep the {e oldest} holder: a reload must not
             steal the fact, or a preheader fact would not survive the
             loop's back-edge join (LInv relies on this). *)
          let st = kill_reg r st in
          if lookup (LoadNa x) st = None then add (LoadNa x) r st else st
      | Load (r, _, _) -> kill_reg r st
      | Store (x, e, Lang.Modes.WNa) -> (
          let st = kill_loads_of x st in
          (* Store-to-load forwarding: after x := r', reading x back
             yields r'. *)
          match e with
          | Reg r' -> add (LoadNa x) r' st
          | _ -> st)
      | Store (_, _, _) -> st
      | Cas (r, _, _, _, _, _) -> kill_reg r st)

let transfer_term t st =
  match t with
  | Jmp _ | Be _ | Return -> st
  | Call _ -> map (fun _ -> RhsMap.empty) st

type result = { before : label -> t list; entry : label -> t }

module F = Worklist.Forward (L)

let analyze (ch : codeheap) =
  let tf = { F.instr = transfer_instr; term = transfer_term } in
  let r = F.solve ch ~init:(Avail RhsMap.empty) tf in
  { before = r.F.before_instrs; entry = r.F.entry_state }
