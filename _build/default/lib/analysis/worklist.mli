(** Kildall's worklist algorithm over a code heap, in both directions.

    The fixpoint is block-granular: the result maps each label to the
    analysis state at the block {e entry} (forward) or at the block
    {e exit} (backward).  Per-instruction states inside a block are
    recovered deterministically by replaying the block's transfer
    ({!Forward.solve} returns a [replay] helper), which is how the
    transformation passes consume analysis results instruction by
    instruction, CompCert-style. *)

module Forward (L : Lattice.S) : sig
  type transfer = {
    instr : Lang.Ast.instr -> L.t -> L.t;
    term : Lang.Ast.terminator -> L.t -> L.t;
  }

  type result = {
    entry_state : Lang.Ast.label -> L.t;  (** state at block entry *)
    exit_state : Lang.Ast.label -> L.t;
    before_instrs : Lang.Ast.label -> L.t list;
        (** state before each instruction of the block, in order *)
  }

  val solve : Lang.Ast.codeheap -> init:L.t -> transfer -> result
  (** [init] is the state at the function entry; unreached blocks get
      [L.bot]. *)
end

module Backward (L : Lattice.S) : sig
  type transfer = {
    instr : Lang.Ast.instr -> L.t -> L.t;  (** from after to before *)
    term : Lang.Ast.terminator -> L.t -> L.t;
        (** from joined successor state to before-terminator *)
  }

  type result = {
    exit_state : Lang.Ast.label -> L.t;  (** state after the block *)
    entry_state : Lang.Ast.label -> L.t;
    after_instrs : Lang.Ast.label -> L.t list;
        (** state after each instruction of the block, in order *)
  }

  val solve :
    Lang.Ast.codeheap -> exit_init:L.t -> transfer -> result
  (** [exit_init] is the state assumed after [Return] blocks (and it
      seeds every block, so the fixpoint is sound for loops). *)
end
