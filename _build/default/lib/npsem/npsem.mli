(** The non-preemptive semantics (Sec. 4, Fig. 10).

    The non-preemptive machine runs the {e same} thread-step relation
    as PS2.1 ({!Ps.Thread.steps}) but threads a "switch bit" [β]
    through execution:

    - an [NA] step (non-atomic access, or no memory/synchronization
      effect) turns the bit {e off} ([•]);
    - an [AT] step (atomic access, update, fence, output) turns it
      {e on} ([◦]);
    - promise and reserve steps require the bit on and keep it on;
    - cancel steps are allowed anywhere and leave the bit unchanged;
    - a context switch requires the bit on.

    Consequently a block of non-atomic accesses runs without
    interruption — but its writes may still have been promised before
    the block, and its reads still pick among all view-compatible
    messages, which is why the non-preemptive machine produces exactly
    the behaviours of the interleaving one (Theorem 4.1; validated
    exhaustively by {!Explore} on the litmus corpus, experiment E9). *)

type t = {
  world : Ps.Machine.world;
  switchable : bool;  (** the switch bit [β]; [true] is [◦] *)
}

val init : Lang.Ast.program -> (t, string) result
(** Initial configuration: switch bit on. *)

val bit_after : Ps.Event.te -> before:bool -> bool option
(** [bit_after te ~before] is the switch bit after a thread step
    labelled [te] from a configuration with bit [before], or [None]
    if the step is forbidden (promise/reserve with the bit off) —
    the first rule of Fig. 10. *)

val may_switch : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
