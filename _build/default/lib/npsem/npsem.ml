type t = { world : Ps.Machine.world; switchable : bool }

let init p =
  match Ps.Machine.init p with
  | Ok world -> Ok { world; switchable = true }
  | Error e -> Error e

let bit_after te ~before =
  match Ps.Event.classify te with
  | Ps.Event.NA -> Some false
  | Ps.Event.AT -> Some true
  | Ps.Event.PRC -> (
      match te with
      | Ps.Event.Ccl -> Some before
      | _ -> if before then Some true else None)

let may_switch t = t.switchable

let compare a b =
  let c = Ps.Machine.compare a.world b.world in
  if c <> 0 then c else Bool.compare a.switchable b.switchable

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "%s %a"
    (if t.switchable then "[o]" else "[*]")
    Ps.Machine.pp t.world
