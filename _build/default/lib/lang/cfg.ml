open Ast

let successors (b : block) =
  match b.term with
  | Jmp l -> [ l ]
  | Be (_, l1, l2) -> if String.equal l1 l2 then [ l1 ] else [ l1; l2 ]
  | Call (_, lret) -> [ lret ]
  | Return -> []

let predecessors (ch : codeheap) =
  let init =
    LabelMap.map (fun _ -> []) ch.blocks
  in
  LabelMap.fold
    (fun l b acc ->
      List.fold_left
        (fun acc succ ->
          match LabelMap.find_opt succ acc with
          | Some preds -> LabelMap.add succ (l :: preds) acc
          | None -> acc)
        acc (successors b))
    ch.blocks init

let reachable (ch : codeheap) =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit l =
    if not (Hashtbl.mem seen l) then (
      Hashtbl.add seen l ();
      order := l :: !order;
      match LabelMap.find_opt l ch.blocks with
      | Some b -> List.iter visit (successors b)
      | None -> ())
  in
  visit ch.entry;
  List.rev !order

let postorder (ch : codeheap) =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit l =
    if not (Hashtbl.mem seen l) then (
      Hashtbl.add seen l ();
      (match LabelMap.find_opt l ch.blocks with
      | Some b -> List.iter visit (successors b)
      | None -> ());
      out := l :: !out)
  in
  visit ch.entry;
  List.rev !out

let reverse_postorder ch = List.rev (postorder ch)

let fold_instrs ch ~init ~f =
  LabelMap.fold
    (fun l b acc -> List.fold_left (fun acc i -> f acc l i) acc b.instrs)
    ch.blocks init

let vars_of_codeheap ch =
  fold_instrs ch ~init:VarSet.empty ~f:(fun acc _ i ->
      match instr_var_accessed i with
      | Some x -> VarSet.add x acc
      | None -> acc)

let regs_of_codeheap ch =
  LabelMap.fold
    (fun _ b acc ->
      let acc =
        List.fold_left
          (fun acc i ->
            let acc = RegSet.union acc (instr_regs_used i) in
            match instr_reg_defined i with
            | Some r -> RegSet.add r acc
            | None -> acc)
          acc b.instrs
      in
      RegSet.union acc (term_regs_used b.term))
    ch.blocks RegSet.empty

let vars_of_program (p : program) =
  FnameMap.fold
    (fun _ ch acc -> VarSet.union acc (vars_of_codeheap ch))
    p.code VarSet.empty

let callees ch =
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  LabelMap.iter
    (fun _ b ->
      match b.term with
      | Call (f, _) when not (Hashtbl.mem seen f) ->
          Hashtbl.add seen f ();
          out := f :: !out
      | _ -> ())
    ch.blocks;
  List.rev !out
