(** Pretty-printing of CSimpRTL programs in the concrete syntax
    accepted by {!Parse} (round-trip: [Parse.program_of_string] after
    {!program_to_string} yields an equal program). *)

val pp_binop : Format.formatter -> Ast.binop -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_instr : Format.formatter -> Ast.instr -> unit
val pp_terminator : Format.formatter -> Ast.terminator -> unit
val pp_block : Format.formatter -> Ast.block -> unit
val pp_codeheap : name:Ast.fname -> Format.formatter -> Ast.codeheap -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val expr_to_string : Ast.expr -> string
val instr_to_string : Ast.instr -> string
val program_to_string : Ast.program -> string
