(** A small embedded DSL for constructing CSimpRTL programs in OCaml.

    Used heavily by the litmus corpus, tests and examples:

    {[
      let sb =
        Build.(
          program ~atomics:[ "x"; "y" ]
            [
              proc "t1"
                [ blk "L0" [ store "x" ~mode:WRlx (i 1);
                             load "r1" "y" ~mode:Rlx ] ret ];
              proc "t2"
                [ blk "L0" [ store "y" ~mode:WRlx (i 1);
                             load "r2" "x" ~mode:Rlx ] ret ];
            ]
            ~threads:[ "t1"; "t2" ])
    ]} *)

val i : int -> Ast.expr
val r : Ast.reg -> Ast.expr
val ( + ) : Ast.expr -> Ast.expr -> Ast.expr
val ( - ) : Ast.expr -> Ast.expr -> Ast.expr
val ( * ) : Ast.expr -> Ast.expr -> Ast.expr
val ( == ) : Ast.expr -> Ast.expr -> Ast.expr
val ( != ) : Ast.expr -> Ast.expr -> Ast.expr
val ( < ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <= ) : Ast.expr -> Ast.expr -> Ast.expr

val load : Ast.reg -> Ast.var -> mode:Modes.read -> Ast.instr
val store : Ast.var -> mode:Modes.write -> Ast.expr -> Ast.instr

val cas :
  Ast.reg ->
  Ast.var ->
  expect:Ast.expr ->
  write:Ast.expr ->
  rmode:Modes.read ->
  wmode:Modes.write ->
  Ast.instr

val assign : Ast.reg -> Ast.expr -> Ast.instr
val skip : Ast.instr
val print : Ast.expr -> Ast.instr
val fence : Modes.fence -> Ast.instr
val jmp : Ast.label -> Ast.terminator
val be : Ast.expr -> Ast.label -> Ast.label -> Ast.terminator
val call : Ast.fname -> Ast.label -> Ast.terminator
val ret : Ast.terminator
val blk : Ast.label -> Ast.instr list -> Ast.terminator -> Ast.label * Ast.block

val proc :
  ?entry:Ast.label ->
  Ast.fname ->
  (Ast.label * Ast.block) list ->
  Ast.fname * Ast.codeheap
(** [entry] defaults to the label of the first block. *)

val program :
  ?atomics:Ast.var list ->
  (Ast.fname * Ast.codeheap) list ->
  threads:Ast.fname list ->
  Ast.program
(** Assembles and well-formedness-checks ({!Wf.check_exn}) the
    program. *)
