type reg = string
type var = string
type label = string
type fname = string
type value = int
type binop = Add | Sub | Mul | Eq | Ne | Lt | Le | Gt | Ge
type expr = Reg of reg | Val of value | Bin of binop * expr * expr

type instr =
  | Load of reg * var * Modes.read
  | Store of var * expr * Modes.write
  | Cas of reg * var * expr * expr * Modes.read * Modes.write
  | Skip
  | Assign of reg * expr
  | Print of expr
  | Fence of Modes.fence

type terminator =
  | Jmp of label
  | Be of expr * label * label
  | Call of fname * label
  | Return

type block = { instrs : instr list; term : terminator }

module LabelMap = Map.Make (String)
module VarSet = Set.Make (String)
module VarMap = Map.Make (String)
module RegSet = Set.Make (String)
module FnameMap = Map.Make (String)

type codeheap = { entry : label; blocks : block LabelMap.t }
type code = codeheap FnameMap.t

type program = {
  code : code;
  atomics : VarSet.t;
  threads : fname list;
}

let rec equal_expr a b =
  match (a, b) with
  | Reg r1, Reg r2 -> String.equal r1 r2
  | Val v1, Val v2 -> v1 = v2
  | Bin (op1, l1, r1), Bin (op2, l2, r2) ->
      op1 = op2 && equal_expr l1 l2 && equal_expr r1 r2
  | _ -> false

let compare_expr (a : expr) (b : expr) = Stdlib.compare a b

let equal_instr (a : instr) (b : instr) =
  match (a, b) with
  | Load (r1, x1, o1), Load (r2, x2, o2) ->
      String.equal r1 r2 && String.equal x1 x2 && o1 = o2
  | Store (x1, e1, o1), Store (x2, e2, o2) ->
      String.equal x1 x2 && equal_expr e1 e2 && o1 = o2
  | Cas (r1, x1, er1, ew1, or1, ow1), Cas (r2, x2, er2, ew2, or2, ow2) ->
      String.equal r1 r2 && String.equal x1 x2 && equal_expr er1 er2
      && equal_expr ew1 ew2 && or1 = or2 && ow1 = ow2
  | Skip, Skip -> true
  | Assign (r1, e1), Assign (r2, e2) -> String.equal r1 r2 && equal_expr e1 e2
  | Print e1, Print e2 -> equal_expr e1 e2
  | Fence f1, Fence f2 -> f1 = f2
  | _ -> false

let equal_terminator (a : terminator) (b : terminator) =
  match (a, b) with
  | Jmp l1, Jmp l2 -> String.equal l1 l2
  | Be (e1, l1, l1'), Be (e2, l2, l2') ->
      equal_expr e1 e2 && String.equal l1 l2 && String.equal l1' l2'
  | Call (f1, l1), Call (f2, l2) -> String.equal f1 f2 && String.equal l1 l2
  | Return, Return -> true
  | _ -> false

let equal_block a b =
  List.length a.instrs = List.length b.instrs
  && List.for_all2 equal_instr a.instrs b.instrs
  && equal_terminator a.term b.term

let equal_codeheap a b =
  String.equal a.entry b.entry && LabelMap.equal equal_block a.blocks b.blocks

let equal_code a b = FnameMap.equal equal_codeheap a b

let equal_program a b =
  equal_code a.code b.code
  && VarSet.equal a.atomics b.atomics
  && List.length a.threads = List.length b.threads
  && List.for_all2 String.equal a.threads b.threads

let block instrs term = { instrs; term }

let codeheap ~entry bindings =
  { entry; blocks = LabelMap.of_seq (List.to_seq bindings) }

let code_of_list bindings = FnameMap.of_seq (List.to_seq bindings)

let program ?(atomics = []) ~code threads =
  { code = code_of_list code; atomics = VarSet.of_list atomics; threads }

let rec expr_regs = function
  | Reg r -> RegSet.singleton r
  | Val _ -> RegSet.empty
  | Bin (_, l, r) -> RegSet.union (expr_regs l) (expr_regs r)

let instr_regs_used = function
  | Load _ | Skip | Fence _ -> RegSet.empty
  | Store (_, e, _) | Assign (_, e) | Print e -> expr_regs e
  | Cas (_, _, er, ew, _, _) -> RegSet.union (expr_regs er) (expr_regs ew)

let instr_reg_defined = function
  | Load (r, _, _) | Cas (r, _, _, _, _, _) | Assign (r, _) -> Some r
  | Store _ | Skip | Print _ | Fence _ -> None

let term_regs_used = function
  | Jmp _ | Return -> RegSet.empty
  | Be (e, _, _) -> expr_regs e
  | Call _ -> RegSet.empty

let instr_var_accessed = function
  | Load (_, x, _) | Store (x, _, _) | Cas (_, x, _, _, _, _) -> Some x
  | Skip | Assign _ | Print _ | Fence _ -> None

let is_na_instr = function
  | Load (_, _, Modes.Na) | Store (_, _, Modes.WNa) -> true
  | Skip | Assign _ -> true
  | Load _ | Store _ | Cas _ | Print _ | Fence _ -> false
