(** S-expression serialization of CSimpRTL programs — a stable
    machine-readable interchange format for tooling (test goldens,
    external drivers), independent of the human-facing concrete syntax
    of {!Parse}.

    The format is self-describing and round-trips exactly:

    {v
    (program (atomics x y) (threads t1 t2)
      (proc t1 (entry L0)
        (block L0
          (store x rlx (int 1))
          (load r1 y rlx)
          (print (reg r1))
          (return))))
    v} *)

(** A minimal s-expression tree. *)
type t = Atom of string | List of t list

val to_string : t -> string
val parse : string -> (t, string) result

val sexp_of_expr : Ast.expr -> t
val expr_of_sexp : t -> (Ast.expr, string) result
val sexp_of_instr : Ast.instr -> t
val instr_of_sexp : t -> (Ast.instr, string) result
val sexp_of_program : Ast.program -> t
val program_of_sexp : t -> (Ast.program, string) result

val program_to_string : Ast.program -> string
val program_of_string : string -> (Ast.program, string) result
