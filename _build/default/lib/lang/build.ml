let i n = Ast.Val n
let r name = Ast.Reg name
let ( + ) a b = Ast.Bin (Ast.Add, a, b)
let ( - ) a b = Ast.Bin (Ast.Sub, a, b)
let ( * ) a b = Ast.Bin (Ast.Mul, a, b)
let ( == ) a b = Ast.Bin (Ast.Eq, a, b)
let ( != ) a b = Ast.Bin (Ast.Ne, a, b)
let ( < ) a b = Ast.Bin (Ast.Lt, a, b)
let ( <= ) a b = Ast.Bin (Ast.Le, a, b)
let load reg var ~mode = Ast.Load (reg, var, mode)
let store var ~mode e = Ast.Store (var, e, mode)

let cas reg var ~expect ~write ~rmode ~wmode =
  Ast.Cas (reg, var, expect, write, rmode, wmode)

let assign reg e = Ast.Assign (reg, e)
let skip = Ast.Skip
let print e = Ast.Print e
let fence m = Ast.Fence m
let jmp l = Ast.Jmp l
let be e l1 l2 = Ast.Be (e, l1, l2)
let call f lret = Ast.Call (f, lret)
let ret = Ast.Return
let blk label instrs term = (label, Ast.block instrs term)

let proc ?entry name blocks =
  let entry =
    match (entry, blocks) with
    | Some e, _ -> e
    | None, (l, _) :: _ -> l
    | None, [] -> invalid_arg "Build.proc: empty function body"
  in
  (name, Ast.codeheap ~entry blocks)

let program ?(atomics = []) procs ~threads =
  Wf.check_exn (Ast.program ~atomics ~code:procs threads)
