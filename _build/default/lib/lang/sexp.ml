type t = Atom of string | List of t list

(* ------------------------------------------------------------------ *)
(* Printing and parsing the tree *)

let rec to_string = function
  | Atom a -> a
  | List l -> "(" ^ String.concat " " (List.map to_string l) ^ ")"

let parse src =
  let n = String.length src in
  let pos = ref 0 in
  let error msg = Error (Printf.sprintf "at %d: %s" !pos msg) in
  let rec skip_ws () =
    if !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\n' || src.[!pos] = '\t'
                    || src.[!pos] = '\r')
    then (incr pos; skip_ws ())
  in
  let atom_char c =
    c <> '(' && c <> ')' && c <> ' ' && c <> '\n' && c <> '\t' && c <> '\r'
  in
  let rec sexp () =
    skip_ws ();
    if !pos >= n then error "unexpected end of input"
    else if src.[!pos] = '(' then (
      incr pos;
      let rec items acc =
        skip_ws ();
        if !pos >= n then error "unclosed '('"
        else if src.[!pos] = ')' then (
          incr pos;
          Ok (List (List.rev acc)))
        else
          match sexp () with
          | Ok s -> items (s :: acc)
          | Error e -> Error e
      in
      items [])
    else if src.[!pos] = ')' then error "unexpected ')'"
    else (
      let start = !pos in
      while !pos < n && atom_char src.[!pos] do incr pos done;
      Ok (Atom (String.sub src start (!pos - start))))
  in
  match sexp () with
  | Ok s ->
      let trailing () =
        skip_ws ();
        if !pos < n then Error "trailing input" else Ok s
      in
      trailing ()
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Encoding *)

let ( let* ) = Result.bind

let rmode_str m = Format.asprintf "%a" Modes.pp_read m
let wmode_str m = Format.asprintf "%a" Modes.pp_write m
let fmode_str m = Format.asprintf "%a" Modes.pp_fence m

let binop_str = function
  | Ast.Add -> "add"
  | Ast.Sub -> "sub"
  | Ast.Mul -> "mul"
  | Ast.Eq -> "eq"
  | Ast.Ne -> "ne"
  | Ast.Lt -> "lt"
  | Ast.Le -> "le"
  | Ast.Gt -> "gt"
  | Ast.Ge -> "ge"

let binop_of = function
  | "add" -> Ok Ast.Add
  | "sub" -> Ok Ast.Sub
  | "mul" -> Ok Ast.Mul
  | "eq" -> Ok Ast.Eq
  | "ne" -> Ok Ast.Ne
  | "lt" -> Ok Ast.Lt
  | "le" -> Ok Ast.Le
  | "gt" -> Ok Ast.Gt
  | "ge" -> Ok Ast.Ge
  | s -> Error ("unknown binop " ^ s)

let rec sexp_of_expr = function
  | Ast.Reg r -> List [ Atom "reg"; Atom r ]
  | Ast.Val v -> List [ Atom "int"; Atom (string_of_int v) ]
  | Ast.Bin (op, l, r) ->
      List [ Atom (binop_str op); sexp_of_expr l; sexp_of_expr r ]

let rec expr_of_sexp = function
  | List [ Atom "reg"; Atom r ] -> Ok (Ast.Reg r)
  | List [ Atom "int"; Atom v ] -> (
      match int_of_string_opt v with
      | Some v -> Ok (Ast.Val v)
      | None -> Error ("bad int " ^ v))
  | List [ Atom op; l; r ] ->
      let* op = binop_of op in
      let* l = expr_of_sexp l in
      let* r = expr_of_sexp r in
      Ok (Ast.Bin (op, l, r))
  | s -> Error ("bad expr " ^ to_string s)

let sexp_of_instr = function
  | Ast.Load (r, x, m) ->
      List [ Atom "load"; Atom r; Atom x; Atom (rmode_str m) ]
  | Ast.Store (x, e, m) ->
      List [ Atom "store"; Atom x; Atom (wmode_str m); sexp_of_expr e ]
  | Ast.Cas (r, x, er, ew, rm, wm) ->
      List
        [ Atom "cas"; Atom r; Atom x; Atom (rmode_str rm); Atom (wmode_str wm);
          sexp_of_expr er; sexp_of_expr ew ]
  | Ast.Skip -> List [ Atom "skip" ]
  | Ast.Assign (r, e) -> List [ Atom "assign"; Atom r; sexp_of_expr e ]
  | Ast.Print e -> List [ Atom "print"; sexp_of_expr e ]
  | Ast.Fence m -> List [ Atom "fence"; Atom (fmode_str m) ]

let rmode_of s =
  match Modes.read_of_string s with
  | Some m -> Ok m
  | None -> Error ("bad read mode " ^ s)

let wmode_of s =
  match Modes.write_of_string s with
  | Some m -> Ok m
  | None -> Error ("bad write mode " ^ s)

let instr_of_sexp = function
  | List [ Atom "load"; Atom r; Atom x; Atom m ] ->
      let* m = rmode_of m in
      Ok (Ast.Load (r, x, m))
  | List [ Atom "store"; Atom x; Atom m; e ] ->
      let* m = wmode_of m in
      let* e = expr_of_sexp e in
      Ok (Ast.Store (x, e, m))
  | List [ Atom "cas"; Atom r; Atom x; Atom rm; Atom wm; er; ew ] ->
      let* rm = rmode_of rm in
      let* wm = wmode_of wm in
      let* er = expr_of_sexp er in
      let* ew = expr_of_sexp ew in
      Ok (Ast.Cas (r, x, er, ew, rm, wm))
  | List [ Atom "skip" ] -> Ok Ast.Skip
  | List [ Atom "assign"; Atom r; e ] ->
      let* e = expr_of_sexp e in
      Ok (Ast.Assign (r, e))
  | List [ Atom "print"; e ] ->
      let* e = expr_of_sexp e in
      Ok (Ast.Print e)
  | List [ Atom "fence"; Atom m ] -> (
      match m with
      | "acq" -> Ok (Ast.Fence Modes.FAcq)
      | "rel" -> Ok (Ast.Fence Modes.FRel)
      | "sc" -> Ok (Ast.Fence Modes.FSc)
      | _ -> Error ("bad fence mode " ^ m))
  | s -> Error ("bad instr " ^ to_string s)

let sexp_of_term = function
  | Ast.Jmp l -> List [ Atom "jmp"; Atom l ]
  | Ast.Be (e, l1, l2) -> List [ Atom "be"; sexp_of_expr e; Atom l1; Atom l2 ]
  | Ast.Call (f, l) -> List [ Atom "call"; Atom f; Atom l ]
  | Ast.Return -> List [ Atom "return" ]

let term_of_sexp = function
  | List [ Atom "jmp"; Atom l ] -> Ok (Ast.Jmp l)
  | List [ Atom "be"; e; Atom l1; Atom l2 ] ->
      let* e = expr_of_sexp e in
      Ok (Ast.Be (e, l1, l2))
  | List [ Atom "call"; Atom f; Atom l ] -> Ok (Ast.Call (f, l))
  | List [ Atom "return" ] -> Ok Ast.Return
  | s -> Error ("bad terminator " ^ to_string s)

let sexp_of_block l (b : Ast.block) =
  List
    (Atom "block" :: Atom l
    :: (List.map sexp_of_instr b.Ast.instrs @ [ sexp_of_term b.Ast.term ]))

let block_of_sexp = function
  | List (Atom "block" :: Atom l :: rest) when rest <> [] ->
      let instrs, term =
        let rec split acc = function
          | [ t ] -> (List.rev acc, t)
          | x :: rest -> split (x :: acc) rest
          | [] -> assert false
        in
        split [] rest
      in
      let* term = term_of_sexp term in
      let* instrs =
        List.fold_right
          (fun i acc ->
            let* acc = acc in
            let* i = instr_of_sexp i in
            Ok (i :: acc))
          instrs (Ok [])
      in
      Ok (l, Ast.block instrs term)
  | s -> Error ("bad block " ^ to_string s)

let sexp_of_proc name (ch : Ast.codeheap) =
  List
    (Atom "proc" :: Atom name
    :: List [ Atom "entry"; Atom ch.Ast.entry ]
    :: List.map (fun (l, b) -> sexp_of_block l b) (Ast.LabelMap.bindings ch.Ast.blocks))

let proc_of_sexp = function
  | List (Atom "proc" :: Atom name :: List [ Atom "entry"; Atom entry ] :: blocks)
    ->
      let* blocks =
        List.fold_right
          (fun b acc ->
            let* acc = acc in
            let* b = block_of_sexp b in
            Ok (b :: acc))
          blocks (Ok [])
      in
      Ok (name, Ast.codeheap ~entry blocks)
  | s -> Error ("bad proc " ^ to_string s)

let sexp_of_program (p : Ast.program) =
  List
    (Atom "program"
    :: List (Atom "atomics" :: List.map (fun x -> Atom x) (Ast.VarSet.elements p.Ast.atomics))
    :: List (Atom "threads" :: List.map (fun f -> Atom f) p.Ast.threads)
    :: List.map (fun (n, ch) -> sexp_of_proc n ch) (Ast.FnameMap.bindings p.Ast.code))

let program_of_sexp = function
  | List
      (Atom "program"
      :: List (Atom "atomics" :: atomics)
      :: List (Atom "threads" :: threads)
      :: procs) ->
      let atom_list l =
        List.fold_right
          (fun a acc ->
            let* acc = acc in
            match a with
            | Atom s -> Ok (s :: acc)
            | _ -> Error "expected atom")
          l (Ok [])
      in
      let* atomics = atom_list atomics in
      let* threads = atom_list threads in
      let* procs =
        List.fold_right
          (fun p acc ->
            let* acc = acc in
            let* p = proc_of_sexp p in
            Ok (p :: acc))
          procs (Ok [])
      in
      Ok (Ast.program ~atomics ~code:procs threads)
  | s -> Error ("bad program " ^ to_string s)

let program_to_string p = to_string (sexp_of_program p)

let program_of_string s =
  let* sx = parse s in
  program_of_sexp sx
