open Ast

type env = value -> value

let wrap32 n = Int32.to_int (Int32.of_int n)

let eval_binop op a b =
  match op with
  | Add -> wrap32 (a + b)
  | Sub -> wrap32 (a - b)
  | Mul -> wrap32 (a * b)
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0

let rec eval lookup = function
  | Reg r -> lookup r
  | Val v -> v
  | Bin (op, l, r) -> eval_binop op (eval lookup l) (eval lookup r)

let rec subst r e' = function
  | Reg r0 when String.equal r0 r -> e'
  | (Reg _ | Val _) as e -> e
  | Bin (op, l, rhs) -> Bin (op, subst r e' l, subst r e' rhs)

let rec const_fold e =
  match e with
  | Reg _ | Val _ -> e
  | Bin (op, l, r) -> (
      match (const_fold l, const_fold r) with
      | Val a, Val b -> Val (eval_binop op a b)
      | l', r' -> Bin (op, l', r'))

let rec uses r = function
  | Reg r0 -> String.equal r0 r
  | Val _ -> false
  | Bin (_, l, rhs) -> uses r l || uses r rhs

let is_const = function Val v -> Some v | _ -> None
