lib/lang/cfg.mli: Ast
