lib/lang/expr.ml: Ast Int32 String
