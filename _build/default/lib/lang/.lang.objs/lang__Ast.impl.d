lib/lang/ast.ml: List Map Modes Set Stdlib String
