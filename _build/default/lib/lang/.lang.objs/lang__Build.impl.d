lib/lang/build.ml: Ast Wf
