lib/lang/parse.mli: Ast
