lib/lang/parse.ml: Ast Fun List Modes Printf String
