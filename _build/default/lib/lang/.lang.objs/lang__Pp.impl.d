lib/lang/pp.ml: Ast FnameMap Format LabelMap List Modes String VarSet
