lib/lang/ast.mli: Map Modes Set
