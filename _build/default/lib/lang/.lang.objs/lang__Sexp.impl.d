lib/lang/sexp.ml: Ast Format List Modes Printf Result String
