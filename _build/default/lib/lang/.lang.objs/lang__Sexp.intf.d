lib/lang/sexp.mli: Ast
