lib/lang/pp.mli: Ast Format
