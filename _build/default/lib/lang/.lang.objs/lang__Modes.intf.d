lib/lang/modes.mli: Format
