lib/lang/cfg.ml: Ast FnameMap Hashtbl LabelMap List RegSet String VarSet
