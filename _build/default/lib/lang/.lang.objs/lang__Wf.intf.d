lib/lang/wf.mli: Ast Format
