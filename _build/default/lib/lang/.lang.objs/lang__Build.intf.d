lib/lang/build.mli: Ast Modes
