lib/lang/modes.ml: Format
