lib/lang/wf.ml: Ast Cfg FnameMap Format LabelMap List Modes Printf RegSet String VarSet
