lib/lang/expr.mli: Ast
