(** Abstract syntax of CSimpRTL (Fig. 7 of the paper).

    A program [let (π, ι) in f1 ∥ ... ∥ fn] consists of a set of
    function definitions [π], a set [ι] of atomic variables, and [n]
    threads, each running one function.  Each function is a code heap
    mapping labels to basic blocks; a basic block is a straight-line
    sequence of instructions ended by a jump, branch, call or return.

    Labels and names are strings (the paper uses naturals for labels;
    strings make concrete programs and error messages readable without
    changing anything semantically).  Values are machine integers. *)

type reg = string
(** Pseudo-registers [r].  Thread-private; never shared between
    threads. *)

type var = string
(** Shared memory locations [x, y, z]. *)

type label = string
(** Basic-block labels within one code heap. *)

type fname = string
(** Function names. *)

type value = int
(** Values [v].  The paper fixes [Int32]; we use native integers, with
    arithmetic in {!Expr} wrapping to 32 bits to match. *)

(** Expressions over registers and constants (no memory access). The
    paper's grammar has [+], [-], [*]; we add comparisons, which the
    paper's examples use in branch conditions ([r1 < 10] in Fig. 1),
    with the usual 0/1 encoding of booleans. *)
type binop = Add | Sub | Mul | Eq | Ne | Lt | Le | Gt | Ge

type expr = Reg of reg | Val of value | Bin of binop * expr * expr

(** Instructions [c].  [Load (r, x, o)] is [r := x_o]; [Store (x, e,
    o)] is [x_o := e]; [Cas (r, x, er, ew, or_, ow)] is
    [r := CAS_{or,ow}(x, er, ew)], writing 1 to [r] on success and 0 on
    failure; [Assign] is local computation; [Print] emits the
    observable event [out(v)]; [Fence] is a memory fence (footnote 1 of
    the paper). *)
type instr =
  | Load of reg * var * Modes.read
  | Store of var * expr * Modes.write
  | Cas of reg * var * expr * expr * Modes.read * Modes.write
  | Skip
  | Assign of reg * expr
  | Print of expr
  | Fence of Modes.fence

(** Block terminators: unconditional jump, conditional branch
    [be e, l1, l2] (to [l1] if [e] evaluates to non-zero), internal
    call [call (f, l_ret)] and [return]. *)
type terminator =
  | Jmp of label
  | Be of expr * label * label
  | Call of fname * label
  | Return

type block = { instrs : instr list; term : terminator }

module LabelMap : Map.S with type key = label
module VarSet : Set.S with type elt = var
module VarMap : Map.S with type key = var
module RegSet : Set.S with type elt = reg
module FnameMap : Map.S with type key = fname

type codeheap = { entry : label; blocks : block LabelMap.t }
(** One function body [C ∈ Lab ⇀ BBlock], plus its entry label. *)

type code = codeheap FnameMap.t
(** The declarations [π = {f1 ↝ C1, ..., fk ↝ Ck}]. *)

type program = {
  code : code;  (** [π] *)
  atomics : VarSet.t;  (** [ι]: the atomic variables *)
  threads : fname list;  (** [f1 ∥ ... ∥ fn] *)
}

val equal_expr : expr -> expr -> bool
val equal_instr : instr -> instr -> bool
val equal_terminator : terminator -> terminator -> bool
val equal_block : block -> block -> bool
val equal_codeheap : codeheap -> codeheap -> bool
val equal_code : code -> code -> bool
val equal_program : program -> program -> bool
val compare_expr : expr -> expr -> int

val block : instr list -> terminator -> block
val codeheap : entry:label -> (label * block) list -> codeheap
val code_of_list : (fname * codeheap) list -> code

val program :
  ?atomics:var list -> code:(fname * codeheap) list -> fname list -> program
(** [program ~atomics ~code threads] assembles a whole program; the
    thread list gives the function run by each thread, in order. *)

val instr_regs_used : instr -> RegSet.t
(** Registers read by an instruction. *)

val instr_reg_defined : instr -> reg option
(** The register written by an instruction, if any. *)

val expr_regs : expr -> RegSet.t
val term_regs_used : terminator -> RegSet.t

val instr_var_accessed : instr -> var option
(** The shared location accessed, if any. *)

val is_na_instr : instr -> bool
(** True for instructions whose thread event is in the [NA] class of
    the non-preemptive semantics (Fig. 10): non-atomic loads/stores and
    instructions with no memory or synchronization effect.  [Print] is
    excluded: it produces an observable event and is a machine-step
    boundary. *)
