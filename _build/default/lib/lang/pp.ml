open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_binop ppf op = Format.pp_print_string ppf (binop_str op)

(* Precedence: comparisons < additive < multiplicative < atoms. *)
let prec = function
  | Eq | Ne | Lt | Le | Gt | Ge -> 1
  | Add | Sub -> 2
  | Mul -> 3

let rec pp_expr_prec p ppf = function
  | Reg r -> Format.pp_print_string ppf r
  | Val v -> Format.pp_print_int ppf v
  | Bin (op, l, r) ->
      let q = prec op in
      let body ppf () =
        Format.fprintf ppf "%a %s %a" (pp_expr_prec q) l (binop_str op)
          (pp_expr_prec (q + 1))
          r
      in
      if q < p then Format.fprintf ppf "(%a)" body ()
      else Format.fprintf ppf "%a" body ()

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_instr ppf = function
  | Load (r, x, o) -> Format.fprintf ppf "%s := %s.%a" r x Modes.pp_read o
  | Store (x, e, o) ->
      Format.fprintf ppf "%s.%a := %a" x Modes.pp_write o pp_expr e
  | Cas (r, x, er, ew, orr, ow) ->
      Format.fprintf ppf "%s := cas.%a.%a(%s, %a, %a)" r Modes.pp_read orr
        Modes.pp_write ow x pp_expr er pp_expr ew
  | Skip -> Format.pp_print_string ppf "skip"
  | Assign (r, e) -> Format.fprintf ppf "%s := %a" r pp_expr e
  | Print e -> Format.fprintf ppf "print(%a)" pp_expr e
  | Fence f -> Format.fprintf ppf "fence.%a" Modes.pp_fence f

let pp_terminator ppf = function
  | Jmp l -> Format.fprintf ppf "jmp %s" l
  | Be (e, l1, l2) -> Format.fprintf ppf "be %a, %s, %s" pp_expr e l1 l2
  | Call (f, lret) -> Format.fprintf ppf "call(%s, %s)" f lret
  | Return -> Format.pp_print_string ppf "return"

let pp_block ppf b =
  List.iter (fun i -> Format.fprintf ppf "  %a;@\n" pp_instr i) b.instrs;
  Format.fprintf ppf "  %a;" pp_terminator b.term

let pp_codeheap ~name ppf ch =
  Format.fprintf ppf "@[<v>proc %s entry %s {@\n" name ch.entry;
  (* Print the entry block first, then the rest alphabetically: stable
     output that starts where reading starts. *)
  let entry_first (l1, _) (l2, _) =
    match (String.equal l1 ch.entry, String.equal l2 ch.entry) with
    | true, false -> -1
    | false, true -> 1
    | _ -> String.compare l1 l2
  in
  let bs = List.sort entry_first (LabelMap.bindings ch.blocks) in
  List.iter (fun (l, b) -> Format.fprintf ppf "%s:@\n%a@\n" l pp_block b) bs;
  Format.fprintf ppf "}@]"

let pp_program ppf p =
  if not (VarSet.is_empty p.atomics) then
    Format.fprintf ppf "atomics %s;@\n"
      (String.concat " " (VarSet.elements p.atomics));
  Format.fprintf ppf "threads %s;@\n@\n" (String.concat " " p.threads);
  FnameMap.iter
    (fun name ch -> Format.fprintf ppf "%a@\n@\n" (pp_codeheap ~name) ch)
    p.code

let expr_to_string e = Format.asprintf "%a" pp_expr e
let instr_to_string i = Format.asprintf "%a" pp_instr i
let program_to_string p = Format.asprintf "%a" pp_program p
