(** Evaluation and manipulation of CSimpRTL expressions. *)

type env = Ast.value -> Ast.value
(** Dummy type; see {!eval}. *)

val wrap32 : int -> int
(** Arithmetic wraps to signed 32 bits, matching the paper's
    [Val = Int32]. *)

val eval_binop : Ast.binop -> Ast.value -> Ast.value -> Ast.value
(** Comparisons return 0/1; arithmetic wraps to 32 bits. *)

val eval : (Ast.reg -> Ast.value) -> Ast.expr -> Ast.value
(** [eval lookup e] evaluates [e], reading registers via [lookup].
    Unbound registers should be given value 0 by [lookup] (the machine
    initializes registers to 0). *)

val subst : Ast.reg -> Ast.expr -> Ast.expr -> Ast.expr
(** [subst r e' e] replaces every occurrence of register [r] in [e] by
    [e']. *)

val const_fold : Ast.expr -> Ast.expr
(** Bottom-up folding of constant subexpressions. *)

val uses : Ast.reg -> Ast.expr -> bool
val is_const : Ast.expr -> Ast.value option
