(** Control-flow utilities over a single code heap.

    Analyses in {!Analysis} are intraprocedural and block-granular, in
    the CompCert RTL style; this module supplies the graph structure
    they need: successors/predecessors, reachability, reverse postorder
    and basic sanity queries. *)

val successors : Ast.block -> Ast.label list
(** Labels a block can fall through to.  [Call (f, lret)] continues at
    [lret] (in the same code heap) after the callee returns, so [lret]
    is its successor for analysis purposes; [Return] has none. *)

val predecessors : Ast.codeheap -> Ast.label list Ast.LabelMap.t
(** Predecessor map over all blocks of the code heap. *)

val reachable : Ast.codeheap -> Ast.label list
(** Labels reachable from the entry, in depth-first discovery order. *)

val reverse_postorder : Ast.codeheap -> Ast.label list
(** Reverse postorder of the reachable blocks: a good iteration order
    for forward dataflow analyses. *)

val postorder : Ast.codeheap -> Ast.label list

val vars_of_codeheap : Ast.codeheap -> Ast.VarSet.t
(** All shared variables accessed anywhere in the code heap. *)

val regs_of_codeheap : Ast.codeheap -> Ast.RegSet.t

val vars_of_program : Ast.program -> Ast.VarSet.t
(** All shared variables accessed by any function of the program
    (whether or not the function is run by a thread). *)

val fold_instrs :
  Ast.codeheap -> init:'a -> f:('a -> Ast.label -> Ast.instr -> 'a) -> 'a

val callees : Ast.codeheap -> Ast.fname list
(** Functions called (deduplicated, in first-call order). *)
