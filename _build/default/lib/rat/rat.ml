type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero
  else
    let sign = if den < 0 then -1 else 1 in
    let num = sign * num and den = sign * den in
    let g = gcd (abs num) den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero
  else make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }

let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
let min a b = if le a b then a else b
let max a b = if ge a b then a else b
let midpoint a b = div (add a b) (of_int 2)
let succ t = add t one
let is_integer t = t.den = 1
let to_float t = float_of_int t.num /. float_of_int t.den
let hash t = (t.num * 31) lxor t.den

let pp ppf t =
  if t.den = 1 then Format.fprintf ppf "%d" t.num
  else Format.fprintf ppf "%d/%d" t.num t.den

let to_string t = Format.asprintf "%a" pp t
