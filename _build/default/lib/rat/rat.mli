(** Exact rational arithmetic for PS2.1 timestamps.

    The promising semantics draws timestamps from a dense total order
    ([Time = Q] in Fig. 8 of the paper): between any two distinct
    timestamps there must be room for another, so that a write can
    always be slotted into a gap between existing messages.  We
    implement rationals over native [int]s; the bounded explorations
    performed by this library keep numerators and denominators tiny
    (the canonical slotting in {!Explore} only ever takes midpoints and
    successors), so 63-bit overflow is not a practical concern.

    Values are kept in normal form: the denominator is positive and
    [gcd |num| den = 1].  Structural equality therefore coincides with
    numeric equality, and values are usable as keys of maps and sets. *)

type t = private { num : int; den : int }
(** A normalized rational [num/den] with [den > 0]. *)

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
(** [of_int n] is the rational [n/1]. *)

val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is {!zero}. *)

val neg : t -> t

val compare : t -> t -> int
(** Numeric comparison; total order. *)

val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val midpoint : t -> t -> t
(** [midpoint a b] is [(a + b) / 2], strictly between [a] and [b]
    whenever [a <> b].  Used to slot a fresh message into the gap
    between two existing messages. *)

val succ : t -> t
(** [succ t] is [t + 1]; used to place a message after the last
    message of a location, and to build the cap reservation
    [⟨x : (t, t+1]⟩] of the capped memory. *)

val is_integer : t -> bool

val to_float : t -> float
(** Lossy; for diagnostics only. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints [n] for integers and [n/d] otherwise. *)

val to_string : t -> string
