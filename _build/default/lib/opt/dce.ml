open Lang.Ast
module Lv = Analysis.Liveness

(* TransI_d: eliminate an instruction whose only effect is a write to
   something dead after it (Sec. 7.1). *)
let transform_instr after i =
  match i with
  | Store (x, _, Lang.Modes.WNa) when not (Lv.var_live x after) -> Skip
  | Load (r, _, Lang.Modes.Na) when not (Lv.reg_live r after) -> Skip
  | Assign (r, _) when not (Lv.reg_live r after) -> Skip
  | _ -> i

let transform_ch ~exit_live (ch : codeheap) =
  let res = Lv.analyze ?exit_live ch in
  let blocks =
    LabelMap.mapi
      (fun l (b : block) ->
        let afters = res.Lv.after l in
        let instrs = List.map2 transform_instr afters b.instrs in
        { b with instrs })
      ch.blocks
  in
  { ch with blocks }

let transform ~atomics (ch : codeheap) =
  ignore atomics;
  transform_ch ~exit_live:None ch

(* Functions that some call instruction targets: when they return,
   the caller may read any register, so registers must be live at
   their exits.  A function nobody calls (a thread root) ends the
   thread at [return]: its registers are unobservable afterwards,
   while memory locations remain observable by other threads
   (Fig. 15 assumes the fully conservative end-of-code annotation;
   this refinement only sharpens the register component). *)
let called_functions (p : program) =
  FnameMap.fold
    (fun _ ch acc ->
      LabelMap.fold
        (fun _ (b : block) acc ->
          match b.term with Call (f, _) -> VarSet.add f acc | _ -> acc)
        ch.blocks acc)
    p.code VarSet.empty

let run (p : program) =
  let callees = called_functions p in
  let code =
    FnameMap.mapi
      (fun fname ch ->
        let exit_live =
          if VarSet.mem fname callees then None (* everything live *)
          else
            let u = Lv.universe_of ch in
            Some
              (Lv.of_sets ~regs:RegSet.empty
                 ~vars:u.Lv.all_vars)
        in
        transform_ch ~exit_live ch)
      p.code
  in
  { p with code }

let pass = { Pass.name = "dce"; run }
let pass_fix = Pass.fixpoint pass
