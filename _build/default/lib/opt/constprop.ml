open Lang.Ast
module C = Analysis.Constdom

(* Substitute known register constants into an expression and fold. *)
let concretize st e =
  let rec subst = function
    | Reg r as e -> (
        match C.reg_value r st with Some v -> Val v | None -> e)
    | Val _ as e -> e
    | Bin (op, l, r) -> Bin (op, subst l, subst r)
  in
  Lang.Expr.const_fold (subst e)

let transform_instr st i =
  match i with
  | Assign (r, e) -> Assign (r, concretize st e)
  | Load (r, x, Lang.Modes.Na) -> (
      match C.var_value x st with
      | Some v -> Assign (r, Val v)
      | None -> i)
  | Load _ -> i
  | Store (x, e, Lang.Modes.WNa) -> Store (x, concretize st e, Lang.Modes.WNa)
  | Store _ -> i (* atomic writes untouched *)
  | Print e -> Print (concretize st e)
  | Cas _ | Skip | Fence _ -> i

let transform_term st t =
  match t with
  | Be (e, l1, l2) -> (
      match concretize st e with
      | Val v -> Jmp (if v <> 0 then l1 else l2)
      | e' -> Be (e', l1, l2))
  | Jmp _ | Call _ | Return -> t

let transform ~atomics (ch : codeheap) =
  ignore atomics;
  let res = C.analyze ch in
  let blocks =
    LabelMap.mapi
      (fun l (b : block) ->
        let st = ref (res.C.entry (l : label)) in
        let instrs =
          List.map
            (fun i ->
              let i' = transform_instr !st i in
              st := C.transfer_instr i !st;
              i')
            b.instrs
        in
        { instrs; term = transform_term !st b.term })
      ch.blocks
  in
  { ch with blocks }

let pass = Pass.per_function "constprop" transform
let pass_fix = Pass.fixpoint pass
