lib/opt/copyprop.mli: Lang Pass
