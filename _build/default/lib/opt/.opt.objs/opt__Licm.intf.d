lib/opt/licm.mli: Pass
