lib/opt/constprop.mli: Lang Pass
