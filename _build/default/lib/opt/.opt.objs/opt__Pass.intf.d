lib/opt/pass.mli: Lang
