lib/opt/dce.ml: Analysis FnameMap LabelMap Lang List Pass RegSet VarSet
