lib/opt/linv.mli: Analysis Lang Pass
