lib/opt/constprop.ml: Analysis LabelMap Lang List Pass
