lib/opt/cse.ml: Analysis LabelMap Lang List Pass String
