lib/opt/dce.mli: Lang Pass
