lib/opt/linv.ml: Analysis LabelMap Lang List Pass Printf RegSet String VarSet
