lib/opt/copyprop.ml: Analysis LabelMap Lang List Pass
