lib/opt/cleanup.ml: LabelMap Lang List Pass VarSet
