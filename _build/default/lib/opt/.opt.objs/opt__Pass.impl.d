lib/opt/pass.ml: Lang
