lib/opt/cleanup.mli: Lang Pass
