lib/opt/licm.ml: Cse Linv Pass
