lib/opt/cse.mli: Lang Pass
