(** Constant propagation (one of the four optimizations Theorem 6.6
    proves correct in PS2.1).

    Uses the dataflow facts of {!Analysis.Constdom}: known register
    constants are substituted and folded everywhere; a non-atomic load
    of a location whose last thread-local write stored a known
    constant becomes a constant move (sound in PS2.1 because the
    thread may always re-read its own message — see
    {!Analysis.Constdom} for the acquire kill rule); a branch whose
    condition folds becomes an unconditional jump.

    Atomic accesses are never modified. *)

val transform :
  atomics:Lang.Ast.VarSet.t -> Lang.Ast.codeheap -> Lang.Ast.codeheap

val pass : Pass.t
(** One round of constant propagation over every function. *)

val pass_fix : Pass.t
(** Iterated to a fixpoint. *)
