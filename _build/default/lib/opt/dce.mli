(** Dead code elimination (Sec. 7.1), the paper's worked example.

    [DCE(π_s, ι) = Translate_rdce(π_s, Lv_Analyzer(π_s))]: liveness
    analysis ({!Analysis.Liveness}, with the Fig. 15 rule that nothing
    is dead before a release write) followed by the single-instruction
    transformation [TransI_d] that turns a write to a dead non-atomic
    location — or to a dead register — into [skip].

    DCE may eliminate across relaxed accesses and acquire reads, but
    never across release writes (Fig. 15's counterexample is litmus
    [fig15_bad_tgt], and the test suite checks this transformation
    does {e not} perform it). *)

val transform :
  atomics:Lang.Ast.VarSet.t -> Lang.Ast.codeheap -> Lang.Ast.codeheap

val pass : Pass.t
val pass_fix : Pass.t
