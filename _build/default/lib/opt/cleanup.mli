(** Trace-preserving cleanup (category 1 of Sec. 7.2's classification
    — transformations that change no memory access): drop [skip]
    instructions (left behind by DCE) and blocks unreachable from the
    entry (left behind by ConstProp's branch folding). *)

val transform :
  atomics:Lang.Ast.VarSet.t -> Lang.Ast.codeheap -> Lang.Ast.codeheap

val pass : Pass.t
