type t = {
  name : string;
  run : Lang.Ast.program -> Lang.Ast.program;
}

let compose a b =
  { name = a.name ^ ";" ^ b.name; run = (fun p -> b.run (a.run p)) }

let apply t p = t.run p

let per_function name f =
  {
    name;
    run =
      (fun (p : Lang.Ast.program) ->
        { p with code = Lang.Ast.FnameMap.map (f ~atomics:p.atomics) p.code });
  }

let fixpoint ?(max_rounds = 8) t =
  {
    name = t.name ^ "*";
    run =
      (fun p ->
        let rec go p n =
          if n >= max_rounds then p
          else
            let p' = t.run p in
            if Lang.Ast.equal_program p p' then p else go p' (n + 1)
        in
        go p 0);
  }
