open Lang.Ast
module Av = Analysis.Availexpr

let transform_instr st i =
  match i with
  | Assign (r, (Bin _ as e)) -> (
      match Av.lookup (Av.Expr e) st with
      | Some r0 when not (String.equal r0 r) -> Assign (r, Reg r0)
      | _ -> i)
  | Load (r, x, Lang.Modes.Na) -> (
      match Av.lookup (Av.LoadNa x) st with
      | Some r0 ->
          if String.equal r0 r then
            (* The register already holds the loaded value. *)
            Skip
          else Assign (r, Reg r0)
      | None -> i)
  | _ -> i

let transform ~atomics (ch : codeheap) =
  ignore atomics;
  let res = Av.analyze ch in
  let blocks =
    LabelMap.mapi
      (fun l (b : block) ->
        let st = ref (res.Av.entry l) in
        let instrs =
          List.map
            (fun i ->
              let i' = transform_instr !st i in
              st := Av.transfer_instr i !st;
              i')
            b.instrs
        in
        { b with instrs })
      ch.blocks
  in
  { ch with blocks }

let pass = Pass.per_function "cse" transform
let pass_fix = Pass.fixpoint pass
