(** LInv, the first pass of loop invariant code motion (Sec. 2.5):
    for each natural loop whose body contains a loop-invariant
    non-atomic load [r := x_na], allocate a fresh register [rf] and
    insert the {e redundant} read [rf := x_na] into a new preheader
    block.  The loop body is unchanged; the subsequent CSE pass
    replaces the body's reloads of [x] with [rf] (LICM = CSE ∘ LInv).

    A load of [x] is treated as loop-invariant when the loop body
    contains no store to [x] and no {e acquire} access (acquire read,
    CAS with acquire part, acquire/sc fence) and no call: hoisting
    across an acquire read is exactly the Fig. 1 unsoundness; hoisting
    across relaxed accesses and release writes is allowed (Sec. 1).

    The introduced read may be a read-write race (Fig. 5(b)); that is
    sound — redundant read introduction is sound in PS even under
    races (Sec. 2.5). *)

val transform :
  atomics:Lang.Ast.VarSet.t -> Lang.Ast.codeheap -> Lang.Ast.codeheap

val pass : Pass.t

val invariant_loads :
  Lang.Ast.codeheap -> Analysis.Loops.loop -> Lang.Ast.var list
(** The loop-invariant non-atomic locations of a loop, exposed for
    tests and diagnostics. *)
