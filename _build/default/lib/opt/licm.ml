let pass = { (Pass.compose Linv.pass Cse.pass) with name = "licm" }
