(** Copy propagation: replace uses of a register by the older register
    it copies (a trace-preserving transformation in the paper's
    classification, Sec. 7.2 category 1 — it changes no memory
    access).  Runs after CSE, whose register moves it rewires so that
    DCE can then delete the moves. *)

val transform :
  atomics:Lang.Ast.VarSet.t -> Lang.Ast.codeheap -> Lang.Ast.codeheap

val pass : Pass.t
val pass_fix : Pass.t
