(** Loop invariant code motion: [LICM ≜ CSE ∘ LInv] (Sec. 2.5).

    LInv introduces the redundant preheader read, CSE eliminates the
    loop body's reloads; the paper verifies the two passes separately
    and concludes LICM's correctness by transitivity of refinement
    (Sec. 2.6).  LICM may move loop invariants across relaxed accesses
    and release writes but not across acquire reads (Fig. 1). *)

val pass : Pass.t
