(** Common subexpression elimination (Sec. 7.2; verified with the
    identity invariant [Iid]).

    Uses {!Analysis.Availexpr}: a recomputation of an available pure
    expression, or a non-atomic reload of a location whose value is
    already held in a register, becomes a register move.  Load facts
    are killed at acquire accesses (hoisting-by-reuse across an
    acquire read is the Fig. 1 unsoundness) and at same-location
    stores; other threads' activity never kills a fact — the
    remembered message remains readable in PS2.1. *)

val transform :
  atomics:Lang.Ast.VarSet.t -> Lang.Ast.codeheap -> Lang.Ast.codeheap

val pass : Pass.t
val pass_fix : Pass.t
