open Lang.Ast
module C = Analysis.Copydom

let rewrite st e =
  let rec go = function
    | Reg r as e -> (
        match C.copy_of r st with Some r0 -> Reg r0 | None -> e)
    | Val _ as e -> e
    | Bin (op, l, r) -> Bin (op, go l, go r)
  in
  go e

let transform_instr st i =
  match i with
  | Assign (r, e) -> Assign (r, rewrite st e)
  | Store (x, e, m) -> Store (x, rewrite st e, m)
  | Print e -> Print (rewrite st e)
  | Cas (r, x, er, ew, rm, wm) -> Cas (r, x, rewrite st er, rewrite st ew, rm, wm)
  | Load _ | Skip | Fence _ -> i

let transform_term st t =
  match t with
  | Be (e, l1, l2) -> Be (rewrite st e, l1, l2)
  | Jmp _ | Call _ | Return -> t

let transform ~atomics (ch : codeheap) =
  ignore atomics;
  let res = C.analyze ch in
  let blocks =
    LabelMap.mapi
      (fun l (b : block) ->
        let st = ref (res.C.entry l) in
        let instrs =
          List.map
            (fun i ->
              let i' = transform_instr !st i in
              st := C.transfer_instr i !st;
              i')
            b.instrs
        in
        { instrs; term = transform_term !st b.term })
      ch.blocks
  in
  { ch with blocks }

let pass = Pass.per_function "copyprop" transform
let pass_fix = Pass.fixpoint pass
