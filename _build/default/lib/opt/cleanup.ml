open Lang.Ast

let transform ~atomics (ch : codeheap) =
  ignore atomics;
  (* Drop skips, then drop blocks unreachable from the entry (e.g.
     branches constant-folded away by ConstProp).  Unreachable blocks
     are only referenced by unreachable blocks, so removal keeps the
     code heap well-formed. *)
  let reachable = VarSet.of_list (Lang.Cfg.reachable ch) in
  let blocks =
    LabelMap.filter_map
      (fun l (b : block) ->
        if VarSet.mem l reachable then
          Some { b with instrs = List.filter (fun i -> i <> Skip) b.instrs }
        else None)
      ch.blocks
  in
  { ch with blocks }

let pass = Pass.per_function "cleanup" transform
