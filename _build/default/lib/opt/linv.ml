open Lang.Ast
module Loops = Analysis.Loops

(* Accesses that forbid hoisting a non-atomic load out of the loop. *)
let blocks_hoisting = function
  | Load (_, _, Lang.Modes.Acq) -> true
  | Cas _ -> true (* conservatively: any RMW *)
  | Fence (Lang.Modes.FAcq | Lang.Modes.FSc) -> true
  | _ -> false

let invariant_loads (ch : codeheap) (loop : Loops.loop) =
  let body_blocks =
    List.filter_map
      (fun l -> LabelMap.find_opt l ch.blocks)
      (VarSet.elements loop.Loops.body)
  in
  let has_call =
    List.exists
      (fun (b : block) -> match b.term with Call _ -> true | _ -> false)
      body_blocks
  in
  let instrs = List.concat_map (fun (b : block) -> b.instrs) body_blocks in
  if has_call || List.exists blocks_hoisting instrs then []
  else
    let stored =
      List.filter_map
        (function Store (x, _, _) -> Some x | _ -> None)
        instrs
      |> VarSet.of_list
    in
    List.filter_map
      (function
        | Load (_, x, Lang.Modes.Na) when not (VarSet.mem x stored) -> Some x
        | _ -> None)
      instrs
    |> List.sort_uniq String.compare

let fresh_reg used base =
  let rec go i =
    let cand = Printf.sprintf "%s%d" base i in
    if RegSet.mem cand used then go (i + 1) else cand
  in
  go 0

let fresh_label (ch : codeheap) base =
  let rec go i =
    let cand = Printf.sprintf "%s%d" base i in
    if LabelMap.mem cand ch.blocks then go (i + 1) else cand
  in
  go 0

let retarget_term old_l new_l t =
  let rt l = if String.equal l old_l then new_l else l in
  match t with
  | Jmp l -> Jmp (rt l)
  | Be (e, l1, l2) -> Be (e, rt l1, rt l2)
  | Call (f, lret) -> Call (f, rt lret)
  | Return -> Return

let hoist_loop (ch : codeheap) (loop : Loops.loop) =
  match invariant_loads ch loop with
  | [] -> ch
  | vars ->
      let used = Lang.Cfg.regs_of_codeheap ch in
      let loads, _ =
        List.fold_left
          (fun (acc, used) x ->
            let rf = fresh_reg used ("linv_" ^ x ^ "_") in
            (Load (rf, x, Lang.Modes.Na) :: acc, RegSet.add rf used))
          ([], used) vars
      in
      let ph = fresh_label ch ("PH_" ^ loop.Loops.header ^ "_") in
      let ph_block = { instrs = List.rev loads; term = Jmp loop.Loops.header } in
      (* Outside-loop edges into the header now go through the
         preheader; back edges stay direct. *)
      let blocks =
        LabelMap.mapi
          (fun l (b : block) ->
            if VarSet.mem l loop.Loops.body then b
            else { b with term = retarget_term loop.Loops.header ph b.term })
          ch.blocks
      in
      let blocks = LabelMap.add ph ph_block blocks in
      let entry =
        if String.equal ch.entry loop.Loops.header then ph else ch.entry
      in
      { entry; blocks }

let transform ~atomics (ch : codeheap) =
  ignore atomics;
  List.fold_left hoist_loop ch (Loops.find ch)

let pass = Pass.per_function "linv" transform
