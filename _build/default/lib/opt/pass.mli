(** Optimization passes and their vertical composition (Sec. 2.5/2.6:
    an optimizer [Opt] maps [(π_s, ι)] to [π_t], never touching the
    atomic set [ι]; verified optimizers compose because each preserves
    write-write race freedom).

    All passes in this library are thread-local and transform
    non-atomic accesses only (Sec. 1: optimizations on atomic accesses
    are out of scope, as in GCC/LLVM practice). *)

type t = {
  name : string;
  run : Lang.Ast.program -> Lang.Ast.program;
      (** must preserve [threads] and [atomics] verbatim *)
}

val compose : t -> t -> t
(** [compose a b] runs [a] first, then [b] — the paper's vertical
    composition [b ∘ a]. *)

val apply : t -> Lang.Ast.program -> Lang.Ast.program

val per_function :
  string ->
  (atomics:Lang.Ast.VarSet.t -> Lang.Ast.codeheap -> Lang.Ast.codeheap) ->
  t
(** Lift a per-code-heap transformation into a pass over every
    function of [π]. *)

val fixpoint : ?max_rounds:int -> t -> t
(** Iterate a pass until the program stops changing (e.g. repeated
    constant propagation). *)
