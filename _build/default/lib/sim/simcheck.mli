(** A bounded checker for the thread-local upward simulation
    [I, ι |= π_t ≼ π_s] of Sec. 6 (Def. 6.1), played as a game over
    concrete thread configurations.

    For a function [f], the checker explores every execution of the
    target thread in isolation (the non-preemptive thread-step
    relation, promises included) and searches, for each target step, a
    source response matching the simulation diagrams of Fig. 14:

    - {b non-atomic step} (Fig. 14(a)): the source replies with zero
      or more non-atomic steps; a target non-atomic write enters the
      delayed write set [D] with a fresh index ((tgt-D), Fig. 13), a
      source non-atomic write discharges the oldest pending item on
      its location and extends the timestamp mapping [φ]; the indexes
      of the remaining items must strictly decrease ((src-D)), bounding
      how long the source may lag;
    - {b atomic step} (Fig. 14(b)): after source non-atomic catch-up
      steps, the source performs {e the same} atomic event (same
      access, mode, location, values — outputs must match exactly);
      [D] must be empty, the switch bit turns on, and [I] together
      with the structural [wf] conditions on [φ] must hold over the
      resulting memories;
    - {b promise step} (Fig. 14(c)): the source promises a write with
      the same location and value, [φ] is extended, and [I] must be
      re-established (switch bits on).

    Termination: when the target thread is finished with an empty
    promise set, the source must wind down to a finished, promise-free
    state with [D] empty and [I] re-established.

    The game is solved coinductively (greatest fixpoint): a state
    revisited along the current path is assumed to satisfy the
    simulation, proven states are memoized, and the depth budget makes
    the whole search bounded — exhausting it yields [Unknown], never a
    spurious verdict.

    This is the paper's simulation with the environment instantiated
    to the empty rely (the thread runs in isolation): it exercises
    every diagram, [φ]/[D] bookkeeping rule and invariant check of
    Sec. 6, while parallel contexts are covered by the whole-program
    refinement checker {!Explore.Refine} — DESIGN.md discusses the
    substitution. *)

type config = {
  max_depth : int;
  src_burst : int;  (** max source NA steps per response *)
  wind_down : int;  (** max source steps to finish at termination *)
  max_promises : int;  (** target promise steps explored *)
}

val default_config : config

type verdict =
  | Holds
  | Fails of string  (** which diagram failed, human-readable *)
  | Unknown of string  (** budget exhausted *)

val check :
  ?config:config ->
  ?scenarios:Scenario.t list ->
  inv:Invariant.t ->
  atomics:Lang.Ast.VarSet.t ->
  target:Lang.Ast.code ->
  source:Lang.Ast.code ->
  Lang.Ast.fname ->
  verdict
(** [check ~inv ~atomics ~target ~source f]: does
    [I, ι |= (π_t, f) ≼ (π_s, f)] hold on the bounded game?  The game
    is played once per environment {!Scenario} (plus once with no
    interference); all must hold. *)

val check_program :
  ?config:config ->
  inv:Invariant.t ->
  target:Lang.Ast.program ->
  source:Lang.Ast.program ->
  unit ->
  (Lang.Ast.fname * verdict) list
(** Run {!check} for every thread entry function (Def. 6.1 quantifies
    over the functions threads run). *)

val pp_verdict : Format.formatter -> verdict -> unit
