module Key = struct
  type t = Lang.Ast.var * Rat.t

  let compare (x1, t1) (x2, t2) =
    let c = String.compare x1 x2 in
    if c <> 0 then c else Rat.compare t1 t2
end

module M = Map.Make (Key)

type t = int M.t

let empty = M.empty
let is_empty = M.is_empty
let initial_index = 16

let record_target_write ?(index = initial_index) x t d = M.add (x, t) index d

let oldest_on x d =
  M.fold
    (fun (y, t) _ acc ->
      if String.equal y x then
        match acc with
        | Some t0 when Rat.le t0 t -> acc
        | _ -> Some t
      else acc)
    d None

let discharge x d =
  match oldest_on x d with Some t -> M.remove (x, t) d | None -> d

let decrease d =
  let ok = ref true in
  let d' =
    M.map
      (fun i ->
        if i <= 0 then (
          ok := false;
          i)
        else i - 1)
      d
  in
  if !ok then Some d' else None

let size = M.cardinal
let equal a b = M.equal Int.equal a b
let compare a b = M.compare Int.compare a b

let pp ppf d =
  M.iter
    (fun (x, t) i -> Format.fprintf ppf "(%s,%a)@%d " x Rat.pp t i)
    d
