(** Environment-interference scenarios for the simulation game.

    The paper's simulation quantifies over arbitrary environment
    transitions that preserve the invariant [I].  An executable
    checker cannot quantify over all memory extensions, so it
    quantifies over a {e finite} family of scenarios: message
    sequences an environment thread can actually produce, obtained by
    running the other threads of the program in isolation and
    recording the messages they add (with their real message views —
    crucially including the view a release write attaches, which is
    what makes the Fig. 1 acquire-hoisting counterexample detectable).

    Every scenario prefix is also a scenario (interference may stop at
    any point).  {!Simcheck.check_program} checks the simulation under
    the empty scenario and under every derived one; the simulation of
    Def. 6.1 must survive all of them. *)

type t = Ps.Message.t list
(** Messages injected into both initial memories, identically (the
    identity timestamp mapping relates them, which satisfies both
    [Iid] and [Idce]). *)

val of_program :
  ?fuel:int ->
  ?max_scenarios:int ->
  Lang.Ast.program ->
  except:Lang.Ast.fname ->
  t list
(** Scenarios derived from every thread of the program other than
    [except], including all prefixes, deduplicated.  [fuel] bounds the
    isolation runs. *)
