(** The delayed write set [D] (Sec. 6.2, Fig. 13).

    [D] maps each non-atomic write performed by the target but not yet
    matched by the source to a well-founded index; the simulation
    decreases the indexes of pending items on every source step that
    does not discharge them, forcing the source to catch up within
    finitely many steps — this is what makes the simulation preserve
    write-write race freedom.

    Executably, indexes are countdown budgets initialized to
    [initial_index]; {!decrease} fails (returns [None]) when a pending
    item's budget is exhausted, exactly refuting the existence of a
    well-founded index assignment within that bound. *)

type t

val empty : t
val is_empty : t -> bool

val initial_index : int

val record_target_write :
  ?index:int -> Lang.Ast.var -> Rat.t -> t -> t
(** The (tgt-D) rule: the target performed the non-atomic write
    identified by [(x, t)] (a fresh message or a fulfilled promise). *)

val oldest_on : Lang.Ast.var -> t -> Rat.t option
(** The pending target write on [x] that a source write to [x] would
    discharge (lowest timestamp first). *)

val discharge : Lang.Ast.var -> t -> t
(** The (src-D) rule: the source performed a non-atomic write to [x];
    the pending item on [x] (if any) is removed.  The paper identifies
    delayed items by [(x, t)]; since a source thread's writes to the
    same location discharge them in order, matching by location is
    equivalent for the checker's purposes. *)

val decrease : t -> t option
(** [D' < D]: same domain, all indexes strictly decreased; [None]
    when some index hits zero. *)

val size : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
