lib/sim/delayed.mli: Format Lang Rat
