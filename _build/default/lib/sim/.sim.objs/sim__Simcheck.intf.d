lib/sim/simcheck.mli: Format Invariant Lang Scenario
