lib/sim/invariant.ml: Lang List Ps Rat String Tmap
