lib/sim/invariant.mli: Lang Ps Tmap
