lib/sim/simcheck.ml: Bool Delayed Format Int Invariant Lang List Map Option Ps Scenario String Tmap
