lib/sim/scenario.mli: Lang Ps
