lib/sim/verif.mli: Explore Format Invariant Lang Simcheck
