lib/sim/tmap.ml: Format Lang List Map Ps Rat String
