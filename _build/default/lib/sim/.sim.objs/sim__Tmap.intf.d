lib/sim/tmap.mli: Format Lang Ps Rat
