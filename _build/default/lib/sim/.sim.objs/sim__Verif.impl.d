lib/sim/verif.ml: Explore Format Invariant Lang List Opt Ps Race Simcheck String
