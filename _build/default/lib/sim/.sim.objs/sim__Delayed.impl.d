lib/sim/delayed.ml: Format Int Lang Map Rat String
