lib/sim/scenario.ml: Int Lang List Ps Set String
