type t = Ps.Message.t list

module TraceSet = Set.Make (struct
  type nonrec t = t

  let compare = List.compare Ps.Message.compare
end)

(* Run one thread in isolation, collecting the message sequences it
   can add to memory (bounded DFS, promise-free: environment writes
   that matter to a simulation opponent are the ones actually
   performed). *)
let runs_of ?(fuel = 64) code fname vars =
  match Ps.Thread.init code fname with
  | None -> TraceSet.empty
  | Some ts0 ->
      let m0 = Ps.Memory.init vars in
      let acc = ref TraceSet.empty in
      let rec dfs ts mem msgs depth =
        acc := TraceSet.add (List.rev msgs) !acc;
        if depth < fuel then
          List.iter
            (fun (s : Ps.Thread.step) ->
              let new_msgs =
                Ps.Memory.fold
                  (fun m l ->
                    if
                      Ps.Message.is_concrete m
                      && not (Ps.Memory.contains m mem)
                    then m :: l
                    else l)
                  s.Ps.Thread.mem []
              in
              dfs s.Ps.Thread.ts s.Ps.Thread.mem (new_msgs @ msgs) (depth + 1))
            (Ps.Thread.steps ~code ts mem)
      in
      dfs ts0 m0 [] 0;
      !acc

let of_program ?fuel ?(max_scenarios = 48) (p : Lang.Ast.program) ~except =
  let vars =
    Lang.Ast.VarSet.elements (Lang.Cfg.vars_of_program p)
  in
  let others =
    List.sort_uniq String.compare
      (List.filter (fun f -> not (String.equal f except)) p.Lang.Ast.threads)
  in
  let all =
    List.fold_left
      (fun acc g ->
        TraceSet.union acc (runs_of ?fuel p.Lang.Ast.code g vars))
      TraceSet.empty others
  in
  let non_empty = TraceSet.remove [] all in
  let scenarios = TraceSet.elements non_empty in
  if List.length scenarios <= max_scenarios then scenarios
  else
    (* Keep the longest scenarios (they subsume their prefixes'
       interference) plus a spread of short ones. *)
    let sorted =
      List.sort
        (fun a b -> Int.compare (List.length b) (List.length a))
        scenarios
    in
    List.filteri (fun i _ -> i < max_scenarios) sorted
