(** The timestamp mapping [φ ∈ (Var × Time) ⇀ Time] (Fig. 12),
    relating "to"-timestamps of target messages to source
    timestamps. *)

type t

val empty : t

val init : Lang.Ast.var list -> t
(** [φ0 = {(x, 0) ↦ 0 | x ∈ Var}]: initialization messages map to
    initialization messages. *)

val find : Lang.Ast.var -> Rat.t -> t -> Rat.t option
val add : Lang.Ast.var -> Rat.t -> Rat.t -> t -> t

val mon : t -> bool
(** [mon(φ)]: strictly increasing on timestamps, per location. *)

val dom_covers : Ps.Memory.t -> t -> bool
(** [dom(φ) = ⌊M_t⌋]: the domain is exactly the (var, "to") pairs of
    the concrete messages of the target memory. *)

val image_in : Ps.Memory.t -> t -> bool
(** [φ(M_t) ⊆ ⌊M_s⌋] — here checked as: every timestamp in the image
    of [φ] names a concrete message of the given (source) memory. *)

val is_identity_on : Ps.Memory.t -> t -> bool
(** Every concrete message of the memory maps to its own timestamp —
    the [Iid] shape. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
