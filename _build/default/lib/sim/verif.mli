(** Verified optimizers (Def. 6.3) and the correctness pipeline
    (Sec. 2.6, Fig. 6), in executable form.

    The paper defines [Verif(Opt)]: for every source [π_s] there is an
    invariant [I] with [I, ι |= Opt(π_s) ≼ π_s]; Theorem 6.5 then
    gives [Correct(Opt)] — refinement for every write-write race-free,
    safe source program.  Here each optimizer is registered with the
    invariant its simulation uses (the paper's Sec. 7 choices:
    ConstProp/CSE/LInv with [Iid], DCE with [Idce], LICM composed of
    verified passes), and [check] runs the whole proof path of Fig. 6
    on one concrete program:

    + ww-RF of the source (premise of Theorem 6.5, checked, not
      assumed);
    + the thread-local simulation for every thread function
      (Def. 6.1);
    + whole-program refinement of the bounded behaviour sets (the
      conclusion, checked independently);
    + ww-RF of the target (Lemma 6.2's preservation conclusion).

    A [Fail _] in any stage names the stage — which is exactly how the
    paper's counterexamples (Figs. 1 and 15) surface. *)

type stage =
  | Source_ww_rf
  | Simulation of Lang.Ast.fname
  | Refinement
  | Target_ww_rf

type verdict = Verified | Fail of stage * string | Inconclusive of string

type registered = {
  name : string;
  transform : Lang.Ast.program -> Lang.Ast.program;
  invariant : Invariant.t;
}

val registry : registered list
(** constprop, dce, cse, copyprop, linv, licm, cleanup — each with the
    invariant its simulation uses. *)

val find : string -> registered option

val check :
  ?sim_config:Simcheck.config ->
  ?explore_config:Explore.Config.t ->
  registered ->
  Lang.Ast.program ->
  verdict
(** Run the full Fig. 6 pipeline of [registered] on one program. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_stage : Format.formatter -> stage -> unit
