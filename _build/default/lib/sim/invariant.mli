(** Invariant parameters [I ∈ TMap → Sst → Atms → Prop] (Sec. 6.1).

    The invariant relates the target and source shared memories
    through the timestamp mapping [φ] at switch points; verifying
    different optimizations instantiates it differently.  This module
    provides the paper's two instances — the identity invariant [Iid]
    (ConstProp, CSE) and the DCE invariant [Idce] with its unused
    timestamp interval before every related source message (Fig. 16)
    — plus the sanity check [wf(I, ι)] of Fig. 12 in its pointwise,
    executable form. *)

type t = {
  name : string;
  holds : Tmap.t -> Ps.Memory.t * Ps.Memory.t -> Lang.Ast.VarSet.t -> bool;
}

val iid : t
(** [Iid]: source and target memories identical, [φ] the identity
    mapping (Sec. 6.1). *)

val idce : t
(** [Idce] (Sec. 7.1): every concrete target message on a non-atomic
    location has a [φ]-related source message with the same value and
    [φ]-related view, and there is an unused timestamp interval
    [(tr, f']] immediately before that source message — the space into
    which the source inserts the dead writes the target skipped. *)

val messages_related : Tmap.t -> Ps.Memory.t * Ps.Memory.t -> bool
(** The paper's elided side condition [(φ, ι ⊢ M_t ∼ M_s)]: every
    concrete target message has a φ-related concrete source message
    with the same value and a φ-related message view.  Message views
    are what rule out eliminating writes across a release write
    (Fig. 15): the release message's view records the eliminated write
    at the source but not at the target. *)

val wf_conditions : Tmap.t -> Ps.Memory.t * Ps.Memory.t -> bool
(** The structural half of [wf(I, ι)], checked at a concrete state:
    [dom(φ) = ⌊M_t⌋], [φ(M_t) ⊆ ⌊M_s⌋], [mon(φ)] and
    {!messages_related}. *)

val wf_initial : t -> Lang.Ast.var list -> Lang.Ast.VarSet.t -> bool
(** The base half of [wf(I, ι)]: [I(φ0, (M0, M0), ι)]. *)

val holds_wf :
  t -> Tmap.t -> Ps.Memory.t * Ps.Memory.t -> Lang.Ast.VarSet.t -> bool
(** Invariant and structural conditions together — what the
    simulation checker asserts at every switch point. *)
