module Key = struct
  type t = Lang.Ast.var * Rat.t

  let compare (x1, t1) (x2, t2) =
    let c = String.compare x1 x2 in
    if c <> 0 then c else Rat.compare t1 t2
end

module M = Map.Make (Key)

type t = Rat.t M.t

let empty = M.empty

let init vars =
  List.fold_left (fun m x -> M.add (x, Rat.zero) Rat.zero m) M.empty vars

let find x ts m = M.find_opt (x, ts) m
let add x ts ts' m = M.add (x, ts) ts' m

let mon m =
  M.for_all
    (fun (x1, t1) t1' ->
      M.for_all
        (fun (x2, t2) t2' ->
          (not (String.equal x1 x2))
          || (not (Rat.lt t1 t2))
          || Rat.lt t1' t2')
        m)
    m

let concrete_keys mem =
  Ps.Memory.fold
    (fun msg acc ->
      if Ps.Message.is_concrete msg then
        (Ps.Message.var msg, Ps.Message.to_ msg) :: acc
      else acc)
    mem []

let dom_covers mem m =
  let keys = concrete_keys mem in
  List.length keys = M.cardinal m
  && List.for_all (fun k -> M.mem k m) keys

let image_in mem m =
  M.for_all
    (fun (x, _) t' ->
      match Ps.Memory.find x t' mem with
      | Some msg -> Ps.Message.is_concrete msg
      | None -> false)
    m

let is_identity_on mem m =
  List.for_all
    (fun (x, t) ->
      match M.find_opt (x, t) m with
      | Some t' -> Rat.equal t t'
      | None -> false)
    (concrete_keys mem)

let equal a b = M.equal Rat.equal a b
let compare a b = M.compare Rat.compare a b

let pp ppf m =
  M.iter
    (fun (x, t) t' ->
      Format.fprintf ppf "(%s,%a)->%a " x Rat.pp t Rat.pp t')
    m
