type t = {
  name : string;
  holds : Tmap.t -> Ps.Memory.t * Ps.Memory.t -> Lang.Ast.VarSet.t -> bool;
}

let iid =
  {
    name = "Iid";
    holds =
      (fun phi (mt, ms) _atomics ->
        Ps.Memory.equal mt ms && Tmap.is_identity_on mt phi);
  }

(* Map a view through φ: every observed target timestamp must have a
   φ-image equal to the source view's timestamp at that location. *)
let timemap_related phi vt vs =
  let ok tm_t tm_s =
    List.for_all
      (fun (y, ts) ->
        match Tmap.find y ts phi with
        | Some ts' -> Rat.equal ts' (Ps.View.TimeMap.get y tm_s)
        | None -> false)
      (Ps.View.TimeMap.bindings tm_t)
    (* and conversely the source view observes nothing the target's
       φ-image does not justify *)
    && List.for_all
         (fun (y, ts') ->
           List.exists
             (fun (y2, ts) ->
               String.equal y y2
               && Tmap.find y ts phi = Some ts')
             (Ps.View.TimeMap.bindings tm_t)
           || Rat.equal ts' Rat.zero)
         (Ps.View.TimeMap.bindings tm_s)
  in
  ok vt vs

let view_related phi (vt : Ps.View.t) (vs : Ps.View.t) =
  timemap_related phi vt.Ps.View.na vs.Ps.View.na
  && timemap_related phi vt.Ps.View.rlx vs.Ps.View.rlx

(* The unused timestamp interval before a source message (Fig. 16):
   ∃ tr < f'. ∀ m ∈ Ms(x). m.to ≤ tr ∨ t' ≤ m.from — i.e. the gap
   immediately before the message is open. *)
let gap_before ms_mem x (msg : Ps.Message.t) =
  let f' = Ps.Message.from_ msg in
  List.for_all
    (fun m ->
      Ps.Message.equal m msg
      || Rat.lt (Ps.Message.to_ m) f'
      || Rat.ge (Ps.Message.from_ m) (Ps.Message.to_ msg))
    (Ps.Memory.per_loc x ms_mem)

let idce =
  {
    name = "Idce";
    holds =
      (fun phi (mt, ms) atomics ->
        Ps.Memory.fold
          (fun msg ok ->
            ok
            &&
            let x = Ps.Message.var msg in
            if
              (not (Ps.Message.is_concrete msg))
              || Lang.Ast.VarSet.mem x atomics
              || Rat.equal (Ps.Message.to_ msg) Rat.zero
            then true
            else
              match Tmap.find x (Ps.Message.to_ msg) phi with
              | None -> false
              | Some t' -> (
                  match Ps.Memory.find x t' ms with
                  | Some src when Ps.Message.is_concrete src ->
                      Ps.Message.value src = Ps.Message.value msg
                      && (match (Ps.Message.view msg, Ps.Message.view src) with
                         | Some vt, Some vs -> view_related phi vt vs
                         | _ -> false)
                      && gap_before ms x src
                  | _ -> false))
          mt true);
  }

(* The paper's side condition (φ, ι ⊢ M_t ∼ M_s) (definition elided
   there "for brevity"): every concrete target message is φ-related to
   a concrete source message with the same value and φ-related view.
   This is what rules out eliminating a write across a release write:
   the release message's view would record the eliminated write at the
   source but not at the target. *)
let messages_related phi (mt, ms) =
  Ps.Memory.fold
    (fun msg ok ->
      ok
      &&
      if
        (not (Ps.Message.is_concrete msg))
        || Rat.equal (Ps.Message.to_ msg) Rat.zero
      then true
      else
        let x = Ps.Message.var msg in
        match Tmap.find x (Ps.Message.to_ msg) phi with
        | None -> false
        | Some t' -> (
            match Ps.Memory.find x t' ms with
            | Some src when Ps.Message.is_concrete src -> (
                Ps.Message.value src = Ps.Message.value msg
                &&
                match (Ps.Message.view msg, Ps.Message.view src) with
                | Some vt, Some vs -> view_related phi vt vs
                | _ -> false)
            | _ -> false))
    mt true

let wf_conditions phi (mt, ms) =
  Tmap.dom_covers mt phi && Tmap.image_in ms phi && Tmap.mon phi
  && messages_related phi (mt, ms)

let wf_initial inv vars atomics =
  let m0 = Ps.Memory.init vars in
  inv.holds (Tmap.init vars) (m0, m0) atomics

let holds_wf inv phi (mt, ms) atomics =
  wf_conditions phi (mt, ms) && inv.holds phi (mt, ms) atomics
