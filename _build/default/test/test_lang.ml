(* CSimpRTL language: expressions, parser round-trips, well-formedness
   and CFG utilities. *)

open Lang

let expr = Alcotest.testable Pp.pp_expr Ast.equal_expr

(* ------------------------------------------------------------------ *)
(* Expressions *)

let test_eval () =
  let env = function "a" -> 3 | "b" -> -2 | _ -> 0 in
  let e s = Parse.expr_of_string s in
  Alcotest.(check int) "add" 1 (Expr.eval env (e "a + b"));
  Alcotest.(check int) "mul" (-6) (Expr.eval env (e "a * b"));
  Alcotest.(check int) "sub" 5 (Expr.eval env (e "a - b"));
  Alcotest.(check int) "precedence" 7 (Expr.eval env (e "1 + a * 2"));
  Alcotest.(check int) "parens" 8 (Expr.eval env (e "(1 + a) * 2"));
  Alcotest.(check int) "lt true" 1 (Expr.eval env (e "b < a"));
  Alcotest.(check int) "lt false" 0 (Expr.eval env (e "a < b"));
  Alcotest.(check int) "eq" 1 (Expr.eval env (e "a == 3"));
  Alcotest.(check int) "ne" 1 (Expr.eval env (e "a != b"));
  Alcotest.(check int) "le" 1 (Expr.eval env (e "3 <= a"));
  Alcotest.(check int) "ge" 1 (Expr.eval env (e "a >= 3"));
  Alcotest.(check int) "unknown reg is 0" 0 (Expr.eval env (e "zz"))

let test_wrap32 () =
  Alcotest.(check int) "wraps" (Int32.to_int Int32.min_int)
    (Expr.eval (fun _ -> Int32.to_int Int32.max_int)
       (Ast.Bin (Ast.Add, Ast.Reg "r", Ast.Val 1)))

let test_const_fold () =
  let e s = Parse.expr_of_string s in
  Alcotest.check expr "folds constants" (Ast.Val 7) (Expr.const_fold (e "1 + 2 * 3"));
  Alcotest.check expr "partial fold keeps reg"
    (e "r + 3")
    (Expr.const_fold (e "r + (1 + 2)"));
  Alcotest.check expr "fold inside"
    (Ast.Bin (Ast.Mul, Ast.Reg "r", Ast.Val 6))
    (Expr.const_fold (e "r * (2 * 3)"))

let test_subst_uses () =
  let e s = Parse.expr_of_string s in
  Alcotest.check expr "subst" (e "(1 + 2) * y") (Expr.subst "x" (e "1 + 2") (e "x * y"));
  Alcotest.(check bool) "uses yes" true (Expr.uses "x" (e "1 + x"));
  Alcotest.(check bool) "uses no" false (Expr.uses "z" (e "1 + x"));
  Alcotest.(check (option int)) "is_const" (Some 4) (Expr.is_const (Ast.Val 4));
  Alcotest.(check (option int)) "is_const no" None (Expr.is_const (e "r"))

(* ------------------------------------------------------------------ *)
(* Parsing *)

let mp_text =
  {|atomics flag;
threads writer reader;
proc writer entry W0 {
W0:
  data.na := 42;
  flag.rel := 1;
  return;
}
proc reader entry R0 {
R0:
  r1 := flag.acq;
  be r1 == 1, R1, R2;
R1:
  r2 := data.na;
  print(r2);
  return;
R2:
  print(0 - 1);
  return;
}|}

let test_parse_program () =
  let p = Parse.program_of_string mp_text in
  Alcotest.(check int) "two functions" 2 (Ast.FnameMap.cardinal p.Ast.code);
  Alcotest.(check (list string)) "threads" [ "writer"; "reader" ] p.Ast.threads;
  Alcotest.(check bool) "flag atomic" true (Ast.VarSet.mem "flag" p.Ast.atomics);
  Alcotest.(check bool) "data not atomic" false (Ast.VarSet.mem "data" p.Ast.atomics);
  let reader = Ast.FnameMap.find "reader" p.Ast.code in
  Alcotest.(check string) "entry" "R0" reader.Ast.entry;
  Alcotest.(check int) "3 blocks" 3 (Ast.LabelMap.cardinal reader.Ast.blocks)

let test_parse_instr_kinds () =
  let text =
    {|threads t;
proc t entry L {
L:
  r := x.na;
  r2 := cas.acq.rel(a, 0, r + 1);
  a.rlx := 5;
  skip;
  fence.sc;
  r3 := r * 2;
  print(r3);
  call(t, L2);
L2:
  jmp L3;
L3:
  return;
}|}
  in
  (* not wf (CAS on non-atomic), but parseable *)
  let p = Parse.program_of_string text in
  let t = Ast.FnameMap.find "t" p.Ast.code in
  let l = Ast.LabelMap.find "L" t.Ast.blocks in
  (match l.Ast.instrs with
  | [ Ast.Load ("r", "x", Lang.Modes.Na);
      Ast.Cas ("r2", "a", Ast.Val 0, _, Lang.Modes.Acq, Lang.Modes.WRel);
      Ast.Store ("a", Ast.Val 5, Lang.Modes.WRlx);
      Ast.Skip;
      Ast.Fence Lang.Modes.FSc;
      Ast.Assign ("r3", _);
      Ast.Print _ ] -> ()
  | _ -> Alcotest.fail "unexpected instruction shapes");
  match l.Ast.term with
  | Ast.Call ("t", "L2") -> ()
  | _ -> Alcotest.fail "expected call terminator"

let test_parse_errors () =
  let bad s =
    match Parse.program_of_string s with
    | exception Parse.Error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  bad "";
  bad "threads;";
  bad "threads t; proc t entry L { L: r := ; return; }";
  bad "threads t; proc t entry L { L: x.bogus := 1; return; }";
  bad "threads t; proc t entry L { L: r := x.na }";
  bad "threads t; proc t entry L { L: jmp; }";
  bad "threads t; proc t { L: return; }"

let test_parse_comments_and_negatives () =
  let p =
    Parse.program_of_string
      "// leading comment\nthreads t;\nproc t entry L {\nL: // mid\n  r := -5;\n  print(r); // trailing\n  return;\n}"
  in
  let t = Ast.FnameMap.find "t" p.Ast.code in
  let l = Ast.LabelMap.find "L" t.Ast.blocks in
  match l.Ast.instrs with
  | [ Ast.Assign ("r", e); Ast.Print _ ] ->
      Alcotest.(check int) "negative literal" (-5) (Expr.eval (fun _ -> 0) e)
  | _ -> Alcotest.fail "unexpected parse"

let test_roundtrip () =
  List.iter
    (fun (t : Litmus.t) ->
      let printed = Pp.program_to_string t.Litmus.prog in
      let reparsed = Parse.program_of_string printed in
      Alcotest.(check bool)
        (t.Litmus.name ^ " roundtrips")
        true
        (Ast.equal_program t.Litmus.prog reparsed))
    Litmus.all

(* ------------------------------------------------------------------ *)
(* Well-formedness *)

let test_wf_ok () =
  match Wf.check (Parse.program_of_string mp_text) with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "unexpected wf errors: %a"
        (Format.pp_print_list Wf.pp_error)
        es

let contains s frag =
  let n = String.length frag in
  let rec go i = i + n <= String.length s && (String.sub s i n = frag || go (i + 1)) in
  go 0

let expect_wf_error text frag =
  match Wf.check (Parse.program_of_string text) with
  | Ok () -> Alcotest.failf "expected a wf error mentioning %S" frag
  | Error es ->
      let shown =
        String.concat "; "
          (List.map (fun e -> Format.asprintf "%a" Wf.pp_error e) es)
      in
      if not (contains shown frag) then
        Alcotest.failf "errors %S do not mention %S" shown frag

let test_wf_errors () =
  expect_wf_error "threads missing;\nproc t entry L { L: return; }" "missing";
  expect_wf_error "threads t;\nproc t entry NOPE { L: return; }" "entry";
  expect_wf_error "threads t;\nproc t entry L { L: jmp NOWHERE; }" "NOWHERE";
  expect_wf_error "threads t;\nproc t entry L { L: call(ghost, L); }" "ghost";
  expect_wf_error
    "atomics x;\nthreads t;\nproc t entry L { L: r := x.na; return; }"
    "non-atomic read of atomic";
  expect_wf_error
    "threads t;\nproc t entry L { L: r := x.acq; return; }"
    "atomic read of non-atomic";
  expect_wf_error
    "atomics x;\nthreads t;\nproc t entry L { L: x.na := 1; return; }"
    "non-atomic write of atomic";
  expect_wf_error
    "threads t;\nproc t entry L { L: x.rel := 1; return; }"
    "atomic write of non-atomic";
  expect_wf_error
    "threads t;\nproc t entry L { L: r := cas.rlx.rlx(x, 0, 1); return; }"
    "CAS on non-atomic";
  expect_wf_error
    "threads t;\nproc t entry L { L: x := 1; x.na := 2; return; }"
    "both as a register and as a variable"

(* ------------------------------------------------------------------ *)
(* CFG *)

let diamond =
  Parse.program_of_string
    {|threads t;
proc t entry A {
A:
  be r < 1, B, C;
B:
  jmp D;
C:
  jmp D;
D:
  return;
}|}

let test_cfg () =
  let ch = Ast.FnameMap.find "t" diamond.Ast.code in
  let succs l = Cfg.successors (Ast.LabelMap.find l ch.Ast.blocks) in
  Alcotest.(check (slist string compare)) "A succs" [ "B"; "C" ] (succs "A");
  Alcotest.(check (list string)) "D succs" [] (succs "D");
  let preds = Cfg.predecessors ch in
  Alcotest.(check (slist string compare))
    "D preds" [ "B"; "C" ]
    (Ast.LabelMap.find "D" preds);
  Alcotest.(check (slist string compare))
    "reachable" [ "A"; "B"; "C"; "D" ] (Cfg.reachable ch);
  let rpo = Cfg.reverse_postorder ch in
  Alcotest.(check string) "rpo starts at entry" "A" (List.hd rpo);
  Alcotest.(check bool)
    "rpo ends at D" true
    (List.nth rpo (List.length rpo - 1) = "D")

let test_cfg_unreachable () =
  let p =
    Parse.program_of_string
      {|threads t;
proc t entry A {
A:
  return;
Z:
  jmp A;
}|}
  in
  let ch = Ast.FnameMap.find "t" p.Ast.code in
  Alcotest.(check (list string)) "only A reachable" [ "A" ] (Cfg.reachable ch)

let test_vars_regs () =
  let ch = Ast.FnameMap.find "reader" (Parse.program_of_string mp_text).Ast.code in
  Alcotest.(check (slist string compare))
    "vars" [ "data"; "flag" ]
    (Ast.VarSet.elements (Cfg.vars_of_codeheap ch));
  Alcotest.(check (slist string compare))
    "regs" [ "r1"; "r2" ]
    (Ast.RegSet.elements (Cfg.regs_of_codeheap ch))

let test_be_same_target () =
  let b = Ast.block [] (Ast.Be (Ast.Val 1, "X", "X")) in
  Alcotest.(check (list string)) "dedup branch targets" [ "X" ] (Cfg.successors b)

(* ------------------------------------------------------------------ *)
(* S-expression serialization *)

let test_sexp_roundtrip_corpus () =
  List.iter
    (fun (t : Litmus.t) ->
      match Sexp.program_of_string (Sexp.program_to_string t.Litmus.prog) with
      | Ok p ->
          Alcotest.(check bool)
            (t.Litmus.name ^ " sexp roundtrips")
            true
            (Ast.equal_program p t.Litmus.prog)
      | Error e -> Alcotest.failf "%s: %s" t.Litmus.name e)
    Litmus.all

let test_sexp_shape () =
  let p =
    Parse.program_of_string
      "threads t;\nproc t entry L {\nL:\n  x.na := 1;\n  return;\n}"
  in
  Alcotest.(check string) "stable textual form"
    "(program (atomics) (threads t) (proc t (entry L) (block L (store x na \
     (int 1)) (return))))"
    (Sexp.program_to_string p)

let test_sexp_errors () =
  let bad s =
    match Sexp.program_of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should reject %S" s
  in
  bad "";
  bad "(program)";
  (* a program without procs parses (wf rejects it later) *)
  (match Sexp.program_of_string "(program (atomics) (threads t))" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "empty code should parse at sexp level: %s" e);
  bad "(program (atomics) (threads t) (proc t (entry L) (block L (bogus))))";
  bad "(program (atomics x (threads t)))";
  bad "(((";
  bad "(program (atomics) (threads t) (proc t (entry L) (block L (return))) extra"

let test_sexp_tree () =
  (match Sexp.parse "(a (b c) d)" with
  | Ok (Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ]; Sexp.Atom "d" ]) -> ()
  | _ -> Alcotest.fail "tree parse");
  match Sexp.parse "atom" with
  | Ok (Sexp.Atom "atom") -> ()
  | _ -> Alcotest.fail "bare atom"

(* ------------------------------------------------------------------ *)
(* Property: pretty-print/parse round-trip on random straightline
   programs. *)

let instr_gen =
  let open QCheck.Gen in
  let reg = map (Printf.sprintf "r%d") (int_range 0 4) in
  let var = map (Printf.sprintf "v%d") (int_range 0 3) in
  let expr =
    oneof
      [
        map (fun v -> Ast.Val v) (int_range (-8) 8);
        map (fun r -> Ast.Reg r) reg;
        map3 (fun a b op -> Ast.Bin (op, Ast.Reg a, Ast.Val b)) reg
          (int_range 0 9)
          (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Lt; Ast.Eq ]);
      ]
  in
  oneof
    [
      map2 (fun r x -> Ast.Load (r, x, Lang.Modes.Na)) reg var;
      map2 (fun x e -> Ast.Store (x, e, Lang.Modes.WNa)) var expr;
      map2 (fun r e -> Ast.Assign (r, e)) reg expr;
      return Ast.Skip;
      map (fun e -> Ast.Print e) expr;
    ]

let program_gen =
  QCheck.make
    ~print:(fun p -> Lang.Pp.program_to_string p)
    (QCheck.Gen.map
       (fun instrs ->
         Ast.program
           ~code:[ ("t", Ast.codeheap ~entry:"L" [ ("L", Ast.block instrs Ast.Return) ]) ]
           [ "t" ])
       (QCheck.Gen.list_size (QCheck.Gen.int_range 0 12) instr_gen))

let roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"pp/parse roundtrip" program_gen (fun p ->
      Ast.equal_program p (Parse.program_of_string (Pp.program_to_string p)))

let sexp_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"sexp roundtrip" program_gen (fun p ->
      match Sexp.program_of_string (Sexp.program_to_string p) with
      | Ok p' -> Ast.equal_program p p'
      | Error _ -> false)

let () =
  Alcotest.run "lang"
    [
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "wrap32" `Quick test_wrap32;
          Alcotest.test_case "const_fold" `Quick test_const_fold;
          Alcotest.test_case "subst/uses" `Quick test_subst_uses;
        ] );
      ( "parse",
        [
          Alcotest.test_case "program" `Quick test_parse_program;
          Alcotest.test_case "instruction kinds" `Quick test_parse_instr_kinds;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "comments/negatives" `Quick
            test_parse_comments_and_negatives;
          Alcotest.test_case "corpus roundtrip" `Quick test_roundtrip;
        ] );
      ( "wf",
        [
          Alcotest.test_case "accepts mp" `Quick test_wf_ok;
          Alcotest.test_case "rejects violations" `Quick test_wf_errors;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "diamond" `Quick test_cfg;
          Alcotest.test_case "unreachable" `Quick test_cfg_unreachable;
          Alcotest.test_case "vars/regs" `Quick test_vars_regs;
          Alcotest.test_case "be same target" `Quick test_be_same_target;
        ] );
      ( "sexp",
        [
          Alcotest.test_case "corpus roundtrip" `Quick
            test_sexp_roundtrip_corpus;
          Alcotest.test_case "stable shape" `Quick test_sexp_shape;
          Alcotest.test_case "errors" `Quick test_sexp_errors;
          Alcotest.test_case "tree parser" `Quick test_sexp_tree;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest roundtrip_prop;
          QCheck_alcotest.to_alcotest sexp_roundtrip_prop;
        ] );
    ]
