test/test_golden.ml: Alcotest Explore List Litmus
