test/test_cert.mli:
