test/test_soundness.mli:
