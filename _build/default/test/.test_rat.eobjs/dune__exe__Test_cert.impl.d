test/test_cert.ml: Alcotest Lang List Option Ps Rat
