test/test_npsem.ml: Alcotest Explore Lang Litmus Npsem Ps
