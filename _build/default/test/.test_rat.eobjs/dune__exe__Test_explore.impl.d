test/test_explore.ml: Alcotest Explore Lang List Litmus Printf Ps String
