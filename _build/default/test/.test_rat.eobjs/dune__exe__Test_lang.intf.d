test/test_lang.mli:
