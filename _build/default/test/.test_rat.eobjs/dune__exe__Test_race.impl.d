test/test_race.ml: Alcotest Explore List Litmus Option Ps Race Rat
