test/test_view.mli:
