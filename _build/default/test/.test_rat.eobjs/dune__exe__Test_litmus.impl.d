test/test_litmus.ml: Alcotest Explore Format Lang List Litmus
