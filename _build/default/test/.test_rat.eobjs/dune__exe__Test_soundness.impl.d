test/test_soundness.ml: Alcotest Explore Lang List Opt Printf Ps QCheck QCheck_alcotest Race
