test/test_memory.ml: Alcotest Format Lang List Printf Ps QCheck QCheck_alcotest Rat
