test/test_opt.ml: Alcotest Analysis Ast Explore Format Lang List Litmus Opt Parse Pp Printf Race Wf
