test/test_thread.mli:
