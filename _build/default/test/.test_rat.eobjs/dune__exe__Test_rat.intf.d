test/test_rat.mli:
