test/test_sim.ml: Alcotest Lang List Litmus Opt Option Ps Rat Sim
