test/test_view.ml: Alcotest Format Lang List Printf Ps QCheck QCheck_alcotest Rat
