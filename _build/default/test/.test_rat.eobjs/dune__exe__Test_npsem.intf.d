test/test_npsem.mli:
