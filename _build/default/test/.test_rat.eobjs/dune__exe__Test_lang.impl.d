test/test_lang.ml: Alcotest Ast Cfg Expr Format Int32 Lang List Litmus Parse Pp Printf QCheck QCheck_alcotest Sexp String Wf
