test/test_thread.ml: Alcotest Lang List Option Ps Rat
