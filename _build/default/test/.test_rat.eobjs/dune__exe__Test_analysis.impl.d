test/test_analysis.ml: Alcotest Analysis Ast Cfg Format Int Lang List Parse Printf QCheck QCheck_alcotest
