test/test_rat.ml: Alcotest List QCheck QCheck_alcotest Rat
