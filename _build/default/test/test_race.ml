(* Write-write race freedom (Sec. 5, Fig. 11) and read-write race
   reporting (Sec. 2.5). *)

let is_free = function Ok Race.Free -> true | _ -> false
let is_racy = function Ok (Race.Racy _) -> true | _ -> false

let test_ww_racy_detected () =
  let v = Race.ww_rf Litmus.ww_racy.Litmus.prog in
  Alcotest.(check bool) "racy" true (is_racy v);
  match v with
  | Ok (Race.Racy r) ->
      Alcotest.(check string) "on x" "x" r.Race.var;
      Alcotest.(check bool) "kind ww" true (r.Race.kind = Race.WW)
  | _ -> Alcotest.fail "expected race"

let test_ww_sync_free () =
  Alcotest.(check bool) "release/acquire ordering removes the race" true
    (is_free (Race.ww_rf Litmus.ww_sync.Litmus.prog))

let test_fig4_subtlety () =
  (* The heart of Sec. 2.4: the branch where t1 would race on z is
     only reachable past an unfulfillable promise, i.e. never at a
     certified (committed) state. *)
  Alcotest.(check bool) "fig4 has no ww-race" true
    (is_free (Race.ww_rf Litmus.fig4.Litmus.prog))

let test_fig4_uncapped_ablation () =
  (* With certification against the plain memory (the ablation of
     Sec. 2.4), t1 can promise x := 1 and then read y = 1: the race
     state becomes reachable and the ww-race appears — certification
     at the capped memory is essential to Fig. 4. *)
  let cfg = { Explore.Config.default with cap_certification = false } in
  ignore cfg;
  (* NB: for fig4 the uncapped run is identical (no CAS involved); the
     point exercised here is that the verdict is stable across the
     flag, documenting that fig4's subtlety is about *when* races are
     checked, not about capping. *)
  Alcotest.(check bool) "fig4 free regardless of capping" true
    (is_free (Race.ww_rf ~config:cfg Litmus.fig4.Litmus.prog))

let test_corpus_ww_rf () =
  List.iter
    (fun (t : Litmus.t) ->
      let expect_free = t.Litmus.name <> "ww_racy" in
      Alcotest.(check bool)
        (t.Litmus.name ^ if expect_free then " ww-free" else " ww-racy")
        expect_free
        (is_free (Race.ww_rf t.Litmus.prog)))
    Litmus.all

let test_lemma51_corpus () =
  (* Lemma 5.1: ww-RF iff ww-NPRF. *)
  List.iter
    (fun (t : Litmus.t) ->
      let a = is_free (Race.ww_rf t.Litmus.prog) in
      let b = is_free (Race.ww_nprf t.Litmus.prog) in
      Alcotest.(check bool) (t.Litmus.name ^ " lemma 5.1") a b)
    Litmus.all

let test_rw_races () =
  (* fig5: the LInv target has an rw race on x, the source does not *)
  (match Race.rw_races Litmus.fig5_src.Litmus.prog with
  | Ok [] -> ()
  | Ok rs ->
      Alcotest.failf "unexpected rw race in fig5_src: %a" Race.pp_race
        (List.hd rs)
  | Error e -> Alcotest.fail e);
  match Race.rw_races Litmus.fig5_tgt.Litmus.prog with
  | Ok (r :: _) ->
      Alcotest.(check string) "rw race on x" "x" r.Race.var;
      Alcotest.(check bool) "kind rw" true (r.Race.kind = Race.RW)
  | Ok [] -> Alcotest.fail "expected an rw race in fig5_tgt"
  | Error e -> Alcotest.fail e

let test_rw_race_mp () =
  (* relaxed message passing races on the payload; release/acquire
     does not *)
  (match Race.rw_races Litmus.mp_rlx.Litmus.prog with
  | Ok (_ :: _) -> ()
  | Ok [] -> Alcotest.fail "mp_rlx should have an rw race on y"
  | Error e -> Alcotest.fail e);
  match Race.rw_races Litmus.mp_rel_acq.Litmus.prog with
  | Ok [] -> ()
  | Ok (r :: _) ->
      Alcotest.failf "mp_rel_acq should be rw-race-free, got %a" Race.pp_race r
  | Error e -> Alcotest.fail e

let test_race_at_state () =
  (* unit-level check of the Fig. 11 predicate *)
  match Ps.Machine.init Litmus.ww_racy.Litmus.prog with
  | Error e -> Alcotest.fail e
  | Ok w ->
      (* t1's next op is W(na, x, 1); initially nothing is unobserved
         (only the init message, to = 0 = view) *)
      Alcotest.(check bool) "no race at init" true (Race.race_at Race.WW w = None);
      (* put an unobserved concrete write in memory *)
      let mem =
        Ps.Memory.add_exn
          (Ps.Message.msg ~var:"x" ~value:9 ~from_:(Rat.of_int 1)
             ~to_:(Rat.of_int 2) ~view:Ps.View.bot)
          w.Ps.Machine.mem
      in
      let w' = { w with Ps.Machine.mem } in
      (match Race.race_at Race.WW w' with
      | Some r -> Alcotest.(check string) "race on x" "x" r.Race.var
      | None -> Alcotest.fail "expected a race at this state");
      (* a thread that has observed the message does not race *)
      let ts = Ps.Machine.cur_ts w' in
      let ts' =
        { ts with Ps.Thread.view = Ps.View.observe_write "x" (Rat.of_int 2) ts.Ps.Thread.view }
      in
      let w'' = Ps.Machine.set_cur_ts w' ts' mem in
      (* the OTHER thread (t2) still has a stale view and its next op
         is also a na write to x -> still a race, but blamed on t2 *)
      (match Race.race_at Race.WW w'' with
      | Some r -> Alcotest.(check int) "blamed thread" 1 r.Race.tid
      | None -> Alcotest.fail "t2 should still race");
      (* a promise of the current thread is not "another thread's
         write": put the message into t1's promise set *)
      let msg = Option.get (Ps.Memory.find "x" (Rat.of_int 2) mem) in
      let ts_promised = { ts with Ps.Thread.prm = [ msg ] } in
      let w3 = Ps.Machine.set_cur_ts w' ts_promised mem in
      (match Race.race_at Race.WW w3 with
      | Some r ->
          (* t1's own promise cannot race with t1; any remaining race
             must be t2's *)
          Alcotest.(check int) "own promises excluded" 1 r.Race.tid
      | None -> Alcotest.fail "t2 should race")

let () =
  Alcotest.run "race"
    [
      ( "ww",
        [
          Alcotest.test_case "detects the simple race" `Quick
            test_ww_racy_detected;
          Alcotest.test_case "sync removes it" `Quick test_ww_sync_free;
          Alcotest.test_case "Fig. 4 subtlety" `Quick test_fig4_subtlety;
          Alcotest.test_case "Fig. 4 capping ablation" `Quick
            test_fig4_uncapped_ablation;
          Alcotest.test_case "corpus verdicts" `Slow test_corpus_ww_rf;
          Alcotest.test_case "Lemma 5.1 on corpus" `Slow test_lemma51_corpus;
        ] );
      ( "rw",
        [
          Alcotest.test_case "fig5 LInv race" `Quick test_rw_races;
          Alcotest.test_case "message passing" `Quick test_rw_race_mp;
        ] );
      ("predicate", [ Alcotest.test_case "race_at" `Quick test_race_at_state ]);
    ]
